module carriersense

go 1.22
