// Package carriersense_bench regenerates every table and figure of the
// paper's evaluation as a Go benchmark (see the per-experiment index
// in DESIGN.md §3). Each benchmark runs the experiment at ScaleBench
// and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness:
// compare the reported metrics against the paper values quoted in the
// bench names' doc comments and in EXPERIMENTS.md.
//
// Ablation benchmarks (the design choices DESIGN.md calls out) live at
// the bottom: fixed-rate versus adaptive capacity, the noise-floor
// term, shadowing, CCA flavor, capture, and RTS policies.
package carriersense_bench

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"carriersense/internal/capacity"
	"carriersense/internal/core"
	"carriersense/internal/dist"
	"carriersense/internal/experiments"
	"carriersense/internal/mac"
	"carriersense/internal/montecarlo"
	"carriersense/internal/numeric"
	"carriersense/internal/phy"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
	"carriersense/internal/testbed"
)

// benchScale selects the sampling effort: the full ScaleBench
// reproduction by default, ScaleSmoke under `go test -short` so CI
// can run every benchmark as a fast smoke lane
// (`go test -short -run '^$' -bench . -benchtime 1x .`).
func benchScale() experiments.Scale {
	if testing.Short() {
		return experiments.ScaleSmoke
	}
	return experiments.ScaleBench
}

// BenchmarkTable1Efficiency reproduces the §3.2.5 fixed-threshold
// table (paper: 96 88 96 / 96 87 96 / 89 83 92 percent). Reported
// metrics: mean and minimum efficiency over the grid.
func BenchmarkTable1Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(experiments.DefaultTable1(), benchScale())
		sum, cnt := 0.0, 0
		for _, row := range t.Cells {
			for _, v := range row {
				sum += v
				cnt++
			}
		}
		b.ReportMetric(sum/float64(cnt), "mean_eff")
		b.ReportMetric(t.Min(), "min_eff")
	}
}

// BenchmarkTable2OptimizedThreshold reproduces the optimized-threshold
// table (paper thresholds 40/55/60).
func BenchmarkTable2OptimizedThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2(experiments.DefaultTable1(), benchScale())
		b.ReportMetric(t.Thresholds[0], "dopt_rmax20")
		b.ReportMetric(t.Thresholds[2], "dopt_rmax120")
		b.ReportMetric(t.Min(), "min_eff")
	}
}

// BenchmarkTableRobustnessSweep reproduces the §3.2.5 α/σ robustness
// claim ("very little change is observed").
func BenchmarkTableRobustnessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RobustnessSweep([]float64{2, 3, 4}, []float64{4, 8, 12}, experiments.ScaleSmoke)
		min := 1.0
		for _, p := range pts {
			if p.MinEfficiency < min {
				min = p.MinEfficiency
			}
		}
		b.ReportMetric(min, "worst_cell_eff")
	}
}

// BenchmarkFigure2Landscape rasterizes the capacity landscapes.
func BenchmarkFigure2Landscape(b *testing.B) {
	p := experiments.DefaultLandscape()
	for i := 0; i < b.N; i++ {
		res := experiments.Landscape(p)
		b.ReportMetric(res.Single.Values[p.Cells/2][p.Cells/2], "peak_capacity")
	}
}

// BenchmarkFigure3Preference rasterizes the receiver preference maps
// (paper: D=55 splits receivers "nearly down the middle").
func BenchmarkFigure3Preference(b *testing.B) {
	p := experiments.DefaultLandscape()
	for i := 0; i < b.N; i++ {
		res := experiments.Preference(p)
		b.ReportMetric(res.Shares[1][0], "conc_share_d55")
		b.ReportMetric(res.Shares[1][2], "starved_share_d55")
	}
}

// BenchmarkFigure4Curves computes the σ=0 throughput-versus-D curves
// for the three R_max panels.
func BenchmarkFigure4Curves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cross float64
		for _, rmax := range []float64{20, 55, 120} {
			res := experiments.Curves(experiments.DefaultCurves(rmax), benchScale())
			cross = res.CrossoverD()
		}
		b.ReportMetric(cross, "crossover_rmax120")
	}
}

// BenchmarkFigure5CarrierSenseCurve computes the R_max = 55 panel with
// the CS piecewise curve highlighted.
func BenchmarkFigure5CarrierSenseCurve(b *testing.B) {
	p := experiments.DefaultCurves(55)
	for i := 0; i < b.N; i++ {
		res := experiments.Curves(p, benchScale())
		// Gap between CS and optimal at the threshold (the visible
		// compromise of Figure 5).
		var gap float64
		for _, pt := range res.Points {
			if math.Abs(pt.D-55) < 4 {
				gap = pt.Max - pt.CS
			}
		}
		b.ReportMetric(gap, "cs_gap_at_threshold")
	}
}

// BenchmarkFigure6Inefficiency decomposes hidden/exposed inefficiency.
func BenchmarkFigure6Inefficiency(b *testing.B) {
	p := experiments.DefaultCurves(55)
	for i := 0; i < b.N; i++ {
		res := experiments.InefficiencyDecomposition(p, benchScale())
		b.ReportMetric(res.Ineff.HiddenTotal, "hidden_frac")
		b.ReportMetric(res.Ineff.ExposedTotal, "exposed_frac")
	}
}

// BenchmarkFigure7OptimalThreshold computes the threshold-versus-R_max
// curves (paper: α=3 boundaries near R_max 18 and 60).
func BenchmarkFigure7OptimalThreshold(b *testing.B) {
	p := experiments.Figure7Params{
		Alphas:   []float64{2, 3, 4},
		SigmaDB:  8,
		RmaxGrid: numeric.LogSpace(5, 200, 8),
		Seed:     1,
	}
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(p, benchScale())
		pts := res.Curves[3]
		b.ReportMetric(pts[0].DOptAlpha3, "dopt_small_rmax")
		b.ReportMetric(pts[len(pts)-1].DOptAlpha3, "dopt_large_rmax")
	}
}

// BenchmarkFigure9ShadowedCurves computes the σ=8 dB curves (paper:
// CS interpolates smoothly; long-range gap narrows).
func BenchmarkFigure9ShadowedCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var csAtThresh float64
		for _, rmax := range []float64{20, 55, 120} {
			p := experiments.DefaultCurves(rmax)
			p.SigmaDB = 8
			res := experiments.Curves(p, benchScale())
			for _, pt := range res.Points {
				if math.Abs(pt.D-55) < 4 {
					csAtThresh = pt.CS
				}
			}
		}
		b.ReportMetric(csAtThresh, "cs_at_threshold_rmax120")
	}
}

// BenchmarkFigure10ShortRange runs the short-range testbed experiment
// (paper: CS 97%, mux 58%, conc 89% of optimal).
func BenchmarkFigure10ShortRange(b *testing.B) {
	p := experiments.DefaultTestbed(benchScale())
	for i := 0; i < b.N; i++ {
		res := experiments.RunTestbed(p, testbed.ShortRange)
		b.ReportMetric(res.Summary.CSFrac(), "cs_frac")
		b.ReportMetric(res.Summary.MuxFrac(), "mux_frac")
		b.ReportMetric(res.Summary.ConcFrac(), "conc_frac")
		b.ReportMetric(res.Summary.Optimal, "optimal_pkts")
	}
}

// BenchmarkFigure12LongRange runs the long-range testbed experiment
// (paper: CS 90%, mux 73%, conc 69%).
func BenchmarkFigure12LongRange(b *testing.B) {
	p := experiments.DefaultTestbed(benchScale())
	for i := 0; i < b.N; i++ {
		res := experiments.RunTestbed(p, testbed.LongRange)
		b.ReportMetric(res.Summary.CSFrac(), "cs_frac")
		b.ReportMetric(res.Summary.MuxFrac(), "mux_frac")
		b.ReportMetric(res.Summary.ConcFrac(), "conc_frac")
		b.ReportMetric(res.Summary.Optimal, "optimal_pkts")
	}
}

// BenchmarkFigure14PropagationFit runs the censored ML propagation fit
// (paper's own building: α=3.6, σ=10.4 dB).
func BenchmarkFigure14PropagationFit(b *testing.B) {
	p := experiments.DefaultFigure14()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure14(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ML.Alpha, "alpha")
		b.ReportMetric(res.ML.SigmaDB, "sigma_db")
	}
}

// BenchmarkSection5ExposedTerminal runs the §5 adaptation-versus-
// exposed-terminal comparison (paper: >2x vs ~10% vs ~3%).
func BenchmarkSection5ExposedTerminal(b *testing.B) {
	p := experiments.DefaultTestbed(benchScale())
	for i := 0; i < b.N; i++ {
		res := experiments.ExposedTerminals(p)
		b.ReportMetric(res.Study.AdaptationGain, "adaptation_gain_x")
		b.ReportMetric(100*res.Study.ExposedGainBase, "exposed_base_pct")
		b.ReportMetric(100*res.Study.CombinedGain, "exposed_on_top_pct")
	}
}

// BenchmarkSection34ShadowingExample evaluates the §3.4 worked example
// (paper: ~20% spurious concurrency, ~4% bad-SNR configurations).
func BenchmarkSection34ShadowingExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Section34(benchScale())
		b.ReportMetric(100*res.Example.PSpuriousConcurrency, "spurious_pct")
		b.ReportMetric(100*res.Example.PBadSNRMC.Mean, "bad_snr_pct")
	}
}

// --- Ablation benches -------------------------------------------------

// BenchmarkAblationFixedVsAdaptiveRate swaps the Shannon capacity model
// for a fixed-rate step function — the paper's central analytical
// claim is that this one change is what makes hidden/exposed terminals
// look catastrophic. Metrics: CS efficiency at the transition point
// under each model.
func BenchmarkAblationFixedVsAdaptiveRate(b *testing.B) {
	run := func(capModel capacity.Model) float64 {
		p := core.Params{Alpha: 3, SigmaDB: 8, NoiseDB: core.DefaultNoiseDB, Capacity: capModel}
		m := core.New(p)
		a := m.EstimateAverages(1, 40_000, 55, 55, 55)
		return a.Efficiency()
	}
	for i := 0; i < b.N; i++ {
		adaptive := run(nil) // Shannon
		// Fixed rate pinned to the capacity at 15 dB SNR.
		fixed := run(capacity.FixedRate{Rate: math.Log1p(31.6), MinSNR: 31.6})
		b.ReportMetric(adaptive, "adaptive_eff")
		b.ReportMetric(fixed, "fixed_eff")
	}
}

// BenchmarkAblationNoiseFloor drops the noise floor far below any
// signal — §6 notes that models without the noise term "completely
// wipe the long range regime from view": the optimal threshold keeps
// growing instead of saturating.
func BenchmarkAblationNoiseFloor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withNoise := core.New(core.Params{Alpha: 3, SigmaDB: 0, NoiseDB: -65})
		noNoise := core.New(core.Params{Alpha: 3, SigmaDB: 0, NoiseDB: -200})
		b.ReportMetric(withNoise.OptimalThresholdQuad(120), "dopt_rmax120_noise")
		b.ReportMetric(noNoise.OptimalThresholdQuad(120), "dopt_rmax120_no_noise")
	}
}

// BenchmarkAblationShadowing compares CS efficiency with and without
// lognormal shadowing at the transition point.
func BenchmarkAblationShadowing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sigma := range []float64{0, 8} {
			m := core.New(core.Params{Alpha: 3, SigmaDB: sigma, NoiseDB: -65})
			a := m.EstimateAverages(2, 40_000, 55, 55, 55)
			if sigma == 0 {
				b.ReportMetric(a.Efficiency(), "eff_sigma0")
			} else {
				b.ReportMetric(a.Efficiency(), "eff_sigma8")
			}
		}
	}
}

// BenchmarkAblationThresholdSensitivity sweeps the CS threshold ±2x
// around the optimum (§3.3.4's robustness claim, quantified).
func BenchmarkAblationThresholdSensitivity(b *testing.B) {
	p := experiments.DefaultCurves(40)
	p.SigmaDB = 8
	p.DGrid = numeric.LinSpace(10, 160, 8)
	for i := 0; i < b.N; i++ {
		pts := experiments.ThresholdSensitivity(p, []float64{27, 55, 110}, benchScale())
		b.ReportMetric(pts[0].Efficiency, "eff_half_thresh")
		b.ReportMetric(pts[1].Efficiency, "eff_at_thresh")
		b.ReportMetric(pts[2].Efficiency, "eff_double_thresh")
	}
}

// BenchmarkAblationPreambleVsEnergyCCA compares the testbed experiment
// under preamble-based carrier sense (Atheros-style, sensitive to
// -92 dBm) against pure energy detection at -82 dBm.
func BenchmarkAblationPreambleVsEnergyCCA(b *testing.B) {
	run := func(preamble bool) float64 {
		tb := testbed.Generate(testbed.DefaultLayout(), 42)
		p := testbed.DefaultExperiment()
		p.Duration = 500 * sim.Millisecond
		p.MaxCombos = 12
		p.EnergyOnlyCCA = !preamble
		res := testbed.RunExperiment(tb, p, testbed.ShortRange)
		return res.Summarize().CSFrac()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true), "cs_frac_preamble")
		b.ReportMetric(run(false), "cs_frac_energy")
	}
}

// BenchmarkAblationRTSPolicy compares throughput under RTS off, always,
// and adaptive on a clean unicast link — the §5 cost argument.
func BenchmarkAblationRTSPolicy(b *testing.B) {
	run := func(mode mac.RTSMode) float64 {
		src := rng.New(7)
		s := sim.New()
		ch := staticChannel{gain: -80}
		cfg := phy.DefaultConfig()
		cfg.Fade = capacity.FadeModel{}
		medium := phy.NewMedium(s, ch, cfg, src.Split())
		tx := medium.AddRadio(0, 15)
		rx := medium.AddRadio(1, 15)
		_ = rx
		macCfg := mac.DefaultConfig()
		macCfg.UseACK = true
		macCfg.RTS = mode
		st := mac.NewStation(s, tx, macCfg, src.Split(), mac.FixedRate{Rate: capacity.Table80211a[4]})
		mac.NewStation(s, medium.Radio(1), macCfg, src.Split(), nil)
		delivered := 0.0
		st.OnDeliver = func(phy.Frame) { delivered++ }
		st.StartSaturated(1, 1400)
		s.Run(1 * sim.Second)
		return delivered
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(mac.RTSOff), "pkts_rts_off")
		b.ReportMetric(run(mac.RTSAlways), "pkts_rts_always")
		b.ReportMetric(run(mac.RTSAdaptive), "pkts_rts_adaptive")
	}
}

// staticChannel is a flat channel for the RTS ablation.
type staticChannel struct{ gain float64 }

func (c staticChannel) GainDB(from, to phy.NodeID) float64 { return c.gain }

// BenchmarkSimulatorEventThroughput measures the raw discrete-event
// engine: a dense self-rescheduling workload. events/sec is the
// simulator lane's headline number in BENCH_<date>.json.
func BenchmarkSimulatorEventThroughput(b *testing.B) {
	const events = 100_000
	for i := 0; i < b.N; i++ {
		s := sim.New()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count < events {
				s.After(sim.Microsecond, tick)
			}
		}
		s.After(0, tick)
		s.RunAll()
	}
	b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkPacketSimSecond measures packet-simulator speed: one
// simulated second of a saturated two-pair carrier sense scenario.
func BenchmarkPacketSimSecond(b *testing.B) {
	tb := testbed.Generate(testbed.DefaultLayout(), 42)
	links := tb.QualifyingLinks(testbed.ShortRange)
	if len(links) < 2 {
		b.Skip("no links")
	}
	for i := 0; i < b.N; i++ {
		p := testbed.DefaultExperiment()
		p.Duration = 1 * sim.Second
		p.MaxCombos = 1
		p.Rates = p.Rates[:1]
		testbed.RunExperiment(tb, p, testbed.ShortRange)
	}
}

// BenchmarkMonteCarloAverages measures the analytical model's sampling
// throughput (samples/op is fixed at 40k).
func BenchmarkMonteCarloAverages(b *testing.B) {
	m := core.New(core.DefaultParams())
	for i := 0; i < b.N; i++ {
		m.EstimateAverages(uint64(i), 40_000, 55, 55, 55)
	}
}

// BenchmarkDistributedVsLocal measures the distributed executor's
// per-shard overhead against the in-process pool on the same
// estimation (EstimateAverages, 40k samples ≈ 10 shards): shard
// transport plus scheduling versus a plain RunShards sweep, on both
// wire formats. Workers are in-process httptest servers, so the delta
// is pure protocol cost with no network in the way — the floor any
// real fleet adds to. Sub-benchmark names avoid a trailing fleet
// number (remote-2workers, not remote-workers-2) so the bench
// baseline's GOMAXPROCS-suffix strip leaves each fleet size distinct
// and BENCH_<date>.json rows diff per fleet and wire.
func BenchmarkDistributedVsLocal(b *testing.B) {
	m := core.New(core.DefaultParams())
	const samples = 40_000
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := m.EstimateAverages(uint64(i), samples, 55, 55, 55)
			b.ReportMetric(a.Efficiency(), "eff")
		}
		shards := float64(montecarlo.ShardCount(samples))
		b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/shards*1e6, "us/shard")
	}
	b.Run("local", run)
	for _, fleet := range []int{2, 5} {
		hosts := make([]string, fleet)
		for i := range hosts {
			srv := httptest.NewServer(dist.NewServer())
			defer srv.Close()
			hosts[i] = strings.TrimPrefix(srv.URL, "http://")
		}
		for _, wire := range []dist.Wire{dist.WireJSON, dist.WireBinary} {
			remote, err := dist.NewRemote(hosts, dist.RemoteOptions{Wire: wire})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("remote-%dworkers/%s", fleet, wire), func(b *testing.B) {
				montecarlo.SetExecutor(remote)
				defer montecarlo.SetExecutor(nil)
				run(b)
			})
		}
	}
}

// BenchmarkExtensionMultiPair runs the n > 2 sender extension under
// both capacity models: adaptive headroom should stay flat with n,
// fixed-low-rate headroom should grow (footnote 18).
func BenchmarkExtensionMultiPair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adaptive := core.NewMulti(core.DefaultMultiParams(6)).EstimateMulti(1, 10_000)
		p := core.DefaultMultiParams(6)
		p.Env.Capacity = capacity.FixedRate{Rate: 1.25, MinSNR: 2.5}
		fixed := core.NewMulti(p).EstimateMulti(1, 10_000)
		b.ReportMetric(100*adaptive.ExposedHeadroom(), "headroom_adaptive_pct")
		b.ReportMetric(100*fixed.ExposedHeadroom(), "headroom_fixed_pct")
	}
}

// BenchmarkExtension11g runs the deep-long-range 11a-versus-11g rate
// set comparison (§4.2's suggestion).
func BenchmarkExtension11g(b *testing.B) {
	p := experiments.DefaultTestbed(benchScale())
	p.Experiment.MaxCombos = 10
	for i := 0; i < b.N; i++ {
		res := experiments.Extension11g(p)
		b.ReportMetric(res.A.MeanCSDelivery(), "cs_delivery_11a")
		b.ReportMetric(res.G.MeanCSDelivery(), "cs_delivery_11g")
	}
}
