package testbed

import (
	"fmt"
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/mac"
	"carriersense/internal/phy"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// Mode is one of the paper's three measurement modes (§4): each
// two-pair combination is measured under multiplexing (each sender
// alone, one after another), concurrency (carrier sense disabled, both
// simultaneously), and carrier sense (default hardware CS, both
// simultaneously).
type Mode int

// Modes.
const (
	ModeMultiplexing Mode = iota
	ModeConcurrency
	ModeCarrierSense
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeMultiplexing:
		return "multiplexing"
	case ModeConcurrency:
		return "concurrency"
	case ModeCarrierSense:
		return "carrier-sense"
	default:
		return "?"
	}
}

// ExperimentParams configures the §4 protocol.
type ExperimentParams struct {
	// Duration is the per-run send time (paper: 15 s; tests use less).
	Duration sim.Time
	// FrameBytes is the payload size (paper: 1400).
	FrameBytes int
	// Rates is the sweep set (paper: 6, 9, 12, 18, 24 Mb/s).
	Rates capacity.RateTable
	// MaxCombos caps how many two-pair combinations to measure.
	MaxCombos int
	// Seed drives combo selection and the PHY's error draws.
	Seed uint64
	// CCAThresholdDBm is the hardware carrier sense threshold.
	CCAThresholdDBm float64
	// EnergyOnlyCCA disables preamble-based carrier sense, leaving
	// pure energy detection — the compatibility-challenged CCA flavor
	// §6 discusses via [Aoki06]/[Rahul08] and the subject of the
	// preamble-versus-energy ablation bench.
	EnergyOnlyCCA bool
}

// DefaultExperiment returns the paper's methodology with a shortened
// default duration (callers wanting the full 15 s set Duration).
func DefaultExperiment() ExperimentParams {
	return ExperimentParams{
		Duration:        2 * sim.Second,
		FrameBytes:      1400,
		Rates:           capacity.TablePaperDriver,
		MaxCombos:       30,
		Seed:            1,
		CCAThresholdDBm: -82,
	}
}

// ComboResult is one two-pair measurement: the paper's unit of data,
// one vertical triple of points in Figures 10-13.
type ComboResult struct {
	Link1, Link2 Link
	// SenderRSSIdB is the average sender-sender RSSI in dB above the
	// noise floor (the x-axis of Figures 11 and 13); math.Inf(-1) when
	// below the detection threshold.
	SenderRSSIdB float64
	// Totals in packets per second of wall-clock time, after the
	// per-sender oracle rate sweep.
	Mux, Conc, CS float64
	// Base-rate (lowest rate) totals, for the §5 exposed-terminal
	// arithmetic.
	MuxBase, ConcBase, CSBase float64
	// CSDelivery is the delivered/sent ratio of the carrier sense runs
	// at each sender's best rate — the reliability the oracle rate
	// choice achieves (≈1 when adaptation has rate headroom, low when
	// links are pinned at an unreliable floor, §4.2's "adaptation
	// floor" effect).
	CSDelivery float64
}

// Optimal returns the per-combo max over strategies.
func (c ComboResult) Optimal() float64 {
	return math.Max(c.Mux, math.Max(c.Conc, c.CS))
}

// OptimalBase returns the base-rate max over strategies.
func (c ComboResult) OptimalBase() float64 {
	return math.Max(c.MuxBase, math.Max(c.ConcBase, c.CSBase))
}

// Summary aggregates an experiment the way the paper's §4.1/§4.2
// tables do: throughput averaged over all runs, with each strategy as
// a percentage of optimal.
type Summary struct {
	Class   RangeClass
	Combos  int
	Optimal float64 // pkt/s
	CS      float64
	Mux     float64
	Conc    float64
}

// CSFrac returns CS as a fraction of optimal.
func (s Summary) CSFrac() float64 { return frac(s.CS, s.Optimal) }

// MuxFrac returns multiplexing as a fraction of optimal.
func (s Summary) MuxFrac() float64 { return frac(s.Mux, s.Optimal) }

// ConcFrac returns concurrency as a fraction of optimal.
func (s Summary) ConcFrac() float64 { return frac(s.Conc, s.Optimal) }

func frac(x, total float64) float64 {
	if total == 0 {
		return 0
	}
	return x / total
}

// String renders the summary in the paper's table format.
func (s Summary) String() string {
	return fmt.Sprintf(
		"%s (%d combos)\n"+
			"  Optimal (max over strategies): %.0f packets / sec\n"+
			"  Carrier Sense: %.0f pkt/s (%.0f%% opt)\n"+
			"  Multiplexing:  %.0f pkt/s (%.0f%% opt)\n"+
			"  Concurrency:   %.0f pkt/s (%.0f%% opt)",
		s.Class, s.Combos, s.Optimal,
		s.CS, 100*s.CSFrac(),
		s.Mux, 100*s.MuxFrac(),
		s.Conc, 100*s.ConcFrac())
}

// ExperimentResult is the full outcome of one range-class experiment.
type ExperimentResult struct {
	Class  RangeClass
	Combos []ComboResult
}

// Summarize averages over all combos.
func (r ExperimentResult) Summarize() Summary {
	s := Summary{Class: r.Class, Combos: len(r.Combos)}
	for _, c := range r.Combos {
		s.Optimal += c.Optimal()
		s.CS += c.CS
		s.Mux += c.Mux
		s.Conc += c.Conc
	}
	if len(r.Combos) > 0 {
		n := float64(len(r.Combos))
		s.Optimal /= n
		s.CS /= n
		s.Mux /= n
		s.Conc /= n
	}
	return s
}

// RunExperiment executes the §4 protocol for one range class: select
// disjoint two-pair combinations from the qualifying links, then
// measure each under every mode and rate with per-sender oracle rate
// selection.
//
// Combo selection and seeding are planned up front (cheap and
// sequential); the replications themselves — the expensive part — are
// issued as testbed/combo sim-kernel requests through the installed
// montecarlo executor and run in parallel, distributed, or from cache
// (see kernel.go). Results are assembled in combo order, so the
// experiment is bit-identical at any parallelism on any executor.
func RunExperiment(tb *Testbed, p ExperimentParams, class RangeClass) ExperimentResult {
	src := rng.New(p.Seed)
	links := tb.QualifyingLinks(class)
	src.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	combos := selectCombos(links, p.MaxCombos, src)
	seeds := make([]uint64, len(combos))
	for i := range seeds {
		seeds[i] = src.Uint64()
	}
	return ExperimentResult{Class: class, Combos: runCombos(tb, p, combos, seeds)}
}

// selectCombos greedily pairs up links into node-disjoint two-pair
// combinations.
func selectCombos(links []Link, maxCombos int, src *rng.Source) [][2]Link {
	var combos [][2]Link
	for i := 0; i < len(links) && len(combos) < maxCombos; i++ {
		a := links[i]
		for j := i + 1; j < len(links); j++ {
			b := links[j]
			if a.Src == b.Src || a.Src == b.Dst || a.Dst == b.Src || a.Dst == b.Dst {
				continue
			}
			combos = append(combos, [2]Link{a, b})
			// Remove b from further consideration by swapping it out.
			links[j] = links[len(links)-1]
			links = links[:len(links)-1]
			break
		}
	}
	return combos
}

// runCombo measures one two-pair combination under all modes/rates.
func runCombo(tb *Testbed, p ExperimentParams, l1, l2 Link, seed uint64) ComboResult {
	res := ComboResult{Link1: l1, Link2: l2}
	// Sender-sender RSSI in dB above the noise floor, averaged over
	// both directions; -Inf when below the preamble sensitivity.
	phyCfg := phy.DefaultConfig()
	phyCfg.NoiseFloorDBm = tb.Params.NoiseFloorDBm
	phyCfg.CCAThresholdDBm = p.CCAThresholdDBm
	phyCfg.PreambleCarrierSense = !p.EnergyOnlyCCA
	phyCfg.Fade = tb.Params.Fade
	r12 := tb.RSSIdBm(l1.Src, l2.Src)
	r21 := tb.RSSIdBm(l2.Src, l1.Src)
	if r12 < phyCfg.PreambleSensitivityDBm && r21 < phyCfg.PreambleSensitivityDBm {
		res.SenderRSSIdB = math.Inf(-1)
	} else {
		res.SenderRSSIdB = ((r12 - tb.Params.NoiseFloorDBm) + (r21 - tb.Params.NoiseFloorDBm)) / 2
	}

	secs := p.Duration.Seconds()
	// Per (mode, rate): packet counts for each sender's receiver.
	bestByMode := func(mode Mode) (float64, float64) {
		best1, best2 := 0.0, 0.0
		del1, del2 := 0.0, 0.0
		for ri, rate := range p.Rates {
			cc := runComboOnce(tb, p, phyCfg, l1, l2, mode, rate, seed+uint64(ri)*31)
			c1, c2 := cc.got1, cc.got2
			if mode == ModeMultiplexing {
				// Each sender ran alone for Duration; under
				// multiplexing each owns half the wall clock.
				c1, c2 = c1/2, c2/2
			}
			r1 := float64(c1) / secs
			r2 := float64(c2) / secs
			if r1 > best1 {
				best1 = r1
				if cc.sent1 > 0 {
					del1 = float64(cc.got1) / float64(cc.sent1)
				}
			}
			if r2 > best2 {
				best2 = r2
				if cc.sent2 > 0 {
					del2 = float64(cc.got2) / float64(cc.sent2)
				}
			}
			if ri == 0 { // lowest rate = base rate
				switch mode {
				case ModeMultiplexing:
					res.MuxBase = r1 + r2
				case ModeConcurrency:
					res.ConcBase = r1 + r2
				case ModeCarrierSense:
					res.CSBase = r1 + r2
				}
			}
		}
		if mode == ModeCarrierSense {
			res.CSDelivery = (del1 + del2) / 2
		}
		return best1, best2
	}
	m1, m2 := bestByMode(ModeMultiplexing)
	res.Mux = m1 + m2
	c1, c2 := bestByMode(ModeConcurrency)
	res.Conc = c1 + c2
	s1, s2 := bestByMode(ModeCarrierSense)
	res.CS = s1 + s2
	return res
}

// comboCounts carries one run's delivered and sent frame counts.
type comboCounts struct {
	got1, got2   uint64
	sent1, sent2 uint64
}

// runComboOnce runs one simulation: the two senders (or one at a time
// for multiplexing) saturating broadcast traffic at the given rate.
// Returns packets received at each link's intended receiver along
// with the senders' transmit counts.
func runComboOnce(tb *Testbed, p ExperimentParams, phyCfg phy.Config, l1, l2 Link, mode Mode, rate capacity.Rate, seed uint64) comboCounts {
	if mode == ModeMultiplexing {
		c1, s1 := runSingle(tb, p, phyCfg, l1, rate, seed)
		c2, s2 := runSingle(tb, p, phyCfg, l2, rate, seed+1)
		return comboCounts{got1: c1, got2: c2, sent1: s1, sent2: s2}
	}
	src := rng.New(seed)
	s := sim.New()
	medium := phy.NewMedium(s, tb, phyCfg, src.Split())
	nodes := []phy.NodeID{l1.Src, l1.Dst, l2.Src, l2.Dst}
	radios := make(map[phy.NodeID]*phy.Radio, len(nodes))
	for _, id := range nodes {
		r := medium.AddRadio(id, tb.Params.TxPowerDBm)
		r.SetNoiseOffsetDB(tb.NoiseOffsetDB(id))
		radios[id] = r
	}
	macCfg := mac.DefaultConfig()
	macCfg.CarrierSense = mode == ModeCarrierSense
	var count1, count2 uint64
	attachReceiver(s, radios[l1.Dst], macCfg, src.Split(), l1.Src, &count1)
	attachReceiver(s, radios[l2.Dst], macCfg, src.Split(), l2.Src, &count2)
	st1 := mac.NewStation(s, radios[l1.Src], macCfg, src.Split(), mac.FixedRate{Rate: rate})
	st2 := mac.NewStation(s, radios[l2.Src], macCfg, src.Split(), mac.FixedRate{Rate: rate})
	st1.StartSaturated(phy.Broadcast, p.FrameBytes)
	st2.StartSaturated(phy.Broadcast, p.FrameBytes)
	s.Run(p.Duration)
	return comboCounts{
		got1: count1, got2: count2,
		sent1: st1.Stats.DataSent, sent2: st2.Stats.DataSent,
	}
}

// runSingle measures one sender alone (the multiplexing baseline).
func runSingle(tb *Testbed, p ExperimentParams, phyCfg phy.Config, l Link, rate capacity.Rate, seed uint64) (delivered, sent uint64) {
	src := rng.New(seed)
	s := sim.New()
	medium := phy.NewMedium(s, tb, phyCfg, src.Split())
	txr := medium.AddRadio(l.Src, tb.Params.TxPowerDBm)
	txr.SetNoiseOffsetDB(tb.NoiseOffsetDB(l.Src))
	rxr := medium.AddRadio(l.Dst, tb.Params.TxPowerDBm)
	rxr.SetNoiseOffsetDB(tb.NoiseOffsetDB(l.Dst))
	macCfg := mac.DefaultConfig()
	var count uint64
	attachReceiver(s, rxr, macCfg, src.Split(), l.Src, &count)
	st := mac.NewStation(s, txr, macCfg, src.Split(), mac.FixedRate{Rate: rate})
	st.StartSaturated(phy.Broadcast, p.FrameBytes)
	s.Run(p.Duration)
	return count, st.Stats.DataSent
}

// attachReceiver creates a passive station on a radio that counts
// successfully decoded data frames from the expected source.
func attachReceiver(s *sim.Simulator, r *phy.Radio, cfg mac.Config, src *rng.Source, expectSrc phy.NodeID, count *uint64) *mac.Station {
	st := mac.NewStation(s, r, cfg, src, nil)
	st.OnData = func(res phy.RxResult) {
		if res.Frame.Src == expectSrc {
			*count++
		}
	}
	return st
}

// ExposedTerminalStudy reproduces the §5 arithmetic on a short-range
// experiment result: how much bitrate adaptation alone buys over the
// base rate, how much perfect exposed-terminal exploitation buys at
// the base rate, and how little it adds on top of adaptation.
type ExposedTerminalStudy struct {
	// AdaptationGain is mean CS throughput at the best rate over mean
	// CS throughput at the base rate (paper: "more than doubles").
	AdaptationGain float64
	// ExposedGainBase is mean optimal over mean CS at the base rate
	// (paper: "just shy of 10%").
	ExposedGainBase float64
	// CombinedGain is mean optimal at best rates over mean CS at best
	// rates (paper: "only about 3%").
	CombinedGain float64
}

// StudyExposedTerminals computes the §5 comparison from a short-range
// experiment result.
func StudyExposedTerminals(r ExperimentResult) ExposedTerminalStudy {
	var csBest, csBase, optBase, optBest float64
	for _, c := range r.Combos {
		csBest += c.CS
		csBase += c.CSBase
		optBase += c.OptimalBase()
		optBest += c.Optimal()
	}
	study := ExposedTerminalStudy{}
	if csBase > 0 {
		study.AdaptationGain = csBest / csBase
		study.ExposedGainBase = optBase/csBase - 1
	}
	if csBest > 0 {
		study.CombinedGain = optBest/csBest - 1
	}
	return study
}
