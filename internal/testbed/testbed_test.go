package testbed

import (
	"math"
	"testing"

	"carriersense/internal/capacity"
	"carriersense/internal/phy"
	"carriersense/internal/sim"
)

func small() LayoutParams {
	p := DefaultLayout()
	p.Nodes = 24
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small(), 42)
	b := Generate(small(), 42)
	for i := 0; i < small().Nodes; i++ {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
		for j := 0; j < small().Nodes; j++ {
			if a.GainDB(phy.NodeID(i), phy.NodeID(j)) != b.GainDB(phy.NodeID(i), phy.NodeID(j)) {
				t.Fatalf("gain (%d,%d) differs", i, j)
			}
		}
	}
	c := Generate(small(), 43)
	if a.GainDB(0, 1) == c.GainDB(0, 1) {
		t.Error("different seeds gave identical gains")
	}
}

func TestGainSymmetry(t *testing.T) {
	tb := Generate(small(), 1)
	for i := 0; i < small().Nodes; i++ {
		for j := 0; j < small().Nodes; j++ {
			if tb.GainDB(phy.NodeID(i), phy.NodeID(j)) != tb.GainDB(phy.NodeID(j), phy.NodeID(i)) {
				t.Fatalf("asymmetric gain (%d,%d)", i, j)
			}
		}
	}
	if tb.GainDB(3, 3) != 0 {
		t.Error("self gain should be 0")
	}
}

func TestOutageMatrix(t *testing.T) {
	tb := Generate(small(), 2)
	n := small().Nodes
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := tb.OutageProbability(phy.NodeID(i), phy.NodeID(j))
			if p < 0 || p > 0.5 {
				t.Fatalf("outage prob (%d,%d) = %v", i, j, p)
			}
			if p != tb.OutageProbability(phy.NodeID(j), phy.NodeID(i)) {
				t.Fatalf("asymmetric outage (%d,%d)", i, j)
			}
		}
	}
	if tb.OutageProbability(phy.Broadcast, 1) != 0 {
		t.Error("broadcast outage should be 0")
	}
}

func TestOutageGrowsWithDistance(t *testing.T) {
	// Statistically: average outage of far pairs above near pairs.
	tb := Generate(DefaultLayout(), 3)
	var nearSum, farSum float64
	var nearN, farN int
	for i := 0; i < tb.Params.Nodes; i++ {
		for j := i + 1; j < tb.Params.Nodes; j++ {
			d := tb.DistanceM(i, j)
			p := tb.OutageProbability(phy.NodeID(i), phy.NodeID(j))
			if d < 20 {
				nearSum += p
				nearN++
			} else if d > 60 {
				farSum += p
				farN++
			}
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("layout produced no near/far pairs")
	}
	if farSum/float64(farN) <= nearSum/float64(nearN) {
		t.Errorf("far outage %v not above near %v", farSum/float64(farN), nearSum/float64(nearN))
	}
}

func TestDistance3D(t *testing.T) {
	p := small()
	tb := Generate(p, 4)
	// Distance includes the floor gap.
	found := false
	for i := 0; i < p.Nodes && !found; i++ {
		for j := i + 1; j < p.Nodes; j++ {
			if tb.Nodes[i].Floor != tb.Nodes[j].Floor {
				dx := tb.Nodes[i].X - tb.Nodes[j].X
				dy := tb.Nodes[i].Y - tb.Nodes[j].Y
				planar := math.Hypot(dx, dy)
				if tb.DistanceM(i, j) <= planar {
					t.Errorf("cross-floor distance %v not above planar %v", tb.DistanceM(i, j), planar)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no cross-floor pair")
	}
}

func TestCensusAndClasses(t *testing.T) {
	tb := Generate(DefaultLayout(), 42)
	links := tb.Census()
	wantLen := tb.Params.Nodes * (tb.Params.Nodes - 1)
	if len(links) != wantLen {
		t.Fatalf("census has %d links, want %d", len(links), wantLen)
	}
	for _, l := range links {
		if l.DeliveryAt6 < 0 || l.DeliveryAt6 > 1 {
			t.Fatalf("delivery %v out of range for %v", l.DeliveryAt6, l)
		}
		// The paper's own bands overlap in [0.94, 0.95) ("better than
		// 94%" vs "between 80% and 95%"); outside that sliver the
		// classes must be disjoint.
		if ShortRange.Matches(l) && LongRange.Matches(l) &&
			(l.DeliveryAt6 < 0.94 || l.DeliveryAt6 >= 0.95) {
			t.Fatalf("link %v in both classes outside the overlap band", l)
		}
	}
	short := tb.QualifyingLinks(ShortRange)
	long := tb.QualifyingLinks(LongRange)
	if len(short) == 0 || len(long) == 0 {
		t.Fatalf("classes empty: short %d long %d", len(short), len(long))
	}
	// The short-range class should be SNR-richer on average (the paper
	// reports ≈27 dB vs ≈16 dB).
	avg := func(ls []Link) float64 {
		s := 0.0
		for _, l := range ls {
			s += l.SNRdB
		}
		return s / float64(len(ls))
	}
	if avg(short) <= avg(long) {
		t.Errorf("short-range avg SNR %v not above long-range %v", avg(short), avg(long))
	}
}

func TestDeliveryMonotoneInSNRWithinOutageGroups(t *testing.T) {
	// For a fixed outage probability, delivery must rise with SNR; the
	// census mixes outage levels, so compare within one pair by
	// construction instead: stronger link of a pair has >= delivery
	// when outage is equal. Use the fade model directly.
	tb := Generate(small(), 5)
	l := tb.Census()[0]
	_ = l // census exercised; monotonicity itself is covered in capacity tests
}

func TestSelectCombosDisjoint(t *testing.T) {
	tb := Generate(DefaultLayout(), 42)
	p := DefaultExperiment()
	p.MaxCombos = 10
	res := RunExperiment(tb, ExperimentParams{
		Duration:        50 * sim.Millisecond,
		FrameBytes:      1400,
		Rates:           p.Rates[:1],
		MaxCombos:       10,
		Seed:            1,
		CCAThresholdDBm: -82,
	}, ShortRange)
	for _, c := range res.Combos {
		ids := map[phy.NodeID]bool{}
		for _, id := range []phy.NodeID{c.Link1.Src, c.Link1.Dst, c.Link2.Src, c.Link2.Dst} {
			if ids[id] {
				t.Fatalf("combo shares node %d", id)
			}
			ids[id] = true
		}
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	tb := Generate(DefaultLayout(), 42)
	p := DefaultExperiment()
	p.Duration = 200 * sim.Millisecond
	p.MaxCombos = 5
	res := RunExperiment(tb, p, ShortRange)
	if len(res.Combos) == 0 {
		t.Fatal("no combos")
	}
	s := res.Summarize()
	if s.Optimal <= 0 {
		t.Fatal("zero optimal throughput")
	}
	// Fractions are at most 1 by construction.
	for name, f := range map[string]float64{"cs": s.CSFrac(), "mux": s.MuxFrac(), "conc": s.ConcFrac()} {
		if f < 0 || f > 1.0001 {
			t.Errorf("%s fraction = %v", name, f)
		}
	}
	// CS should be a sane strategy even in a smoke run.
	if s.CSFrac() < 0.5 {
		t.Errorf("CS fraction %v suspiciously low", s.CSFrac())
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestExperimentDeterminism(t *testing.T) {
	tb := Generate(DefaultLayout(), 42)
	p := DefaultExperiment()
	p.Duration = 100 * sim.Millisecond
	p.MaxCombos = 3
	a := RunExperiment(tb, p, LongRange)
	b := RunExperiment(tb, p, LongRange)
	if len(a.Combos) != len(b.Combos) {
		t.Fatal("combo counts differ")
	}
	for i := range a.Combos {
		if a.Combos[i].CS != b.Combos[i].CS || a.Combos[i].Conc != b.Combos[i].Conc {
			t.Fatalf("combo %d not reproducible", i)
		}
	}
}

func TestComboResultOptimal(t *testing.T) {
	c := ComboResult{Mux: 100, Conc: 300, CS: 200, MuxBase: 50, ConcBase: 20, CSBase: 40}
	if c.Optimal() != 300 {
		t.Errorf("optimal = %v", c.Optimal())
	}
	if c.OptimalBase() != 50 {
		t.Errorf("optimal base = %v", c.OptimalBase())
	}
}

func TestStudyExposedTerminals(t *testing.T) {
	res := ExperimentResult{Class: ShortRange, Combos: []ComboResult{
		{Mux: 1000, Conc: 1600, CS: 1500, MuxBase: 500, ConcBase: 550, CSBase: 500},
		{Mux: 1200, Conc: 900, CS: 1250, MuxBase: 520, ConcBase: 300, CSBase: 510},
	}}
	st := StudyExposedTerminals(res)
	if st.AdaptationGain <= 1 {
		t.Errorf("adaptation gain = %v, want > 1", st.AdaptationGain)
	}
	if st.ExposedGainBase < 0 || st.CombinedGain < 0 {
		t.Errorf("negative gains: %+v", st)
	}
	// Degenerate empty case.
	empty := StudyExposedTerminals(ExperimentResult{})
	if empty.AdaptationGain != 0 {
		t.Errorf("empty study = %+v", empty)
	}
}

func TestRangeClassStrings(t *testing.T) {
	if ShortRange.String() != "short-range" || LongRange.String() != "long-range" {
		t.Error("class names")
	}
	if ModeMultiplexing.String() != "multiplexing" || ModeConcurrency.String() != "concurrency" ||
		ModeCarrierSense.String() != "carrier-sense" || Mode(9).String() != "?" {
		t.Error("mode names")
	}
	if RangeClass(9).Matches(Link{DeliveryAt6: 0.99}) {
		t.Error("unknown class matched")
	}
}

func TestDetectablePairs(t *testing.T) {
	tb := Generate(DefaultLayout(), 42)
	all := tb.DetectablePairs(-200)
	some := tb.DetectablePairs(-90)
	none := tb.DetectablePairs(100)
	if len(all) != tb.Params.Nodes*(tb.Params.Nodes-1)/2 {
		t.Errorf("all pairs = %d", len(all))
	}
	if len(some) == 0 || len(some) >= len(all) {
		t.Errorf("censoring not effective: %d of %d", len(some), len(all))
	}
	if len(none) != 0 {
		t.Errorf("impossible threshold found %d pairs", len(none))
	}
}

func TestSNRAndRSSIRelation(t *testing.T) {
	tb := Generate(small(), 6)
	for i := 0; i < 5; i++ {
		for j := 5; j < 10; j++ {
			rssi := tb.RSSIdBm(phy.NodeID(i), phy.NodeID(j))
			snr := tb.SNRdB(phy.NodeID(i), phy.NodeID(j))
			wantSNR := rssi - (tb.Params.NoiseFloorDBm + tb.NoiseOffsetDB(phy.NodeID(j)))
			if math.Abs(snr-wantSNR) > 1e-9 {
				t.Fatalf("SNR relation broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestLinkString(t *testing.T) {
	l := Link{Src: 1, Dst: 2, SNRdB: 15.5, DeliveryAt6: 0.97}
	if l.String() == "" {
		t.Error("empty link string")
	}
}

func TestDeepLongRangeClass(t *testing.T) {
	tb := Generate(DefaultLayout(), 42)
	deep := tb.QualifyingLinks(DeepLongRange)
	if len(deep) == 0 {
		t.Fatal("no deep-long-range links")
	}
	for _, l := range deep {
		if l.DeliveryAt6 >= 0.30 {
			t.Fatalf("deep link %v has delivery >= 0.30", l)
		}
		if l.SNRdB < 2 {
			t.Fatalf("deep link %v below the DSSS floor", l)
		}
		// Disjoint from the measured classes.
		if ShortRange.Matches(l) || LongRange.Matches(l) {
			t.Fatalf("deep link %v overlaps another class", l)
		}
	}
	if DeepLongRange.String() != "deep-long-range" {
		t.Error("class name")
	}
}

func TestCSDeliveryTracked(t *testing.T) {
	tb := Generate(DefaultLayout(), 42)
	p := DefaultExperiment()
	p.Duration = 200 * sim.Millisecond
	p.MaxCombos = 4
	res := RunExperiment(tb, p, ShortRange)
	for _, c := range res.Combos {
		if c.CSDelivery < 0 || c.CSDelivery > 1 {
			t.Fatalf("CS delivery ratio %v out of range", c.CSDelivery)
		}
	}
	// Short-range links at their best rate should deliver most frames.
	sum := 0.0
	for _, c := range res.Combos {
		sum += c.CSDelivery
	}
	if mean := sum / float64(len(res.Combos)); mean < 0.5 {
		t.Errorf("short-range mean CS delivery = %v, want high", mean)
	}
}

func TestDSSSRatesInExperiment(t *testing.T) {
	// The experiment harness must accept DSSS rates end to end.
	tb := Generate(DefaultLayout(), 42)
	p := DefaultExperiment()
	p.Duration = 200 * sim.Millisecond
	p.MaxCombos = 2
	p.Rates = capacity.Table80211b[:2] // 1 and 2 Mb/s
	res := RunExperiment(tb, p, ShortRange)
	for _, c := range res.Combos {
		// 1400 B at 1 Mb/s is ~11.4 ms of airtime: total pkt/s under
		// 2 Mb/s best must stay below ~350.
		if c.Mux > 360 || c.CS > 400 {
			t.Errorf("DSSS throughput implausible: mux %v cs %v", c.Mux, c.CS)
		}
		if c.Optimal() == 0 {
			t.Error("DSSS run delivered nothing on short-range links")
		}
	}
}

func TestEnergyOnlyCCAChangesBehavior(t *testing.T) {
	// Energy-only CCA is ~10 dB less sensitive than preamble carrier
	// sense (-82 vs -92 dBm), so deferral decisions differ and so do
	// the measured throughputs.
	tb := Generate(DefaultLayout(), 42)
	p := DefaultExperiment()
	p.Duration = 300 * sim.Millisecond
	p.MaxCombos = 8
	preamble := RunExperiment(tb, p, LongRange)
	p.EnergyOnlyCCA = true
	energy := RunExperiment(tb, p, LongRange)
	same := true
	for i := range preamble.Combos {
		if preamble.Combos[i].CS != energy.Combos[i].CS {
			same = false
			break
		}
	}
	if same {
		t.Error("energy-only CCA produced identical CS results")
	}
	// Concurrency and multiplexing modes ignore CCA flavor entirely.
	for i := range preamble.Combos {
		if preamble.Combos[i].Mux != energy.Combos[i].Mux {
			t.Fatalf("multiplexing changed with CCA flavor at combo %d", i)
		}
	}
}
