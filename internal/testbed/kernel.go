package testbed

// The testbed sim kernel: each two-pair replication — one (combo,
// seed, duration) measurement under every mode and rate — is a
// registered montecarlo kernel, which puts the packet simulator on the
// same executor seam the Monte Carlo estimators have used since PR 2.
// A replication is fully described by (layout params, layout seed,
// experiment knobs, the four node IDs, sim seed): the worker
// regenerates the building bit-identically from that identity and
// replays the combo. Replications are deterministic (one "sample",
// zero variance), so:
//
//   - locally, RunExperiment fans combos out over a Workers()-bounded
//     pool and assembles results in combo order — bit-identical at any
//     `-parallel` width;
//   - under `cs run -workers`, combos travel to the fleet like any
//     other shard job;
//   - under `cs run -cache`, each replication is one cache entry keyed
//     by its full identity, so repeated testbed runs are free.
//
// The request pins Sampler to plain regardless of the run's `-sampler`
// choice: variance-reduction strategies transform random draws, which
// is meaningful for Monte Carlo integrands but would silently change a
// deterministic replay's trajectory (and its cache identity) without
// reducing any variance.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"carriersense/internal/capacity"
	"carriersense/internal/montecarlo"
	"carriersense/internal/phy"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// KernelCombo is the registered name of the two-pair replication
// kernel.
const KernelCombo = "testbed/combo"

// Indices into the combo kernel's component vector: the ComboResult
// fields, links excluded (the scheduler knows which combo it asked
// for).
const (
	idxComboRSSI = iota
	idxComboMux
	idxComboConc
	idxComboCS
	idxComboMuxBase
	idxComboConcBase
	idxComboCSBase
	idxComboCSDelivery
	nComboIdx
)

// comboWire is the serializable identity of one replication. It
// carries only the inputs the replication depends on — MaxCombos and
// the combo-selection seed of ExperimentParams deliberately stay out,
// so the same combo measured under differently sized experiments hits
// the same cache entry.
type comboWire struct {
	Layout          LayoutParams       `json:"layout"`
	LayoutSeed      uint64             `json:"layout_seed"`
	Duration        sim.Time           `json:"duration"`
	FrameBytes      int                `json:"frame_bytes"`
	Rates           capacity.RateTable `json:"rates"`
	CCAThresholdDBm float64            `json:"cca_threshold_dbm"`
	EnergyOnlyCCA   bool               `json:"energy_only_cca,omitempty"`
	Src1            phy.NodeID         `json:"src1"`
	Dst1            phy.NodeID         `json:"dst1"`
	Src2            phy.NodeID         `json:"src2"`
	Dst2            phy.NodeID         `json:"dst2"`
	SimSeed         uint64             `json:"sim_seed"`
}

// experimentParams reconstructs the per-replication experiment knobs.
func (w comboWire) experimentParams() ExperimentParams {
	return ExperimentParams{
		Duration:        w.Duration,
		FrameBytes:      w.FrameBytes,
		Rates:           w.Rates,
		CCAThresholdDBm: w.CCAThresholdDBm,
		EnergyOnlyCCA:   w.EnergyOnlyCCA,
	}
}

func init() {
	montecarlo.RegisterKernel(KernelCombo, func(raw json.RawMessage) (montecarlo.EvalFunc, error) {
		var w comboWire
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, err
		}
		if w.Layout.Nodes < 2 {
			return nil, fmt.Errorf("testbed: combo kernel needs a layout with >= 2 nodes, got %d", w.Layout.Nodes)
		}
		if len(w.Rates) == 0 {
			return nil, fmt.Errorf("testbed: combo kernel needs a non-empty rate table")
		}
		if w.Duration <= 0 {
			return nil, fmt.Errorf("testbed: combo kernel needs a positive duration, got %d", w.Duration)
		}
		for _, id := range []phy.NodeID{w.Src1, w.Dst1, w.Src2, w.Dst2} {
			if id < 0 || int(id) >= w.Layout.Nodes {
				return nil, fmt.Errorf("testbed: combo node %d outside layout of %d nodes", id, w.Layout.Nodes)
			}
		}
		p := w.experimentParams()
		// The replication is deterministic: its randomness comes from
		// SimSeed in the identity, not from the shard stream.
		return func(_ *rng.Source, out []float64) {
			tb := memoTestbed(w.Layout, w.LayoutSeed)
			res := runCombo(tb, p, Link{Src: w.Src1, Dst: w.Dst1}, Link{Src: w.Src2, Dst: w.Dst2}, w.SimSeed)
			out[idxComboRSSI] = res.SenderRSSIdB
			out[idxComboMux] = res.Mux
			out[idxComboConc] = res.Conc
			out[idxComboCS] = res.CS
			out[idxComboMuxBase] = res.MuxBase
			out[idxComboConcBase] = res.ConcBase
			out[idxComboCSBase] = res.CSBase
			out[idxComboCSDelivery] = res.CSDelivery
		}, nil
	})
}

// tbMemoKey is a testbed realization's identity. LayoutParams is a
// flat struct of scalars, so the key is comparable.
type tbMemoKey struct {
	layout LayoutParams
	seed   uint64
}

// tbMemo caches recent realizations so the combos of one experiment —
// evaluated as independent kernel requests, possibly on different
// goroutines or worker processes — regenerate the building once, not
// once per combo. Testbeds are immutable after Generate, so sharing is
// safe.
var tbMemo struct {
	sync.Mutex
	entries map[tbMemoKey]*Testbed
}

// tbMemoMax bounds the memo: an experiment touches one realization, a
// grid sweep a handful. Evicting everything on overflow is crude but
// regeneration is cheap next to a single replication.
const tbMemoMax = 8

func memoTestbed(p LayoutParams, seed uint64) *Testbed {
	key := tbMemoKey{layout: p, seed: seed}
	tbMemo.Lock()
	tb := tbMemo.entries[key]
	tbMemo.Unlock()
	if tb != nil {
		return tb
	}
	tb = Generate(p, seed)
	memoPut(tb)
	return tb
}

// memoPut seeds the memo with a realization the caller already has.
func memoPut(tb *Testbed) {
	if !tb.generated {
		return
	}
	key := tbMemoKey{layout: tb.Params, seed: tb.seed}
	tbMemo.Lock()
	if tbMemo.entries == nil {
		tbMemo.entries = make(map[tbMemoKey]*Testbed)
	}
	if len(tbMemo.entries) >= tbMemoMax {
		clear(tbMemo.entries)
	}
	tbMemo.entries[key] = tb
	tbMemo.Unlock()
}

// comboRequest builds the serializable estimation request for one
// replication.
func comboRequest(tb *Testbed, p ExperimentParams, l1, l2 Link, seed uint64) montecarlo.Request {
	w := comboWire{
		Layout:          tb.Params,
		LayoutSeed:      tb.seed,
		Duration:        p.Duration,
		FrameBytes:      p.FrameBytes,
		Rates:           p.Rates,
		CCAThresholdDBm: p.CCAThresholdDBm,
		EnergyOnlyCCA:   p.EnergyOnlyCCA,
		Src1:            l1.Src,
		Dst1:            l1.Dst,
		Src2:            l2.Src,
		Dst2:            l2.Dst,
		SimSeed:         seed,
	}
	raw, err := json.Marshal(w)
	if err != nil {
		panic(&montecarlo.ExecError{Kernel: KernelCombo, Err: fmt.Errorf("marshal combo params: %w", err)})
	}
	// Sampler stays "" — the canonical plain identity. An empty name
	// resolves to the plain strategy at evaluation regardless of the
	// run's -sampler default (Request.Sampler, not the process default,
	// is what the shard evaluator honors), so the replication is pinned
	// to raw replay under any sampler choice.
	return montecarlo.Request{
		Kernel:  KernelCombo,
		Params:  raw,
		Seed:    seed,
		Samples: 1,
		Dim:     nComboIdx,
	}
}

// comboFromAccs decodes a replication's accumulator vector. Each
// component holds exactly one Welford observation, so Mean is the
// recorded value bit-for-bit.
func comboFromAccs(l1, l2 Link, accs []montecarlo.Accumulator) ComboResult {
	return ComboResult{
		Link1:        l1,
		Link2:        l2,
		SenderRSSIdB: accs[idxComboRSSI].Estimate().Mean,
		Mux:          accs[idxComboMux].Estimate().Mean,
		Conc:         accs[idxComboConc].Estimate().Mean,
		CS:           accs[idxComboCS].Estimate().Mean,
		MuxBase:      accs[idxComboMuxBase].Estimate().Mean,
		ConcBase:     accs[idxComboConcBase].Estimate().Mean,
		CSBase:       accs[idxComboCSBase].Estimate().Mean,
		CSDelivery:   accs[idxComboCSDelivery].Estimate().Mean,
	}
}

// runCombos measures every combo through the installed executor with a
// Workers()-bounded local fan-out. Results are assembled in combo
// order, so the outcome is bit-identical at any pool width, on any
// executor honoring the accumulator contract. Testbeds without a
// recorded seed (hand-built, not Generate'd) have no serializable
// identity and fall back to the in-process serial path, which computes
// the identical results.
func runCombos(tb *Testbed, p ExperimentParams, combos [][2]Link, seeds []uint64) []ComboResult {
	out := make([]ComboResult, len(combos))
	if !tb.generated {
		for i, c := range combos {
			out[i] = runCombo(tb, p, c[0], c[1], seeds[i])
		}
		return out
	}
	memoPut(tb) // in-process kernel evaluations reuse this realization
	exec := montecarlo.CurrentExecutor()
	reqs := make([]montecarlo.Request, len(combos))
	for i, c := range combos {
		reqs[i] = comboRequest(tb, p, c[0], c[1], seeds[i])
	}
	errs := make([]error, len(combos))
	workers := montecarlo.Workers()
	if workers > len(combos) {
		workers = len(combos)
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(combos) {
				return
			}
			accs, err := exec.EstimateVec(context.Background(), reqs[i])
			if err == nil && len(accs) != nComboIdx {
				err = fmt.Errorf("executor returned %d components, want %d", len(accs), nComboIdx)
			}
			if err != nil {
				errs[i] = err
				continue
			}
			out[i] = comboFromAccs(combos[i][0], combos[i][1], accs)
		}
	}
	if workers <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			panic(&montecarlo.ExecError{Kernel: KernelCombo, Err: err})
		}
	}
	return out
}
