// Package testbed generates a synthetic indoor 802.11 testbed and runs
// the paper's §4 experiment protocol on it over the packet simulator.
//
// The paper's physical testbed — "roughly 50 Soekris single-board
// computers scattered about two closely-coupled floors of a large,
// modern office building", Atheros 802.11a radios, one rubber-duck
// antenna each — is proprietary hardware we cannot rerun. Per the
// substitution rule (DESIGN.md §2) we generate a statistically
// equivalent building: nodes scattered over two floors, link gains
// drawn from the paper's own measured propagation model (α ≈ 3.5,
// σ ≈ 10 dB, footnote 2 / Figure 14) with ITU-style floor attenuation,
// frozen into a static symmetric gain matrix for the run.
package testbed

import (
	"fmt"
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/phy"
	"carriersense/internal/rng"
)

// LayoutParams describes the synthetic building and radio hardware.
type LayoutParams struct {
	Nodes       int     // total node count (paper: ~50)
	FloorWidthM float64 // building extent, meters
	FloorDepthM float64
	Floors      int     // paper: two closely-coupled floors
	FloorGapM   float64 // vertical spacing between floors

	Alpha      float64 // path loss exponent (paper's fit: 3.5)
	SigmaDB    float64 // shadowing σ (paper's fit: ~10 dB)
	FloorAttDB float64 // per-floor penetration loss ("closely-coupled")

	// ShadowCorrelation is the fraction of shadowing variance carried
	// by per-node components shared across a node's links. Real
	// shadowing is spatially correlated — a node buried in a machine
	// room is hard to reach from everywhere — and footnote 14 of the
	// paper concedes its fully-uncorrelated assumption "is not quite
	// true". 0 is fully path-independent, 1 fully node-determined.
	ShadowCorrelation float64

	// Fade is the per-frame residual fading model (see
	// phy.Config.Fade); the link census integrates over it. Each
	// link's deep-fade outage probability is drawn per path from a
	// lognormal around Fade.OutageProb (see OutageSpreadLn).
	Fade capacity.FadeModel

	// OutageSpreadLn is the log-domain spread of per-link outage
	// probabilities: most links lose almost nothing to bursts, a tail
	// of paths (long delay spread, busy corridors) loses 10-20%.
	OutageSpreadLn float64

	// OutageDistanceM scales the growth of burst losses with path
	// length: longer indoor paths accumulate delay spread and
	// obstructed Fresnel zones, so the per-link outage probability is
	// multiplied by 1 + (d/OutageDistanceM)². This is what makes
	// high-delivery links skew short and SNR-rich, as in the paper's
	// census (94%-delivery links averaged ≈27 dB SNR).
	OutageDistanceM float64

	TxPowerDBm    float64 // paper: ~15 dBm
	RefLoss1mDB   float64 // loss at 1 m (~47 dB at 5.2 GHz)
	NoiseFloorDBm float64 // paper: ~-95 dBm

	// NoiseSigmaDB adds per-node receiver noise floor variation
	// (footnote 20 corrects for exactly this in the real testbed).
	NoiseSigmaDB float64
}

// DefaultLayout returns parameters matching the paper's description
// and measured propagation fit.
func DefaultLayout() LayoutParams {
	return LayoutParams{
		Nodes:       50,
		FloorWidthM: 100,
		FloorDepthM: 40,
		Floors:      2,
		FloorGapM:   4,

		Alpha:             3.5,
		SigmaDB:           10,
		FloorAttDB:        8,
		ShadowCorrelation: 0.8,
		Fade:              capacity.DefaultFade(),
		OutageSpreadLn:    1.2,
		OutageDistanceM:   30,

		TxPowerDBm:    15,
		RefLoss1mDB:   47,
		NoiseFloorDBm: -95,
		NoiseSigmaDB:  1.5,
	}
}

// Node is one testbed radio's placement.
type Node struct {
	ID    phy.NodeID
	X, Y  float64 // meters within the floor
	Floor int
}

// Pos3 returns the node's 3-D coordinates in meters.
func (n Node) Pos3() (x, y, z float64) {
	return n.X, n.Y, float64(n.Floor)
}

// Testbed is a frozen realization: node placements, the symmetric gain
// matrix, and per-node noise floor offsets.
type Testbed struct {
	Params LayoutParams
	Nodes  []Node
	// gainDB[i][j] is the channel gain in dB from node i to node j
	// (symmetric: shadowing is a property of the path).
	gainDB [][]float64
	// gainLin[i][j] is 10^(gainDB[i][j]/10), precomputed so the packet
	// simulator's per-frame power queries never convert dB
	// (phy.LinearChannel).
	gainLin [][]float64
	// noiseOffsetDB[i] is node i's receiver noise floor deviation.
	noiseOffsetDB []float64
	// outageProb[i][j] is the per-link deep-fade probability
	// (symmetric).
	outageProb [][]float64
	// seed is the Generate seed; together with Params it is the
	// realization's serializable identity — what lets a two-pair
	// replication travel to a worker process as a sim kernel and be
	// rebuilt there bit-identically (see kernel.go).
	seed      uint64
	generated bool
}

// Generate creates a testbed realization from the given seed. The same
// (params, seed) always yields the same building.
func Generate(p LayoutParams, seed uint64) *Testbed {
	src := rng.New(seed)
	tb := &Testbed{Params: p, seed: seed, generated: true}
	tb.Nodes = make([]Node, p.Nodes)
	for i := range tb.Nodes {
		tb.Nodes[i] = Node{
			ID:    phy.NodeID(i),
			X:     src.Uniform(0, p.FloorWidthM),
			Y:     src.Uniform(0, p.FloorDepthM),
			Floor: src.IntN(p.Floors),
		}
	}
	tb.gainDB = make([][]float64, p.Nodes)
	for i := range tb.gainDB {
		tb.gainDB[i] = make([]float64, p.Nodes)
	}
	// Decompose shadowing into per-node components (correlated across
	// a node's links) plus a per-path residual, preserving total
	// variance SigmaDB².
	rho := p.ShadowCorrelation
	nodeComp := make([]float64, p.Nodes)
	for i := range nodeComp {
		nodeComp[i] = src.Normal(0, p.SigmaDB)
	}
	pathScale := math.Sqrt(1 - rho*rho)
	for i := 0; i < p.Nodes; i++ {
		for j := i + 1; j < p.Nodes; j++ {
			shadow := rho*(nodeComp[i]+nodeComp[j])/math.Sqrt2 +
				pathScale*src.Normal(0, p.SigmaDB)
			g := tb.medianGainDB(i, j) + shadow
			tb.gainDB[i][j] = g
			tb.gainDB[j][i] = g
		}
	}
	tb.gainLin = make([][]float64, p.Nodes)
	for i := range tb.gainLin {
		tb.gainLin[i] = make([]float64, p.Nodes)
		for j := range tb.gainLin[i] {
			if i == j {
				tb.gainLin[i][j] = 1
				continue
			}
			tb.gainLin[i][j] = phy.DBToLin(tb.gainDB[i][j])
		}
	}
	tb.noiseOffsetDB = make([]float64, p.Nodes)
	for i := range tb.noiseOffsetDB {
		tb.noiseOffsetDB[i] = src.Normal(0, p.NoiseSigmaDB)
	}
	tb.outageProb = make([][]float64, p.Nodes)
	for i := range tb.outageProb {
		tb.outageProb[i] = make([]float64, p.Nodes)
	}
	for i := 0; i < p.Nodes; i++ {
		for j := i + 1; j < p.Nodes; j++ {
			op := p.Fade.OutageProb * math.Exp(src.Normal(0, p.OutageSpreadLn))
			if p.OutageDistanceM > 0 {
				rel := tb.DistanceM(i, j) / p.OutageDistanceM
				op *= 1 + rel*rel
			}
			if op > 0.5 {
				op = 0.5
			}
			tb.outageProb[i][j] = op
			tb.outageProb[j][i] = op
		}
	}
	return tb
}

// DistanceM returns the 3-D distance between two nodes in meters,
// with floors contributing their vertical gap.
func (tb *Testbed) DistanceM(i, j int) float64 {
	a, b := tb.Nodes[i], tb.Nodes[j]
	dz := float64(a.Floor-b.Floor) * tb.Params.FloorGapM
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// medianGainDB is the deterministic part of the link gain: reference
// loss, power-law path loss, floor penetration.
func (tb *Testbed) medianGainDB(i, j int) float64 {
	d := tb.DistanceM(i, j)
	if d < 1 {
		d = 1
	}
	floors := tb.Nodes[i].Floor - tb.Nodes[j].Floor
	if floors < 0 {
		floors = -floors
	}
	return -(tb.Params.RefLoss1mDB +
		10*tb.Params.Alpha*math.Log10(d) +
		tb.Params.FloorAttDB*float64(floors))
}

// GainDB implements phy.Channel.
func (tb *Testbed) GainDB(from, to phy.NodeID) float64 {
	if from == to {
		return 0
	}
	return tb.gainDB[from][to]
}

// GainLin implements phy.LinearChannel: the precomputed linear power
// gain 10^(GainDB/10).
func (tb *Testbed) GainLin(from, to phy.NodeID) float64 {
	if from == to {
		return 1
	}
	return tb.gainLin[from][to]
}

// Seed returns the Generate seed and whether the testbed carries one
// (a zero-value Testbed does not). (Params, Seed) is the realization's
// full identity: Generate(Params, Seed) rebuilds it bit-identically.
func (tb *Testbed) Seed() (uint64, bool) {
	return tb.seed, tb.generated
}

// OutageProbability implements phy.OutageChannel.
func (tb *Testbed) OutageProbability(from, to phy.NodeID) float64 {
	if from == to || from < 0 || to < 0 {
		return 0
	}
	return tb.outageProb[from][to]
}

// NoiseOffsetDB returns node i's receiver noise floor deviation.
func (tb *Testbed) NoiseOffsetDB(i phy.NodeID) float64 {
	return tb.noiseOffsetDB[i]
}

// RSSIdBm returns the long-run received power of node from at node to.
func (tb *Testbed) RSSIdBm(from, to phy.NodeID) float64 {
	return tb.Params.TxPowerDBm + tb.GainDB(from, to)
}

// SNRdB returns the long-run SNR of the from→to link at node to.
func (tb *Testbed) SNRdB(from, to phy.NodeID) float64 {
	return tb.RSSIdBm(from, to) - (tb.Params.NoiseFloorDBm + tb.noiseOffsetDB[to])
}

// Link is a directed sender→receiver pair with its link-level census
// metrics.
type Link struct {
	Src, Dst    phy.NodeID
	SNRdB       float64
	DeliveryAt6 float64 // expected 1400-byte delivery rate at 6 Mb/s
}

// String renders the link for logs.
func (l Link) String() string {
	return fmt.Sprintf("%d->%d snr=%.1fdB d6=%.2f", l.Src, l.Dst, l.SNRdB, l.DeliveryAt6)
}

// Census enumerates all directed links with their expected 6 Mb/s
// delivery rates — the paper's link-level metric for categorizing
// short-range (≥94%) versus long-range (80-95%) pairs.
func (tb *Testbed) Census() []Link {
	rate6 := capacity.Table80211a[0]
	var links []Link
	for i := 0; i < tb.Params.Nodes; i++ {
		for j := 0; j < tb.Params.Nodes; j++ {
			if i == j {
				continue
			}
			snr := tb.SNRdB(phy.NodeID(i), phy.NodeID(j))
			fade := tb.Params.Fade.WithOutageProb(tb.outageProb[i][j])
			links = append(links, Link{
				Src:         phy.NodeID(i),
				Dst:         phy.NodeID(j),
				SNRdB:       snr,
				DeliveryAt6: fade.ExpectedDeliveryRate(rate6, snr, 1400),
			})
		}
	}
	return links
}

// RangeClass selects the paper's two experiment categories.
type RangeClass int

// Range classes.
const (
	// ShortRange: links better than 94% delivery at 6 Mb/s (§4.1;
	// average SNR ≈ 27 dB, similar to an R_max = 30 model network).
	ShortRange RangeClass = iota
	// LongRange: links between 80% and 95% (§4.2; average SNR ≈ 16 dB,
	// similar to R_max = 70).
	LongRange
	// DeepLongRange: links below 30% delivery at 6 Mb/s but with SNR
	// still above the DSSS 1 Mb/s floor — the regime §4.2 could NOT
	// probe ("pushing farther into the long range regime runs up
	// against the limits of bitrate adaptability in 11a mode") and
	// suggests 11g's lower rates for. The extension experiment
	// Extension11g exercises it.
	DeepLongRange
)

// String returns the class name.
func (rc RangeClass) String() string {
	switch rc {
	case ShortRange:
		return "short-range"
	case LongRange:
		return "long-range"
	case DeepLongRange:
		return "deep-long-range"
	default:
		return "?"
	}
}

// Matches reports whether a link falls in the class's delivery band.
func (rc RangeClass) Matches(l Link) bool {
	switch rc {
	case ShortRange:
		return l.DeliveryAt6 >= 0.94
	case LongRange:
		return l.DeliveryAt6 >= 0.80 && l.DeliveryAt6 < 0.95
	case DeepLongRange:
		return l.DeliveryAt6 < 0.30 && l.SNRdB >= 2
	default:
		return false
	}
}

// QualifyingLinks returns the directed links in the class's band.
func (tb *Testbed) QualifyingLinks(rc RangeClass) []Link {
	var out []Link
	for _, l := range tb.Census() {
		if rc.Matches(l) {
			out = append(out, l)
		}
	}
	return out
}

// DetectablePairs returns undirected pairs whose RSSI clears the given
// detection threshold, with distance and measured SNR — the Figure 14
// data set (sub-threshold links are invisible, which is why the fit
// must handle censoring).
type DetectablePair struct {
	I, J      int
	DistanceM float64
	SNRdB     float64
}

// DetectablePairs lists pairs above the detection threshold in dBm.
func (tb *Testbed) DetectablePairs(thresholdDBm float64) []DetectablePair {
	var out []DetectablePair
	for i := 0; i < tb.Params.Nodes; i++ {
		for j := i + 1; j < tb.Params.Nodes; j++ {
			rssi := tb.RSSIdBm(phy.NodeID(i), phy.NodeID(j))
			if rssi < thresholdDBm {
				continue
			}
			out = append(out, DetectablePair{
				I: i, J: j,
				DistanceM: tb.DistanceM(i, j),
				SNRdB:     tb.SNRdB(phy.NodeID(i), phy.NodeID(j)),
			})
		}
	}
	return out
}
