package testbed

// Determinism suite for the testbed sim kernel: the §4 experiment must
// produce byte-identical results serial vs parallel, through the
// result cache, and over a distributed worker fleet — the same
// contract the Monte Carlo kernels have carried since PR 2, now
// extended to packet-level replications.

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"carriersense/internal/cache"
	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// kernelExperiment is a small but non-trivial experiment: several
// combos, two rates, fading on.
func kernelExperiment() (*Testbed, ExperimentParams) {
	tb := Generate(DefaultLayout(), 42)
	p := DefaultExperiment()
	p.Duration = 100 * sim.Millisecond
	p.MaxCombos = 5
	p.Rates = p.Rates[:2]
	return tb, p
}

func TestComboKernelRegistered(t *testing.T) {
	for _, name := range montecarlo.KernelNames() {
		if name == KernelCombo {
			return
		}
	}
	t.Fatalf("kernel %q not registered", KernelCombo)
}

// TestExperimentSerialVsParallelBitIdentity pins the fan-out: any
// worker pool width assembles the identical experiment.
func TestExperimentSerialVsParallelBitIdentity(t *testing.T) {
	tb, p := kernelExperiment()
	run := func(workers int) ExperimentResult {
		if err := montecarlo.SetMaxWorkers(workers); err != nil {
			t.Fatal(err)
		}
		defer montecarlo.ResetMaxWorkers()
		return RunExperiment(tb, p, ShortRange)
	}
	serial := run(1)
	if len(serial.Combos) == 0 {
		t.Fatal("no combos measured")
	}
	for _, workers := range []int{2, 7} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d result differs from serial", workers)
		}
	}
}

// TestExperimentExecutorVsDirectBitIdentity pins the kernel seam
// itself: the executor-routed path must reproduce the direct
// runCombo-loop path bit for bit (the fallback testbeds without a
// recorded seed take).
func TestExperimentExecutorVsDirectBitIdentity(t *testing.T) {
	tb, p := kernelExperiment()
	routed := RunExperiment(tb, p, LongRange)

	// Replay the selection plan by hand and run each combo directly.
	direct := func() ExperimentResult {
		src := rng.New(p.Seed)
		links := tb.QualifyingLinks(LongRange)
		src.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
		combos := selectCombos(links, p.MaxCombos, src)
		res := ExperimentResult{Class: LongRange}
		for _, c := range combos {
			res.Combos = append(res.Combos, runCombo(tb, p, c[0], c[1], src.Uint64()))
		}
		return res
	}()
	if !reflect.DeepEqual(routed, direct) {
		t.Fatal("executor-routed experiment differs from the direct path")
	}
}

// TestExperimentCacheBitIdentity runs the experiment against a caching
// executor twice: the second pass must be all hits and byte-identical.
func TestExperimentCacheBitIdentity(t *testing.T) {
	tb, p := kernelExperiment()
	c := cache.New(nil, cache.Options{Dir: t.TempDir()})
	montecarlo.SetExecutor(c)
	defer montecarlo.SetExecutor(nil)

	first := RunExperiment(tb, p, ShortRange)
	misses := c.Stats().Misses
	if misses == 0 {
		t.Fatal("first run hit an empty cache")
	}
	second := RunExperiment(tb, p, ShortRange)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached experiment differs from evaluated one")
	}
	st := c.Stats()
	if st.Misses != misses {
		t.Fatalf("second run missed: %d -> %d misses", misses, st.Misses)
	}
	if st.Hits == 0 {
		t.Fatal("second run recorded no hits")
	}
}

// TestExperimentRemoteBitIdentity runs the experiment over two real
// worker servers and compares with the local run.
func TestExperimentRemoteBitIdentity(t *testing.T) {
	tb, p := kernelExperiment()
	local := RunExperiment(tb, p, ShortRange)

	hosts := make([]string, 2)
	for i := range hosts {
		srv := httptest.NewServer(dist.NewServer())
		defer srv.Close()
		hosts[i] = strings.TrimPrefix(srv.URL, "http://")
	}
	remote, err := dist.NewRemote(hosts)
	if err != nil {
		t.Fatal(err)
	}
	montecarlo.SetExecutor(remote)
	defer montecarlo.SetExecutor(nil)
	distributed := RunExperiment(tb, p, ShortRange)
	if !reflect.DeepEqual(local, distributed) {
		t.Fatal("distributed experiment differs from local")
	}
}

// TestComboWireExcludesSelectionKnobs pins the cache-identity choice:
// the same combo measured under a larger MaxCombos budget (or a
// different selection seed) reuses the same replication entries.
func TestComboWireExcludesSelectionKnobs(t *testing.T) {
	tb, p := kernelExperiment()
	l1 := Link{Src: 1, Dst: 2}
	l2 := Link{Src: 3, Dst: 4}
	a := comboRequest(tb, p, l1, l2, 99)
	p2 := p
	p2.MaxCombos = p.MaxCombos + 25
	p2.Seed = p.Seed + 1
	b := comboRequest(tb, p2, l1, l2, 99)
	if cache.Key(a) != cache.Key(b) {
		t.Fatal("MaxCombos/selection seed leaked into the replication identity")
	}
	p3 := p
	p3.EnergyOnlyCCA = !p.EnergyOnlyCCA
	c := comboRequest(tb, p3, l1, l2, 99)
	if cache.Key(a) == cache.Key(c) {
		t.Fatal("CCA flavor did not change the replication identity")
	}
}
