package engine

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"carriersense/internal/montecarlo"
	"carriersense/internal/obs"
	"carriersense/internal/plot"
	"carriersense/internal/prov"
	"carriersense/internal/sampling"
)

// Options configures one engine invocation.
type Options struct {
	// Seed, when non-empty, is applied as `-set seed=<Seed>` to param
	// structs that have a Seed field (scenarios without randomness
	// ignore it).
	Seed string
	// Scale is the sampling effort hint: "smoke", "bench", or "full".
	// Empty means "bench". Scenarios with a Scale param field receive
	// it there too.
	Scale string
	// Parallel pins the sharded Monte Carlo worker pool width;
	// 0 keeps GOMAXPROCS, negative is rejected. Any width yields
	// bit-identical results.
	Parallel int
	// Executor, when non-nil, routes every kernel-based Monte Carlo
	// estimation through it for the duration of the run — the seam the
	// distributed shard executor (internal/dist, `cs run -workers`)
	// plugs into. nil keeps the in-process pool. Results are
	// bit-identical for any executor that honors the shard-order merge
	// contract.
	Executor montecarlo.Executor
	// Sampler names the sampling strategy stamped into every kernel
	// estimation ("" = plain). Strategies are registered in
	// internal/sampling; the name becomes part of each request's
	// identity (dist wire protocol, cache key), so sampled runs keep
	// the full determinism contract. The virtual strategy "auto"
	// installs the variance-aware auto-scheduler, which pilots the
	// registered strategies per kernel and rewrites every request to
	// the per-kernel winner before it reaches the wire or the cache.
	Sampler string
	// AutoTable, when non-empty with Sampler "auto", persists the
	// scheduler's per-kernel choices as a cache.KeyEpoch-stamped JSON
	// table so repeat runs skip the pilot rounds.
	AutoTable string
	// RelErr, when > 0, switches every kernel estimation into
	// convergence mode: a sampling.Driver grows each point's budget
	// geometrically (whole shards, no sample re-evaluated) until the
	// primary component's relative standard error is at most RelErr.
	// Each variant's artifacts gain a sampling.csv ledger and
	// sampling_* metrics.
	RelErr float64
	// MaxSamples caps each driven point's budget; 0 caps at the
	// scenario's own per-point sample count. Requires RelErr > 0.
	MaxSamples int
	// Sets are "k=v" parameter overrides applied in order.
	Sets []string
	// Grid are "k=v1,v2,..." axes expanded into a cross product of
	// variant runs.
	Grid []string
	// OutDir, when non-empty, is the parent under which a timestamped
	// run directory (artifacts: output.txt, result.json, *.csv) is
	// created. Empty disables artifact files.
	OutDir string
	// Exec describes the execution shape (fleet, wire, cache, faults,
	// experiment coordinates) for the run's provenance manifest. The
	// engine cannot see through the Executor interface, so the caller
	// that assembled the chain reports it here.
	Exec prov.ExecInfo
	// Stdout receives the live text report; nil discards it.
	Stdout io.Writer
	// Now stamps the run directory; zero means time.Now.
	Now time.Time
}

// Result is the outcome of one scenario variant.
type Result struct {
	Scenario string `json:"scenario"`
	Variant  string `json:"variant,omitempty"` // grid point label
	Scale    string `json:"scale"`
	// Sampler is the effective sampling strategy the variant ran under.
	Sampler string `json:"sampler"`
	// RelErr is the convergence target (0 = fixed budgets).
	RelErr float64 `json:"rel_err,omitempty"`
	// SamplerChoices are the auto-scheduler's resolved per-kernel
	// strategies ("auto" runs only). The choice is a pure function of
	// (kernel, params, seed), so the map is deterministic and safe in
	// the byte-compared result.json.
	SamplerChoices map[string]string  `json:"sampler_choices,omitempty"`
	Params         any                `json:"params"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
	Text           string             `json:"-"`
	Elapsed        time.Duration      `json:"-"`
	// Perf carries the variant's observability data: wall time plus the
	// delta of every obs registry series across the variant (stage
	// timings, shard counts, wire bytes, cache traffic). It is
	// deliberately excluded from result.json — wall-clock values change
	// run to run, and result.json is byte-compared by the determinism
	// contract — and lands in the run's metrics.json/timings.csv
	// instead.
	Perf map[string]float64 `json:"-"`

	csvs map[string][]byte
}

// RunContext is the scenario's view of one variant run.
type RunContext struct {
	// Context carries cancellation from the CLI.
	Context context.Context
	// Params is the populated parameter struct (same concrete type as
	// Scenario.NewParams()).
	Params any
	// Scale is the resolved sampling effort: "smoke", "bench", "full".
	Scale string
	// Parallel is the configured pool width (0 = GOMAXPROCS).
	Parallel int

	out    io.Writer
	result *Result
}

// Out returns the writer for the scenario's text report. It is teed to
// the caller's stdout and the output.txt artifact.
func (rc *RunContext) Out() io.Writer { return rc.out }

// Printf writes formatted text to the report.
func (rc *RunContext) Printf(format string, args ...any) {
	fmt.Fprintf(rc.out, format, args...)
}

// Metric records a named headline number for result.json (and the
// determinism tests).
func (rc *RunContext) Metric(name string, v float64) {
	if rc.result.Metrics == nil {
		rc.result.Metrics = map[string]float64{}
	}
	rc.result.Metrics[name] = v
}

// Chart renders a chart into the text report and registers its series
// as a CSV artifact under name.csv.
func (rc *RunContext) Chart(name string, c plot.Chart, width, height int) {
	c.Render(rc.out, width, height)
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		fmt.Fprintf(rc.out, "[chart %s: csv artifact skipped: %v]\n", name, err)
		return
	}
	rc.rawCSV(name, []byte(b.String()))
}

// CSV registers a tabular artifact written as name.csv in the run
// directory. headers may be nil when rows already include them.
func (rc *RunContext) CSV(name string, headers []string, rows [][]string) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if len(headers) > 0 {
		_ = w.Write(headers)
	}
	_ = w.WriteAll(rows) // WriteAll flushes; strings.Builder cannot fail
	rc.rawCSV(name, []byte(b.String()))
}

// Table renders a plot.Table into the text report and registers it as
// a CSV artifact.
func (rc *RunContext) Table(name string, t plot.Table) {
	t.Render(rc.out)
	rc.CSV(name, t.Headers, t.Rows)
}

func (rc *RunContext) rawCSV(name string, data []byte) {
	if rc.result.csvs == nil {
		rc.result.csvs = map[string][]byte{}
	}
	rc.result.csvs[name] = data
}

// Run resolves a scenario by name, expands its grid, executes every
// variant, writes artifacts, and returns the per-variant results.
func Run(ctx context.Context, name string, opts Options) ([]*Result, error) {
	sc, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (try `cs list`)", name)
	}
	if opts.Parallel < 0 {
		return nil, fmt.Errorf("engine: -parallel must be >= 1 (or 0 for GOMAXPROCS), got %d", opts.Parallel)
	}
	if opts.Parallel > 0 {
		if err := montecarlo.SetMaxWorkers(opts.Parallel); err != nil {
			return nil, err
		}
		defer montecarlo.ResetMaxWorkers()
	}
	if opts.RelErr < 0 {
		return nil, fmt.Errorf("engine: -relerr must be > 0, got %g", opts.RelErr)
	}
	if opts.MaxSamples < 0 {
		return nil, fmt.Errorf("engine: -max-samples must be >= 1, got %d", opts.MaxSamples)
	}
	if opts.MaxSamples > 0 && opts.RelErr == 0 {
		return nil, fmt.Errorf("engine: -max-samples requires -relerr")
	}
	if opts.Sampler == sampling.Auto {
		// "auto" is virtual: never registered, resolved per kernel by
		// the AutoScheduler decorator runVariant installs. Stamp it
		// unchecked; if the decorator were somehow absent, the first
		// estimation fails loudly at sampler lookup.
		montecarlo.ForceDefaultSampler(sampling.Auto)
		defer montecarlo.ForceDefaultSampler("")
	} else {
		if err := sampling.Validate(opts.Sampler); err != nil {
			return nil, err
		}
		if opts.Sampler != "" {
			// Stamp the strategy into every kernel request issued during
			// the run (the executor seam's sampler analogue).
			if err := montecarlo.SetDefaultSampler(opts.Sampler); err != nil {
				return nil, err
			}
			defer func() { _ = montecarlo.SetDefaultSampler("") }()
		}
	}
	if opts.AutoTable != "" && opts.Sampler != sampling.Auto {
		return nil, fmt.Errorf("engine: -auto-table requires -sampler auto")
	}
	scale := opts.Scale
	if scale == "" {
		scale = "bench"
	}
	switch scale {
	case "smoke", "bench", "full":
	default:
		return nil, fmt.Errorf("unknown scale %q (want smoke, bench, or full)", scale)
	}

	var axes []GridAxis
	for _, spec := range opts.Grid {
		ax, err := ParseGridAxis(spec)
		if err != nil {
			return nil, err
		}
		axes = append(axes, ax)
	}
	points := ExpandGrid(axes)

	runDir := ""
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	if opts.OutDir != "" {
		var err error
		runDir, err = makeRunDir(opts.OutDir, now.UTC().Format("20060102-150405")+"-"+sc.Name)
		if err != nil {
			return nil, err
		}
	}

	runStart := time.Now()
	preSamples := montecarlo.EvaluatedSamples()
	preSnap := obs.Default().SnapshotFlows()
	var results []*Result
	for _, point := range points {
		res, err := runVariant(ctx, sc, point, scale, opts)
		if err != nil {
			return results, fmt.Errorf("scenario %s%s: %w", sc.Name, variantSuffix(point), err)
		}
		if runDir != "" {
			if err := writeArtifacts(runDir, res); err != nil {
				return results, err
			}
		}
		results = append(results, res)
	}
	if runDir != "" {
		// The run's observability artifacts live beside the
		// deterministic ones but are never part of the byte-identity
		// contract: metrics.json carries the run summary (elapsed,
		// samples, samples/sec) plus the registry delta, timings.csv the
		// per-variant per-stage breakdown.
		sum := runSummary{
			Elapsed:          time.Since(runStart),
			EvaluatedSamples: montecarlo.EvaluatedSamples() - preSamples,
			RegistryDelta:    obs.SnapshotDelta(preSnap, obs.Default().SnapshotFlows()),
		}
		if err := writeRunMetrics(runDir, sc.Name, results, sum); err != nil {
			return results, err
		}
		// Stamp provenance last: the manifest digests every artifact
		// above, so anything written to the run dir after this point is
		// drift that `cs verify` reports.
		if err := writeManifest(runDir, sc.Name, scale, opts, results, sum, now); err != nil {
			return results, err
		}
	}
	if runDir != "" && opts.Stdout != nil {
		fmt.Fprintf(opts.Stdout, "\nartifacts: %s\n", runDir)
	}
	return results, nil
}

// boundExecutor forwards estimations to the configured executor under
// the run's context instead of the context.Background() the kernel
// entry points pass, so canceling engine.Run cancels distributed work.
// It is also the engine's estimation-level instrumentation point:
// every kernel estimation a variant issues is timed into
// cs_engine_estimate_seconds and, under -trace, emitted as a span on
// the engine lane.
type boundExecutor struct {
	ctx   context.Context
	inner montecarlo.Executor
}

// EstimateVec implements montecarlo.Executor.
func (b boundExecutor) EstimateVec(_ context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	tr := obs.CurrentTracer()
	var ts time.Duration
	if tr != nil {
		ts = tr.Now()
	}
	t0 := time.Now()
	accs, err := b.inner.EstimateVec(b.ctx, req)
	mEstimateSeconds.Observe(time.Since(t0).Seconds())
	if tr != nil {
		tr.Span("estimate", "engine", obs.TidEngine, ts,
			map[string]any{"kernel": req.Kernel, "samples": req.Samples, "dim": req.Dim})
	}
	return accs, err
}

// localExecutor routes through the in-process pool; installed so the
// instrumented boundExecutor wraps local runs exactly like remote or
// cached ones (same semantics as montecarlo's own default executor).
type localExecutor struct{}

func (localExecutor) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	return montecarlo.RunRequest(ctx, req)
}

// makeRunDir creates a fresh run directory under parent. The stamp is
// second-resolution, so two runs of the same scenario within one
// second would land on the same path and silently overwrite each
// other's artifacts; os.Mkdir detects the collision atomically and a
// serial suffix (-2, -3, ...) keeps every run's artifacts intact.
func makeRunDir(parent, stamp string) (string, error) {
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return "", fmt.Errorf("create artifact dir: %w", err)
	}
	for serial := 1; serial <= 10000; serial++ {
		dir := filepath.Join(parent, stamp)
		if serial > 1 {
			dir = filepath.Join(parent, fmt.Sprintf("%s-%d", stamp, serial))
		}
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			return dir, nil
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("create run dir: %w", err)
		}
	}
	return "", fmt.Errorf("create run dir: %s: too many runs with this stamp", stamp)
}

func variantSuffix(point GridPoint) string {
	if len(point) == 0 {
		return ""
	}
	return " [" + point.Label() + "]"
}

func runVariant(ctx context.Context, sc Scenario, point GridPoint, scale string, opts Options) (res *Result, err error) {
	// Kernel-routed estimations report executor failures (an
	// unreachable worker fleet, an exhausted shard retry budget) as a
	// typed panic so the model's estimators keep value-returning
	// signatures; surface them as ordinary errors here.
	defer func() {
		if r := recover(); r != nil {
			if execErr, ok := r.(*montecarlo.ExecError); ok {
				res, err = nil, execErr
				return
			}
			panic(r)
		}
	}()
	// Install the variant's executor chain: the configured executor
	// (worker fleet, cache, or the in-process default), wrapped in a
	// fresh convergence driver when -relerr is set — fresh per variant
	// so each variant's sampling ledger is its own. Kernel-routed
	// estimators have no ctx parameter, so the executor hook receives
	// context.Background(); bind the run's context here so
	// cancellation reaches in-flight shard work.
	var driver *sampling.Driver
	exec := opts.Executor
	if opts.RelErr > 0 {
		driver, err = sampling.NewDriver(exec, sampling.DriverOptions{
			RelErr:     opts.RelErr,
			MaxSamples: opts.MaxSamples,
		})
		if err != nil {
			return nil, err
		}
		exec = driver
	}
	// The variance-reduction decorators sit outside the driver so a
	// driven point's rounds all share one pilot β (cv) and one resolved
	// strategy (auto): the coefficients are stamped on the full request
	// before the driver splits it into ranged rounds.
	var cvdec *sampling.ControlVariates
	var auto *sampling.AutoScheduler
	if opts.Sampler == sampling.CV || opts.Sampler == sampling.Auto {
		cvdec = sampling.NewControlVariates(exec)
		exec = cvdec
	}
	if opts.Sampler == sampling.Auto {
		// Pilot probes bypass the driver/cv chain — a pilot is a
		// fixed-budget measurement, not something to drive to
		// convergence — and go to the configured base executor, so a
		// fleet or cache still serves them.
		auto = sampling.NewAuto(exec, opts.Executor, cvdec, sampling.AutoOptions{TablePath: opts.AutoTable, Target: opts.RelErr})
		exec = auto
	}
	if exec == nil {
		exec = localExecutor{}
	}
	// Always install the bound, instrumented executor — for local runs
	// it wraps the same RunRequest path the montecarlo default uses, so
	// semantics (and results) are unchanged while estimation timings
	// and run-context cancellation apply uniformly.
	montecarlo.SetExecutor(boundExecutor{ctx: ctx, inner: exec})
	defer montecarlo.SetExecutor(nil)
	params := sc.NewParams()
	if opts.Seed != "" && HasParam(params, "seed") {
		if err := SetParam(params, "seed", opts.Seed); err != nil {
			return nil, err
		}
	}
	if HasParam(params, "scale") {
		if err := SetParam(params, "scale", scale); err != nil {
			return nil, err
		}
	}
	for _, kv := range opts.Sets {
		key, value, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad -set %q (want key=value)", kv)
		}
		if err := SetParam(params, strings.TrimSpace(key), strings.TrimSpace(value)); err != nil {
			return nil, err
		}
	}
	for _, kv := range point {
		if err := SetParam(params, kv.Key, kv.Value); err != nil {
			return nil, err
		}
	}

	sampler := opts.Sampler
	if sampler == "" {
		sampler = montecarlo.SamplerPlain
	}
	res = &Result{
		Scenario: sc.Name,
		Variant:  point.Label(),
		Scale:    scale,
		Sampler:  sampler,
		RelErr:   opts.RelErr,
		Params:   params,
	}
	var text strings.Builder
	out := io.Writer(&text)
	if opts.Stdout != nil {
		out = io.MultiWriter(&text, opts.Stdout)
	}
	rc := &RunContext{
		Context:  ctx,
		Params:   params,
		Scale:    scale,
		Parallel: opts.Parallel,
		out:      out,
		result:   res,
	}
	if res.Variant != "" {
		rc.Printf("--- variant: %s ---\n", res.Variant)
	}
	tr := obs.CurrentTracer()
	var ts time.Duration
	if tr != nil {
		tr.NameThread(obs.TidEngine, "engine")
		ts = tr.Now()
	}
	pre := obs.Default().SnapshotFlows()
	start := time.Now()
	if err := sc.Run(rc); err != nil {
		return nil, err
	}
	if driver != nil {
		recordSampling(rc, driver, cvdec, auto)
	}
	if auto != nil {
		recordChoices(rc, auto)
	}
	res.Elapsed = time.Since(start)
	res.Perf = obs.SnapshotDelta(pre, obs.Default().SnapshotFlows())
	res.Perf["wall_seconds"] = res.Elapsed.Seconds()
	if tr != nil {
		label := sc.Name
		if res.Variant != "" {
			label += " [" + res.Variant + "]"
		}
		tr.Span("variant "+label, "engine", obs.TidEngine, ts, nil)
	}
	res.Text = text.String()
	return res, nil
}

// recordSampling appends the convergence driver's per-point ledger to
// the variant's report: a sampling.csv artifact (one row per driven
// estimation point — sampler, samples spent, achieved relative error,
// converged or capped), headline sampling_* metrics in result.json,
// and one summary line in the text report. Everything here is a pure
// function of (params, seed, sampler, target), so the output stays
// byte-stable under the determinism contract.
func recordSampling(rc *RunContext, driver *sampling.Driver, cvdec *sampling.ControlVariates, auto *sampling.AutoScheduler) {
	reports := driver.Reports()
	if len(reports) == 0 {
		return
	}
	// Pilot honesty: the cv coefficient pilots and the auto-scheduler's
	// candidate probes evaluate real samples the driver never sees.
	// Fold them into the spend so savings claims pay for their own
	// measurement overhead.
	pilot := 0
	if cvdec != nil {
		pilot += cvdec.PilotSpent()
	}
	if auto != nil {
		pilot += auto.PilotSpent()
	}
	rows := make([][]string, 0, len(reports))
	for _, p := range reports {
		rows = append(rows, []string{
			p.Kernel,
			p.Sampler,
			fmt.Sprintf("%d", p.Seed),
			fmt.Sprintf("%d", p.Budget),
			fmt.Sprintf("%d", p.Spent),
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%.6g", p.RelErr),
			fmt.Sprintf("%g", p.Target),
			fmt.Sprintf("%t", p.Converged),
		})
	}
	rc.CSV("sampling", []string{
		"kernel", "sampler", "seed", "budget", "spent", "rounds", "rel_err", "target", "converged",
	}, rows)
	s := driver.Summarize()
	rc.Metric("sampling_points", float64(s.Points))
	rc.Metric("sampling_spent", float64(s.Spent+pilot))
	rc.Metric("sampling_converged", float64(s.Converged))
	rc.Metric("sampling_capped", float64(s.Capped))
	if pilot > 0 {
		rc.Metric("sampling_pilot", float64(pilot))
	}
	rc.Printf("\n[adaptive sampling] %d points, %d samples spent (%d in pilots), %d converged, %d capped (target relerr %g)\n",
		s.Points, s.Spent+pilot, pilot, s.Converged, s.Capped, reports[0].Target)
}

// recordChoices appends the auto-scheduler's resolved per-kernel
// strategies to the variant: a text line, a sampler_choices.csv
// artifact, and the Result field the manifest mirrors. Choices are a
// pure function of (kernel, params, seed), so all of it is
// deterministic.
func recordChoices(rc *RunContext, auto *sampling.AutoScheduler) {
	lines := auto.ChoiceLines()
	if len(lines) == 0 {
		return
	}
	rc.result.SamplerChoices = auto.Choices()
	scores := auto.Scores()
	rows := make([][]string, 0, len(lines))
	for _, line := range lines {
		kernel, choice, _ := strings.Cut(line, "=")
		for _, ps := range scores[kernel] {
			rows = append(rows, []string{
				kernel, ps.Sampler, fmt.Sprintf("%.6g", ps.Score), fmt.Sprintf("%t", ps.Sampler == choice),
			})
		}
		if len(scores[kernel]) == 0 { // table-loaded choice: no pilot this run
			rows = append(rows, []string{kernel, choice, "", "true"})
		}
	}
	rc.CSV("sampler_choices", []string{"kernel", "sampler", "score", "chosen"}, rows)
	rc.Printf("[auto sampler] %s\n", strings.Join(lines, " "))
}

func writeArtifacts(runDir string, res *Result) error {
	base := "output"
	if res.Variant != "" {
		base = sanitize(res.Variant)
	}
	if err := os.WriteFile(filepath.Join(runDir, base+".txt"), []byte(res.Text), 0o644); err != nil {
		return err
	}
	js, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal result: %w", err)
	}
	jsName := "result.json"
	if res.Variant != "" {
		jsName = base + ".result.json"
	}
	if err := os.WriteFile(filepath.Join(runDir, jsName), append(js, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(res.csvs))
	for name := range res.csvs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		csvName := sanitize(name) + ".csv"
		if res.Variant != "" {
			csvName = base + "." + csvName
		}
		if err := os.WriteFile(filepath.Join(runDir, csvName), res.csvs[name], 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
