// Package engine is the unified scenario engine: a registry of named
// experiments plus a parallel, sharded run orchestrator behind the
// single `cs` CLI.
//
// Every experiment in internal/experiments registers itself as a
// Scenario — a name, a description, the paper figures it reproduces,
// a typed parameter struct with defaults, and a Run function. The
// engine resolves `-set k=v` overrides onto the parameter struct by
// reflection, expands `-grid k=v1,v2,...` axes into a cross product of
// variants, pins the montecarlo worker pool to `-parallel N`, and
// emits artifacts (rendered text, JSON summaries, CSV tables) into a
// timestamped run directory.
//
// Determinism contract: scenario results are a function of (params,
// scale, seed) only. The sharded Monte Carlo pool in
// internal/montecarlo assigns random streams per fixed-size shard,
// never per worker, so `cs run <scenario> -seed S` is bit-identical
// at any `-parallel` width.
package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Scenario is one registered experiment.
type Scenario struct {
	// Name is the CLI identifier (`cs run <name>`), lowercase.
	Name string
	// Description is a one-line summary shown by `cs list`.
	Description string
	// Figures maps the scenario to the paper figures/tables it
	// reproduces (e.g. "Fig. 4/5, Fig. 9").
	Figures string
	// NewParams returns a pointer to a fresh, typed parameter struct
	// populated with defaults. `-set` overrides are applied to it by
	// reflection; it is also what result.json records.
	NewParams func() any
	// Run executes the scenario against rc.Params, writing its report
	// to rc and registering metrics/artifacts.
	Run func(rc *RunContext) error
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the global registry. It panics on an
// empty name, a nil hook, or a duplicate — registration happens in
// init() and a broken catalog should fail loudly at startup.
func Register(s Scenario) {
	if s.Name == "" || s.NewParams == nil || s.Run == nil {
		panic(fmt.Sprintf("engine: invalid scenario registration %+v", s))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Scenarios returns every registered scenario, sorted by name.
func Scenarios() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
