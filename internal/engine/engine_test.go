package engine

import (
	"context"
	"strings"
	"testing"
)

type nestedParams struct {
	Inner struct {
		Count int
		Name  string
	}
	Rate  float64
	Seed  uint64
	Grid  []float64
	Tags  []string
	Burst bool
}

func newNested() *nestedParams {
	p := &nestedParams{Rate: 1.5, Seed: 7}
	p.Inner.Count = 3
	p.Grid = []float64{1, 2, 3}
	return p
}

func TestSetParamKindsAndNesting(t *testing.T) {
	p := newNested()
	for _, kv := range [][2]string{
		{"rate", "2.25"},
		{"seed", "99"},
		{"burst", "true"},
		{"grid", "4, 5,6.5"},
		{"tags", "a,b"},
		{"inner.count", "11"},
		{"Inner.Name", "x"},
	} {
		if err := SetParam(p, kv[0], kv[1]); err != nil {
			t.Fatalf("SetParam(%s=%s): %v", kv[0], kv[1], err)
		}
	}
	if p.Rate != 2.25 || p.Seed != 99 || !p.Burst || p.Inner.Count != 11 || p.Inner.Name != "x" {
		t.Errorf("params not applied: %+v", p)
	}
	if len(p.Grid) != 3 || p.Grid[2] != 6.5 {
		t.Errorf("float slice = %v", p.Grid)
	}
	if len(p.Tags) != 2 || p.Tags[1] != "b" {
		t.Errorf("string slice = %v", p.Tags)
	}
}

func TestSetParamErrors(t *testing.T) {
	p := newNested()
	if err := SetParam(p, "nosuch", "1"); err == nil {
		t.Error("unknown key accepted")
	}
	if err := SetParam(p, "rate", "abc"); err == nil {
		t.Error("bad float accepted")
	}
	if err := SetParam(p, "inner.count.x", "1"); err == nil {
		t.Error("over-deep key accepted")
	}
	if err := SetParam(nestedParams{}, "rate", "1"); err == nil {
		t.Error("non-pointer params accepted")
	}
}

func TestHasParam(t *testing.T) {
	p := newNested()
	if !HasParam(p, "seed") || !HasParam(p, "inner.count") {
		t.Error("HasParam missed existing fields")
	}
	if HasParam(p, "missing") {
		t.Error("HasParam invented a field")
	}
}

func TestParamFieldsFlattensNested(t *testing.T) {
	fields := ParamFields(newNested())
	keys := map[string]string{}
	for _, f := range fields {
		keys[f.Key] = f.Default
	}
	if keys["inner.count"] != "3" {
		t.Errorf("nested default = %q, fields: %+v", keys["inner.count"], fields)
	}
	if keys["grid"] != "1,2,3" {
		t.Errorf("slice default = %q", keys["grid"])
	}
}

func TestExpandGrid(t *testing.T) {
	axes := []GridAxis{
		{Key: "a", Values: []string{"1", "2"}},
		{Key: "b", Values: []string{"x", "y", "z"}},
	}
	points := ExpandGrid(axes)
	if len(points) != 6 {
		t.Fatalf("%d points, want 6", len(points))
	}
	if points[0].Label() != "a=1 b=x" || points[5].Label() != "a=2 b=z" {
		t.Errorf("grid order wrong: %q ... %q", points[0].Label(), points[5].Label())
	}
	if len(ExpandGrid(nil)) != 1 {
		t.Error("no axes should yield one empty point")
	}
}

func TestParseGridAxis(t *testing.T) {
	ax, err := ParseGridAxis("rmax=20, 55,120")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Key != "rmax" || len(ax.Values) != 3 || ax.Values[1] != "55" {
		t.Errorf("axis = %+v", ax)
	}
	for _, bad := range []string{"", "rmax", "rmax=", "=1"} {
		if _, err := ParseGridAxis(bad); err == nil {
			t.Errorf("bad axis %q accepted", bad)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	for _, bad := range []Scenario{
		{},
		{Name: "x"},
		{Name: "x", NewParams: func() any { return &struct{}{} }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid scenario %+v registered", bad)
				}
			}()
			Register(bad)
		}()
	}
}

// registerStub registers a scenario under a test-unique name.
type stubParams struct {
	Seed  uint64
	Gain  float64
	Label string
}

func registerStub(t *testing.T, name string) {
	t.Helper()
	Register(Scenario{
		Name:        name,
		Description: "test stub",
		Figures:     "none",
		NewParams:   func() any { return &stubParams{Seed: 1, Gain: 2} },
		Run: func(rc *RunContext) error {
			p := rc.Params.(*stubParams)
			rc.Printf("seed=%d gain=%g label=%s scale=%s\n", p.Seed, p.Gain, p.Label, rc.Scale)
			rc.Metric("gain", p.Gain)
			rc.CSV("data", []string{"a", "b"}, [][]string{{"1", "2"}})
			return nil
		},
	})
}

func TestRunAppliesSeedSetsAndGrid(t *testing.T) {
	registerStub(t, "stub-run")
	results, err := Run(context.Background(), "stub-run", Options{
		Seed:  "42",
		Scale: "smoke",
		Sets:  []string{"label=hello"},
		Grid:  []string{"gain=3,4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	for i, want := range []float64{3, 4} {
		res := results[i]
		if res.Metrics["gain"] != want {
			t.Errorf("variant %d gain = %v, want %v", i, res.Metrics["gain"], want)
		}
		if !strings.Contains(res.Text, "seed=42") || !strings.Contains(res.Text, "label=hello") {
			t.Errorf("variant %d text = %q", i, res.Text)
		}
		if res.Variant == "" {
			t.Error("grid variant label missing")
		}
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	if _, err := Run(context.Background(), "no-such-scenario", Options{}); err == nil {
		t.Error("unknown scenario accepted")
	}
	registerStub(t, "stub-errs")
	if _, err := Run(context.Background(), "stub-errs", Options{Sets: []string{"nope=1"}}); err == nil {
		t.Error("unknown -set key accepted")
	}
	if _, err := Run(context.Background(), "stub-errs", Options{Scale: "huge"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if _, err := Run(context.Background(), "stub-errs", Options{Sets: []string{"malformed"}}); err == nil {
		t.Error("malformed -set accepted")
	}
}
