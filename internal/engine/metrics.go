package engine

// The run's observability artifacts: metrics.json (run summary +
// per-variant + whole-run registry deltas) and timings.csv (flat
// per-variant per-stage rows, CSV-friendly for the paper-artifact
// pipeline). Both are volatile by nature — wall-clock seconds differ
// run to run — so they are deliberately separate files from the
// deterministic artifacts (output.txt, result.json, data CSVs), which
// must stay byte-identical with observability on or off.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"carriersense/internal/obs"
)

var mEstimateSeconds = obs.Default().Histogram("cs_engine_estimate_seconds",
	"Wall time of one kernel estimation through the installed executor chain.", nil)

// runSummary is what `cs` historically printed to stderr and nowhere
// else: now persisted per run directory so artifacts self-describe.
type runSummary struct {
	Elapsed          time.Duration
	EvaluatedSamples int64
	RegistryDelta    map[string]float64
}

// variantMetrics is one variant's entry in metrics.json.
type variantMetrics struct {
	Variant     string             `json:"variant,omitempty"`
	WallSeconds float64            `json:"wall_seconds"`
	Registry    map[string]float64 `json:"registry,omitempty"`
}

// runMetrics is the metrics.json document.
type runMetrics struct {
	Scenario         string             `json:"scenario"`
	ElapsedSeconds   float64            `json:"elapsed_seconds"`
	EvaluatedSamples int64              `json:"evaluated_samples"`
	SamplesPerSec    float64            `json:"samples_per_sec"`
	Variants         []variantMetrics   `json:"variants"`
	Registry         map[string]float64 `json:"registry,omitempty"`
}

// stage maps a registry histogram family to a timings.csv stage row.
// Sum keys match by prefix so labeled families (per-worker dispatch
// histograms) aggregate across their label sets.
var timingStages = []struct{ stage, family string }{
	{"estimate", "cs_engine_estimate_seconds"},
	{"eval", "cs_mc_shard_eval_seconds"},
	{"dispatch", "cs_dist_batch_seconds"},
	{"cache_lookup", "cs_cache_lookup_seconds"},
}

// writeRunMetrics writes metrics.json and timings.csv into the run
// directory.
func writeRunMetrics(runDir, scenario string, results []*Result, sum runSummary) error {
	doc := runMetrics{
		Scenario:         scenario,
		ElapsedSeconds:   sum.Elapsed.Seconds(),
		EvaluatedSamples: sum.EvaluatedSamples,
		Registry:         sum.RegistryDelta,
	}
	if secs := sum.Elapsed.Seconds(); secs > 0 {
		doc.SamplesPerSec = float64(sum.EvaluatedSamples) / secs
	}
	for _, res := range results {
		doc.Variants = append(doc.Variants, variantMetrics{
			Variant:     res.Variant,
			WallSeconds: res.Perf["wall_seconds"],
			Registry:    res.Perf,
		})
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal run metrics: %w", err)
	}
	if err := os.WriteFile(filepath.Join(runDir, "metrics.json"), append(js, '\n'), 0o644); err != nil {
		return err
	}

	rows := [][]string{{"variant", "stage", "seconds", "count"}}
	for _, res := range results {
		rows = append(rows, timingRows(res.Variant, res.Perf)...)
	}
	f, err := os.Create(filepath.Join(runDir, "timings.csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// timingRows flattens one variant's registry delta into per-stage
// rows. The wall row always exists; instrument stages appear when the
// variant exercised them (a purely closed-form variant has no eval
// row, a local run no dispatch row).
func timingRows(variant string, perf map[string]float64) [][]string {
	fmtSec := func(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }
	rows := [][]string{{variant, "wall", fmtSec(perf["wall_seconds"]), "1"}}
	for _, st := range timingStages {
		secs := obs.SumByPrefix(perf, st.family+"_sum")
		count := obs.SumByPrefix(perf, st.family+"_count")
		if count == 0 && secs == 0 {
			continue
		}
		rows = append(rows, []string{
			variant, st.stage, fmtSec(secs), strconv.FormatInt(int64(count), 10),
		})
	}
	// Per-worker dispatch breakdown: one row per worker label so fleet
	// imbalance is visible without parsing metrics.json.
	workers := make([]string, 0)
	for k := range perf {
		if name, lbls, ok := splitSeries(k, "cs_dist_batch_seconds_sum"); ok && name != "" {
			workers = append(workers, lbls)
		}
	}
	sort.Strings(workers)
	for _, lbls := range workers {
		rows = append(rows, []string{
			variant, "dispatch " + lbls,
			fmtSec(perf["cs_dist_batch_seconds_sum"+lbls]),
			strconv.FormatInt(int64(perf["cs_dist_batch_seconds_count"+lbls]), 10),
		})
	}
	return rows
}

// splitSeries reports whether key is family{labels} and returns the
// parts ("" labels for the unlabeled series).
func splitSeries(key, family string) (name, labels string, ok bool) {
	if len(key) < len(family) || key[:len(family)] != family {
		return "", "", false
	}
	rest := key[len(family):]
	if rest == "" {
		return family, "", true
	}
	if rest[0] == '{' {
		return family, rest, true
	}
	return "", "", false
}
