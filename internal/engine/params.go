package engine

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// SetParam assigns value to the named field of a scenario's parameter
// struct (a pointer to struct). Keys are case-insensitive field names;
// nested structs are addressed with dots (e.g. "layout.nodes").
// Supported field kinds: bool, string, integers, floats, and slices
// of float64/int/string (comma-separated values).
func SetParam(params any, key, value string) error {
	v := reflect.ValueOf(params)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("params must be a pointer to struct, got %T", params)
	}
	field, err := resolveField(v.Elem(), key)
	if err != nil {
		return err
	}
	return assign(field, key, value)
}

// HasParam reports whether the parameter struct has a field addressable
// by key.
func HasParam(params any, key string) bool {
	v := reflect.ValueOf(params)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		return false
	}
	_, err := resolveField(v.Elem(), key)
	return err == nil
}

func resolveField(structVal reflect.Value, key string) (reflect.Value, error) {
	cur := structVal
	parts := strings.Split(key, ".")
	for i, part := range parts {
		if cur.Kind() != reflect.Struct {
			return reflect.Value{}, fmt.Errorf("param %q: %q is not a struct", key, strings.Join(parts[:i], "."))
		}
		t := cur.Type()
		idx := -1
		for j := 0; j < t.NumField(); j++ {
			if t.Field(j).IsExported() && strings.EqualFold(t.Field(j).Name, part) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return reflect.Value{}, fmt.Errorf("unknown param %q (no field %q in %s)", key, part, t)
		}
		cur = cur.Field(idx)
	}
	if !cur.CanSet() {
		return reflect.Value{}, fmt.Errorf("param %q is not settable", key)
	}
	return cur, nil
}

func assign(field reflect.Value, key, value string) error {
	switch field.Kind() {
	case reflect.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("param %q: %v", key, err)
		}
		field.SetBool(b)
	case reflect.String:
		field.SetString(value)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("param %q: %v", key, err)
		}
		field.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("param %q: %v", key, err)
		}
		field.SetUint(n)
	case reflect.Float32, reflect.Float64:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("param %q: %v", key, err)
		}
		field.SetFloat(f)
	case reflect.Slice:
		return assignSlice(field, key, value)
	default:
		return fmt.Errorf("param %q: unsupported kind %s", key, field.Kind())
	}
	return nil
}

func assignSlice(field reflect.Value, key, value string) error {
	parts := strings.Split(value, ",")
	out := reflect.MakeSlice(field.Type(), len(parts), len(parts))
	for i, p := range parts {
		if err := assign(out.Index(i), key, strings.TrimSpace(p)); err != nil {
			return err
		}
	}
	field.Set(out)
	return nil
}

// Field describes one settable parameter for `cs list -v`.
type Field struct {
	Key     string // dotted, lowercase key accepted by -set
	Type    string
	Default string // rendered default value
}

// ParamFields lists the settable fields of a parameter struct with
// their defaults, flattening nested structs into dotted keys.
func ParamFields(params any) []Field {
	v := reflect.ValueOf(params)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		return nil
	}
	var out []Field
	walkFields("", v.Elem(), &out)
	return out
}

func walkFields(prefix string, structVal reflect.Value, out *[]Field) {
	t := structVal.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		key := strings.ToLower(f.Name)
		if prefix != "" {
			key = prefix + "." + key
		}
		fv := structVal.Field(i)
		if fv.Kind() == reflect.Struct {
			walkFields(key, fv, out)
			continue
		}
		switch fv.Kind() {
		case reflect.Bool, reflect.String,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.Slice:
			*out = append(*out, Field{
				Key:     key,
				Type:    f.Type.String(),
				Default: renderValue(fv),
			})
		}
	}
}

func renderValue(v reflect.Value) string {
	if v.Kind() == reflect.Slice {
		var parts []string
		for i := 0; i < v.Len() && i < 6; i++ {
			parts = append(parts, renderValue(v.Index(i)))
		}
		s := strings.Join(parts, ",")
		if v.Len() > 6 {
			s += fmt.Sprintf(",... (%d values)", v.Len())
		}
		return s
	}
	return fmt.Sprintf("%v", v.Interface())
}

// GridAxis is one `-grid key=v1,v2,...` axis.
type GridAxis struct {
	Key    string
	Values []string
}

// ParseGridAxis parses a "key=v1,v2,..." grid specification.
func ParseGridAxis(spec string) (GridAxis, error) {
	key, vals, ok := strings.Cut(spec, "=")
	if !ok || key == "" || vals == "" {
		return GridAxis{}, fmt.Errorf("bad grid axis %q (want key=v1,v2,...)", spec)
	}
	parts := strings.Split(vals, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return GridAxis{Key: key, Values: parts}, nil
}

// GridPoint is one assignment of every grid axis, applied to a variant
// run. Label renders it as "k=v k2=w" for directory and report names.
type GridPoint []struct{ Key, Value string }

// Label renders the point for run directories and report headers.
func (g GridPoint) Label() string {
	var parts []string
	for _, kv := range g {
		parts = append(parts, kv.Key+"="+kv.Value)
	}
	return strings.Join(parts, " ")
}

// ExpandGrid builds the cross product of the axes, preserving axis
// order (first axis varies slowest). No axes yields one empty point.
func ExpandGrid(axes []GridAxis) []GridPoint {
	points := []GridPoint{nil}
	for _, ax := range axes {
		var next []GridPoint
		for _, p := range points {
			for _, v := range ax.Values {
				np := make(GridPoint, len(p), len(p)+1)
				copy(np, p)
				np = append(np, struct{ Key, Value string }{ax.Key, v})
				next = append(next, np)
			}
		}
		points = next
	}
	return points
}
