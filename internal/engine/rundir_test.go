package engine

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunDirCollisionGetsSerialSuffix(t *testing.T) {
	// Two runs of the same scenario within one second must not
	// overwrite each other's artifacts: the second-resolution stamp
	// collides and the serial suffix disambiguates.
	registerStub(t, "stub-collision")
	dir := t.TempDir()
	now := time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if _, err := Run(context.Background(), "stub-collision", Options{
			Scale: "smoke", OutDir: dir, Now: now,
		}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for _, want := range []string{
		"20260730-120000-stub-collision",
		"20260730-120000-stub-collision-2",
		"20260730-120000-stub-collision-3",
	} {
		if _, err := os.Stat(filepath.Join(dir, want, "output.txt")); err != nil {
			entries, _ := os.ReadDir(dir)
			var names []string
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Errorf("missing %s/output.txt; have %v", want, names)
		}
	}
}

func TestMakeRunDirErrorsOnUncreatableParent(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := makeRunDir(filepath.Join(file, "child"), "stamp"); err == nil {
		t.Error("makeRunDir under a regular file succeeded")
	}
}
