package engine

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The run summary that used to live only on stderr must now persist
// into the run directory as metrics.json + timings.csv — and stay out
// of the deterministic artifacts.
func TestRunWritesMetricsArtifacts(t *testing.T) {
	registerStub(t, "stub-obs-metrics")
	dir := t.TempDir()
	now := time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)
	if _, err := Run(context.Background(), "stub-obs-metrics", Options{
		Scale:  "smoke",
		OutDir: dir,
		Now:    now,
	}); err != nil {
		t.Fatal(err)
	}
	runDir := filepath.Join(dir, "20260801-090000-stub-obs-metrics")

	js, err := os.ReadFile(filepath.Join(runDir, "metrics.json"))
	if err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	var doc struct {
		Scenario         string  `json:"scenario"`
		ElapsedSeconds   float64 `json:"elapsed_seconds"`
		EvaluatedSamples int64   `json:"evaluated_samples"`
		SamplesPerSec    float64 `json:"samples_per_sec"`
		Variants         []struct {
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"variants"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("metrics.json parse: %v", err)
	}
	if doc.Scenario != "stub-obs-metrics" {
		t.Errorf("scenario = %q", doc.Scenario)
	}
	if doc.ElapsedSeconds <= 0 {
		t.Errorf("elapsed_seconds = %v", doc.ElapsedSeconds)
	}
	if len(doc.Variants) != 1 || doc.Variants[0].WallSeconds <= 0 {
		t.Errorf("variants = %+v", doc.Variants)
	}

	f, err := os.Open(filepath.Join(runDir, "timings.csv"))
	if err != nil {
		t.Fatalf("timings.csv: %v", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("timings.csv parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("timings.csv has %d rows", len(rows))
	}
	wantHeader := []string{"variant", "stage", "seconds", "count"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Fatalf("header = %v, want %v", rows[0], wantHeader)
		}
	}
	foundWall := false
	for _, row := range rows[1:] {
		if row[1] == "wall" {
			foundWall = true
		}
	}
	if !foundWall {
		t.Errorf("no wall stage row in %v", rows)
	}

	// The deterministic artifact must not have absorbed the summary:
	// result.json carries scenario metrics only, never wall-clock.
	res, err := os.ReadFile(filepath.Join(runDir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	var resDoc map[string]any
	if err := json.Unmarshal(res, &resDoc); err != nil {
		t.Fatal(err)
	}
	for _, volatile := range []string{"perf", "wall_seconds", "elapsed_seconds"} {
		if _, ok := resDoc[volatile]; ok {
			t.Errorf("result.json contains volatile key %q", volatile)
		}
	}
}
