package engine

// Manifest emission: every run directory is stamped with a
// provenance manifest (internal/prov) at artifact-write time — after
// the deterministic artifacts and the observability files are on
// disk, so the manifest's digest list covers everything the run
// emitted. The manifest itself is volatile (timings, toolchain, VCS
// revision) and, like metrics.json, is outside the byte-identity
// contract: it describes a single run, and `cs verify` compares a
// directory only against its own manifest.

import (
	"encoding/json"
	"fmt"
	"time"

	"carriersense/internal/cache"
	"carriersense/internal/obs"
	"carriersense/internal/prov"
)

// writeManifest stamps runDir after every other artifact is written.
func writeManifest(runDir, scenario, scale string, opts Options, results []*Result, sum runSummary, created time.Time) error {
	m := &prov.Manifest{
		Schema:        prov.SchemaVersion,
		Created:       created.UTC(),
		Scenario:      scenario,
		Scale:         scale,
		Seed:          opts.Seed,
		RelErr:        opts.RelErr,
		MaxSamples:    opts.MaxSamples,
		Sets:          opts.Sets,
		Grid:          opts.Grid,
		CacheKeyEpoch: cache.KeyEpoch,
		Exec:          opts.Exec,
		Toolchain:     prov.CurrentToolchain(),
		VCS:           prov.CurrentVCS(),

		ElapsedSeconds:   sum.Elapsed.Seconds(),
		EvaluatedSamples: sum.EvaluatedSamples,
	}
	for _, res := range results {
		m.Sampler = res.Sampler // resolved ("" -> "plain"), same for every variant
		if res.SamplerChoices != nil {
			m.SamplerChoices = res.SamplerChoices // auto runs: the resolved per-kernel winners
		}
		params, err := json.Marshal(res.Params)
		if err != nil {
			return fmt.Errorf("manifest: marshal %s params: %w", scenario, err)
		}
		m.Variants = append(m.Variants, prov.Variant{
			Variant:     res.Variant,
			Params:      params,
			Metrics:     res.Metrics,
			WallSeconds: res.Perf["wall_seconds"],
			Stages:      manifestStages(res.Perf),
		})
	}
	return prov.Stamp(runDir, m)
}

// manifestStages mirrors timings.csv's stage rows into the manifest so
// provenance alone reconstructs where each variant spent its time.
func manifestStages(perf map[string]float64) []prov.Stage {
	var stages []prov.Stage
	for _, st := range timingStages {
		secs := obs.SumByPrefix(perf, st.family+"_sum")
		count := obs.SumByPrefix(perf, st.family+"_count")
		if secs == 0 && count == 0 {
			continue
		}
		stages = append(stages, prov.Stage{Stage: st.stage, Seconds: secs, Count: count})
	}
	return stages
}
