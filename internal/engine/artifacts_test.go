package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunWritesArtifacts(t *testing.T) {
	registerStub(t, "stub-artifacts")
	dir := t.TempDir()
	now := time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)
	results, err := Run(context.Background(), "stub-artifacts", Options{
		Scale:  "smoke",
		OutDir: dir,
		Now:    now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	runDir := filepath.Join(dir, "20260730-120000-stub-artifacts")
	text, err := os.ReadFile(filepath.Join(runDir, "output.txt"))
	if err != nil {
		t.Fatalf("output.txt: %v", err)
	}
	if string(text) != results[0].Text {
		t.Error("output.txt does not match result text")
	}
	js, err := os.ReadFile(filepath.Join(runDir, "result.json"))
	if err != nil {
		t.Fatalf("result.json: %v", err)
	}
	var decoded struct {
		Scenario string             `json:"scenario"`
		Scale    string             `json:"scale"`
		Metrics  map[string]float64 `json:"metrics"`
		Params   struct {
			Seed uint64
			Gain float64
		} `json:"params"`
	}
	if err := json.Unmarshal(js, &decoded); err != nil {
		t.Fatalf("result.json decode: %v", err)
	}
	if decoded.Scenario != "stub-artifacts" || decoded.Scale != "smoke" || decoded.Metrics["gain"] != 2 {
		t.Errorf("result.json = %+v", decoded)
	}
	if decoded.Params.Gain != 2 {
		t.Errorf("params not serialized: %+v", decoded.Params)
	}
	csvBytes, err := os.ReadFile(filepath.Join(runDir, "data.csv"))
	if err != nil {
		t.Fatalf("data.csv: %v", err)
	}
	if got := strings.TrimSpace(string(csvBytes)); got != "a,b\n1,2" {
		t.Errorf("data.csv = %q", got)
	}
}

func TestGridVariantsGetSeparateArtifacts(t *testing.T) {
	registerStub(t, "stub-grid-artifacts")
	dir := t.TempDir()
	now := time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)
	_, err := Run(context.Background(), "stub-grid-artifacts", Options{
		OutDir: dir,
		Now:    now,
		Grid:   []string{"gain=3,4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	runDir := filepath.Join(dir, "20260730-120000-stub-grid-artifacts")
	for _, want := range []string{
		"gain_3.txt", "gain_3.result.json", "gain_3.data.csv",
		"gain_4.txt", "gain_4.result.json", "gain_4.data.csv",
	} {
		if _, err := os.Stat(filepath.Join(runDir, want)); err != nil {
			entries, _ := os.ReadDir(runDir)
			var names []string
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Fatalf("missing artifact %s; have %v", want, names)
		}
	}
}
