package engine_test

// Integration test for the engine's determinism contract: the same
// seed and scenario produce byte-identical merged results at any
// -parallel worker width, because Monte Carlo random streams are
// assigned per fixed-size shard rather than per worker.

import (
	"context"
	"reflect"
	"testing"

	"carriersense/internal/engine"
	_ "carriersense/internal/experiments" // registers the scenario catalog
)

func runOnce(t *testing.T, name string, parallel int, sets ...string) *engine.Result {
	t.Helper()
	results, err := engine.Run(context.Background(), name, engine.Options{
		Seed:     "12345",
		Scale:    "smoke",
		Parallel: parallel,
		Sets:     sets,
	})
	if err != nil {
		t.Fatalf("run %s parallel=%d: %v", name, parallel, err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	return results[0]
}

func TestScenarioOutputInvariantUnderParallelWidth(t *testing.T) {
	// One Monte Carlo model scenario, one packet-level scenario, and a
	// multi-estimate table scenario cover the merged-result paths.
	cases := []struct {
		name string
		sets []string
	}{
		{name: "curves"},
		{name: "tables"},
		{name: "section34"},
		{name: "testbed", sets: []string{"range=short", "combos=4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := runOnce(t, tc.name, 1, tc.sets...)
			for _, width := range []int{2, 8} {
				wide := runOnce(t, tc.name, width, tc.sets...)
				if wide.Text != serial.Text {
					t.Errorf("parallel=%d text differs from serial (lens %d vs %d)",
						width, len(wide.Text), len(serial.Text))
				}
				if !reflect.DeepEqual(wide.Metrics, serial.Metrics) {
					t.Errorf("parallel=%d metrics differ:\n%v\nvs\n%v",
						width, wide.Metrics, serial.Metrics)
				}
			}
		})
	}
}

func TestEveryFormerBinaryHasAScenario(t *testing.T) {
	// The consolidation contract of the cs CLI: each former cmd/cs*
	// concern is a registered scenario.
	want := map[string]string{
		"curves":       "cscurves",
		"inefficiency": "cscurves -inefficiency",
		"threshold":    "csthreshold",
		"landscape":    "cslandscape",
		"preference":   "cslandscape -pref",
		"tables":       "cstables",
		"robustness":   "cstables -sweep",
		"multi":        "csmulti",
		"testbed":      "cstestbed",
		"exposed":      "cstestbed -exposed",
		"fit":          "csfit",
		"report":       "csreport",
	}
	for name, former := range want {
		if _, ok := engine.Lookup(name); !ok {
			t.Errorf("scenario %q (former %s) not registered", name, former)
		}
	}
	if got := len(engine.Scenarios()); got < len(want) {
		t.Errorf("only %d scenarios registered", got)
	}
}

func TestSeedChangesResults(t *testing.T) {
	a, err := engine.Run(context.Background(), "curves", engine.Options{Seed: "1", Scale: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Run(context.Background(), "curves", engine.Options{Seed: "2", Scale: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Text == b[0].Text {
		t.Error("different seeds produced identical curves output")
	}
}
