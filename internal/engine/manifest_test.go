package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carriersense/internal/cache"
	"carriersense/internal/prov"
)

// runStamped runs a stub scenario with artifacts and returns its run
// directory.
func runStamped(t *testing.T, name string, opts Options) string {
	t.Helper()
	registerStub(t, name)
	opts.OutDir = t.TempDir()
	if _, err := Run(context.Background(), name, opts); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(opts.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected one run dir, got %d", len(entries))
	}
	return filepath.Join(opts.OutDir, entries[0].Name())
}

func TestRunStampsVerifiableManifest(t *testing.T) {
	runDir := runStamped(t, "stub-manifest", Options{
		Seed:  "42",
		Scale: "smoke",
		Grid:  []string{"gain=3,4"},
		Exec:  prov.ExecInfo{Parallel: 2, Experiment: "unit", Repeat: 1},
	})
	m, err := prov.VerifyDir(runDir)
	if err != nil {
		t.Fatalf("fresh run dir fails verification: %v", err)
	}
	if m.Scenario != "stub-manifest" || m.Scale != "smoke" || m.Seed != "42" {
		t.Fatalf("manifest lost run identity: %+v", m)
	}
	if m.CacheKeyEpoch != cache.KeyEpoch {
		t.Fatalf("manifest key epoch %d, want %d", m.CacheKeyEpoch, cache.KeyEpoch)
	}
	if m.Sampler != "plain" {
		t.Fatalf("manifest sampler %q, want resolved default \"plain\"", m.Sampler)
	}
	if m.Exec.Experiment != "unit" || m.Exec.Parallel != 2 {
		t.Fatalf("manifest lost exec shape: %+v", m.Exec)
	}
	if len(m.Variants) != 2 {
		t.Fatalf("manifest has %d variants, want 2", len(m.Variants))
	}
	for _, v := range m.Variants {
		if v.Metrics["gain"] == 0 {
			t.Errorf("variant %q missing gain metric: %+v", v.Variant, v.Metrics)
		}
		if !strings.Contains(string(v.Params), `"Gain"`) {
			t.Errorf("variant %q params not captured: %s", v.Variant, v.Params)
		}
	}
	// Every artifact the run wrote must be manifested; a 2-variant grid
	// writes 2x (txt + result.json + data.csv) plus metrics.json and
	// timings.csv.
	if len(m.Artifacts) != 8 {
		names := make([]string, 0, len(m.Artifacts))
		for _, a := range m.Artifacts {
			names = append(names, a.Name)
		}
		t.Fatalf("manifested %d artifacts, want 8: %v", len(m.Artifacts), names)
	}
}

// Acceptance criterion: flipping one byte of any artifact — or any
// manifest field — makes verification fail.
func TestRunManifestDetectsTamper(t *testing.T) {
	runDir := runStamped(t, "stub-tamper", Options{Scale: "smoke"})
	if _, err := prov.VerifyDir(runDir); err != nil {
		t.Fatalf("pre-tamper verify: %v", err)
	}
	entries, err := os.ReadDir(runDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(runDir, e.Name())
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		flipped := append([]byte(nil), orig...)
		flipped[len(flipped)/2] ^= 0x01
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := prov.VerifyDir(runDir); err == nil {
			t.Errorf("flipping a byte of %s went undetected", e.Name())
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := prov.VerifyDir(runDir); err != nil {
		t.Fatalf("restored dir fails verification: %v", err)
	}
}
