package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

func init() {
	montecarlo.RegisterKernel("enginetest/uniform", func(params json.RawMessage) (montecarlo.EvalFunc, error) {
		return func(src *rng.Source, out []float64) {
			out[0] = 1 + src.Float64()
		}, nil
	})
}

// registerMCStub registers a scenario that runs one real kernel
// estimation, so engine-level sampler/relerr options have something to
// transform.
func registerMCStub(t *testing.T, name string, samples int) {
	t.Helper()
	Register(Scenario{
		Name:        name,
		Description: "mc stub",
		Figures:     "none",
		NewParams:   func() any { return &stubParams{Seed: 1, Gain: 2} },
		Run: func(rc *RunContext) error {
			est := montecarlo.KernelMean("enginetest/uniform", nil, 5, samples)
			rc.Metric("mean", est.Mean)
			rc.Metric("n", float64(est.N))
			return nil
		},
	})
}

func TestRunRecordsSamplerInResult(t *testing.T) {
	registerMCStub(t, "mcstub-sampler", 2000)
	for _, tc := range []struct{ sampler, want string }{
		{"", "plain"},
		{"plain", "plain"},
		{"antithetic", "antithetic"},
	} {
		results, err := Run(context.Background(), "mcstub-sampler", Options{Sampler: tc.sampler})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Sampler != tc.want {
			t.Errorf("Sampler %q recorded as %q, want %q", tc.sampler, results[0].Sampler, tc.want)
		}
	}
}

func TestRunSamplerChangesEstimatorIdentity(t *testing.T) {
	registerMCStub(t, "mcstub-identity", 4000)
	run := func(sampler string) map[string]float64 {
		results, err := Run(context.Background(), "mcstub-identity", Options{Sampler: sampler})
		if err != nil {
			t.Fatal(err)
		}
		return results[0].Metrics
	}
	plain := run("plain")
	anti := run("antithetic")
	// Antithetic folds pairs into single observations: half the
	// accumulator count, and an exact mean of 1.5 for the uniform
	// integrand (u and 1-u cancel perfectly).
	if anti["n"] != plain["n"]/2 {
		t.Errorf("antithetic N = %v, want %v", anti["n"], plain["n"]/2)
	}
	if anti["mean"] != 1.5 {
		t.Errorf("antithetic mean = %v, want exactly 1.5", anti["mean"])
	}
	if plain["mean"] == 1.5 {
		t.Error("plain mean hit 1.5 exactly; the stub is not distinguishing samplers")
	}
}

func TestRunRelErrProducesSamplingLedger(t *testing.T) {
	registerMCStub(t, "mcstub-relerr", 64*montecarlo.ShardSize)
	results, err := Run(context.Background(), "mcstub-relerr", Options{RelErr: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.RelErr != 0.01 {
		t.Errorf("result RelErr = %v, want 0.01", res.RelErr)
	}
	if res.Metrics["sampling_points"] != 1 || res.Metrics["sampling_converged"] != 1 {
		t.Errorf("sampling metrics = %v, want 1 point converged", res.Metrics)
	}
	spent := res.Metrics["sampling_spent"]
	if spent <= 0 || spent >= float64(64*montecarlo.ShardSize) {
		t.Errorf("sampling_spent = %v, want an early stop below the cap", spent)
	}
	if res.Metrics["n"] != spent {
		t.Errorf("estimate N %v != samples spent %v", res.Metrics["n"], spent)
	}
	if !strings.Contains(res.Text, "[adaptive sampling]") {
		t.Errorf("report text missing the sampling summary: %q", res.Text)
	}
	if _, ok := res.csvs["sampling"]; !ok {
		t.Error("sampling.csv artifact not registered")
	}
}

func TestRunValidatesSamplingOptions(t *testing.T) {
	registerMCStub(t, "mcstub-validate", 2000)
	if _, err := Run(context.Background(), "mcstub-validate", Options{Sampler: "latin-hypercube"}); err == nil {
		t.Error("unknown sampler accepted")
	}
	if _, err := Run(context.Background(), "mcstub-validate", Options{RelErr: -1}); err == nil {
		t.Error("negative relerr accepted")
	}
	if _, err := Run(context.Background(), "mcstub-validate", Options{MaxSamples: 100}); err == nil {
		t.Error("-max-samples without -relerr accepted")
	}
	if _, err := Run(context.Background(), "mcstub-validate", Options{AutoTable: "x.json"}); err == nil {
		t.Error("-auto-table without -sampler auto accepted")
	}
}

func TestRunAutoSamplerRecordsChoices(t *testing.T) {
	registerMCStub(t, "mcstub-auto", 64*montecarlo.ShardSize)
	table := filepath.Join(t.TempDir(), "choices.json")
	results, err := Run(context.Background(), "mcstub-auto",
		Options{Sampler: "auto", RelErr: 0.01, AutoTable: table})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	winner, ok := res.SamplerChoices["enginetest/uniform"]
	if !ok || winner == "" {
		t.Fatalf("no sampler choice recorded: %v", res.SamplerChoices)
	}
	if _, ok := res.csvs["sampler_choices"]; !ok {
		t.Error("sampler_choices.csv artifact not registered")
	}
	if res.Metrics["sampling_pilot"] <= 0 {
		t.Errorf("pilot spend %v not accounted", res.Metrics["sampling_pilot"])
	}
	if !strings.Contains(res.Text, "[auto sampler]") {
		t.Errorf("report text missing the choice line: %q", res.Text)
	}
	if _, err := os.Stat(table); err != nil {
		t.Errorf("choice table not persisted: %v", err)
	}

	// The default sampler must be restored after the run: a later
	// plain run is unaffected by the forced virtual name.
	if got := montecarlo.DefaultSampler(); got != "" {
		t.Errorf("auto run left default sampler %q installed", got)
	}
}
