package fit

import (
	"errors"
	"math"
	"testing"

	"carriersense/internal/rng"
)

// synth generates censored synthetic data from known parameters.
func synth(seed uint64, n int, refSNR, alpha, sigma, threshold float64) ([]Sample, []CensoredPair) {
	src := rng.New(seed)
	var obs []Sample
	var cen []CensoredPair
	for i := 0; i < n; i++ {
		// Distances log-uniform over [2, 120] m, like an indoor census.
		d := math.Exp(src.Uniform(math.Log(2), math.Log(120)))
		snr := refSNR - 10*alpha*math.Log10(d) + src.Normal(0, sigma)
		if snr >= threshold {
			obs = append(obs, Sample{DistanceM: d, SNRdB: snr})
		} else {
			cen = append(cen, CensoredPair{DistanceM: d})
		}
	}
	return obs, cen
}

func TestFitRecoversParameters(t *testing.T) {
	const (
		refSNR    = 62.0
		alpha     = 3.5
		sigma     = 10.0
		threshold = 3.0
	)
	obs, cen := synth(1, 1500, refSNR, alpha, sigma, threshold)
	if len(cen) == 0 {
		t.Fatal("synthetic data has no censoring; test is vacuous")
	}
	m, err := Fit(obs, cen, threshold, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-alpha) > 0.25 {
		t.Errorf("alpha = %v, want %v", m.Alpha, alpha)
	}
	if math.Abs(m.SigmaDB-sigma) > 1.0 {
		t.Errorf("sigma = %v, want %v", m.SigmaDB, sigma)
	}
	if math.Abs(m.RefSNRdB-refSNR) > 3 {
		t.Errorf("refSNR = %v, want %v", m.RefSNRdB, refSNR)
	}
}

func TestCensoredBeatsNaive(t *testing.T) {
	// Heavy censoring: the naive OLS fit understates α and σ because
	// the weak tail is invisible; the censored ML fit corrects it.
	const (
		refSNR    = 55.0
		alpha     = 3.5
		sigma     = 10.0
		threshold = 10.0 // aggressive threshold: lots of censoring
	)
	obs, cen := synth(2, 2000, refSNR, alpha, sigma, threshold)
	if frac := float64(len(cen)) / 2000; frac < 0.2 {
		t.Fatalf("censored fraction %v too low for the test", frac)
	}
	ml, err := Fit(obs, cen, threshold, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveFit(obs, 1)
	if naive.Alpha >= alpha-0.05 {
		t.Errorf("naive alpha = %v; censoring should bias it below %v", naive.Alpha, alpha)
	}
	if math.Abs(ml.Alpha-alpha) >= math.Abs(naive.Alpha-alpha) {
		t.Errorf("censored ML alpha %v no better than naive %v (true %v)", ml.Alpha, naive.Alpha, alpha)
	}
	if math.Abs(ml.SigmaDB-sigma) >= math.Abs(naive.SigmaDB-sigma) {
		t.Errorf("censored ML sigma %v no better than naive %v (true %v)", ml.SigmaDB, naive.SigmaDB, sigma)
	}
}

func TestFitNeedsData(t *testing.T) {
	_, err := Fit([]Sample{{1, 1}, {2, 2}}, nil, 0, 1)
	if !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestFitWithoutCensoring(t *testing.T) {
	obs, _ := synth(3, 800, 60, 3, 6, -1000) // nothing censored
	m, err := Fit(obs, nil, -1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-3) > 0.3 || math.Abs(m.SigmaDB-6) > 0.8 {
		t.Errorf("uncensored fit alpha=%v sigma=%v", m.Alpha, m.SigmaDB)
	}
}

func TestModelMean(t *testing.T) {
	m := Model{RefSNRdB: 60, Alpha: 3, RefDistanceM: 1}
	if got := m.Mean(1); got != 60 {
		t.Errorf("mean at ref = %v", got)
	}
	if got := m.Mean(10); math.Abs(got-30) > 1e-9 {
		t.Errorf("mean at 10x = %v, want 30", got)
	}
	// Clamped tiny distance must not blow up.
	if got := m.Mean(0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("mean at 0 = %v", got)
	}
}

func TestResiduals(t *testing.T) {
	m := Model{RefSNRdB: 60, Alpha: 3, RefDistanceM: 1}
	obs := []Sample{{DistanceM: 10, SNRdB: 33}, {DistanceM: 10, SNRdB: 27}}
	res := Residuals(m, obs)
	if math.Abs(res[0]-3) > 1e-9 || math.Abs(res[1]+3) > 1e-9 {
		t.Errorf("residuals = %v", res)
	}
}

func TestLogLikelihoodImprovesOverStart(t *testing.T) {
	obs, cen := synth(4, 600, 62, 3.5, 10, 3)
	m, err := Fit(obs, cen, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.LogLikelihood) || math.IsInf(m.LogLikelihood, 0) {
		t.Errorf("loglik = %v", m.LogLikelihood)
	}
}
