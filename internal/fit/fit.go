// Package fit estimates radio propagation parameters from link
// measurements by censored maximum likelihood, reproducing the
// analysis behind Figure 14 of the paper: a power-law path loss plus
// lognormal shadowing model fitted to all *detectable* pairs of an
// indoor testbed, "accounting for the invisibility of sub-threshold
// links".
//
// The model is
//
//	SNR_dB(d) = A - 10·α·log10(d/d0) + N(0, σ²)
//
// and the data are censored: pairs whose SNR falls below the detection
// threshold T produce no sample at all. Ignoring the censoring biases
// α low and σ low (weak links are silently missing); the likelihood
// here includes a Φ((T-μ)/σ) term per censored pair, as the paper's
// maximum-likelihood fit did.
package fit

import (
	"errors"
	"math"

	"carriersense/internal/numeric"
	"carriersense/internal/rng"
)

// Sample is one observed pair: distance and measured SNR in dB.
type Sample struct {
	DistanceM float64
	SNRdB     float64
}

// CensoredPair is a pair known to exist at a given distance but whose
// signal fell below the detection threshold.
type CensoredPair struct {
	DistanceM float64
}

// Model is the fitted propagation model.
type Model struct {
	// RefSNRdB is A: the SNR at the reference distance RefDistanceM.
	RefSNRdB float64
	// Alpha is the fitted path loss exponent.
	Alpha float64
	// SigmaDB is the fitted shadowing standard deviation.
	SigmaDB float64
	// RefDistanceM anchors the fit (d0).
	RefDistanceM float64
	// LogLikelihood of the data under the fitted parameters.
	LogLikelihood float64
}

// Mean returns the model's mean SNR in dB at distance d.
func (m Model) Mean(d float64) float64 {
	if d < 1e-9 {
		d = 1e-9
	}
	return m.RefSNRdB - 10*m.Alpha*math.Log10(d/m.RefDistanceM)
}

// ErrNoData is returned when there are too few observed samples.
var ErrNoData = errors.New("fit: need at least 3 observed samples")

// Fit runs the censored maximum-likelihood estimation. threshold is
// the detection threshold in the same dB units as the samples;
// censored may be empty (plain ML fit). refDistance anchors the
// reference SNR (the paper used map units; we use meters, commonly 1).
func Fit(observed []Sample, censored []CensoredPair, thresholdDB, refDistanceM float64) (Model, error) {
	if len(observed) < 3 {
		return Model{}, ErrNoData
	}
	// Two standard censored-data likelihoods, chosen by what the
	// caller knows:
	//
	//   - With the censored pairs enumerated (a Tobit-style fit): each
	//     observation contributes its plain Gaussian density and each
	//     censored pair contributes the mass Φ((T-μ)/σ) below the
	//     threshold.
	//   - With only the detectable pairs (truncated regression): each
	//     observation contributes the *truncated* density, normalized
	//     by P[SNR > T].
	//
	// Mixing the two double-counts the censoring and biases α and σ
	// upward.
	tobit := len(censored) > 0
	negLL := func(p []float64) float64 {
		a, alpha, sigma := p[0], p[1], p[2]
		if sigma < 0.1 || sigma > 40 || alpha < 0.1 || alpha > 8 {
			return math.Inf(1)
		}
		m := Model{RefSNRdB: a, Alpha: alpha, SigmaDB: sigma, RefDistanceM: refDistanceM}
		ll := 0.0
		for _, s := range observed {
			mu := m.Mean(s.DistanceM)
			z := (s.SNRdB - mu) / sigma
			ll += -0.5*z*z - math.Log(sigma)
			if !tobit {
				pDetect := 1 - rng.NormalCDF((thresholdDB-mu)/sigma)
				if pDetect < 1e-12 {
					pDetect = 1e-12
				}
				ll -= math.Log(pDetect)
			}
		}
		for _, c := range censored {
			mu := m.Mean(c.DistanceM)
			pCensor := rng.NormalCDF((thresholdDB - mu) / sigma)
			if pCensor < 1e-12 {
				pCensor = 1e-12
			}
			ll += math.Log(pCensor)
		}
		return -ll
	}
	// Moment-based starting point from an ordinary least squares fit.
	a0, alpha0 := olsInit(observed, refDistanceM)
	start := []float64{a0, alpha0, 8}
	best := numeric.NelderMead(negLL, start, []float64{3, 0.5, 2}, 1e-8, 4000)
	m := Model{
		RefSNRdB:      best[0],
		Alpha:         best[1],
		SigmaDB:       best[2],
		RefDistanceM:  refDistanceM,
		LogLikelihood: -negLL(best),
	}
	return m, nil
}

// olsInit least-squares fits SNR against -10·log10(d/d0) to seed the
// optimizer.
func olsInit(observed []Sample, refDistanceM float64) (a, alpha float64) {
	n := float64(len(observed))
	var sx, sy, sxx, sxy float64
	for _, s := range observed {
		x := -10 * math.Log10(math.Max(s.DistanceM, 1e-9)/refDistanceM)
		sx += x
		sy += s.SNRdB
		sxx += x * x
		sxy += x * s.SNRdB
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return sy / n, 3
	}
	alpha = (n*sxy - sx*sy) / denom
	a = (sy - alpha*sx) / n
	if alpha < 0.1 {
		alpha = 0.1
	}
	return a, alpha
}

// Residuals returns the observed-minus-mean residuals of a fit, for
// normality checks and σ validation.
func Residuals(m Model, observed []Sample) []float64 {
	out := make([]float64, len(observed))
	for i, s := range observed {
		out[i] = s.SNRdB - m.Mean(s.DistanceM)
	}
	return out
}

// NaiveFit runs the uncensored OLS fit (the biased estimate the
// censored ML corrects); exposed for the ablation comparing the two.
func NaiveFit(observed []Sample, refDistanceM float64) Model {
	a, alpha := olsInit(observed, refDistanceM)
	m := Model{RefSNRdB: a, Alpha: alpha, RefDistanceM: refDistanceM}
	res := Residuals(m, observed)
	var ss float64
	for _, r := range res {
		ss += r * r
	}
	if len(res) > 2 {
		m.SigmaDB = math.Sqrt(ss / float64(len(res)-2))
	}
	return m
}
