// Package mac implements an 802.11-style DCF CSMA/CA MAC on top of
// internal/phy: slotted binary-exponential backoff, DIFS/SIFS timing,
// optional ACKs with retries, optional RTS/CTS (always-on or the
// paper's §5 proposal of loss-triggered adaptive enablement), NAV
// honoring, and a carrier-sense-disabled "concurrency" mode matching
// the paper's experimental methodology ("we disable carrier sense and
// run all transmitters simultaneously").
//
// Pathology knobs called out in §5 are first-class: per-station CCA
// threshold offsets (threshold asymmetry), the limited initial
// contention window (slot collisions), and — emergent rather than
// configured — chain collisions, which arise naturally because a
// transmitting radio cannot detect preambles (see phy.Medium.tryLock).
package mac

import (
	"fmt"

	"carriersense/internal/capacity"
	"carriersense/internal/phy"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// Config holds DCF timing and policy parameters. DefaultConfig returns
// 802.11a values.
type Config struct {
	SlotTime sim.Time
	SIFS     sim.Time
	DIFS     sim.Time
	CWMin    int // initial contention window (slots - 1)
	CWMax    int

	// CarrierSense false puts the station in the paper's concurrency
	// mode: the DCF state machine runs with identical timing (DIFS,
	// backoff) but CCA is forced idle, exactly how disabling clear
	// channel assessment behaves on real hardware. Keeping the timing
	// identical matters: the paper compares concurrency, multiplexing
	// and CS throughput head-to-head, so the modes must differ only
	// in deferral behavior, not in per-frame overhead.
	CarrierSense bool

	// UseACK enables per-frame acknowledgments and retries (the
	// two-packet DATA-ACK exchange of modern radios, §6). The paper's
	// own throughput runs used broadcast frames without ACKs.
	UseACK     bool
	RetryLimit int

	// RTS selects RTS/CTS operation.
	RTS RTSMode
	// RTSAdaptiveLossThreshold and RTSAdaptiveRSSIdBm parameterize
	// RTSAdaptive: protection turns on when recent delivery drops
	// below the loss threshold while the link RSSI (a proxy for "high
	// RSSI yet high loss", §5) exceeds the RSSI threshold.
	RTSAdaptiveLossThreshold float64
	RTSAdaptiveRSSIdBm       float64

	// BasicRate is the control-frame rate (ACK/RTS/CTS).
	BasicRate capacity.Rate
}

// RTSMode selects RTS/CTS behavior.
type RTSMode int

// RTS modes.
const (
	// RTSOff never uses RTS/CTS.
	RTSOff RTSMode = iota
	// RTSAlways protects every data frame, the 802.11/MACAW-style
	// blanket policy §5 criticizes as "a waste of spatial reuse".
	RTSAlways
	// RTSAdaptive enables protection only while the station observes
	// an extremely high loss rate in spite of a high RSSI — the
	// triggered mechanism §5 proposes.
	RTSAdaptive
)

// String returns the mode name.
func (m RTSMode) String() string {
	switch m {
	case RTSOff:
		return "off"
	case RTSAlways:
		return "always"
	case RTSAdaptive:
		return "adaptive"
	default:
		return "?"
	}
}

// DefaultConfig returns 802.11a DCF parameters with carrier sense on,
// broadcast-style operation (no ACK), and RTS off.
func DefaultConfig() Config {
	return Config{
		SlotTime:     9 * sim.Microsecond,
		SIFS:         16 * sim.Microsecond,
		DIFS:         34 * sim.Microsecond, // SIFS + 2 slots
		CWMin:        15,
		CWMax:        1023,
		CarrierSense: true,
		UseACK:       false,
		RetryLimit:   7,
		RTS:          RTSOff,

		RTSAdaptiveLossThreshold: 0.4,
		RTSAdaptiveRSSIdBm:       -70,

		BasicRate: capacity.Rate{Mbps: 6, BitsPerSymbol: 24, MinSNRdB: 6},
	}
}

// RateSelector chooses a transmit rate per destination and learns from
// outcomes. internal/rate provides SampleRate; FixedRate is local.
type RateSelector interface {
	// Select returns the rate for the next data frame to dst.
	Select(dst phy.NodeID) capacity.Rate
	// Update reports a transmission outcome. For broadcast traffic
	// (no feedback) the MAC never calls Update.
	Update(dst phy.NodeID, rate capacity.Rate, success bool, airtime sim.Time)
}

// FixedRate is a RateSelector pinned to one rate.
type FixedRate struct{ Rate capacity.Rate }

// Select implements RateSelector.
func (f FixedRate) Select(phy.NodeID) capacity.Rate { return f.Rate }

// Update implements RateSelector.
func (f FixedRate) Update(phy.NodeID, capacity.Rate, bool, sim.Time) {}

// Stats counts station activity.
type Stats struct {
	DataSent      uint64 // data frames put on the air
	DataAcked     uint64 // unicast data frames acknowledged
	Retries       uint64
	Drops         uint64 // frames abandoned after RetryLimit
	RTSSent       uint64
	CTSTimeouts   uint64
	AckTimeouts   uint64
	DeferredNanos sim.Time // time spent with CCA busy while backlogged
	NAVNanos      sim.Time // time spent deferring to NAV
}

type state int

const (
	stIdle state = iota
	stWaitIdle
	stDIFS
	stBackoff
	stTx
	stWaitCTS
	stWaitACK
	stRespond // brief SIFS turnaround before sending a response frame
)

// Station is one DCF MAC instance bound to a radio. A saturated
// traffic source is configured with StartSaturated; stations without
// traffic still respond to RTS and data (CTS/ACK) addressed to them.
type Station struct {
	cfg   Config
	s     *sim.Simulator
	radio *phy.Radio
	src   *rng.Source
	rates RateSelector

	// Traffic.
	backlogged bool
	dst        phy.NodeID
	frameBytes int

	// DCF state.
	st           state
	cw           int
	backoffSlots int
	timer        sim.Event
	pending      phy.Frame
	retries      int
	navUntil     sim.Time
	deferStart   sim.Time
	protectNext  int // remaining frames to protect with RTS (adaptive)

	// Pre-bound timer callbacks, built once in NewStation: the DCF loop
	// schedules thousands of DIFS/slot/timeout timers per simulated
	// second, and binding the methods per call would allocate a closure
	// for every one of them.
	difsExpiredFn  func()
	slotTickFn     func()
	ackTimeoutFn   func()
	ctsTimeoutFn   func()
	transmitDataFn func()
	navWakeFn      func()

	// Adaptive RTS bookkeeping: outcomes of recent unicast data.
	recentOutcomes []bool

	// OnDeliver is invoked when a data frame from this station is
	// known delivered (ACK received). Broadcast delivery is counted at
	// the receivers instead.
	OnDeliver func(phy.Frame)
	// OnData is invoked for every successfully decoded data frame
	// addressed to this station (or broadcast). The testbed experiment
	// harness counts received packets here, mirroring the paper's
	// "count the number of packets successfully received at the
	// intended receiver".
	OnData func(phy.RxResult)

	Stats Stats
}

// NewStation binds a DCF MAC to a radio.
func NewStation(s *sim.Simulator, radio *phy.Radio, cfg Config, src *rng.Source, rates RateSelector) *Station {
	if rates == nil {
		rates = FixedRate{Rate: cfg.BasicRate}
	}
	st := &Station{cfg: cfg, s: s, radio: radio, src: src, rates: rates, cw: cfg.CWMin}
	st.difsExpiredFn = st.difsExpired
	st.slotTickFn = st.slotTick
	st.ackTimeoutFn = st.ackTimeout
	st.ctsTimeoutFn = st.ctsTimeout
	st.transmitDataFn = st.transmitData
	st.navWakeFn = st.navWake
	radio.OnCCA = st.onCCA
	radio.OnTxDone = st.onTxDone
	radio.OnRx = st.onRx
	return st
}

// Radio returns the bound radio.
func (st *Station) Radio() *phy.Radio { return st.radio }

// StartSaturated makes the station a saturated source of frameBytes
// data frames to dst (phy.Broadcast for the paper's methodology),
// beginning at the current simulation time.
func (st *Station) StartSaturated(dst phy.NodeID, frameBytes int) {
	st.backlogged = true
	st.dst = dst
	st.frameBytes = frameBytes
	st.prepareNext()
	st.beginAccess()
}

// StopTraffic ends the saturated source after any in-flight exchange.
func (st *Station) StopTraffic() {
	st.backlogged = false
}

// prepareNext stages the next data frame.
func (st *Station) prepareNext() {
	st.retries = 0
	st.pending = phy.Frame{
		Dst:   st.dst,
		Kind:  phy.FrameData,
		Bytes: st.frameBytes,
		Rate:  st.rates.Select(st.dst),
	}
}

// busy reports the effective CCA including NAV. With carrier sense
// disabled the medium always appears idle (but a half-duplex radio
// still cannot contend while transmitting).
func (st *Station) busy() bool {
	if !st.cfg.CarrierSense {
		return st.radio.Transmitting()
	}
	if st.s.Now() < st.navUntil {
		return true
	}
	return st.radio.CCABusy()
}

// beginAccess starts medium access for the pending frame.
func (st *Station) beginAccess() {
	if !st.backlogged {
		st.st = stIdle
		return
	}
	if st.busy() {
		st.enterWaitIdle()
		return
	}
	st.enterDIFS()
}

func (st *Station) enterWaitIdle() {
	st.st = stWaitIdle
	st.deferStart = st.s.Now()
	st.cancelTimer()
	// If only NAV blocks us, wake when it expires (CCA callbacks won't
	// fire for virtual carrier).
	if st.s.Now() < st.navUntil && !st.radio.CCABusy() {
		st.scheduleNAVWake()
	}
}

// scheduleNAVWake arms a timer at the NAV expiry to resume contention
// once the virtual carrier clears.
func (st *Station) scheduleNAVWake() {
	until := st.navUntil
	st.cancelTimer()
	st.timer = st.s.At(until, st.navWakeFn)
}

// navWake fires at the NAV expiry the wake was armed for (the timer is
// canceled on any state change, so Now() is that expiry).
func (st *Station) navWake() {
	if st.st == stWaitIdle && !st.busy() {
		st.Stats.NAVNanos += st.s.Now() - st.deferStart
		st.enterDIFS()
	}
}

func (st *Station) enterDIFS() {
	st.st = stDIFS
	st.cancelTimer()
	st.timer = st.s.After(st.cfg.DIFS, st.difsExpiredFn)
}

func (st *Station) difsExpired() {
	if st.busy() {
		st.enterWaitIdle()
		return
	}
	st.st = stBackoff
	if st.backoffSlots == 0 {
		st.backoffSlots = st.src.IntN(st.cw + 1)
	}
	st.scheduleSlot()
}

func (st *Station) scheduleSlot() {
	if st.backoffSlots == 0 {
		st.startExchange()
		return
	}
	st.cancelTimer()
	st.timer = st.s.After(st.cfg.SlotTime, st.slotTickFn)
}

// slotTick burns one backoff slot.
func (st *Station) slotTick() {
	if st.st != stBackoff {
		return
	}
	st.backoffSlots--
	st.scheduleSlot()
}

// onCCA freezes and resumes the contention process.
func (st *Station) onCCA(busyNow bool) {
	if !st.cfg.CarrierSense {
		return
	}
	switch st.st {
	case stDIFS:
		if busyNow {
			st.cancelTimer()
			st.enterWaitIdle()
		}
	case stBackoff:
		if busyNow {
			st.cancelTimer()
			st.enterWaitIdle()
		}
	case stWaitIdle:
		if !busyNow {
			if !st.busy() {
				st.Stats.DeferredNanos += st.s.Now() - st.deferStart
				st.enterDIFS()
			} else if st.s.Now() < st.navUntil {
				// Physical carrier cleared but the NAV still holds
				// the medium reserved: wake when it expires.
				st.scheduleNAVWake()
			}
		}
	}
}

// startExchange begins the frame exchange: RTS first when protection
// applies, else the data frame.
func (st *Station) startExchange() {
	if st.useRTS() {
		st.transmitRTS()
		return
	}
	st.transmitData()
}

// useRTS decides per-frame whether to protect with RTS/CTS.
func (st *Station) useRTS() bool {
	if st.pending.Dst == phy.Broadcast {
		return false
	}
	switch st.cfg.RTS {
	case RTSAlways:
		return true
	case RTSAdaptive:
		return st.protectNext > 0
	default:
		return false
	}
}

func (st *Station) transmitRTS() {
	st.st = stTx
	dataDur := st.radio.Transmit(phy.Frame{
		Dst:   st.pending.Dst,
		Kind:  phy.FrameRTS,
		Bytes: 20,
		Rate:  st.cfg.BasicRate,
		NAV:   st.exchangeNAV(),
	})
	_ = dataDur
	st.Stats.RTSSent++
}

// exchangeNAV is the medium reservation an RTS advertises: CTS + data
// + ACK plus three SIFS.
func (st *Station) exchangeNAV() sim.Time {
	phyCfg := radioConfig(st.radio)
	cts := phyCfg.FrameDuration(14, st.cfg.BasicRate)
	data := phyCfg.FrameDuration(st.pending.Bytes, st.pending.Rate)
	ack := phyCfg.FrameDuration(14, st.cfg.BasicRate)
	// Each SIFS gap is padded by the responder's RX/TX turnaround so
	// the reservation covers the whole exchange as seen on the air.
	return 3*(st.cfg.SIFS+phyCfg.TxTurnaround) + cts + data + ack
}

func (st *Station) transmitData() {
	if !st.backlogged {
		st.st = stIdle
		return
	}
	st.st = stTx
	st.radio.Transmit(st.pending)
	st.Stats.DataSent++
}

// onTxDone handles completion of our own transmissions.
func (st *Station) onTxDone(f phy.Frame) {
	switch f.Kind {
	case phy.FrameData:
		if f.Dst != phy.Broadcast && st.cfg.UseACK {
			st.st = stWaitACK
			phyCfg := radioConfig(st.radio)
			timeout := st.cfg.SIFS + phyCfg.FrameDuration(14, st.cfg.BasicRate) + 25*sim.Microsecond
			st.cancelTimer()
			st.timer = st.s.After(timeout, st.ackTimeoutFn)
			return
		}
		// Broadcast (or unacked unicast): fire-and-forget.
		st.frameDone(true)
	case phy.FrameRTS:
		st.st = stWaitCTS
		phyCfg := radioConfig(st.radio)
		timeout := st.cfg.SIFS + phyCfg.FrameDuration(14, st.cfg.BasicRate) + 25*sim.Microsecond
		st.cancelTimer()
		st.timer = st.s.After(timeout, st.ctsTimeoutFn)
	case phy.FrameACK, phy.FrameCTS:
		// Control responses need no follow-up from us; if we were in a
		// respond turnaround, resume contention for our own traffic.
		if st.st == stRespond {
			st.st = stIdle
			st.beginAccess()
		}
	}
}

// frameDone finalizes the pending data frame and moves on. success
// feeds rate control and, for unicast, delivery accounting.
func (st *Station) frameDone(success bool) {
	phyCfg := radioConfig(st.radio)
	airtime := phyCfg.FrameDuration(st.pending.Bytes, st.pending.Rate)
	if st.pending.Dst != phy.Broadcast && st.cfg.UseACK {
		st.rates.Update(st.pending.Dst, st.pending.Rate, success, airtime)
		st.noteOutcome(success)
		if success {
			st.Stats.DataAcked++
			if st.OnDeliver != nil {
				st.OnDeliver(st.pending)
			}
		}
	}
	if success {
		st.cw = st.cfg.CWMin
	}
	st.backoffSlots = 0
	if st.backlogged {
		st.prepareNext()
		// Post-transmission contention (802.11 requires backoff even
		// after success); kept in both CS modes so the modes differ
		// only in deferral, never in frame pacing.
		st.backoffSlots = st.src.IntN(st.cw + 1)
		st.beginAccess()
	} else {
		st.st = stIdle
	}
}

func (st *Station) ackTimeout() {
	if st.st != stWaitACK {
		return
	}
	st.Stats.AckTimeouts++
	st.retryOrDrop()
}

func (st *Station) ctsTimeout() {
	if st.st != stWaitCTS {
		return
	}
	st.Stats.CTSTimeouts++
	st.retryOrDrop()
}

func (st *Station) retryOrDrop() {
	st.retries++
	st.rates.Update(st.pending.Dst, st.pending.Rate, false,
		radioConfig(st.radio).FrameDuration(st.pending.Bytes, st.pending.Rate))
	st.noteOutcome(false)
	if st.retries > st.cfg.RetryLimit {
		st.Stats.Drops++
		st.frameDone(false)
		return
	}
	st.Stats.Retries++
	if st.cw < st.cfg.CWMax {
		st.cw = st.cw*2 + 1
		if st.cw > st.cfg.CWMax {
			st.cw = st.cfg.CWMax
		}
	}
	st.pending.Rate = st.rates.Select(st.pending.Dst)
	st.backoffSlots = st.src.IntN(st.cw + 1)
	st.beginAccess()
}

// noteOutcome records a unicast outcome and updates adaptive RTS
// state: §5 — enable protection when "experiencing an extremely high
// loss rate to some receiver in spite of a high RSSI".
func (st *Station) noteOutcome(success bool) {
	if st.cfg.RTS != RTSAdaptive {
		return
	}
	st.recentOutcomes = append(st.recentOutcomes, success)
	const window = 20
	if len(st.recentOutcomes) > window {
		st.recentOutcomes = st.recentOutcomes[len(st.recentOutcomes)-window:]
	}
	if len(st.recentOutcomes) < window/2 {
		return
	}
	ok := 0
	for _, s := range st.recentOutcomes {
		if s {
			ok++
		}
	}
	delivery := float64(ok) / float64(len(st.recentOutcomes))
	if st.protectNext > 0 {
		st.protectNext--
		return
	}
	if delivery < st.cfg.RTSAdaptiveLossThreshold &&
		st.radio.RSSIFromDBm(st.dst) > st.cfg.RTSAdaptiveRSSIdBm {
		st.protectNext = window
	}
}

// onRx handles frames arriving at our radio.
func (st *Station) onRx(res phy.RxResult) {
	f := res.Frame
	// NAV from overheard RTS/CTS not addressed to us (even corrupted
	// frames whose preamble locked carry no usable NAV, so require OK).
	if res.OK && f.NAV > 0 && f.Dst != st.radio.ID() {
		until := st.s.Now() + f.NAV
		if until > st.navUntil {
			st.navUntil = until
		}
	}
	if !res.OK || (f.Dst != st.radio.ID() && f.Dst != phy.Broadcast) {
		return
	}
	switch f.Kind {
	case phy.FrameRTS:
		if f.Dst == st.radio.ID() {
			st.respondAfterSIFS(phy.Frame{
				Dst:   f.Src,
				Kind:  phy.FrameCTS,
				Bytes: 14,
				Rate:  st.cfg.BasicRate,
				NAV:   f.NAV - st.cfg.SIFS - radioConfig(st.radio).FrameDuration(14, st.cfg.BasicRate),
			})
		}
	case phy.FrameCTS:
		if f.Dst == st.radio.ID() && st.st == stWaitCTS {
			st.cancelTimer()
			st.timer = st.s.After(st.cfg.SIFS, st.transmitDataFn)
			st.st = stTx
		}
	case phy.FrameData:
		if st.OnData != nil {
			st.OnData(res)
		}
		if f.Dst == st.radio.ID() && st.cfg.UseACK {
			st.respondAfterSIFS(phy.Frame{
				Dst:   f.Src,
				Kind:  phy.FrameACK,
				Bytes: 14,
				Rate:  st.cfg.BasicRate,
			})
		}
	case phy.FrameACK:
		if f.Dst == st.radio.ID() && st.st == stWaitACK {
			st.cancelTimer()
			st.frameDone(true)
		}
	}
}

// respondAfterSIFS transmits a control response after SIFS, ignoring
// CCA per the standard (responses own the medium).
func (st *Station) respondAfterSIFS(f phy.Frame) {
	prev := st.st
	st.st = stRespond
	st.s.After(st.cfg.SIFS, func() {
		if st.radio.Transmitting() {
			// Shouldn't happen; fall back to previous state.
			st.st = prev
			return
		}
		st.radio.Transmit(f)
	})
}

func (st *Station) cancelTimer() {
	st.timer.Cancel()
	st.timer = sim.Event{}
}

// radioConfig fetches the PHY config via the radio's medium. Kept as a
// helper so Station never stores a second copy that could drift.
func radioConfig(r *phy.Radio) phy.Config {
	return r.MediumConfig()
}

// Describe returns a one-line summary of the station for logs.
func (st *Station) Describe() string {
	return fmt.Sprintf("station %d: sent=%d acked=%d retries=%d drops=%d",
		st.radio.ID(), st.Stats.DataSent, st.Stats.DataAcked, st.Stats.Retries, st.Stats.Drops)
}
