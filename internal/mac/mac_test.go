package mac

import (
	"math"
	"testing"

	"carriersense/internal/capacity"
	"carriersense/internal/phy"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// matrixChannel is a symmetric gain matrix for small topologies.
type matrixChannel map[[2]phy.NodeID]float64

func (m matrixChannel) set(a, b phy.NodeID, g float64) {
	m[[2]phy.NodeID{a, b}] = g
	m[[2]phy.NodeID{b, a}] = g
}

func (m matrixChannel) GainDB(from, to phy.NodeID) float64 {
	if g, ok := m[[2]phy.NodeID{from, to}]; ok {
		return g
	}
	return -300
}

func quietPhy() phy.Config {
	cfg := phy.DefaultConfig()
	cfg.Fade = capacity.FadeModel{}
	return cfg
}

var rate6 = capacity.Table80211a[0]
var rate24 = capacity.Table80211a[4]

// harness bundles a small simulation.
type harness struct {
	s      *sim.Simulator
	medium *phy.Medium
	src    *rng.Source
}

func newHarness(ch phy.Channel, cfg phy.Config, seed uint64) *harness {
	src := rng.New(seed)
	s := sim.New()
	return &harness{s: s, medium: phy.NewMedium(s, ch, cfg, src.Split()), src: src}
}

func (h *harness) station(id phy.NodeID, cfg Config, rates RateSelector) *Station {
	return NewStation(h.s, h.medium.AddRadio(id, 15), cfg, h.src.Split(), rates)
}

func countData(st *Station, from phy.NodeID) *uint64 {
	var n uint64
	st.OnData = func(res phy.RxResult) {
		if res.Frame.Src == from {
			n++
		}
	}
	return &n
}

func TestSingleStationSaturatedThroughput(t *testing.T) {
	ch := matrixChannel{}
	ch.set(0, 1, -80) // 30 dB SNR
	h := newHarness(ch, quietPhy(), 1)
	tx := h.station(0, DefaultConfig(), FixedRate{Rate: rate6})
	rx := h.station(1, DefaultConfig(), nil)
	got := countData(rx, 0)
	tx.StartSaturated(phy.Broadcast, 1400)
	h.s.Run(2 * sim.Second)
	// Frame time 1892 µs + DIFS 34 + mean backoff 7.5·9 = 67.5 →
	// ~1993 µs/frame → ~502 frames/s.
	rate := float64(*got) / 2
	if rate < 470 || rate < 400 || rate > 530 {
		t.Errorf("saturated 6M throughput = %v pkt/s, want ~500", rate)
	}
	if tx.Stats.DataSent < uint64(rate*2)-2 {
		t.Errorf("sender stats inconsistent: sent %d, delivered %v", tx.Stats.DataSent, *got)
	}
}

func TestTwoStationsShareFairly(t *testing.T) {
	// Both senders in carrier sense range: DCF splits the channel and
	// the total matches the single-sender rate (no collisions beyond
	// slot ties).
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	ch.set(2, 3, -80)
	ch.set(0, 2, -70) // strong mutual sensing
	ch.set(0, 3, -90)
	ch.set(2, 1, -90)
	h := newHarness(ch, quietPhy(), 2)
	cfg := DefaultConfig()
	s0 := h.station(0, cfg, FixedRate{Rate: rate6})
	rx1 := h.station(1, cfg, nil)
	s2 := h.station(2, cfg, FixedRate{Rate: rate6})
	rx3 := h.station(3, cfg, nil)
	got1 := countData(rx1, 0)
	got3 := countData(rx3, 2)
	s0.StartSaturated(phy.Broadcast, 1400)
	s2.StartSaturated(phy.Broadcast, 1400)
	h.s.Run(2 * sim.Second)
	total := float64(*got1+*got3) / 2
	if total < 400 || total > 530 {
		t.Errorf("shared total = %v pkt/s, want ~480", total)
	}
	// Jain fairness of the two counts.
	x, y := float64(*got1), float64(*got3)
	jain := (x + y) * (x + y) / (2 * (x*x + y*y))
	if jain < 0.95 {
		t.Errorf("unfair split: %v vs %v (jain %v)", x, y, jain)
	}
	// Both stations spent time deferring.
	if s0.Stats.DeferredNanos == 0 || s2.Stats.DeferredNanos == 0 {
		t.Error("no deferral recorded under contention")
	}
}

func TestCarrierSenseDisabledCollides(t *testing.T) {
	// Same topology with receivers in the crossfire: disabling CS
	// produces heavy collisions — both receivers hear both senders at
	// comparable power.
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	ch.set(2, 3, -80)
	ch.set(0, 2, -70)
	ch.set(0, 3, -83)
	ch.set(2, 1, -83)
	mk := func(cs bool, seed uint64) float64 {
		h := newHarness(ch, quietPhy(), seed)
		cfg := DefaultConfig()
		cfg.CarrierSense = cs
		s0 := h.station(0, cfg, FixedRate{Rate: rate6})
		rx1 := h.station(1, cfg, nil)
		s2 := h.station(2, cfg, FixedRate{Rate: rate6})
		rx3 := h.station(3, cfg, nil)
		got1 := countData(rx1, 0)
		got3 := countData(rx3, 2)
		s0.StartSaturated(phy.Broadcast, 1400)
		s2.StartSaturated(phy.Broadcast, 1400)
		h.s.Run(2 * sim.Second)
		return float64(*got1+*got3) / 2
	}
	withCS := mk(true, 3)
	withoutCS := mk(false, 3)
	if withoutCS > withCS/2 {
		t.Errorf("CS off should collapse throughput: on=%v off=%v", withCS, withoutCS)
	}
}

func TestUnicastAckAndRetries(t *testing.T) {
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	h := newHarness(ch, quietPhy(), 4)
	cfg := DefaultConfig()
	cfg.UseACK = true
	tx := h.station(0, cfg, FixedRate{Rate: rate6})
	h.station(1, cfg, nil)
	delivered := 0
	tx.OnDeliver = func(phy.Frame) { delivered++ }
	tx.StartSaturated(1, 1400)
	h.s.Run(1 * sim.Second)
	if delivered == 0 {
		t.Fatal("no unicast deliveries")
	}
	if tx.Stats.DataAcked != uint64(delivered) {
		t.Errorf("acked %d != delivered %d", tx.Stats.DataAcked, delivered)
	}
	if tx.Stats.Drops > 0 {
		t.Errorf("drops on a clean link: %d", tx.Stats.Drops)
	}
	// ACK overhead cuts goodput below broadcast but not catastrophically.
	rate := float64(delivered)
	if rate < 350 || rate > 520 {
		t.Errorf("unicast rate = %v pkt/s", rate)
	}
}

func TestRetryExhaustionDrops(t *testing.T) {
	// Receiver out of range: every frame times out and eventually
	// drops, with CW growth in between.
	ch := matrixChannel{}
	ch.set(0, 1, -130)
	h := newHarness(ch, quietPhy(), 5)
	cfg := DefaultConfig()
	cfg.UseACK = true
	tx := h.station(0, cfg, FixedRate{Rate: rate6})
	h.station(1, cfg, nil)
	tx.StartSaturated(1, 1400)
	h.s.Run(1 * sim.Second)
	if tx.Stats.Drops == 0 {
		t.Error("no drops to an unreachable receiver")
	}
	if tx.Stats.AckTimeouts == 0 {
		t.Error("no ACK timeouts recorded")
	}
	if tx.Stats.DataAcked != 0 {
		t.Errorf("phantom ACKs: %d", tx.Stats.DataAcked)
	}
}

func TestRTSAlwaysProtectsButCosts(t *testing.T) {
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	run := func(mode RTSMode) (float64, uint64) {
		h := newHarness(ch, quietPhy(), 6)
		cfg := DefaultConfig()
		cfg.UseACK = true
		cfg.RTS = mode
		tx := h.station(0, cfg, FixedRate{Rate: rate24})
		h.station(1, cfg, nil)
		delivered := 0
		tx.OnDeliver = func(phy.Frame) { delivered++ }
		tx.StartSaturated(1, 1400)
		h.s.Run(1 * sim.Second)
		return float64(delivered), tx.Stats.RTSSent
	}
	plain, rtsPlain := run(RTSOff)
	protected, rtsCount := run(RTSAlways)
	if rtsPlain != 0 {
		t.Errorf("RTSOff sent %d RTS frames", rtsPlain)
	}
	if rtsCount == 0 {
		t.Error("RTSAlways sent no RTS")
	}
	// On a clean link, blanket RTS/CTS costs real throughput — the §5
	// objection to MACAW-style protection.
	if protected >= plain {
		t.Errorf("RTS overhead invisible: plain %v, protected %v", plain, protected)
	}
	if protected < plain*0.5 {
		t.Errorf("RTS overhead implausibly large: plain %v, protected %v", plain, protected)
	}
}

func TestRTSAdaptiveStaysOffOnCleanLink(t *testing.T) {
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	h := newHarness(ch, quietPhy(), 7)
	cfg := DefaultConfig()
	cfg.UseACK = true
	cfg.RTS = RTSAdaptive
	tx := h.station(0, cfg, FixedRate{Rate: rate24})
	h.station(1, cfg, nil)
	tx.StartSaturated(1, 1400)
	h.s.Run(1 * sim.Second)
	if tx.Stats.RTSSent > 0 {
		t.Errorf("adaptive RTS engaged on a clean link: %d", tx.Stats.RTSSent)
	}
}

func TestRTSAdaptiveEngagesUnderHiddenInterference(t *testing.T) {
	// Hidden interferer smothers the receiver; the sender sees high
	// RSSI but massive loss — §5's trigger condition.
	ch := matrixChannel{}
	ch.set(0, 1, -80)  // good serving link
	ch.set(2, 1, -78)  // interference above signal
	ch.set(0, 2, -300) // hidden
	ch.set(2, 3, -300)
	h := newHarness(ch, quietPhy(), 8)
	cfg := DefaultConfig()
	cfg.UseACK = true
	cfg.RTS = RTSAdaptive
	tx := h.station(0, cfg, FixedRate{Rate: rate24})
	h.station(1, cfg, nil)
	// The interferer blasts without CS (it cannot hear anyone anyway).
	icfg := DefaultConfig()
	icfg.CarrierSense = false
	interferer := h.station(2, icfg, FixedRate{Rate: rate6})
	tx.StartSaturated(1, 1400)
	interferer.StartSaturated(phy.Broadcast, 1400)
	h.s.Run(2 * sim.Second)
	if tx.Stats.RTSSent == 0 {
		t.Error("adaptive RTS never engaged under hidden-terminal loss")
	}
}

func TestNAVDefersThirdStation(t *testing.T) {
	// Station 4 overhears an RTS addressed elsewhere and must defer
	// for the advertised NAV even though the data exchange itself is
	// below its CCA threshold.
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	ch.set(0, 4, -85) // overhears the RTS
	ch.set(1, 4, -85)
	ch.set(4, 5, -80)
	h := newHarness(ch, quietPhy(), 9)
	cfg := DefaultConfig()
	cfg.UseACK = true
	cfg.RTS = RTSAlways
	tx := h.station(0, cfg, FixedRate{Rate: rate6})
	h.station(1, cfg, nil)
	bystander := h.station(4, DefaultConfig(), FixedRate{Rate: rate6})
	h.station(5, DefaultConfig(), nil)
	tx.StartSaturated(1, 1400)
	bystander.StartSaturated(phy.Broadcast, 1400)
	h.s.Run(1 * sim.Second)
	if bystander.Stats.NAVNanos == 0 {
		t.Error("bystander never honored a NAV")
	}
}

func TestStopTraffic(t *testing.T) {
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	h := newHarness(ch, quietPhy(), 10)
	tx := h.station(0, DefaultConfig(), FixedRate{Rate: rate6})
	rx := h.station(1, DefaultConfig(), nil)
	got := countData(rx, 0)
	tx.StartSaturated(phy.Broadcast, 1400)
	h.s.Run(500 * sim.Millisecond)
	tx.StopTraffic()
	atStop := *got
	h.s.Run(1 * sim.Second)
	if *got > atStop+2 {
		t.Errorf("traffic continued after stop: %d -> %d", atStop, *got)
	}
}

func TestDescribeAndModeStrings(t *testing.T) {
	ch := matrixChannel{}
	h := newHarness(ch, quietPhy(), 11)
	st := h.station(0, DefaultConfig(), nil)
	if st.Describe() == "" {
		t.Error("empty describe")
	}
	if RTSOff.String() != "off" || RTSAlways.String() != "always" ||
		RTSAdaptive.String() != "adaptive" || RTSMode(9).String() != "?" {
		t.Error("RTS mode names")
	}
}

func TestSlotCollisions(t *testing.T) {
	// Two saturated stations with a tiny CW collide on identical slot
	// choices — the "slot collision" pathology of §5. With CWMin = 0
	// every post-frame backoff picks slot 0 and the two stations,
	// synchronized by the previous frame's end, collide repeatedly.
	ch := matrixChannel{}
	ch.set(0, 1, -80)
	ch.set(2, 3, -80)
	ch.set(0, 2, -70)
	ch.set(0, 3, -80)
	ch.set(2, 1, -80)
	run := func(cwMin int) float64 {
		h := newHarness(ch, quietPhy(), 12)
		cfg := DefaultConfig()
		cfg.CWMin = cwMin
		s0 := h.station(0, cfg, FixedRate{Rate: rate6})
		rx1 := h.station(1, cfg, nil)
		s2 := h.station(2, cfg, FixedRate{Rate: rate6})
		rx3 := h.station(3, cfg, nil)
		got1 := countData(rx1, 0)
		got3 := countData(rx3, 2)
		s0.StartSaturated(phy.Broadcast, 1400)
		s2.StartSaturated(phy.Broadcast, 1400)
		h.s.Run(1 * sim.Second)
		return float64(*got1 + *got3)
	}
	healthy := run(15)
	degenerate := run(0)
	if degenerate > healthy*0.5 {
		t.Errorf("CWMin=0 should collapse via slot collisions: %v vs %v", degenerate, healthy)
	}
}

func TestJainHelper(t *testing.T) {
	// Sanity for the fairness arithmetic used in tests above.
	x, y := 100.0, 100.0
	jain := (x + y) * (x + y) / (2 * (x*x + y*y))
	if math.Abs(jain-1) > 1e-12 {
		t.Errorf("jain of equal shares = %v", jain)
	}
}
