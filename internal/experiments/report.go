package experiments

import (
	"fmt"
	"io"

	"carriersense/internal/capacity"
	"carriersense/internal/core"
	"carriersense/internal/testbed"
)

// Report runs every experiment in DESIGN.md's index at the given scale
// and writes a consolidated text report — the generator behind
// EXPERIMENTS.md and cmd/csreport.
func Report(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "=== In Defense of Wireless Carrier Sense: reproduction report ===")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- T1/T2: carrier sense efficiency tables (section 3.2.5) ---")
	t1 := Table1(DefaultTable1(), scale)
	t1.Render(w, "T1: CS %% of optimal, fixed Dthresh=55 (paper: 96 88 96 / 96 87 96 / 89 83 92)")
	fmt.Fprintln(w)
	t2 := Table2(DefaultTable1(), scale)
	t2.Render(w, "T2: CS %% of optimal, per-Rmax optimized thresholds (paper: Dthresh 40/55/60; 93 91 99 / 96 87 96 / 89 83 92)")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- T3: environment robustness sweep ---")
	RenderRobustness(w, RobustnessSweep([]float64{2, 3, 4}, []float64{4, 8, 12}, minScale(scale)))
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- F2/F3: capacity landscape and preference maps ---")
	lp := DefaultLandscape()
	if scale == ScaleSmoke {
		lp.Cells = 24
	}
	Landscape(lp).Render(w)
	Preference(lp).Render(w)

	fmt.Fprintln(w, "--- F4/F5: throughput vs D, sigma=0 ---")
	for _, rmax := range []float64{20, 55, 120} {
		c := Curves(DefaultCurves(rmax), scale)
		chart := c.Chart(rmax == 55) // Figure 5 highlights the CS curve at Rmax=55
		chart.Render(w, 72, 18)
		fmt.Fprintf(w, "concurrency/multiplexing crossover at D ~= %.0f\n\n", c.CrossoverD())
	}

	fmt.Fprintln(w, "--- F6: inefficiency decomposition ---")
	InefficiencyDecomposition(DefaultCurves(55), scale).Render(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- F7: optimal threshold vs network radius ---")
	f7p := DefaultFigure7()
	if scale == ScaleSmoke {
		f7p.Alphas = []float64{3}
		f7p.RmaxGrid = f7p.RmaxGrid[:6]
	}
	f7 := Figure7(f7p, scale)
	chart := f7.Chart()
	chart.Render(w, 72, 20)
	f7.RegimeTable(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- F9: throughput vs D with 8 dB shadowing ---")
	for _, rmax := range []float64{20, 55, 120} {
		p := DefaultCurves(rmax)
		p.SigmaDB = 8
		c := Curves(p, scale)
		chart := c.Chart(true)
		chart.Render(w, 72, 18)
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "--- S34: shadowing worked example ---")
	Section34(scale).Render(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- F8: barrier analysis ---")
	Barrier().Render(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- F10-F13: testbed experiments (packet simulator) ---")
	tp := DefaultTestbed(scale)
	short := RunTestbed(tp, testbed.ShortRange)
	cchart := short.CompetitiveChart()
	cchart.Render(w, 72, 18)
	rchart := short.RSSIChart()
	rchart.Render(w, 72, 18)
	short.RenderSummary(w)
	fmt.Fprintln(w)
	long := RunTestbed(tp, testbed.LongRange)
	cchart = long.CompetitiveChart()
	cchart.Render(w, 72, 18)
	rchart = long.RSSIChart()
	rchart.Render(w, 72, 18)
	long.RenderSummary(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- S5a: exposed terminals vs bitrate adaptation ---")
	ExposedTerminals(tp).Render(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- X11g: deep long range with 11g rates (extension) ---")
	Extension11g(tp).Render(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- Xn: n > 2 senders (extension) ---")
	RenderMultiPair(w, scale)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "--- F14: propagation fit ---")
	f14, err := Figure14(DefaultFigure14())
	if err != nil {
		fmt.Fprintf(w, "figure 14 failed: %v\n", err)
	} else {
		fchart := f14.Chart()
		fchart.Render(w, 72, 18)
		f14.Render(w)
	}
}

// minScale drops one scale level for the expensive sweeps.
func minScale(s Scale) Scale {
	if s > ScaleSmoke {
		return s - 1
	}
	return s
}

// RenderMultiPair writes the n-pair extension sweep under both
// capacity models (see cmd/csmulti for the standalone tool).
func RenderMultiPair(w io.Writer, scale Scale) {
	samples := scale.mcSamples() / 4
	maxN := 6
	if scale == ScaleSmoke {
		maxN = 3
	}
	for _, fixed := range []bool{false, true} {
		label := "adaptive bitrate (Shannon)"
		if fixed {
			label = "fixed low bitrate (footnote 18 regime)"
		}
		fmt.Fprintf(w, "n-pair sweep, %s:\n", label)
		for n := 2; n <= maxN; n++ {
			p := core.DefaultMultiParams(n)
			if fixed {
				p.Env.Capacity = capacity.FixedRate{Rate: 1.25, MinSNR: 2.5}
			}
			a := core.NewMulti(p).EstimateMulti(uint64(n), samples)
			fmt.Fprintf(w, "  n=%d: CS/best-k %.0f%%, exposed headroom +%.0f%%, avg active %.1f\n",
				n, 100*a.Efficiency(), 100*a.ExposedHeadroom(), a.AvgActive.Mean)
		}
	}
}
