// Package experiments contains one orchestrator per table and figure
// of the paper's evaluation, returning structured results and
// rendering them as text. DESIGN.md §3 maps each experiment ID to its
// paper source; EXPERIMENTS.md records paper-versus-measured values.
//
// Every orchestrator takes a Scale: benchmark and test callers use
// reduced Monte Carlo sample counts, command-line tools use full ones.
package experiments

import (
	"fmt"
	"io"
	"math"

	"carriersense/internal/core"
	"carriersense/internal/plot"
)

// Scale selects the sampling effort of an experiment.
type Scale int

// Scales.
const (
	// ScaleSmoke is for unit tests: fast, noisy.
	ScaleSmoke Scale = iota
	// ScaleBench is for benchmarks: seconds per experiment.
	ScaleBench
	// ScaleFull is for the command-line tools: minutes, tight error
	// bars comparable to the paper's Maple runs.
	ScaleFull
)

// ParseScale maps the CLI's effort names to Scale values.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return ScaleSmoke, nil
	case "bench", "":
		return ScaleBench, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want smoke, bench, or full)", s)
	}
}

// mcSamples returns the Monte Carlo sample count per estimate.
func (s Scale) mcSamples() int {
	switch s {
	case ScaleSmoke:
		return 4_000
	case ScaleBench:
		return 40_000
	default:
		return 400_000
	}
}

// Table1Params are the §3.2.5 grid parameters: fixed threshold 55,
// α = 3, σ = 8 dB.
type Table1Params struct {
	Alpha, SigmaDB float64
	DThresh        float64
	RmaxGrid       []float64
	DGrid          []float64
	Seed           uint64
}

// DefaultTable1 returns the paper's exact grid.
func DefaultTable1() Table1Params {
	return Table1Params{
		Alpha:    3,
		SigmaDB:  8,
		DThresh:  55,
		RmaxGrid: []float64{20, 40, 120},
		DGrid:    []float64{20, 55, 120},
		Seed:     1,
	}
}

// EfficiencyTable is a grid of carrier sense efficiencies (fraction of
// optimal) indexed [rmax][d], with the thresholds used per row.
type EfficiencyTable struct {
	Params     Table1Params
	Cells      [][]float64 // Cells[i][j] = efficiency at RmaxGrid[i], DGrid[j]
	Thresholds []float64   // per-R_max threshold distance used
}

// Table1 computes the first §3.2.5 table: CS efficiency with the fixed
// factory threshold D_thresh = 55 across the R_max × D grid. Paper
// values: rows (20, 40, 120) × columns (20, 55, 120) =
// (96 88 96 / 96 87 96 / 89 83 92) percent.
func Table1(p Table1Params, scale Scale) EfficiencyTable {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: p.SigmaDB, NoiseDB: core.DefaultNoiseDB})
	n := scale.mcSamples()
	t := EfficiencyTable{Params: p}
	for i, rmax := range p.RmaxGrid {
		row := make([]float64, len(p.DGrid))
		for j, d := range p.DGrid {
			a := m.EstimateAverages(p.Seed+uint64(i*31+j), n, rmax, d, p.DThresh)
			row[j] = a.Efficiency()
		}
		t.Cells = append(t.Cells, row)
		t.Thresholds = append(t.Thresholds, p.DThresh)
	}
	return t
}

// Table2 computes the second §3.2.5 table: the same grid but with the
// threshold optimized per R_max by the §3.3.3 criterion (the
// ⟨C_conc⟩ = ⟨C_mux⟩ crossing). Paper thresholds: 40, 55, 60; values
// (93 91 99 / 96 87 96 / 89 83 92) percent.
func Table2(p Table1Params, scale Scale) EfficiencyTable {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: p.SigmaDB, NoiseDB: core.DefaultNoiseDB})
	n := scale.mcSamples()
	t := EfficiencyTable{Params: p}
	for i, rmax := range p.RmaxGrid {
		dOpt := m.OptimalThreshold(p.Seed+uint64(1000+i), n/4, rmax)
		row := make([]float64, len(p.DGrid))
		for j, d := range p.DGrid {
			a := m.EstimateAverages(p.Seed+uint64(i*31+j), n, rmax, d, dOpt)
			row[j] = a.Efficiency()
		}
		t.Cells = append(t.Cells, row)
		t.Thresholds = append(t.Thresholds, dOpt)
	}
	return t
}

// Render writes the efficiency table in the paper's format.
func (t EfficiencyTable) Render(w io.Writer, title string) {
	tbl := plot.Table{Title: title, Headers: []string{"Rmax \\ D"}}
	for _, d := range t.Params.DGrid {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("%.0f", d))
	}
	for i, rmax := range t.Params.RmaxGrid {
		label := fmt.Sprintf("%.0f", rmax)
		if len(t.Thresholds) > i && t.Thresholds[i] != t.Params.DThresh {
			label = fmt.Sprintf("%.0f (Dthresh=%.0f)", rmax, t.Thresholds[i])
		}
		row := []string{label}
		for _, v := range t.Cells[i] {
			row = append(row, plot.Percent(v))
		}
		tbl.AddRow(row...)
	}
	tbl.Render(w)
}

// Min returns the smallest efficiency in the table (the paper's
// headline: "average throughput is typically less than 15% below
// optimal" — every cell ≥ ~83%).
func (t EfficiencyTable) Min() float64 {
	min := 1.0
	for _, row := range t.Cells {
		for _, v := range row {
			if v < min {
				min = v
			}
		}
	}
	return min
}

// RobustnessPoint is one (α, σ) sweep cell of the §3.2.5 robustness
// claim ("we omit figures showing alpha varying from 2 to 4 and sigma
// from 4 dB to 12 dB, but again, very little change is observed").
type RobustnessPoint struct {
	Alpha, SigmaDB float64
	MinEfficiency  float64
	MeanEfficiency float64
}

// RobustnessSweep evaluates the fixed-threshold Table 1 grid across
// environments. What the factory fixes is the threshold *power* — the
// paper's D_thresh = 55 at α = 3 is P_thresh ≈ -52 dB (13 dB above
// the -65 dB noise reference). Under a different propagation exponent
// the same power corresponds to a different distance, which is
// precisely why §3.3.4 finds one hardware threshold robust across
// environments; sweeping with a fixed *distance* instead collapses
// the α = 2 cells.
func RobustnessSweep(alphas, sigmas []float64, scale Scale) []RobustnessPoint {
	base := DefaultTable1()
	pThresh := math.Pow(base.DThresh, -base.Alpha)
	var out []RobustnessPoint
	for _, alpha := range alphas {
		for _, sigma := range sigmas {
			p := DefaultTable1()
			p.Alpha = alpha
			p.SigmaDB = sigma
			p.DThresh = math.Pow(pThresh, -1/alpha)
			t := Table1(p, scale)
			sum, cnt := 0.0, 0
			for _, row := range t.Cells {
				for _, v := range row {
					sum += v
					cnt++
				}
			}
			out = append(out, RobustnessPoint{
				Alpha: alpha, SigmaDB: sigma,
				MinEfficiency:  t.Min(),
				MeanEfficiency: sum / float64(cnt),
			})
		}
	}
	return out
}

// RenderRobustness writes the sweep as a table.
func RenderRobustness(w io.Writer, points []RobustnessPoint) {
	tbl := plot.Table{
		Title:   "T3: carrier sense efficiency across environments (fixed Dthresh=55)",
		Headers: []string{"alpha", "sigma(dB)", "min eff", "mean eff"},
	}
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%.1f", p.Alpha),
			fmt.Sprintf("%.0f", p.SigmaDB),
			plot.Percent(p.MinEfficiency),
			plot.Percent(p.MeanEfficiency),
		)
	}
	tbl.Render(w)
}
