package experiments

import (
	"math"
	"strings"
	"testing"

	"carriersense/internal/core"
	"carriersense/internal/testbed"
)

// paperTable1 holds the §3.2.5 fixed-threshold table from the paper.
var paperTable1 = [3][3]float64{
	{0.96, 0.88, 0.96},
	{0.96, 0.87, 0.96},
	{0.89, 0.83, 0.92},
}

func TestTable1MatchesPaper(t *testing.T) {
	got := Table1(DefaultTable1(), ScaleBench)
	for i, row := range got.Cells {
		for j, v := range row {
			if math.Abs(v-paperTable1[i][j]) > 0.04 {
				t.Errorf("cell (%d,%d) = %.3f, paper %.2f", i, j, v, paperTable1[i][j])
			}
		}
	}
	// The headline: every cell within ~15% of optimal.
	if got.Min() < 0.80 {
		t.Errorf("minimum efficiency %.3f, paper claims >= ~0.83", got.Min())
	}
}

func TestTable2ThresholdsMatchPaper(t *testing.T) {
	got := Table2(DefaultTable1(), ScaleBench)
	wantThresh := []float64{40, 55, 60}
	for i, th := range got.Thresholds {
		if math.Abs(th-wantThresh[i])/wantThresh[i] > 0.15 {
			t.Errorf("optimized threshold for Rmax=%v: %v, paper %v",
				got.Params.RmaxGrid[i], th, wantThresh[i])
		}
	}
	// Optimizing the threshold changes little ("very little change is
	// observed"): each cell within a few points of the fixed version.
	fixed := Table1(DefaultTable1(), ScaleBench)
	for i := range got.Cells {
		for j := range got.Cells[i] {
			if math.Abs(got.Cells[i][j]-fixed.Cells[i][j]) > 0.07 {
				t.Errorf("cell (%d,%d): optimized %v vs fixed %v differ too much",
					i, j, got.Cells[i][j], fixed.Cells[i][j])
			}
		}
	}
}

func TestRobustnessSweep(t *testing.T) {
	pts := RobustnessSweep([]float64{2, 4}, []float64{4, 12}, ScaleSmoke)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		// The §3.2.5 robustness claim: nothing collapses anywhere in
		// the (α, σ) envelope.
		if p.MinEfficiency < 0.72 {
			t.Errorf("alpha=%v sigma=%v: min efficiency %v", p.Alpha, p.SigmaDB, p.MinEfficiency)
		}
		if p.MeanEfficiency < p.MinEfficiency {
			t.Errorf("mean below min at alpha=%v", p.Alpha)
		}
	}
}

func TestCurvesQualitativeShape(t *testing.T) {
	res := Curves(DefaultCurves(55), ScaleBench)
	pts := res.Points
	// Normalized: the far-D concurrency value of an Rmax=55 network is
	// below 1 (its links are weaker than Rmax=20's) but multiplexing
	// is half of its own ceiling.
	last := pts[len(pts)-1]
	if last.Conc < last.Mux*1.7 {
		t.Errorf("far concurrency %v should approach 2x multiplexing %v", last.Conc, last.Mux)
	}
	// Crossover sits in the transition region and matches the σ=0
	// optimal threshold.
	cross := res.CrossoverD()
	m := core.New(core.NoShadowParams())
	dOpt := m.OptimalThresholdQuad(55)
	if math.Abs(cross-dOpt) > 15 {
		t.Errorf("crossover %v far from optimal threshold %v", cross, dOpt)
	}
}

func TestShadowedCurvesSmoother(t *testing.T) {
	// Figure 9: with shadowing the CS curve interpolates between the
	// branches instead of switching abruptly; at D = Dthresh it sits
	// strictly between multiplexing and concurrency.
	p := DefaultCurves(55)
	p.SigmaDB = 8
	p.DGrid = []float64{55}
	res := Curves(p, ScaleBench)
	pt := res.Points[0]
	lo := math.Min(pt.Mux, pt.Conc)
	hi := math.Max(pt.Mux, pt.Conc)
	if pt.CS <= lo || pt.CS >= hi {
		t.Errorf("shadowed CS at threshold %v not between branches [%v, %v]", pt.CS, lo, hi)
	}
}

func TestInefficiencyDecompositionSane(t *testing.T) {
	res := InefficiencyDecomposition(DefaultCurves(55), ScaleSmoke)
	if res.Ineff.HiddenTotal < 0 || res.Ineff.HiddenTotal > 0.5 {
		t.Errorf("hidden total = %v", res.Ineff.HiddenTotal)
	}
	if res.Ineff.ExposedTotal < 0 || res.Ineff.ExposedTotal > 0.5 {
		t.Errorf("exposed total = %v", res.Ineff.ExposedTotal)
	}
	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "hidden-terminal") {
		t.Error("render missing content")
	}
}

func TestThresholdSensitivityFlatNearOptimum(t *testing.T) {
	// §3.3.4: efficiency as a function of threshold is flat near the
	// optimum — halving or doubling the threshold costs only a few
	// points.
	p := DefaultCurves(40)
	p.SigmaDB = 8
	p.DGrid = []float64{20, 40, 55, 80, 120}
	pts := ThresholdSensitivity(p, []float64{28, 55, 110}, ScaleBench)
	mid := pts[1].Efficiency
	for _, pt := range pts {
		if mid-pt.Efficiency > 0.10 {
			t.Errorf("threshold %v loses %.3f vs optimum — not robust",
				pt.DThresh, mid-pt.Efficiency)
		}
	}
}

func TestLandscapeAndPreference(t *testing.T) {
	p := DefaultLandscape()
	p.Cells = 30
	land := Landscape(p)
	if land.Single == nil || len(land.Concurrency) != 3 {
		t.Fatal("missing landscape grids")
	}
	var b strings.Builder
	land.Render(&b)
	if !strings.Contains(b.String(), "interferer at D=55") {
		t.Error("landscape render missing panels")
	}
	pref := Preference(p)
	// Figure 3's shares: D=20 mostly multiplexing, D=120 mostly
	// concurrency inside Rmax=100.
	if pref.Shares[0][1]+pref.Shares[0][2] < 0.8 {
		t.Errorf("D=20 multiplexing+starved share = %v", pref.Shares[0][1]+pref.Shares[0][2])
	}
	if pref.Shares[2][0] < 0.6 {
		t.Errorf("D=120 concurrency share = %v", pref.Shares[2][0])
	}
	b.Reset()
	pref.Render(&b)
	if !strings.Contains(b.String(), "shares within") {
		t.Error("preference render missing summary")
	}
}

func TestFigure7RegimesAndOrdering(t *testing.T) {
	p := Figure7Params{
		Alphas:   []float64{3},
		SigmaDB:  8,
		RmaxGrid: []float64{8, 40, 150},
		Seed:     1,
	}
	res := Figure7(p, ScaleBench)
	pts := res.Curves[3]
	if pts[0].Regime != core.RegimeShortRange {
		t.Errorf("Rmax=8: %v", pts[0].Regime)
	}
	if pts[2].Regime != core.RegimeLongRange {
		t.Errorf("Rmax=150: %v", pts[2].Regime)
	}
	// Threshold grows with Rmax over this span.
	if !(pts[0].DOpt < pts[1].DOpt) {
		t.Errorf("threshold not growing: %v", pts)
	}
	var b strings.Builder
	res.RegimeTable(&b)
	if !strings.Contains(b.String(), "short-range") {
		t.Error("regime table missing rows")
	}
	chart := res.Chart()
	b.Reset()
	chart.Render(&b, 60, 16)
	if b.Len() == 0 {
		t.Error("empty chart")
	}
}

func TestSection34Numbers(t *testing.T) {
	res := Section34(ScaleBench)
	if res.Example.PBadSNR < 0.01 || res.Example.PBadSNR > 0.07 {
		t.Errorf("P[bad SNR] = %v, paper ballpark 4%%", res.Example.PBadSNR)
	}
	if math.Abs(res.SNRUncertainty-13.86) > 0.1 {
		t.Errorf("sigma*sqrt(3) = %v", res.SNRUncertainty)
	}
	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "paper") {
		t.Error("render missing annotations")
	}
}

func TestTestbedExperimentShape(t *testing.T) {
	p := DefaultTestbed(ScaleBench)
	short := RunTestbed(p, testbed.ShortRange)
	long := RunTestbed(p, testbed.LongRange)
	// The load-bearing qualitative claims of §4: carrier sense is the
	// best single strategy in both regimes and close to optimal.
	if short.Summary.CSFrac() < 0.75 {
		t.Errorf("short-range CS fraction %v (paper: 0.97)", short.Summary.CSFrac())
	}
	if long.Summary.CSFrac() < 0.70 {
		t.Errorf("long-range CS fraction %v (paper: 0.90)", long.Summary.CSFrac())
	}
	if short.Summary.CSFrac() < long.Summary.CSFrac()-0.10 {
		t.Errorf("short range (%v) should be at least as good as long range (%v)",
			short.Summary.CSFrac(), long.Summary.CSFrac())
	}
	// Short-range absolute throughput well above long-range (stronger
	// links, higher rates): the paper has 1753 vs 1029 pkt/s.
	if short.Summary.Optimal < long.Summary.Optimal {
		t.Errorf("short-range optimal %v below long-range %v",
			short.Summary.Optimal, long.Summary.Optimal)
	}
	// Charts render.
	var b strings.Builder
	cc := short.CompetitiveChart()
	cc.Render(&b, 60, 14)
	rc := long.RSSIChart()
	rc.Render(&b, 60, 14)
	short.RenderSummary(&b)
	long.RenderSummary(&b)
	if !strings.Contains(b.String(), "paper §4.1") || !strings.Contains(b.String(), "paper §4.2") {
		t.Error("summaries missing paper annotations")
	}
}

func TestExposedTerminalStudyShape(t *testing.T) {
	p := DefaultTestbed(ScaleBench)
	res := ExposedTerminals(p)
	// §5: adaptation is the big win; exposed-terminal exploitation on
	// top of adaptation is small.
	if res.Study.AdaptationGain < 1.5 {
		t.Errorf("adaptation gain %v, paper: >2x", res.Study.AdaptationGain)
	}
	if res.Study.CombinedGain > 0.30 {
		t.Errorf("combined exposed gain %v, paper: ~3%%", res.Study.CombinedGain)
	}
	if res.Study.CombinedGain > res.Study.AdaptationGain-1 {
		t.Errorf("exposed gain (%v) should be far below adaptation gain (%vx)",
			res.Study.CombinedGain, res.Study.AdaptationGain)
	}
	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "bitrate adaptation") {
		t.Error("render missing")
	}
}

func TestFigure14FitRecovery(t *testing.T) {
	res, err := Figure14(DefaultFigure14())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ML.Alpha-res.TrueAlpha) > 0.4 {
		t.Errorf("fit alpha %v vs true %v", res.ML.Alpha, res.TrueAlpha)
	}
	if math.Abs(res.ML.SigmaDB-res.TrueSigma) > 1.5 {
		t.Errorf("fit sigma %v vs true %v", res.ML.SigmaDB, res.TrueSigma)
	}
	if res.Censored == 0 {
		t.Error("no censored pairs; fit test vacuous")
	}
	// Censoring bias: the naive fit understates alpha.
	if res.Naive.Alpha >= res.ML.Alpha {
		t.Errorf("naive alpha %v not below ML %v", res.Naive.Alpha, res.ML.Alpha)
	}
	var b strings.Builder
	chart := res.Chart()
	chart.Render(&b, 60, 14)
	res.Render(&b)
	if !strings.Contains(b.String(), "censored ML") {
		t.Error("render missing")
	}
}

func TestReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("report is slow")
	}
	var b strings.Builder
	Report(&b, ScaleSmoke)
	out := b.String()
	for _, want := range []string{"T1:", "F7:", "F14:", "S34:", "S5a:", "short-range", "long-range"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestScaleSamples(t *testing.T) {
	if !(ScaleSmoke.mcSamples() < ScaleBench.mcSamples() &&
		ScaleBench.mcSamples() < ScaleFull.mcSamples()) {
		t.Error("scale sample counts not increasing")
	}
}

func TestExtension11g(t *testing.T) {
	p := DefaultTestbed(ScaleSmoke)
	p.Experiment.MaxCombos = 5
	res := Extension11g(p)
	if len(res.A.Result.Combos) == 0 || len(res.G.Result.Combos) == 0 {
		t.Fatal("empty deep-long-range experiments")
	}
	// The 11g set extends the adaptation floor: CS delivery ratio (at
	// the oracle rate) must not get worse, and typically improves.
	if res.G.MeanCSDelivery() < res.A.MeanCSDelivery()-0.05 {
		t.Errorf("11g delivery %v worse than 11a %v",
			res.G.MeanCSDelivery(), res.A.MeanCSDelivery())
	}
	// Deep long range is a starved regime: absolute throughput far
	// below the short-range experiment's.
	short := RunTestbed(p, testbed.ShortRange)
	if res.A.Summary.Optimal > short.Summary.Optimal/2 {
		t.Errorf("deep-long-range optimal %v not far below short-range %v",
			res.A.Summary.Optimal, short.Summary.Optimal)
	}
	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "11g rates") {
		t.Error("render missing")
	}
}

func TestRenderMultiPair(t *testing.T) {
	var b strings.Builder
	RenderMultiPair(&b, ScaleSmoke)
	out := b.String()
	if !strings.Contains(out, "adaptive bitrate") || !strings.Contains(out, "fixed low bitrate") {
		t.Errorf("multi-pair render missing sections:\n%s", out)
	}
	if !strings.Contains(out, "n=2") || !strings.Contains(out, "n=3") {
		t.Error("multi-pair render missing rows")
	}
}

func TestBarrierAnalysis(t *testing.T) {
	r := Barrier()
	// The paper's §3.4 numbers: each path at or under ~30 dB.
	if r.DiffractionDB < 20 || r.DiffractionDB > 40 {
		t.Errorf("diffraction loss %v, paper says ~30 dB", r.DiffractionDB)
	}
	if r.BestPathDB > 10 {
		t.Errorf("best path %v dB — penetration/reflection should win", r.BestPathDB)
	}
	// The punchline: the sense signal survives with margin.
	if r.SenseMarginDB < 10 {
		t.Errorf("sense margin %v dB — the barrier argument should be decisive", r.SenseMarginDB)
	}
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "diffraction") {
		t.Error("render missing")
	}
}
