package experiments

import (
	"fmt"
	"io"
	"math"

	"carriersense/internal/core"
	"carriersense/internal/numeric"
	"carriersense/internal/plot"
	"carriersense/internal/propagation"
)

// Figure7Params configures the optimal-threshold-versus-R_max curves.
type Figure7Params struct {
	Alphas   []float64 // paper plots several α (2-4) on one axis
	SigmaDB  float64   // paper: 8 dB ("shadowing has a significant qualitative impact at long range")
	RmaxGrid []float64
	Seed     uint64
}

// DefaultFigure7 matches the paper's Figure 7.
func DefaultFigure7() Figure7Params {
	return Figure7Params{
		Alphas:   []float64{2, 2.5, 3, 3.5, 4},
		SigmaDB:  8,
		RmaxGrid: numeric.LogSpace(5, 200, 16),
		Seed:     1,
	}
}

// Figure7Result holds one threshold curve per α.
type Figure7Result struct {
	Params Figure7Params
	Curves map[float64][]core.ThresholdPoint // keyed by α
}

// Figure7 computes the optimal threshold (expressed as the α = 3
// equivalent distance) versus network radius for each α.
func Figure7(p Figure7Params, scale Scale) Figure7Result {
	res := Figure7Result{Params: p, Curves: make(map[float64][]core.ThresholdPoint)}
	n := scale.mcSamples() / 4
	for _, alpha := range p.Alphas {
		m := core.New(core.Params{Alpha: alpha, SigmaDB: p.SigmaDB, NoiseDB: core.DefaultNoiseDB})
		res.Curves[alpha] = m.ThresholdCurve(p.Seed, n, p.RmaxGrid)
	}
	return res
}

// Chart renders Figure 7: threshold curves per α plus the regime
// boundary lines R_thresh = R_max and R_thresh = 2·R_max.
func (r Figure7Result) Chart() plot.Chart {
	c := plot.Chart{
		Title:  fmt.Sprintf("F7: optimal threshold (alpha=3 equivalent distance) vs Rmax, sigma=%.0fdB", r.Params.SigmaDB),
		XLabel: "network radius Rmax",
		YLabel: "optimal Dthresh (alpha=3 equivalent)",
	}
	markers := []rune{'2', 'h', '3', 't', '4'}
	for i, alpha := range r.Params.Alphas {
		pts := r.Curves[alpha]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for j, pt := range pts {
			xs[j] = pt.Rmax
			ys[j] = pt.DOptAlpha3
		}
		c.Series = append(c.Series, plot.Series{
			Name:   fmt.Sprintf("alpha=%.1f", alpha),
			X:      xs,
			Y:      ys,
			Marker: markers[i%len(markers)],
		})
	}
	// Boundary lines: D = R_max and D = 2·R_max.
	xs := r.Params.RmaxGrid
	eq := make([]float64, len(xs))
	twice := make([]float64, len(xs))
	for i, x := range xs {
		eq[i] = x
		twice[i] = 2 * x
	}
	c.Series = append(c.Series,
		plot.Series{Name: "Rthresh=Rmax (long-range boundary)", X: xs, Y: eq, Marker: '-'},
		plot.Series{Name: "Rthresh=2Rmax (short-range boundary)", X: xs, Y: twice, Marker: '='},
	)
	return c
}

// RegimeTable summarizes the regime classification along the α = 3
// curve, with edge SNR — the paper's "roughly 18 < Rmax < 60,
// equivalent to 12 dB < SNR < 27 dB at the edge" claim.
func (r Figure7Result) RegimeTable(w io.Writer) {
	pts, ok := r.Curves[3]
	if !ok {
		for _, alpha := range r.Params.Alphas {
			pts = r.Curves[alpha]
			break
		}
	}
	tbl := plot.Table{
		Title:   "F7: regime classification (alpha=3 curve)",
		Headers: []string{"Rmax", "Dopt", "edge SNR (dB)", "regime", "short-range asymptote"},
	}
	for _, pt := range pts {
		tbl.AddRow(
			fmt.Sprintf("%.0f", pt.Rmax),
			fmt.Sprintf("%.0f", pt.DOpt),
			fmt.Sprintf("%.1f", pt.EdgeSNRdB),
			pt.Regime.String(),
			fmt.Sprintf("%.0f", pt.Asymptote),
		)
	}
	tbl.Render(w)
}

// Section34Result packages the worked shadowing example (§3.4) and the
// lumped-uncertainty arithmetic around it.
type Section34Result struct {
	Example        core.ShadowingExample
	SNRUncertainty float64 // σ√3 (paper: ≈14 dB at σ=8)
	DistanceFactor float64 // its path loss equivalent (paper: ≈3× at α=3)
}

// Section34 evaluates the §3.4 example: R_max = 20, D_thresh = 40,
// interferer at D = 20 (paper: ≈20% spurious concurrency, ≈4% of
// configurations with sub-0 dB SNR).
func Section34(scale Scale) Section34Result {
	m := core.New(core.Params{Alpha: 3, SigmaDB: 8, NoiseDB: core.DefaultNoiseDB})
	n := scale.mcSamples()
	unc := m.SNREstimateUncertaintyDB()
	return Section34Result{
		Example:        m.EstimateShadowingExample(2, n, 20, 20, 40),
		SNRUncertainty: unc,
		DistanceFactor: m.LumpedDistanceFactor(unc),
	}
}

// Render writes the §3.4 numbers.
func (r Section34Result) Render(w io.Writer) {
	e := r.Example
	fmt.Fprintf(w, "S34: shadowing worked example (Rmax=%.0f, D=%.0f, Dthresh=%.0f, sigma=8dB)\n",
		e.Rmax, e.D, e.DThresh)
	fmt.Fprintf(w, "  P[spurious concurrency]         = %.1f%% (paper: ~20%%)\n", 100*e.PSpuriousConcurrency)
	fmt.Fprintf(w, "  P[receiver closer to interferer] = %.1f%% (paper: ~20%%)\n", 100*e.PSmothered)
	fmt.Fprintf(w, "  product (closed form)            = %.1f%% (paper: ~4%%)\n", 100*e.PBadSNR)
	fmt.Fprintf(w, "  P[bad SNR] by direct Monte Carlo = %.1f%% +/- %.1f%%\n",
		100*e.PBadSNRMC.Mean, 100*e.PBadSNRMC.StdErr)
	fmt.Fprintf(w, "  SNR-estimate uncertainty sigma*sqrt(3) = %.1f dB (paper: ~14 dB)\n", r.SNRUncertainty)
	fmt.Fprintf(w, "  equivalent distance factor at alpha=3  = %.1fx (paper: ~3x)\n", r.DistanceFactor)
}

// BarrierResult quantifies Figure 8's argument: you cannot hide one
// sender from another with a barrier, because at least one of three
// propagation paths survives — penetration through the obstruction,
// reflection off a far wall, or diffraction around the edge. §3.4 puts
// all three losses at or under ~30 dB, far too little to defeat a
// carrier sense threshold given typical link budgets.
type BarrierResult struct {
	// PenetrationDB is the through-barrier loss (interior wall,
	// COST231: "typically less than 10 dB").
	PenetrationDB float64
	// ReflectionDB is the far-wall reflection loss ("typically less
	// than 10 dB").
	ReflectionDB float64
	// DiffractionDB is the knife-edge loss around the barrier for the
	// paper's geometry (5 m to the barrier at 2.4 GHz: "around 30 dB").
	DiffractionDB float64
	// BestPathDB is the weakest extra loss a sense signal suffers.
	BestPathDB float64
	// SenseMarginDB is the margin left over for a typical WLAN sensing
	// budget: two senders 20 m apart at 15 dBm with a -92 dBm
	// preamble-sense floor.
	SenseMarginDB float64
}

// Barrier evaluates the Figure 8 scenario with the paper's numbers.
func Barrier() BarrierResult {
	const (
		penetration = 8.0 // interior wall, < 10 dB
		reflection  = 9.0 // far-wall bounce, < 10 dB
		lambda      = 0.125
		barrierDist = 5.0 // meters to the barrier from each sender
		barrierRise = 2.0 // meters the barrier pokes above the path
	)
	v := propagation.FresnelV(barrierRise, barrierDist, barrierDist, lambda)
	diff := propagation.KnifeEdgeDiffractionLossDB(v)
	best := math.Min(penetration, math.Min(reflection, diff))
	// Sensing budget: 15 dBm TX, ~40 dB loss at 1 m (2.4 GHz), α = 3
	// over 20 m, versus a -92 dBm preamble-sense floor.
	pathLoss := 40 + 10*3*math.Log10(20)
	rssiClear := 15 - pathLoss
	margin := (rssiClear - best) - (-92)
	return BarrierResult{
		PenetrationDB: penetration,
		ReflectionDB:  reflection,
		DiffractionDB: diff,
		BestPathDB:    best,
		SenseMarginDB: margin,
	}
}

// Render writes the barrier analysis.
func (r BarrierResult) Render(w io.Writer) {
	fmt.Fprintln(w, "F8: can a barrier hide a sender from carrier sense? (section 3.4)")
	fmt.Fprintf(w, "  through-wall penetration loss: %.0f dB (paper: <10 dB)\n", r.PenetrationDB)
	fmt.Fprintf(w, "  far-wall reflection loss:      %.0f dB (paper: <10 dB)\n", r.ReflectionDB)
	fmt.Fprintf(w, "  knife-edge diffraction loss:   %.0f dB (paper: ~30 dB)\n", r.DiffractionDB)
	fmt.Fprintf(w, "  weakest surviving path costs %.0f dB; the sense signal still\n", r.BestPathDB)
	fmt.Fprintf(w, "  clears the preamble floor by %.0f dB at 20 m separation.\n", r.SenseMarginDB)
}
