package experiments

import (
	"fmt"

	"carriersense/internal/core"
	"carriersense/internal/engine"
	"carriersense/internal/montecarlo"
	"carriersense/internal/plot"
	"carriersense/internal/sampling"
)

// SamplingBenchParams configure the sampler shoot-out scenario: the
// same throughput estimation points driven to the same relative-error
// target under every registered sampler, reporting samples-to-target.
type SamplingBenchParams struct {
	Alpha   float64
	SigmaDB float64
	Rmax    float64
	DThresh float64
	DValues []float64 // estimation points (inter-sender distances)
	Target  float64   // relative standard error target per point
	// MaxSamples caps each driven point; 0 derives a generous cap from
	// the scale so convergence, not the cap, decides.
	MaxSamples int
	Seed       uint64
}

// DefaultSamplingBench compares the samplers across the paper's
// Figure 9 environment (σ = 8 dB — both placement and shadowing
// variance in play) at near, threshold, and far distances.
func DefaultSamplingBench() SamplingBenchParams {
	return SamplingBenchParams{
		Alpha:   3,
		SigmaDB: 8,
		Rmax:    55,
		DThresh: 55,
		DValues: []float64{20, 55, 120},
		Target:  0.005,
		Seed:    1,
	}
}

// SamplerComparison is the outcome for one strategy.
type SamplerComparison struct {
	Sampler   string
	Spent     int     // samples to reach the target across all points (pilots included)
	Pilot     int     // of Spent, samples that went to β/auto pilots
	Converged int     // points that reached the target
	Points    int     // points driven
	Savings   float64 // fraction of plain's samples avoided (0 for plain)
}

// SamplingBench drives the averages kernel at each D point to the
// target under each sampler, through its own local convergence driver
// (the estimation work is the benchmark itself, so the run bypasses
// any -workers/-cache executor and any engine-level -relerr driver).
func SamplingBench(p SamplingBenchParams, scale Scale) []SamplerComparison {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: p.SigmaDB, NoiseDB: core.DefaultNoiseDB})
	cap := p.MaxSamples
	if cap <= 0 {
		cap = scale.mcSamples() * 64
	}
	prevExec := montecarlo.CurrentExecutor()
	prevSampler := montecarlo.DefaultSampler()
	defer func() {
		montecarlo.SetExecutor(prevExec)
		montecarlo.ForceDefaultSampler(prevSampler)
	}()

	var out []SamplerComparison
	var plainSpent int
	for _, name := range []string{
		sampling.Plain, sampling.Antithetic, sampling.Stratified,
		sampling.Sobol, sampling.Halton, sampling.CV, sampling.Auto,
	} {
		driver, err := sampling.NewDriver(nil, sampling.DriverOptions{RelErr: p.Target, MaxSamples: cap})
		if err != nil {
			panic(err) // options are static; a failure is a programming error
		}
		// cv and auto need their coordinator-side decorators, exactly as
		// the engine chains them: cv equips requests with pilot β, auto
		// resolves the winner before anything reaches the driver.
		var exec montecarlo.Executor = driver
		var cvdec *sampling.ControlVariates
		var auto *sampling.AutoScheduler
		if name == sampling.CV || name == sampling.Auto {
			cvdec = sampling.NewControlVariates(exec)
			exec = cvdec
		}
		if name == sampling.Auto {
			auto = sampling.NewAuto(exec, nil, cvdec, sampling.AutoOptions{Target: p.Target})
			exec = auto
		}
		montecarlo.SetExecutor(exec)
		if name == sampling.Auto {
			montecarlo.ForceDefaultSampler(sampling.Auto)
		} else if err := montecarlo.SetDefaultSampler(name); err != nil {
			panic(err)
		}
		for i, d := range p.DValues {
			// Same per-point seed schedule as core.Curves, so the
			// comparison covers the exact estimations the scenarios run.
			m.EstimateAverages(p.Seed+uint64(i)*7919, cap, p.Rmax, d, p.DThresh)
		}
		s := driver.Summarize()
		c := SamplerComparison{Sampler: name, Spent: s.Spent, Converged: s.Converged, Points: s.Points}
		if cvdec != nil {
			c.Pilot += cvdec.PilotSpent()
		}
		if auto != nil {
			c.Pilot += auto.PilotSpent()
		}
		c.Spent += c.Pilot // pilots are real evaluations; the ledger is honest
		if name == sampling.Plain {
			plainSpent = c.Spent
		} else if plainSpent > 0 {
			c.Savings = 1 - float64(c.Spent)/float64(plainSpent)
		}
		out = append(out, c)
	}
	return out
}

func init() {
	engine.Register(engine.Scenario{
		Name:        "sampling",
		Description: "Variance-reduction shoot-out: samples needed per sampler to hit a RelErr target",
		Figures:     "throughput infrastructure (ROADMAP: smarter sampling)",
		NewParams:   func() any { p := DefaultSamplingBench(); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*SamplingBenchParams)
			res := SamplingBench(p, scale(rc))
			tbl := plot.Table{
				Title: fmt.Sprintf("samples to RelErr <= %g on core/averages (Rmax=%.0f, sigma=%.0fdB, D=%v)",
					p.Target, p.Rmax, p.SigmaDB, p.DValues),
				Headers: []string{"sampler", "samples", "pilot", "per point", "converged", "vs plain"},
			}
			for _, c := range res {
				vs := "—"
				if c.Sampler != sampling.Plain {
					vs = fmt.Sprintf("%+.0f%%", -100*c.Savings)
				}
				perPoint := 0
				if c.Points > 0 {
					perPoint = c.Spent / c.Points
				}
				tbl.AddRow(c.Sampler, fmt.Sprintf("%d", c.Spent), fmt.Sprintf("%d", c.Pilot),
					fmt.Sprintf("%d", perPoint),
					fmt.Sprintf("%d/%d", c.Converged, c.Points), vs)
				rc.Metric(fmt.Sprintf("spent_%s", c.Sampler), float64(c.Spent))
				rc.Metric(fmt.Sprintf("converged_%s", c.Sampler), float64(c.Converged))
				if c.Sampler != sampling.Plain {
					rc.Metric(fmt.Sprintf("savings_%s", c.Sampler), c.Savings)
				}
			}
			rc.Table("sampling", tbl)
			return nil
		},
	})
}
