package experiments

import (
	"fmt"

	"carriersense/internal/capacity"
	"carriersense/internal/core"
	"carriersense/internal/engine"
	"carriersense/internal/plot"
	"carriersense/internal/sim"
	"carriersense/internal/testbed"
)

// This file registers every experiment as an engine.Scenario, so the
// whole catalog is reachable from the single `cs` CLI (`cs list`,
// `cs run <name>`). One scenario per former cmd/cs* concern; the
// registry is the only coupling between the CLI and the experiments.

func scale(rc *engine.RunContext) Scale {
	s, err := ParseScale(rc.Scale)
	if err != nil {
		// The engine validates the scale name before running.
		panic(err)
	}
	return s
}

func init() {
	engine.Register(engine.Scenario{
		Name:        "curves",
		Description: "Average throughput vs inter-sender distance D for each MAC policy",
		Figures:     "Fig. 4, 5 (sigma=0), Fig. 9 (sigma=8dB)",
		NewParams:   func() any { p := DefaultCurves(55); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*CurvesParams)
			res := Curves(p, scale(rc))
			rc.Chart("curves", res.Chart(true), 90, 24)
			cross := res.CrossoverD()
			rc.Printf("concurrency/multiplexing crossover (optimal threshold) at D ~= %.0f\n", cross)
			rc.Metric("crossover_d", cross)
			rc.Metric("norm", res.Norm)
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "inefficiency",
		Description: "Hidden/exposed-terminal inefficiency decomposition at one threshold",
		Figures:     "Fig. 6",
		NewParams:   func() any { p := DefaultCurves(55); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*CurvesParams)
			res := InefficiencyDecomposition(p, scale(rc))
			res.Render(rc.Out())
			rc.Metric("hidden_total", res.Ineff.HiddenTotal)
			rc.Metric("exposed_total", res.Ineff.ExposedTotal)
			rc.Metric("triangle_total", res.Ineff.TriangleTotal)
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "threshold",
		Description: "Optimal carrier sense threshold vs network radius per path loss exponent",
		Figures:     "Fig. 7",
		NewParams:   func() any { p := DefaultFigure7(); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*Figure7Params)
			res := Figure7(p, scale(rc))
			rc.Chart("threshold", res.Chart(), 90, 26)
			rc.Printf("\n")
			res.RegimeTable(rc.Out())
			for _, alpha := range p.Alphas {
				pts := res.Curves[alpha]
				if len(pts) > 0 {
					rc.Metric(fmt.Sprintf("dopt_last_alpha%g", alpha), pts[len(pts)-1].DOpt)
				}
			}
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "landscape",
		Description: "Capacity landscapes around a sender with and without an interferer",
		Figures:     "Fig. 2",
		NewParams:   func() any { p := DefaultLandscape(); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*LandscapeParams)
			Landscape(p).Render(rc.Out())
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "preference",
		Description: "Receiver preference maps: concurrency vs multiplexing vs starved regions",
		Figures:     "Fig. 3",
		NewParams:   func() any { p := DefaultLandscape(); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*LandscapeParams)
			res := Preference(p)
			res.Render(rc.Out())
			for i, d := range p.DValues {
				rc.Metric(fmt.Sprintf("conc_share_d%g", d), res.Shares[i][0])
				rc.Metric(fmt.Sprintf("mux_share_d%g", d), res.Shares[i][1])
			}
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "tables",
		Description: "Carrier sense efficiency tables: fixed vs per-Rmax optimized thresholds",
		Figures:     "Tables of §3.2.5 (T1, T2)",
		NewParams:   func() any { p := DefaultTable1(); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*Table1Params)
			sc := scale(rc)
			t1 := Table1(p, sc)
			rc.Table("t1", efficiencyTable(t1,
				"T1: CS % of optimal, fixed Dthresh (paper: 96 88 96 / 96 87 96 / 89 83 92)"))
			rc.Printf("\n")
			t2 := Table2(p, sc)
			rc.Table("t2", efficiencyTable(t2,
				"T2: CS % of optimal, per-Rmax optimized thresholds (paper: Dthresh 40/55/60)"))
			rc.Printf("\nminimum cell: %.0f%% (paper claim: typically <15%% below optimal)\n", 100*t1.Min())
			rc.Metric("t1_min_eff", t1.Min())
			rc.Metric("t2_min_eff", t2.Min())
			for i, th := range t2.Thresholds {
				rc.Metric(fmt.Sprintf("t2_dopt_rmax%g", p.RmaxGrid[i]), th)
			}
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "robustness",
		Description: "Fixed-threshold efficiency swept across alpha and shadowing environments",
		Figures:     "§3.2.5 robustness claim (T3)",
		NewParams: func() any {
			return &RobustnessParams{Alphas: []float64{2, 2.5, 3, 3.5, 4}, Sigmas: []float64{4, 8, 12}}
		},
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*RobustnessParams)
			pts := RobustnessSweep(p.Alphas, p.Sigmas, scale(rc))
			tbl := plot.Table{
				Title:   "T3: carrier sense efficiency across environments (fixed power threshold)",
				Headers: []string{"alpha", "sigma(dB)", "min eff", "mean eff"},
			}
			worst := 1.0
			for _, pt := range pts {
				tbl.AddRow(
					fmt.Sprintf("%.1f", pt.Alpha),
					fmt.Sprintf("%.0f", pt.SigmaDB),
					plot.Percent(pt.MinEfficiency),
					plot.Percent(pt.MeanEfficiency),
				)
				if pt.MinEfficiency < worst {
					worst = pt.MinEfficiency
				}
			}
			rc.Table("t3", tbl)
			rc.Metric("min_eff", worst)
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "multi",
		Description: "n > 2 competing pairs: CS vs best-k concurrency under adaptive and fixed rates",
		Figures:     "extension of §3.2.1 / footnote 18",
		NewParams: func() any {
			return &MultiScenarioParams{MaxN: 6, Area: 80, Rmax: 40, DThresh: 55}
		},
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*MultiScenarioParams)
			samples := p.Samples
			if samples <= 0 {
				samples = scale(rc).mcSamples() / 4
			}
			runMultiTable(rc, "multi-adaptive", fmt.Sprintf(
				"n-pair extension, ADAPTIVE bitrate (Shannon): area=%.0f, Rmax=%.0f, Dthresh=%.0f",
				p.Area, p.Rmax, p.DThresh), p, samples, nil)
			rc.Printf("\n")
			runMultiTable(rc, "multi-fixed",
				"n-pair extension, FIXED LOW bitrate (Vutukuru's regime, footnote 18)",
				p, samples, capacity.FixedRate{Rate: 1.25, MinSNR: 2.5})
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "testbed",
		Description: "Packet-level testbed replay: competitive comparison per two-pair combo",
		Figures:     "Fig. 10-13, §4.1/§4.2 summaries",
		NewParams: func() any {
			return &TestbedScenarioParams{Range: "both", Seconds: 0, Combos: 0, Seed: 42}
		},
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*TestbedScenarioParams)
			classes, err := p.classes()
			if err != nil {
				return err
			}
			tp := testbedParamsAt(scale(rc), p.Seconds, p.Combos, p.Seed)
			for _, class := range classes {
				res := RunTestbed(tp, class)
				rc.Chart(fmt.Sprintf("%s-competitive", class), res.CompetitiveChart(), 90, 24)
				rc.Printf("\n")
				rc.Chart(fmt.Sprintf("%s-rssi", class), res.RSSIChart(), 90, 24)
				rc.Printf("\n")
				res.RenderSummary(rc.Out())
				rc.Printf("\n")
				rc.CSV(fmt.Sprintf("%s-combos", class), []string{"class", "rssi_db", "mux", "conc", "cs", "optimal"}, comboRows(res))
				rc.Metric(fmt.Sprintf("%s_cs_frac", class), res.Summary.CSFrac())
				rc.Metric(fmt.Sprintf("%s_optimal_pkts", class), res.Summary.Optimal)
			}
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "exposed",
		Description: "Exposed terminals vs bitrate adaptation on the short-range set",
		Figures:     "§5",
		NewParams: func() any {
			return &TestbedRunParams{Seconds: 0, Combos: 0, Seed: 42}
		},
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*TestbedRunParams)
			res := ExposedTerminals(testbedParamsAt(scale(rc), p.Seconds, p.Combos, p.Seed))
			res.Render(rc.Out())
			rc.Metric("adaptation_gain", res.Study.AdaptationGain)
			rc.Metric("exposed_gain_base", res.Study.ExposedGainBase)
			rc.Metric("combined_gain", res.Study.CombinedGain)
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "extension-11g",
		Description: "Deep long range with 11g-style low rates vs the 11a driver set",
		Figures:     "extension of §4.2",
		NewParams: func() any {
			return &TestbedRunParams{Seconds: 0, Combos: 0, Seed: 42}
		},
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*TestbedRunParams)
			res := Extension11g(testbedParamsAt(scale(rc), p.Seconds, p.Combos, p.Seed))
			res.Render(rc.Out())
			rc.Metric("delivery_11a", res.A.MeanCSDelivery())
			rc.Metric("delivery_11g", res.G.MeanCSDelivery())
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "fit",
		Description: "Censored maximum-likelihood propagation fit to the RSSI census",
		Figures:     "Fig. 14",
		NewParams:   func() any { p := DefaultFigure14(); return &p },
		Run: func(rc *engine.RunContext) error {
			p := *rc.Params.(*Figure14Params)
			res, err := Figure14(p)
			if err != nil {
				return err
			}
			rc.Chart("fit", res.Chart(), 90, 24)
			rc.Printf("\n")
			res.Render(rc.Out())
			rc.Metric("ml_alpha", res.ML.Alpha)
			rc.Metric("ml_sigma_db", res.ML.SigmaDB)
			rc.Metric("censored_pairs", float64(res.Censored))
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "section34",
		Description: "Shadowing worked example: spurious concurrency and bad-SNR probabilities",
		Figures:     "§3.4",
		NewParams:   func() any { return &NoParams{} },
		Run: func(rc *engine.RunContext) error {
			res := Section34(scale(rc))
			res.Render(rc.Out())
			rc.Metric("p_bad_snr", res.Example.PBadSNR)
			rc.Metric("snr_uncertainty_db", res.SNRUncertainty)
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "barrier",
		Description: "Can a barrier hide a sender from carrier sense? Penetration/reflection/diffraction budget",
		Figures:     "Fig. 8, §3.4",
		NewParams:   func() any { return &NoParams{} },
		Run: func(rc *engine.RunContext) error {
			res := Barrier()
			res.Render(rc.Out())
			rc.Metric("best_path_db", res.BestPathDB)
			rc.Metric("sense_margin_db", res.SenseMarginDB)
			return nil
		},
	})

	engine.Register(engine.Scenario{
		Name:        "report",
		Description: "Consolidated reproduction report: every figure and table in one document",
		Figures:     "all",
		NewParams:   func() any { return &NoParams{} },
		Run: func(rc *engine.RunContext) error {
			Report(rc.Out(), scale(rc))
			return nil
		},
	})
}

// NoParams is the parameter struct of scenarios whose configuration is
// entirely the engine-level scale.
type NoParams struct{}

// RobustnessParams configures the T3 environment sweep.
type RobustnessParams struct {
	Alphas []float64
	Sigmas []float64
}

// MultiScenarioParams configures the n > 2 sender extension.
type MultiScenarioParams struct {
	MaxN    int     // largest number of competing pairs
	Samples int     // Monte Carlo configurations per n; 0 derives from scale
	Area    float64 // sender scattering radius
	Rmax    float64 // receiver placement radius
	DThresh float64 // carrier sense threshold distance
}

func runMultiTable(rc *engine.RunContext, artifact, title string, p MultiScenarioParams, samples int, capModel capacity.Model) {
	tbl := plot.Table{
		Title:   title,
		Headers: []string{"n", "TDMA", "conc", "CS", "best-k", "k*", "CS/best-k", "exposed headroom", "avg active"},
	}
	for n := 2; n <= p.MaxN; n++ {
		mp := core.DefaultMultiParams(n)
		mp.AreaRadius = p.Area
		mp.Rmax = p.Rmax
		mp.DThresh = p.DThresh
		mp.Env.Capacity = capModel
		a := core.NewMulti(mp).EstimateMulti(uint64(n), samples)
		tbl.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", a.TDMA.Mean),
			fmt.Sprintf("%.3f", a.Conc.Mean),
			fmt.Sprintf("%.3f", a.CS.Mean),
			fmt.Sprintf("%.3f", a.BestK.Mean),
			fmt.Sprintf("%.1f", a.MeanBestLevel.Mean),
			plot.Percent(a.Efficiency()),
			fmt.Sprintf("+%.0f%%", 100*a.ExposedHeadroom()),
			fmt.Sprintf("%.1f", a.AvgActive.Mean),
		)
		rc.Metric(fmt.Sprintf("%s_eff_n%d", artifact, n), a.Efficiency())
	}
	rc.Table(artifact, tbl)
}

// TestbedRunParams configures the testbed-backed scenarios that run a
// fixed range class (exposed, extension-11g).
type TestbedRunParams struct {
	Seconds float64 // per-run send duration; 0 derives from scale
	Combos  int     // two-pair combinations per class; 0 derives from scale
	Seed    uint64  // building and experiment seed
}

// TestbedScenarioParams configures the `testbed` scenario.
type TestbedScenarioParams struct {
	Range   string  // short, long, deep, or both
	Seconds float64 // per-run send duration; 0 derives from scale
	Combos  int     // two-pair combinations per class; 0 derives from scale
	Seed    uint64  // building and experiment seed
}

func testbedParamsAt(sc Scale, seconds float64, combos int, seed uint64) TestbedParams {
	tp := DefaultTestbed(sc)
	tp.Seed = seed
	if seconds > 0 {
		tp.Experiment.Duration = sim.FromSeconds(seconds)
	}
	if combos > 0 {
		tp.Experiment.MaxCombos = combos
	}
	return tp
}

func (p TestbedScenarioParams) classes() ([]testbed.RangeClass, error) {
	switch p.Range {
	case "short":
		return []testbed.RangeClass{testbed.ShortRange}, nil
	case "long":
		return []testbed.RangeClass{testbed.LongRange}, nil
	case "deep":
		return []testbed.RangeClass{testbed.DeepLongRange}, nil
	case "both":
		return []testbed.RangeClass{testbed.ShortRange, testbed.LongRange}, nil
	default:
		return nil, fmt.Errorf("unknown range %q (want short, long, deep, or both)", p.Range)
	}
}

func comboRows(res TestbedResult) [][]string {
	rows := make([][]string, 0, len(res.Result.Combos))
	for _, c := range res.Result.Combos {
		rows = append(rows, []string{
			fmt.Sprint(res.Class),
			fmt.Sprintf("%.1f", c.SenderRSSIdB),
			fmt.Sprintf("%.0f", c.Mux),
			fmt.Sprintf("%.0f", c.Conc),
			fmt.Sprintf("%.0f", c.CS),
			fmt.Sprintf("%.0f", c.Optimal()),
		})
	}
	return rows
}

// efficiencyTable converts an EfficiencyTable into a plot.Table (the
// former cmd/cstables rendering, routed through the engine so the CSV
// artifact comes for free).
func efficiencyTable(t EfficiencyTable, title string) plot.Table {
	tbl := plot.Table{Title: title, Headers: []string{"Rmax \\ D"}}
	for _, d := range t.Params.DGrid {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("%.0f", d))
	}
	for i, rmax := range t.Params.RmaxGrid {
		label := fmt.Sprintf("%.0f", rmax)
		if len(t.Thresholds) > i && t.Thresholds[i] != t.Params.DThresh {
			label = fmt.Sprintf("%.0f (Dthresh=%.0f)", rmax, t.Thresholds[i])
		}
		row := []string{label}
		for _, v := range t.Cells[i] {
			row = append(row, plot.Percent(v))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}
