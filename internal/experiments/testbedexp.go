package experiments

import (
	"fmt"
	"io"
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/plot"
	"carriersense/internal/sim"
	"carriersense/internal/testbed"
)

// TestbedParams configures the §4 experiment reproduction.
type TestbedParams struct {
	Layout     testbed.LayoutParams
	Experiment testbed.ExperimentParams
	Seed       uint64
}

// DefaultTestbed returns the synthetic building with the paper's
// methodology at the given scale.
func DefaultTestbed(scale Scale) TestbedParams {
	p := TestbedParams{
		Layout:     testbed.DefaultLayout(),
		Experiment: testbed.DefaultExperiment(),
		Seed:       42,
	}
	switch scale {
	case ScaleSmoke:
		p.Experiment.Duration = 200 * sim.Millisecond
		p.Experiment.MaxCombos = 6
	case ScaleBench:
		p.Experiment.Duration = 500 * sim.Millisecond
		p.Experiment.MaxCombos = 20
	default:
		// The paper's full protocol: 15-second runs.
		p.Experiment.Duration = 15 * sim.Second
		p.Experiment.MaxCombos = 40
	}
	return p
}

// TestbedResult is one range class's reproduction of Figures 10-13.
type TestbedResult struct {
	Class   testbed.RangeClass
	Result  testbed.ExperimentResult
	Summary testbed.Summary
}

// RunTestbed runs the §4 protocol for one range class on a fresh
// building realization.
func RunTestbed(p TestbedParams, class testbed.RangeClass) TestbedResult {
	tb := testbed.Generate(p.Layout, p.Seed)
	res := testbed.RunExperiment(tb, p.Experiment, class)
	return TestbedResult{Class: class, Result: res, Summary: res.Summarize()}
}

// CompetitiveChart renders the Figure 10/12 competitive comparison:
// multiplexing and concurrency totals against carrier sense throughput
// on the x-axis, with the CS identity line.
func (r TestbedResult) CompetitiveChart() plot.Chart {
	var xs, mux, conc, ident []float64
	for _, c := range r.Result.Combos {
		xs = append(xs, c.CS)
		mux = append(mux, c.Mux)
		conc = append(conc, c.Conc)
		ident = append(ident, c.CS)
	}
	return plot.Chart{
		Title:  fmt.Sprintf("F%s: %s competitive comparison vs CS", figNum(r.Class, true), r.Class),
		XLabel: "CS throughput (pkt/s)",
		YLabel: "throughput (pkt/s)",
		Series: []plot.Series{
			{Name: "multiplexing", X: xs, Y: mux, Marker: 'm'},
			{Name: "concurrency", X: xs, Y: conc, Marker: 'c'},
			{Name: "CS (identity)", X: xs, Y: ident, Marker: '.'},
		},
	}
}

// RSSIChart renders the Figure 11/13 view: throughput against
// sender-sender RSSI (x reversed, below-detection points at 0).
func (r TestbedResult) RSSIChart() plot.Chart {
	var xs, mux, conc, cs []float64
	for _, c := range r.Result.Combos {
		x := c.SenderRSSIdB
		if math.IsInf(x, -1) {
			x = 0 // the paper plots undetectable pairs in a 0 column
		}
		xs = append(xs, x)
		mux = append(mux, c.Mux)
		conc = append(conc, c.Conc)
		cs = append(cs, c.CS)
	}
	return plot.Chart{
		Title:  fmt.Sprintf("F%s: %s throughput vs sender-sender RSSI", figNum(r.Class, false), r.Class),
		XLabel: "sender-sender RSSI (dB above noise, decreasing)",
		YLabel: "throughput (pkt/s)",
		FlipX:  true,
		Series: []plot.Series{
			{Name: "multiplexing", X: xs, Y: mux, Marker: 'm'},
			{Name: "concurrency", X: xs, Y: conc, Marker: 'c'},
			{Name: "CS", X: xs, Y: cs, Marker: 's'},
		},
	}
}

func figNum(class testbed.RangeClass, competitive bool) string {
	switch {
	case class == testbed.ShortRange && competitive:
		return "10"
	case class == testbed.ShortRange:
		return "11"
	case class == testbed.LongRange && competitive:
		return "12"
	case class == testbed.LongRange:
		return "13"
	default:
		return "X" // extension experiments beyond the paper's figures
	}
}

// RenderSummary writes the §4.1/§4.2-style summary table with the
// paper's reference values alongside.
func (r TestbedResult) RenderSummary(w io.Writer) {
	fmt.Fprintln(w, r.Summary.String())
	switch r.Class {
	case testbed.ShortRange:
		fmt.Fprintln(w, "  (paper §4.1: optimal 1753 pkt/s; CS 97%, mux 58%, conc 89%)")
	case testbed.LongRange:
		fmt.Fprintln(w, "  (paper §4.2: optimal 1029 pkt/s; CS 90%, mux 73%, conc 69%)")
	default:
		fmt.Fprintln(w, "  (extension: beyond the regime the paper could measure)")
	}
}

// ExposedResult packages the §5 exposed-terminal arithmetic.
type ExposedResult struct {
	Study testbed.ExposedTerminalStudy
}

// ExposedTerminals runs the §5 comparison on the short-range set:
// bitrate adaptation versus exposed-terminal exploitation.
func ExposedTerminals(p TestbedParams) ExposedResult {
	tb := testbed.Generate(p.Layout, p.Seed)
	res := testbed.RunExperiment(tb, p.Experiment, testbed.ShortRange)
	return ExposedResult{Study: testbed.StudyExposedTerminals(res)}
}

// Render writes the §5 numbers with the paper's reference values.
func (r ExposedResult) Render(w io.Writer) {
	s := r.Study
	fmt.Fprintf(w, "S5a: exposed terminals vs bitrate adaptation (short-range set)\n")
	fmt.Fprintf(w, "  bitrate adaptation gain over base rate: %.2fx (paper: >2x)\n", s.AdaptationGain)
	fmt.Fprintf(w, "  perfect exposed-terminal exploitation at base rate: +%.1f%% (paper: ~10%%)\n",
		100*s.ExposedGainBase)
	fmt.Fprintf(w, "  exposed exploitation on top of adaptation: +%.1f%% (paper: ~3%%)\n",
		100*s.CombinedGain)
}

// Extension11gResult compares the deep-long-range experiment under the
// paper's 11a driver rate set against an 11g-style set with the robust
// DSSS low rates — §4.2's suggestion ("Using 11g mode instead should
// reduce such difficulties in experimentally exploring deeper
// long-range scenarios"), made runnable.
type Extension11gResult struct {
	A *TestbedResult // 11a driver rates (6-24 Mb/s)
	G *TestbedResult // 11g-style rates (1, 2, 5.5, 11 + 6-24 Mb/s)
}

// Extension11g runs the deep-long-range comparison.
func Extension11g(p TestbedParams) Extension11gResult {
	pa := p
	pa.Experiment.Rates = capacity.TablePaperDriver
	a := RunTestbed(pa, testbed.DeepLongRange)
	pg := p
	pg.Experiment.Rates = append(append(capacity.RateTable{}, capacity.Table80211b...),
		capacity.TablePaperDriver...)
	g := RunTestbed(pg, testbed.DeepLongRange)
	return Extension11gResult{A: &a, G: &g}
}

// MeanCSDelivery averages the per-combo CS delivery ratios.
func (r TestbedResult) MeanCSDelivery() float64 {
	if len(r.Result.Combos) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range r.Result.Combos {
		total += c.CSDelivery
	}
	return total / float64(len(r.Result.Combos))
}

// Render writes the comparison.
func (r Extension11gResult) Render(w io.Writer) {
	fmt.Fprintln(w, "X11g: deep long range (below the 6 Mb/s cliff), 11a vs 11g rate sets")
	fmt.Fprintf(w, "  11a rates: optimal %.0f pkt/s, CS %.0f%% of opt, CS delivery ratio %.2f\n",
		r.A.Summary.Optimal, 100*r.A.Summary.CSFrac(), r.A.MeanCSDelivery())
	fmt.Fprintf(w, "  11g rates: optimal %.0f pkt/s, CS %.0f%% of opt, CS delivery ratio %.2f\n",
		r.G.Summary.Optimal, 100*r.G.Summary.CSFrac(), r.G.MeanCSDelivery())
	fmt.Fprintln(w, "  Reading it: the DSSS floor extends the adaptation range, but the")
	fmt.Fprintln(w, "  goodput oracle mostly keeps the lossy 6 Mb/s rate anyway: a fast")
	fmt.Fprintln(w, "  rate delivering 15 percent beats 1 Mb/s delivering 90 in pkt/s,")
	fmt.Fprintln(w, "  because DSSS frames are ~6x longer on the air. Low rates buy")
	fmt.Fprintln(w, "  per-transmission reliability and measurability (what §4.2 wanted")
	fmt.Fprintln(w, "  11g for), not throughput — consistent with the paper's Shannon")
	fmt.Fprintln(w, "  framing: adaptation chases capacity, and at these SNRs capacity")
	fmt.Fprintln(w, "  is simply scarce. There is 'always some adaptation floor, at")
	fmt.Fprintln(w, "  which point the network becomes unreliable' (§4.2).")
}
