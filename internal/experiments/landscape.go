package experiments

import (
	"fmt"
	"io"

	"carriersense/internal/core"
	"carriersense/internal/plot"
)

// LandscapeParams configures the Figure 2/3 rasters.
type LandscapeParams struct {
	Alpha   float64
	DValues []float64 // interferer distances (paper: 20, 55, 120)
	Extent  float64   // half-width of the raster
	Cells   int       // raster resolution per side
}

// DefaultLandscape matches Figure 2/3: α = 3, σ = 0, D ∈ {20, 55, 120}.
func DefaultLandscape() LandscapeParams {
	return LandscapeParams{
		Alpha:   3,
		DValues: []float64{20, 55, 120},
		Extent:  130,
		Cells:   56,
	}
}

// LandscapeResult holds the Figure 2 grids: the no-competition and
// multiplexing references plus one concurrency landscape per D.
type LandscapeResult struct {
	Params      LandscapeParams
	Single      *core.Grid
	Mux         *core.Grid
	Concurrency []*core.Grid // one per DValues
}

// Landscape rasterizes Figure 2's capacity landscapes.
func Landscape(p LandscapeParams) LandscapeResult {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: 0, NoiseDB: core.DefaultNoiseDB})
	res := LandscapeResult{Params: p}
	res.Single = m.Landscape(core.PolicySingle, 0, p.Extent, p.Cells)
	res.Mux = m.Landscape(core.PolicyMultiplexing, 0, p.Extent, p.Cells)
	for _, d := range p.DValues {
		res.Concurrency = append(res.Concurrency, m.Landscape(core.PolicyConcurrent, d, p.Extent, p.Cells))
	}
	return res
}

// Render draws all landscapes as heatmaps, marking the sender (S) and
// interferer (I).
func (r LandscapeResult) Render(w io.Writer) {
	draw := func(title string, g *core.Grid, d float64) {
		h := plot.Heatmap{
			Title:  title,
			Values: g.Values,
			Overlay: func(row, col int) rune {
				cx := r.Params.Cells / 2
				if row == cx && col == cx {
					return 'S'
				}
				if d > 0 {
					icol := int(((-d)/r.Params.Extent + 1) / 2 * float64(r.Params.Cells))
					if row == cx && col == icol {
						return 'I'
					}
				}
				return 0
			},
		}
		h.Render(w)
		fmt.Fprintln(w)
	}
	draw("F2: no competition", r.Single, 0)
	draw("F2: multiplexing", r.Mux, 0)
	for i, d := range r.Params.DValues {
		draw(fmt.Sprintf("F2: concurrency, interferer at D=%.0f", d), r.Concurrency[i], d)
	}
}

// PreferenceResult holds the Figure 3 maps and their area shares.
type PreferenceResult struct {
	Params LandscapeParams
	Maps   []*core.Grid
	// Shares[i] are the (concurrency, multiplexing, starved) area
	// fractions within R_max = 100 of the sender for DValues[i].
	Shares [][3]float64
}

// Preference rasterizes Figure 3's receiver preference regions.
func Preference(p LandscapeParams) PreferenceResult {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: 0, NoiseDB: core.DefaultNoiseDB})
	res := PreferenceResult{Params: p}
	for _, d := range p.DValues {
		g := m.PreferenceMap(d, p.Extent, p.Cells)
		conc, mux, starved := g.PreferenceShares(100)
		res.Maps = append(res.Maps, g)
		res.Shares = append(res.Shares, [3]float64{conc, mux, starved})
	}
	return res
}

// Render draws the preference maps: '#' prefers concurrency, '.'
// prefers multiplexing, ' ' starved (white in the paper's figure).
func (r PreferenceResult) Render(w io.Writer) {
	for i, d := range r.Params.DValues {
		h := plot.Heatmap{
			Title:  fmt.Sprintf("F3: receiver preferences, interferer at D=%.0f ('#'=concurrency, '.'=multiplexing, ' '=starved)", d),
			Values: r.Maps[i].Values,
			// Preference codes: 0 concurrency, 1 multiplexing, 2 starved.
			Ramp: []rune{'#', '.', ' '},
		}
		h.Render(w)
		s := r.Shares[i]
		fmt.Fprintf(w, "shares within Rmax=100: concurrency %.0f%%, multiplexing %.0f%%, starved %.0f%%\n\n",
			100*s[0], 100*s[1], 100*s[2])
	}
}
