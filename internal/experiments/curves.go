package experiments

import (
	"fmt"
	"io"

	"carriersense/internal/core"
	"carriersense/internal/numeric"
	"carriersense/internal/plot"
)

// CurvesParams configures the Figure 4/5/9 throughput-versus-D curves.
type CurvesParams struct {
	Alpha   float64
	SigmaDB float64 // 0 for Figure 4/5/6, 8 for Figure 9
	Rmax    float64
	DThresh float64 // carrier sense threshold for the CS curve
	DGrid   []float64
	Seed    uint64
}

// DefaultCurves returns Figure 4's setup for one R_max panel.
func DefaultCurves(rmax float64) CurvesParams {
	return CurvesParams{
		Alpha:   3,
		SigmaDB: 0,
		Rmax:    rmax,
		DThresh: 55,
		DGrid:   numeric.LinSpace(2, 200, 34),
		Seed:    1,
	}
}

// CurvesResult carries the curve data plus normalization.
type CurvesResult struct {
	Params CurvesParams
	Points []core.CurvePoint
	Norm   float64 // paper's normalizer ⟨C_single⟩(R_max=20)
}

// Curves computes one panel of Figure 4 (σ = 0) or Figure 9 (σ = 8 dB):
// multiplexing, concurrency, carrier sense and optimal average
// throughput versus inter-sender distance D, normalized as a fraction
// of the R_max = 20, D = ∞ throughput.
func Curves(p CurvesParams, scale Scale) CurvesResult {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: p.SigmaDB, NoiseDB: core.DefaultNoiseDB})
	n := scale.mcSamples()
	norm := m.NormalizationConstant(p.Seed, n)
	// The paper normalizes to the no-competition throughput, which is
	// 2 × multiplexing; a single pair at D → ∞ under concurrency gets
	// the full C_single.
	return CurvesResult{
		Params: p,
		Points: m.Curves(p.Seed, n, p.Rmax, p.DThresh, p.DGrid, norm),
		Norm:   norm,
	}
}

// Chart renders the curves as a plot.Chart.
func (r CurvesResult) Chart(withCS bool) plot.Chart {
	n := len(r.Points)
	xs := make([]float64, n)
	mux := make([]float64, n)
	conc := make([]float64, n)
	cs := make([]float64, n)
	max := make([]float64, n)
	for i, pt := range r.Points {
		xs[i] = pt.D
		mux[i] = pt.Mux
		conc[i] = pt.Conc
		cs[i] = pt.CS
		max[i] = pt.Max
	}
	c := plot.Chart{
		Title: fmt.Sprintf("<C> vs D, Rmax=%.0f, alpha=%.1f, sigma=%.0fdB (normalized to Rmax=20, D=inf)",
			r.Params.Rmax, r.Params.Alpha, r.Params.SigmaDB),
		XLabel: "inter-sender distance D",
		YLabel: "normalized throughput",
		Series: []plot.Series{
			{Name: "multiplexing", X: xs, Y: mux, Marker: 'm'},
			{Name: "concurrency", X: xs, Y: conc, Marker: 'c'},
			{Name: "optimal", X: xs, Y: max, Marker: 'o'},
		},
	}
	if withCS {
		c.Series = append(c.Series, plot.Series{Name: "carrier sense", X: xs, Y: cs, Marker: 's'})
		c.VLines = []float64{r.Params.DThresh}
	}
	return c
}

// CrossoverD returns the D at which the concurrency curve first
// exceeds multiplexing — the visible crossover whose location §3.3.3
// proves is the optimal threshold.
func (r CurvesResult) CrossoverD() float64 {
	for _, pt := range r.Points {
		if pt.Conc >= pt.Mux {
			return pt.D
		}
	}
	return r.Points[len(r.Points)-1].D
}

// InefficiencyResult is the Figure 6 decomposition.
type InefficiencyResult struct {
	Params CurvesParams
	Ineff  core.Inefficiency
}

// InefficiencyDecomposition computes Figure 6's shaded areas for one
// R_max and threshold: hidden-terminal inefficiency (right of the
// threshold), exposed-terminal inefficiency (left), and the
// "triangle" attributable purely to threshold misplacement.
func InefficiencyDecomposition(p CurvesParams, scale Scale) InefficiencyResult {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: p.SigmaDB, NoiseDB: core.DefaultNoiseDB})
	n := scale.mcSamples()
	return InefficiencyResult{
		Params: p,
		Ineff:  m.EstimateInefficiency(p.Seed, n, p.Rmax, p.DThresh, p.DGrid),
	}
}

// Render writes the decomposition summary.
func (r InefficiencyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "F6: inefficiency decomposition, Rmax=%.0f, Dthresh=%.0f, sigma=%.0fdB\n",
		r.Params.Rmax, r.Params.DThresh, r.Params.SigmaDB)
	fmt.Fprintf(w, "  hidden-terminal inefficiency (D > threshold): %.1f%% of optimal area\n",
		100*r.Ineff.HiddenTotal)
	fmt.Fprintf(w, "  exposed-terminal inefficiency (D < threshold): %.1f%% of optimal area\n",
		100*r.Ineff.ExposedTotal)
	fmt.Fprintf(w, "  threshold-misplacement triangle: %.1f%% of optimal area\n",
		100*r.Ineff.TriangleTotal)
}

// ThresholdSensitivity sweeps the carrier sense threshold around its
// optimum and reports total efficiency across the D grid — the
// quantitative form of §3.3.4's robustness claim (an ablation bench
// target).
type ThresholdSensitivityPoint struct {
	DThresh    float64
	Efficiency float64 // mean over the D grid of CS/optimal
}

// ThresholdSensitivity evaluates CS efficiency as a function of
// threshold for one R_max.
func ThresholdSensitivity(p CurvesParams, thresholds []float64, scale Scale) []ThresholdSensitivityPoint {
	m := core.New(core.Params{Alpha: p.Alpha, SigmaDB: p.SigmaDB, NoiseDB: core.DefaultNoiseDB})
	n := scale.mcSamples() / 4
	out := make([]ThresholdSensitivityPoint, 0, len(thresholds))
	for _, th := range thresholds {
		var cs, max float64
		for j, d := range p.DGrid {
			a := m.EstimateAverages(p.Seed+uint64(j)*7919, n, p.Rmax, d, th)
			cs += a.CS.Mean
			max += a.Max.Mean
		}
		out = append(out, ThresholdSensitivityPoint{DThresh: th, Efficiency: cs / max})
	}
	return out
}
