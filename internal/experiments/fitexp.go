package experiments

import (
	"fmt"
	"io"

	"carriersense/internal/fit"
	"carriersense/internal/plot"
	"carriersense/internal/testbed"
)

// Figure14Params configures the propagation-fit reproduction.
type Figure14Params struct {
	Layout testbed.LayoutParams
	Seed   uint64
	// DetectionSNRdB is the SNR below which a pair is invisible to the
	// RSSI census (the paper's 1 Mb/s broadcast probes).
	DetectionSNRdB float64
}

// DefaultFigure14 matches the paper's measurement setup: the same
// building as §4 but probed with sensitive low-rate packets.
func DefaultFigure14() Figure14Params {
	return Figure14Params{
		Layout:         testbed.DefaultLayout(),
		Seed:           42,
		DetectionSNRdB: 3,
	}
}

// Figure14Result carries the scatter data and both fits.
type Figure14Result struct {
	Params   Figure14Params
	Samples  []fit.Sample
	Censored int
	// ML is the censored maximum-likelihood fit (the paper's method).
	ML fit.Model
	// Naive is the uncensored least-squares fit, for comparison — it
	// understates α and σ because weak links are invisible.
	Naive fit.Model
	// TrueAlpha and TrueSigma are the generation parameters the fit
	// should recover (unknowable on the real testbed; a luxury of the
	// synthetic one).
	TrueAlpha, TrueSigma float64
}

// Figure14 generates the building, measures all detectable pairs, and
// fits the path loss / shadowing model with censoring.
func Figure14(p Figure14Params) (Figure14Result, error) {
	tb := testbed.Generate(p.Layout, p.Seed)
	res := Figure14Result{
		Params:    p,
		TrueAlpha: p.Layout.Alpha,
		TrueSigma: p.Layout.SigmaDB,
	}
	thresholdDBm := p.Layout.NoiseFloorDBm + p.DetectionSNRdB
	var censored []fit.CensoredPair
	for i := 0; i < p.Layout.Nodes; i++ {
		for j := i + 1; j < p.Layout.Nodes; j++ {
			d := tb.DistanceM(i, j)
			rssi := tb.RSSIdBm(tb.Nodes[i].ID, tb.Nodes[j].ID)
			if rssi >= thresholdDBm {
				res.Samples = append(res.Samples, fit.Sample{
					DistanceM: d,
					SNRdB:     tb.SNRdB(tb.Nodes[i].ID, tb.Nodes[j].ID),
				})
			} else {
				censored = append(censored, fit.CensoredPair{DistanceM: d})
			}
		}
	}
	res.Censored = len(censored)
	ml, err := fit.Fit(res.Samples, censored, p.DetectionSNRdB, 1)
	if err != nil {
		return res, fmt.Errorf("figure 14 fit: %w", err)
	}
	res.ML = ml
	res.Naive = fit.NaiveFit(res.Samples, 1)
	return res, nil
}

// Chart renders the Figure 14 scatter with the fitted mean and ±1σ
// bounds.
func (r Figure14Result) Chart() plot.Chart {
	var xs, ys []float64
	for _, s := range r.Samples {
		xs = append(xs, s.DistanceM)
		ys = append(ys, s.SNRdB)
	}
	// Fit curves sampled across the distance range.
	var fx, fm, fhi, flo []float64
	maxD := 1.0
	for _, s := range r.Samples {
		if s.DistanceM > maxD {
			maxD = s.DistanceM
		}
	}
	for d := 2.0; d <= maxD; d += maxD / 48 {
		fx = append(fx, d)
		mu := r.ML.Mean(d)
		fm = append(fm, mu)
		fhi = append(fhi, mu+r.ML.SigmaDB)
		flo = append(flo, mu-r.ML.SigmaDB)
	}
	return plot.Chart{
		Title: fmt.Sprintf("F14: measured SNR vs distance with censored ML fit (alpha=%.2f, sigma=%.1fdB; generated with %.2f, %.1f)",
			r.ML.Alpha, r.ML.SigmaDB, r.TrueAlpha, r.TrueSigma),
		XLabel: "distance (m)",
		YLabel: "SNR (dB)",
		Series: []plot.Series{
			{Name: "pairs", X: xs, Y: ys, Marker: '.'},
			{Name: "fit mean", X: fx, Y: fm, Marker: '*'},
			{Name: "+1 sigma", X: fx, Y: fhi, Marker: '+'},
			{Name: "-1 sigma", X: fx, Y: flo, Marker: '-'},
		},
	}
}

// Render writes the fit summary with the paper's numbers for
// reference.
func (r Figure14Result) Render(w io.Writer) {
	fmt.Fprintf(w, "F14: propagation fit over %d detectable pairs (%d censored)\n",
		len(r.Samples), r.Censored)
	fmt.Fprintf(w, "  censored ML: alpha=%.2f sigma=%.1fdB ref-SNR=%.1fdB (generated: alpha=%.2f sigma=%.1fdB)\n",
		r.ML.Alpha, r.ML.SigmaDB, r.ML.RefSNRdB, r.TrueAlpha, r.TrueSigma)
	fmt.Fprintf(w, "  naive OLS:   alpha=%.2f sigma=%.1fdB (censoring bias visible)\n",
		r.Naive.Alpha, r.Naive.SigmaDB)
	fmt.Fprintf(w, "  (paper's testbed at 2.4GHz: alpha=3.6, sigma=10.4dB)\n")
}
