package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30*Microsecond, func() { order = append(order, 3) })
	s.At(10*Microsecond, func() { order = append(order, 1) })
	s.At(20*Microsecond, func() { order = append(order, 2) })
	s.Run(Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Microsecond, func() { order = append(order, i) })
	}
	s.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", order)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.After(42*Microsecond, func() { at = s.Now() })
	s.Run(Second)
	if at != 42*Microsecond {
		t.Errorf("fired at %v", at)
	}
	if s.Now() != Second {
		t.Errorf("clock = %v, want advanced to until", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.After(10*Microsecond, func() {
		times = append(times, s.Now())
		s.After(5*Microsecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run(Second)
	if len(times) != 2 || times[0] != 10*Microsecond || times[1] != 15*Microsecond {
		t.Errorf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.After(10*Microsecond, func() { fired = true })
	if !e.Scheduled() {
		t.Error("Scheduled() false before Cancel")
	}
	e.Cancel()
	if e.Scheduled() {
		t.Error("Scheduled() true after Cancel")
	}
	s.Run(Second)
	if fired {
		t.Error("canceled event fired")
	}
	e.Cancel() // idempotent, including after drain
}

func TestCancelZeroEvent(t *testing.T) {
	var e Event
	e.Cancel() // must not panic
	if e.Scheduled() {
		t.Error("zero event reports scheduled")
	}
}

// TestCancelAfterFireDoesNotPoisonReusedSlot is the regression test for
// the slot-reuse hazard: once an event has fired, its slot may be
// recycled for a new event, and a Cancel through the old handle must
// not cancel (or otherwise disturb) the new occupant.
func TestCancelAfterFireDoesNotPoisonReusedSlot(t *testing.T) {
	s := New()
	var stale Event
	stale = s.After(10*Microsecond, func() {})
	s.Run(20 * Microsecond) // stale has fired; its slot is free

	fired := false
	fresh := s.After(10*Microsecond, func() { fired = true })
	if fresh.id != stale.id {
		t.Fatalf("expected slot reuse (stale id %d, fresh id %d)", stale.id, fresh.id)
	}
	if fresh.gen == stale.gen {
		t.Fatal("recycled slot did not advance its generation")
	}
	stale.Cancel() // must be a no-op on the recycled slot
	if !fresh.Scheduled() {
		t.Fatal("stale Cancel removed the event occupying the recycled slot")
	}
	if stale.Scheduled() {
		t.Error("stale handle reports scheduled")
	}
	if stale.Time() != 0 {
		t.Errorf("stale handle Time() = %v, want 0", stale.Time())
	}
	s.Run(Second)
	if !fired {
		t.Error("event in recycled slot never fired")
	}
}

// TestHeapAgainstReference drives the 4-ary index heap with a
// randomized schedule/cancel workload and checks the fire sequence
// against a straightforward reference model (sorted by (time, seq),
// canceled events skipped).
func TestHeapAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		s := New()
		type ref struct {
			at  Time
			seq int
		}
		var want []ref
		var got []int
		var events []Event
		var refs []ref
		n := 3 + rng.IntN(200)
		for i := 0; i < n; i++ {
			at := Time(rng.Int64N(1000)) * Microsecond
			seq := i
			e := s.At(at, func() { got = append(got, seq) })
			events = append(events, e)
			refs = append(refs, ref{at: at, seq: seq})
		}
		// Cancel a random subset before running.
		canceled := map[int]bool{}
		for i := range events {
			if rng.Float64() < 0.3 {
				events[i].Cancel()
				canceled[i] = true
			}
		}
		for i, r := range refs {
			if !canceled[i] {
				want = append(want, r)
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		s.RunAll()
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i].seq {
				t.Fatalf("trial %d: fire order %v, want %v", trial, got, want)
			}
		}
	}
}

// TestEventLoopAllocs guards the simulator's per-event allocation
// budget: with slots recycled through the freelist and a pre-built
// callback, a warm event loop must not allocate per event. This is the
// tenfold-alloc-reduction pin of the hot-path overhaul — regressing it
// (a boxed queue entry, a per-schedule closure) fails here before it
// shows up in the benches.
func TestEventLoopAllocs(t *testing.T) {
	s := New()
	const eventsPerRun = 10_000
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < eventsPerRun {
			s.After(Microsecond, tick)
		}
	}
	run := func() {
		count = 0
		s.After(Microsecond, tick)
		s.RunAll()
	}
	run() // warm the slab
	allocs := testing.AllocsPerRun(5, run)
	if perEvent := allocs / eventsPerRun; perEvent > 0.001 {
		t.Errorf("event loop allocates %.4f objects/event (%.0f per %d events), want ~0",
			perEvent, allocs, eventsPerRun)
	}
}

// TestAt1PassesArgument covers the allocation-free callback form.
func TestAt1PassesArgument(t *testing.T) {
	s := New()
	var got []int
	fn := func(a any) { got = append(got, a.(int)) }
	s.At1(10*Microsecond, fn, 1)
	s.After1(20*Microsecond, fn, 2)
	s.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got = %v", got)
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		s.At(d*Microsecond, func() { fired = append(fired, d) })
	}
	s.Run(25 * Microsecond)
	if len(fired) != 2 {
		t.Errorf("fired %v, want first two", fired)
	}
	// Events exactly at until still run.
	s.Run(30 * Microsecond)
	if len(fired) != 3 {
		t.Errorf("fired %v after second run", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Microsecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(Second)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestRunAll(t *testing.T) {
	s := New()
	count := 0
	s.After(10*Microsecond, func() {
		count++
		s.After(10*Microsecond, func() { count++ })
	})
	end := s.RunAll()
	if count != 2 {
		t.Errorf("count = %d", count)
	}
	if end != 20*Microsecond {
		t.Errorf("end = %v", end)
	}
	if s.EventsFired() != 2 {
		t.Errorf("events fired = %d", s.EventsFired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(10*Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		s.At(5*Microsecond, func() {})
	})
	s.Run(Second)
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v", got)
	}
	if got := FromMicros(9).Micros(); got != 9 {
		t.Errorf("micros round trip = %v", got)
	}
	if (3 * Microsecond).Duration().Microseconds() != 3 {
		t.Error("Duration conversion")
	}
	f := func(raw int64) bool {
		us := raw % 1_000_000_000
		if us < 0 {
			us = -us
		}
		return FromMicros(float64(us)).Micros() == float64(us)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventTimeAccessor(t *testing.T) {
	s := New()
	e := s.At(77*Microsecond, func() {})
	if e.Time() != 77*Microsecond {
		t.Errorf("Time() = %v", e.Time())
	}
}
