package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30*Microsecond, func() { order = append(order, 3) })
	s.At(10*Microsecond, func() { order = append(order, 1) })
	s.At(20*Microsecond, func() { order = append(order, 2) })
	s.Run(Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Microsecond, func() { order = append(order, i) })
	}
	s.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", order)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.After(42*Microsecond, func() { at = s.Now() })
	s.Run(Second)
	if at != 42*Microsecond {
		t.Errorf("fired at %v", at)
	}
	if s.Now() != Second {
		t.Errorf("clock = %v, want advanced to until", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.After(10*Microsecond, func() {
		times = append(times, s.Now())
		s.After(5*Microsecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run(Second)
	if len(times) != 2 || times[0] != 10*Microsecond || times[1] != 15*Microsecond {
		t.Errorf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.After(10*Microsecond, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Error("Canceled() false after Cancel")
	}
	s.Run(Second)
	if fired {
		t.Error("canceled event fired")
	}
	e.Cancel() // idempotent, including after drain
}

func TestCancelNil(t *testing.T) {
	var e *Event
	e.Cancel() // must not panic
	if e.Canceled() {
		t.Error("nil event reports canceled")
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		s.At(d*Microsecond, func() { fired = append(fired, d) })
	}
	s.Run(25 * Microsecond)
	if len(fired) != 2 {
		t.Errorf("fired %v, want first two", fired)
	}
	// Events exactly at until still run.
	s.Run(30 * Microsecond)
	if len(fired) != 3 {
		t.Errorf("fired %v after second run", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Microsecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(Second)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestRunAll(t *testing.T) {
	s := New()
	count := 0
	s.After(10*Microsecond, func() {
		count++
		s.After(10*Microsecond, func() { count++ })
	})
	end := s.RunAll()
	if count != 2 {
		t.Errorf("count = %d", count)
	}
	if end != 20*Microsecond {
		t.Errorf("end = %v", end)
	}
	if s.EventsFired() != 2 {
		t.Errorf("events fired = %d", s.EventsFired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(10*Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		s.At(5*Microsecond, func() {})
	})
	s.Run(Second)
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v", got)
	}
	if got := FromMicros(9).Micros(); got != 9 {
		t.Errorf("micros round trip = %v", got)
	}
	if (3 * Microsecond).Duration().Microseconds() != 3 {
		t.Error("Duration conversion")
	}
	f := func(raw int64) bool {
		us := raw % 1_000_000_000
		if us < 0 {
			us = -us
		}
		return FromMicros(float64(us)).Micros() == float64(us)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventTimeAccessor(t *testing.T) {
	s := New()
	e := s.At(77*Microsecond, func() {})
	if e.Time() != 77*Microsecond {
		t.Errorf("Time() = %v", e.Time())
	}
}
