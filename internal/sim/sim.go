// Package sim is a small discrete-event simulation engine: a clock, a
// priority queue of timed events, and deterministic FIFO ordering for
// simultaneous events. The packet-level 802.11 reproduction of the
// paper's testbed experiments (internal/phy, internal/mac) runs on it.
//
// The engine is built for the packet simulator's event rates (hundreds
// of thousands of events per simulated second across thousands of
// replications): event records live in a slab owned by the Simulator
// and are recycled through a freelist, the priority queue is a 4-ary
// heap of slot indices (no per-event allocation, no interface boxing),
// and the At1/After1 forms let hot callers schedule a pre-built
// callback with an argument instead of allocating a fresh closure per
// event. Recycled slots carry a generation counter, so an Event handle
// kept past its firing (or cancellation) goes harmlessly stale instead
// of poisoning whatever event reuses the slot.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulation timestamp in nanoseconds from simulation start.
// Integer time makes event ordering exact; MAC-layer quantities (slots,
// SIFS, DIFS) are whole microseconds so nanoseconds lose nothing.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as float64 microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Duration converts to a time.Duration (both are nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromSeconds converts float64 seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMicros converts float64 microseconds to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// slot is one event record in the simulator's slab. Exactly one of fn
// and fn1 is set while the slot is live. pos is the slot's position in
// the heap, -1 while free. gen increments every time the slot is
// released, so stale Event handles can be detected.
type slot struct {
	at  Time
	seq uint64
	gen uint32
	pos int32
	fn  func()
	fn1 func(any)
	arg any
}

// Event is a handle to a scheduled callback. Events are one-shot;
// cancel via Cancel before they fire. The zero Event is valid and
// refers to nothing. Handles are values: keeping one past the event's
// firing (or cancellation) is safe — the handle goes stale and every
// method on it becomes a no-op, even after the underlying slot has
// been recycled for a new event.
type Event struct {
	s   *Simulator
	id  int32
	gen uint32
}

// Cancel prevents the event from firing. Safe to call on the zero
// Event and after the event has fired (both are no-ops): a stale
// handle can never cancel the event that now occupies its recycled
// slot, because the slot's generation has moved on.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	sl := &e.s.slots[e.id]
	if sl.gen != e.gen || sl.pos < 0 {
		return
	}
	e.s.removeHeap(sl.pos)
	e.s.release(e.id)
}

// Scheduled reports whether the event is still pending (not fired, not
// canceled).
func (e Event) Scheduled() bool {
	if e.s == nil {
		return false
	}
	sl := &e.s.slots[e.id]
	return sl.gen == e.gen && sl.pos >= 0
}

// Time returns the scheduled fire time, or 0 when the handle is stale
// (the event already fired or was canceled).
func (e Event) Time() Time {
	if !e.Scheduled() {
		return 0
	}
	return e.s.slots[e.id].at
}

// Simulator owns the clock and the event queue. It is not safe for
// concurrent use; a simulation is a single-goroutine affair (parallel
// experiments run independent Simulators).
type Simulator struct {
	now     Time
	seq     uint64
	stopped bool
	fired   uint64
	slots   []slot
	free    []int32
	heap    []int32
}

// New returns a Simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// EventsFired returns the number of events executed so far.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued. Canceled events
// are removed from the queue immediately, so they never count.
func (s *Simulator) Pending() int { return len(s.heap) }

// alloc claims a slot from the freelist (or grows the slab) and fills
// it. The slot keeps the generation its last release assigned.
func (s *Simulator) alloc(t Time, fn func(), fn1 func(any), arg any) int32 {
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		id = int32(len(s.slots) - 1)
	}
	sl := &s.slots[id]
	sl.at = t
	sl.seq = s.seq
	sl.fn = fn
	sl.fn1 = fn1
	sl.arg = arg
	s.seq++
	return id
}

// release invalidates every handle to the slot and returns it to the
// freelist. Callback references are dropped so fired events do not pin
// their closures or arguments.
func (s *Simulator) release(id int32) {
	sl := &s.slots[id]
	sl.gen++
	sl.pos = -1
	sl.fn = nil
	sl.fn1 = nil
	sl.arg = nil
	s.free = append(s.free, id)
}

// less orders slots by (time, seq): FIFO among simultaneous events.
func (s *Simulator) less(a, b int32) bool {
	x, y := &s.slots[a], &s.slots[b]
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// The heap is 4-ary: parent(i) = (i-1)/4, children 4i+1 .. 4i+4.
// Shallower than a binary heap, so pushes (the common operation — most
// events fire in near-schedule order) walk fewer levels, and the four
// children of a node share a cache line of indices.

func (s *Simulator) pushHeap(id int32) {
	i := int32(len(s.heap))
	s.heap = append(s.heap, id)
	s.slots[id].pos = i
	s.siftUp(i)
}

func (s *Simulator) siftUp(i int32) {
	h := s.heap
	id := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(id, h[parent]) {
			break
		}
		h[i] = h[parent]
		s.slots[h[i]].pos = i
		i = parent
	}
	h[i] = id
	s.slots[id].pos = i
}

func (s *Simulator) siftDown(i int32) {
	h := s.heap
	n := int32(len(h))
	id := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(h[c], h[best]) {
				best = c
			}
		}
		if !s.less(h[best], id) {
			break
		}
		h[i] = h[best]
		s.slots[h[i]].pos = i
		i = best
	}
	h[i] = id
	s.slots[id].pos = i
}

// removeHeap deletes the entry at heap position pos.
func (s *Simulator) removeHeap(pos int32) {
	n := int32(len(s.heap)) - 1
	moved := s.heap[n]
	s.heap = s.heap[:n]
	if pos == n {
		return
	}
	s.heap[pos] = moved
	s.slots[moved].pos = pos
	s.siftDown(pos)
	s.siftUp(pos)
}

// popRoot removes the heap minimum (which the caller has already read).
func (s *Simulator) popRoot() {
	n := int32(len(s.heap)) - 1
	moved := s.heap[n]
	s.heap = s.heap[:n]
	if n == 0 {
		return
	}
	s.heap[0] = moved
	s.slots[moved].pos = 0
	s.siftDown(0)
}

// At schedules fn at absolute time t, which must not be in the past.
func (s *Simulator) At(t Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	id := s.alloc(t, fn, nil, nil)
	s.pushHeap(id)
	return Event{s: s, id: id, gen: s.slots[id].gen}
}

// At1 schedules fn(arg) at absolute time t. It is the allocation-free
// form for hot callers: fn is typically built once per component and
// arg carries the per-event state, so scheduling costs no closure
// allocation.
func (s *Simulator) At1(t Time, fn func(any), arg any) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	id := s.alloc(t, nil, fn, arg)
	s.pushHeap(id)
	return Event{s: s, id: id, gen: s.slots[id].gen}
}

// After schedules fn after delay d from now.
func (s *Simulator) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// After1 schedules fn(arg) after delay d from now.
func (s *Simulator) After1(d Time, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At1(s.now+d, fn, arg)
}

// Stop halts Run after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// fireRoot pops and executes the heap minimum. The slot is released
// before the callback runs, so callbacks are free to schedule new
// events into the recycled slot; the generation bump keeps old handles
// stale.
func (s *Simulator) fireRoot() {
	id := s.heap[0]
	sl := &s.slots[id]
	at := sl.at
	fn, fn1, arg := sl.fn, sl.fn1, sl.arg
	s.popRoot()
	s.release(id)
	s.now = at
	s.fired++
	if fn != nil {
		fn()
	} else {
		fn1(arg)
	}
}

// Run executes events in timestamp order until the queue empties, the
// clock passes until, or Stop is called. Events scheduled exactly at
// until still run. It returns the final simulation time.
func (s *Simulator) Run(until Time) Time {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		if s.slots[s.heap[0]].at > until {
			break
		}
		s.fireRoot()
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() Time {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		s.fireRoot()
	}
	return s.now
}
