// Package sim is a small discrete-event simulation engine: a clock, a
// priority queue of timed events, and deterministic FIFO ordering for
// simultaneous events. The packet-level 802.11 reproduction of the
// paper's testbed experiments (internal/phy, internal/mac) runs on it.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a simulation timestamp in nanoseconds from simulation start.
// Integer time makes event ordering exact; MAC-layer quantities (slots,
// SIFS, DIFS) are whole microseconds so nanoseconds lose nothing.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as float64 microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Duration converts to a time.Duration (both are nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromSeconds converts float64 seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMicros converts float64 microseconds to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// Event is a scheduled callback. Events are one-shot; cancel via
// Cancel before they fire.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 once removed
	fn       func()
	canceled bool
}

// Cancel prevents the event from firing. Safe to call after the event
// has fired (it is then a no-op).
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// Time returns the scheduled fire time.
func (e *Event) Time() Time { return e.at }

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the clock and the event queue. It is not safe for
// concurrent use; a simulation is a single-goroutine affair (parallel
// experiments run independent Simulators).
type Simulator struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
}

// New returns a Simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// EventsFired returns the number of events executed so far.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued (including
// canceled ones not yet drained).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn at absolute time t, which must not be in the past.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn after delay d from now.
func (s *Simulator) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// Stop halts Run after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue empties, the
// clock passes until, or Stop is called. Events scheduled exactly at
// until still run. It returns the final simulation time.
func (s *Simulator) Run(until Time) Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.queue)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
	}
	return s.now
}
