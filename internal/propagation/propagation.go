// Package propagation implements the radio propagation models the
// paper builds on (§2 and the appendix): deterministic power-law path
// loss, lognormal shadowing, Rayleigh/Rician multipath fading with
// wideband averaging, plus the supporting physical models the text
// discusses — the two-ray ground reflection model and knife-edge
// diffraction (used in §3.4 to argue that barriers cannot isolate
// senders from each other).
//
// Two unit conventions coexist:
//
//   - The analytical model works with dimensionless linear power
//     ratios relative to P0 (power at unit distance); PathLoss.Gain
//     serves that world.
//   - The packet simulator works in dB/dBm; the *DB methods and
//     LinkBudget serve that world.
package propagation

import (
	"fmt"
	"math"

	"carriersense/internal/rng"
)

// PathLoss is a deterministic power-law path loss model: received
// power is d^-Alpha relative to the unit-distance power. The exponent
// typically ranges from 2 (free space) to 4 (heavily obstructed), with
// the paper's own testbed measuring about 3.5 at 2.4 GHz (footnote 2).
type PathLoss struct {
	Alpha float64 // path loss exponent
}

// Gain returns the linear power gain at distance d relative to unit
// distance: d^-Alpha. Distances below a small epsilon are clamped to
// avoid the (physically meaningless) divergence at the antenna; the
// paper notes the unbounded peak "is of little practical significance".
func (p PathLoss) Gain(d float64) float64 {
	const minDist = 1e-9
	if d < minDist {
		d = minDist
	}
	return math.Pow(d, -p.Alpha)
}

// LossDB returns the path loss in positive dB at distance d relative
// to unit distance: 10·Alpha·log10(d).
func (p PathLoss) LossDB(d float64) float64 {
	const minDist = 1e-9
	if d < minDist {
		d = minDist
	}
	return 10 * p.Alpha * math.Log10(d)
}

// DistanceForLossDB inverts LossDB: the distance at which path loss
// equals the given dB value.
func (p PathLoss) DistanceForLossDB(lossDB float64) float64 {
	return math.Pow(10, lossDB/(10*p.Alpha))
}

// Shadowing is the lognormal shadowing model: a multiplicative linear
// power factor whose dB value is N(0, SigmaDB²). Typical indoor values
// are 4-12 dB (§2); the paper's testbed measured about 10 dB.
type Shadowing struct {
	SigmaDB float64
}

// Sample draws one shadowing factor (linear, median 1).
func (s Shadowing) Sample(src *rng.Source) float64 {
	return src.LognormalDB(s.SigmaDB)
}

// SampleDB draws one shadowing value in dB (mean 0).
func (s Shadowing) SampleDB(src *rng.Source) float64 {
	return src.Normal(0, s.SigmaDB)
}

// MeanLinear returns E[L] for the lognormal factor: because capacity
// is concave in linear SNR but the lognormal is skewed, E[L] =
// exp((ln10/10·σ)²/2) > 1. This surplus is the formal core of §3.4's
// observation that zero-mean (in dB) shadowing *raises* average linear
// power and helps long-range concurrency.
func (s Shadowing) MeanLinear() float64 {
	k := math.Ln10 / 10 * s.SigmaDB
	return math.Exp(k * k / 2)
}

// ExceedProbabilityDB returns P[L_dB > xDB], the probability that the
// shadowing deviation exceeds xDB. §3.4's worked example ("about a 20%
// chance of appearing beyond D_thresh") is a direct application.
func (s Shadowing) ExceedProbabilityDB(xDB float64) float64 {
	if s.SigmaDB == 0 {
		if xDB < 0 {
			return 1
		}
		return 0
	}
	return 1 - rng.NormalCDF(xDB/s.SigmaDB)
}

// FadingKind selects the multipath fading model.
type FadingKind int

const (
	// FadingNone disables fast fading (the wideband limit the model
	// mostly assumes: "we restrict our attention mainly to wideband
	// channels ... which allows us largely to average fading away").
	FadingNone FadingKind = iota
	// FadingRayleigh is narrowband non-line-of-sight fading; the power
	// factor is unit-mean exponential.
	FadingRayleigh
	// FadingRician is narrowband fading with a line-of-sight component
	// of K-factor RicianK.
	FadingRician
	// FadingWideband models a wideband channel as the average of
	// WidebandSubchannels independent Rayleigh subchannel powers,
	// leaving the "few dB" residual the appendix describes.
	FadingWideband
)

// Fading is the fast-fading model applied on top of path loss and
// shadowing.
type Fading struct {
	Kind                FadingKind
	RicianK             float64 // K-factor for FadingRician
	WidebandSubchannels int     // subchannel count for FadingWideband (default 48, 802.11a OFDM)
}

// Sample draws one unit-mean linear power fading factor.
func (f Fading) Sample(src *rng.Source) float64 {
	switch f.Kind {
	case FadingRayleigh:
		return src.Exp(1)
	case FadingRician:
		return src.RicianPowerK(f.RicianK)
	case FadingWideband:
		n := f.WidebandSubchannels
		if n <= 0 {
			n = 48
		}
		return src.WidebandFadePower(n)
	default:
		return 1
	}
}

// Model is the composite path loss + shadowing + fading channel model
// of §2. It produces linear gains relative to unit-distance power.
type Model struct {
	PathLoss  PathLoss
	Shadowing Shadowing
	Fading    Fading
}

// Default returns the paper's default analytical environment:
// α = 3, σ = 8 dB, no fast fading.
func Default() Model {
	return Model{
		PathLoss:  PathLoss{Alpha: 3},
		Shadowing: Shadowing{SigmaDB: 8},
	}
}

// Validate reports whether the model parameters are physically
// sensible (α in a broad (0, 8] range, σ ≥ 0).
func (m Model) Validate() error {
	if m.PathLoss.Alpha <= 0 || m.PathLoss.Alpha > 8 {
		return fmt.Errorf("propagation: path loss exponent %v outside (0, 8]", m.PathLoss.Alpha)
	}
	if m.Shadowing.SigmaDB < 0 {
		return fmt.Errorf("propagation: negative shadowing sigma %v", m.Shadowing.SigmaDB)
	}
	if m.Fading.Kind == FadingRician && m.Fading.RicianK < 0 {
		return fmt.Errorf("propagation: negative Rician K %v", m.Fading.RicianK)
	}
	return nil
}

// MedianGain returns the deterministic (median) linear gain at
// distance d: path loss only.
func (m Model) MedianGain(d float64) float64 {
	return m.PathLoss.Gain(d)
}

// SampleGain draws a random linear gain at distance d: path loss ×
// shadowing × fading.
func (m Model) SampleGain(src *rng.Source, d float64) float64 {
	return m.PathLoss.Gain(d) * m.Shadowing.Sample(src) * m.Fading.Sample(src)
}

// SampleGainDB draws a random gain in dB (negative for loss) at
// distance d.
func (m Model) SampleGainDB(src *rng.Source, d float64) float64 {
	return 10 * math.Log10(m.SampleGain(src, d))
}

// TwoRay is the two-ray ground-reflection model sketched in the
// appendix: beyond the crossover distance the direct and
// ground-reflected waves cancel at ground level and power decays as
// d^-4.
type TwoRay struct {
	TxHeight, RxHeight float64 // antenna heights, meters
	WavelengthM        float64 // carrier wavelength, meters
}

// CrossoverDistance returns the distance beyond which the d^-4
// asymptote applies: 4·π·h_t·h_r/λ.
func (t TwoRay) CrossoverDistance() float64 {
	return 4 * math.Pi * t.TxHeight * t.RxHeight / t.WavelengthM
}

// GainDB returns the two-ray power gain in dB at ground distance d,
// using free-space decay below the crossover and the
// (h_t·h_r/d²)² asymptote beyond it, matched continuously.
func (t TwoRay) GainDB(d float64) float64 {
	if d <= 0 {
		d = 1e-9
	}
	dc := t.CrossoverDistance()
	freeSpace := func(d float64) float64 {
		return 20 * math.Log10(t.WavelengthM/(4*math.Pi*d))
	}
	if d <= dc {
		return freeSpace(d)
	}
	// Continuous match at dc, then 40 dB/decade.
	return freeSpace(dc) - 40*math.Log10(d/dc)
}

// KnifeEdgeDiffractionLossDB returns the knife-edge diffraction loss
// in dB for the given Fresnel-Kirchhoff parameter v, using Lee's
// piecewise approximation. §3.4 cites ≈30 dB of diffraction loss for a
// barrier 5 m away at 2.4 GHz as the reason even "opaque" barriers
// cannot hide a sender from carrier sense.
func KnifeEdgeDiffractionLossDB(v float64) float64 {
	switch {
	case v <= -1:
		return 0
	case v <= 0:
		return 20 * math.Log10(0.5-0.62*v) * -1
	case v <= 1:
		return 20 * math.Log10(0.5*math.Exp(-0.95*v)) * -1
	case v <= 2.4:
		return 20 * math.Log10(0.4-math.Sqrt(0.1184-(0.38-0.1*v)*(0.38-0.1*v))) * -1
	default:
		return 20 * math.Log10(0.225/v) * -1
	}
}

// FresnelV returns the Fresnel-Kirchhoff diffraction parameter for an
// obstruction of height h (above the line of sight) at distances d1
// and d2 (meters) from the two endpoints, at wavelength lambda.
func FresnelV(h, d1, d2, lambda float64) float64 {
	return h * math.Sqrt(2*(d1+d2)/(lambda*d1*d2))
}

// FloorAttenuation returns the ITU-style indoor floor penetration loss
// in dB for a path crossing n floors. Footnote 1 of the paper notes
// that heavy uninterrupted floors warrant an explicit attenuation term
// separate from shadowing. Values follow ITU-R P.1238 office
// parameters at 2.4 GHz: 15 dB for the first floor, 4 dB for each
// additional floor.
func FloorAttenuation(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 15 + 4*float64(n-1)
}

// LinkBudget computes a received power in dBm from a transmit power in
// dBm, a reference loss at 1 m, and the model's path loss and (given a
// source) shadowing/fading draws. It is the dBm-world bridge used by
// the testbed generator.
type LinkBudget struct {
	Model       Model
	TxPowerDBm  float64
	RefLoss1mDB float64 // loss at 1 m (e.g. ~40 dB at 2.4 GHz)
}

// MedianRxDBm returns the median received power at distance d meters.
func (lb LinkBudget) MedianRxDBm(d float64) float64 {
	return lb.TxPowerDBm - lb.RefLoss1mDB - lb.Model.PathLoss.LossDB(d)
}

// SampleRxDBm draws a received power at distance d meters with
// shadowing and fading applied.
func (lb LinkBudget) SampleRxDBm(src *rng.Source, d float64) float64 {
	return lb.MedianRxDBm(d) + lb.Model.Shadowing.SampleDB(src) +
		10*math.Log10(lb.Model.Fading.Sample(src))
}
