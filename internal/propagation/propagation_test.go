package propagation

import (
	"math"
	"testing"
	"testing/quick"

	"carriersense/internal/rng"
)

func TestPathLossGainKnownValues(t *testing.T) {
	p := PathLoss{Alpha: 3}
	if got := p.Gain(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("gain at unit distance = %v, want 1", got)
	}
	if got := p.Gain(10); math.Abs(got-1e-3) > 1e-15 {
		t.Errorf("gain at 10 = %v, want 1e-3", got)
	}
	if got := p.LossDB(10); math.Abs(got-30) > 1e-9 {
		t.Errorf("loss at 10 = %v dB, want 30", got)
	}
}

func TestPathLossClampsTinyDistance(t *testing.T) {
	p := PathLoss{Alpha: 3}
	if g := p.Gain(0); math.IsInf(g, 1) || math.IsNaN(g) {
		t.Errorf("gain at 0 = %v, want finite clamp", g)
	}
}

func TestPathLossDistanceForLossInverse(t *testing.T) {
	f := func(rawLoss, rawAlpha float64) bool {
		loss := math.Abs(math.Mod(rawLoss, 120))
		alpha := 1.5 + math.Abs(math.Mod(rawAlpha, 3))
		p := PathLoss{Alpha: alpha}
		d := p.DistanceForLossDB(loss)
		return math.Abs(p.LossDB(d)-loss) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowingStatistics(t *testing.T) {
	s := Shadowing{SigmaDB: 8}
	src := rng.New(1)
	n := 100_000
	below := 0
	var sumDB float64
	for i := 0; i < n; i++ {
		if s.Sample(src) < 1 {
			below++
		}
		sumDB += s.SampleDB(src)
	}
	if frac := float64(below) / float64(n); math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P[L<1] = %v", frac)
	}
	if mean := sumDB / float64(n); math.Abs(mean) > 0.1 {
		t.Errorf("mean dB = %v, want 0", mean)
	}
}

func TestShadowingMeanLinear(t *testing.T) {
	s := Shadowing{SigmaDB: 8}
	src := rng.New(2)
	var sum float64
	n := 400_000
	for i := 0; i < n; i++ {
		sum += s.Sample(src)
	}
	got := sum / float64(n)
	want := s.MeanLinear()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("empirical E[L] = %v, analytic %v", got, want)
	}
	if want <= 1 {
		t.Errorf("MeanLinear = %v, must exceed 1 for sigma > 0", want)
	}
}

func TestExceedProbability(t *testing.T) {
	s := Shadowing{SigmaDB: 8}
	if got := s.ExceedProbabilityDB(0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("P[L>0dB] = %v, want 0.5", got)
	}
	if got := s.ExceedProbabilityDB(8); math.Abs(got-0.1587) > 1e-3 {
		t.Errorf("P[L>sigma] = %v, want 0.159", got)
	}
	z := Shadowing{SigmaDB: 0}
	if z.ExceedProbabilityDB(-1) != 1 || z.ExceedProbabilityDB(1) != 0 {
		t.Error("zero-sigma exceed probability should be a step")
	}
}

func TestFadingUnitMeans(t *testing.T) {
	src := rng.New(3)
	kinds := []Fading{
		{Kind: FadingNone},
		{Kind: FadingRayleigh},
		{Kind: FadingRician, RicianK: 5},
		{Kind: FadingWideband, WidebandSubchannels: 48},
		{Kind: FadingWideband}, // default subchannels
	}
	for _, f := range kinds {
		var sum float64
		n := 100_000
		for i := 0; i < n; i++ {
			sum += f.Sample(src)
		}
		if mean := sum / float64(n); math.Abs(mean-1) > 0.03 {
			t.Errorf("fading kind %v mean = %v, want 1", f.Kind, mean)
		}
	}
}

func TestModelValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := Default()
	bad.PathLoss.Alpha = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	bad = Default()
	bad.Shadowing.SigmaDB = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	bad = Default()
	bad.Fading = Fading{Kind: FadingRician, RicianK: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative K accepted")
	}
}

func TestModelGainComposition(t *testing.T) {
	m := Model{PathLoss: PathLoss{Alpha: 2}} // no shadowing/fading
	src := rng.New(4)
	if got := m.SampleGain(src, 10); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("deterministic sample gain = %v, want 0.01", got)
	}
	if got := m.MedianGain(10); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("median gain = %v", got)
	}
	if got := m.SampleGainDB(src, 10); math.Abs(got+20) > 1e-9 {
		t.Errorf("gain dB = %v, want -20", got)
	}
}

func TestTwoRay(t *testing.T) {
	tr := TwoRay{TxHeight: 1.5, RxHeight: 1.5, WavelengthM: 0.125} // 2.4 GHz
	dc := tr.CrossoverDistance()
	want := 4 * math.Pi * 1.5 * 1.5 / 0.125
	if math.Abs(dc-want) > 1e-9 {
		t.Errorf("crossover = %v, want %v", dc, want)
	}
	// Continuity at the crossover.
	below := tr.GainDB(dc * 0.999999)
	above := tr.GainDB(dc * 1.000001)
	if math.Abs(below-above) > 0.01 {
		t.Errorf("discontinuity at crossover: %v vs %v", below, above)
	}
	// 40 dB per decade beyond crossover.
	drop := tr.GainDB(dc*10) - tr.GainDB(dc)
	if math.Abs(drop+40) > 0.1 {
		t.Errorf("decade drop = %v dB, want -40", drop)
	}
	// 20 dB per decade below (free space).
	drop = tr.GainDB(dc/10) - tr.GainDB(dc/100)
	if math.Abs(drop+20) > 0.1 {
		t.Errorf("free-space decade drop = %v dB, want -20", drop)
	}
}

func TestKnifeEdgeDiffraction(t *testing.T) {
	// No obstruction (v <= -1): no loss.
	if got := KnifeEdgeDiffractionLossDB(-2); got != 0 {
		t.Errorf("loss at v=-2 = %v, want 0", got)
	}
	// Grazing incidence (v = 0): the classic 6 dB.
	if got := KnifeEdgeDiffractionLossDB(0); math.Abs(got-6.02) > 0.1 {
		t.Errorf("loss at v=0 = %v, want ~6", got)
	}
	// Monotone increasing in v, up to the ~0.5 dB seams of Lee's
	// piecewise approximation.
	prev := -1.0
	for v := -1.0; v < 5; v += 0.1 {
		got := KnifeEdgeDiffractionLossDB(v)
		if got < prev-0.5 {
			t.Errorf("diffraction loss dipped at v=%v: %v < %v", v, got, prev)
		}
		prev = got
	}
	// The §3.4 example: barrier ~5 m from each endpoint, 2.4 GHz,
	// strongly obstructed — loss should land near 30 dB for v ≈ 7.
	v := FresnelV(5, 5, 5, 0.125)
	loss := KnifeEdgeDiffractionLossDB(v)
	if loss < 25 || loss > 40 {
		t.Errorf("section 3.4 barrier loss = %v dB, want ~30", loss)
	}
}

func TestFresnelV(t *testing.T) {
	// Higher obstruction -> larger v.
	if FresnelV(1, 5, 5, 0.125) >= FresnelV(3, 5, 5, 0.125) {
		t.Error("v should grow with obstruction height")
	}
	// Zero height -> zero v.
	if got := FresnelV(0, 5, 5, 0.125); got != 0 {
		t.Errorf("v at h=0 = %v", got)
	}
}

func TestFloorAttenuation(t *testing.T) {
	if got := FloorAttenuation(0); got != 0 {
		t.Errorf("0 floors = %v", got)
	}
	if got := FloorAttenuation(1); got != 15 {
		t.Errorf("1 floor = %v, want 15", got)
	}
	if got := FloorAttenuation(3); got != 23 {
		t.Errorf("3 floors = %v, want 23", got)
	}
}

func TestLinkBudget(t *testing.T) {
	lb := LinkBudget{
		Model:       Model{PathLoss: PathLoss{Alpha: 3.5}},
		TxPowerDBm:  15,
		RefLoss1mDB: 47,
	}
	// At 1 m: 15 - 47 = -32 dBm.
	if got := lb.MedianRxDBm(1); math.Abs(got+32) > 1e-9 {
		t.Errorf("rx at 1m = %v, want -32", got)
	}
	// At 10 m: 35 dB more loss.
	if got := lb.MedianRxDBm(10); math.Abs(got+67) > 1e-9 {
		t.Errorf("rx at 10m = %v, want -67", got)
	}
	src := rng.New(5)
	if got := lb.SampleRxDBm(src, 10); math.Abs(got+67) > 1e-9 {
		t.Errorf("deterministic sample = %v, want -67", got)
	}
}
