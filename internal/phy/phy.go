// Package phy models the physical layer of the packet simulator: a
// shared wireless medium with cumulative interference, per-radio
// clear-channel assessment (CCA), preamble detection and capture, and
// frame error evaluation from piecewise SINR.
//
// Fidelity choices follow §4 of the paper:
//
//   - No receive abort: once a radio locks onto a preamble it stays
//     locked until that frame ends, even if a stronger frame arrives —
//     the paper notes its hardware ran this way and credits it with
//     some of the concurrency crashes in the long-range data.
//   - Frame errors accumulate per interference segment: each interval
//     of constant interference contributes independent per-byte
//     survival at its own SINR, so a brief strong collision damages a
//     frame roughly in proportion to the bytes it overlaps.
//   - CCA is energy detection against a per-radio threshold, plus
//     (optionally) preamble carrier sense while locked on a frame.
//     Per-radio thresholds support the "threshold asymmetry" pathology
//     of §5.
//
// Hot-path design: every dB-domain quantity that the per-frame loops
// consult — noise floors, CCA thresholds, transmit powers, preamble
// sensitivity, capture SINR — is converted to linear milliwatts once,
// at configuration time, not per query. Channels that can supply
// linear-scale gains directly (the testbed's precomputed gain matrix)
// implement LinearChannel and skip the dB conversion entirely; the
// per-frame fading draw is cached as a linear factor per (transmission,
// radio). Transmission records are pooled on the Medium and event
// scheduling uses the simulator's argument-passing form, so a saturated
// run allocates nothing per frame. In-flight transmissions live in a
// slice in air-start order, making every interference sum — and
// therefore every simulation — deterministic (a map here would
// randomize float summation order).
package phy

import (
	"fmt"
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// NodeID identifies a radio on the medium.
type NodeID int

// Broadcast is the destination for broadcast frames (the paper's
// experiments used broadcast packets).
const Broadcast NodeID = -1

// Channel supplies pairwise link gains in dB (negative = loss). The
// testbed package provides realizations with path loss, shadowing and
// floor attenuation baked in. Implementations must be symmetric unless
// deliberately modeling asymmetric hardware.
type Channel interface {
	GainDB(from, to NodeID) float64
}

// LinearChannel is an optional extension of Channel supplying the
// linear-scale power gain 10^(GainDB/10) directly. The medium prefers
// it on every per-frame power query, hoisting the dB-to-linear
// conversion out of the event loop; implementations precompute the
// linear matrix once per realization (see testbed.Generate).
type LinearChannel interface {
	Channel
	GainLin(from, to NodeID) float64
}

// OutageChannel is an optional extension of Channel supplying per-link
// deep-fade probabilities that override Config.Fade.OutageProb. The
// testbed implements it: burst losses are a property of a particular
// path (its delay spread, its exposure to ambient traffic), not of the
// radio.
type OutageChannel interface {
	Channel
	OutageProbability(from, to NodeID) float64
}

// Config holds medium-wide PHY parameters. Zero value is unusable; use
// DefaultConfig.
type Config struct {
	// NoiseFloorDBm is the thermal noise floor (paper: ≈ -95 dBm).
	NoiseFloorDBm float64
	// CCAThresholdDBm is the default energy-detection busy threshold.
	CCAThresholdDBm float64
	// PreambleSensitivityDBm is the minimum RSSI at which a preamble
	// can be detected and locked.
	PreambleSensitivityDBm float64
	// PreambleCaptureSINRdB is the minimum SINR at frame start for a
	// radio to acquire the preamble.
	PreambleCaptureSINRdB float64
	// PreambleCarrierSense makes CCA report busy while a radio is
	// locked on a reception, regardless of energy level (the
	// preamble-based carrier sense common hardware layers on top of
	// energy detection).
	PreambleCarrierSense bool
	// PLCPOverhead is the preamble + signal field duration prepended
	// to every frame (20 µs for 802.11a).
	PLCPOverhead sim.Time
	// SymbolDuration is the OFDM symbol time (4 µs for 802.11a).
	SymbolDuration sim.Time
	// TxTurnaround is the delay between a MAC's decision to transmit
	// and energy actually appearing on the air (RX/TX switch plus
	// propagation). Two stations deciding within this window cannot
	// see each other and collide — the vulnerability window behind
	// the "slot collision" pathology of §5. Zero makes carrier sense
	// unphysically instantaneous.
	TxTurnaround sim.Time
	// Fade is the per-frame, per-link residual fading model: the
	// appendix argues wideband channels reduce multipath fading "to
	// the equivalent of a few dB variation" plus occasional deep
	// frequency-selective fades, and §4.1 invokes time variation of
	// the channel to explain carrier sense occasionally beating pure
	// concurrency. Each (transmission, receiver) pair draws one dB
	// offset for the frame's lifetime.
	Fade capacity.FadeModel
}

// DefaultConfig returns 802.11a-mode parameters matching the paper's
// testbed conventions.
func DefaultConfig() Config {
	return Config{
		NoiseFloorDBm:          -95,
		CCAThresholdDBm:        -82,
		PreambleSensitivityDBm: -92,
		PreambleCaptureSINRdB:  4,
		PreambleCarrierSense:   true,
		PLCPOverhead:           20 * sim.Microsecond,
		SymbolDuration:         4 * sim.Microsecond,
		TxTurnaround:           1 * sim.Microsecond,
		Fade:                   capacity.DefaultFade(),
	}
}

// DSSSPreamble is the 802.11b long preamble + PLCP header airtime.
const DSSSPreamble = 192 * sim.Microsecond

// FrameDuration returns the airtime of a frame of the given length at
// the given rate. OFDM rates pay the PLCP overhead plus whole 4 µs
// symbols (16 service bits + 6 tail bits per 802.11a); DSSS rates pay
// the 192 µs long preamble plus the payload bit-serially at the
// nominal rate.
func (c Config) FrameDuration(bytes int, rate capacity.Rate) sim.Time {
	if rate.Modulation == capacity.DSSS {
		payloadMicros := float64(8*bytes) / rate.Mbps
		return DSSSPreamble + sim.FromMicros(payloadMicros)
	}
	bits := 16 + 8*bytes + 6
	symbols := (bits + rate.BitsPerSymbol - 1) / rate.BitsPerSymbol
	return c.PLCPOverhead + sim.Time(symbols)*c.SymbolDuration
}

// dbLn converts a dB exponent to a natural one: 10^(x/10) = e^(x·dbLn).
// math.Exp is substantially cheaper than math.Pow.
const dbLn = math.Ln10 / 10

// DBToLin converts dB (or dBm) to a linear factor (or mW). It is the
// one conversion every linear-scale cache in the simulator goes
// through — the testbed's gain matrix included — so bit-identity
// between precomputed and on-the-fly paths holds by construction.
func DBToLin(db float64) float64 { return math.Exp(dbLn * db) }

// FrameKind distinguishes MAC frame types on the air.
type FrameKind int

// Frame kinds.
const (
	FrameData FrameKind = iota
	FrameACK
	FrameRTS
	FrameCTS
)

// String returns the frame kind mnemonic.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "DATA"
	case FrameACK:
		return "ACK"
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	default:
		return "?"
	}
}

// Frame is one MAC frame on the air.
type Frame struct {
	Seq   uint64
	Src   NodeID
	Dst   NodeID // Broadcast or a specific node
	Kind  FrameKind
	Bytes int
	Rate  capacity.Rate
	// NAV is the network allocation vector carried by RTS/CTS frames:
	// how long overhearers should treat the medium as reserved after
	// this frame ends.
	NAV sim.Time
}

// transmission is a frame in flight. Records are pooled on the Medium:
// one is acquired per Transmit and released when the frame leaves the
// air, so a saturated run recycles a handful of records instead of
// allocating one (plus a fading map) per frame.
type transmission struct {
	frame      Frame
	start, end sim.Time
	txPowerDBm float64
	txPowerMw  float64
	// fadeLin caches the per-receiver linear fading factor for this
	// frame, indexed by radio ordinal, so every power query during the
	// frame's lifetime sees one consistent channel state. 0 means "not
	// yet drawn" (a drawn factor is always positive).
	fadeLin []float64
}

// RxResult reports a completed reception attempt to a listener.
type RxResult struct {
	Frame    Frame
	OK       bool    // frame decoded successfully
	SINRdB   float64 // time-averaged SINR over the locked reception
	RSSIdBm  float64 // received signal strength of the frame
	Survival float64 // modeled survival probability the success draw used
}

// reception tracks a radio locked onto a frame. Each radio embeds one
// reception record (a radio locks at most one frame at a time), so
// locking allocates nothing.
type reception struct {
	tx        *transmission
	signalMw  float64 // received signal power, linear mW
	survival  float64 // accumulated survival probability
	segStart  sim.Time
	interfMw  float64 // current other-transmission power at the radio
	weightedI float64 // time-integral of interference power (mW·ns)
}

// Radio is one node's PHY. Create via Medium.AddRadio.
type Radio struct {
	id         NodeID
	ord        int // index in Medium.ordered; fadeLin cache slot
	medium     *Medium
	txPowerDBm float64
	txPowerMw  float64

	// ccaOffsetDB shifts this radio's CCA threshold from the medium
	// default (threshold asymmetry pathology).
	ccaOffsetDB float64
	// noiseOffsetDB shifts this radio's noise floor from the medium
	// default (hardware noise floor variation, footnote 20).
	noiseOffsetDB float64

	// Linear-scale caches of the dB configuration above; recomputed on
	// every setter so the event loop never converts dB.
	noiseMw     float64
	ccaThreshMw float64

	transmitting *transmission
	rx           *reception
	rxData       reception // storage rx points into while locked
	ccaBusy      bool

	// OnCCA, when non-nil, is called on every CCA busy/idle
	// transition. The MAC uses it to freeze and resume backoff.
	OnCCA func(busy bool)
	// OnRx, when non-nil, is called when a locked reception completes
	// (successfully or not).
	OnRx func(RxResult)
	// OnTxDone, when non-nil, is called when this radio's own
	// transmission leaves the air.
	OnTxDone func(Frame)
}

// ID returns the radio's node ID.
func (r *Radio) ID() NodeID { return r.id }

// SetCCAOffsetDB shifts this radio's CCA threshold relative to the
// medium default (positive = less sensitive, defers less).
func (r *Radio) SetCCAOffsetDB(db float64) {
	r.ccaOffsetDB = db
	r.ccaThreshMw = DBToLin(r.medium.cfg.CCAThresholdDBm + db)
}

// SetNoiseOffsetDB shifts this radio's noise floor.
func (r *Radio) SetNoiseOffsetDB(db float64) {
	r.noiseOffsetDB = db
	r.noiseMw = DBToLin(r.medium.cfg.NoiseFloorDBm + db)
}

// TxPowerDBm returns the radio's transmit power.
func (r *Radio) TxPowerDBm() float64 { return r.txPowerDBm }

// Transmitting reports whether the radio is currently on the air.
func (r *Radio) Transmitting() bool { return r.transmitting != nil }

// Receiving reports whether the radio is locked on a frame.
func (r *Radio) Receiving() bool { return r.rx != nil }

// Medium is the shared wireless channel: it tracks all in-flight
// transmissions, computes per-radio power sums, and drives every
// radio's CCA and reception state.
type Medium struct {
	sim    *sim.Simulator
	ch     Channel
	lin    LinearChannel // non-nil when ch supplies linear gains
	oc     OutageChannel // non-nil when ch supplies per-link outage probs
	cfg    Config
	src    *rng.Source
	radios map[NodeID]*Radio
	// ordered keeps radios in registration order: all medium-wide
	// iteration uses it so that callback order — and therefore every
	// simulation — is deterministic (Go map order is randomized).
	ordered []*Radio
	// active holds in-flight transmissions in air-start order; the
	// fixed order keeps interference sums (float addition is not
	// associative) deterministic.
	active []*transmission
	txPool []*transmission
	seq    uint64

	// Linear-scale caches of medium-wide thresholds.
	preambleSensMw float64
	captureSINRLin float64
	fadeZero       bool

	// Pre-bound event callbacks, so Transmit schedules with At1 instead
	// of allocating two closures per frame.
	goLiveFn func(any)
	endTxFn  func(any)
}

// NewMedium creates a medium over the given channel realization.
func NewMedium(s *sim.Simulator, ch Channel, cfg Config, src *rng.Source) *Medium {
	m := &Medium{
		sim:            s,
		ch:             ch,
		cfg:            cfg,
		src:            src,
		radios:         make(map[NodeID]*Radio),
		preambleSensMw: DBToLin(cfg.PreambleSensitivityDBm),
		captureSINRLin: DBToLin(cfg.PreambleCaptureSINRdB),
		fadeZero:       cfg.Fade.Zero(),
	}
	m.lin, _ = ch.(LinearChannel)
	m.oc, _ = ch.(OutageChannel)
	m.goLiveFn = func(a any) { m.goLive(a.(*transmission)) }
	m.endTxFn = func(a any) { m.endTransmission(a.(*transmission)) }
	return m
}

// Config returns the medium's PHY configuration.
func (m *Medium) Config() Config { return m.cfg }

// Sim returns the simulator driving this medium.
func (m *Medium) Sim() *sim.Simulator { return m.sim }

// AddRadio registers a radio with the given ID and transmit power.
func (m *Medium) AddRadio(id NodeID, txPowerDBm float64) *Radio {
	if _, dup := m.radios[id]; dup {
		panic(fmt.Sprintf("phy: duplicate radio %d", id))
	}
	// Late registration: transmissions already committed cache fading
	// per radio ordinal, so grow their caches to cover the newcomer
	// (every outstanding transmission is some radio's transmitting,
	// whether or not it has gone live yet).
	n := len(m.ordered) + 1
	for _, rr := range m.ordered {
		if tx := rr.transmitting; tx != nil && len(tx.fadeLin) < n {
			grown := make([]float64, n)
			copy(grown, tx.fadeLin)
			tx.fadeLin = grown
		}
	}
	r := &Radio{
		id:          id,
		ord:         len(m.ordered),
		medium:      m,
		txPowerDBm:  txPowerDBm,
		txPowerMw:   DBToLin(txPowerDBm),
		noiseMw:     DBToLin(m.cfg.NoiseFloorDBm),
		ccaThreshMw: DBToLin(m.cfg.CCAThresholdDBm),
	}
	m.radios[id] = r
	m.ordered = append(m.ordered, r)
	return r
}

// Radio returns the radio with the given ID, or nil.
func (m *Medium) Radio(id NodeID) *Radio { return m.radios[id] }

// gainLin returns the linear power gain of the from→to link.
func (m *Medium) gainLin(from, to NodeID) float64 {
	if m.lin != nil {
		return m.lin.GainLin(from, to)
	}
	return DBToLin(m.ch.GainDB(from, to))
}

// rxPowerMw returns the linear received power (mW) of tx at radio r,
// including the frame's per-link fading draw.
func (m *Medium) rxPowerMw(tx *transmission, r *Radio) float64 {
	p := tx.txPowerMw * m.gainLin(tx.frame.Src, r.id)
	if !m.fadeZero {
		f := tx.fadeLin[r.ord]
		if f == 0 {
			f = m.drawFade(tx, r)
		}
		p *= f
	}
	return p
}

// drawFade draws and caches the frame's fading factor at radio r.
func (m *Medium) drawFade(tx *transmission, r *Radio) float64 {
	fade := m.src.Normal(0, m.cfg.Fade.SigmaDB)
	p := m.cfg.Fade.OutageProb
	if m.oc != nil {
		p = m.oc.OutageProbability(tx.frame.Src, r.id)
	}
	if p > 0 && m.src.Float64() < p {
		fade -= m.cfg.Fade.OutageDepthDB
	}
	f := DBToLin(fade)
	tx.fadeLin[r.ord] = f
	return f
}

// interferenceMwAt returns the total power (mW) of all active
// transmissions at radio r, excluding any transmission in skip and
// excluding r's own transmission. Summation follows air-start order.
func (m *Medium) interferenceMwAt(r *Radio, skip *transmission) float64 {
	total := 0.0
	for _, tx := range m.active {
		if tx == skip || tx.frame.Src == r.id {
			continue
		}
		total += m.rxPowerMw(tx, r)
	}
	return total
}

// noiseMwAt returns radio r's noise floor in mW.
func (m *Medium) noiseMwAt(r *Radio) float64 { return r.noiseMw }

// CCABusy reports the instantaneous clear channel assessment at radio
// r: busy while transmitting, while locked on a preamble (if preamble
// carrier sense is enabled), or while total received energy exceeds
// the radio's threshold.
func (m *Medium) CCABusy(r *Radio) bool {
	if r.transmitting != nil {
		return true
	}
	if m.cfg.PreambleCarrierSense && r.rx != nil {
		return true
	}
	return m.interferenceMwAt(r, nil) > r.ccaThreshMw
}

// CCABusy reports the radio's current clear channel assessment.
func (r *Radio) CCABusy() bool { return r.medium.CCABusy(r) }

// MediumConfig returns the PHY configuration of the medium the radio
// is attached to.
func (r *Radio) MediumConfig() Config { return r.medium.cfg }

// RSSIFromDBm returns the long-run received signal strength at this
// radio for transmissions from the given node.
func (r *Radio) RSSIFromDBm(from NodeID) float64 {
	return r.medium.RSSIdBm(from, r.id)
}

// RSSIdBm returns the long-run received signal strength at radio to
// from radio from: transmit power plus channel gain. This is the
// "sender-sender RSSI" metric of Figures 11 and 13.
func (m *Medium) RSSIdBm(from, to NodeID) float64 {
	f := m.radios[from]
	return f.txPowerDBm + m.ch.GainDB(from, to)
}

// acquireTx claims a pooled transmission record sized to the current
// radio population.
func (m *Medium) acquireTx() *transmission {
	n := len(m.txPool)
	if n == 0 {
		return &transmission{fadeLin: make([]float64, len(m.ordered))}
	}
	tx := m.txPool[n-1]
	m.txPool[n-1] = nil
	m.txPool = m.txPool[:n-1]
	if len(tx.fadeLin) < len(m.ordered) {
		tx.fadeLin = make([]float64, len(m.ordered))
	}
	return tx
}

// releaseTx clears the record's fading cache and returns it to the
// pool. Callers must not retain tx past this point.
func (m *Medium) releaseTx(tx *transmission) {
	for i := range tx.fadeLin {
		tx.fadeLin[i] = 0
	}
	m.txPool = append(m.txPool, tx)
}

// Transmit commits radio r to sending a frame. Energy appears on the
// air after the configured TxTurnaround — once committed, the radio
// cannot abort, so two stations deciding within the turnaround window
// collide without ever sensing each other. It returns the transmission
// end time.
func (r *Radio) Transmit(frame Frame) sim.Time {
	m := r.medium
	if r.transmitting != nil {
		panic(fmt.Sprintf("phy: radio %d already transmitting", r.id))
	}
	frame.Src = r.id
	m.seq++
	frame.Seq = m.seq
	dur := m.cfg.FrameDuration(frame.Bytes, frame.Rate)
	airStart := m.sim.Now() + m.cfg.TxTurnaround
	tx := m.acquireTx()
	tx.frame = frame
	tx.start = airStart
	tx.end = airStart + dur
	tx.txPowerDBm = r.txPowerDBm
	tx.txPowerMw = r.txPowerMw
	// A radio that commits to transmitting abandons any reception in
	// progress (half-duplex).
	if r.rx != nil {
		r.rx = nil
	}
	r.transmitting = tx
	if m.cfg.TxTurnaround > 0 {
		m.sim.At1(airStart, m.goLiveFn, tx)
	} else {
		m.goLive(tx)
	}
	m.sim.At1(tx.end, m.endTxFn, tx)
	return tx.end
}

// goLive puts a committed transmission on the air.
func (m *Medium) goLive(tx *transmission) {
	m.active = append(m.active, tx)
	m.onAirChange(tx, true)
}

// endTransmission removes tx from the air, resolves receptions, and
// recycles the record.
func (m *Medium) endTransmission(tx *transmission) {
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	sender := m.radios[tx.frame.Src]
	sender.transmitting = nil
	m.onAirChange(tx, false)
	if sender.OnTxDone != nil {
		sender.OnTxDone(tx.frame)
	}
	// Resolve every radio locked on this transmission.
	for _, r := range m.ordered {
		if r.rx != nil && r.rx.tx == tx {
			m.finishReception(r)
		}
	}
	// Senders' CCA may have changed by their own TX ending.
	m.refreshCCA()
	m.releaseTx(tx)
}

// onAirChange updates every radio's reception segments and attempts
// preamble locks when a transmission starts.
func (m *Medium) onAirChange(tx *transmission, started bool) {
	now := m.sim.Now()
	for _, r := range m.ordered {
		if r.rx != nil && r.rx.tx != tx {
			// Close the current interference segment and open a new
			// one reflecting the changed air.
			m.closeSegment(r, now)
			r.rx.interfMw = m.interferenceMwAt(r, r.rx.tx)
		}
	}
	if started {
		m.tryLock(tx)
	}
	m.refreshCCA()
}

// tryLock offers a newly started transmission to every idle radio.
func (m *Medium) tryLock(tx *transmission) {
	for _, r := range m.ordered {
		if r.id == tx.frame.Src || r.transmitting != nil || r.rx != nil {
			// Busy radios miss the preamble entirely: the origin of
			// the "chain collision" pathology (§5) — a node
			// transmitting over a preamble cannot defer to it.
			continue
		}
		sig := m.rxPowerMw(tx, r)
		if sig < m.preambleSensMw {
			continue
		}
		interf := m.interferenceMwAt(r, tx)
		if sig < m.captureSINRLin*(r.noiseMw+interf) {
			continue
		}
		r.rxData = reception{
			tx:       tx,
			signalMw: sig,
			survival: 1,
			segStart: m.sim.Now(),
			interfMw: interf,
		}
		r.rx = &r.rxData
	}
}

// closeSegment folds the interference segment [rx.segStart, now) into
// the reception's survival probability.
func (m *Medium) closeSegment(r *Radio, now sim.Time) {
	rx := r.rx
	if rx == nil || now <= rx.segStart {
		return
	}
	segDur := now - rx.segStart
	sinr := rx.signalMw / (r.noiseMw + rx.interfMw)
	sinrDB := 10 * math.Log10(sinr)
	// Fraction of the frame's airtime this segment covers; per-byte
	// survival at this SINR raised to the bytes in the segment.
	per := capacity.PER(rx.tx.frame.Rate, sinrDB, rx.tx.frame.Bytes)
	if per > 0 {
		frameDur := rx.tx.end - rx.tx.start
		frac := float64(segDur) / float64(frameDur)
		rx.survival *= math.Pow(1-per, frac)
	}
	rx.weightedI += float64(segDur) * rx.interfMw
	rx.segStart = now
}

// finishReception resolves a completed reception on radio r.
func (m *Medium) finishReception(r *Radio) {
	rx := r.rx
	m.closeSegment(r, m.sim.Now())
	r.rx = nil
	frameDur := float64(rx.tx.end - rx.tx.start)
	avgInterf := rx.weightedI / frameDur
	sinr := rx.signalMw / (r.noiseMw + avgInterf)
	ok := m.src.Float64() < rx.survival
	if r.OnRx != nil {
		r.OnRx(RxResult{
			Frame:    rx.tx.frame,
			OK:       ok,
			SINRdB:   10 * math.Log10(sinr),
			RSSIdBm:  10 * math.Log10(rx.signalMw),
			Survival: rx.survival,
		})
	}
}

// refreshCCA recomputes CCA for all radios and fires transitions.
func (m *Medium) refreshCCA() {
	for _, r := range m.ordered {
		busy := m.CCABusy(r)
		if busy != r.ccaBusy {
			r.ccaBusy = busy
			if r.OnCCA != nil {
				r.OnCCA(busy)
			}
		}
	}
}

// SINRdBBetween returns the SINR a frame from src would enjoy at dst
// right now, given current interference — used by oracle tooling, not
// by the protocol path.
func (m *Medium) SINRdBBetween(src, dst NodeID) float64 {
	from, to := m.radios[src], m.radios[dst]
	sig := from.txPowerMw * m.gainLin(src, dst)
	interf := m.interferenceMwAt(to, nil)
	return 10 * math.Log10(sig/(to.noiseMw+interf))
}
