// Package phy models the physical layer of the packet simulator: a
// shared wireless medium with cumulative interference, per-radio
// clear-channel assessment (CCA), preamble detection and capture, and
// frame error evaluation from piecewise SINR.
//
// Fidelity choices follow §4 of the paper:
//
//   - No receive abort: once a radio locks onto a preamble it stays
//     locked until that frame ends, even if a stronger frame arrives —
//     the paper notes its hardware ran this way and credits it with
//     some of the concurrency crashes in the long-range data.
//   - Frame errors accumulate per interference segment: each interval
//     of constant interference contributes independent per-byte
//     survival at its own SINR, so a brief strong collision damages a
//     frame roughly in proportion to the bytes it overlaps.
//   - CCA is energy detection against a per-radio threshold, plus
//     (optionally) preamble carrier sense while locked on a frame.
//     Per-radio thresholds support the "threshold asymmetry" pathology
//     of §5.
package phy

import (
	"fmt"
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// NodeID identifies a radio on the medium.
type NodeID int

// Broadcast is the destination for broadcast frames (the paper's
// experiments used broadcast packets).
const Broadcast NodeID = -1

// Channel supplies pairwise link gains in dB (negative = loss). The
// testbed package provides realizations with path loss, shadowing and
// floor attenuation baked in. Implementations must be symmetric unless
// deliberately modeling asymmetric hardware.
type Channel interface {
	GainDB(from, to NodeID) float64
}

// OutageChannel is an optional extension of Channel supplying per-link
// deep-fade probabilities that override Config.Fade.OutageProb. The
// testbed implements it: burst losses are a property of a particular
// path (its delay spread, its exposure to ambient traffic), not of the
// radio.
type OutageChannel interface {
	Channel
	OutageProbability(from, to NodeID) float64
}

// Config holds medium-wide PHY parameters. Zero value is unusable; use
// DefaultConfig.
type Config struct {
	// NoiseFloorDBm is the thermal noise floor (paper: ≈ -95 dBm).
	NoiseFloorDBm float64
	// CCAThresholdDBm is the default energy-detection busy threshold.
	CCAThresholdDBm float64
	// PreambleSensitivityDBm is the minimum RSSI at which a preamble
	// can be detected and locked.
	PreambleSensitivityDBm float64
	// PreambleCaptureSINRdB is the minimum SINR at frame start for a
	// radio to acquire the preamble.
	PreambleCaptureSINRdB float64
	// PreambleCarrierSense makes CCA report busy while a radio is
	// locked on a reception, regardless of energy level (the
	// preamble-based carrier sense common hardware layers on top of
	// energy detection).
	PreambleCarrierSense bool
	// PLCPOverhead is the preamble + signal field duration prepended
	// to every frame (20 µs for 802.11a).
	PLCPOverhead sim.Time
	// SymbolDuration is the OFDM symbol time (4 µs for 802.11a).
	SymbolDuration sim.Time
	// TxTurnaround is the delay between a MAC's decision to transmit
	// and energy actually appearing on the air (RX/TX switch plus
	// propagation). Two stations deciding within this window cannot
	// see each other and collide — the vulnerability window behind
	// the "slot collision" pathology of §5. Zero makes carrier sense
	// unphysically instantaneous.
	TxTurnaround sim.Time
	// Fade is the per-frame, per-link residual fading model: the
	// appendix argues wideband channels reduce multipath fading "to
	// the equivalent of a few dB variation" plus occasional deep
	// frequency-selective fades, and §4.1 invokes time variation of
	// the channel to explain carrier sense occasionally beating pure
	// concurrency. Each (transmission, receiver) pair draws one dB
	// offset for the frame's lifetime.
	Fade capacity.FadeModel
}

// DefaultConfig returns 802.11a-mode parameters matching the paper's
// testbed conventions.
func DefaultConfig() Config {
	return Config{
		NoiseFloorDBm:          -95,
		CCAThresholdDBm:        -82,
		PreambleSensitivityDBm: -92,
		PreambleCaptureSINRdB:  4,
		PreambleCarrierSense:   true,
		PLCPOverhead:           20 * sim.Microsecond,
		SymbolDuration:         4 * sim.Microsecond,
		TxTurnaround:           1 * sim.Microsecond,
		Fade:                   capacity.DefaultFade(),
	}
}

// DSSSPreamble is the 802.11b long preamble + PLCP header airtime.
const DSSSPreamble = 192 * sim.Microsecond

// FrameDuration returns the airtime of a frame of the given length at
// the given rate. OFDM rates pay the PLCP overhead plus whole 4 µs
// symbols (16 service bits + 6 tail bits per 802.11a); DSSS rates pay
// the 192 µs long preamble plus the payload bit-serially at the
// nominal rate.
func (c Config) FrameDuration(bytes int, rate capacity.Rate) sim.Time {
	if rate.Modulation == capacity.DSSS {
		payloadMicros := float64(8*bytes) / rate.Mbps
		return DSSSPreamble + sim.FromMicros(payloadMicros)
	}
	bits := 16 + 8*bytes + 6
	symbols := (bits + rate.BitsPerSymbol - 1) / rate.BitsPerSymbol
	return c.PLCPOverhead + sim.Time(symbols)*c.SymbolDuration
}

// FrameKind distinguishes MAC frame types on the air.
type FrameKind int

// Frame kinds.
const (
	FrameData FrameKind = iota
	FrameACK
	FrameRTS
	FrameCTS
)

// String returns the frame kind mnemonic.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "DATA"
	case FrameACK:
		return "ACK"
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	default:
		return "?"
	}
}

// Frame is one MAC frame on the air.
type Frame struct {
	Seq   uint64
	Src   NodeID
	Dst   NodeID // Broadcast or a specific node
	Kind  FrameKind
	Bytes int
	Rate  capacity.Rate
	// NAV is the network allocation vector carried by RTS/CTS frames:
	// how long overhearers should treat the medium as reserved after
	// this frame ends.
	NAV sim.Time
}

// transmission is a frame in flight.
type transmission struct {
	frame      Frame
	start, end sim.Time
	txPowerDBm float64
	// fadeDB caches the per-receiver fading draw for this frame so
	// every power query during the frame's lifetime sees one
	// consistent channel state.
	fadeDB map[NodeID]float64
}

// RxResult reports a completed reception attempt to a listener.
type RxResult struct {
	Frame    Frame
	OK       bool    // frame decoded successfully
	SINRdB   float64 // time-averaged SINR over the locked reception
	RSSIdBm  float64 // received signal strength of the frame
	Survival float64 // modeled survival probability the success draw used
}

// reception tracks a radio locked onto a frame.
type reception struct {
	tx        *transmission
	signalMw  float64 // received signal power, linear mW
	survival  float64 // accumulated survival probability
	segStart  sim.Time
	interfMw  float64 // current other-transmission power at the radio
	weightedI float64 // time-integral of interference power (mW·ns)
}

// Radio is one node's PHY. Create via Medium.AddRadio.
type Radio struct {
	id         NodeID
	medium     *Medium
	txPowerDBm float64

	// ccaOffsetDB shifts this radio's CCA threshold from the medium
	// default (threshold asymmetry pathology).
	ccaOffsetDB float64
	// noiseOffsetDB shifts this radio's noise floor from the medium
	// default (hardware noise floor variation, footnote 20).
	noiseOffsetDB float64

	transmitting *transmission
	rx           *reception
	ccaBusy      bool

	// OnCCA, when non-nil, is called on every CCA busy/idle
	// transition. The MAC uses it to freeze and resume backoff.
	OnCCA func(busy bool)
	// OnRx, when non-nil, is called when a locked reception completes
	// (successfully or not).
	OnRx func(RxResult)
	// OnTxDone, when non-nil, is called when this radio's own
	// transmission leaves the air.
	OnTxDone func(Frame)
}

// ID returns the radio's node ID.
func (r *Radio) ID() NodeID { return r.id }

// SetCCAOffsetDB shifts this radio's CCA threshold relative to the
// medium default (positive = less sensitive, defers less).
func (r *Radio) SetCCAOffsetDB(db float64) { r.ccaOffsetDB = db }

// SetNoiseOffsetDB shifts this radio's noise floor.
func (r *Radio) SetNoiseOffsetDB(db float64) { r.noiseOffsetDB = db }

// TxPowerDBm returns the radio's transmit power.
func (r *Radio) TxPowerDBm() float64 { return r.txPowerDBm }

// Transmitting reports whether the radio is currently on the air.
func (r *Radio) Transmitting() bool { return r.transmitting != nil }

// Receiving reports whether the radio is locked on a frame.
func (r *Radio) Receiving() bool { return r.rx != nil }

// Medium is the shared wireless channel: it tracks all in-flight
// transmissions, computes per-radio power sums, and drives every
// radio's CCA and reception state.
type Medium struct {
	sim    *sim.Simulator
	ch     Channel
	cfg    Config
	src    *rng.Source
	radios map[NodeID]*Radio
	// ordered keeps radios in registration order: all medium-wide
	// iteration uses it so that callback order — and therefore every
	// simulation — is deterministic (Go map order is randomized).
	ordered []*Radio
	active  map[*transmission]struct{}
	seq     uint64
}

// NewMedium creates a medium over the given channel realization.
func NewMedium(s *sim.Simulator, ch Channel, cfg Config, src *rng.Source) *Medium {
	return &Medium{
		sim:    s,
		ch:     ch,
		cfg:    cfg,
		src:    src,
		radios: make(map[NodeID]*Radio),
		active: make(map[*transmission]struct{}),
	}
}

// Config returns the medium's PHY configuration.
func (m *Medium) Config() Config { return m.cfg }

// Sim returns the simulator driving this medium.
func (m *Medium) Sim() *sim.Simulator { return m.sim }

// AddRadio registers a radio with the given ID and transmit power.
func (m *Medium) AddRadio(id NodeID, txPowerDBm float64) *Radio {
	if _, dup := m.radios[id]; dup {
		panic(fmt.Sprintf("phy: duplicate radio %d", id))
	}
	r := &Radio{id: id, medium: m, txPowerDBm: txPowerDBm}
	m.radios[id] = r
	m.ordered = append(m.ordered, r)
	return r
}

// Radio returns the radio with the given ID, or nil.
func (m *Medium) Radio(id NodeID) *Radio { return m.radios[id] }

// rxPowerMw returns the linear received power (mW) of tx at radio r,
// including the frame's per-link fading draw.
func (m *Medium) rxPowerMw(tx *transmission, r *Radio) float64 {
	gain := m.ch.GainDB(tx.frame.Src, r.id)
	if !m.cfg.Fade.Zero() {
		fade, ok := tx.fadeDB[r.id]
		if !ok {
			fade = m.src.Normal(0, m.cfg.Fade.SigmaDB)
			p := m.cfg.Fade.OutageProb
			if oc, ok := m.ch.(OutageChannel); ok {
				p = oc.OutageProbability(tx.frame.Src, r.id)
			}
			if p > 0 && m.src.Float64() < p {
				fade -= m.cfg.Fade.OutageDepthDB
			}
			tx.fadeDB[r.id] = fade
		}
		gain += fade
	}
	return math.Pow(10, (tx.txPowerDBm+gain)/10)
}

// interferenceMwAt returns the total power (mW) of all active
// transmissions at radio r, excluding any transmission in skip and
// excluding r's own transmission.
func (m *Medium) interferenceMwAt(r *Radio, skip *transmission) float64 {
	total := 0.0
	for tx := range m.active {
		if tx == skip || tx.frame.Src == r.id {
			continue
		}
		total += m.rxPowerMw(tx, r)
	}
	return total
}

// noiseMwAt returns radio r's noise floor in mW.
func (m *Medium) noiseMwAt(r *Radio) float64 {
	return math.Pow(10, (m.cfg.NoiseFloorDBm+r.noiseOffsetDB)/10)
}

// CCABusy reports the instantaneous clear channel assessment at radio
// r: busy while transmitting, while locked on a preamble (if preamble
// carrier sense is enabled), or while total received energy exceeds
// the radio's threshold.
func (m *Medium) CCABusy(r *Radio) bool {
	if r.transmitting != nil {
		return true
	}
	if m.cfg.PreambleCarrierSense && r.rx != nil {
		return true
	}
	power := m.interferenceMwAt(r, nil)
	threshold := math.Pow(10, (m.cfg.CCAThresholdDBm+r.ccaOffsetDB)/10)
	return power > threshold
}

// CCABusy reports the radio's current clear channel assessment.
func (r *Radio) CCABusy() bool { return r.medium.CCABusy(r) }

// MediumConfig returns the PHY configuration of the medium the radio
// is attached to.
func (r *Radio) MediumConfig() Config { return r.medium.cfg }

// RSSIFromDBm returns the long-run received signal strength at this
// radio for transmissions from the given node.
func (r *Radio) RSSIFromDBm(from NodeID) float64 {
	return r.medium.RSSIdBm(from, r.id)
}

// RSSIdBm returns the long-run received signal strength at radio to
// from radio from: transmit power plus channel gain. This is the
// "sender-sender RSSI" metric of Figures 11 and 13.
func (m *Medium) RSSIdBm(from, to NodeID) float64 {
	f := m.radios[from]
	return f.txPowerDBm + m.ch.GainDB(from, to)
}

// Transmit commits radio r to sending a frame. Energy appears on the
// air after the configured TxTurnaround — once committed, the radio
// cannot abort, so two stations deciding within the turnaround window
// collide without ever sensing each other. It returns the transmission
// end time.
func (r *Radio) Transmit(frame Frame) sim.Time {
	m := r.medium
	if r.transmitting != nil {
		panic(fmt.Sprintf("phy: radio %d already transmitting", r.id))
	}
	frame.Src = r.id
	m.seq++
	frame.Seq = m.seq
	dur := m.cfg.FrameDuration(frame.Bytes, frame.Rate)
	airStart := m.sim.Now() + m.cfg.TxTurnaround
	tx := &transmission{
		frame:      frame,
		start:      airStart,
		end:        airStart + dur,
		txPowerDBm: r.txPowerDBm,
		fadeDB:     make(map[NodeID]float64),
	}
	// A radio that commits to transmitting abandons any reception in
	// progress (half-duplex).
	if r.rx != nil {
		r.rx = nil
	}
	r.transmitting = tx
	goLive := func() {
		m.active[tx] = struct{}{}
		m.onAirChange(tx, true)
	}
	if m.cfg.TxTurnaround > 0 {
		m.sim.At(airStart, goLive)
	} else {
		goLive()
	}
	m.sim.At(tx.end, func() { m.endTransmission(tx) })
	return tx.end
}

// endTransmission removes tx from the air and resolves receptions.
func (m *Medium) endTransmission(tx *transmission) {
	delete(m.active, tx)
	sender := m.radios[tx.frame.Src]
	sender.transmitting = nil
	m.onAirChange(tx, false)
	if sender.OnTxDone != nil {
		sender.OnTxDone(tx.frame)
	}
	// Resolve every radio locked on this transmission.
	for _, r := range m.ordered {
		if r.rx != nil && r.rx.tx == tx {
			m.finishReception(r)
		}
	}
	// Senders' CCA may have changed by their own TX ending.
	m.refreshCCA()
}

// onAirChange updates every radio's reception segments and attempts
// preamble locks when a transmission starts.
func (m *Medium) onAirChange(tx *transmission, started bool) {
	now := m.sim.Now()
	for _, r := range m.ordered {
		if r.rx != nil && r.rx.tx != tx {
			// Close the current interference segment and open a new
			// one reflecting the changed air.
			m.closeSegment(r, now)
			r.rx.interfMw = m.interferenceMwAt(r, r.rx.tx)
		}
	}
	if started {
		m.tryLock(tx)
	}
	m.refreshCCA()
}

// tryLock offers a newly started transmission to every idle radio.
func (m *Medium) tryLock(tx *transmission) {
	for _, r := range m.ordered {
		if r.id == tx.frame.Src || r.transmitting != nil || r.rx != nil {
			// Busy radios miss the preamble entirely: the origin of
			// the "chain collision" pathology (§5) — a node
			// transmitting over a preamble cannot defer to it.
			continue
		}
		sig := m.rxPowerMw(tx, r)
		sigDBm := 10 * math.Log10(sig)
		if sigDBm < m.cfg.PreambleSensitivityDBm {
			continue
		}
		interf := m.interferenceMwAt(r, tx)
		sinr := sig / (m.noiseMwAt(r) + interf)
		if 10*math.Log10(sinr) < m.cfg.PreambleCaptureSINRdB {
			continue
		}
		r.rx = &reception{
			tx:       tx,
			signalMw: sig,
			survival: 1,
			segStart: m.sim.Now(),
			interfMw: interf,
		}
	}
}

// closeSegment folds the interference segment [rx.segStart, now) into
// the reception's survival probability.
func (m *Medium) closeSegment(r *Radio, now sim.Time) {
	rx := r.rx
	if rx == nil || now <= rx.segStart {
		return
	}
	segDur := now - rx.segStart
	sinr := rx.signalMw / (m.noiseMwAt(r) + rx.interfMw)
	sinrDB := 10 * math.Log10(sinr)
	// Fraction of the frame's airtime this segment covers; per-byte
	// survival at this SINR raised to the bytes in the segment.
	frameDur := rx.tx.end - rx.tx.start
	frac := float64(segDur) / float64(frameDur)
	per := capacity.PER(rx.tx.frame.Rate, sinrDB, rx.tx.frame.Bytes)
	rx.survival *= math.Pow(1-per, frac)
	rx.weightedI += float64(segDur) * rx.interfMw
	rx.segStart = now
}

// finishReception resolves a completed reception on radio r.
func (m *Medium) finishReception(r *Radio) {
	rx := r.rx
	m.closeSegment(r, m.sim.Now())
	r.rx = nil
	frameDur := float64(rx.tx.end - rx.tx.start)
	avgInterf := rx.weightedI / frameDur
	sinr := rx.signalMw / (m.noiseMwAt(r) + avgInterf)
	ok := m.src.Float64() < rx.survival
	if r.OnRx != nil {
		r.OnRx(RxResult{
			Frame:    rx.tx.frame,
			OK:       ok,
			SINRdB:   10 * math.Log10(sinr),
			RSSIdBm:  10 * math.Log10(rx.signalMw),
			Survival: rx.survival,
		})
	}
}

// refreshCCA recomputes CCA for all radios and fires transitions.
func (m *Medium) refreshCCA() {
	for _, r := range m.ordered {
		busy := m.CCABusy(r)
		if busy != r.ccaBusy {
			r.ccaBusy = busy
			if r.OnCCA != nil {
				r.OnCCA(busy)
			}
		}
	}
}

// SINRdBBetween returns the SINR a frame from src would enjoy at dst
// right now, given current interference — used by oracle tooling, not
// by the protocol path.
func (m *Medium) SINRdBBetween(src, dst NodeID) float64 {
	from, to := m.radios[src], m.radios[dst]
	sig := math.Pow(10, (from.txPowerDBm+m.ch.GainDB(src, dst))/10)
	interf := m.interferenceMwAt(to, nil)
	return 10 * math.Log10(sig/(m.noiseMwAt(to)+interf))
}
