package phy

import (
	"math"
	"testing"

	"carriersense/internal/capacity"
	"carriersense/internal/rng"
	"carriersense/internal/sim"
)

// pairChannel is a two-way channel with settable gains.
type pairChannel struct {
	gains map[[2]NodeID]float64
}

func newPairChannel() *pairChannel {
	return &pairChannel{gains: make(map[[2]NodeID]float64)}
}

func (c *pairChannel) set(a, b NodeID, gainDB float64) {
	c.gains[[2]NodeID{a, b}] = gainDB
	c.gains[[2]NodeID{b, a}] = gainDB
}

func (c *pairChannel) GainDB(from, to NodeID) float64 {
	if g, ok := c.gains[[2]NodeID{from, to}]; ok {
		return g
	}
	return -300
}

// quiet returns a config without fading, for deterministic tests.
func quiet() Config {
	cfg := DefaultConfig()
	cfg.Fade = capacity.FadeModel{}
	return cfg
}

var rate6 = capacity.Table80211a[0]
var rate54 = capacity.Table80211a[7]

func TestFrameDuration(t *testing.T) {
	cfg := DefaultConfig()
	// 1400 bytes at 6 Mb/s: 16+11200+6 = 11222 bits / 24 per symbol =
	// 468 symbols → 1872 µs + 20 µs PLCP.
	if got := cfg.FrameDuration(1400, rate6); got != 1892*sim.Microsecond {
		t.Errorf("1400B @ 6M = %v, want 1892us", got)
	}
	// At 54 Mb/s: 11222/216 = 52 symbols → 208 + 20 = 228 µs.
	if got := cfg.FrameDuration(1400, rate54); got != 228*sim.Microsecond {
		t.Errorf("1400B @ 54M = %v, want 228us", got)
	}
	// An ACK at 6 Mb/s: 16+112+6 = 134 bits → 6 symbols → 44 µs.
	if got := cfg.FrameDuration(14, rate6); got != 44*sim.Microsecond {
		t.Errorf("ACK = %v, want 44us", got)
	}
}

// runLink transmits n frames over a single link at the given gain and
// returns the number delivered.
func runLink(t *testing.T, gainDB float64, rate capacity.Rate, n int, cfg Config) int {
	t.Helper()
	s := sim.New()
	ch := newPairChannel()
	ch.set(0, 1, gainDB)
	m := NewMedium(s, ch, cfg, rng.New(1))
	tx := m.AddRadio(0, 15)
	rx := m.AddRadio(1, 15)
	got := 0
	rx.OnRx = func(res RxResult) {
		if res.OK {
			got++
		}
	}
	var send func()
	sent := 0
	tx.OnTxDone = func(Frame) {
		if sent < n {
			s.After(10*sim.Microsecond, send)
		}
	}
	send = func() {
		sent++
		tx.Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate})
	}
	send()
	s.RunAll()
	return got
}

func TestCleanLinkDelivers(t *testing.T) {
	// 15 dBm - 80 dB = -65 dBm, 30 dB SNR: every frame arrives.
	if got := runLink(t, -80, rate6, 200, quiet()); got != 200 {
		t.Errorf("delivered %d/200 on clean link", got)
	}
}

func TestWeakLinkFails(t *testing.T) {
	// RSSI below preamble sensitivity: nothing even locks.
	if got := runLink(t, -120, rate6, 100, quiet()); got != 0 {
		t.Errorf("delivered %d/100 on dead link", got)
	}
}

func TestMarginalLinkPartialDelivery(t *testing.T) {
	// SNR exactly at the 6 Mb/s 50% point: roughly half arrive.
	gain := rate6.MinSNRdB + quiet().NoiseFloorDBm - 15 // SNR = MinSNRdB
	got := runLink(t, gain, rate6, 2000, quiet())
	if got < 700 || got > 1300 {
		t.Errorf("delivered %d/2000 at the PER-50 point, want ~1000", got)
	}
}

func TestRateRequiresSNR(t *testing.T) {
	// 12 dB SNR: 6 Mb/s clean, 54 Mb/s dead.
	gain := 12 + quiet().NoiseFloorDBm - 15
	if got := runLink(t, gain, rate6, 200, quiet()); got < 195 {
		t.Errorf("6M at 12dB delivered %d/200", got)
	}
	if got := runLink(t, gain, rate54, 200, quiet()); got > 5 {
		t.Errorf("54M at 12dB delivered %d/200, want ~0", got)
	}
}

func TestFadingReducesMarginalDelivery(t *testing.T) {
	// With outage fading, even a strong link loses ~2% of frames.
	cfg := DefaultConfig()
	cfg.Fade = capacity.FadeModel{SigmaDB: 0, OutageProb: 0.1, OutageDepthDB: 40}
	got := runLink(t, -70, rate6, 2000, cfg)
	if got > 1900 || got < 1700 {
		t.Errorf("delivered %d/2000 under 10%% deep outage, want ~1800", got)
	}
}

// collisionHarness: two senders, one receiver in the middle.
func collisionHarness(gain01, gain21, gain02 float64, cfg Config) (*sim.Simulator, *Medium, [3]*Radio) {
	s := sim.New()
	ch := newPairChannel()
	ch.set(0, 1, gain01) // sender 0 -> receiver 1
	ch.set(2, 1, gain21) // sender 2 -> receiver 1
	ch.set(0, 2, gain02) // sender-sender path
	m := NewMedium(s, ch, cfg, rng.New(2))
	return s, m, [3]*Radio{m.AddRadio(0, 15), m.AddRadio(1, 15), m.AddRadio(2, 15)}
}

func TestCollisionDestroysFrame(t *testing.T) {
	s, _, r := collisionHarness(-80, -80, -300, quiet())
	got := 0
	r[1].OnRx = func(res RxResult) {
		if res.OK {
			got++
		}
	}
	// Equal-power overlap: SINR ~0 dB, both frames die.
	s.At(0, func() { r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.At(100*sim.Microsecond, func() { r[2].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.RunAll()
	if got != 0 {
		t.Errorf("delivered %d frames through a full collision", got)
	}
}

func TestCaptureStrongFirstFrameSurvives(t *testing.T) {
	// The first frame is 25 dB stronger: it locks first and survives
	// the weak overlap.
	s, _, r := collisionHarness(-60, -85, -300, quiet())
	okFrom := map[NodeID]int{}
	r[1].OnRx = func(res RxResult) {
		if res.OK {
			okFrom[res.Frame.Src]++
		}
	}
	s.At(0, func() { r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.At(100*sim.Microsecond, func() { r[2].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.RunAll()
	if okFrom[0] != 1 {
		t.Errorf("strong first frame lost: %v", okFrom)
	}
	if okFrom[2] != 0 {
		t.Errorf("weak overlapped frame delivered: %v", okFrom)
	}
}

func TestNoReceiveAbort(t *testing.T) {
	// A *stronger* frame arriving second must NOT steal the receiver:
	// the radio stays locked on the first (weak) frame — §4's "did not
	// have receive abort enabled".
	s, _, r := collisionHarness(-85, -60, -300, quiet())
	okFrom := map[NodeID]int{}
	r[1].OnRx = func(res RxResult) {
		if res.OK {
			okFrom[res.Frame.Src]++
		}
	}
	s.At(0, func() { r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.At(100*sim.Microsecond, func() { r[2].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.RunAll()
	if okFrom[2] != 0 {
		t.Errorf("receiver aborted to the stronger frame: %v", okFrom)
	}
}

func TestTransmitterMissesPreambles(t *testing.T) {
	// A radio that is transmitting cannot lock an incoming frame — the
	// root of chain collisions (§5).
	s, _, r := collisionHarness(-80, -80, -70, quiet())
	got := 0
	r[0].OnRx = func(res RxResult) { got++ }
	s.At(0, func() { r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	// Frame towards radio 0 while it transmits.
	s.At(50*sim.Microsecond, func() { r[2].Transmit(Frame{Dst: Broadcast, Bytes: 200, Rate: rate6}) })
	s.RunAll()
	if got != 0 {
		t.Errorf("transmitting radio locked a frame")
	}
}

func TestCCAEnergyDetection(t *testing.T) {
	s, _, r := collisionHarness(-80, -80, -75, quiet())
	if r[2].CCABusy() {
		t.Error("CCA busy on idle medium")
	}
	transitions := []bool{}
	r[2].OnCCA = func(b bool) { transitions = append(transitions, b) }
	s.At(0, func() {
		r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6})
	})
	s.At(10*sim.Microsecond, func() {
		// -75 dB gain: sensed power -60 dBm, well above -82: busy.
		if !r[2].CCABusy() {
			t.Error("CCA idle during strong transmission")
		}
	})
	s.RunAll()
	if r[2].CCABusy() {
		t.Error("CCA busy after air cleared")
	}
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Errorf("transitions = %v, want [busy, idle]", transitions)
	}
}

func TestCCAThresholdOffset(t *testing.T) {
	// Threshold asymmetry (§5): sensed power is -60 dBm; a +25 dB
	// offset raises this radio's busy threshold to -57 dBm, so it no
	// longer defers while an unmodified radio would. Preamble carrier
	// sense is disabled so the energy path alone decides.
	cfg := quiet()
	cfg.PreambleCarrierSense = false
	s, _, r := collisionHarness(-80, -80, -75, cfg)
	r[2].SetCCAOffsetDB(25)
	s.At(0, func() { r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.At(10*sim.Microsecond, func() {
		if r[2].CCABusy() {
			t.Error("offset radio should ignore -60 dBm energy")
		}
		r[2].SetCCAOffsetDB(0)
		if !r[2].CCABusy() {
			t.Error("unmodified threshold should report busy at -60 dBm")
		}
		r[2].SetCCAOffsetDB(25)
	})
	s.RunAll()
}

func TestPreambleCarrierSense(t *testing.T) {
	// Sensed power below the energy threshold but above preamble
	// sensitivity: CCA busy only because the radio locked the frame.
	cfg := quiet()
	s, _, r := collisionHarness(-80, -80, -100, cfg) // sensed -85 dBm < -82
	s.At(0, func() { r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.At(30*sim.Microsecond, func() {
		if !r[2].CCABusy() {
			t.Error("preamble CS should mark busy while locked")
		}
	})
	s.RunAll()

	// Same geometry with preamble CS disabled: energy alone is below
	// threshold, so the medium looks idle.
	cfg.PreambleCarrierSense = false
	s2, _, r2 := collisionHarness(-80, -80, -100, cfg)
	s2.At(0, func() { r2[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s2.At(30*sim.Microsecond, func() {
		if r2[2].CCABusy() {
			t.Error("energy-only CCA busy below threshold")
		}
	})
	s2.RunAll()
}

func TestRSSIdBm(t *testing.T) {
	s := sim.New()
	ch := newPairChannel()
	ch.set(0, 1, -77)
	m := NewMedium(s, ch, quiet(), rng.New(3))
	m.AddRadio(0, 15)
	m.AddRadio(1, 15)
	if got := m.RSSIdBm(0, 1); math.Abs(got-(-62)) > 1e-9 {
		t.Errorf("RSSI = %v, want -62", got)
	}
	if got := m.Radio(1).RSSIFromDBm(0); math.Abs(got-(-62)) > 1e-9 {
		t.Errorf("radio RSSI = %v", got)
	}
}

func TestNoiseOffsetShiftsDelivery(t *testing.T) {
	// Raising the receiver's noise floor by 12 dB turns a clean 12 dB
	// link into a dead one at 6 Mb/s.
	s := sim.New()
	ch := newPairChannel()
	gain := 12 + quiet().NoiseFloorDBm - 15
	ch.set(0, 1, gain)
	m := NewMedium(s, ch, quiet(), rng.New(4))
	tx := m.AddRadio(0, 15)
	rx := m.AddRadio(1, 15)
	rx.SetNoiseOffsetDB(12)
	got := 0
	rx.OnRx = func(res RxResult) {
		if res.OK {
			got++
		}
	}
	s.At(0, func() { tx.Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.RunAll()
	if got != 0 {
		t.Errorf("delivered with a 12 dB noise penalty at 0 dB effective SNR margin")
	}
}

func TestDoubleTransmitPanics(t *testing.T) {
	s := sim.New()
	ch := newPairChannel()
	m := NewMedium(s, ch, quiet(), rng.New(5))
	r := m.AddRadio(0, 15)
	r.Transmit(Frame{Dst: Broadcast, Bytes: 100, Rate: rate6})
	defer func() {
		if recover() == nil {
			t.Error("double transmit did not panic")
		}
	}()
	r.Transmit(Frame{Dst: Broadcast, Bytes: 100, Rate: rate6})
}

func TestDuplicateRadioPanics(t *testing.T) {
	s := sim.New()
	m := NewMedium(s, newPairChannel(), quiet(), rng.New(6))
	m.AddRadio(0, 15)
	defer func() {
		if recover() == nil {
			t.Error("duplicate radio did not panic")
		}
	}()
	m.AddRadio(0, 15)
}

func TestFrameKindString(t *testing.T) {
	if FrameData.String() != "DATA" || FrameACK.String() != "ACK" ||
		FrameRTS.String() != "RTS" || FrameCTS.String() != "CTS" || FrameKind(9).String() != "?" {
		t.Error("frame kind names")
	}
}

func TestHalfDuplexDropsReception(t *testing.T) {
	// A radio that starts transmitting abandons a reception in
	// progress.
	s, _, r := collisionHarness(-80, -80, -70, quiet())
	got := 0
	r[2].OnRx = func(res RxResult) { got++ }
	s.At(0, func() { r[0].Transmit(Frame{Dst: Broadcast, Bytes: 1400, Rate: rate6}) })
	s.At(50*sim.Microsecond, func() {
		if !r[2].Receiving() {
			t.Error("radio 2 should have locked radio 0's frame")
		}
		r[2].Transmit(Frame{Dst: Broadcast, Bytes: 100, Rate: rate6})
		if r[2].Receiving() {
			t.Error("transmit did not abandon the reception")
		}
	})
	s.RunAll()
	if got != 0 {
		t.Errorf("abandoned reception still completed: %d", got)
	}
}

func TestFrameDurationDSSS(t *testing.T) {
	cfg := DefaultConfig()
	r1 := capacity.Table80211b[0] // 1 Mb/s
	// 1400 B at 1 Mb/s: 192 µs preamble + 11200 µs payload.
	if got := cfg.FrameDuration(1400, r1); got != 11392*sim.Microsecond {
		t.Errorf("1400B @ 1M DSSS = %v, want 11392us", got)
	}
	r11 := capacity.Table80211b[3] // 11 Mb/s
	want := DSSSPreamble + sim.FromMicros(float64(8*1400)/11)
	if got := cfg.FrameDuration(1400, r11); got != want {
		t.Errorf("1400B @ 11M DSSS = %v, want %v", got, want)
	}
	// DSSS 1 Mb/s is far slower on the air than OFDM 6 Mb/s.
	if cfg.FrameDuration(1400, r1) < 5*cfg.FrameDuration(1400, capacity.Table80211a[0]) {
		t.Error("DSSS/OFDM airtime relation wrong")
	}
}

// linChannel implements LinearChannel over a flat dB gain, with the
// linear value precomputed — the testbed's gain-matrix shape in
// miniature.
type linChannel struct {
	db  float64
	lin float64
}

func newLinChannel(db float64) linChannel {
	return linChannel{db: db, lin: DBToLin(db)}
}

func (c linChannel) GainDB(from, to NodeID) float64  { return c.db }
func (c linChannel) GainLin(from, to NodeID) float64 { return c.lin }

// TestLinearChannelMatchesGeneric pins the LinearChannel fast path to
// the generic dB path: the same scenario over the same gains must
// deliver identically whichever interface the channel exposes.
func TestLinearChannelMatchesGeneric(t *testing.T) {
	run := func(ch Channel) (delivered int, sinr float64) {
		src := rng.New(9)
		s := sim.New()
		m := NewMedium(s, ch, quiet(), src.Split())
		tx := m.AddRadio(1, 15)
		rx := m.AddRadio(2, 15)
		rx.OnRx = func(res RxResult) {
			if res.OK {
				delivered++
				sinr = res.SINRdB
			}
		}
		for i := 0; i < 20; i++ {
			s.After(sim.Time(i)*3*sim.Millisecond, func() {
				if !tx.Transmitting() {
					tx.Transmit(Frame{Dst: Broadcast, Kind: FrameData, Bytes: 1400, Rate: rate6})
				}
			})
		}
		s.RunAll()
		return delivered, sinr
	}
	lin := newLinChannel(-70)
	genericDelivered, genericSINR := run(dbOnly{lin})
	linDelivered, linSINR := run(lin)
	if genericDelivered != linDelivered {
		t.Fatalf("delivery differs: generic %d, linear %d", genericDelivered, linDelivered)
	}
	if math.Abs(genericSINR-linSINR) > 1e-9 {
		t.Errorf("SINR differs: generic %v, linear %v", genericSINR, linSINR)
	}
}

// dbOnly hides the GainLin method so the medium takes the generic path.
type dbOnly struct{ ch linChannel }

func (c dbOnly) GainDB(from, to NodeID) float64 { return c.ch.GainDB(from, to) }

// TestPerFrameAllocs guards the per-frame PHY+MAC allocation budget: a
// warm saturated run — pooled transmissions, embedded receptions,
// recycled event slots, pre-bound timer callbacks — must not allocate
// per frame. This is the hot-path pin behind the simulator lane of
// BENCH_<date>.json.
func TestPerFrameAllocs(t *testing.T) {
	src := rng.New(3)
	s := sim.New()
	cfg := DefaultConfig() // fading on: the draw path must be alloc-free too
	m := NewMedium(s, newLinChannel(-60), cfg, src.Split())
	tx := m.AddRadio(1, 15)
	rx := m.AddRadio(2, 15)
	_ = rx
	frames := 0
	tx.OnTxDone = func(Frame) {
		frames++
		tx.Transmit(Frame{Dst: Broadcast, Kind: FrameData, Bytes: 1400, Rate: rate6})
	}
	tx.Transmit(Frame{Dst: Broadcast, Kind: FrameData, Bytes: 1400, Rate: rate6})
	until := sim.Time(0)
	run := func() {
		until += 50 * sim.Millisecond
		s.Run(until)
	}
	run() // warm the pools
	framesBefore := frames
	allocs := testing.AllocsPerRun(5, run)
	framesPerRun := float64(frames-framesBefore) / 6 // warmup call + 5 measured
	if framesPerRun < 10 {
		t.Fatalf("run too short: %.0f frames per run", framesPerRun)
	}
	if perFrame := allocs / framesPerRun; perFrame > 0.01 {
		t.Errorf("PHY path allocates %.3f objects/frame (%.0f over %.0f frames), want ~0",
			perFrame, allocs, framesPerRun)
	}
}

// TestAddRadioDuringTransmission covers late radio registration while
// a faded transmission is in flight: the newcomer's ordinal must index
// safely into the in-flight fade caches.
func TestAddRadioDuringTransmission(t *testing.T) {
	src := rng.New(5)
	s := sim.New()
	cfg := DefaultConfig() // fading on
	m := NewMedium(s, newLinChannel(-70), cfg, src.Split())
	tx := m.AddRadio(1, 15)
	m.AddRadio(2, 15)
	tx.Transmit(Frame{Dst: Broadcast, Kind: FrameData, Bytes: 1400, Rate: rate6})
	s.Run(50 * sim.Microsecond) // frame is on the air
	late := m.AddRadio(3, 15)
	late.CCABusy() // queries rxPowerMw for the in-flight frame
	s.RunAll()
}
