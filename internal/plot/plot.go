// Package plot renders the reproduction's figures as text: ASCII line
// charts for the throughput-versus-D curves, scatter plots for the
// testbed experiments, shaded heatmaps for the capacity landscapes,
// plus CSV writers and aligned tables for machine-readable output.
//
// The goal is not publication graphics but faithful, inspectable
// reproductions of each figure's *shape* directly in a terminal or a
// CI log.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve of a line chart or one point class of a
// scatter plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune // marker used in ASCII rendering; 0 picks automatically
}

// defaultMarkers cycles when series don't specify one.
var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart is a collection of series with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// FlipX reverses the x-axis (Figures 11 and 13 plot RSSI
	// decreasing to the right).
	FlipX bool
	// VLines draws vertical reference lines at the given x values
	// (e.g. the carrier sense threshold of Figure 5).
	VLines []float64
	// YMin/YMax fix the y range when non-nil.
	YMin, YMax *float64
}

// Render draws the chart into an ASCII canvas of the given size
// (interior plotting area; axes and legend are added around it).
func (c *Chart) Render(w io.Writer, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if !isFinite(s.X[i]) || !isFinite(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	for _, v := range c.VLines {
		xmin = math.Min(xmin, v)
		xmax = math.Max(xmax, v)
	}
	if !isFinite(xmin) || !isFinite(xmax) {
		fmt.Fprintf(w, "%s: no data\n", c.Title)
		return
	}
	if c.YMin != nil {
		ymin = *c.YMin
	}
	if c.YMax != nil {
		ymax = *c.YMax
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	xToCol := func(x float64) int {
		f := (x - xmin) / (xmax - xmin)
		if c.FlipX {
			f = 1 - f
		}
		col := int(f * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}
	yToRow := func(y float64) int {
		f := (y - ymin) / (ymax - ymin)
		row := int((1 - f) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	for _, v := range c.VLines {
		col := xToCol(v)
		for row := 0; row < height; row++ {
			grid[row][col] = '|'
		}
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			if !isFinite(s.X[i]) || !isFinite(s.Y[i]) {
				continue
			}
			y := s.Y[i]
			if y < ymin {
				y = ymin
			}
			if y > ymax {
				y = ymax
			}
			grid[yToRow(y)][xToCol(s.X[i])] = marker
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	yhi := fmt.Sprintf("%.3g", ymax)
	ylo := fmt.Sprintf("%.3g", ymin)
	labelW := len(yhi)
	if len(ylo) > labelW {
		labelW = len(ylo)
	}
	for row := 0; row < height; row++ {
		label := strings.Repeat(" ", labelW)
		switch row {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yhi)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, ylo)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	xlo, xhi := xmin, xmax
	if c.FlipX {
		xlo, xhi = xmax, xmin
	}
	leftLabel := fmt.Sprintf("%.3g", xlo)
	rightLabel := fmt.Sprintf("%.3g", xhi)
	pad := width - len(leftLabel) - len(rightLabel)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelW), leftLabel, strings.Repeat(" ", pad), rightLabel)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "   "))
	}
}

// WriteCSV emits the chart's series as CSV with one x column per
// series pair (x_name, y_name), suitable for external replotting.
func (c *Chart) WriteCSV(w io.Writer) error {
	cols := make([]string, 0, 2*len(c.Series))
	maxLen := 0
	for _, s := range c.Series {
		cols = append(cols, "x_"+sanitize(s.Name), "y_"+sanitize(s.Name))
		if len(s.X) > maxLen {
			maxLen = len(s.X)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(cols))
		for _, s := range c.Series {
			if i < len(s.X) {
				row = append(row, fmt.Sprintf("%g", s.X[i]), fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Heatmap renders a matrix as shaded ASCII. Values are mapped linearly
// onto the shade ramp; NaN cells render as spaces.
type Heatmap struct {
	Title  string
	Values [][]float64
	// Ramp is the shade characters from low to high; empty uses a
	// default 10-step ramp.
	Ramp []rune
	// Overlay, when non-nil, is called per cell after shading and may
	// return a replacement rune (0 keeps the shade) — used to mark the
	// sender and interferer positions on landscape plots.
	Overlay func(row, col int) rune
}

// defaultRamp is a 10-step density ramp.
var defaultRamp = []rune(" .:-=+*#%@")

// Render draws the heatmap, one character per cell.
func (h *Heatmap) Render(w io.Writer) {
	ramp := h.Ramp
	if len(ramp) == 0 {
		ramp = defaultRamp
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Values {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if h.Title != "" {
		fmt.Fprintf(w, "%s\n", h.Title)
	}
	if !isFinite(lo) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if lo == hi {
		hi = lo + 1
	}
	for ri, row := range h.Values {
		var b strings.Builder
		for ci, v := range row {
			var r rune = ' '
			if !math.IsNaN(v) {
				idx := int((v - lo) / (hi - lo) * float64(len(ramp)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
				r = ramp[idx]
			}
			if h.Overlay != nil {
				if o := h.Overlay(ri, ci); o != 0 {
					r = o
				}
			}
			b.WriteRune(r)
		}
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintf(w, "scale: %s = %.3g .. %s = %.3g\n", string(ramp[0]), lo, string(ramp[len(ramp)-1]), hi)
}

// Table renders aligned text tables, used for the §3.2.5 efficiency
// tables and the §4 summary tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table with column alignment.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Percent formats a ratio as a percentage string like "96%".
func Percent(x float64) string {
	return fmt.Sprintf("%.0f%%", 100*x)
}
