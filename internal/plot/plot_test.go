package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}, Marker: 'L'},
			{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1.5, 1.5, 1.5, 1.5}, Marker: 'F'},
		},
		VLines: []float64{2},
	}
	var b strings.Builder
	c.Render(&b, 40, 10)
	out := b.String()
	for _, want := range []string{"test chart", "L", "F", "|", "legend", "linear", "flat", "x: x"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
}

func TestChartRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	var b strings.Builder
	c.Render(&b, 40, 10) // must not panic
	if !strings.Contains(b.String(), "no data") {
		t.Errorf("empty chart output: %s", b.String())
	}
}

func TestChartSkipsNonFinite(t *testing.T) {
	c := Chart{
		Series: []Series{{
			Name: "s",
			X:    []float64{0, 1, 2},
			Y:    []float64{1, math.Inf(-1), math.NaN()},
		}},
	}
	var b strings.Builder
	c.Render(&b, 30, 8) // must not panic
	if b.Len() == 0 {
		t.Error("no output")
	}
}

func TestChartFlipX(t *testing.T) {
	mk := func(flip bool) string {
		c := Chart{
			FlipX: flip,
			Series: []Series{{
				Name: "s", Marker: '#',
				X: []float64{0, 10},
				Y: []float64{0, 10},
			}},
		}
		var b strings.Builder
		c.Render(&b, 21, 5)
		return b.String()
	}
	normal, flipped := mk(false), mk(true)
	if normal == flipped {
		t.Error("FlipX had no effect")
	}
	// The flipped x-axis labels run high to low.
	if !strings.Contains(flipped, "10") {
		t.Errorf("flipped output:\n%s", flipped)
	}
}

func TestChartFixedYRange(t *testing.T) {
	ymin, ymax := 0.0, 100.0
	c := Chart{
		YMin: &ymin, YMax: &ymax,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{5, 6}}},
	}
	var b strings.Builder
	c.Render(&b, 30, 8)
	if !strings.Contains(b.String(), "100") {
		t.Errorf("fixed y max not honored:\n%s", b.String())
	}
}

func TestChartCSV(t *testing.T) {
	c := Chart{
		Series: []Series{
			{Name: "a b", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Name: "c", X: []float64{5}, Y: []float64{6}},
		},
	}
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), b.String())
	}
	if lines[0] != "x_a_b,y_a_b,x_c,y_c" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,3,5,6" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,4,," {
		t.Errorf("row 2 = %q (short series must pad)", lines[2])
	}
}

func TestHeatmapRender(t *testing.T) {
	h := Heatmap{
		Title: "map",
		Values: [][]float64{
			{0, 1, 2},
			{3, 4, 5},
		},
	}
	var b strings.Builder
	h.Render(&b)
	out := b.String()
	if !strings.Contains(out, "map") || !strings.Contains(out, "scale:") {
		t.Errorf("heatmap output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + 2 rows + scale
		t.Errorf("heatmap lines = %d", len(lines))
	}
	// Low cell uses the first ramp rune, high cell the last.
	if !strings.HasPrefix(lines[1], " ") {
		t.Errorf("low cell shading: %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], "@") {
		t.Errorf("high cell shading: %q", lines[2])
	}
}

func TestHeatmapNaNAndOverlay(t *testing.T) {
	h := Heatmap{
		Values: [][]float64{{math.NaN(), 1}, {2, 3}},
		Overlay: func(row, col int) rune {
			if row == 0 && col == 0 {
				return 'S'
			}
			return 0
		},
	}
	var b strings.Builder
	h.Render(&b)
	if !strings.Contains(b.String(), "S") {
		t.Errorf("overlay not applied:\n%s", b.String())
	}
}

func TestHeatmapEmpty(t *testing.T) {
	h := Heatmap{Values: [][]float64{{math.NaN()}}}
	var b strings.Builder
	h.Render(&b)
	if !strings.Contains(b.String(), "no data") {
		t.Errorf("empty heatmap: %s", b.String())
	}
}

func TestHeatmapConstant(t *testing.T) {
	h := Heatmap{Values: [][]float64{{5, 5}, {5, 5}}}
	var b strings.Builder
	h.Render(&b) // must not divide by zero
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "results",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "3.5")
	tbl.AddRow("a-much-longer-name", "10")
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset in the
	// header and data rows.
	hdrIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "3.5")
	if hdrIdx != rowIdx {
		t.Errorf("misaligned columns: header %d, row %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.961); got != "96%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(1); got != "100%" {
		t.Errorf("Percent = %q", got)
	}
}
