package prov

// Bench snapshot diffing: BENCH_<date>.json files are the repo's perf
// trajectory (one per CI run, one committed per PR). This file flattens
// a snapshot into named lanes and compares two snapshots lane-by-lane,
// so `cs bench diff OLD NEW` replaces eyeballing uploaded artifacts and
// CI can gate on regressions in named headline metrics.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// BenchSnapshot is one parsed BENCH_*.json: header strings plus every
// numeric value flattened into dot-separated lanes, e.g.
// "sim.events_per_sec", "dist.local_us_per_shard",
// "sampling.scenarios.curves.antithetic_savings_pct",
// "benchmarks.BenchmarkPacketSimSecond.ns_per_op".
type BenchSnapshot struct {
	Path   string
	Header map[string]string
	Lanes  map[string]float64
}

// Label names a snapshot for the report: commit (+dirty) when the
// header records one, else the snapshot date, else the file path.
func (s *BenchSnapshot) Label() string {
	if c := s.Header["commit"]; c != "" {
		if len(c) > 12 {
			c = c[:12]
		}
		if s.Header["dirty"] == "true" {
			c += "+dirty"
		}
		return c
	}
	if d := s.Header["date"]; d != "" {
		return d
	}
	return s.Path
}

// LoadBench parses a BENCH_*.json snapshot. The flattener is generic —
// numbers become lanes, nested objects extend the prefix, and arrays of
// objects use their "name"/"scenario" member as the path segment — so
// new lanes future PRs add are diffable without touching this code.
func LoadBench(path string) (*BenchSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("prov: parse %s: %w", path, err)
	}
	s := &BenchSnapshot{Path: path, Header: map[string]string{}, Lanes: map[string]float64{}}
	for key, val := range doc {
		switch v := val.(type) {
		case string:
			s.Header[key] = v
		case bool:
			s.Header[key] = fmt.Sprintf("%v", v)
		default:
			flattenLanes(key, val, s.Lanes)
		}
	}
	if len(s.Lanes) == 0 {
		return nil, fmt.Errorf("prov: %s has no numeric lanes — not a bench snapshot?", path)
	}
	return s, nil
}

func flattenLanes(prefix string, val any, out map[string]float64) {
	switch v := val.(type) {
	case float64:
		out[prefix] = v
	case map[string]any:
		for k, sub := range v {
			flattenLanes(prefix+"."+k, sub, out)
		}
	case []any:
		for i, elem := range v {
			obj, ok := elem.(map[string]any)
			if !ok {
				continue
			}
			seg := fmt.Sprintf("%d", i)
			var idKey string
			for _, key := range []string{"name", "scenario"} {
				if id, ok := obj[key].(string); ok {
					seg, idKey = id, key
					break
				}
			}
			for k, sub := range obj {
				if k == idKey {
					continue
				}
				flattenLanes(prefix+"."+seg+"."+k, sub, out)
			}
		}
	}
}

// higherBetter reports whether a lane improves upward. Throughput,
// hit-rate, and savings lanes do; everything else (ns/op, us/shard,
// allocations, bytes) improves downward. Paper-replication metric
// lanes (efficiencies, fractions, fitted constants) are correctness
// checks, not perf — diff still shows them, but direction only matters
// when a gate or threshold flags them, and drift in either direction
// is worth seeing.
func higherBetter(lane string) bool {
	for _, kw := range []string{"per_sec", "events/sec", "hit_rate", "savings_pct"} {
		if strings.Contains(lane, kw) {
			return true
		}
	}
	return false
}

// DiffRow is one lane's comparison. Regression is the signed fraction
// of change in the *bad* direction: +0.25 means 25% worse, -0.10 means
// 10% better, regardless of whether the lane improves up or down.
type DiffRow struct {
	Lane       string
	Old, New   float64
	Regression float64
	OnlyIn     string // "old" / "new" when the lane exists in one side
}

// DiffOptions tunes the comparison.
type DiffOptions struct {
	// ReportThreshold hides rows whose |Regression| is below it
	// (default 0.10). Zero-valued options get defaults; use All to
	// show everything.
	ReportThreshold float64
	// All reports every lane regardless of threshold.
	All bool
	// Gates maps lane name → max tolerated regression fraction. A
	// gated lane missing from the new snapshot also fails the gate.
	Gates map[string]float64
}

// BenchDiff is the comparison of two snapshots.
type BenchDiff struct {
	Old, New     *BenchSnapshot
	Rows         []DiffRow // threshold-exceeding (or all) lanes, worst first
	GateFailures []string
	Compared     int // lanes present in both snapshots
}

// DiffSnapshots compares old→new lane-by-lane.
func DiffSnapshots(oldS, newS *BenchSnapshot, opts DiffOptions) *BenchDiff {
	if opts.ReportThreshold == 0 {
		opts.ReportThreshold = 0.10
	}
	d := &BenchDiff{Old: oldS, New: newS}
	lanes := make([]string, 0, len(oldS.Lanes))
	for lane := range oldS.Lanes {
		lanes = append(lanes, lane)
	}
	sort.Strings(lanes)
	for _, lane := range lanes {
		ov := oldS.Lanes[lane]
		nv, ok := newS.Lanes[lane]
		if !ok {
			d.Rows = append(d.Rows, DiffRow{Lane: lane, Old: ov, OnlyIn: "old"})
			continue
		}
		d.Compared++
		var reg float64
		switch {
		case ov == nv:
			reg = 0
		case ov == 0:
			reg = math.Inf(1)
			if (nv > 0) == higherBetter(lane) {
				reg = math.Inf(-1)
			}
		default:
			reg = (nv - ov) / math.Abs(ov)
			if higherBetter(lane) {
				reg = -reg
			}
		}
		if opts.All || math.Abs(reg) >= opts.ReportThreshold {
			d.Rows = append(d.Rows, DiffRow{Lane: lane, Old: ov, New: nv, Regression: reg})
		}
		if limit, gated := opts.Gates[lane]; gated && reg > limit {
			d.GateFailures = append(d.GateFailures,
				fmt.Sprintf("%s regressed %+.1f%% (limit %+.1f%%): %.6g -> %.6g",
					lane, reg*100, limit*100, ov, nv))
		}
	}
	newOnly := make([]string, 0)
	for lane := range newS.Lanes {
		if _, ok := oldS.Lanes[lane]; !ok {
			newOnly = append(newOnly, lane)
		}
	}
	sort.Strings(newOnly)
	for _, lane := range newOnly {
		d.Rows = append(d.Rows, DiffRow{Lane: lane, New: newS.Lanes[lane], OnlyIn: "new"})
	}
	for lane, limit := range opts.Gates {
		_, inOld := oldS.Lanes[lane]
		_, inNew := newS.Lanes[lane]
		if inOld && !inNew {
			d.GateFailures = append(d.GateFailures,
				fmt.Sprintf("%s gated (limit %+.1f%%) but absent from new snapshot", lane, limit*100))
		} else if !inOld {
			d.GateFailures = append(d.GateFailures,
				fmt.Sprintf("%s gated (limit %+.1f%%) but absent from old snapshot", lane, limit*100))
		}
	}
	sort.SliceStable(d.Rows, func(i, j int) bool {
		// Present-in-both rows first, worst regression first; one-sided
		// rows trail in lane order.
		ri, rj := d.Rows[i], d.Rows[j]
		if (ri.OnlyIn == "") != (rj.OnlyIn == "") {
			return ri.OnlyIn == ""
		}
		if ri.OnlyIn != "" {
			return ri.Lane < rj.Lane
		}
		if ri.Regression != rj.Regression {
			return ri.Regression > rj.Regression
		}
		return ri.Lane < rj.Lane
	})
	sort.Strings(d.GateFailures)
	return d
}

// WriteMarkdown renders the diff as a markdown report naming both
// revisions.
func (d *BenchDiff) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# Bench diff: %s -> %s\n\n", d.Old.Label(), d.New.Label())
	fmt.Fprintf(w, "- old: `%s` (%s, %s)\n", d.Old.Path, d.Old.Header["date"], d.Old.Header["go"])
	fmt.Fprintf(w, "- new: `%s` (%s, %s)\n", d.New.Path, d.New.Header["date"], d.New.Header["go"])
	if oc, nc := d.Old.Header["cpu"], d.New.Header["cpu"]; oc != nc {
		fmt.Fprintf(w, "- **cpu differs** (old %q, new %q): raw-time lanes are not comparable\n", oc, nc)
	}
	fmt.Fprintf(w, "- %d lanes compared\n\n", d.Compared)
	if len(d.Rows) == 0 {
		fmt.Fprintf(w, "No lane changed beyond the report threshold.\n")
	} else {
		fmt.Fprintf(w, "| lane | old | new | change | direction |\n")
		fmt.Fprintf(w, "|------|----:|----:|-------:|-----------|\n")
		for _, r := range d.Rows {
			switch r.OnlyIn {
			case "old":
				fmt.Fprintf(w, "| %s | %.6g | — | | removed |\n", r.Lane, r.Old)
			case "new":
				fmt.Fprintf(w, "| %s | — | %.6g | | added |\n", r.Lane, r.New)
			default:
				dir := "lower is better"
				if higherBetter(r.Lane) {
					dir = "higher is better"
				}
				verdict := ""
				switch {
				case r.Regression > 0:
					verdict = " ⚠ worse"
				case r.Regression < 0:
					verdict = " ✓ better"
				}
				fmt.Fprintf(w, "| %s | %.6g | %.6g | %+.1f%%%s | %s |\n",
					r.Lane, r.Old, r.New, r.Regression*100, verdict, dir)
			}
		}
	}
	if len(d.GateFailures) > 0 {
		fmt.Fprintf(w, "\n## Gate failures\n\n")
		for _, g := range d.GateFailures {
			fmt.Fprintf(w, "- %s\n", g)
		}
	}
	return nil
}
