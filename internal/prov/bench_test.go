package prov

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldSnapshot = `{
  "date": "2026-08-01T00:00:00Z",
  "go": "go1.24.0",
  "bench": "go test -bench .",
  "cpu": "TestCPU",
  "commit": "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
  "dirty": false,
  "benchmarks": [
    {"name": "BenchmarkPacketSimSecond", "iterations": 1, "ns_per_op": 1000, "metrics": {"allocs/op": 100}}
  ],
  "sim": {
    "events_per_sec": 1000000,
    "allocs_per_event": 0.5
  },
  "dist": {
    "local_us_per_shard": 100,
    "prefetch_hit_rate": 1.0
  },
  "sampling": {
    "target_relerr": 0.005,
    "scenarios": [
      {"scenario": "curves", "plain": 1000, "antithetic": 500, "antithetic_savings_pct": 50.0}
    ]
  }
}`

const newSnapshot = `{
  "date": "2026-08-08T00:00:00Z",
  "go": "go1.24.0",
  "bench": "go test -bench .",
  "cpu": "TestCPU",
  "commit": "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
  "dirty": true,
  "benchmarks": [
    {"name": "BenchmarkPacketSimSecond", "iterations": 1, "ns_per_op": 1300, "metrics": {"allocs/op": 100}}
  ],
  "sim": {
    "events_per_sec": 2000000,
    "allocs_per_event": 1.5
  },
  "dist": {
    "local_us_per_shard": 101,
    "prefetch_hit_rate": 0.5
  },
  "sampling": {
    "target_relerr": 0.005,
    "scenarios": [
      {"scenario": "curves", "plain": 1000, "antithetic": 500, "antithetic_savings_pct": 50.0}
    ]
  }
}`

func writeSnapshots(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_old.json")
	newPath := filepath.Join(dir, "BENCH_new.json")
	if err := os.WriteFile(oldPath, []byte(oldSnapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newSnapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	return oldPath, newPath
}

func TestLoadBenchFlattensLanes(t *testing.T) {
	oldPath, _ := writeSnapshots(t)
	s, err := LoadBench(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"sim.events_per_sec":                                    1000000,
		"dist.prefetch_hit_rate":                                1.0,
		"benchmarks.BenchmarkPacketSimSecond.ns_per_op":         1000,
		"benchmarks.BenchmarkPacketSimSecond.metrics.allocs/op": 100,
		"sampling.scenarios.curves.antithetic_savings_pct":      50.0,
	}
	for lane, v := range want {
		if got, ok := s.Lanes[lane]; !ok || got != v {
			t.Errorf("lane %s = %v (present %v), want %v", lane, got, ok, v)
		}
	}
	if s.Header["commit"] == "" || s.Header["dirty"] != "false" {
		t.Fatalf("header lost commit/dirty: %v", s.Header)
	}
	if got := s.Label(); got != "aaaaaaaaaaaa" {
		t.Fatalf("Label = %q, want truncated commit", got)
	}
}

func TestLoadBenchCommittedSnapshot(t *testing.T) {
	// The committed trajectory snapshot must parse — `cs bench diff`
	// names it directly and CI diffs against it.
	s, err := LoadBench("../../BENCH_20260808.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, lane := range []string{
		"sim.allocs_per_event",
		"dist.prefetch_hit_rate",
		"sampling.scenarios.curves.antithetic_savings_pct",
	} {
		if _, ok := s.Lanes[lane]; !ok {
			t.Errorf("committed snapshot missing expected lane %s", lane)
		}
	}
}

func TestDiffDirectionAwareness(t *testing.T) {
	oldPath, newPath := writeSnapshots(t)
	oldS, err := LoadBench(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newS, err := LoadBench(newPath)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffSnapshots(oldS, newS, DiffOptions{All: true})
	rows := map[string]DiffRow{}
	for _, r := range d.Rows {
		rows[r.Lane] = r
	}
	// events_per_sec doubled: higher-better, so an improvement (-0.5).
	if r := rows["sim.events_per_sec"]; r.Regression != -1.0 {
		t.Errorf("events_per_sec regression = %v, want -1.0 (improvement)", r.Regression)
	}
	// hit_rate halved: higher-better, so a +0.5 regression.
	if r := rows["dist.prefetch_hit_rate"]; r.Regression != 0.5 {
		t.Errorf("prefetch_hit_rate regression = %v, want 0.5", r.Regression)
	}
	// allocs_per_event tripled: lower-better, +2.0 regression.
	if r := rows["sim.allocs_per_event"]; r.Regression != 2.0 {
		t.Errorf("allocs_per_event regression = %v, want 2.0", r.Regression)
	}
	// ns_per_op 1000→1300: +0.3 regression.
	if r := rows["benchmarks.BenchmarkPacketSimSecond.ns_per_op"]; r.Regression < 0.29 || r.Regression > 0.31 {
		t.Errorf("ns_per_op regression = %v, want ~0.3", r.Regression)
	}
	// Worst regression sorts first among two-sided rows.
	if d.Rows[0].Lane != "sim.allocs_per_event" {
		t.Errorf("worst lane first = %s, want sim.allocs_per_event", d.Rows[0].Lane)
	}
}

func TestDiffReportThresholdHidesNoise(t *testing.T) {
	oldPath, newPath := writeSnapshots(t)
	oldS, _ := LoadBench(oldPath)
	newS, _ := LoadBench(newPath)
	d := DiffSnapshots(oldS, newS, DiffOptions{ReportThreshold: 0.10})
	for _, r := range d.Rows {
		// local_us_per_shard moved 1%: below threshold, must be hidden.
		if r.Lane == "dist.local_us_per_shard" {
			t.Fatalf("sub-threshold lane reported: %+v", r)
		}
	}
}

func TestDiffGates(t *testing.T) {
	oldPath, newPath := writeSnapshots(t)
	oldS, _ := LoadBench(oldPath)
	newS, _ := LoadBench(newPath)
	d := DiffSnapshots(oldS, newS, DiffOptions{Gates: map[string]float64{
		"sim.allocs_per_event":                             0.5,  // regressed 200% → fails
		"dist.prefetch_hit_rate":                           0.75, // regressed 50% → passes
		"sampling.scenarios.curves.antithetic_savings_pct": 0.25, // unchanged → passes
		"no.such.lane":                                     0.1,  // absent from both → fails loudly
	}})
	if len(d.GateFailures) != 2 {
		t.Fatalf("gate failures = %v, want exactly 2", d.GateFailures)
	}
	joined := strings.Join(d.GateFailures, "\n")
	if !strings.Contains(joined, "sim.allocs_per_event") {
		t.Errorf("allocs gate failure missing: %v", d.GateFailures)
	}
	if !strings.Contains(joined, "no.such.lane") || !strings.Contains(joined, "absent") {
		t.Errorf("missing-lane gate failure missing: %v", d.GateFailures)
	}
}

func TestWriteMarkdown(t *testing.T) {
	oldPath, newPath := writeSnapshots(t)
	oldS, _ := LoadBench(oldPath)
	newS, _ := LoadBench(newPath)
	d := DiffSnapshots(oldS, newS, DiffOptions{Gates: map[string]float64{"sim.allocs_per_event": 0.5}})
	var sb strings.Builder
	if err := d.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"aaaaaaaaaaaa",       // old revision named
		"bbbbbbbbbbbb+dirty", // new revision named, dirty flagged
		"sim.allocs_per_event",
		"Gate failures",
		"lower is better",
		"higher is better",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown report missing %q:\n%s", want, out)
		}
	}
}
