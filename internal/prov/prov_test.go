package prov

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func stampTestDir(t *testing.T) (string, *Manifest) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"output.txt":   "efficiency 0.9131\n",
		"result.json":  `{"metrics":{"efficiency":0.9131}}` + "\n",
		"metrics.json": `{"cs_engine_runs_total": 1}` + "\n",
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m := &Manifest{
		Schema:        SchemaVersion,
		Created:       time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Scenario:      "efficiency",
		Scale:         "paper",
		Seed:          "42",
		Sampler:       "antithetic",
		CacheKeyEpoch: 3,
		Exec:          ExecInfo{Parallel: 4, Cache: true, Experiment: "sweep", Repeat: 1},
		Toolchain:     CurrentToolchain(),
		VCS:           CurrentVCS(),
		Variants: []Variant{{
			Variant:     "base",
			Params:      json.RawMessage(`{"seed":42,"gain":2}`),
			Metrics:     map[string]float64{"efficiency": 0.9131},
			WallSeconds: 0.25,
			Stages:      []Stage{{Stage: "estimate", Seconds: 0.2, Count: 1}},
		}},
	}
	if err := Stamp(dir, m); err != nil {
		t.Fatalf("Stamp: %v", err)
	}
	return dir, m
}

func TestStampAndVerifyClean(t *testing.T) {
	dir, m := stampTestDir(t)
	if len(m.Artifacts) != 3 {
		t.Fatalf("manifested %d artifacts, want 3: %+v", len(m.Artifacts), m.Artifacts)
	}
	got, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir on clean dir: %v", err)
	}
	if got.Scenario != "efficiency" || got.Exec.Experiment != "sweep" {
		t.Fatalf("round-trip lost identity: %+v", got)
	}
	if got.ManifestSHA256 == "" {
		t.Fatal("stamped manifest has empty self-hash")
	}
}

// Flipping a single byte of any artifact must fail verification.
func TestVerifyDetectsArtifactFlip(t *testing.T) {
	dir, _ := stampTestDir(t)
	path := filepath.Join(dir, "output.txt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyDir(dir)
	var ve *VerifyError
	if !errorsAs(err, &ve) {
		t.Fatalf("VerifyDir after flip: got %v, want *VerifyError", err)
	}
	if !containsProblem(ve, "output.txt") || !containsProblem(ve, "hash mismatch") {
		t.Fatalf("problems do not name the flipped artifact: %v", ve.Problems)
	}
}

// Editing any manifest field (without re-stamping) must fail the
// self-hash check even if all artifacts are intact.
func TestVerifyDetectsManifestEdit(t *testing.T) {
	dir, _ := stampTestDir(t)
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(raw), `"seed": "42"`, `"seed": "43"`, 1)
	if edited == string(raw) {
		t.Fatal("test setup: seed field not found in manifest")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyDir(dir)
	var ve *VerifyError
	if !errorsAs(err, &ve) {
		t.Fatalf("VerifyDir after manifest edit: got %v, want *VerifyError", err)
	}
	if !containsProblem(ve, "self-hash") {
		t.Fatalf("problems do not mention self-hash: %v", ve.Problems)
	}
}

func TestVerifyDetectsTruncation(t *testing.T) {
	dir, _ := stampTestDir(t)
	if err := os.WriteFile(filepath.Join(dir, "result.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := VerifyDir(dir)
	var ve *VerifyError
	if !errorsAs(err, &ve) {
		t.Fatalf("got %v, want *VerifyError", err)
	}
	if !containsProblem(ve, "result.json") || !containsProblem(ve, "bytes") {
		t.Fatalf("problems do not report the size mismatch: %v", ve.Problems)
	}
}

func TestVerifyDetectsMissingAndStrayFiles(t *testing.T) {
	dir, _ := stampTestDir(t)
	if err := os.Remove(filepath.Join(dir, "metrics.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "extra.txt"), []byte("late\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := VerifyDir(dir)
	var ve *VerifyError
	if !errorsAs(err, &ve) {
		t.Fatalf("got %v, want *VerifyError", err)
	}
	if !containsProblem(ve, "metrics.json: missing") {
		t.Fatalf("missing artifact not reported: %v", ve.Problems)
	}
	if !containsProblem(ve, "extra.txt: present but not manifested") {
		t.Fatalf("stray file not reported: %v", ve.Problems)
	}
}

// The canonical encoding must survive a file round-trip: load a
// stamped manifest back from its indented on-disk form and the
// recomputed self-hash must still match.
func TestSelfHashStableAcrossRoundTrip(t *testing.T) {
	dir, m := stampTestDir(t)
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SelfHash()
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.SelfHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("self-hash drifted across round-trip: %s != %s", got, want)
	}
}

func TestFindManifests(t *testing.T) {
	root := t.TempDir()
	a, _ := stampTestDir(t)
	// Nest two stamped dirs plus one unstamped dir under root.
	for _, name := range []string{"exp/sweep/r0", "exp/sweep/r1"} {
		dst := filepath.Join(root, name)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			raw, err := os.ReadFile(filepath.Join(a, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := os.MkdirAll(filepath.Join(root, "exp", "unstamped"), 0o755); err != nil {
		t.Fatal(err)
	}
	dirs, err := FindManifests(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("found %d manifested dirs, want 2: %v", len(dirs), dirs)
	}
	for _, d := range dirs {
		if _, err := VerifyDir(d); err != nil {
			t.Fatalf("copied run dir fails verification: %v", err)
		}
	}
}

func TestCurrentToolchain(t *testing.T) {
	tc := CurrentToolchain()
	if !strings.HasPrefix(tc.GoVersion, "go") || tc.GOOS == "" || tc.GOARCH == "" {
		t.Fatalf("implausible toolchain: %+v", tc)
	}
}

func errorsAs(err error, target **VerifyError) bool {
	ve, ok := err.(*VerifyError)
	if ok {
		*target = ve
	}
	return ok
}

func containsProblem(ve *VerifyError, substr string) bool {
	for _, p := range ve.Problems {
		if strings.Contains(p, substr) {
			return true
		}
	}
	return false
}
