// Package prov is the run-provenance layer: every artifact directory a
// run emits gains a manifest.json that ties the results to their
// inputs — the full resolved request identity (scenario, params, seed,
// sampler, cache key epoch, wire/fleet shape), the toolchain and git
// revision that produced them, SHA-256 digests of every emitted file,
// and the per-stage timing deltas the observability layer collects.
//
// The manifest is tamper-evident: it carries a self-hash over its own
// canonical encoding, and VerifyDir re-hashes both the manifest and
// every artifact, so flipping one byte of any file — or editing one
// manifest field — fails verification. `cs verify RUNDIR` is the CLI
// face of VerifyDir; `cs exp analyze` refuses to aggregate runs that
// do not verify, which is what makes every figure regenerable from
// provenance alone.
//
// The package deliberately depends only on the standard library so any
// layer (engine, the experiment runner, external tooling) can stamp or
// check a directory without import cycles.
package prov

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// ManifestName is the manifest's file name inside a run directory.
const ManifestName = "manifest.json"

// SchemaVersion versions the manifest document shape. Bump on any
// field change that would make old verifiers misread new manifests.
const SchemaVersion = 1

// Artifact is one emitted file, named relative to the run directory.
type Artifact struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Toolchain records what compiled and ran the binary.
type Toolchain struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

// VCS records the source revision the binary was built from. Revision
// is empty when neither the build info nor a git checkout could name
// it; Dirty means the working tree had uncommitted changes.
type VCS struct {
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
}

// ExecInfo is the execution shape of the run — how the work was
// routed, not what it computed. The CLI fills it from the resolved
// flags; the experiment runner adds the grid coordinates.
type ExecInfo struct {
	// Workers is the fleet host list ("" = in-process only).
	Workers []string `json:"workers,omitempty"`
	// Wire is the shard transport ("auto", "json", "binary"); empty
	// for local runs.
	Wire string `json:"wire,omitempty"`
	// Parallel is the pinned pool width (0 = GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// Cache/CacheDir/Prefetch describe the caching executor, when on.
	Cache    bool   `json:"cache,omitempty"`
	CacheDir string `json:"cache_dir,omitempty"`
	Prefetch bool   `json:"prefetch,omitempty"`
	// Fault is the armed fault-injection schedule, so chaos runs are
	// distinguishable from clean ones in the trajectory.
	Fault string `json:"fault,omitempty"`
	// Experiment and Repeat are the grid coordinates stamped by
	// `cs exp run` (empty/0 for ad-hoc runs).
	Experiment string `json:"experiment,omitempty"`
	Repeat     int    `json:"repeat,omitempty"`
}

// Stage is one per-variant timing row — the manifest's copy of the
// timings.csv breakdown, so provenance alone reconstructs where the
// run spent its time.
type Stage struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Count   float64 `json:"count"`
}

// Variant is one grid point's resolved identity and outcome.
type Variant struct {
	Variant string `json:"variant,omitempty"`
	// Params is the fully resolved parameter struct, canonical JSON.
	Params json.RawMessage `json:"params,omitempty"`
	// Metrics are the deterministic headline numbers (result.json's).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// WallSeconds and Stages are volatile timing provenance.
	WallSeconds float64 `json:"wall_seconds"`
	Stages      []Stage `json:"stages,omitempty"`
}

// Manifest ties one run directory's artifacts to their inputs.
type Manifest struct {
	Schema  int       `json:"schema"`
	Created time.Time `json:"created"`

	// Request identity.
	Scenario string `json:"scenario"`
	Scale    string `json:"scale"`
	Seed     string `json:"seed,omitempty"`
	Sampler  string `json:"sampler,omitempty"`
	// SamplerChoices records the auto-scheduler's resolved per-kernel
	// strategies when the run was `-sampler auto` — what actually
	// evaluated the shards, where Sampler only records the request.
	SamplerChoices map[string]string `json:"sampler_choices,omitempty"`
	RelErr         float64           `json:"rel_err,omitempty"`
	MaxSamples     int               `json:"max_samples,omitempty"`
	Sets           []string          `json:"sets,omitempty"`
	Grid           []string          `json:"grid,omitempty"`
	// CacheKeyEpoch is the result-cache key-space version the binary
	// ran under: two runs with equal identity but different epochs may
	// differ in which work was recomputed versus served from disk.
	CacheKeyEpoch int      `json:"cache_key_epoch"`
	Exec          ExecInfo `json:"exec"`

	// Provenance of the binary.
	Toolchain Toolchain `json:"toolchain"`
	VCS       VCS       `json:"vcs"`

	// Outcome.
	ElapsedSeconds   float64   `json:"elapsed_seconds"`
	EvaluatedSamples int64     `json:"evaluated_samples"`
	Variants         []Variant `json:"variants,omitempty"`

	// Artifacts lists every file in the run directory (except the
	// manifest itself) with its digest.
	Artifacts []Artifact `json:"artifacts"`

	// ManifestSHA256 is the self-hash: SHA-256 of the manifest's
	// canonical (compact) JSON encoding with this field empty. It is
	// what makes editing any manifest field detectable.
	ManifestSHA256 string `json:"manifest_sha256"`
}

// SelfHash computes the manifest's canonical self-hash. The canonical
// form is compact json.Marshal output with ManifestSHA256 cleared —
// deterministic because Go sorts map keys and compacts RawMessage.
func (m *Manifest) SelfHash() (string, error) {
	clone := *m
	clone.ManifestSHA256 = ""
	canonical, err := json.Marshal(&clone)
	if err != nil {
		return "", fmt.Errorf("prov: canonicalize manifest: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:]), nil
}

// HashFile returns the hex SHA-256 of one file's contents.
func HashFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// listFiles returns every regular file under dir, named relative to
// dir with forward slashes, sorted. Run directories are flat today,
// but the walk keeps the manifest honest if a scenario ever nests.
func listFiles(dir string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Stamp fills m.Artifacts with a digest of every file currently in
// dir, computes the self-hash, and writes ManifestName into dir. It
// must be called after every other artifact is on disk — anything
// written later is drift by definition.
func Stamp(dir string, m *Manifest) error {
	names, err := listFiles(dir)
	if err != nil {
		return fmt.Errorf("prov: scan %s: %w", dir, err)
	}
	m.Artifacts = m.Artifacts[:0]
	for _, name := range names {
		if name == ManifestName {
			continue
		}
		sum, size, err := HashFile(filepath.Join(dir, filepath.FromSlash(name)))
		if err != nil {
			return fmt.Errorf("prov: hash %s: %w", name, err)
		}
		m.Artifacts = append(m.Artifacts, Artifact{Name: name, Bytes: size, SHA256: sum})
	}
	hash, err := m.SelfHash()
	if err != nil {
		return err
	}
	m.ManifestSHA256 = hash
	js, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("prov: marshal manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(js, '\n'), 0o644)
}

// Load reads and decodes dir's manifest without verifying anything.
func Load(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("prov: decode %s: %w", ManifestName, err)
	}
	return &m, nil
}

// VerifyError reports every integrity problem found in one run
// directory. It is an error so `cs verify` exits nonzero on any drift.
type VerifyError struct {
	Dir      string
	Problems []string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("prov: %s failed verification:\n  %s",
		e.Dir, strings.Join(e.Problems, "\n  "))
}

// VerifyDir re-checks a run directory against its manifest: the
// manifest self-hash, every artifact's size and SHA-256, missing
// artifacts, and files present but never manifested. It returns the
// (decoded) manifest and nil on a clean pass, or a *VerifyError
// listing every problem.
func VerifyDir(dir string) (*Manifest, error) {
	m, err := Load(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	if m.Schema > SchemaVersion {
		problems = append(problems, fmt.Sprintf("manifest schema %d is newer than this binary understands (%d)", m.Schema, SchemaVersion))
	}
	want, err := m.SelfHash()
	if err != nil {
		return m, err
	}
	if m.ManifestSHA256 != want {
		problems = append(problems, "manifest self-hash mismatch: a manifest field was edited after stamping")
	}
	manifested := make(map[string]bool, len(m.Artifacts))
	for _, a := range m.Artifacts {
		if !fs.ValidPath(a.Name) {
			problems = append(problems, fmt.Sprintf("%s: invalid artifact path", a.Name))
			continue
		}
		manifested[a.Name] = true
		sum, size, err := HashFile(filepath.Join(dir, filepath.FromSlash(a.Name)))
		switch {
		case err != nil:
			problems = append(problems, fmt.Sprintf("%s: missing (%v)", a.Name, err))
		case size != a.Bytes:
			problems = append(problems, fmt.Sprintf("%s: %d bytes, manifest says %d", a.Name, size, a.Bytes))
		case sum != a.SHA256:
			problems = append(problems, fmt.Sprintf("%s: content hash mismatch (artifact modified after the run)", a.Name))
		}
	}
	names, err := listFiles(dir)
	if err != nil {
		return m, err
	}
	for _, name := range names {
		if name != ManifestName && !manifested[name] {
			problems = append(problems, fmt.Sprintf("%s: present but not manifested (added after the run)", name))
		}
	}
	if len(problems) > 0 {
		return m, &VerifyError{Dir: dir, Problems: problems}
	}
	return m, nil
}

// FindManifests walks root and returns every directory containing a
// manifest, sorted — the discovery step behind `cs verify` on a parent
// directory and `cs exp analyze`.
func FindManifests(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && d.Name() == ManifestName {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// CurrentToolchain reports the running binary's toolchain.
func CurrentToolchain() Toolchain {
	return Toolchain{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
}

var (
	vcsOnce sync.Once
	vcsInfo VCS
)

// CurrentVCS reports the source revision, preferring the VCS stamp
// `go build` embeds and falling back to asking git about the working
// directory (the `go run` and `go test` paths, which carry no stamp).
// Best-effort: an empty Revision means "unknown", never a guess. The
// result is cached — revision and dirtiness are process-constant.
func CurrentVCS() VCS {
	vcsOnce.Do(func() {
		if info, ok := debug.ReadBuildInfo(); ok {
			for _, s := range info.Settings {
				switch s.Key {
				case "vcs.revision":
					vcsInfo.Revision = s.Value
				case "vcs.modified":
					vcsInfo.Dirty = s.Value == "true"
				}
			}
			if vcsInfo.Revision != "" {
				return
			}
		}
		out, err := exec.Command("git", "rev-parse", "HEAD").Output()
		if err != nil {
			return
		}
		vcsInfo.Revision = strings.TrimSpace(string(out))
		status, err := exec.Command("git", "status", "--porcelain").Output()
		if err == nil {
			vcsInfo.Dirty = len(strings.TrimSpace(string(status))) > 0
		}
	})
	return vcsInfo
}
