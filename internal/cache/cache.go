// Package cache provides a caching montecarlo.Executor: estimation
// results keyed by the full identity of the request — (kernel, params
// JSON, seed, samples, dim) — and served as bit-exact stored
// accumulator states on repeat. It wraps any inner executor (the
// in-process pool or a dist.Remote worker fleet), so `cs all`
// re-running the catalog, Table2's threshold search revisiting grid
// points, and repeated CLI runs stop re-evaluating Monte Carlo work
// they already have.
//
// Correctness: the merge currency is montecarlo.AccumulatorState —
// IEEE-754 bit patterns — so a cache hit reproduces the inner
// executor's result exactly, bit for bit. The key covers every input
// that determines the result (the shard plan is a pure function of
// seed and samples; the integrand is a pure function of kernel name
// and params JSON), so a hit can never serve stale or mismatched
// estimates. Params JSON comes from deterministic struct marshaling,
// giving byte-stable keys per call site.
//
// The in-memory layer is a bounded LRU. An optional directory adds a
// persistent second layer (one JSON file per entry, written
// atomically) so results survive across processes — this is what
// makes a second `cs all -cache` run mostly free.
package cache

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"carriersense/internal/fault"
	"carriersense/internal/montecarlo"
)

// DefaultMaxEntries bounds the in-memory LRU when Options.MaxEntries
// is zero. An entry is dim accumulator states (~dozens of bytes each),
// so the default is a few hundred KB at most.
const DefaultMaxEntries = 1024

// Options configure a caching executor. The zero value selects an
// in-memory-only cache with the default LRU bound.
type Options struct {
	// MaxEntries bounds the in-memory LRU; 0 means DefaultMaxEntries.
	MaxEntries int
	// Dir, when non-empty, persists entries as JSON files under this
	// directory and consults it on in-memory misses. The directory is
	// created on first write.
	Dir string
	// MaxBytes, when > 0, bounds the persistent layer: after each disk
	// write the directory's cache entries are LRU-evicted (by mtime —
	// disk hits refresh it) until the total size fits. 0 leaves the
	// disk layer unbounded (`cs cache clear` empties it).
	MaxBytes int64
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits          int64 // served from memory
	DiskHits      int64 // served from the persistent layer
	Misses        int64 // evaluated by the inner executor
	Evictions     int64 // in-memory LRU evictions
	DiskEvictions int64 // persistent-layer LRU evictions (MaxBytes bound)
	WriteFails    int64 // best-effort disk writes that failed
	Corrupt       int64 // disk entries that failed integrity checks (quarantined)
	Entries       int   // current in-memory entry count
}

// Executor is a caching montecarlo.Executor. Safe for concurrent use;
// concurrent misses on the same key may each evaluate (the results are
// bit-identical, so the duplicate store is harmless).
type Executor struct {
	inner    montecarlo.Executor
	max      int
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	stats   Stats
	// diskBytes is the running size of the persistent layer, seeded by
	// one directory scan on the first write and maintained per write
	// thereafter, so the MaxBytes bound is enforced without re-scanning
	// the directory on every estimation (an eviction pass re-syncs it).
	// Best-effort under concurrent executors sharing a directory; an
	// overshoot is corrected at the next eviction pass.
	diskBytes   int64
	diskScanned bool
}

// entry is one cached result.
type entry struct {
	key    string
	states []montecarlo.AccumulatorState
}

// localExecutor evaluates in-process; the default inner executor.
type localExecutor struct{}

func (localExecutor) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	return montecarlo.RunRequest(ctx, req)
}

// New builds a caching executor around inner. A nil inner uses the
// in-process pool.
func New(inner montecarlo.Executor, opts Options) *Executor {
	if inner == nil {
		inner = localExecutor{}
	}
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Executor{
		inner:    inner,
		max:      max,
		dir:      opts.Dir,
		maxBytes: opts.MaxBytes,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// KeyEpoch versions the cache key space. The request fields cover
// every *runtime* input of an estimation, but the kernel numerics are
// compiled in: a code change that alters what a kernel computes (a
// different shadowing formula, a reordered draw, a new path-gain
// specialization) would otherwise let a new binary serve a previous
// binary's persisted bit patterns. Bump this constant with any such
// change; old persistent entries then miss cleanly instead of lying.
//
// Epoch 2: the key gained the request's sampler name and shard range
// (the adaptive sampling subsystem), so epoch-1 entries — which could
// otherwise collide with a plain full-range request's key — miss.
//
// Epoch 3: packet-simulator replications joined the key space as
// testbed/* sim kernels, and the PHY hot-path overhaul moved the
// simulator's power arithmetic to precomputed linear-scale gains
// (math.Exp instead of per-query math.Pow) — last-ulp differences
// that would let a new binary serve a previous binary's bit patterns
// as its own. Entries from earlier epochs miss cleanly.
//
// Epoch 4: the variance-reduction engine — requests gained the
// control-variate adjustment (Request.Control joins the key), and the
// sampler vocabulary gained sobol/halton/cv, whose block randomization
// draws reshape the shard streams. Entries from earlier epochs miss
// cleanly.
const KeyEpoch = 4

// Key returns the cache key of a request: a SHA-256 over KeyEpoch and
// every request field that determines the estimation result — the
// sampler transforms the draws, the control spec adjusts every
// sample, and the shard range selects the plan slice, so all three
// are part of the result's identity.
func Key(req montecarlo.Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "epoch%d", KeyEpoch)
	h.Write([]byte{0})
	h.Write([]byte(req.Kernel))
	h.Write([]byte{0})
	h.Write(req.Params)
	h.Write([]byte{0})
	h.Write([]byte(req.Sampler))
	h.Write([]byte{0})
	if req.Control != nil {
		// Hash the exact bit patterns: β and μ enter the per-sample
		// arithmetic, so any bit difference is a different result.
		var w [8]byte
		for _, v := range req.Control.Beta {
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			h.Write(w[:])
		}
		h.Write([]byte{1})
		for _, v := range req.Control.Mean {
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			h.Write(w[:])
		}
	}
	h.Write([]byte{0})
	var tail [32]byte
	binary.LittleEndian.PutUint64(tail[0:], req.Seed)
	binary.LittleEndian.PutUint64(tail[8:], uint64(req.Samples))
	binary.LittleEndian.PutUint64(tail[16:], uint64(req.Dim))
	binary.LittleEndian.PutUint64(tail[24:], uint64(req.FirstShard))
	h.Write(tail[:])
	return hex.EncodeToString(h.Sum(nil))
}

// EstimateVec implements montecarlo.Executor: memory, then disk, then
// the inner executor, storing fresh results in both layers.
func (e *Executor) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	key := Key(req)
	lookupStart := time.Now()
	if states, ok := e.lookup(key); ok {
		mLookupSeconds.Observe(time.Since(lookupStart).Seconds())
		return fromStates(states), nil
	}
	if states, ok := e.loadDisk(key, req); ok {
		mLookupSeconds.Observe(time.Since(lookupStart).Seconds())
		e.mu.Lock()
		e.stats.DiskHits++
		e.mu.Unlock()
		mDiskHits.Inc()
		e.store(key, states)
		return fromStates(states), nil
	}
	mLookupSeconds.Observe(time.Since(lookupStart).Seconds())
	accs, err := e.inner.EstimateVec(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(accs) != req.Dim {
		return nil, fmt.Errorf("cache: inner executor returned %d components, want %d", len(accs), req.Dim)
	}
	e.mu.Lock()
	e.stats.Misses++
	e.mu.Unlock()
	mMisses.Inc()
	states := toStates(accs)
	e.store(key, states)
	e.saveDisk(key, req, states)
	return accs, nil
}

// lookup serves an in-memory hit and refreshes its LRU position.
func (e *Executor) lookup(key string) ([]montecarlo.AccumulatorState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.entries[key]
	if !ok {
		return nil, false
	}
	e.lru.MoveToFront(el)
	e.stats.Hits++
	mHits.Inc()
	return el.Value.(*entry).states, true
}

// store inserts (or refreshes) an entry and enforces the LRU bound.
func (e *Executor) store(key string, states []montecarlo.AccumulatorState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.entries[key]; ok {
		e.lru.MoveToFront(el)
		el.Value.(*entry).states = states
		return
	}
	e.entries[key] = e.lru.PushFront(&entry{key: key, states: states})
	for e.lru.Len() > e.max {
		back := e.lru.Back()
		e.lru.Remove(back)
		delete(e.entries, back.Value.(*entry).key)
		e.stats.Evictions++
		mEvictions.Inc()
	}
}

// Stats returns a snapshot of the cache counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Entries = e.lru.Len()
	return s
}

func toStates(accs []montecarlo.Accumulator) []montecarlo.AccumulatorState {
	states := make([]montecarlo.AccumulatorState, len(accs))
	for i, a := range accs {
		states[i] = a.State()
	}
	return states
}

func fromStates(states []montecarlo.AccumulatorState) []montecarlo.Accumulator {
	accs := make([]montecarlo.Accumulator, len(states))
	for i, st := range states {
		accs[i] = montecarlo.FromState(st)
	}
	return accs
}

// diskEntry is the persistent form of one cached result. The request
// fields are stored alongside the states and verified on load, so a
// hash collision or a truncated/foreign file degrades to a miss, never
// to a wrong answer.
type diskEntry struct {
	Kernel     string                        `json:"kernel"`
	Params     json.RawMessage               `json:"params,omitempty"`
	Seed       uint64                        `json:"seed"`
	Samples    int                           `json:"samples"`
	Dim        int                           `json:"dim"`
	Sampler    string                        `json:"sampler,omitempty"`
	FirstShard int                           `json:"first_shard,omitempty"`
	Control    *montecarlo.ControlSpec       `json:"control,omitempty"`
	States     []montecarlo.AccumulatorState `json:"states"`
}

func (e *Executor) diskPath(key string) string {
	return filepath.Join(e.dir, key+".json")
}

// Disk-entry integrity. Every entry starts with one header line —
//
//	CSC1 <crc32c hex8> <payload length>\n
//
// followed by the JSON payload and a trailing newline. The checksum
// (CRC-32 Castagnoli over the payload) is verified on every load:
// cache entries are IEEE-754 bit patterns served *as results*, so a
// flipped bit on disk that still parsed as JSON would corrupt an
// estimation silently. A failed check reads as a miss, never a wrong
// answer, and the damaged file is quarantined out of the entry
// namespace for postmortems instead of being re-served forever.
const (
	entryMagic = "CSC1"
	// QuarantineDir is the sidecar directory (under the cache dir)
	// that corrupt entries are moved to. As a subdirectory it is
	// invisible to isEntryName-based scans (StatDir, EvictDir,
	// ClearDir), so quarantined files never count against the disk
	// budget or get re-read as entries.
	QuarantineDir = "quarantine"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errLegacyEntry marks a pre-checksum entry file (bare JSON). Legacy
// entries miss silently — they are not damage, just an older format —
// and the store-through on the recomputed result overwrites them.
var errLegacyEntry = errors.New("cache: legacy headerless entry")

// sealEntry frames a payload in the checksummed on-disk format.
func sealEntry(payload []byte) []byte {
	header := fmt.Sprintf("%s %08x %d\n", entryMagic, crc32.Checksum(payload, crcTable), len(payload))
	out := make([]byte, 0, len(header)+len(payload)+1)
	out = append(out, header...)
	out = append(out, payload...)
	return append(out, '\n')
}

// openEntry verifies an entry file's header and checksum and returns
// the JSON payload. Any structural damage — missing or malformed
// header, a length that disagrees with the file, a checksum mismatch
// — is an error the caller must treat as corruption.
func openEntry(data []byte) ([]byte, error) {
	if len(data) > 0 && data[0] == '{' {
		return nil, errLegacyEntry
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, errors.New("cache: entry missing header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != entryMagic {
		return nil, fmt.Errorf("cache: bad entry header %q", string(data[:nl]))
	}
	wantCRC, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("cache: bad entry checksum %q", fields[1])
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return nil, fmt.Errorf("cache: bad entry length %q", fields[2])
	}
	rest := data[nl+1:]
	if len(rest) != wantLen+1 || rest[wantLen] != '\n' {
		return nil, fmt.Errorf("cache: entry payload is %d bytes, header says %d", len(rest)-1, wantLen)
	}
	payload := rest[:wantLen]
	if got := crc32.Checksum(payload, crcTable); got != uint32(wantCRC) {
		return nil, fmt.Errorf("cache: entry checksum %08x, header says %08x", got, uint32(wantCRC))
	}
	return payload, nil
}

// quarantine moves a corrupt entry into the sidecar directory (or
// removes it if the move fails) and counts the corruption. Racing
// loaders both try; only the one that actually displaces the file
// counts it.
func (e *Executor) quarantine(key string) {
	qdir := filepath.Join(e.dir, QuarantineDir)
	displaced := false
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		displaced = os.Rename(e.diskPath(key), filepath.Join(qdir, key+".json")) == nil
	}
	if !displaced {
		displaced = os.Remove(e.diskPath(key)) == nil
	}
	if !displaced {
		return
	}
	e.mu.Lock()
	e.stats.Corrupt++
	e.mu.Unlock()
	mCorrupt.Inc()
}

// loadDisk consults the persistent layer. A structurally damaged
// entry is quarantined and reads as a miss; a healthy entry whose
// request fields mismatch (hash collision, foreign file) is a plain
// miss.
func (e *Executor) loadDisk(key string, req montecarlo.Request) ([]montecarlo.AccumulatorState, bool) {
	if e.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(e.diskPath(key))
	if err != nil {
		return nil, false
	}
	if f := fault.Current(); f != nil {
		data = f.MangleCacheLoad(data)
	}
	payload, perr := openEntry(data)
	if errors.Is(perr, errLegacyEntry) {
		return nil, false
	}
	var de diskEntry
	if perr == nil {
		perr = json.Unmarshal(payload, &de)
	}
	if perr != nil {
		e.quarantine(key)
		return nil, false
	}
	if de.Kernel != req.Kernel || de.Seed != req.Seed ||
		de.Samples != req.Samples || de.Dim != req.Dim ||
		de.Sampler != req.Sampler || de.FirstShard != req.FirstShard ||
		!de.Control.Equal(req.Control) ||
		!bytes.Equal(de.Params, req.Params) || len(de.States) != req.Dim {
		return nil, false
	}
	// Refresh the entry's mtime so the disk layer's LRU eviction sees
	// reads, not just writes, as recency. Best-effort.
	now := time.Now()
	_ = os.Chtimes(e.diskPath(key), now, now)
	return de.States, true
}

// saveDisk persists an entry best-effort (a cache write failure must
// not fail the run); failures are counted in Stats.WriteFails.
func (e *Executor) saveDisk(key string, req montecarlo.Request, states []montecarlo.AccumulatorState) {
	if e.dir == "" {
		return
	}
	var written int64
	err := func() error {
		if err := os.MkdirAll(e.dir, 0o755); err != nil {
			return err
		}
		data, err := json.Marshal(diskEntry{
			Kernel:     req.Kernel,
			Params:     req.Params,
			Seed:       req.Seed,
			Samples:    req.Samples,
			Dim:        req.Dim,
			Sampler:    req.Sampler,
			FirstShard: req.FirstShard,
			Control:    req.Control,
			States:     states,
		})
		if err != nil {
			return err
		}
		tmp, err := os.CreateTemp(e.dir, "."+key+".tmp-*")
		if err != nil {
			return err
		}
		n, err := tmp.Write(sealEntry(data))
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		written = int64(n)
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return os.Rename(tmp.Name(), e.diskPath(key))
	}()
	if err != nil {
		e.mu.Lock()
		e.stats.WriteFails++
		e.mu.Unlock()
		mWriteFails.Inc()
		return
	}
	if e.maxBytes > 0 {
		e.enforceDiskBudget(int64(written))
	}
}

// enforceDiskBudget folds one write into the running directory size
// and, only when the bound is exceeded, runs an eviction pass. The
// pass trims an extra 1/8 below MaxBytes so a cache hovering at its
// bound does not pay a full directory scan on every subsequent write,
// and re-seeds the running total from what the scan saw.
func (e *Executor) enforceDiskBudget(written int64) {
	e.mu.Lock()
	if !e.diskScanned {
		e.mu.Unlock()
		st, err := StatDir(e.dir)
		e.mu.Lock()
		if err == nil && !e.diskScanned {
			e.diskScanned = true
			e.diskBytes = st.Bytes
		}
	} else {
		e.diskBytes += written
	}
	over := e.diskScanned && e.diskBytes > e.maxBytes
	e.mu.Unlock()
	if !over {
		return
	}
	lowWater := e.maxBytes - e.maxBytes/8
	evicted, remaining, err := EvictDir(e.dir, lowWater)
	if err != nil {
		return
	}
	e.mu.Lock()
	e.diskBytes = remaining
	e.stats.DiskEvictions += int64(evicted)
	e.mu.Unlock()
	mDiskEvictions.Add(int64(evicted))
}

// EvictDir removes least-recently-used cache entries — mtime order;
// both writes and disk hits refresh it — until the directory's entries
// total at most maxBytes. Only cache-owned entry files are considered
// or touched. It returns the number of entries removed and the bytes
// remaining. Best-effort on racing removals: an entry already gone
// just doesn't count.
func EvictDir(dir string, maxBytes int64) (removed int, remaining int64, err error) {
	items, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	type fileInfo struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var total int64
	for _, it := range items {
		if it.IsDir() || !isEntryName(it.Name()) {
			continue
		}
		info, err := it.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{name: it.Name(), size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	if total <= maxBytes {
		return 0, total, nil
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(dir, f.name)); err != nil {
			if os.IsNotExist(err) {
				total -= f.size
			}
			continue
		}
		total -= f.size
		removed++
	}
	return removed, total, nil
}

// isEntryName reports whether a file name is a cache-owned entry:
// <64 hex digits>.json, exactly what saveDisk writes. StatDir and
// ClearDir touch nothing else, so pointing -cache-dir at a directory
// with unrelated JSON files (artifacts, bench snapshots) is safe.
func isEntryName(name string) bool {
	const hexLen = sha256.Size * 2
	if len(name) != hexLen+len(".json") || filepath.Ext(name) != ".json" {
		return false
	}
	for _, r := range name[:hexLen] {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return false
		}
	}
	return true
}

// DirStats summarizes a persistent cache directory.
type DirStats struct {
	Dir         string
	Entries     int
	Bytes       int64
	Quarantined int // corrupt entries parked in the quarantine sidecar
}

// StatDir reports the entry count and total size of a persistent cache
// directory, plus how many corrupt entries sit in its quarantine
// sidecar. A missing directory is an empty cache, not an error.
func StatDir(dir string) (DirStats, error) {
	st := DirStats{Dir: dir}
	items, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	for _, it := range items {
		if it.IsDir() || !isEntryName(it.Name()) {
			continue
		}
		info, err := it.Info()
		if err != nil {
			continue
		}
		st.Entries++
		st.Bytes += info.Size()
	}
	if qItems, err := os.ReadDir(filepath.Join(dir, QuarantineDir)); err == nil {
		for _, it := range qItems {
			if !it.IsDir() && isEntryName(it.Name()) {
				st.Quarantined++
			}
		}
	}
	return st, nil
}

// ClearDir removes every cache entry in a persistent cache directory.
// It returns the number of entries removed. Only cache-owned entry
// files (hex key + .json) are touched.
func ClearDir(dir string) (int, error) {
	items, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, it := range items {
		if it.IsDir() || !isEntryName(it.Name()) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, it.Name())); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
