package cache

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
)

func TestPrefetchMakesTheRunAllHits(t *testing.T) {
	dir := t.TempDir()
	warm := New(dist.Local{}, Options{Dir: dir})
	cached := testReq(1, 11, montecarlo.ShardSize)
	want := mustEstimate(t, warm, cached)

	// Plan a run: one hit, two distinct misses, one duplicated miss.
	missA := testReq(2, 12, montecarlo.ShardSize)
	missB := testReq(3, 13, 2*montecarlo.ShardSize)
	p := NewPlanner(dir)
	for _, req := range []montecarlo.Request{cached, missA, missB, missA} {
		mustEstimate(t, p, req)
	}
	misses := p.Misses()
	if len(misses) != 3 {
		t.Fatalf("planner recorded %d misses, want 3 (duplicates included)", len(misses))
	}

	counting := &countingExecutor{inner: dist.Local{}}
	exec := New(counting, Options{Dir: dir})
	rep, err := Prefetch(context.Background(), exec, misses)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Planned != 2 || rep.Fetched != 2 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want 2 planned / 2 fetched (duplicate fetched once)", rep)
	}
	if calls := counting.calls.Load(); calls != 2 {
		t.Fatalf("prefetch evaluated %d times, want 2", calls)
	}
	if rep.Samples != int64(missA.SampleSpan()+missB.SampleSpan()) {
		t.Errorf("report.Samples = %d, want %d", rep.Samples, missA.SampleSpan()+missB.SampleSpan())
	}
	for _, req := range misses {
		if _, err := os.Stat(filepath.Join(dir, Key(req)+".json")); err != nil {
			t.Errorf("prefetch did not persist %s: %v", Key(req), err)
		}
	}

	// The "real run" afterwards: all hits, no evaluations, the
	// prefetched bits are what a direct evaluation would have produced.
	run := New(counting, Options{Dir: dir})
	before := counting.calls.Load()
	if got := mustEstimate(t, run, cached); !sameAccs(got, want) {
		t.Error("pre-existing entry changed bits")
	}
	direct := mustEstimate(t, dist.Local{}, missA)
	if got := mustEstimate(t, run, missA); !sameAccs(got, direct) {
		t.Error("prefetched entry differs from direct evaluation")
	}
	mustEstimate(t, run, missB)
	if calls := counting.calls.Load(); calls != before {
		t.Fatalf("post-prefetch run evaluated %d times, want 0", calls-before)
	}
	st := run.Stats()
	if st.DiskHits != 3 {
		t.Errorf("post-prefetch run had %d disk hits, want 3", st.DiskHits)
	}
}

func TestPrefetchSkipsEntriesFilledMeanwhile(t *testing.T) {
	dir := t.TempDir()
	req := testReq(4, 14, montecarlo.ShardSize)
	p := NewPlanner(dir)
	mustEstimate(t, p, req)

	// Someone else fills the entry between plan and prefetch.
	mustEstimate(t, New(dist.Local{}, Options{Dir: dir}), req)

	counting := &countingExecutor{inner: dist.Local{}}
	rep, err := Prefetch(context.Background(), New(counting, Options{Dir: dir}), p.Misses())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Planned != 1 || rep.Skipped != 1 || rep.Fetched != 0 {
		t.Fatalf("report = %+v, want 1 planned / 1 skipped / 0 fetched", rep)
	}
	if calls := counting.calls.Load(); calls != 0 {
		t.Fatalf("prefetch evaluated %d times for an already-filled entry", calls)
	}
}

func TestPrefetchSurvivesFailures(t *testing.T) {
	dir := t.TempDir()
	good := testReq(5, 15, montecarlo.ShardSize)
	bad := good
	bad.Kernel = "cachetest/no-such-kernel"
	rep, err := Prefetch(context.Background(), New(dist.Local{}, Options{Dir: dir}), []montecarlo.Request{bad, good})
	if err == nil {
		t.Fatal("prefetch with a broken request reported no error")
	}
	if rep.Failed != 1 || rep.Fetched != 1 {
		t.Fatalf("report = %+v, want 1 failed / 1 fetched (pass continues past failures)", rep)
	}
}
