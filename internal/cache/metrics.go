package cache

// Registry handles for the cache layer. Per-Executor Stats stay the
// source of truth for `cs cache stats` (tests build many independent
// executors, which must not cross-contaminate); the global registry
// aggregates across every executor in the process for /metrics.

import "carriersense/internal/obs"

var (
	mHits = obs.Default().Counter("cs_cache_hits_total",
		"Estimations served from the in-memory cache layer.")
	mDiskHits = obs.Default().Counter("cs_cache_disk_hits_total",
		"Estimations served from the persistent cache layer.")
	mMisses = obs.Default().Counter("cs_cache_misses_total",
		"Estimations evaluated by the inner executor on cache miss.")
	mEvictions = obs.Default().Counter("cs_cache_evictions_total",
		"In-memory LRU evictions.")
	mDiskEvictions = obs.Default().Counter("cs_cache_disk_evictions_total",
		"Persistent-layer LRU evictions under the disk byte budget.")
	mWriteFails = obs.Default().Counter("cs_cache_write_fails_total",
		"Best-effort persistent cache writes that failed.")
	mCorrupt = obs.Default().Counter("cs_cache_corrupt_total",
		"Disk entries that failed integrity verification and were quarantined.")
	mPrefetchFills = obs.Default().Counter("cs_cache_prefetch_fills_total",
		"Cache entries filled by plan-driven prefetch passes.")
	mLookupSeconds = obs.Default().Histogram("cs_cache_lookup_seconds",
		"Wall time to resolve a request against memory and disk layers, before any inner evaluation.", nil)
)
