package cache

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// The test kernel: a scalar integrand with one serialized knob,
// registered once for this package's tests.
type testParams struct {
	Scale float64 `json:"scale"`
}

func init() {
	montecarlo.RegisterKernel("cachetest/scaled", func(raw json.RawMessage) (montecarlo.EvalFunc, error) {
		var p testParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		return func(src *rng.Source, out []float64) {
			out[0] = p.Scale * src.Float64()
			out[1] = src.Normal(0, 1)
		}, nil
	})
}

// countingExecutor wraps an inner executor and counts evaluations.
type countingExecutor struct {
	inner montecarlo.Executor
	calls atomic.Int64
}

func (c *countingExecutor) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	c.calls.Add(1)
	return c.inner.EstimateVec(ctx, req)
}

func testReq(scale float64, seed uint64, samples int) montecarlo.Request {
	raw, _ := json.Marshal(testParams{Scale: scale})
	return montecarlo.Request{Kernel: "cachetest/scaled", Params: raw, Seed: seed, Samples: samples, Dim: 2}
}

func mustEstimate(t *testing.T, e montecarlo.Executor, req montecarlo.Request) []montecarlo.Accumulator {
	t.Helper()
	accs, err := e.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func sameAccs(a, b []montecarlo.Accumulator) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Accumulator is comparable; State() captures the exact bits.
		if a[i].State() != b[i].State() {
			return false
		}
	}
	return true
}

func TestHitIsBitIdenticalToFreshRun(t *testing.T) {
	inner := &countingExecutor{inner: dist.Local{}}
	e := New(inner, Options{})
	req := testReq(2.5, 11, 3*montecarlo.ShardSize+77)

	fresh, err := montecarlo.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	first := mustEstimate(t, e, req)
	second := mustEstimate(t, e, req)
	if !sameAccs(first, fresh) {
		t.Error("miss result differs from a direct run")
	}
	if !sameAccs(second, fresh) {
		t.Error("hit result not bit-identical to a fresh run")
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner executor called %d times, want 1", got)
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestDifferentRequestsMiss(t *testing.T) {
	inner := &countingExecutor{inner: dist.Local{}}
	e := New(inner, Options{})
	base := testReq(1, 5, montecarlo.ShardSize)
	mustEstimate(t, e, base)

	variants := []montecarlo.Request{
		testReq(1, 6, montecarlo.ShardSize),     // different seed
		testReq(3, 5, montecarlo.ShardSize),     // different params
		testReq(1, 5, montecarlo.ShardSize+100), // different samples
	}
	for _, req := range variants {
		mustEstimate(t, e, req)
	}
	if got, want := inner.calls.Load(), int64(1+len(variants)); got != want {
		t.Errorf("inner executor called %d times, want %d (every variant is a miss)", got, want)
	}
	// And all four still hit afterwards.
	mustEstimate(t, e, base)
	for _, req := range variants {
		mustEstimate(t, e, req)
	}
	if got, want := inner.calls.Load(), int64(1+len(variants)); got != want {
		t.Errorf("repeats re-evaluated: %d inner calls, want %d", got, want)
	}
}

func TestLRUEvictionBound(t *testing.T) {
	inner := &countingExecutor{inner: dist.Local{}}
	e := New(inner, Options{MaxEntries: 2})
	a := testReq(1, 1, 100)
	b := testReq(1, 2, 100)
	c := testReq(1, 3, 100)
	mustEstimate(t, e, a)
	mustEstimate(t, e, b)
	mustEstimate(t, e, c) // evicts a (least recently used)
	if st := e.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats after 3 inserts with bound 2: %+v", st)
	}
	mustEstimate(t, e, c) // hit
	mustEstimate(t, e, b) // hit
	if got := inner.calls.Load(); got != 3 {
		t.Errorf("inner calls = %d, want 3 (b and c cached)", got)
	}
	mustEstimate(t, e, a) // evicted: miss again
	if got := inner.calls.Load(); got != 4 {
		t.Errorf("inner calls = %d, want 4 (a was evicted)", got)
	}
	if st := e.Stats(); st.Entries > 2 {
		t.Errorf("entry count %d exceeds bound 2", st.Entries)
	}
}

func TestComposesWithDistRemote(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(countingHandler(&served))
	defer srv.Close()
	remote, err := dist.NewRemote([]string{strings.TrimPrefix(srv.URL, "http://")})
	if err != nil {
		t.Fatal(err)
	}
	e := New(remote, Options{})
	req := testReq(0.5, 21, 2*montecarlo.ShardSize+9)

	local, err := montecarlo.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	first := mustEstimate(t, e, req)
	if !sameAccs(first, local) {
		t.Error("cache-over-remote result differs from local")
	}
	afterFirst := served.Load()
	if afterFirst == 0 {
		t.Fatal("remote worker served no requests on the miss")
	}
	second := mustEstimate(t, e, req)
	if !sameAccs(second, local) {
		t.Error("cached remote result not bit-identical to local")
	}
	if got := served.Load(); got != afterFirst {
		t.Errorf("hit reached the worker fleet: %d requests, want %d", got, afterFirst)
	}
}

// countingHandler wraps a dist worker server, counting every request
// that reaches it.
func countingHandler(served *atomic.Int64) http.Handler {
	inner := dist.NewServer()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		inner.ServeHTTP(w, r)
	})
}

func TestDiskPersistenceAcrossExecutors(t *testing.T) {
	dir := t.TempDir()
	req := testReq(4, 31, montecarlo.ShardSize+5)

	inner1 := &countingExecutor{inner: dist.Local{}}
	e1 := New(inner1, Options{Dir: dir})
	first := mustEstimate(t, e1, req)
	if st := e1.Stats(); st.WriteFails != 0 {
		t.Fatalf("disk writes failed: %+v", st)
	}

	// A brand-new executor over the same directory: served from disk,
	// inner never called.
	inner2 := &countingExecutor{inner: dist.Local{}}
	e2 := New(inner2, Options{Dir: dir})
	second := mustEstimate(t, e2, req)
	if !sameAccs(second, first) {
		t.Error("disk hit not bit-identical to the original result")
	}
	if got := inner2.calls.Load(); got != 0 {
		t.Errorf("inner called %d times despite disk entry", got)
	}
	if st := e2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 disk hit", st)
	}

	// Unrelated JSON in the same directory is neither counted nor
	// cleared: stats/clear touch only cache-owned <hexkey>.json files.
	foreign := filepath.Join(dir, "result.json")
	if err := os.WriteFile(foreign, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := StatDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Entries != 1 || ds.Bytes <= 0 {
		t.Errorf("dir stats = %+v, want 1 entry with nonzero size", ds)
	}
	removed, err := ClearDir(dir)
	if err != nil || removed != 1 {
		t.Errorf("ClearDir = (%d, %v), want (1, nil)", removed, err)
	}
	ds, _ = StatDir(dir)
	if ds.Entries != 0 {
		t.Errorf("entries after clear = %d", ds.Entries)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("ClearDir removed an unrelated JSON file: %v", err)
	}
}

func TestStatDirMissingIsEmpty(t *testing.T) {
	ds, err := StatDir("/definitely/not/a/real/dir")
	if err != nil || ds.Entries != 0 {
		t.Errorf("missing dir: %+v, %v", ds, err)
	}
}

func TestInvalidRequestRejected(t *testing.T) {
	e := New(nil, Options{})
	if _, err := e.EstimateVec(context.Background(), montecarlo.Request{}); err == nil {
		t.Error("invalid request accepted")
	}
}
