package cache

// Cache-aware orchestration: the Planner is a dry-run
// montecarlo.Executor that answers "which of this run's estimations
// are already paid for?" without evaluating anything. `cs all -cache
// -plan` installs it, replays every scenario against it, and prints
// the would-be hit/miss ledger before any real work is committed.
//
// A planned request that the persistent layer holds returns its real
// cached states, so downstream scenario logic (threshold searches
// branching on estimates) follows the same path the cached run will.
// A miss returns a zero-mean placeholder with the request's sample
// count — enough for most scenario code to proceed — and is recorded
// as work the real run would have to evaluate. Scenarios whose control
// flow depends on missing estimates may therefore over- or
// under-count subsequent requests; the plan is exact when everything
// hits and an approximation otherwise.

import (
	"context"
	"sync"

	"carriersense/internal/montecarlo"
)

// PlanEntry is one estimation the planned run would issue.
type PlanEntry struct {
	Kernel  string `json:"kernel"`
	Sampler string `json:"sampler,omitempty"`
	Samples int    `json:"samples"` // samples the request would evaluate (its shard span)
	Cached  bool   `json:"cached"`
}

// PlanSummary aggregates a planner's ledger.
type PlanSummary struct {
	Requests      int   `json:"requests"`
	Cached        int   `json:"cached"`
	ToEvaluate    int   `json:"to_evaluate"`
	SamplesCached int   `json:"samples_cached"`
	SamplesToEval int64 `json:"samples_to_evaluate"`
}

// Planner is the dry-run executor. It never evaluates and never
// writes entries; probing does refresh the mtime of entries it finds
// (the disk LRU counts a planned hit as recent use).
type Planner struct {
	probe *Executor // read path into the persistent layer

	mu      sync.Mutex
	entries []PlanEntry
	misses  []montecarlo.Request
}

// NewPlanner builds a dry-run executor over a persistent cache
// directory.
func NewPlanner(dir string) *Planner {
	return &Planner{probe: New(nil, Options{Dir: dir})}
}

// EstimateVec implements montecarlo.Executor: record, serve hits from
// disk, placeholder the misses.
func (p *Planner) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	entry := PlanEntry{Kernel: req.Kernel, Sampler: req.Sampler, Samples: req.SampleSpan()}
	states, hit := p.probe.loadDisk(Key(req), req)
	p.mu.Lock()
	entry.Cached = hit
	p.entries = append(p.entries, entry)
	if !hit {
		// Keep the full request, not just the ledger line: the misses
		// are exactly what a prefetch pass must evaluate to make the
		// real run all-hits.
		p.misses = append(p.misses, req)
	}
	p.mu.Unlock()
	if hit {
		return fromStates(states), nil
	}
	// Placeholder: the right sample count with a zero mean, so
	// scenario code sees plausible shapes without any evaluation.
	accs := make([]montecarlo.Accumulator, req.Dim)
	for i := range accs {
		accs[i] = montecarlo.FromState(montecarlo.AccumulatorState{N: req.SampleSpan()})
	}
	return accs, nil
}

// Entries returns a copy of the ledger in request order.
func (p *Planner) Entries() []PlanEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PlanEntry(nil), p.entries...)
}

// Misses returns the requests the planned run would have to evaluate,
// in request order, duplicates included (Prefetch dedupes by key).
func (p *Planner) Misses() []montecarlo.Request {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]montecarlo.Request(nil), p.misses...)
}

// Reset clears the ledger (between scenarios, so per-scenario
// summaries don't bleed into each other).
func (p *Planner) Reset() {
	p.mu.Lock()
	p.entries = p.entries[:0]
	p.misses = p.misses[:0]
	p.mu.Unlock()
}

// Summarize aggregates the ledger so far.
func (p *Planner) Summarize() PlanSummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s PlanSummary
	for _, e := range p.entries {
		s.Requests++
		if e.Cached {
			s.Cached++
			s.SamplesCached += e.Samples
		} else {
			s.ToEvaluate++
			s.SamplesToEval += int64(e.Samples)
		}
	}
	return s
}
