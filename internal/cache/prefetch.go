package cache

// Plan-driven prefetch: the bridge from the Planner's predicted-miss
// ledger to a warm cache. `cs run/all -cache -prefetch` dry-runs the
// scenario against the Planner first, hands the misses to Prefetch,
// and only then starts the real run — which therefore begins with the
// fleet's work already persisted and proceeds as straight cache hits.
// The payoff is largest on distributed runs: the prefetch pass streams
// every missing estimation through the worker fleet back to back,
// instead of interleaving fleet round trips with the scenario's
// between-estimation logic.

import (
	"context"
	"fmt"

	"carriersense/internal/montecarlo"
)

// PrefetchReport summarizes one prefetch pass.
type PrefetchReport struct {
	Planned int   `json:"planned"` // distinct estimations the plan predicted missing
	Fetched int   `json:"fetched"` // evaluated and persisted
	Skipped int   `json:"skipped"` // already present by the time the pass reached them
	Failed  int   `json:"failed"`  // evaluations that errored (the real run will retry)
	Samples int64 `json:"samples"` // samples evaluated by the pass
}

// Prefetch evaluates the given predicted-miss requests through a
// caching executor, persisting each result, so a subsequent run served
// by the same cache directory is all hits. Duplicate requests (the
// same estimation predicted missing by several scenarios) are fetched
// once, keyed exactly as the cache keys them.
//
// Failures do not abort the pass: a prefetch is a warm-up, and any
// estimation it could not fill is simply evaluated by the real run as
// it would have been anyway. The first failure is reported in the
// returned error alongside the (partial) report; a canceled context
// aborts the pass.
func Prefetch(ctx context.Context, exec *Executor, misses []montecarlo.Request) (PrefetchReport, error) {
	var rep PrefetchReport
	var firstErr error
	seen := make(map[string]struct{}, len(misses))
	for _, req := range misses {
		key := Key(req)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		rep.Planned++
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		// Another process (or an earlier duplicate under a different
		// sampler spelling) may have filled the entry since the plan
		// ran; serve-from-disk is what EstimateVec does anyway, so a
		// hit here is just a cheap skip.
		if _, hit := exec.loadDisk(key, req); hit {
			rep.Skipped++
			continue
		}
		if _, err := exec.EstimateVec(ctx, req); err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			rep.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("cache: prefetch %s (%d samples): %w", req.Kernel, req.SampleSpan(), err)
			}
			continue
		}
		rep.Fetched++
		mPrefetchFills.Inc()
		rep.Samples += int64(req.SampleSpan())
	}
	return rep, firstErr
}
