package cache

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
)

func TestKeyCoversSamplerAndShardRange(t *testing.T) {
	base := testReq(1, 5, 2*montecarlo.ShardSize)
	sampled := base
	sampled.Sampler = "antithetic"
	ranged := base
	ranged.FirstShard = 1
	keys := map[string]string{
		"base":    Key(base),
		"sampled": Key(sampled),
		"ranged":  Key(ranged),
	}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && ka == kb {
				t.Errorf("requests %s and %s share a cache key", a, b)
			}
		}
	}
}

func TestSamplerVariantsAreSeparateEntries(t *testing.T) {
	inner := &countingExecutor{inner: dist.Local{}}
	e := New(inner, Options{})
	plain := testReq(1, 9, montecarlo.ShardSize)
	anti := plain
	anti.Sampler = "plain" // registered, distinct key from ""
	mustEstimate(t, e, plain)
	mustEstimate(t, e, anti)
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("sampler variant served from the wrong entry: %d inner calls, want 2", got)
	}
	// A hit under each identity returns that identity's bits.
	if !sameAccs(mustEstimate(t, e, plain), mustEstimate(t, e, anti)) {
		// "" and "plain" are the same strategy, so the *values* agree
		// even though the entries are distinct.
		t.Error("plain and \"\" sampler results differ")
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("repeat lookups re-evaluated: %d inner calls, want 2", got)
	}
}

func TestDiskEvictionBound(t *testing.T) {
	dir := t.TempDir()
	// Measure one entry's on-disk size, then bound the directory to
	// roughly three entries and write six.
	probe := New(dist.Local{}, Options{Dir: dir})
	mustEstimate(t, probe, testReq(1, 1, montecarlo.ShardSize))
	st, err := StatDir(dir)
	if err != nil || st.Entries != 1 {
		t.Fatalf("probe entry: %+v, %v", st, err)
	}
	entrySize := st.Bytes
	if _, err := ClearDir(dir); err != nil {
		t.Fatal(err)
	}

	e := New(dist.Local{}, Options{Dir: dir, MaxBytes: 3*entrySize + entrySize/2})
	for seed := uint64(1); seed <= 6; seed++ {
		mustEstimate(t, e, testReq(1, seed, montecarlo.ShardSize))
		// Distinct mtimes so LRU order is unambiguous on coarse
		// filesystem clocks.
		time.Sleep(5 * time.Millisecond)
	}
	st, err = StatDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes > 3*entrySize+entrySize/2 {
		t.Errorf("disk layer over budget: %d bytes for a %d-byte bound", st.Bytes, 3*entrySize+entrySize/2)
	}
	if st.Entries == 0 || st.Entries > 3 {
		t.Errorf("disk layer holds %d entries, want 1-3 under a ~3-entry budget", st.Entries)
	}
	if ev := e.Stats().DiskEvictions; ev < 3 {
		t.Errorf("DiskEvictions = %d, want >= 3", ev)
	}
	// The survivors are the most recently written: the oldest seeds'
	// entries are gone.
	for seed := uint64(1); seed <= 6; seed++ {
		_, statErr := os.Stat(filepath.Join(dir, Key(testReq(1, seed, montecarlo.ShardSize))+".json"))
		exists := statErr == nil
		if seed <= 3 && exists {
			t.Errorf("old entry for seed %d survived eviction", seed)
		}
		if seed > 3 && !exists {
			t.Errorf("recent entry for seed %d was evicted", seed)
		}
	}
}

func TestDiskHitRefreshesRecency(t *testing.T) {
	dir := t.TempDir()
	e := New(dist.Local{}, Options{Dir: dir})
	old := testReq(1, 1, montecarlo.ShardSize)
	mustEstimate(t, e, old)
	path := filepath.Join(dir, Key(old)+".json")
	stale := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, stale, stale); err != nil {
		t.Fatal(err)
	}
	// A disk hit from a fresh executor must bump the mtime so eviction
	// sees the entry as live.
	fresh := New(dist.Local{}, Options{Dir: dir})
	mustEstimate(t, fresh, old)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().After(stale.Add(time.Minute)) {
		t.Errorf("disk hit left mtime at %v; eviction would treat the entry as cold", info.ModTime())
	}
}

func TestPlannerLedger(t *testing.T) {
	dir := t.TempDir()
	warm := New(dist.Local{}, Options{Dir: dir})
	cached := testReq(1, 3, montecarlo.ShardSize)
	mustEstimate(t, warm, cached)

	p := NewPlanner(dir)
	fromCache := mustEstimate(t, p, cached)
	if !sameAccs(fromCache, mustEstimate(t, warm, cached)) {
		t.Error("planner hit did not return the cached bits")
	}
	missing := testReq(2, 4, 2*montecarlo.ShardSize)
	placeholder := mustEstimate(t, p, missing)
	if placeholder[0].N() != missing.Samples {
		t.Errorf("placeholder N = %d, want the request's %d samples", placeholder[0].N(), missing.Samples)
	}
	if placeholder[0].Estimate().Mean != 0 {
		t.Error("placeholder mean should be zero")
	}

	s := p.Summarize()
	if s.Requests != 2 || s.Cached != 1 || s.ToEvaluate != 1 {
		t.Errorf("summary = %+v, want 2 requests / 1 cached / 1 to evaluate", s)
	}
	if s.SamplesToEval != int64(missing.Samples) {
		t.Errorf("samples to evaluate = %d, want %d", s.SamplesToEval, missing.Samples)
	}
	// Nothing was written: the missing request still misses.
	if _, err := os.Stat(filepath.Join(dir, Key(missing)+".json")); err == nil {
		t.Error("planner wrote a cache entry for a miss")
	}
	p.Reset()
	if got := p.Summarize().Requests; got != 0 {
		t.Errorf("reset ledger still has %d requests", got)
	}
}
