package cache

import (
	"encoding/json"
	"math"
	"testing"

	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// The control-variate spec joined the cache key in epoch 4: two
// requests that differ only in (β, μ) compute different adjusted
// variables and must never share an entry.

// The test kernel's twin: its first uniform, exact mean 1/2 — the
// prefix-consumption contract control twins follow.
func init() {
	montecarlo.RegisterControlTwin("cachetest/scaled", montecarlo.ControlTwin{
		Eval: func(raw json.RawMessage) (montecarlo.EvalFunc, error) {
			return func(src *rng.Source, out []float64) {
				u := src.Float64()
				out[0] = u
				out[1] = u
			}, nil
		},
		Means: func(raw json.RawMessage) ([]float64, error) {
			return []float64{0.5, math.NaN()}, nil
		},
	})
}

func controlReq(beta float64) montecarlo.Request {
	req := testReq(1, 5, montecarlo.ShardSize)
	req.Control = &montecarlo.ControlSpec{Beta: []float64{beta, 0}, Mean: []float64{0.5, 0}}
	return req
}

func TestControlSpecPartOfCacheKey(t *testing.T) {
	a := Key(controlReq(1))
	b := Key(controlReq(2))
	if a == b {
		t.Error("different β produced the same cache key")
	}
	if c := Key(testReq(1, 5, montecarlo.ShardSize)); a == c {
		t.Error("control-adjusted request shares a key with the unadjusted one")
	}
}

func TestControlSpecRoundTripsThroughDisk(t *testing.T) {
	dir := t.TempDir()
	first := New(&countingExecutor{inner: dist.Local{}}, Options{Dir: dir})
	want := mustEstimate(t, first, controlReq(1))

	// A second process (fresh Cache over the same directory) must hit
	// and verify the stored spec against the request's.
	second := New(&countingExecutor{inner: dist.Local{}}, Options{Dir: dir})
	got := mustEstimate(t, second, controlReq(1))
	if !sameAccs(got, want) {
		t.Error("disk hit not bit-identical")
	}
	if st := second.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want a pure disk hit", st)
	}

	// A different β is a different computation: full miss.
	third := New(&countingExecutor{inner: dist.Local{}}, Options{Dir: dir})
	other := mustEstimate(t, third, controlReq(2))
	if st := third.Stats(); st.Misses != 1 {
		t.Errorf("different β hit a stale entry: stats %+v", st)
	}
	if sameAccs(other, want) {
		t.Error("β=2 result equals β=1 result; adjustment not applied")
	}
}
