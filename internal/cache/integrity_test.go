package cache

// Disk-entry integrity: a damaged persistent entry must read as a
// miss — never a wrong result — be counted, and be quarantined out of
// the entry namespace. Each corruption in the trio (truncated file,
// flipped payload byte, wrong-length header) is applied to a freshly
// written entry; the re-estimation after the miss must be
// bit-identical to an undamaged run.

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"carriersense/internal/dist"
	"carriersense/internal/fault"
	"carriersense/internal/montecarlo"
)

// writeEntryVia runs one estimation through a disk-backed executor so
// the persistent layer holds exactly one sealed entry, and returns
// the entry path plus the clean result.
func writeEntryVia(t *testing.T, dir string, req montecarlo.Request) (string, []montecarlo.Accumulator) {
	t.Helper()
	e := New(dist.Local{}, Options{Dir: dir})
	clean := mustEstimate(t, e, req)
	path := filepath.Join(dir, Key(req)+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("estimation left no disk entry: %v", err)
	}
	return path, clean
}

// reload builds a fresh executor over the same directory (no warm
// memory layer) and returns its result and stats for one estimation.
func reload(t *testing.T, dir string, req montecarlo.Request) ([]montecarlo.Accumulator, Stats) {
	t.Helper()
	e := New(dist.Local{}, Options{Dir: dir})
	got := mustEstimate(t, e, req)
	return got, e.Stats()
}

func TestCorruptDiskEntriesReadAsMisses(t *testing.T) {
	req := testReq(1.25, 42, montecarlo.ShardSize+17)
	damage := []struct {
		name   string
		mangle func(t *testing.T, path string, data []byte) []byte
	}{
		{"truncated file", func(t *testing.T, _ string, data []byte) []byte {
			return data[:len(data)/2]
		}},
		{"flipped payload byte", func(t *testing.T, _ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			// Flip a byte in the middle of the JSON payload — past the
			// header line, inside checksummed bytes.
			nl := bytes.IndexByte(out, '\n')
			out[nl+1+(len(out)-nl)/2] ^= 0x01
			return out
		}},
		{"wrong-length header", func(t *testing.T, _ string, data []byte) []byte {
			nl := bytes.IndexByte(data, '\n')
			fields := strings.Fields(string(data[:nl]))
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				t.Fatalf("unparseable entry header %q", string(data[:nl]))
			}
			fields[2] = strconv.Itoa(n + 8)
			return append([]byte(strings.Join(fields, " ")+"\n"), data[nl+1:]...)
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			path, clean := writeEntryVia(t, dir, req)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, d.mangle(t, path, data), 0o644); err != nil {
				t.Fatal(err)
			}
			got, st := reload(t, dir, req)
			if !sameAccs(got, clean) {
				t.Fatal("result after corruption differs from the clean run")
			}
			if st.DiskHits != 0 || st.Misses != 1 {
				t.Fatalf("corrupt entry did not read as a miss: %+v", st)
			}
			if st.Corrupt != 1 {
				t.Fatalf("Stats.Corrupt = %d, want 1", st.Corrupt)
			}
			// The damaged file left the entry namespace for the
			// quarantine sidecar...
			if _, err := os.Stat(filepath.Join(dir, QuarantineDir, Key(req)+".json")); err != nil {
				t.Fatalf("corrupt entry not quarantined: %v", err)
			}
			ds, err := StatDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if ds.Quarantined != 1 {
				t.Fatalf("DirStats.Quarantined = %d, want 1", ds.Quarantined)
			}
			// ...and the miss stored a fresh, healthy entry in its place
			// (the estimation above re-wrote it), so the next executor
			// gets a disk hit again.
			if _, st := reload(t, dir, req); st.DiskHits != 1 {
				t.Fatalf("re-written entry not served from disk: %+v", st)
			}
		})
	}
}

func TestLegacyHeaderlessEntryMissesWithoutQuarantine(t *testing.T) {
	req := testReq(2, 7, montecarlo.ShardSize)
	dir := t.TempDir()
	path, clean := writeEntryVia(t, dir, req)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the header: exactly what a pre-integrity binary wrote.
	nl := bytes.IndexByte(data, '\n')
	if err := os.WriteFile(path, data[nl+1:], 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := reload(t, dir, req)
	if !sameAccs(got, clean) {
		t.Fatal("result over a legacy entry differs from the clean run")
	}
	if st.Corrupt != 0 {
		t.Fatalf("legacy entry counted as corrupt: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir)); !os.IsNotExist(err) {
		t.Fatal("legacy entry was quarantined; want a silent miss")
	}
}

func TestInjectedCacheFlipQuarantines(t *testing.T) {
	// The fault layer's flip=1 mangles the first disk load; the
	// integrity check must turn it into a quarantined miss with a
	// bit-identical recomputation — the chaos smoke's cache leg, in
	// miniature.
	sched, err := fault.Parse("cache:flip=1,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(sched.Plan("cache"))
	t.Cleanup(func() { fault.Install(nil) })

	req := testReq(3, 13, montecarlo.ShardSize)
	dir := t.TempDir()
	_, clean := writeEntryVia(t, dir, req)
	got, st := reload(t, dir, req)
	if !sameAccs(got, clean) {
		t.Fatal("result under an injected flip differs from the clean run")
	}
	if st.Corrupt != 1 || st.DiskHits != 0 || st.Misses != 1 {
		t.Fatalf("injected flip not treated as corruption: %+v", st)
	}
	// Budget spent: the re-written entry loads clean.
	if _, st := reload(t, dir, req); st.DiskHits != 1 || st.Corrupt != 0 {
		t.Fatalf("post-flip reload not a clean disk hit: %+v", st)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	payload := []byte(`{"states":[1,2,3]}`)
	got, err := openEntry(sealEntry(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, want %q", got, payload)
	}
	if _, err := openEntry(nil); err == nil {
		t.Fatal("empty file opened without error")
	}
}
