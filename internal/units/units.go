// Package units provides conversions between linear power ratios and
// decibels, along with small helpers for dBm-referenced powers and
// path-loss-equivalent distances.
//
// Throughout the model (see DESIGN.md §4) powers are dimensionless
// linear ratios relative to P0, the signal power at unit distance.
// The packet-level simulator instead works in dBm; both conventions
// meet here.
package units

import "math"

// DB converts a linear power ratio to decibels.
// DB(0) returns -Inf, which is the correct limiting value and flows
// through the capacity formulas safely.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// Linear converts decibels to a linear power ratio.
func Linear(db float64) float64 {
	return math.Pow(10, db/10)
}

// DBmToWatts converts a power in dBm to watts.
func DBmToWatts(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// WattsToDBm converts a power in watts to dBm.
func WattsToDBm(w float64) float64 {
	return 10*math.Log10(w) + 30
}

// MilliwattsToDBm converts a power in milliwatts to dBm.
func MilliwattsToDBm(mw float64) float64 {
	return 10 * math.Log10(mw)
}

// DBmToMilliwatts converts a power in dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 {
	return math.Pow(10, dbm/10)
}

// PathLossDistance returns the distance at which a power-law path loss
// with exponent alpha produces the given linear power ratio p relative
// to unit distance: the D such that D^-alpha == p.
//
// This is the paper's D_threshold = P_threshold^(-1/alpha) relation
// (§3.2.2, with the sign convention fixed per DESIGN.md §4).
func PathLossDistance(p, alpha float64) float64 {
	return math.Pow(p, -1/alpha)
}

// PathLossPower returns the linear power ratio received at distance d
// under a power-law path loss with exponent alpha: d^-alpha.
func PathLossPower(d, alpha float64) float64 {
	return math.Pow(d, -alpha)
}

// EquivalentDistance re-expresses a power threshold as a distance under
// a *different* path loss exponent. Figure 7 of the paper plots optimal
// thresholds "expressed as the equivalent distance at α = 3" so that
// curves for different propagation environments share one axis.
func EquivalentDistance(p, alpha float64) float64 {
	return PathLossDistance(p, alpha)
}

// SNRFromPowers returns the linear signal-to-noise-plus-interference
// ratio for the given linear signal, interference and noise powers.
func SNRFromPowers(signal, interference, noise float64) float64 {
	return signal / (noise + interference)
}
