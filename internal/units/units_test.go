package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDBLinearKnownValues(t *testing.T) {
	cases := []struct {
		linear, db float64
	}{
		{1, 0},
		{10, 10},
		{100, 20},
		{0.1, -10},
		{2, 3.0103},
	}
	for _, c := range cases {
		if got := DB(c.linear); !almost(got, c.db, 1e-3) {
			t.Errorf("DB(%v) = %v, want %v", c.linear, got, c.db)
		}
		if got := Linear(c.db); !almost(got, c.linear, 1e-3) {
			t.Errorf("Linear(%v) = %v, want %v", c.db, got, c.linear)
		}
	}
}

func TestDBOfZeroIsNegInf(t *testing.T) {
	if !math.IsInf(DB(0), -1) {
		t.Errorf("DB(0) = %v, want -Inf", DB(0))
	}
}

func TestDBLinearRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		db := math.Mod(x, 200) // keep in a numerically sane range
		return almost(DB(Linear(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmConversions(t *testing.T) {
	if got := DBmToWatts(30); !almost(got, 1, 1e-12) {
		t.Errorf("DBmToWatts(30) = %v, want 1", got)
	}
	if got := WattsToDBm(0.001); !almost(got, 0, 1e-9) {
		t.Errorf("WattsToDBm(1mW) = %v, want 0", got)
	}
	if got := DBmToMilliwatts(-95); !almost(got, 3.1623e-10, 1e-13) {
		t.Errorf("DBmToMilliwatts(-95) = %v", got)
	}
	if got := MilliwattsToDBm(DBmToMilliwatts(-42.5)); !almost(got, -42.5, 1e-9) {
		t.Errorf("mW/dBm round trip = %v, want -42.5", got)
	}
}

func TestPathLossDistancePowerInverse(t *testing.T) {
	f := func(rawD, rawA float64) bool {
		d := 0.1 + math.Abs(math.Mod(rawD, 1000))
		alpha := 1 + math.Abs(math.Mod(rawA, 5))
		p := PathLossPower(d, alpha)
		return almost(PathLossDistance(p, alpha), d, d*1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLossThresholdExample(t *testing.T) {
	// The paper's D_thresh = 55 at α = 3 corresponds to P_thresh ≈
	// -52.2 dB; check both directions.
	p := PathLossPower(55, 3)
	if db := DB(p); !almost(db, -52.21, 0.05) {
		t.Errorf("55^-3 = %v dB, want about -52.2", db)
	}
	if d := PathLossDistance(p, 3); !almost(d, 55, 1e-9) {
		t.Errorf("inverse distance = %v, want 55", d)
	}
}

func TestEquivalentDistanceCrossAlpha(t *testing.T) {
	// A power threshold measured under α = 4 re-expressed at α = 3
	// must give a larger distance (same power falls off faster at
	// higher α, so the α = 3 world reaches it farther out).
	p := PathLossPower(30, 4) // 30^-4
	d3 := EquivalentDistance(p, 3)
	if d3 <= 30 {
		t.Errorf("equivalent distance at alpha=3 = %v, want > 30", d3)
	}
}

func TestSNRFromPowers(t *testing.T) {
	if got := SNRFromPowers(10, 0, 2); !almost(got, 5, 1e-12) {
		t.Errorf("SNR = %v, want 5", got)
	}
	if got := SNRFromPowers(10, 3, 2); !almost(got, 2, 1e-12) {
		t.Errorf("SINR = %v, want 2", got)
	}
}
