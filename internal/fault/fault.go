// Package fault is a deterministic, seeded fault-injection layer for
// the distributed executor and the persistent cache. A fault schedule
// is a small textual program — which process misbehaves, how, and
// when — parsed once at startup and installed as an immutable Plan
// behind a single atomic pointer. Production builds with no schedule
// installed pay exactly one nil check per hook site; everything else
// is compiled in but dormant.
//
// Schedule grammar (the `-fault` flag), comma-separated clauses:
//
//	target:kind[@batchN][=value]
//	seed=N
//
// where target names a process (`cs serve -fault-id worker1` matches
// clauses whose target is "worker1"; `*` matches every process) and
// kind is one of:
//
//	crash@batchN      exit the process when it begins its Nth batch
//	slow=DUR          sleep DUR before every batch (append @batchN to
//	                  straggle only that one batch)
//	corrupt@batchN    flip a structural byte in the Nth batch's result
//	                  frame, so the coordinator's decode fails loudly
//	truncate@batchN   announce the Nth result frame's full length but
//	                  deliver half of it, then sever the connection
//	refuse=N          sever the first N HTTP requests without an
//	                  answer (a dead/unreachable worker that heals)
//	flip=N            flip one bit in each of the first N disk-cache
//	                  entry loads (the integrity layer must quarantine)
//
// Example: `worker1:crash@batch3,worker2:slow=200ms,cache:flip=1`.
//
// Determinism: every fault fires at a fixed ordinal of a per-process
// monotonic counter (batches begun, requests received, cache loads),
// and mutation positions derive from the schedule seed — the same
// schedule against the same run misbehaves identically. None of it
// can change *results*: crashes, refusals, and slowness only steer
// scheduling (shard accumulators merge by index, in shard order), and
// corruption targets are the structural frame bytes and checksummed
// cache entries, both of which fail loudly and re-dispatch or miss.
package fault

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	Crash Kind = iota
	Slow
	Corrupt
	Truncate
	Refuse
	Flip
)

// String implements fmt.Stringer (schedule keywords).
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Slow:
		return "slow"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case Refuse:
		return "refuse"
	case Flip:
		return "flip"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Rule is one parsed schedule clause.
type Rule struct {
	Target string        // process id the clause applies to ("*" = all)
	Kind   Kind          // what to inject
	Batch  int           // 1-based batch ordinal; 0 = every batch (Slow only)
	Count  int           // budget for Refuse/Flip
	Delay  time.Duration // Slow latency
}

// Schedule is a parsed fault schedule, shared verbatim by every
// process of a run; each process selects its own clauses with Plan.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// Parse parses a `-fault` schedule. The empty string is an error —
// "no faults" is expressed by not installing a plan at all.
func Parse(spec string) (*Schedule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("fault: empty schedule")
	}
	s := &Schedule{Seed: 1}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return nil, fmt.Errorf("fault: empty clause in %q", spec)
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			s.Seed = seed
			continue
		}
		target, body, ok := strings.Cut(clause, ":")
		if !ok || target == "" || body == "" {
			return nil, fmt.Errorf("fault: bad clause %q (want target:kind[@batchN][=value])", clause)
		}
		r := Rule{Target: target}
		if at := strings.Index(body, "@batch"); at >= 0 {
			n, err := strconv.Atoi(body[at+len("@batch"):])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad batch ordinal in %q (want @batchN, N >= 1)", clause)
			}
			r.Batch = n
			body = body[:at]
		}
		kind, val, hasVal := strings.Cut(body, "=")
		switch kind {
		case "crash":
			r.Kind = Crash
			if hasVal || r.Batch == 0 {
				return nil, fmt.Errorf("fault: crash takes @batchN and no value: %q", clause)
			}
		case "slow":
			r.Kind = Slow
			d, err := time.ParseDuration(val)
			if !hasVal || err != nil || d <= 0 {
				return nil, fmt.Errorf("fault: slow needs a positive duration (slow=200ms): %q", clause)
			}
			r.Delay = d
		case "corrupt":
			r.Kind = Corrupt
			if hasVal || r.Batch == 0 {
				return nil, fmt.Errorf("fault: corrupt takes @batchN and no value: %q", clause)
			}
		case "truncate":
			r.Kind = Truncate
			if hasVal || r.Batch == 0 {
				return nil, fmt.Errorf("fault: truncate takes @batchN and no value: %q", clause)
			}
		case "refuse":
			r.Kind = Refuse
			n, err := strconv.Atoi(val)
			if !hasVal || err != nil || n < 1 || r.Batch != 0 {
				return nil, fmt.Errorf("fault: refuse needs a positive count (refuse=3): %q", clause)
			}
			r.Count = n
		case "flip":
			r.Kind = Flip
			n, err := strconv.Atoi(val)
			if !hasVal || err != nil || n < 1 || r.Batch != 0 {
				return nil, fmt.Errorf("fault: flip needs a positive count (flip=1): %q", clause)
			}
			r.Count = n
		default:
			return nil, fmt.Errorf("fault: unknown kind %q in %q (want crash, slow, corrupt, truncate, refuse, or flip)", kind, clause)
		}
		s.Rules = append(s.Rules, r)
	}
	return s, nil
}

// Plan selects the schedule's clauses for one process: rules whose
// target is any of ids or "*". Returns nil when nothing matches — the
// process then runs with the hooks fully dormant.
func (s *Schedule) Plan(ids ...string) *Plan {
	p := &Plan{seed: s.Seed, OnCrash: func() { os.Exit(3) }}
	for _, r := range s.Rules {
		match := r.Target == "*"
		for _, id := range ids {
			if r.Target == id {
				match = true
			}
		}
		if match {
			p.rules = append(p.rules, r)
		}
	}
	if len(p.rules) == 0 {
		return nil
	}
	return p
}

// Plan is one process's share of a schedule: immutable rules plus the
// monotonic counters the rules key off. Safe for concurrent use.
type Plan struct {
	seed  uint64
	rules []Rule
	// OnCrash is what a Crash rule executes once its batch ordinal
	// comes up. Defaults to os.Exit(3); in-process tests override it
	// before Install to observe the crash instead of dying of it.
	OnCrash func()

	batches atomic.Int64 // batches begun (WorkerBatch)
	refused atomic.Int64 // HTTP requests severed (RefuseRequest)
	flipped atomic.Int64 // cache loads mangled (MangleCacheLoad)
}

// String summarizes the active rules (startup stderr notice).
func (p *Plan) String() string {
	var parts []string
	for _, r := range p.rules {
		s := r.Target + ":" + r.Kind.String()
		if r.Batch > 0 {
			s += fmt.Sprintf("@batch%d", r.Batch)
		}
		if r.Count > 0 {
			s += fmt.Sprintf("=%d", r.Count)
		}
		if r.Delay > 0 {
			s += "=" + r.Delay.String()
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

// current is the process-global plan. One atomic load per hook site;
// nil (the default) means every hook is a no-op.
var current atomic.Pointer[Plan]

// Install makes p the process's active plan (nil uninstalls).
func Install(p *Plan) { current.Store(p) }

// Current returns the active plan, or nil when fault injection is off.
// Callers must nil-check: `if f := fault.Current(); f != nil { ... }`.
func Current() *Plan { return current.Load() }

// WorkerBatch marks the beginning of one shard batch on a worker and
// applies batch-scoped faults: Slow sleeps, Crash exits. It returns
// the batch's 1-based ordinal for result-frame faults downstream.
func (p *Plan) WorkerBatch() int {
	n := int(p.batches.Add(1))
	for _, r := range p.rules {
		switch r.Kind {
		case Slow:
			if r.Batch == 0 || r.Batch == n {
				mSlow.Inc()
				time.Sleep(r.Delay)
			}
		case Crash:
			if r.Batch == n {
				mCrash.Inc()
				fmt.Fprintf(os.Stderr, "fault: injected crash at batch %d\n", n)
				p.OnCrash()
			}
		}
	}
	return n
}

// RefuseRequest reports whether this HTTP request should be severed
// without an answer (the first Count requests of a Refuse rule).
func (p *Plan) RefuseRequest() bool {
	for _, r := range p.rules {
		if r.Kind != Refuse {
			continue
		}
		if p.refused.Add(1) <= int64(r.Count) {
			mRefuse.Inc()
			return true
		}
		return false
	}
	return false
}

// MangleResultFrame applies Corrupt/Truncate rules to the result
// frame of the batch with the given ordinal. Corrupt flips a
// structural byte (the frame's shard-count word) so the coordinator's
// decode fails loudly and re-dispatches — never a byte of accumulator
// state, which would pass validation and break bit-identity silently.
// truncate=true asks the caller to deliver half the payload and sever
// the connection.
func (p *Plan) MangleResultFrame(ordinal int, payload []byte) (out []byte, truncate bool) {
	for _, r := range p.rules {
		switch r.Kind {
		case Corrupt:
			if r.Batch == ordinal && len(payload) >= 12 {
				mCorrupt.Inc()
				// Bytes 4..7 hold the frame's shard count; a seeded
				// flip there guarantees a decode-side length mismatch.
				payload[4+int(p.seed%4)] ^= 0x40 | byte(p.seed&0x3f) | 1
			}
		case Truncate:
			if r.Batch == ordinal {
				mTruncate.Inc()
				truncate = true
			}
		}
	}
	return payload, truncate
}

// MangleCacheLoad flips one seeded bit in each of the first Count
// disk-cache entry reads of a Flip rule; the cache's integrity check
// must turn the damage into a quarantined miss.
func (p *Plan) MangleCacheLoad(data []byte) []byte {
	for _, r := range p.rules {
		if r.Kind != Flip || len(data) == 0 {
			continue
		}
		if p.flipped.Add(1) <= int64(r.Count) {
			mFlip.Inc()
			mangled := append([]byte(nil), data...)
			mangled[int(p.seed)%len(mangled)] ^= 1 << (p.seed % 8)
			return mangled
		}
		return data
	}
	return data
}
