package fault

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseSchedule(t *testing.T) {
	s, err := Parse("worker1:crash@batch3,worker2:slow=200ms,worker3:refuse=4,cache:flip=2,seed=9")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Seed != 9 {
		t.Fatalf("seed = %d, want 9", s.Seed)
	}
	want := []Rule{
		{Target: "worker1", Kind: Crash, Batch: 3},
		{Target: "worker2", Kind: Slow, Delay: 200 * time.Millisecond},
		{Target: "worker3", Kind: Refuse, Count: 4},
		{Target: "cache", Kind: Flip, Count: 2},
	}
	if len(s.Rules) != len(want) {
		t.Fatalf("got %d rules, want %d: %+v", len(s.Rules), len(want), s.Rules)
	}
	for i, r := range s.Rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"",                      // empty schedule
		"worker1",               // no kind
		"worker1:",              // empty body
		":crash@batch1",         // empty target
		"worker1:crash",         // crash without a batch ordinal
		"worker1:crash@batch0",  // ordinal must be >= 1
		"worker1:slow",          // slow without a duration
		"worker1:slow=banana",   // bad duration
		"worker1:slow=-5ms",     // negative duration
		"worker1:refuse",        // refuse without a count
		"worker1:refuse=0",      // zero count
		"worker1:refuse@batch2", // refuse is not batch-scoped
		"worker1:corrupt=3",     // corrupt takes no value
		"worker1:explode@batch1",
		"seed=minus",
		"worker1:crash@batch1,,worker2:slow=1ms",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestPlanSelectsByTarget(t *testing.T) {
	s, err := Parse("worker1:crash@batch1,worker2:slow=1ms,*:refuse=1,cache:flip=1")
	if err != nil {
		t.Fatal(err)
	}
	p := s.Plan("worker2")
	if p == nil {
		t.Fatal("Plan(worker2) = nil")
	}
	// worker2 gets its own slow rule plus the wildcard refuse rule.
	if got := p.String(); !strings.Contains(got, "slow") || !strings.Contains(got, "refuse") ||
		strings.Contains(got, "crash") || strings.Contains(got, "flip") {
		t.Fatalf("Plan(worker2) rules = %q", got)
	}
	if s.Plan("worker9", "coord") == nil {
		t.Fatal("wildcard rule should match any id")
	}
	noWild, err := Parse("worker1:crash@batch1")
	if err != nil {
		t.Fatal(err)
	}
	if p := noWild.Plan("worker2"); p != nil {
		t.Fatalf("Plan for unmatched target = %v, want nil", p)
	}
}

func TestInstallCurrent(t *testing.T) {
	t.Cleanup(func() { Install(nil) })
	if Current() != nil {
		t.Fatal("Current() non-nil before Install")
	}
	s, _ := Parse("w:slow=1ms")
	p := s.Plan("w")
	Install(p)
	if Current() != p {
		t.Fatal("Current() did not return the installed plan")
	}
	Install(nil)
	if Current() != nil {
		t.Fatal("Install(nil) did not uninstall")
	}
}

func TestCrashFiresAtItsOrdinalOnly(t *testing.T) {
	s, _ := Parse("w:crash@batch3")
	p := s.Plan("w")
	crashed := 0
	p.OnCrash = func() { crashed++ }
	for i := 1; i <= 5; i++ {
		got := p.WorkerBatch()
		if got != i {
			t.Fatalf("WorkerBatch ordinal = %d, want %d", got, i)
		}
	}
	if crashed != 1 {
		t.Fatalf("crash fired %d times, want once (at batch 3)", crashed)
	}
}

func TestSlowEveryBatchVsOneBatch(t *testing.T) {
	s, _ := Parse("w:slow=10ms@batch2")
	p := s.Plan("w")
	start := time.Now()
	p.WorkerBatch() // batch 1: no delay
	fast := time.Since(start)
	start = time.Now()
	p.WorkerBatch() // batch 2: the straggler
	slow := time.Since(start)
	if slow < 10*time.Millisecond {
		t.Fatalf("batch 2 took %v, want >= 10ms", slow)
	}
	if fast >= 10*time.Millisecond {
		t.Fatalf("batch 1 took %v, want un-delayed", fast)
	}
}

func TestRefuseBudget(t *testing.T) {
	s, _ := Parse("w:refuse=2")
	p := s.Plan("w")
	refused := 0
	for i := 0; i < 5; i++ {
		if p.RefuseRequest() {
			refused++
		}
	}
	if refused != 2 {
		t.Fatalf("refused %d requests, want 2", refused)
	}
}

func TestMangleResultFrameHitsStructuralBytesOnly(t *testing.T) {
	s, _ := Parse("w:corrupt@batch2,seed=7")
	p := s.Plan("w")
	payload := make([]byte, 64)
	clean := append([]byte(nil), payload...)
	out, trunc := p.MangleResultFrame(1, payload)
	if trunc || !bytes.Equal(out, clean) {
		t.Fatal("batch 1 frame mangled; rule is @batch2")
	}
	out, trunc = p.MangleResultFrame(2, payload)
	if trunc {
		t.Fatal("corrupt rule asked for truncation")
	}
	diff := -1
	for i := range out {
		if out[i] != clean[i] {
			if diff >= 0 {
				t.Fatalf("more than one byte changed (%d and %d)", diff, i)
			}
			diff = i
		}
	}
	// The flip must land in the structural header (bytes 4..7, the
	// shard-count word) — never in accumulator state, where it would
	// pass validation and silently break bit-identity.
	if diff < 4 || diff > 7 {
		t.Fatalf("corrupt flipped byte %d, want one of the shard-count bytes 4..7", diff)
	}
}

func TestMangleResultFrameTruncate(t *testing.T) {
	s, _ := Parse("w:truncate@batch1")
	p := s.Plan("w")
	payload := make([]byte, 32)
	_, trunc := p.MangleResultFrame(1, payload)
	if !trunc {
		t.Fatal("truncate rule did not request truncation at its ordinal")
	}
	if _, trunc = p.MangleResultFrame(2, payload); trunc {
		t.Fatal("truncate fired off its ordinal")
	}
}

func TestMangleCacheLoadFlipsOneBitDeterministically(t *testing.T) {
	s, _ := Parse("cache:flip=1,seed=1234")
	p := s.Plan("cache")
	data := bytes.Repeat([]byte{0xAA}, 100)
	got := p.MangleCacheLoad(data)
	if bytes.Equal(got, data) {
		t.Fatal("first load not mangled")
	}
	diffs := 0
	for i := range got {
		if x := got[i] ^ data[i]; x != 0 {
			diffs++
			if x&(x-1) != 0 {
				t.Fatalf("byte %d changed by more than one bit (%#x)", i, x)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diffs)
	}
	// Budget spent: subsequent loads come back untouched, and the
	// original slice was never mutated in place.
	if again := p.MangleCacheLoad(data); !bytes.Equal(again, data) {
		t.Fatal("second load mangled; flip budget was 1")
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0xAA}, 100)) {
		t.Fatal("MangleCacheLoad mutated the caller's slice")
	}
	// Same schedule, same seed, fresh plan: same flip.
	p2 := mustPlan(t, "cache:flip=1,seed=1234", "cache")
	if !bytes.Equal(p2.MangleCacheLoad(data), got) {
		t.Fatal("flip position not deterministic for a fixed seed")
	}
}

func mustPlan(t *testing.T, spec string, ids ...string) *Plan {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Plan(ids...)
	if p == nil {
		t.Fatalf("Plan(%v) over %q = nil", ids, spec)
	}
	return p
}
