package fault

// Registry handles for the injection layer: every fired fault counts,
// so a chaos run's metrics.json records exactly which injections the
// schedule delivered (and the chaos smoke can assert on them).

import "carriersense/internal/obs"

var (
	mCrash = obs.Default().Counter("cs_fault_injected_total",
		"Faults fired by the installed schedule, by kind.",
		obs.Label{Key: "kind", Value: "crash"})
	mSlow = obs.Default().Counter("cs_fault_injected_total",
		"Faults fired by the installed schedule, by kind.",
		obs.Label{Key: "kind", Value: "slow"})
	mCorrupt = obs.Default().Counter("cs_fault_injected_total",
		"Faults fired by the installed schedule, by kind.",
		obs.Label{Key: "kind", Value: "corrupt"})
	mTruncate = obs.Default().Counter("cs_fault_injected_total",
		"Faults fired by the installed schedule, by kind.",
		obs.Label{Key: "kind", Value: "truncate"})
	mRefuse = obs.Default().Counter("cs_fault_injected_total",
		"Faults fired by the installed schedule, by kind.",
		obs.Label{Key: "kind", Value: "refuse"})
	mFlip = obs.Default().Counter("cs_fault_injected_total",
		"Faults fired by the installed schedule, by kind.",
		obs.Label{Key: "kind", Value: "flip"})
)
