package core

import (
	"math"
	"sort"

	"carriersense/internal/geometry"
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// Inefficiency decomposes the carrier-sense-versus-optimal gap along
// the D axis, the quantities shaded in Figure 6. For a threshold
// D_thresh, configurations with D > D_thresh that would have done
// better multiplexed contribute "hidden terminal inefficiency"; those
// with D < D_thresh that would have done better concurrent contribute
// "exposed terminal inefficiency". The Triangle fields isolate the
// share attributable purely to threshold misplacement: the area
// between the CS curve and Max[⟨C_mux⟩, ⟨C_conc⟩], which §3.3.3 shows
// vanishes when the threshold sits exactly at the curves' crossing.
type Inefficiency struct {
	Rmax, DThresh float64
	DGrid         []float64
	// Per-D gaps (same units as the curves, averaged over receivers).
	HiddenGap  []float64 // max(0, ⟨C_max⟩-⟨C_cs⟩) on the concurrency side
	ExposedGap []float64 // max(0, ⟨C_max⟩-⟨C_cs⟩) on the multiplexing side
	// Integrated totals over the D grid (trapezoid rule), normalized
	// by the integral of ⟨C_max⟩ so they read as fractions of optimal.
	HiddenTotal   float64
	ExposedTotal  float64
	TriangleTotal float64 // inefficiency due to threshold misplacement only
}

// EstimateInefficiency computes the Figure 6 decomposition for one
// R_max and threshold across the given D grid with n Monte Carlo
// samples per point.
func (m *Model) EstimateInefficiency(seed uint64, n int, rmax, dThresh float64, dGrid []float64) Inefficiency {
	ineff := Inefficiency{
		Rmax: rmax, DThresh: dThresh, DGrid: dGrid,
		HiddenGap:  make([]float64, len(dGrid)),
		ExposedGap: make([]float64, len(dGrid)),
	}
	maxCurve := make([]float64, len(dGrid))
	triangle := make([]float64, len(dGrid))
	for i, d := range dGrid {
		a := m.EstimateAverages(seed+uint64(i)*7919, n, rmax, d, dThresh)
		gap := math.Max(0, a.Max.Mean-a.CS.Mean)
		if d > dThresh {
			ineff.HiddenGap[i] = gap
		} else {
			ineff.ExposedGap[i] = gap
		}
		maxCurve[i] = a.Max.Mean
		// Triangle: CS below the better of the two pure policies.
		best := math.Max(a.Mux.Mean, a.Conc.Mean)
		triangle[i] = math.Max(0, best-a.CS.Mean)
	}
	trap := func(y []float64) float64 {
		total := 0.0
		for i := 1; i < len(dGrid); i++ {
			total += (y[i] + y[i-1]) / 2 * (dGrid[i] - dGrid[i-1])
		}
		return total
	}
	maxArea := trap(maxCurve)
	if maxArea > 0 {
		ineff.HiddenTotal = trap(ineff.HiddenGap) / maxArea
		ineff.ExposedTotal = trap(ineff.ExposedGap) / maxArea
		ineff.TriangleTotal = trap(triangle) / maxArea
	}
	return ineff
}

// Fairness summarizes the distributional properties of a policy at one
// (R_max, D) point: §3.3.3 observes that long-range networks keep good
// averages but can starve the receivers nearest an inside-the-network
// interferer.
type Fairness struct {
	Rmax, D float64
	// JainCS is Jain's fairness index of the two pairs' carrier sense
	// throughputs, E[(x1+x2)²/(2(x1²+x2²))] over configurations.
	JainCS montecarlo.Estimate
	// StarvedConc is the probability a receiver is starved (<10% of
	// its C_UBmax) under pure concurrency.
	StarvedConc montecarlo.Estimate
	// StarvedCS is the same probability under carrier sense with the
	// given threshold: nonzero only when CS chooses concurrency.
	StarvedCS montecarlo.Estimate
	// P10CS is the 10th-percentile carrier sense throughput of pair 1,
	// normalized by mean CS throughput (a tail-weight measure).
	P10CS float64
}

// fairnessEval builds the fairness integrand (Jain index plus the two
// starvation indicators); the core/fairness kernel rebuilds it on
// workers. The integrand is the fused pointEval sampler.
func (m *Model) fairnessEval(rmax, d, dThresh float64) montecarlo.EvalFunc {
	return m.newPointEval(rmax, d, dThresh).fairnessSample
}

// EstimateFairness estimates the fairness metrics with n samples.
func (m *Model) EstimateFairness(seed uint64, n int, rmax, d, dThresh float64) Fairness {
	pThresh := m.ThresholdPower(dThresh)
	est := m.estimatePoint(KernelFairness, rmax, d, dThresh, m.fairnessEval(rmax, d, dThresh), seed, n, 3)
	// Percentile needs the sample set; rerun a single-threaded pass.
	src := rng.New(seed ^ 0xfa1f)
	samples := make([]float64, 0, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		c := m.SampleConfig(src, rmax, d)
		v := m.CCarrierSense(c, 1, pThresh)
		samples = append(samples, v)
		sum += v
	}
	p10 := percentile(samples, 0.10)
	mean := sum / float64(n)
	f := Fairness{
		Rmax: rmax, D: d,
		JainCS:      est[0],
		StarvedConc: est[1],
		StarvedCS:   est[2],
	}
	if mean > 0 {
		f.P10CS = p10 / mean
	}
	return f
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// ShadowingExample packages the §3.4 worked example: a short range
// network (R_max = 20, D_thresh = 40) with an interferer at D = 20.
type ShadowingExample struct {
	Rmax, D, DThresh float64
	// PSpuriousConcurrency is the chance the interferer appears beyond
	// the threshold to the sender (paper: "about a 20% chance").
	PSpuriousConcurrency float64
	// PSmothered is the fraction of receiver positions closer to the
	// interferer than to the sender (paper: "approximately the
	// fraction of the R_max disc's area closer to D = 20").
	PSmothered float64
	// PBadSNR is their product: configurations left with very poor SNR
	// (paper: "around 4% of configurations").
	PBadSNR float64
	// PBadSNRMC is the direct Monte Carlo estimate of
	// P[spurious concurrency ∧ receiver SNR < 0 dB], the quantity the
	// closed-form product approximates.
	PBadSNRMC montecarlo.Estimate
}

// EstimateShadowingExample evaluates the §3.4 example for this model.
func (m *Model) EstimateShadowingExample(seed uint64, n int, rmax, d, dThresh float64) ShadowingExample {
	ex := ShadowingExample{Rmax: rmax, D: d, DThresh: dThresh}
	ex.PSpuriousConcurrency = m.SpuriousConcurrencyProbability(d, dThresh)
	ex.PSmothered = geometry.FractionCloserTo(geometry.Point{X: -d, Y: 0}, rmax)
	ex.PBadSNR = ex.PSpuriousConcurrency * ex.PSmothered
	ex.PBadSNRMC = m.estimatePoint(KernelBadSNR, rmax, d, dThresh, m.badSNREval(rmax, d, dThresh), seed, n, 1)[0]
	return ex
}

// badSNREval builds the §3.4 indicator integrand: spurious concurrency
// leaving the receiver below 0 dB SNR. The core/bad-snr kernel
// rebuilds it on workers. The integrand is the fused pointEval
// sampler, which for this indicator needs no capacity evaluation.
func (m *Model) badSNREval(rmax, d, dThresh float64) montecarlo.EvalFunc {
	return m.newPointEval(rmax, d, dThresh).badSNRSample
}

// LumpedDistanceFactor converts a dB uncertainty into the equivalent
// multiplicative distance factor under the model's path loss: §3.4
// re-expresses 14 dB of SNR-estimate uncertainty as "a distance factor
// of about 3x" at α = 3.
func (m *Model) LumpedDistanceFactor(uncertaintyDB float64) float64 {
	return math.Pow(10, uncertaintyDB/(10*m.params.Alpha))
}
