package core

import (
	"math"
	"testing"

	"carriersense/internal/numeric"
)

func TestQuadratureMatchesMonteCarloSigmaZero(t *testing.T) {
	m := New(NoShadowParams())
	const rmax, d = 40.0, 55.0
	a := m.EstimateAverages(1, 400_000, rmax, d, 55)
	quadSingle := m.AvgSingleQuad(rmax)
	if rel := math.Abs(a.Single.Mean-quadSingle) / quadSingle; rel > 0.01 {
		t.Errorf("MC single %v vs quadrature %v (rel %v)", a.Single.Mean, quadSingle, rel)
	}
	quadConc := m.AvgConcQuad(rmax, d)
	if rel := math.Abs(a.Conc.Mean-quadConc) / quadConc; rel > 0.01 {
		t.Errorf("MC conc %v vs quadrature %v (rel %v)", a.Conc.Mean, quadConc, rel)
	}
}

func TestMuxIsHalfSingle(t *testing.T) {
	m := New(DefaultParams())
	a := m.EstimateAverages(2, 50_000, 40, 55, 55)
	if math.Abs(a.Mux.Mean-a.Single.Mean/2) > 1e-12 {
		t.Errorf("mux %v != single/2 %v", a.Mux.Mean, a.Single.Mean/2)
	}
}

func TestConcurrencyLimits(t *testing.T) {
	m := New(NoShadowParams())
	single := m.AvgSingleQuad(40)
	// D → ∞: concurrency approaches the no-competition throughput.
	farConc := m.AvgConcQuad(40, 2000)
	if math.Abs(farConc-single)/single > 0.02 {
		t.Errorf("far concurrency %v, want ~single %v", farConc, single)
	}
	// D → 0: concurrency collapses well below multiplexing ("not
	// quite zero, but extremely poor").
	nearConc := m.AvgConcQuad(40, 0.5)
	if nearConc > single/4 {
		t.Errorf("near concurrency %v, want << single %v", nearConc, single)
	}
	if nearConc <= 0 {
		t.Error("near concurrency should not be exactly zero")
	}
}

func TestOptimalDominatesAllPolicies(t *testing.T) {
	m := New(DefaultParams())
	for _, d := range []float64{20, 55, 120} {
		a := m.EstimateAverages(3, 100_000, 40, d, 55)
		// C_max ≥ both pure policies (same configurations, so this
		// holds up to the tiny asymmetry of pair sampling).
		if a.Max.Mean < a.Mux.Mean*0.995 {
			t.Errorf("D=%v: optimal %v below mux %v", d, a.Max.Mean, a.Mux.Mean)
		}
		if a.Max.Mean < a.Conc.Mean*0.995 {
			t.Errorf("D=%v: optimal %v below conc %v", d, a.Max.Mean, a.Conc.Mean)
		}
		// CS is sandwiched between the worst and best pure policies.
		lo := math.Min(a.Mux.Mean, a.Conc.Mean)
		if a.CS.Mean < lo*0.995 {
			t.Errorf("D=%v: CS %v below both pure policies (%v)", d, a.CS.Mean, lo)
		}
		// UB bound: ⟨C_max⟩ ≤ ⟨C_UBmax⟩.
		if a.Max.Mean > a.UBMax.Mean*1.005 {
			t.Errorf("D=%v: Max %v above UBMax %v", d, a.Max.Mean, a.UBMax.Mean)
		}
	}
}

func TestEfficiencyInUnitRange(t *testing.T) {
	m := New(DefaultParams())
	a := m.EstimateAverages(4, 100_000, 40, 55, 55)
	eff := a.Efficiency()
	if eff <= 0.5 || eff > 1.001 {
		t.Errorf("efficiency = %v, want in (0.5, 1]", eff)
	}
}

func TestDeferredFractionMonotoneInD(t *testing.T) {
	m := New(DefaultParams())
	prev := 1.1
	for _, d := range []float64{20, 40, 55, 80, 120} {
		a := m.EstimateAverages(5, 50_000, 40, d, 55)
		got := a.DeferredFraction.Mean
		if got > prev+0.02 {
			t.Errorf("deferral fraction rose with D at %v: %v > %v", d, got, prev)
		}
		prev = got
	}
	// At D = Dthresh the sensing shadowing is symmetric: deferral
	// probability is 1/2.
	a := m.EstimateAverages(6, 100_000, 40, 55, 55)
	if math.Abs(a.DeferredFraction.Mean-0.5) > 0.02 {
		t.Errorf("deferral at threshold = %v, want 0.5", a.DeferredFraction.Mean)
	}
}

func TestCurvesShape(t *testing.T) {
	m := New(NoShadowParams())
	grid := numeric.LinSpace(5, 200, 14)
	pts := m.Curves(7, 60_000, 55, 55, grid, 0)
	if len(pts) != len(grid) {
		t.Fatalf("got %d points", len(pts))
	}
	// Multiplexing flat in D.
	for i := 1; i < len(pts); i++ {
		if rel := math.Abs(pts[i].Mux-pts[0].Mux) / pts[0].Mux; rel > 0.03 {
			t.Errorf("mux varies with D: %v vs %v", pts[i].Mux, pts[0].Mux)
		}
	}
	// Concurrency increasing in D (allowing MC noise).
	for i := 1; i < len(pts); i++ {
		if pts[i].Conc < pts[i-1].Conc*0.97 {
			t.Errorf("conc dropped at D=%v", pts[i].D)
		}
	}
	// Optimal converges to mux at small D and to conc at large D.
	first, last := pts[0], pts[len(pts)-1]
	if math.Abs(first.Max-first.Mux)/first.Mux > 0.03 {
		t.Errorf("optimal at small D %v, want ~mux %v", first.Max, first.Mux)
	}
	if math.Abs(last.Max-last.Conc)/last.Conc > 0.03 {
		t.Errorf("optimal at large D %v, want ~conc %v", last.Max, last.Conc)
	}
}

func TestCurvesNormalization(t *testing.T) {
	m := New(NoShadowParams())
	norm := m.NormalizationConstant(8, 0)
	quad := m.AvgSingleQuad(20)
	if math.Abs(norm-quad) > 1e-9 {
		t.Errorf("normalizer %v, want quadrature %v", norm, quad)
	}
	pts := m.Curves(8, 20_000, 20, 55, []float64{1e4}, norm)
	// At huge D, a normalized R_max=20 concurrency curve approaches 1.
	if math.Abs(pts[0].Conc-1) > 0.03 {
		t.Errorf("normalized far conc = %v, want ~1", pts[0].Conc)
	}
}

func TestNormalizationConstantShadowed(t *testing.T) {
	m := New(DefaultParams())
	norm := m.NormalizationConstant(9, 200_000)
	// Shadowing raises the linear mean (§3.4), so the shadowed
	// normalizer exceeds the σ=0 quadrature value.
	quad := New(NoShadowParams()).AvgSingleQuad(20)
	if norm <= quad {
		t.Errorf("shadowed normalizer %v not above sigma=0 %v", norm, quad)
	}
}

func TestConcurrencySlopeBound(t *testing.T) {
	// Footnote 12: for α = 3, σ = 0 the concurrency curve's slope (in
	// R_max = 20 normalized units) is bounded by 1.37/R_max for all
	// D > R_max.
	m := New(NoShadowParams())
	norm := m.AvgSingleQuad(20)
	for _, rmax := range []float64{20, 55, 120} {
		bound := 1.37 / rmax
		for _, d := range []float64{rmax * 1.05, rmax * 1.5, rmax * 2, rmax * 4} {
			slope := m.ConcurrencySlope(rmax, d) / norm
			if slope > bound*1.05 {
				t.Errorf("Rmax=%v D=%v: slope %v exceeds bound %v", rmax, d, slope, bound)
			}
			if slope < 0 {
				t.Errorf("Rmax=%v D=%v: negative slope %v", rmax, d, slope)
			}
		}
	}
}
