package core

import (
	"carriersense/internal/geometry"
)

// Policy selects a MAC policy for landscape evaluation.
type Policy int

const (
	// PolicySingle is the no-competition channel.
	PolicySingle Policy = iota
	// PolicyMultiplexing is ideal time-division multiplexing.
	PolicyMultiplexing
	// PolicyConcurrent is simultaneous transmission.
	PolicyConcurrent
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicySingle:
		return "no-competition"
	case PolicyMultiplexing:
		return "multiplexing"
	case PolicyConcurrent:
		return "concurrency"
	default:
		return "unknown"
	}
}

// Grid is a square raster of values over [-Extent, Extent]² with the
// sender at the center, used to render the Figure 2 capacity
// landscapes and Figure 3 preference maps.
type Grid struct {
	Extent float64     // half-width of the square, model distance units
	N      int         // cells per side
	Values [][]float64 // Values[row][col], row 0 = +Extent (top)
}

// At returns the grid value nearest the plane point p.
func (g *Grid) At(p geometry.Point) float64 {
	col := int((p.X + g.Extent) / (2 * g.Extent) * float64(g.N))
	row := int((g.Extent - p.Y) / (2 * g.Extent) * float64(g.N))
	if col < 0 {
		col = 0
	}
	if col >= g.N {
		col = g.N - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.N {
		row = g.N - 1
	}
	return g.Values[row][col]
}

// cellCenter returns the plane coordinates of cell (row, col).
func (g *Grid) cellCenter(row, col int) geometry.Point {
	step := 2 * g.Extent / float64(g.N)
	x := -g.Extent + (float64(col)+0.5)*step
	y := g.Extent - (float64(row)+0.5)*step
	return geometry.Point{X: x, Y: y}
}

// Landscape rasterizes the σ = 0 capacity landscape C_i(r, θ) of
// Figure 2: link capacity as a function of receiver position with the
// sender at the origin and (for PolicyConcurrent) an interferer on the
// x-axis at (-d, 0). Shadowing is ignored ("for clarity, in these
// plots we ignore shadowing", footnote 6).
func (m *Model) Landscape(policy Policy, d, extent float64, n int) *Grid {
	g := &Grid{Extent: extent, N: n, Values: make([][]float64, n)}
	for row := 0; row < n; row++ {
		g.Values[row] = make([]float64, n)
		for col := 0; col < n; col++ {
			p := g.cellCenter(row, col)
			c := Config{
				D: d, X1: p.X, Y1: p.Y, LSig1: 1, LInt1: 1,
			}
			var v float64
			switch policy {
			case PolicySingle:
				v = m.CSingle(c, 1)
			case PolicyMultiplexing:
				v = m.CMultiplexing(c, 1)
			case PolicyConcurrent:
				v = m.CConcurrent(c, 1)
			}
			g.Values[row][col] = v
		}
	}
	return g
}

// Preference classifies a receiver position for Figure 3.
type Preference int

const (
	// PrefConcurrency: the receiver does better under concurrency
	// (dark regions of Figure 3).
	PrefConcurrency Preference = iota
	// PrefMultiplexing: the receiver does better under multiplexing
	// (light regions).
	PrefMultiplexing
	// PrefStarved: the receiver prefers multiplexing and receives less
	// than 10% of its C_UBmax without it (white regions) — a genuine
	// hidden terminal.
	PrefStarved
)

// String returns the preference label.
func (p Preference) String() string {
	switch p {
	case PrefConcurrency:
		return "concurrency"
	case PrefMultiplexing:
		return "multiplexing"
	case PrefStarved:
		return "starved"
	default:
		return "unknown"
	}
}

// StarvationFraction is the C_UBmax fraction below which Figure 3
// paints a receiver white ("<10% of C_UBmax").
const StarvationFraction = 0.10

// PreferenceMap rasterizes Figure 3's receiver preference regions for
// an interferer at distance d (σ = 0). Values hold Preference codes as
// float64 for Grid compatibility.
func (m *Model) PreferenceMap(d, extent float64, n int) *Grid {
	g := &Grid{Extent: extent, N: n, Values: make([][]float64, n)}
	for row := 0; row < n; row++ {
		g.Values[row] = make([]float64, n)
		for col := 0; col < n; col++ {
			p := g.cellCenter(row, col)
			c := Config{
				D: d, X1: p.X, Y1: p.Y, LSig1: 1, LInt1: 1,
			}
			pref := PrefConcurrency
			if m.PrefersMultiplexing(c, 1) {
				pref = PrefMultiplexing
				if m.StarvedUnderConcurrency(c, 1, StarvationFraction) {
					pref = PrefStarved
				}
			}
			g.Values[row][col] = float64(pref)
		}
	}
	return g
}

// PreferenceShares summarizes a preference map restricted to receivers
// inside radius rmax of the sender: the area fractions preferring
// concurrency, preferring multiplexing, and starved.
func (g *Grid) PreferenceShares(rmax float64) (conc, mux, starved float64) {
	total := 0.0
	for row := range g.Values {
		for col := range g.Values[row] {
			p := g.cellCenter(row, col)
			if p.Norm() > rmax {
				continue
			}
			total++
			switch Preference(int(g.Values[row][col])) {
			case PrefConcurrency:
				conc++
			case PrefMultiplexing:
				mux++
			case PrefStarved:
				starved++
			}
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return conc / total, mux / total, starved / total
}
