package core
