package core

import (
	"math"
	"math/bits"
	"sync"

	"carriersense/internal/capacity"
	"carriersense/internal/geometry"
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// This file extends the two-pair model of §3 to n competing
// sender-receiver pairs — the case the paper set aside with "small
// n > 2 does not appear to fundamentally alter the results, but it
// does complicate matters dramatically" (§3.2.1), and the dimension
// along which [Vutukuru08]'s exposed-terminal gains grew (footnote 18:
// "their best result, 47% average improvement, required six concurrent
// senders").
//
// Policies generalize as follows:
//
//   - TDMA: each pair owns 1/n of the time at full capacity.
//   - Concurrency: everyone transmits; interference sums over the
//     other n-1 senders.
//   - Carrier sense: per round, a random arrival order greedily builds
//     a maximal independent set of the *sensing graph* (senders join
//     when no already-active sender is sensed above threshold) — the
//     natural n-sender abstraction of DCF.
//   - UniformK (the fairness-respecting optimal proxy): in each slot a
//     uniformly random k-subset transmits, so every sender gets k/n of
//     the airtime; the best k nests TDMA (k = 1) and full concurrency
//     (k = n) and reduces to the paper's binary choice at n = 2.

// MultiParams configures the n-pair model.
type MultiParams struct {
	Env Params
	// NPairs is the number of competing sender-receiver pairs.
	NPairs int
	// AreaRadius is the radius of the disc the senders are scattered
	// over (the analogue of the two-pair D, now a density knob).
	AreaRadius float64
	// Rmax is the receiver placement radius around each sender.
	Rmax float64
	// DThresh is the carrier sense threshold distance.
	DThresh float64
	// Rounds is the number of random DCF rounds averaged per sampled
	// configuration (CS policy only).
	Rounds int
}

// DefaultMultiParams spreads n pairs over a disc sized so the mean
// nearest-neighbor spacing sits in the transition region when n = 2.
func DefaultMultiParams(nPairs int) MultiParams {
	return MultiParams{
		Env:        DefaultParams(),
		NPairs:     nPairs,
		AreaRadius: 80,
		Rmax:       40,
		DThresh:    55,
		Rounds:     24,
	}
}

// MultiModel evaluates the n-pair extension.
type MultiModel struct {
	p     MultiParams
	model *Model
	// shanEff > 0 devirtualizes the (default) Shannon capacity model,
	// exactly as pointEval.thr does for the two-pair kernels: the
	// policy loops call Throughput hundreds of times per sample.
	shanEff float64
}

// NewMulti constructs the n-pair model. Panics on invalid parameters.
func NewMulti(p MultiParams) *MultiModel {
	if p.NPairs < 1 {
		panic("core: NPairs must be >= 1")
	}
	if p.Rounds < 1 {
		p.Rounds = 1
	}
	mm := &MultiModel{p: p, model: New(p.Env)}
	if s, ok := mm.model.cap.(capacity.Shannon); ok {
		mm.shanEff = s.Efficiency
		if mm.shanEff == 0 {
			mm.shanEff = 1
		}
	}
	return mm
}

// thr maps linear SINR to throughput, inlining the Shannon formula
// when possible (bit-identical to Shannon.Throughput).
func (mm *MultiModel) thr(snr float64) float64 {
	if mm.shanEff > 0 {
		if snr <= 0 {
			return 0
		}
		return mm.shanEff * math.Log1p(snr)
	}
	return mm.model.cap.Throughput(snr)
}

// multiConfig is one sampled n-pair configuration.
type multiConfig struct {
	senders   []geometry.Point
	receivers []geometry.Point
	lSig      []float64   // sender_i -> receiver_i
	lInt      [][]float64 // lInt[j][i]: sender_j -> receiver_i
	lSense    [][]float64 // symmetric sender_i <-> sender_j
}

// multiScratch is one evaluator's reusable working set: the sampled
// configuration plus the per-sample linear gain caches. The policy
// evaluations query every channel many times per sample (the best-k
// search alone touches each interference link dozens of times), so the
// path-gain × shadowing products are computed once per sample into
// flat matrices and the policy loops reduce to cached multiplies and
// adds. A scratch is single-goroutine state: the per-sample evaluator
// builds a fresh one per call (it may run concurrently across shards),
// the batch evaluator builds one per chunk and amortizes it over
// hundreds of samples.
type multiScratch struct {
	c multiConfig
	// gSig[i] is sender_i → receiver_i: pathGainSq × lSig.
	gSig []float64
	// gInt[j*n+i] is sender_j → receiver_i: pathGainSq × lInt[j][i].
	gInt []float64
	// gSense[i*n+j] is sender_i ↔ sender_j: pathGainSq × lSense[i][j].
	gSense []float64
	order  []int
	idx    []int
}

// newScratch allocates a working set for n pairs.
func (mm *MultiModel) newScratch() *multiScratch {
	n := mm.p.NPairs
	sc := &multiScratch{
		c: multiConfig{
			senders:   make([]geometry.Point, n),
			receivers: make([]geometry.Point, n),
			lSig:      make([]float64, n),
			lInt:      make([][]float64, n),
			lSense:    make([][]float64, n),
		},
		gSig:   make([]float64, n),
		gInt:   make([]float64, n*n),
		gSense: make([]float64, n*n),
		order:  make([]int, n),
		idx:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		sc.c.lInt[i] = make([]float64, n)
		sc.c.lSense[i] = make([]float64, n)
	}
	return sc
}

// sampleInto draws senders uniform over the area disc, receivers
// uniform within Rmax of their senders, and independent lognormal
// shadowing on every channel (sensing symmetric, as in the two-pair
// model), then folds geometry and shadowing into the linear gain
// caches. The draw order is fixed; reusing the scratch changes no
// values.
func (mm *MultiModel) sampleInto(src *rng.Source, sc *multiScratch) {
	n := mm.p.NPairs
	sigma := mm.p.Env.SigmaDB
	c := &sc.c
	for i := 0; i < n; i++ {
		c.senders[i] = geometry.UniformInDisc(src, mm.p.AreaRadius)
		c.receivers[i] = c.senders[i].Add(geometry.UniformInDisc(src, mm.p.Rmax))
		c.lSig[i] = src.LognormalDB(sigma)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i != j {
				c.lInt[j][i] = src.LognormalDB(sigma)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l := src.LognormalDB(sigma)
			c.lSense[i][j] = l
			c.lSense[j][i] = l
		}
	}
	// Gain caches: every product below is exactly the term the policy
	// loops previously recomputed per query, so cached evaluation is
	// bit-identical.
	for i := 0; i < n; i++ {
		sc.gSig[i] = mm.model.pathGainSq(c.senders[i].DistSq(c.receivers[i])) * c.lSig[i]
		for j := 0; j < n; j++ {
			if j != i {
				sc.gInt[j*n+i] = mm.model.pathGainSq(c.senders[j].DistSq(c.receivers[i])) * c.lInt[j][i]
				sc.gSense[i*n+j] = mm.model.pathGainSq(c.senders[i].DistSq(c.senders[j])) * c.lSense[i][j]
			}
		}
	}
}

// pairCapacity returns pair i's capacity when the senders in active
// (a bitmask) transmit concurrently. Pair i must be active.
// Interference iterates the mask's set bits in ascending order — the
// same float summation order as a full 0..n scan, so the cached-matrix
// fast path is bit-identical to the original formulation.
func (mm *MultiModel) pairCapacity(sc *multiScratch, i int, active uint64) float64 {
	n := mm.p.NPairs
	interf := 0.0
	for rem := active &^ (1 << uint(i)); rem != 0; rem &= rem - 1 {
		j := bits.TrailingZeros64(rem)
		interf += sc.gInt[j*n+i]
	}
	return mm.thr(sc.gSig[i] / (mm.model.noise + interf))
}

// csRound runs one DCF round: arrival order is a random permutation;
// each sender joins unless it senses an already-active sender. Returns
// the active bitmask.
func (mm *MultiModel) csRound(src *rng.Source, sc *multiScratch, pThresh float64) uint64 {
	n := mm.p.NPairs
	order := sc.order
	for i := range order {
		order[i] = i
	}
	src.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
	var active uint64
	for _, i := range order {
		blocked := false
		for rem := active; rem != 0; rem &= rem - 1 {
			if sc.gSense[i*n+bits.TrailingZeros64(rem)] > pThresh {
				blocked = true
				break
			}
		}
		if !blocked {
			active |= 1 << uint(i)
		}
	}
	return active
}

// csThroughput averages per-pair CS throughput over DCF rounds.
func (mm *MultiModel) csThroughput(src *rng.Source, sc *multiScratch, pThresh float64) float64 {
	n := mm.p.NPairs
	total := 0.0
	for r := 0; r < mm.p.Rounds; r++ {
		active := mm.csRound(src, sc, pThresh)
		// Active senders split the round among themselves implicitly:
		// everyone in the independent set transmits for the full
		// round; blocked senders get nothing this round. Averaging
		// over rounds with random order restores long-run fairness,
		// just as DCF's backoff lottery does.
		for rem := active; rem != 0; rem &= rem - 1 {
			total += mm.pairCapacity(sc, bits.TrailingZeros64(rem), active)
		}
	}
	return total / float64(mm.p.Rounds) / float64(n)
}

// uniformKThroughput estimates per-pair throughput when each slot
// activates a uniformly random k-subset. Exact enumeration is used
// when the subset count is small; otherwise sampled.
func (mm *MultiModel) uniformKThroughput(src *rng.Source, sc *multiScratch, k int) float64 {
	n := mm.p.NPairs
	if k <= 0 {
		return 0
	}
	if k >= n {
		total := 0.0
		all := uint64(1<<uint(n)) - 1
		for i := 0; i < n; i++ {
			total += mm.pairCapacity(sc, i, all)
		}
		return total / float64(n)
	}
	// Sample random k-subsets.
	const subsetSamples = 12
	idx := sc.idx
	for i := range idx {
		idx[i] = i
	}
	total := 0.0
	for s := 0; s < subsetSamples; s++ {
		src.Shuffle(n, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		var active uint64
		for _, i := range idx[:k] {
			active |= 1 << uint(i)
		}
		for _, i := range idx[:k] {
			total += mm.pairCapacity(sc, i, active)
		}
	}
	// Each sender is active with probability k/n; the sum above counts
	// k senders per subset sample.
	return total / float64(subsetSamples) / float64(n)
}

// MultiAverages is the n-pair analogue of Averages: expected per-pair
// throughput of every policy.
type MultiAverages struct {
	NPairs int
	TDMA   montecarlo.Estimate
	Conc   montecarlo.Estimate
	CS     montecarlo.Estimate
	// BestK is the best uniform-concurrency-level policy: the
	// fairness-respecting optimal proxy (max over k of UniformK).
	BestK montecarlo.Estimate
	// MeanBestLevel is the average optimal concurrency level k*.
	MeanBestLevel montecarlo.Estimate
	// AvgActive is the mean number of simultaneously active senders
	// under carrier sense.
	AvgActive montecarlo.Estimate
}

// Efficiency returns CS as a fraction of the best uniform-k policy.
func (a MultiAverages) Efficiency() float64 {
	if a.BestK.Mean == 0 {
		return 0
	}
	return a.CS.Mean / a.BestK.Mean
}

// ExposedHeadroom returns the fractional gain a perfect concurrency
// scheduler would add over carrier sense — the quantity footnote 18
// expects to grow with n.
func (a MultiAverages) ExposedHeadroom() float64 {
	if a.CS.Mean == 0 {
		return 0
	}
	return a.BestK.Mean/a.CS.Mean - 1
}

// Indices into the multi kernel's sample vector.
const (
	idxMultiTDMA = iota
	idxMultiConc
	idxMultiCS
	idxMultiBestK
	idxMultiBestLevel
	idxMultiActive
	nMultiIdx
)

// evalOne evaluates one sampled configuration into out using the
// given scratch.
func (mm *MultiModel) evalOne(src *rng.Source, sc *multiScratch, pThresh float64, out []float64) {
	n := mm.p.NPairs
	mm.sampleInto(src, sc)
	all := uint64(1<<uint(n)) - 1
	// TDMA.
	tdma := 0.0
	for i := 0; i < n; i++ {
		tdma += mm.pairCapacity(sc, i, 1<<uint(i)) / float64(n)
	}
	out[idxMultiTDMA] = tdma / float64(n)
	// Full concurrency.
	conc := 0.0
	for i := 0; i < n; i++ {
		conc += mm.pairCapacity(sc, i, all)
	}
	out[idxMultiConc] = conc / float64(n)
	// Carrier sense.
	out[idxMultiCS] = mm.csThroughput(src, sc, pThresh)
	// Active count under CS (one extra round, cheap).
	active := mm.csRound(src, sc, pThresh)
	out[idxMultiActive] = float64(popcount(active))
	// Best uniform-k.
	best, bestK := 0.0, 1
	for k := 1; k <= n; k++ {
		v := mm.uniformKThroughput(src, sc, k)
		if v > best {
			best, bestK = v, k
		}
	}
	out[idxMultiBestK] = best
	out[idxMultiBestLevel] = float64(bestK)
}

// multiEval builds the n-pair policy-vector integrand behind
// EstimateMulti; the core/multi kernel rebuilds it on workers. One
// EvalFunc is shared across concurrently evaluated shards (and is the
// only form the sampler-transformed path uses), so scratches come
// from a pool: concurrency-safe, and a sampled run still amortizes
// the working set instead of reallocating it per sample.
func (mm *MultiModel) multiEval() montecarlo.EvalFunc {
	pThresh := mm.model.ThresholdPower(mm.p.DThresh)
	pool := sync.Pool{New: func() any { return mm.newScratch() }}
	return func(src *rng.Source, out []float64) {
		sc := pool.Get().(*multiScratch)
		mm.evalOne(src, sc, pThresh, out)
		pool.Put(sc)
	}
}

// multiBatch is the batch form: one scratch per chunk, reused across
// its samples, so the per-sample slice churn (configuration rows, DCF
// round permutations, subset buffers) disappears from the hot path.
// Draw order and arithmetic are identical to the per-sample form, so
// the two are bit-interchangeable.
func (mm *MultiModel) multiBatch() montecarlo.BatchEvalFunc {
	pThresh := mm.model.ThresholdPower(mm.p.DThresh)
	return func(src *rng.Source, count int, out []float64) {
		sc := mm.newScratch()
		for i := 0; i < count; i++ {
			mm.evalOne(src, sc, pThresh, out[i*nMultiIdx:(i+1)*nMultiIdx:(i+1)*nMultiIdx])
		}
	}
}

// EstimateMulti runs the n-pair Monte Carlo through the installed
// executor (in-process by default, a worker fleet under `cs run
// -workers`).
func (mm *MultiModel) EstimateMulti(seed uint64, nSamples int) MultiAverages {
	n := mm.p.NPairs
	var est []montecarlo.Estimate
	if env, ok := envSpecOf(mm.p.Env); ok {
		est = montecarlo.KernelMeanVec(KernelMulti, multiParamsWire{
			Env:        env,
			NPairs:     mm.p.NPairs,
			AreaRadius: mm.p.AreaRadius,
			Rmax:       mm.p.Rmax,
			DThresh:    mm.p.DThresh,
			Rounds:     mm.p.Rounds,
		}, seed, nSamples, nMultiIdx)
	} else {
		est = localMeanVec(seed, nSamples, nMultiIdx, mm.multiEval())
	}
	return MultiAverages{
		NPairs:        n,
		TDMA:          est[idxMultiTDMA],
		Conc:          est[idxMultiConc],
		CS:            est[idxMultiCS],
		BestK:         est[idxMultiBestK],
		MeanBestLevel: est[idxMultiBestLevel],
		AvgActive:     est[idxMultiActive],
	}
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
