package core

import (
	"math"
	"testing"

	"carriersense/internal/geometry"
)

func TestLandscapePeaksAtSender(t *testing.T) {
	m := New(NoShadowParams())
	g := m.Landscape(PolicySingle, 0, 100, 41) // odd cell count centers the sender
	center := g.Values[20][20]
	for r, row := range g.Values {
		for c, v := range row {
			if v > center {
				t.Fatalf("cell (%d,%d)=%v exceeds center %v", r, c, v, center)
			}
		}
	}
}

func TestLandscapeMultiplexingIsHalfSingle(t *testing.T) {
	m := New(NoShadowParams())
	single := m.Landscape(PolicySingle, 0, 100, 21)
	mux := m.Landscape(PolicyMultiplexing, 0, 100, 21)
	for r := range single.Values {
		for c := range single.Values[r] {
			if math.Abs(mux.Values[r][c]-single.Values[r][c]/2) > 1e-12 {
				t.Fatalf("mux != single/2 at (%d,%d)", r, c)
			}
		}
	}
}

func TestLandscapeConcurrencyHole(t *testing.T) {
	// The "hole" around the interferer: capacity near (-D, 0) is far
	// below the mirror position (+D, 0).
	m := New(NoShadowParams())
	g := m.Landscape(PolicyConcurrent, 55, 130, 130)
	nearInterferer := g.At(geometry.Point{X: -55, Y: 0})
	mirror := g.At(geometry.Point{X: 55, Y: 0})
	if nearInterferer > mirror/3 {
		t.Errorf("no interferer hole: near %v vs mirror %v", nearInterferer, mirror)
	}
}

func TestLandscapeConcurrencyBelowSingle(t *testing.T) {
	m := New(NoShadowParams())
	single := m.Landscape(PolicySingle, 0, 100, 21)
	conc := m.Landscape(PolicyConcurrent, 40, 100, 21)
	for r := range single.Values {
		for c := range single.Values[r] {
			if conc.Values[r][c] > single.Values[r][c]+1e-12 {
				t.Fatalf("concurrency exceeds single at (%d,%d)", r, c)
			}
		}
	}
}

func TestLandscapeDegradesAsInterfererApproaches(t *testing.T) {
	// "Capacity throughout the landscape trends downward as the
	// interferer approaches" — compare total capacity across D.
	m := New(NoShadowParams())
	total := func(d float64) float64 {
		g := m.Landscape(PolicyConcurrent, d, 100, 31)
		sum := 0.0
		for _, row := range g.Values {
			for _, v := range row {
				sum += v
			}
		}
		return sum
	}
	t120, t55, t20 := total(120), total(55), total(20)
	if !(t120 > t55 && t55 > t20) {
		t.Errorf("capacity totals not decreasing: %v, %v, %v", t120, t55, t20)
	}
}

func TestGridAtClamping(t *testing.T) {
	m := New(NoShadowParams())
	g := m.Landscape(PolicySingle, 0, 50, 11)
	// Far outside the raster clamps to the border rather than panics.
	_ = g.At(geometry.Point{X: 1e6, Y: -1e6})
}

func TestPreferenceMapPaperShares(t *testing.T) {
	// Figure 3's headline claims: for D=20 multiplexing is optimal for
	// nearly everyone within Rmax=100; for D=120 concurrency dominates
	// up to Rmax~50; for D=55 receivers split near the middle.
	m := New(NoShadowParams())
	g20 := m.PreferenceMap(20, 130, 90)
	conc, mux, starved := g20.PreferenceShares(100)
	if mux+starved < 0.9 {
		t.Errorf("D=20: mux+starved share %v, want >0.9", mux+starved)
	}
	g55 := m.PreferenceMap(55, 130, 90)
	conc, mux, starved = g55.PreferenceShares(100)
	if conc < 0.3 || conc > 0.6 {
		t.Errorf("D=55: concurrency share %v, want near half", conc)
	}
	g120 := m.PreferenceMap(120, 130, 90)
	conc, _, _ = g120.PreferenceShares(50)
	if conc < 0.9 {
		t.Errorf("D=120 within Rmax=50: concurrency share %v, want ~1", conc)
	}
}

func TestPreferenceStarvedNearInterferer(t *testing.T) {
	m := New(NoShadowParams())
	g := m.PreferenceMap(55, 130, 130)
	// A receiver essentially on top of the interferer is starved.
	if got := Preference(int(g.At(geometry.Point{X: -55, Y: 0}))); got != PrefStarved {
		t.Errorf("receiver at interferer classified %v, want starved", got)
	}
	// A receiver hugging the sender prefers concurrency.
	if got := Preference(int(g.At(geometry.Point{X: 1, Y: 1}))); got != PrefConcurrency {
		t.Errorf("receiver at sender classified %v, want concurrency", got)
	}
}

func TestPreferenceSharesEmpty(t *testing.T) {
	g := &Grid{Extent: 10, N: 4, Values: [][]float64{{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}}}
	conc, mux, starved := g.PreferenceShares(0.1) // radius smaller than any cell center
	if conc != 0 || mux != 0 || starved != 0 {
		t.Errorf("empty shares = %v %v %v", conc, mux, starved)
	}
}

func TestPolicyAndPreferenceStrings(t *testing.T) {
	if PolicySingle.String() != "no-competition" || PolicyConcurrent.String() != "concurrency" ||
		PolicyMultiplexing.String() != "multiplexing" || Policy(9).String() != "unknown" {
		t.Error("policy names")
	}
	if PrefConcurrency.String() != "concurrency" || PrefMultiplexing.String() != "multiplexing" ||
		PrefStarved.String() != "starved" || Preference(9).String() != "unknown" {
		t.Error("preference names")
	}
}
