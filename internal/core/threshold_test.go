package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptimalThresholdQuadPaperValues(t *testing.T) {
	// §3.3.3: "Rmax = 20 corresponds to an optimal threshold about
	// Dthresh ≈ 40, and Rmax = 120 corresponds to Dthresh ≈ 75" for
	// α = 3, σ = 0.
	m := New(NoShadowParams())
	d20 := m.OptimalThresholdQuad(20)
	if d20 < 35 || d20 > 46 {
		t.Errorf("Dopt(20) = %v, paper says ~40", d20)
	}
	d120 := m.OptimalThresholdQuad(120)
	if d120 < 65 || d120 > 85 {
		t.Errorf("Dopt(120) = %v, paper says ~75", d120)
	}
}

func TestOptimalThresholdCrossingProperty(t *testing.T) {
	// At the solved threshold the two curves actually cross.
	m := New(NoShadowParams())
	for _, rmax := range []float64{20, 55, 120} {
		d := m.OptimalThresholdQuad(rmax)
		mux := m.AvgMuxQuad(rmax)
		conc := m.AvgConcQuad(rmax, d)
		if math.Abs(conc-mux)/mux > 0.01 {
			t.Errorf("Rmax=%v: curves don't cross at Dopt=%v (conc %v, mux %v)", rmax, d, conc, mux)
		}
	}
}

func TestOptimalThresholdMCAgreesWithQuad(t *testing.T) {
	m := New(NoShadowParams())
	dq := m.OptimalThresholdQuad(40)
	dmc := m.OptimalThresholdMC(3, 120_000, 40)
	if math.Abs(dq-dmc)/dq > 0.08 {
		t.Errorf("quad %v vs MC %v", dq, dmc)
	}
}

func TestShortRangeThresholdAsymptote(t *testing.T) {
	// Footnote 13: Dthresh ≈ e^(-1/4)·√Rmax·N^(-1/2α) in the short
	// range limit. The solver should approach the closed form as
	// Rmax shrinks.
	m := New(NoShadowParams())
	for _, rmax := range []float64{5, 10, 20} {
		got := m.OptimalThresholdQuad(rmax)
		want := m.ShortRangeThresholdAsymptote(rmax)
		if rel := math.Abs(got-want) / want; rel > 0.15 {
			t.Errorf("Rmax=%v: solver %v vs asymptote %v (rel %v)", rmax, got, want, rel)
		}
	}
	// The asymptote's paper example: Rmax=20, α=3 gives ≈42 ≈ the
	// paper's quoted 40.
	want := m.ShortRangeThresholdAsymptote(20)
	if want < 38 || want > 46 {
		t.Errorf("asymptote at 20 = %v, want ~42", want)
	}
}

func TestAsymptoteScaling(t *testing.T) {
	// √Rmax scaling of the closed form.
	m := New(NoShadowParams())
	r1 := m.ShortRangeThresholdAsymptote(10)
	r4 := m.ShortRangeThresholdAsymptote(40)
	if math.Abs(r4/r1-2) > 1e-9 {
		t.Errorf("asymptote should scale as sqrt(Rmax): ratio %v", r4/r1)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		rmax, dOpt float64
		want       Regime
	}{
		{20, 50, RegimeShortRange},   // dOpt > 2 Rmax
		{40, 60, RegimeIntermediate}, // Rmax < dOpt < 2 Rmax
		{120, 70, RegimeLongRange},   // dOpt < Rmax
	}
	for _, c := range cases {
		if got := Classify(c.rmax, c.dOpt); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.rmax, c.dOpt, got, c.want)
		}
	}
}

func TestRegimeBoundariesPaperValues(t *testing.T) {
	// §3.3.4: for α ≈ 3, the intermediate band is roughly
	// 18 < Rmax < 60, i.e. Rmax=10 is short range and Rmax=120 long
	// range. (With σ=0 the quadrature solver reproduces this.)
	m := New(NoShadowParams())
	if r := Classify(10, m.OptimalThresholdQuad(10)); r != RegimeShortRange {
		t.Errorf("Rmax=10 classified %v", r)
	}
	if r := Classify(40, m.OptimalThresholdQuad(40)); r != RegimeIntermediate {
		t.Errorf("Rmax=40 classified %v", r)
	}
	if r := Classify(120, m.OptimalThresholdQuad(120)); r != RegimeLongRange {
		t.Errorf("Rmax=120 classified %v", r)
	}
}

func TestEdgeSNR(t *testing.T) {
	m := New(NoShadowParams())
	// §3.2.2: r = 20 gives "roughly 26 dBm SNR"; r = 120 "just shy of
	// 3 dB".
	if got := m.EdgeSNRdB(20); math.Abs(got-26) > 1 {
		t.Errorf("edge SNR at 20 = %v, want ~26", got)
	}
	if got := m.EdgeSNRdB(120); got < 2 || got > 4 {
		t.Errorf("edge SNR at 120 = %v, want ~3", got)
	}
}

func TestThresholdCurveRegimeProgression(t *testing.T) {
	m := New(NoShadowParams())
	pts := m.ThresholdCurve(1, 0, []float64{8, 40, 150})
	if pts[0].Regime != RegimeShortRange {
		t.Errorf("Rmax=8 regime %v", pts[0].Regime)
	}
	if pts[2].Regime != RegimeLongRange {
		t.Errorf("Rmax=150 regime %v", pts[2].Regime)
	}
	// DOptAlpha3 equals DOpt when α is already 3.
	for _, pt := range pts {
		if math.Abs(pt.DOpt-pt.DOptAlpha3) > 1e-6*pt.DOpt {
			t.Errorf("alpha=3 equivalence broken: %v vs %v", pt.DOpt, pt.DOptAlpha3)
		}
	}
}

func TestRecommendFactoryThreshold(t *testing.T) {
	// §3.3.3's worked example: across Rmax 20..120 the compromise
	// lands near 55.
	m := New(NoShadowParams())
	got := m.RecommendFactoryThreshold(2, 0, 20, 120)
	if got < 48 || got > 64 {
		t.Errorf("factory threshold = %v, paper says ~55", got)
	}
}

func TestSpuriousConcurrencyProbability(t *testing.T) {
	m := New(DefaultParams()) // σ = 8
	// At D = Dthresh the sensing draw is symmetric: exactly 1/2.
	if got := m.SpuriousConcurrencyProbability(55, 55); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("P at threshold = %v, want 0.5", got)
	}
	// §3.4's example: D=20, Dthresh=40 — the exact value under σ=8 is
	// Φ(10·3·log10(0.5)/8) = Φ(-1.129) ≈ 0.13 (the paper rounds the
	// story to "about 20%").
	got := m.SpuriousConcurrencyProbability(20, 40)
	if got < 0.10 || got > 0.22 {
		t.Errorf("spurious concurrency = %v, want ~0.13 (paper: ~0.2)", got)
	}
	// Monotone in D.
	f := func(rawA, rawB float64) bool {
		a := 1 + math.Abs(math.Mod(rawA, 100))
		b := 1 + math.Abs(math.Mod(rawB, 100))
		if a > b {
			a, b = b, a
		}
		return m.SpuriousConcurrencyProbability(a, 40) <= m.SpuriousConcurrencyProbability(b, 40)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Complement identity.
	if p, q := m.SpuriousConcurrencyProbability(30, 40), m.SpuriousDeferralProbability(30, 40); math.Abs(p+q-1) > 1e-12 {
		t.Errorf("probabilities don't sum to 1: %v + %v", p, q)
	}
}

func TestSpuriousProbabilityNoShadowing(t *testing.T) {
	m := New(NoShadowParams())
	if got := m.SpuriousConcurrencyProbability(20, 40); got != 0 {
		t.Errorf("sigma=0 below threshold = %v, want 0", got)
	}
	if got := m.SpuriousConcurrencyProbability(80, 40); got != 1 {
		t.Errorf("sigma=0 beyond threshold = %v, want 1", got)
	}
}

func TestSNREstimateUncertainty(t *testing.T) {
	m := New(DefaultParams())
	// §3.4: σ√3 ≈ 14 dB at σ = 8.
	got := m.SNREstimateUncertaintyDB()
	if math.Abs(got-8*math.Sqrt(3)) > 1e-12 {
		t.Errorf("uncertainty = %v", got)
	}
	if got < 13.5 || got > 14.5 {
		t.Errorf("uncertainty = %v, paper says ~14 dB", got)
	}
	// And its distance equivalent ~3x at α = 3.
	if f := m.LumpedDistanceFactor(got); f < 2.5 || f > 3.5 {
		t.Errorf("distance factor = %v, paper says ~3x", f)
	}
}

func TestOptimalThresholdShadowedShiftsLeft(t *testing.T) {
	// §3.4: shadowing reduces the concurrency-multiplexing gap at long
	// range and shifts optimal thresholds leftward (visible in the
	// D=120 frame of Figure 9).
	quad := New(NoShadowParams()).OptimalThresholdQuad(120)
	shadowed := New(DefaultParams()).OptimalThresholdMC(4, 150_000, 120)
	if shadowed >= quad {
		t.Errorf("shadowed threshold %v not left of sigma=0 threshold %v", shadowed, quad)
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeShortRange.String() != "short-range" ||
		RegimeIntermediate.String() != "intermediate" ||
		RegimeLongRange.String() != "long-range" {
		t.Error("regime names wrong")
	}
	if Regime(99).String() != "unknown" {
		t.Error("unknown regime name")
	}
}
