package core

// Kernel registration: every Monte Carlo integrand of the model is a
// named montecarlo kernel whose parameters serialize to JSON, so any
// estimation in this package can be farmed out to worker processes by
// a distributed executor (internal/dist) without the callers — the 15
// registered scenarios — changing at all. The coordinator and the
// workers run the same binary, so a (kernel name, params) pair
// rebuilds the exact closure on either side.
//
// Environments with a foreign capacity.Model implementation (anything
// outside internal/capacity) have no serializable identity; the
// estimators detect that and fall back to the in-process pool, which
// is bit-identical anyway.

import (
	"encoding/json"
	"fmt"

	"carriersense/internal/capacity"
	"carriersense/internal/montecarlo"
)

// Kernel names registered by this package.
const (
	KernelAverages   = "core/averages"    // per-policy throughput vector (EstimateAverages)
	KernelSingle     = "core/single"      // no-competition throughput (NormalizationConstant)
	KernelFairness   = "core/fairness"    // Jain index + starvation indicators (EstimateFairness)
	KernelBadSNR     = "core/bad-snr"     // §3.4 spurious-concurrency ∧ bad-SNR indicator
	KernelPolicyDiff = "core/policy-diff" // C_conc vs C_mux pair (OptimalThresholdMC)
	KernelMulti      = "core/multi"       // n-pair policy vector (EstimateMulti)
)

// EnvSpec is the serializable form of Params.
type EnvSpec struct {
	Alpha    float64       `json:"alpha"`
	SigmaDB  float64       `json:"sigma_db"`
	NoiseDB  float64       `json:"noise_db"`
	Capacity capacity.Spec `json:"capacity,omitempty"`
}

// envSpecOf captures the environment's serializable identity; ok is
// false when the capacity model is a foreign implementation.
func envSpecOf(p Params) (EnvSpec, bool) {
	cs, ok := capacity.SpecOf(p.Capacity)
	return EnvSpec{Alpha: p.Alpha, SigmaDB: p.SigmaDB, NoiseDB: p.NoiseDB, Capacity: cs}, ok
}

// build reconstructs the Model an EnvSpec was captured from.
func (s EnvSpec) build() (*Model, error) {
	capModel, err := s.Capacity.Build()
	if err != nil {
		return nil, err
	}
	p := Params{Alpha: s.Alpha, SigmaDB: s.SigmaDB, NoiseDB: s.NoiseDB, Capacity: capModel}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return New(p), nil
}

// pointParams parameterize the two-pair kernels: one environment and
// one (R_max, D, D_thresh) evaluation point. Kernels that ignore
// D_thresh leave it zero.
type pointParams struct {
	Env     EnvSpec `json:"env"`
	Rmax    float64 `json:"rmax"`
	D       float64 `json:"d"`
	DThresh float64 `json:"dthresh,omitempty"`
}

// multiParamsWire parameterize the n-pair kernel.
type multiParamsWire struct {
	Env        EnvSpec `json:"env"`
	NPairs     int     `json:"npairs"`
	AreaRadius float64 `json:"area_radius"`
	Rmax       float64 `json:"rmax"`
	DThresh    float64 `json:"dthresh"`
	Rounds     int     `json:"rounds"`
}

// pointFactory adapts a Model-level eval constructor into a
// montecarlo.KernelFactory over pointParams.
func pointFactory(build func(m *Model, p pointParams) montecarlo.EvalFunc) montecarlo.KernelFactory {
	return func(raw json.RawMessage) (montecarlo.EvalFunc, error) {
		var p pointParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		m, err := p.Env.build()
		if err != nil {
			return nil, err
		}
		return build(m, p), nil
	}
}

// pointBatchFactory adapts a pointEval batch-method selector into the
// batch kernel form. The batch method wraps the identical fused
// sampler the per-sample form uses, so the two are
// bit-interchangeable.
func pointBatchFactory(build func(m *Model, p pointParams) montecarlo.BatchEvalFunc) montecarlo.BatchKernelFactory {
	return func(raw json.RawMessage) (montecarlo.BatchEvalFunc, error) {
		var p pointParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		m, err := p.Env.build()
		if err != nil {
			return nil, err
		}
		return build(m, p), nil
	}
}

// registerPoint registers a two-pair kernel in both per-sample and
// batch form.
func registerPoint(name string, dim int,
	build func(m *Model, p pointParams) montecarlo.EvalFunc,
	buildBatch func(m *Model, p pointParams) montecarlo.BatchEvalFunc) {
	montecarlo.RegisterKernel(name, pointFactory(build))
	montecarlo.RegisterBatchKernel(name, dim, pointBatchFactory(buildBatch))
}

func init() {
	registerPoint(KernelAverages, nAverages,
		func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.averagesEval(p.Rmax, p.D, p.DThresh)
		},
		func(m *Model, p pointParams) montecarlo.BatchEvalFunc {
			return m.newPointEval(p.Rmax, p.D, p.DThresh).averagesBatch
		})
	registerPoint(KernelSingle, 1,
		func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.singleEval(p.Rmax, p.D)
		},
		func(m *Model, p pointParams) montecarlo.BatchEvalFunc {
			return m.newPointEval(p.Rmax, p.D, 0).singleBatch
		})
	registerPoint(KernelFairness, 3,
		func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.fairnessEval(p.Rmax, p.D, p.DThresh)
		},
		func(m *Model, p pointParams) montecarlo.BatchEvalFunc {
			return m.newPointEval(p.Rmax, p.D, p.DThresh).fairnessBatch
		})
	registerPoint(KernelBadSNR, 1,
		func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.badSNREval(p.Rmax, p.D, p.DThresh)
		},
		func(m *Model, p pointParams) montecarlo.BatchEvalFunc {
			return m.newPointEval(p.Rmax, p.D, p.DThresh).badSNRBatch
		})
	registerPoint(KernelPolicyDiff, 2,
		func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.policyDiffEval(p.Rmax, p.D)
		},
		func(m *Model, p pointParams) montecarlo.BatchEvalFunc {
			return m.newPointEval(p.Rmax, p.D, 0).policyDiffBatch
		})
	buildMultiModel := func(raw json.RawMessage) (*MultiModel, error) {
		var p multiParamsWire
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		if p.NPairs < 1 {
			return nil, fmt.Errorf("core: multi kernel needs npairs >= 1, got %d", p.NPairs)
		}
		env, err := p.Env.build()
		if err != nil {
			return nil, err
		}
		return NewMulti(MultiParams{
			Env:        env.Params(),
			NPairs:     p.NPairs,
			AreaRadius: p.AreaRadius,
			Rmax:       p.Rmax,
			DThresh:    p.DThresh,
			Rounds:     p.Rounds,
		}), nil
	}
	montecarlo.RegisterKernel(KernelMulti, func(raw json.RawMessage) (montecarlo.EvalFunc, error) {
		mm, err := buildMultiModel(raw)
		if err != nil {
			return nil, err
		}
		return mm.multiEval(), nil
	})
	montecarlo.RegisterBatchKernel(KernelMulti, nMultiIdx, func(raw json.RawMessage) (montecarlo.BatchEvalFunc, error) {
		mm, err := buildMultiModel(raw)
		if err != nil {
			return nil, err
		}
		return mm.multiBatch(), nil
	})
}

// AveragesRequest builds the serializable core/averages estimation
// request for an environment and one (R_max, D, D_thresh) point — the
// entry point the sampling subsystem's tests and benches use to drive
// the hot-path kernel (with its registered batch form) directly
// through executors. ok is false when the environment's capacity model
// has no serializable identity.
func AveragesRequest(p Params, rmax, d, dThresh float64, seed uint64, n int) (montecarlo.Request, bool) {
	m := New(p)
	env, ok := envSpecOf(m.params)
	if !ok {
		return montecarlo.Request{}, false
	}
	raw, err := json.Marshal(pointParams{Env: env, Rmax: rmax, D: d, DThresh: dThresh})
	if err != nil {
		return montecarlo.Request{}, false
	}
	return montecarlo.Request{Kernel: KernelAverages, Params: raw, Seed: seed, Samples: n, Dim: nAverages}, true
}

// estimatePoint routes a two-pair kernel estimation through the
// installed executor, falling back to running eval on the in-process
// pool when the environment has no serializable identity. Both paths
// evaluate the same shard plan with the same closure under the
// installed default sampler and are bit-identical.
func (m *Model) estimatePoint(kernel string, rmax, d, dThresh float64, eval montecarlo.EvalFunc, seed uint64, n, dim int) []montecarlo.Estimate {
	if env, ok := envSpecOf(m.params); ok {
		p := pointParams{Env: env, Rmax: rmax, D: d, DThresh: dThresh}
		return montecarlo.KernelMeanVec(kernel, p, seed, n, dim)
	}
	return localMeanVec(seed, n, dim, eval)
}

// localMeanVec is the executor-bypassing fallback for environments with
// no serializable kernel identity. It still honors the installed
// default sampler — a `-sampler antithetic` run must not silently
// degrade to plain draws just because the capacity model is foreign.
func localMeanVec(seed uint64, n, dim int, eval montecarlo.EvalFunc) []montecarlo.Estimate {
	est, err := montecarlo.SampledMeanVec(montecarlo.DefaultSampler(), seed, n, dim, eval)
	if err != nil {
		panic(&montecarlo.ExecError{Kernel: "(local fallback)", Err: err})
	}
	return est
}
