package core

import (
	"math"

	"carriersense/internal/montecarlo"
	"carriersense/internal/numeric"
	"carriersense/internal/rng"
)

// Regime classifies a network by the position of its optimal threshold
// relative to the network boundary (§3.3.3): R_thresh < R_max marks
// genuine long range; R_thresh > 2·R_max marks true short range;
// between the two lies the intermediate "sweet spot" most data
// networking hardware targets (§3.3.4).
type Regime int

const (
	// RegimeShortRange: optimal threshold well outside the network
	// (D_opt > 2·R_max). Interference is global; carrier sense is
	// near-perfect and starvation-free.
	RegimeShortRange Regime = iota
	// RegimeIntermediate: the 10-25 dB SNR sweet spot; good
	// performance and robust thresholds.
	RegimeIntermediate
	// RegimeLongRange: optimal threshold inside the network
	// (D_opt < R_max). Noise-dominated; interference localized;
	// average throughput still good but fairness suffers.
	RegimeLongRange
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case RegimeShortRange:
		return "short-range"
	case RegimeIntermediate:
		return "intermediate"
	case RegimeLongRange:
		return "long-range"
	default:
		return "unknown"
	}
}

// OptimalThresholdQuad solves ⟨C_conc⟩(D) = ⟨C_mux⟩ for D in the σ = 0
// model by quadrature and Brent's method — §3.3.3 proves this crossing
// point is the threshold that minimizes average inefficiency for all D
// simultaneously. The search bracket grows geometrically until the
// crossing is enclosed.
func (m *Model) OptimalThresholdQuad(rmax float64) float64 {
	mux := m.AvgMuxQuad(rmax)
	f := func(d float64) float64 { return m.AvgConcQuad(rmax, d) - mux }
	lo, hi := 1e-3, math.Max(4*rmax, 50.0)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e5 {
			// Concurrency never catches multiplexing within any
			// plausible range; the model is in the CDMA-like "extreme
			// long range" regime (footnote 11). Report the cap.
			return hi
		}
	}
	d, err := numeric.Brent(f, lo, hi, 1e-4*hi)
	if err != nil {
		// Fall back to bisection on the same bracket.
		d, _ = numeric.Bisect(f, lo, hi, 1e-4*hi)
	}
	return d
}

// OptimalThresholdMC solves the ⟨C_conc⟩ = ⟨C_mux⟩ crossing for the
// shadowed model by Monte Carlo estimation and bisection. n is the
// per-evaluation sample count; both curves are estimated with common
// random numbers so their difference is far less noisy than either
// alone. For σ > 0 no unique optimum exists (footnote 16); the paper
// keeps the crossing-point definition and so do we.
func (m *Model) OptimalThresholdMC(seed uint64, n int, rmax float64) float64 {
	diff := func(d float64) float64 {
		est := m.estimatePoint(KernelPolicyDiff, rmax, d, 0, m.policyDiffEval(rmax, d), seed, n, 2)
		return est[0].Mean - est[1].Mean
	}
	lo, hi := 1e-3, math.Max(4*rmax, 50.0)
	for diff(hi) < 0 {
		hi *= 2
		if hi > 1e5 {
			return hi
		}
	}
	d, err := numeric.Bisect(diff, lo, hi, math.Max(1e-3*hi, 0.05))
	if err != nil {
		return hi
	}
	return d
}

// policyDiffEval builds the common-random-numbers C_conc/C_mux pair
// integrand behind OptimalThresholdMC; the core/policy-diff kernel
// rebuilds it on workers. The integrand is the fused pointEval
// sampler.
func (m *Model) policyDiffEval(rmax, d float64) montecarlo.EvalFunc {
	return m.newPointEval(rmax, d, 0).policyDiffSample
}

// OptimalThreshold picks the appropriate solver for the model's σ.
func (m *Model) OptimalThreshold(seed uint64, n int, rmax float64) float64 {
	if m.params.SigmaDB == 0 {
		return m.OptimalThresholdQuad(rmax)
	}
	return m.OptimalThresholdMC(seed, n, rmax)
}

// ShortRangeThresholdAsymptote returns footnote 13's closed-form
// short-range limit of the optimal threshold distance:
//
//	D_thresh ≈ e^(-1/4) · R_max^(1/2) · N^(-1/(2α))
//
// in actual distance units (not α = 3 equivalents), derived by taking
// N → 0 and approximating Δr ≈ D_thresh.
func (m *Model) ShortRangeThresholdAsymptote(rmax float64) float64 {
	return math.Exp(-0.25) * math.Sqrt(rmax) *
		math.Pow(m.noise, -1/(2*m.params.Alpha))
}

// Classify returns the regime of a network of radius rmax given its
// optimal threshold distance dOpt, per the §3.3.3 criteria.
func Classify(rmax, dOpt float64) Regime {
	switch {
	case dOpt > 2*rmax:
		return RegimeShortRange
	case dOpt < rmax:
		return RegimeLongRange
	default:
		return RegimeIntermediate
	}
}

// EdgeSNRdB returns the SNR in dB at the network edge (r = R_max)
// ignoring shadowing — the quantity the paper uses to express regime
// boundaries ("equivalent to 12 dB < SNR < 27 dB at the edge of the
// network" for α ≈ 3).
func (m *Model) EdgeSNRdB(rmax float64) float64 {
	return 10 * math.Log10(m.pathGain(rmax)/m.noise)
}

// ThresholdPoint is one sample of Figure 7: the optimal threshold for
// a network radius, expressed both natively and as the equivalent
// distance at α = 3.
type ThresholdPoint struct {
	Rmax       float64
	DOpt       float64 // native optimal threshold distance
	DOptAlpha3 float64 // equivalent distance at α = 3 (Figure 7 axis)
	Regime     Regime
	EdgeSNRdB  float64
	Asymptote  float64 // footnote 13 short-range closed form
}

// ThresholdCurve computes Figure 7's optimal-threshold-versus-R_max
// curve for the model's α (σ handled per the model), over the given
// R_max grid. n is the MC sample count per curve evaluation (ignored
// when σ = 0).
func (m *Model) ThresholdCurve(seed uint64, n int, rmaxGrid []float64) []ThresholdPoint {
	out := make([]ThresholdPoint, len(rmaxGrid))
	for i, rmax := range rmaxGrid {
		dOpt := m.OptimalThreshold(seed+uint64(i)*104729, n, rmax)
		pThresh := m.ThresholdPower(dOpt)
		out[i] = ThresholdPoint{
			Rmax:       rmax,
			DOpt:       dOpt,
			DOptAlpha3: EquivalentDistanceAtAlpha(pThresh, 3),
			Regime:     Classify(rmax, dOpt),
			EdgeSNRdB:  m.EdgeSNRdB(rmax),
			Asymptote:  m.ShortRangeThresholdAsymptote(rmax),
		}
	}
	return out
}

// RecommendFactoryThreshold implements §3.3.3's "split the difference"
// strategy: given the operating span of the hardware [rmaxLo, rmaxHi]
// (e.g. 20 to 120 for 802.11g's bitrate flexibility), return the
// midpoint of the optimal thresholds at the two extremes. For the
// paper's defaults this lands near D_thresh ≈ 55 (P_thresh ≈ 13 dB
// above... the -65 dB reference, i.e. sensed power -52 dB).
func (m *Model) RecommendFactoryThreshold(seed uint64, n int, rmaxLo, rmaxHi float64) float64 {
	dLo := m.OptimalThreshold(seed, n, rmaxLo)
	dHi := m.OptimalThreshold(seed+1, n, rmaxHi)
	return (dLo + dHi) / 2
}

// SpuriousConcurrencyProbability returns the probability that
// shadowing on the sensing channel makes an interferer at distance d
// appear beyond the threshold dThresh, triggering concurrency even
// though d < dThresh (§3.4's worked example). Zero σ gives a hard 0/1.
func (m *Model) SpuriousConcurrencyProbability(d, dThresh float64) float64 {
	// Sensed power d^-α·L″ < dThresh^-α  ⇔  L″_dB < 10α·log10(d/dThresh).
	x := 10 * m.params.Alpha * math.Log10(d/dThresh)
	if m.params.SigmaDB == 0 {
		if x < 0 {
			return 0
		}
		return 1
	}
	return rng.NormalCDF(x / m.params.SigmaDB)
}

// SpuriousDeferralProbability is the mirror image: an interferer at
// d > dThresh appearing closer than the threshold, triggering deferral.
func (m *Model) SpuriousDeferralProbability(d, dThresh float64) float64 {
	return 1 - m.SpuriousConcurrencyProbability(d, dThresh)
}

// SNREstimateUncertaintyDB returns §3.4's pessimistic bound on a
// sender's ability to estimate its receiver's SNR under shadowing:
// the three independent lognormal effects (signal, interference,
// sensing) summed in quadrature, σ·√3.
func (m *Model) SNREstimateUncertaintyDB() float64 {
	return m.params.SigmaDB * math.Sqrt(3)
}
