package core

// Control-twin registration: every shadowed two-pair kernel whose
// σ = 0 means are computable by deterministic quadrature gets a
// montecarlo control twin — the same integrand evaluated on the
// σ = 0 model. The twin consumes exactly the prefix of the real
// kernel's per-sample uniforms (the two disc placements; σ = 0 draws
// no shadowing factors, matching rng.LognormalDB), so replaying a
// recorded sample into the twin evaluates the identical receiver
// configuration with the shadowing integrated out. That makes the
// twin the conditional-expectation-style control the cv sampler
// needs: it explains all placement variance (and, when the real
// environment is itself σ = 0, the whole integrand).
//
// Components whose σ = 0 mean has no accurate quadrature — the
// two-receiver max and the discontinuous starvation indicator — are
// marked NaN so the pilot leaves them unadjusted (β = 0); a quadrature
// value with a non-negligible error there would bias the estimate,
// not just inflate its variance.

import (
	"encoding/json"
	"math"

	"carriersense/internal/geometry"
	"carriersense/internal/montecarlo"
	"carriersense/internal/numeric"
)

// sigma0Model rebuilds the kernel's model with shadowing disabled.
func sigma0Model(raw json.RawMessage) (*Model, pointParams, error) {
	var p pointParams
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, p, err
	}
	p.Env.SigmaDB = 0
	m, err := p.Env.build()
	return m, p, err
}

// sigma0Factory adapts a Model-level eval constructor into the twin's
// KernelFactory over the σ = 0 model.
func sigma0Factory(build func(m *Model, p pointParams) montecarlo.EvalFunc) montecarlo.KernelFactory {
	return func(raw json.RawMessage) (montecarlo.EvalFunc, error) {
		m, p, err := sigma0Model(raw)
		if err != nil {
			return nil, err
		}
		return build(m, p), nil
	}
}

// avgCSQuad returns the σ = 0 carrier-sense mean and the (σ = 0
// deterministic) deferral decision: with L″ pinned at 1 the threshold
// comparison is a per-point constant, so CS throughput is exactly the
// multiplexing or the concurrency disc average.
func (m *Model) avgCSQuad(rmax, d, dThresh float64) (cs float64, defers bool) {
	defers = 1 > m.ThresholdPower(dThresh)/m.pathGain(d)
	if defers {
		return m.AvgMuxQuad(rmax), true
	}
	return m.AvgConcQuad(rmax, d), false
}

// avgUBMaxQuad computes ⟨max(C_conc, C_mux)⟩ over receiver 1's disc
// for σ = 0 — the per-receiver upper bound component, which depends
// on receiver 1's placement only.
func (m *Model) avgUBMaxQuad(rmax, d float64) float64 {
	return numeric.DiscAverage(func(r, theta float64) float64 {
		p := geometry.Polar(r, theta)
		c := Config{D: d, X1: p.X, Y1: p.Y, LSig1: 1, LInt1: 1}
		return math.Max(m.CConcurrent(c, 1), m.CSingle(c, 1)/2)
	}, rmax, 48, 24)
}

func init() {
	montecarlo.RegisterControlTwin(KernelAverages, montecarlo.ControlTwin{
		Eval: sigma0Factory(func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.averagesEval(p.Rmax, p.D, p.DThresh)
		}),
		Means: func(raw json.RawMessage) ([]float64, error) {
			m, p, err := sigma0Model(raw)
			if err != nil {
				return nil, err
			}
			means := make([]float64, nAverages)
			single := m.AvgSingleQuad(p.Rmax)
			means[idxSingle] = single
			means[idxMux] = single / 2
			means[idxConc] = m.AvgConcQuad(p.Rmax, p.D)
			cs, defers := m.avgCSQuad(p.Rmax, p.D, p.DThresh)
			means[idxCS] = cs
			means[idxMax] = math.NaN() // depends on both placements: no 2-D quadrature
			means[idxUBMax] = m.avgUBMaxQuad(p.Rmax, p.D)
			means[idxStarved] = math.NaN() // discontinuous indicator: quadrature would bias
			if defers {
				means[idxDeferred] = 1
			} else {
				means[idxDeferred] = 0
			}
			return means, nil
		},
	})
	montecarlo.RegisterControlTwin(KernelSingle, montecarlo.ControlTwin{
		Eval: sigma0Factory(func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.singleEval(p.Rmax, p.D)
		}),
		Means: func(raw json.RawMessage) ([]float64, error) {
			m, p, err := sigma0Model(raw)
			if err != nil {
				return nil, err
			}
			return []float64{m.AvgSingleQuad(p.Rmax)}, nil
		},
	})
	montecarlo.RegisterControlTwin(KernelPolicyDiff, montecarlo.ControlTwin{
		Eval: sigma0Factory(func(m *Model, p pointParams) montecarlo.EvalFunc {
			return m.policyDiffEval(p.Rmax, p.D)
		}),
		Means: func(raw json.RawMessage) ([]float64, error) {
			m, p, err := sigma0Model(raw)
			if err != nil {
				return nil, err
			}
			return []float64{m.AvgConcQuad(p.Rmax, p.D), m.AvgSingleQuad(p.Rmax) / 2}, nil
		},
	})
}
