package core

import (
	"math"
	"testing"

	"carriersense/internal/capacity"
	"carriersense/internal/rng"
)

func TestMultiReducesToTwoPairStructure(t *testing.T) {
	// At n = 2 the policies must sit in the familiar order: TDMA below
	// best-k, concurrency below best-k, CS between the pure policies'
	// envelope and best-k.
	mm := NewMulti(DefaultMultiParams(2))
	a := mm.EstimateMulti(1, 30_000)
	if a.BestK.Mean < a.TDMA.Mean*0.99 || a.BestK.Mean < a.Conc.Mean*0.99 {
		t.Errorf("best-k %v below a pure policy (tdma %v, conc %v)",
			a.BestK.Mean, a.TDMA.Mean, a.Conc.Mean)
	}
	lo := math.Min(a.TDMA.Mean, a.Conc.Mean)
	if a.CS.Mean < lo*0.95 {
		t.Errorf("CS %v below both pure policies (%v)", a.CS.Mean, lo)
	}
	if eff := a.Efficiency(); eff < 0.8 || eff > 1.01 {
		t.Errorf("n=2 efficiency = %v", eff)
	}
}

func TestMultiTDMAScaling(t *testing.T) {
	// TDMA per-pair throughput scales as 1/n (same link distribution,
	// 1/n of the airtime each).
	a2 := NewMulti(DefaultMultiParams(2)).EstimateMulti(2, 30_000)
	a4 := NewMulti(DefaultMultiParams(4)).EstimateMulti(2, 30_000)
	ratio := a2.TDMA.Mean / a4.TDMA.Mean
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("TDMA scaling 2->4 pairs: ratio %v, want ~2", ratio)
	}
}

func TestMultiSinglePairDegenerate(t *testing.T) {
	// n = 1: no competition. TDMA = conc = CS = best-k = C_single.
	p := DefaultMultiParams(1)
	mm := NewMulti(p)
	a := mm.EstimateMulti(3, 20_000)
	for name, v := range map[string]float64{
		"conc": a.Conc.Mean, "cs": a.CS.Mean, "bestk": a.BestK.Mean,
	} {
		if math.Abs(v-a.TDMA.Mean)/a.TDMA.Mean > 0.02 {
			t.Errorf("n=1: %s = %v differs from tdma %v", name, v, a.TDMA.Mean)
		}
	}
	if a.AvgActive.Mean != 1 {
		t.Errorf("n=1 active count = %v", a.AvgActive.Mean)
	}
}

func TestMultiCSEfficiencyStaysHighWithAdaptiveRate(t *testing.T) {
	// §3.2.1's claim: small n > 2 does not fundamentally alter the
	// results — CS stays within ~15% of the optimal proxy.
	for _, n := range []int{2, 4, 6} {
		a := NewMulti(DefaultMultiParams(n)).EstimateMulti(uint64(n), 15_000)
		if a.Efficiency() < 0.85 {
			t.Errorf("n=%d: CS efficiency %v", n, a.Efficiency())
		}
	}
}

func TestMultiFixedRateHeadroomGrows(t *testing.T) {
	// Footnote 18: exposed-terminal headroom grows with concurrency
	// under a fixed low bitrate, unlike under adaptive bitrate.
	headroom := func(n int, capModel capacity.Model) float64 {
		p := DefaultMultiParams(n)
		p.Env.Capacity = capModel
		return NewMulti(p).EstimateMulti(uint64(n)*7, 15_000).ExposedHeadroom()
	}
	fixed := capacity.FixedRate{Rate: 1.25, MinSNR: 2.5}
	if h2, h6 := headroom(2, fixed), headroom(6, fixed); h6 < h2 {
		t.Errorf("fixed-rate headroom should grow with n: n=2 %v, n=6 %v", h2, h6)
	}
	if h2, h6 := headroom(2, nil), headroom(6, nil); h6 > h2 {
		t.Errorf("adaptive headroom should not grow with n: n=2 %v, n=6 %v", h2, h6)
	}
}

func TestMultiCSRoundIsMaximalIndependentSet(t *testing.T) {
	mm := NewMulti(DefaultMultiParams(6))
	src := rng.New(9)
	pThresh := mm.model.ThresholdPower(mm.p.DThresh)
	sc := mm.newScratch()
	n := mm.p.NPairs
	sensed := func(i, j int) bool { return sc.gSense[i*n+j] > pThresh }
	for trial := 0; trial < 200; trial++ {
		mm.sampleInto(src, sc)
		active := mm.csRound(src, sc, pThresh)
		if active == 0 {
			t.Fatal("empty active set")
		}
		// Independence: no two active senders sense each other.
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				if active&(1<<uint(i)) != 0 && active&(1<<uint(j)) != 0 &&
					sensed(i, j) {
					t.Fatalf("active senders %d,%d sense each other", i, j)
				}
			}
		}
		// Maximality: every inactive sender is blocked by some active one.
		for i := 0; i < 6; i++ {
			if active&(1<<uint(i)) != 0 {
				continue
			}
			blocked := false
			for j := 0; j < 6; j++ {
				if active&(1<<uint(j)) != 0 && sensed(i, j) {
					blocked = true
					break
				}
			}
			if !blocked {
				t.Fatalf("inactive sender %d not blocked (set not maximal)", i)
			}
		}
	}
}

func TestMultiAvgActiveBounds(t *testing.T) {
	for _, n := range []int{2, 5} {
		a := NewMulti(DefaultMultiParams(n)).EstimateMulti(4, 10_000)
		if a.AvgActive.Mean < 1 || a.AvgActive.Mean > float64(n) {
			t.Errorf("n=%d avg active = %v", n, a.AvgActive.Mean)
		}
	}
}

func TestMultiBestLevelInRange(t *testing.T) {
	a := NewMulti(DefaultMultiParams(5)).EstimateMulti(5, 10_000)
	if a.MeanBestLevel.Mean < 1 || a.MeanBestLevel.Mean > 5 {
		t.Errorf("mean best level = %v", a.MeanBestLevel.Mean)
	}
}

func TestNewMultiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NPairs=0 accepted")
		}
	}()
	NewMulti(MultiParams{Env: DefaultParams(), NPairs: 0})
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 0b1011: 3, 0xFF: 8}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%b) = %d, want %d", x, got, want)
		}
	}
}
