// Package core implements the paper's theoretical model of carrier
// sense (§3): two competing sender-receiver pairs under power-law path
// loss and lognormal shadowing, with adaptive-bitrate capacity modeled
// by Shannon's formula, compared across four MAC policies —
// concurrency, time-division multiplexing, threshold carrier sense,
// and a genie-optimal binary choice subject to a weak fairness
// constraint.
//
// Geometry (Figure 1): sender S1 sits at the origin; its receiver R1
// is uniform over the disc of radius R_max around it. The interfering
// sender S2 sits at (D, π), i.e. Cartesian (-D, 0); its receiver R2 is
// uniform over the R_max disc around S2. Distances are the paper's
// dimensionless "65 dB units" (§3.2.2): the noise floor N = N0/P0
// defaults to -65 dB so that r = 20 yields ≈26 dB SNR.
package core

import (
	"fmt"
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/geometry"
	"carriersense/internal/rng"
)

// DefaultNoiseDB is the paper's default noise floor N = N0/P0 in dB
// (footnote 5: convenient for 802.11-like hardware with ~15 dBm
// transmit power and a ~-95 dBm noise floor).
const DefaultNoiseDB = -65

// Params are the environment parameters of the model: the propagation
// exponent and shadowing spread of §2, the normalized noise floor, and
// the capacity model (Shannon unless an ablation swaps it).
type Params struct {
	// Alpha is the path loss exponent (typically 2-4).
	Alpha float64
	// SigmaDB is the lognormal shadowing standard deviation in dB
	// (typically 4-12); zero gives the simplified model of §3.3.
	SigmaDB float64
	// NoiseDB is N = N0/P0 in dB. The paper fixes -65 dB; changing it
	// rescales all distances (§3.2.2).
	NoiseDB float64
	// Capacity maps linear SINR to throughput. Nil means Shannon.
	Capacity capacity.Model
}

// DefaultParams returns the paper's default environment: α = 3,
// σ = 8 dB, N = -65 dB, Shannon capacity.
func DefaultParams() Params {
	return Params{Alpha: 3, SigmaDB: 8, NoiseDB: DefaultNoiseDB}
}

// NoShadowParams returns the simplified (σ = 0) environment of §3.3.
func NoShadowParams() Params {
	p := DefaultParams()
	p.SigmaDB = 0
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Alpha <= 0 {
		return fmt.Errorf("core: path loss exponent must be positive, got %v", p.Alpha)
	}
	if p.SigmaDB < 0 {
		return fmt.Errorf("core: shadowing sigma must be nonnegative, got %v", p.SigmaDB)
	}
	if p.NoiseDB >= 0 {
		return fmt.Errorf("core: noise floor %v dB not below unit-distance power", p.NoiseDB)
	}
	return nil
}

// Noise returns the linear noise floor N.
func (p Params) Noise() float64 {
	return math.Pow(10, p.NoiseDB/10)
}

func (p Params) capModel() capacity.Model {
	if p.Capacity == nil {
		return capacity.NewShannon()
	}
	return p.Capacity
}

// Model evaluates the paper's capacity formulas for one environment.
// It is stateless and safe for concurrent use.
type Model struct {
	params Params
	noise  float64
	cap    capacity.Model
	// alphaInt is Alpha when it is a small positive integer (the
	// default α = 3 case), letting pathGain use multiplications instead
	// of math.Pow on the Monte Carlo hot path; 0 otherwise.
	alphaInt int
}

// New constructs a Model. It panics on invalid parameters, which are
// programmer errors (all entry points construct Params from literals).
func New(p Params) *Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	m := &Model{params: p, noise: p.Noise(), cap: p.capModel()}
	if a := int(p.Alpha); p.Alpha == float64(a) && a >= 1 && a <= 8 {
		m.alphaInt = a
	}
	return m
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.params }

// Noise returns the linear noise floor.
func (m *Model) Noise() float64 { return m.noise }

// minDist clamps degenerate geometry (receiver on top of its sender)
// away from the d = 0 singularity of the power law.
const minDist = 1e-9

// pathGain returns the deterministic power-law gain d^-α. Integer α
// (the α = 3 default) is evaluated by multiplication — several times
// cheaper than math.Pow on the Monte Carlo hot path.
func (m *Model) pathGain(d float64) float64 {
	if d < minDist {
		d = minDist
	}
	if m.alphaInt > 0 {
		p := d
		for i := 1; i < m.alphaInt; i++ {
			p *= d
		}
		return 1 / p
	}
	return math.Pow(d, -m.params.Alpha)
}

// pathGainSq returns the power-law gain d^-α given the *squared*
// distance s = d². Working in the squared domain lets the sampling hot
// path skip math.Hypot entirely: one s = x²+y² suffices, and for
// integer α the gain is a handful of multiplications (odd α needs a
// single sqrt).
func (m *Model) pathGainSq(s float64) float64 {
	const minDistSq = minDist * minDist
	if s < minDistSq {
		s = minDistSq
	}
	if a := m.alphaInt; a > 0 {
		p := 1.0
		for i := a; i >= 2; i -= 2 {
			p *= s
		}
		if a&1 != 0 {
			p *= math.Sqrt(s)
		}
		return 1 / p
	}
	return math.Pow(s, -0.5*m.params.Alpha)
}

// ThresholdPower converts a nominal threshold distance to the
// threshold power P_thresh = D_thresh^-α (the median sensed power at
// separation D_thresh; DESIGN.md §4 fixes the sign convention).
func (m *Model) ThresholdPower(dThresh float64) float64 {
	return m.pathGain(dThresh)
}

// ThresholdDistance converts a threshold power back to its nominal
// distance.
func (m *Model) ThresholdDistance(pThresh float64) float64 {
	return math.Pow(pThresh, -1/m.params.Alpha)
}

// EquivalentDistanceAtAlpha re-expresses a threshold power as a
// distance under a reference exponent (Figure 7 uses α = 3).
func EquivalentDistanceAtAlpha(pThresh, alpha float64) float64 {
	return math.Pow(pThresh, -1/alpha)
}

// Config is one fully sampled configuration of the two-pair scenario:
// receiver positions plus every shadowing draw the capacity formulas
// consume. With SigmaDB = 0 all shadowing factors are 1 and a Config
// is purely geometric.
//
// Receiver positions are stored in Cartesian form, relative to each
// receiver's own sender: every consumer needs either the squared
// sender-receiver distance or the squared interferer-receiver distance
// (x±D)² + y², so Cartesian storage makes the sampling hot path free
// of Atan2/Hypot round trips. Use ConfigPolar to construct one from
// the paper's (r, θ) coordinates.
type Config struct {
	D float64 // sender-sender separation

	X1, Y1 float64 // receiver 1, Cartesian around S1 (interferer at (-D, 0))
	X2, Y2 float64 // receiver 2, Cartesian around S2 (interferer at (-D, 0) by symmetry)

	LSig1  float64 // shadowing S1→R1 (serving link 1)
	LInt1  float64 // shadowing S2→R1 (interference into R1)
	LSig2  float64 // shadowing S2→R2 (serving link 2)
	LInt2  float64 // shadowing S1→R2 (interference into R2)
	LSense float64 // shadowing S1↔S2 (the carrier sense channel; one
	// draw shared by both senders — the model assumes
	// equal sensed powers, §3.2.1)
}

// ConfigPolar constructs a shadowing-free configuration from the
// paper's polar receiver coordinates (both receivers at (r_i, θ_i)
// around their own sender).
func ConfigPolar(d, r1, theta1, r2, theta2 float64) Config {
	p1 := geometry.Polar(r1, theta1)
	p2 := geometry.Polar(r2, theta2)
	return Config{
		D: d, X1: p1.X, Y1: p1.Y, X2: p2.X, Y2: p2.Y,
		LSig1: 1, LInt1: 1, LSig2: 1, LInt2: 1, LSense: 1,
	}
}

// R1 returns receiver 1's distance from its sender.
func (c Config) R1() float64 { return math.Hypot(c.X1, c.Y1) }

// R2 returns receiver 2's distance from its sender.
func (c Config) R2() float64 { return math.Hypot(c.X2, c.Y2) }

// SampleConfig draws a random configuration: receivers uniform over
// their R_max discs and independent lognormal shadowing on the five
// channels (footnote 14: distributions assumed uncorrelated).
func (m *Model) SampleConfig(src *rng.Source, rmax, d float64) Config {
	p1 := geometry.UniformInDisc(src, rmax)
	p2 := geometry.UniformInDisc(src, rmax)
	sigma := m.params.SigmaDB
	return Config{
		D:      d,
		X1:     p1.X,
		Y1:     p1.Y,
		X2:     p2.X,
		Y2:     p2.Y,
		LSig1:  src.LognormalDB(sigma),
		LInt1:  src.LognormalDB(sigma),
		LSig2:  src.LognormalDB(sigma),
		LInt2:  src.LognormalDB(sigma),
		LSense: src.LognormalDB(sigma),
	}
}

// SignalPower returns the serving signal power at receiver i (1 or 2).
func (m *Model) SignalPower(c Config, i int) float64 {
	if i == 1 {
		return m.pathGainSq(c.X1*c.X1+c.Y1*c.Y1) * c.LSig1
	}
	return m.pathGainSq(c.X2*c.X2+c.Y2*c.Y2) * c.LSig2
}

// InterferencePower returns the interfering sender's power at receiver
// i. By the symmetry of the scenario, the squared interferer-receiver
// distance for both pairs is Δr² = (x+D)² + y² (§3.2.2's Δr with the
// interferer at Cartesian (-D, 0)).
func (m *Model) InterferencePower(c Config, i int) float64 {
	if i == 1 {
		dx := c.X1 + c.D
		return m.pathGainSq(dx*dx+c.Y1*c.Y1) * c.LInt1
	}
	dx := c.X2 + c.D
	return m.pathGainSq(dx*dx+c.Y2*c.Y2) * c.LInt2
}

// SensedPower returns the power each sender senses from the other:
// D^-α · L″.
func (m *Model) SensedPower(c Config) float64 {
	return m.pathGain(c.D) * c.LSense
}

// CSingle is the no-competition throughput of pair i:
// cap(signal / N) — equation C_single of §3.2.2.
func (m *Model) CSingle(c Config, i int) float64 {
	return m.cap.Throughput(m.SignalPower(c, i) / m.noise)
}

// CMultiplexing is pair i's throughput under ideal time-division
// multiplexing: half the no-competition throughput.
func (m *Model) CMultiplexing(c Config, i int) float64 {
	return m.CSingle(c, i) / 2
}

// CConcurrent is pair i's throughput when both senders transmit
// simultaneously: cap(signal / (N + interference)).
func (m *Model) CConcurrent(c Config, i int) float64 {
	snr := m.SignalPower(c, i) / (m.noise + m.InterferencePower(c, i))
	return m.cap.Throughput(snr)
}

// Defers reports the carrier sense decision for the configuration:
// true when the sensed power exceeds the threshold (multiplex), false
// when below (transmit concurrently).
func (m *Model) Defers(c Config, pThresh float64) bool {
	return m.SensedPower(c) > pThresh
}

// CCarrierSense is pair i's throughput under threshold carrier sense:
// the piecewise C_cs of §3.2.2.
func (m *Model) CCarrierSense(c Config, i int, pThresh float64) float64 {
	if m.Defers(c, pThresh) {
		return m.CMultiplexing(c, i)
	}
	return m.CConcurrent(c, i)
}

// CMax is the genie-optimal per-pair average throughput: the better of
// all-concurrent and all-multiplexed, decided jointly over both pairs
// (½·Max[ΣC_conc, ΣC_mux] of §3.2.2). The weak fairness constraint —
// equal channel resources for both senders — is what restricts the
// genie to this binary choice.
func (m *Model) CMax(c Config) float64 {
	conc := m.CConcurrent(c, 1) + m.CConcurrent(c, 2)
	mux := m.CMultiplexing(c, 1) + m.CMultiplexing(c, 2)
	return math.Max(conc, mux) / 2
}

// OptimalPrefersConcurrency reports which branch CMax takes for the
// configuration.
func (m *Model) OptimalPrefersConcurrency(c Config) bool {
	conc := m.CConcurrent(c, 1) + m.CConcurrent(c, 2)
	mux := m.CMultiplexing(c, 1) + m.CMultiplexing(c, 2)
	return conc >= mux
}

// CUBMax is the per-pair upper bound on optimal throughput that
// decouples the pairs: Max[C_conc, C_mux] for pair i alone (§3.2.2).
// ⟨C_max⟩ ≤ ⟨C_UBmax⟩, and footnote 10 identifies the gap as the
// headroom an "aggressive" MAC forfeits by having to serve both pairs.
func (m *Model) CUBMax(c Config, i int) float64 {
	return math.Max(m.CConcurrent(c, i), m.CMultiplexing(c, i))
}

// PrefersMultiplexing reports whether receiver i, in isolation, does
// better under multiplexing than concurrency (the preference regions
// of Figure 3).
func (m *Model) PrefersMultiplexing(c Config, i int) bool {
	return m.CMultiplexing(c, i) > m.CConcurrent(c, i)
}

// StarvedUnderConcurrency reports whether receiver i gets less than
// frac (the paper uses 0.10) of its C_UBmax under concurrency — the
// white regions of Figure 3, the genuinely "hidden" terminals.
func (m *Model) StarvedUnderConcurrency(c Config, i int, frac float64) bool {
	ub := m.CUBMax(c, i)
	if ub <= 0 {
		return false
	}
	return m.CConcurrent(c, i) < frac*ub
}
