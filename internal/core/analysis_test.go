package core

import (
	"math"
	"testing"

	"carriersense/internal/numeric"
)

func TestInefficiencyNonNegative(t *testing.T) {
	m := New(NoShadowParams())
	grid := numeric.LinSpace(5, 180, 12)
	ineff := m.EstimateInefficiency(1, 60_000, 55, 55, grid)
	if ineff.HiddenTotal < 0 || ineff.ExposedTotal < 0 || ineff.TriangleTotal < 0 {
		t.Errorf("negative inefficiency: %+v", ineff)
	}
	for i, g := range ineff.HiddenGap {
		if g < 0 || ineff.ExposedGap[i] < 0 {
			t.Fatalf("negative gap at %d", i)
		}
	}
	// Gaps land on the correct side of the threshold.
	for i, d := range grid {
		if d <= 55 && ineff.HiddenGap[i] != 0 {
			t.Errorf("hidden gap on the multiplexing side at D=%v", d)
		}
		if d > 55 && ineff.ExposedGap[i] != 0 {
			t.Errorf("exposed gap on the concurrency side at D=%v", d)
		}
	}
}

func TestTriangleGrowsWithMisplacedThreshold(t *testing.T) {
	// §3.3.3: the triangle inefficiency vanishes at the crossing
	// point and grows as the threshold moves away from it.
	m := New(NoShadowParams())
	grid := numeric.LinSpace(5, 180, 12)
	dOpt := m.OptimalThresholdQuad(55)
	atOpt := m.EstimateInefficiency(2, 60_000, 55, dOpt, grid)
	misplaced := m.EstimateInefficiency(2, 60_000, 55, dOpt/2, grid)
	if misplaced.TriangleTotal <= atOpt.TriangleTotal {
		t.Errorf("triangle at misplaced threshold %v not above optimal %v",
			misplaced.TriangleTotal, atOpt.TriangleTotal)
	}
}

func TestFairnessMetrics(t *testing.T) {
	m := New(DefaultParams())
	f := m.EstimateFairness(3, 40_000, 40, 55, 55)
	if f.JainCS.Mean < 0.5 || f.JainCS.Mean > 1 {
		t.Errorf("Jain index = %v, want in [0.5, 1]", f.JainCS.Mean)
	}
	if f.StarvedCS.Mean > f.StarvedConc.Mean+0.01 {
		t.Errorf("CS starves more than pure concurrency: %v vs %v",
			f.StarvedCS.Mean, f.StarvedConc.Mean)
	}
	if f.P10CS < 0 || f.P10CS > 1.5 {
		t.Errorf("P10 ratio = %v", f.P10CS)
	}
}

func TestLongRangeStarvationWorse(t *testing.T) {
	// §3.3.3: under carrier sense with its own optimal threshold, a
	// short-range network never transmits concurrently while an
	// interferer is close enough to smother anyone (the threshold sits
	// beyond 2·R_max), but a long-range network does: its threshold is
	// *inside* the network, so interferers between D_thresh and R_max
	// trigger concurrency and starve the receivers nearest them.
	// Compare starvation under CS with the interferer at 0.9·R_max.
	m := New(DefaultParams())
	short := m.EstimateFairness(4, 60_000, 20, 18, 40)
	long := m.EstimateFairness(4, 60_000, 120, 108, 60)
	if long.StarvedCS.Mean <= short.StarvedCS.Mean {
		t.Errorf("long-range CS starvation %v not above short-range %v",
			long.StarvedCS.Mean, short.StarvedCS.Mean)
	}
	// And the short-range case is nearly starvation-free in absolute
	// terms ("free of starvation", §4.3).
	if short.StarvedCS.Mean > 0.05 {
		t.Errorf("short-range CS starvation = %v, want < 5%%", short.StarvedCS.Mean)
	}
}

func TestShadowingExampleConsistency(t *testing.T) {
	// The §3.4 worked example: closed-form pieces and the direct MC
	// estimate must agree on order of magnitude, and the individual
	// probabilities match the analysis.
	m := New(DefaultParams())
	ex := m.EstimateShadowingExample(5, 400_000, 20, 20, 40)
	if ex.PSpuriousConcurrency < 0.10 || ex.PSpuriousConcurrency > 0.22 {
		t.Errorf("P[spurious] = %v", ex.PSpuriousConcurrency)
	}
	if ex.PSmothered < 0.15 || ex.PSmothered > 0.25 {
		t.Errorf("P[smothered] = %v", ex.PSmothered)
	}
	if ex.PBadSNR < 0.015 || ex.PBadSNR > 0.06 {
		t.Errorf("closed-form P[bad] = %v, paper ballpark 4%%", ex.PBadSNR)
	}
	// MC estimate within a factor ~2 of the closed-form product (the
	// product ignores shadowing on the serving link).
	ratio := ex.PBadSNRMC.Mean / ex.PBadSNR
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("MC/closed-form ratio = %v (MC %v, closed %v)", ratio, ex.PBadSNRMC.Mean, ex.PBadSNR)
	}
}

func TestLumpedDistanceFactor(t *testing.T) {
	m := New(DefaultParams())
	// §3.4: 14 dB at α = 3 is "a distance factor of about 3x".
	if got := m.LumpedDistanceFactor(14); math.Abs(got-2.93) > 0.05 {
		t.Errorf("14 dB factor = %v, want ~2.9", got)
	}
	// 0 dB is no factor.
	if got := m.LumpedDistanceFactor(0); got != 1 {
		t.Errorf("0 dB factor = %v", got)
	}
}

func TestPercentileHelper(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("percentile sorted its input")
	}
}
