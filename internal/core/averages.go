package core

import (
	"math"

	"carriersense/internal/geometry"
	"carriersense/internal/montecarlo"
	"carriersense/internal/numeric"
)

// Averages holds the expected per-pair throughput of every MAC policy
// for one (R_max, D) point, estimated over the receiver distribution
// and shadowing. All policies are evaluated on the *same* sampled
// configurations (common random numbers), so ratios such as
// CS/Max carry far less Monte Carlo noise than the individual values.
type Averages struct {
	Rmax, D          float64
	DThresh          float64 // threshold distance used for the CS policy
	Single           montecarlo.Estimate
	Mux              montecarlo.Estimate
	Conc             montecarlo.Estimate
	CS               montecarlo.Estimate
	Max              montecarlo.Estimate
	UBMax            montecarlo.Estimate
	Starved          montecarlo.Estimate // P[receiver 1 starved under concurrency] (<10% of UBMax)
	DeferredFraction montecarlo.Estimate // P[carrier sense defers]
}

// Efficiency returns carrier sense throughput as a fraction of
// optimal, the quantity the §3.2.5 tables report.
func (a Averages) Efficiency() float64 {
	if a.Max.Mean == 0 {
		return 0
	}
	return a.CS.Mean / a.Max.Mean
}

// indices into the MeanVec sample vector.
const (
	idxSingle = iota
	idxMux
	idxConc
	idxCS
	idxMax
	idxUBMax
	idxStarved
	idxDeferred
	nAverages
)

// averagesEval builds the per-policy throughput integrand behind
// EstimateAverages; the core/averages kernel rebuilds it on workers.
// The integrand is the fused pointEval sampler: each path gain and
// capacity evaluation happens exactly once per sample.
func (m *Model) averagesEval(rmax, d, dThresh float64) montecarlo.EvalFunc {
	return m.newPointEval(rmax, d, dThresh).averagesSample
}

// EstimateAverages estimates all policy averages at one (R_max, D)
// point with n Monte Carlo configurations. dThresh sets the carrier
// sense threshold distance. The estimation runs through the installed
// executor (in-process by default, a worker fleet under `cs run
// -workers`); results are bit-identical either way.
func (m *Model) EstimateAverages(seed uint64, n int, rmax, d, dThresh float64) Averages {
	est := m.estimatePoint(KernelAverages, rmax, d, dThresh, m.averagesEval(rmax, d, dThresh), seed, n, nAverages)
	return Averages{
		Rmax: rmax, D: d, DThresh: dThresh,
		Single:           est[idxSingle],
		Mux:              est[idxMux],
		Conc:             est[idxConc],
		CS:               est[idxCS],
		Max:              est[idxMax],
		UBMax:            est[idxUBMax],
		Starved:          est[idxStarved],
		DeferredFraction: est[idxDeferred],
	}
}

// AvgSingleQuad computes ⟨C_single⟩(R_max) for the σ = 0 model by
// deterministic quadrature over the receiver disc. Only valid when
// SigmaDB == 0 (it ignores shadowing draws); callers assert that.
func (m *Model) AvgSingleQuad(rmax float64) float64 {
	f := func(r float64) float64 {
		c := Config{X1: r, LSig1: 1}
		return m.CSingle(c, 1)
	}
	// The integrand depends on r only; average over the disc with the
	// 2r/R_max² radial density. Panels concentrate near the origin
	// where capacity has its logarithmic peak.
	g := func(r float64) float64 { return 2 * r * f(r) / (rmax * rmax) }
	return numeric.GaussLegendre20Panels(g, 0, rmax, 64)
}

// AvgMuxQuad computes ⟨C_multiplexing⟩(R_max) for σ = 0 by quadrature.
func (m *Model) AvgMuxQuad(rmax float64) float64 {
	return m.AvgSingleQuad(rmax) / 2
}

// AvgConcQuad computes ⟨C_concurrent⟩(R_max, D) for σ = 0 by nested
// quadrature over the receiver disc.
func (m *Model) AvgConcQuad(rmax, d float64) float64 {
	return numeric.DiscAverage(func(r, theta float64) float64 {
		p := geometry.Polar(r, theta)
		c := Config{D: d, X1: p.X, Y1: p.Y, LSig1: 1, LInt1: 1}
		return m.CConcurrent(c, 1)
	}, rmax, 48, 24)
}

// CurvePoint is one D-sample of the Figure 4/5/9 throughput curves.
type CurvePoint struct {
	D     float64
	Mux   float64
	Conc  float64
	CS    float64
	Max   float64
	UBMax float64
}

// Curves computes the average-throughput-versus-D curves of Figures 4,
// 5 and 9 for one R_max: multiplexing, concurrency, carrier sense (for
// the given threshold) and optimal, across the given D grid, each
// estimated with n Monte Carlo samples. Values are normalized by
// dividing by norm if norm > 0 (the paper normalizes to the
// R_max = 20, D = ∞ throughput, i.e. ⟨C_single⟩(20)).
func (m *Model) Curves(seed uint64, n int, rmax, dThresh float64, dGrid []float64, norm float64) []CurvePoint {
	out := make([]CurvePoint, len(dGrid))
	scale := 1.0
	if norm > 0 {
		scale = 1 / norm
	}
	for i, d := range dGrid {
		a := m.EstimateAverages(seed+uint64(i)*7919, n, rmax, d, dThresh)
		out[i] = CurvePoint{
			D:     d,
			Mux:   a.Mux.Mean * scale,
			Conc:  a.Conc.Mean * scale,
			CS:    a.CS.Mean * scale,
			Max:   a.Max.Mean * scale,
			UBMax: a.UBMax.Mean * scale,
		}
	}
	return out
}

// NormalizationConstant returns the paper's Figure 4 normalizer:
// ⟨C_single⟩ at R_max = 20 (the D → ∞ throughput of a R_max = 20
// network), estimated with n samples (or by quadrature when σ = 0).
func (m *Model) NormalizationConstant(seed uint64, n int) float64 {
	if m.params.SigmaDB == 0 {
		return m.AvgSingleQuad(20)
	}
	est := m.estimatePoint(KernelSingle, 20, 1, 0, m.singleEval(20, 1), seed, n, 1)
	return est[0].Mean
}

// singleEval builds the no-competition throughput integrand; the
// core/single kernel rebuilds it on workers.
func (m *Model) singleEval(rmax, d float64) montecarlo.EvalFunc {
	return m.newPointEval(rmax, d, 0).singleSample
}

// ConcurrencySlope estimates d⟨C_conc⟩/dD at the given D by a central
// difference of the quadrature curve (σ = 0 only). Footnote 12 bounds
// this slope by 1.37/R_max (in R_max = 20 normalized capacity units)
// for α = 3 and all D > R_max.
func (m *Model) ConcurrencySlope(rmax, d float64) float64 {
	h := math.Max(d*0.01, 0.05)
	return numeric.Derivative(func(x float64) float64 {
		return m.AvgConcQuad(rmax, x)
	}, d, h)
}
