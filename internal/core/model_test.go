package core

import (
	"math"
	"testing"
	"testing/quick"

	"carriersense/internal/capacity"
	"carriersense/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.Alpha = 0
	if err := bad.Validate(); err == nil {
		t.Error("alpha=0 accepted")
	}
	bad = DefaultParams()
	bad.SigmaDB = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	bad = DefaultParams()
	bad.NoiseDB = 5
	if err := bad.Validate(); err == nil {
		t.Error("positive noise floor accepted")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid params did not panic")
		}
	}()
	New(Params{Alpha: -1, NoiseDB: -65})
}

func TestNoiseLinear(t *testing.T) {
	m := New(DefaultParams())
	if got := m.Noise(); math.Abs(got-math.Pow(10, -6.5)) > 1e-12 {
		t.Errorf("noise = %v", got)
	}
}

func TestThresholdPowerDistanceRoundTrip(t *testing.T) {
	m := New(DefaultParams())
	f := func(raw float64) bool {
		d := 1 + math.Abs(math.Mod(raw, 200))
		p := m.ThresholdPower(d)
		return math.Abs(m.ThresholdDistance(p)-d) < 1e-6*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquivalentDistanceAtAlpha(t *testing.T) {
	// A threshold power measured as distance 55 at α = 3 must map back
	// to 55 at α = 3.
	m := New(DefaultParams())
	p := m.ThresholdPower(55)
	if got := EquivalentDistanceAtAlpha(p, 3); math.Abs(got-55) > 1e-9 {
		t.Errorf("equivalent distance = %v, want 55", got)
	}
}

// fixedConfig builds a deterministic configuration for formula checks.
func fixedConfig(d, r1, theta1 float64) Config {
	return ConfigPolar(d, r1, theta1, r1, theta1)
}

func TestCapacityFormulas(t *testing.T) {
	m := New(NoShadowParams())
	c := fixedConfig(55, 20, 0)

	// C_single = ln(1 + r^-α/N).
	wantSingle := math.Log1p(math.Pow(20, -3) / m.Noise())
	if got := m.CSingle(c, 1); math.Abs(got-wantSingle) > 1e-12 {
		t.Errorf("CSingle = %v, want %v", got, wantSingle)
	}
	// Multiplexing is exactly half.
	if got := m.CMultiplexing(c, 1); math.Abs(got-wantSingle/2) > 1e-12 {
		t.Errorf("CMultiplexing = %v, want %v", got, wantSingle/2)
	}
	// Concurrency with the receiver at θ=0 (away from the interferer):
	// Δr = r + D = 75.
	interf := math.Pow(75, -3)
	wantConc := math.Log1p(math.Pow(20, -3) / (m.Noise() + interf))
	if got := m.CConcurrent(c, 1); math.Abs(got-wantConc) > 1e-12 {
		t.Errorf("CConcurrent = %v, want %v", got, wantConc)
	}
	// Concurrency is never better than no-competition.
	if m.CConcurrent(c, 1) > m.CSingle(c, 1) {
		t.Error("concurrency exceeded single")
	}
}

func TestCConcurrentDegradesWithCloserInterferer(t *testing.T) {
	m := New(NoShadowParams())
	prev := math.Inf(1)
	for _, d := range []float64{200, 100, 50, 25, 10} {
		c := fixedConfig(d, 20, math.Pi/2)
		got := m.CConcurrent(c, 1)
		if got >= prev {
			t.Errorf("concurrency did not degrade at D=%v: %v >= %v", d, got, prev)
		}
		prev = got
	}
}

func TestDefersThreshold(t *testing.T) {
	m := New(NoShadowParams())
	pThresh := m.ThresholdPower(55)
	if !m.Defers(fixedConfig(54, 10, 0), pThresh) {
		t.Error("sender at D=54 should defer with Dthresh=55")
	}
	if m.Defers(fixedConfig(56, 10, 0), pThresh) {
		t.Error("sender at D=56 should not defer with Dthresh=55")
	}
}

func TestDefersWithShadowing(t *testing.T) {
	m := New(DefaultParams())
	pThresh := m.ThresholdPower(55)
	c := fixedConfig(55, 10, 0)
	c.LSense = 2 // +3 dB shadowing on the sensing path
	if !m.Defers(c, pThresh) {
		t.Error("favorable sensing shadowing should trigger deferral")
	}
	c.LSense = 0.5
	if m.Defers(c, pThresh) {
		t.Error("unfavorable sensing shadowing should suppress deferral")
	}
}

func TestCCarrierSensePiecewise(t *testing.T) {
	m := New(NoShadowParams())
	pThresh := m.ThresholdPower(55)
	near := fixedConfig(30, 20, 1)
	if got, want := m.CCarrierSense(near, 1, pThresh), m.CMultiplexing(near, 1); got != want {
		t.Errorf("near CS = %v, want mux %v", got, want)
	}
	far := fixedConfig(120, 20, 1)
	if got, want := m.CCarrierSense(far, 1, pThresh), m.CConcurrent(far, 1); got != want {
		t.Errorf("far CS = %v, want conc %v", got, want)
	}
}

func TestCMaxIsBinaryChoice(t *testing.T) {
	m := New(NoShadowParams())
	f := func(rawD, rawR, rawTheta float64) bool {
		d := 1 + math.Abs(math.Mod(rawD, 150))
		r := 0.5 + math.Abs(math.Mod(rawR, 100))
		theta := math.Mod(rawTheta, 2*math.Pi)
		c := fixedConfig(d, r, theta)
		conc := (m.CConcurrent(c, 1) + m.CConcurrent(c, 2)) / 2
		mux := (m.CMultiplexing(c, 1) + m.CMultiplexing(c, 2)) / 2
		got := m.CMax(c)
		return math.Abs(got-math.Max(conc, mux)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCUBMaxBoundsCMax(t *testing.T) {
	// Per-pair UB decouples the pairs: the average of the two pairs'
	// UBs is ≥ C_max for every configuration (footnote 10's gap).
	m := New(DefaultParams())
	src := rng.New(5)
	for i := 0; i < 5_000; i++ {
		c := m.SampleConfig(src, 60, 45)
		ub := (m.CUBMax(c, 1) + m.CUBMax(c, 2)) / 2
		if m.CMax(c) > ub+1e-12 {
			t.Fatalf("CMax %v exceeded UB %v", m.CMax(c), ub)
		}
	}
}

func TestPairSymmetry(t *testing.T) {
	// The two pairs are statistically identical: their sampled average
	// throughputs must agree within Monte Carlo noise.
	m := New(DefaultParams())
	src := rng.New(6)
	var sum1, sum2 float64
	n := 100_000
	for i := 0; i < n; i++ {
		c := m.SampleConfig(src, 40, 55)
		sum1 += m.CConcurrent(c, 1)
		sum2 += m.CConcurrent(c, 2)
	}
	if diff := math.Abs(sum1-sum2) / sum1; diff > 0.02 {
		t.Errorf("pair asymmetry %v", diff)
	}
}

func TestSampleConfigBounds(t *testing.T) {
	m := New(DefaultParams())
	src := rng.New(7)
	for i := 0; i < 10_000; i++ {
		c := m.SampleConfig(src, 30, 55)
		if c.R1() > 30 || c.R2() > 30 {
			t.Fatalf("receiver outside Rmax: %v %v", c.R1(), c.R2())
		}
		if c.LSig1 <= 0 || c.LSense <= 0 {
			t.Fatalf("non-positive shadowing factor")
		}
	}
}

func TestSampleConfigNoShadowing(t *testing.T) {
	m := New(NoShadowParams())
	src := rng.New(8)
	c := m.SampleConfig(src, 30, 55)
	if c.LSig1 != 1 || c.LInt1 != 1 || c.LSense != 1 {
		t.Errorf("sigma=0 config has shadowing: %+v", c)
	}
}

func TestStarvationDefinition(t *testing.T) {
	m := New(NoShadowParams())
	// Receiver right next to the interferer: starved under concurrency.
	c := fixedConfig(20, 19, math.Pi) // ~1 unit from the interferer
	if !m.StarvedUnderConcurrency(c, 1, 0.10) {
		t.Error("receiver adjacent to interferer not starved")
	}
	// Receiver far on the other side with a distant interferer: fine.
	c = fixedConfig(200, 5, 0)
	if m.StarvedUnderConcurrency(c, 1, 0.10) {
		t.Error("well-separated receiver starved")
	}
}

func TestPrefersMultiplexing(t *testing.T) {
	m := New(NoShadowParams())
	// Close interferer: multiplexing preferred.
	if !m.PrefersMultiplexing(fixedConfig(5, 20, math.Pi/2), 1) {
		t.Error("close interferer should prefer multiplexing")
	}
	// Very far interferer: concurrency preferred.
	if m.PrefersMultiplexing(fixedConfig(500, 20, math.Pi/2), 1) {
		t.Error("far interferer should prefer concurrency")
	}
}

func TestCustomCapacityModel(t *testing.T) {
	// Swapping in a fixed-rate capacity model changes the answers —
	// the ablation hook works end to end.
	p := NoShadowParams()
	p.Capacity = capacity.FixedRate{Rate: 1, MinSNR: 10}
	m := New(p)
	c := fixedConfig(500, 20, 0)
	if got := m.CSingle(c, 1); got != 1 {
		t.Errorf("fixed-rate single = %v, want 1", got)
	}
	// Under heavy interference the fixed-rate link delivers nothing.
	c = fixedConfig(1, 20, math.Pi)
	if got := m.CConcurrent(c, 1); got != 0 {
		t.Errorf("fixed-rate under interference = %v, want 0", got)
	}
}
