package core

// Fused per-sample evaluation: the Monte Carlo hot path behind every
// kernel in this package. The policy formulas of model.go are written
// for clarity — CCarrierSense calls CConcurrent which calls
// SignalPower which calls pathGain — and the averages integrand used
// to walk that tree ~13 times per sample, re-running the same
// math.Pow path gains and interferer trigonometry each time. The
// fused evaluator computes each primitive exactly once per sample:
//
//   - one Evaluated struct holds the five received powers
//     (serving and interfering power at each receiver, plus the
//     sensing-channel shadowing), each derived from a single squared
//     distance and one pathGainSq call;
//   - per-point constants — pathGain(D), the threshold comparison
//     rewritten into the shadowing domain, the devirtualized Shannon
//     capacity — are hoisted into pointEval, outside the sample loop;
//   - every integrand (averages, single, fairness, bad-snr,
//     policy-diff) is a thin projection over the same draw, so the
//     per-sample and batch kernel forms are bit-identical by
//     construction.
//
// Determinism contract: draw consumes random variates in exactly the
// order SampleConfig does (two disc points, then five lognormal
// shadowing factors), so shard streams stay aligned across the
// per-sample path, the batch path, worker fleets, and the cache.

import (
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/geometry"
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// Evaluated holds every primitive of one sampled configuration,
// computed exactly once: the four received powers the capacity
// formulas consume and the sensing-channel shadowing factor the
// deferral decision consumes.
type Evaluated struct {
	Sig1, Int1 float64 // serving / interfering power at receiver 1
	Sig2, Int2 float64 // serving / interfering power at receiver 2
	LSense     float64 // shadowing on the S1↔S2 sensing channel
}

// pointEval is the fused evaluator for one (R_max, D, D_thresh)
// estimation point. Everything that is constant across samples is
// computed here, once, instead of inside the sample loop.
type pointEval struct {
	m       *Model
	rmax, d float64
	sigma   float64
	noise   float64
	gainD   float64 // pathGain(D): the median sensed power, hoisted
	// senseThresh is the deferral threshold moved into the shadowing
	// domain: sensed = pathGain(D)·L″ > P_thresh  ⇔  L″ > senseThresh.
	// For σ = 0 the comparison becomes a per-point constant.
	senseThresh float64
	// shanEff > 0 devirtualizes the (default) Shannon capacity model:
	// thr() inlines eff·Log1p instead of an interface dispatch.
	shanEff float64
}

func (m *Model) newPointEval(rmax, d, dThresh float64) *pointEval {
	pe := &pointEval{
		m:     m,
		rmax:  rmax,
		d:     d,
		sigma: m.params.SigmaDB,
		noise: m.noise,
		gainD: m.pathGain(d),
	}
	pe.senseThresh = m.ThresholdPower(dThresh) / pe.gainD
	if s, ok := m.cap.(capacity.Shannon); ok {
		pe.shanEff = s.Efficiency
		if pe.shanEff == 0 {
			pe.shanEff = 1
		}
	}
	return pe
}

// thr maps linear SINR to throughput, inlining the Shannon formula
// when possible.
func (pe *pointEval) thr(snr float64) float64 {
	if pe.shanEff > 0 {
		if snr <= 0 {
			return 0
		}
		return pe.shanEff * math.Log1p(snr)
	}
	return pe.m.cap.Throughput(snr)
}

// draw samples one configuration and computes its received powers.
// Random variates are consumed in exactly the order SampleConfig uses:
// receiver 1 position, receiver 2 position, then the five lognormal
// shadowing draws (none when σ = 0, matching rng.LognormalDB).
func (pe *pointEval) draw(src *rng.Source) Evaluated {
	p1 := geometry.UniformInDisc(src, pe.rmax)
	p2 := geometry.UniformInDisc(src, pe.rmax)
	m := pe.m
	dx1 := p1.X + pe.d
	dx2 := p2.X + pe.d
	e := Evaluated{
		Sig1:   m.pathGainSq(p1.X*p1.X + p1.Y*p1.Y),
		Int1:   m.pathGainSq(dx1*dx1 + p1.Y*p1.Y),
		Sig2:   m.pathGainSq(p2.X*p2.X + p2.Y*p2.Y),
		Int2:   m.pathGainSq(dx2*dx2 + p2.Y*p2.Y),
		LSense: 1,
	}
	if sigma := pe.sigma; sigma != 0 {
		e.Sig1 *= src.LognormalDB(sigma)
		e.Int1 *= src.LognormalDB(sigma)
		e.Sig2 *= src.LognormalDB(sigma)
		e.Int2 *= src.LognormalDB(sigma)
		e.LSense = src.LognormalDB(sigma)
	}
	return e
}

// defers reports the carrier sense decision for the drawn sample, with
// the threshold comparison pre-divided into the shadowing domain.
func (pe *pointEval) defers(e Evaluated) bool {
	return e.LSense > pe.senseThresh
}

// averagesSample is the fused form of the EstimateAverages integrand:
// 4 path gains and 4 capacity evaluations per sample instead of the
// ~13 of each the unfused policy-formula tree performed.
func (pe *pointEval) averagesSample(src *rng.Source, out []float64) {
	e := pe.draw(src)
	noise := pe.noise
	single1 := pe.thr(e.Sig1 / noise)
	single2 := pe.thr(e.Sig2 / noise)
	conc1 := pe.thr(e.Sig1 / (noise + e.Int1))
	conc2 := pe.thr(e.Sig2 / (noise + e.Int2))
	mux1 := single1 / 2
	mux2 := single2 / 2

	out[idxSingle] = single1
	out[idxMux] = mux1
	out[idxConc] = conc1
	deferred := pe.defers(e)
	if deferred {
		out[idxCS] = mux1
		out[idxDeferred] = 1
	} else {
		out[idxCS] = conc1
		out[idxDeferred] = 0
	}
	out[idxMax] = math.Max(conc1+conc2, mux1+mux2) / 2
	ub := math.Max(conc1, mux1)
	out[idxUBMax] = ub
	if ub > 0 && conc1 < StarvationFraction*ub {
		out[idxStarved] = 1
	} else {
		out[idxStarved] = 0
	}
}

// singleSample is the fused no-competition integrand.
func (pe *pointEval) singleSample(src *rng.Source, out []float64) {
	e := pe.draw(src)
	out[0] = pe.thr(e.Sig1 / pe.noise)
}

// fairnessSample is the fused Jain-index-plus-starvation integrand.
func (pe *pointEval) fairnessSample(src *rng.Source, out []float64) {
	e := pe.draw(src)
	noise := pe.noise
	single1 := pe.thr(e.Sig1 / noise)
	single2 := pe.thr(e.Sig2 / noise)
	conc1 := pe.thr(e.Sig1 / (noise + e.Int1))
	conc2 := pe.thr(e.Sig2 / (noise + e.Int2))
	deferred := pe.defers(e)
	x1, x2 := conc1, conc2
	if deferred {
		x1, x2 = single1/2, single2/2
	}
	if x1+x2 > 0 {
		out[0] = (x1 + x2) * (x1 + x2) / (2 * (x1*x1 + x2*x2))
	} else {
		out[0] = 1
	}
	ub := math.Max(conc1, single1/2)
	starved := ub > 0 && conc1 < StarvationFraction*ub
	if starved {
		out[1] = 1
		if !deferred {
			out[2] = 1
		}
	}
}

// badSNRSample is the fused §3.4 indicator: spurious concurrency
// leaving receiver 1 below 0 dB SNR. It needs no capacity evaluation
// at all.
func (pe *pointEval) badSNRSample(src *rng.Source, out []float64) {
	e := pe.draw(src)
	if pe.defers(e) {
		return
	}
	if e.Sig1/(pe.noise+e.Int1) < 1 { // below 0 dB
		out[0] = 1
	}
}

// policyDiffSample is the fused common-random-numbers C_conc/C_mux
// pair behind OptimalThresholdMC.
func (pe *pointEval) policyDiffSample(src *rng.Source, out []float64) {
	e := pe.draw(src)
	out[0] = pe.thr(e.Sig1 / (pe.noise + e.Int1))
	out[1] = pe.thr(e.Sig1/pe.noise) / 2
}

// Batch forms: one montecarlo.BatchEvalFunc call evaluates a whole
// buffer chunk through direct (devirtualized, inlinable) method calls
// on the shared pointEval — the per-sample indirection the EvalFunc
// path pays once per sample is paid once per chunk. Samples are
// evaluated in order on the same stream, so every batch form is
// bit-identical to its per-sample form by construction.

func (pe *pointEval) averagesBatch(src *rng.Source, count int, out []float64) {
	for i := 0; i < count; i++ {
		pe.averagesSample(src, out[i*nAverages:(i+1)*nAverages:(i+1)*nAverages])
	}
}

func (pe *pointEval) singleBatch(src *rng.Source, count int, out []float64) {
	for i := 0; i < count; i++ {
		pe.singleSample(src, out[i:i+1:i+1])
	}
}

func (pe *pointEval) fairnessBatch(src *rng.Source, count int, out []float64) {
	for i := 0; i < count; i++ {
		pe.fairnessSample(src, out[i*3:(i+1)*3:(i+1)*3])
	}
}

func (pe *pointEval) badSNRBatch(src *rng.Source, count int, out []float64) {
	for i := 0; i < count; i++ {
		pe.badSNRSample(src, out[i:i+1:i+1])
	}
}

func (pe *pointEval) policyDiffBatch(src *rng.Source, count int, out []float64) {
	for i := 0; i < count; i++ {
		pe.policyDiffSample(src, out[i*2:(i+1)*2:(i+1)*2])
	}
}

// batchLoop adapts a per-sample evaluator into a batch one for
// kernels without a dedicated batch method (the n-pair kernel, whose
// per-sample cost dwarfs the call indirection).
func batchLoop(dim int, sample montecarlo.EvalFunc) montecarlo.BatchEvalFunc {
	return func(src *rng.Source, count int, out []float64) {
		for i := 0; i < count; i++ {
			sample(src, out[i*dim:(i+1)*dim:(i+1)*dim])
		}
	}
}
