package core

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"carriersense/internal/montecarlo"
)

func TestControlTwinsRegisteredForShadowedKernels(t *testing.T) {
	for _, k := range []string{KernelAverages, KernelSingle, KernelPolicyDiff} {
		if !montecarlo.HasControlTwin(k) {
			t.Errorf("kernel %s has no control twin", k)
		}
	}
}

func TestSigma0PilotIsExact(t *testing.T) {
	// On a σ = 0 environment the twin IS the kernel: the pilot must
	// find β = 1 on every quadrature-backed component, and the adjusted
	// variable is then the constant μ — zero variance, so the cv
	// strategy converges at the driver's first probe.
	req, ok := AveragesRequest(Params{Alpha: 3, SigmaDB: 0, NoiseDB: DefaultNoiseDB},
		55, 40, 55, 9, 4*montecarlo.ShardSize)
	if !ok {
		t.Fatal("averages kernel must be serializable")
	}
	spec, err := montecarlo.PilotControl(req, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{idxSingle, idxMux, idxConc, idxCS, idxUBMax} {
		if math.Abs(spec.Beta[j]-1) > 1e-9 {
			t.Errorf("component %d: β = %v, want exactly 1 on a σ=0 lane", j, spec.Beta[j])
		}
	}
	// The deferral indicator is a per-point constant at σ = 0: the twin
	// has no variance to regress against, so the pilot's guard leaves
	// it unadjusted.
	if spec.Beta[idxDeferred] != 0 {
		t.Errorf("constant component β = %v, want the 0-variance guard", spec.Beta[idxDeferred])
	}
	for _, j := range []int{idxMax, idxStarved} {
		if spec.Beta[j] != 0 {
			t.Errorf("NaN-mean component %d: β = %v, want 0", j, spec.Beta[j])
		}
	}

	req.Control = spec
	accs, err := montecarlo.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	est := accs[idxSingle].Estimate()
	if est.StdErr > 1e-12 {
		t.Errorf("σ=0 adjusted stderr %v, want 0", est.StdErr)
	}
}

func TestTwinMeansMatchMonteCarlo(t *testing.T) {
	// The quadrature means the pilot regresses against must agree with
	// a Monte Carlo estimate of the twin integrand itself — a wrong μ
	// would bias every cv result, not just inflate variance.
	req, ok := AveragesRequest(Params{Alpha: 3, SigmaDB: 8, NoiseDB: DefaultNoiseDB},
		55, 40, 55, 9, 4*montecarlo.ShardSize)
	if !ok {
		t.Fatal("averages kernel must be serializable")
	}
	m, p, err := sigma0Model(req.Params)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := montecarlo.RunRequest(context.Background(), montecarlo.Request{
		Kernel: KernelAverages, Params: alterSigma(t, req.Params), Seed: 9,
		Samples: 8 * montecarlo.ShardSize, Dim: req.Dim,
	})
	if err != nil {
		t.Fatal(err)
	}
	means := []struct {
		j    int
		quad float64
	}{
		{idxSingle, m.AvgSingleQuad(p.Rmax)},
		{idxConc, m.AvgConcQuad(p.Rmax, p.D)},
		{idxUBMax, m.avgUBMaxQuad(p.Rmax, p.D)},
	}
	for _, c := range means {
		est := twin[c.j].Estimate()
		tol := 4*est.StdErr + 2e-3*math.Abs(c.quad)
		if math.Abs(est.Mean-c.quad) > tol {
			t.Errorf("component %d: quadrature %v vs σ=0 MC %v (stderr %v)", c.j, c.quad, est.Mean, est.StdErr)
		}
	}
}

// alterSigma rewrites the request params to σ = 0, mirroring
// sigma0Model, so the σ = 0 kernel can run as an ordinary MC request.
func alterSigma(t *testing.T, raw json.RawMessage) json.RawMessage {
	t.Helper()
	var p pointParams
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatal(err)
	}
	p.Env.SigmaDB = 0
	out, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
