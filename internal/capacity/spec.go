package capacity

// Spec is the serializable identity of a capacity Model — what a
// distributed shard job ships instead of the Model interface value.
// The zero Spec means "default" (Shannon with unit efficiency), so
// environments that never touch the capacity knob serialize to
// nothing.

import "fmt"

// Spec kinds.
const (
	// SpecDefault (empty Kind) builds the default Shannon model.
	SpecDefault = ""
	// SpecShannon builds Shannon{Efficiency}.
	SpecShannon = "shannon"
	// SpecFixedRate builds FixedRate{Rate, MinSNR}.
	SpecFixedRate = "fixed-rate"
	// SpecDiscrete builds Discrete{Table}.
	SpecDiscrete = "discrete"
)

// Spec identifies a capacity model in serializable form.
type Spec struct {
	Kind string `json:"kind,omitempty"`
	// Efficiency configures the Shannon kind.
	Efficiency float64 `json:"efficiency,omitempty"`
	// Rate and MinSNR configure the fixed-rate kind.
	Rate   float64 `json:"rate,omitempty"`
	MinSNR float64 `json:"min_snr,omitempty"`
	// Table configures the discrete kind: the full rate set travels
	// inline so custom tables survive the trip.
	Table RateTable `json:"table,omitempty"`
}

// SpecOf captures the spec of a Model. nil (the default) and every
// model type defined in this package round-trip; a foreign Model
// implementation returns false, and callers must then evaluate
// locally.
func SpecOf(m Model) (Spec, bool) {
	switch v := m.(type) {
	case nil:
		return Spec{}, true
	case Shannon:
		return Spec{Kind: SpecShannon, Efficiency: v.Efficiency}, true
	case FixedRate:
		return Spec{Kind: SpecFixedRate, Rate: v.Rate, MinSNR: v.MinSNR}, true
	case Discrete:
		return Spec{Kind: SpecDiscrete, Table: v.Table}, true
	default:
		return Spec{}, false
	}
}

// Build reconstructs the Model a Spec was captured from. The default
// spec returns nil, matching the "nil means Shannon" convention of
// core.Params.
func (s Spec) Build() (Model, error) {
	switch s.Kind {
	case SpecDefault:
		return nil, nil
	case SpecShannon:
		return Shannon{Efficiency: s.Efficiency}, nil
	case SpecFixedRate:
		return FixedRate{Rate: s.Rate, MinSNR: s.MinSNR}, nil
	case SpecDiscrete:
		return Discrete{Table: s.Table}, nil
	default:
		return nil, fmt.Errorf("capacity: unknown spec kind %q", s.Kind)
	}
}
