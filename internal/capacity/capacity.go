// Package capacity models achievable link throughput as a function of
// SINR.
//
// The analytical model (§2) uses the Shannon capacity formula
// C/B = log(1 + SNR) "as a rough proportional estimate" of what an
// adaptive bitrate radio achieves. The packet simulator instead uses
// the discrete 802.11a rate set with per-rate SINR requirements and
// packet error rate (PER) curves. Both live here, behind a common
// Model interface so the core model can swap capacity functions — the
// adaptive-vs-fixed-bitrate comparison is the paper's central
// analytical move (§3.3.2: a fixed rate "would transform this smooth
// SNR gradient into a step-like drop in throughput").
package capacity

import (
	"fmt"
	"math"
)

// Model maps a linear SINR to a throughput in abstract capacity units
// (nats/symbol for the Shannon model; fractions of a reference rate
// for the discrete models). Only ratios of these values are ever
// reported, so the unit cancels.
type Model interface {
	// Throughput returns achievable throughput at the given linear
	// SINR. Must be nonnegative and nondecreasing in snr.
	Throughput(snr float64) float64
	// Name identifies the model in reports.
	Name() string
}

// Shannon is the paper's adaptive-bitrate capacity model:
// Efficiency · ln(1 + SNR). Efficiency is the "less by some constant
// fraction" of §3.2.1's assumptions; it cancels in all ratios and
// defaults to 1.
type Shannon struct {
	Efficiency float64
}

// NewShannon returns a Shannon model with unit efficiency.
func NewShannon() Shannon { return Shannon{Efficiency: 1} }

// Throughput implements Model.
func (s Shannon) Throughput(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	eff := s.Efficiency
	if eff == 0 {
		eff = 1
	}
	return eff * math.Log1p(snr)
}

// Name implements Model.
func (s Shannon) Name() string { return "shannon" }

// ShannonNats returns ln(1 + snr), the raw capacity integrand.
func ShannonNats(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	return math.Log1p(snr)
}

// ShannonBits returns log2(1 + snr) in bits.
func ShannonBits(snr float64) float64 {
	return ShannonNats(snr) / math.Ln2
}

// FixedRate is the classical fixed-bitrate abstraction the paper
// criticizes: full rate above an SINR threshold, nothing below it —
// the "cookie cutter" interference model. Used for ablations that
// reproduce why prior work saw carrier sense so unfavorably.
type FixedRate struct {
	// Rate is the throughput delivered when the link works.
	Rate float64
	// MinSNR is the linear SINR below which nothing is delivered.
	MinSNR float64
}

// Throughput implements Model.
func (f FixedRate) Throughput(snr float64) float64 {
	if snr >= f.MinSNR {
		return f.Rate
	}
	return 0
}

// Name implements Model.
func (f FixedRate) Name() string { return "fixed-rate" }

// Discrete models an adaptive radio restricted to a finite rate set:
// the best rate whose SINR requirement is met. This sits between
// Shannon and FixedRate, matching real 802.11 hardware; §4.2 observes
// the testbed entering exactly this intermediate regime when bitrate
// flexibility runs out.
type Discrete struct {
	Table RateTable
}

// Throughput implements Model. The returned unit is Mb/s.
func (d Discrete) Throughput(snr float64) float64 {
	snrDB := 10 * math.Log10(snr)
	best := 0.0
	for _, r := range d.Table {
		// The tiny tolerance absorbs the dB→linear→dB round trip so a
		// link at exactly MinSNRdB qualifies.
		if snrDB >= r.MinSNRdB-1e-9 && r.Mbps > best {
			best = r.Mbps
		}
	}
	return best
}

// Name implements Model.
func (d Discrete) Name() string { return "discrete" }

// Modulation distinguishes the PHY families a rate belongs to; frame
// timing differs between them (OFDM symbols versus DSSS's long
// preamble and bit-serial payload).
type Modulation int

// Modulations.
const (
	// OFDM is the 802.11a/g symbol-based PHY (4 µs symbols).
	OFDM Modulation = iota
	// DSSS is the 802.11b direct-sequence PHY (192 µs long preamble,
	// payload at the nominal bit rate).
	DSSS
)

// Rate describes one entry of a discrete PHY rate set.
type Rate struct {
	Mbps          float64 // nominal data rate
	BitsPerSymbol int     // data bits per 4 µs OFDM symbol (OFDM only)
	// MinSNRdB is the SINR at which 1400-byte frames succeed ~50% of
	// the time; the logistic PER curve is centered here.
	MinSNRdB float64
	// Modulation selects the frame timing family (zero value OFDM).
	Modulation Modulation
}

// RateTable is an ordered (ascending Mbps) set of PHY rates.
type RateTable []Rate

// Table80211a is the full 802.11a OFDM rate set with per-rate SINR
// requirements representative of commodity hardware.
var Table80211a = RateTable{
	{Mbps: 6, BitsPerSymbol: 24, MinSNRdB: 6},
	{Mbps: 9, BitsPerSymbol: 36, MinSNRdB: 7.8},
	{Mbps: 12, BitsPerSymbol: 48, MinSNRdB: 9},
	{Mbps: 18, BitsPerSymbol: 72, MinSNRdB: 10.8},
	{Mbps: 24, BitsPerSymbol: 96, MinSNRdB: 14},
	{Mbps: 36, BitsPerSymbol: 144, MinSNRdB: 18},
	{Mbps: 48, BitsPerSymbol: 192, MinSNRdB: 22},
	{Mbps: 54, BitsPerSymbol: 216, MinSNRdB: 24},
}

// TablePaperDriver is the rate subset the paper's experiments could
// exercise: "each of 6, 9, 12, 18, and 24 Mbps" (§4) — higher rates
// performed too poorly under the OpenHAL driver.
var TablePaperDriver = Table80211a[:5]

// Table80211b is the DSSS rate set with representative SINR
// requirements. The robust 1 and 2 Mb/s rates are what §4.2 wishes it
// had for "deeper long-range scenarios" ("11g mode, capable of lower
// bitrates").
var Table80211b = RateTable{
	{Mbps: 1, MinSNRdB: 1, Modulation: DSSS},
	{Mbps: 2, MinSNRdB: 3, Modulation: DSSS},
	{Mbps: 5.5, MinSNRdB: 6, Modulation: DSSS},
	{Mbps: 11, MinSNRdB: 9, Modulation: DSSS},
}

// Table80211g is the ERP rate set: the DSSS rates plus the OFDM rates,
// giving the deep rate-adaptation floor the paper's 11a hardware
// lacked.
var Table80211g = append(append(RateTable{}, Table80211b...), Table80211a...)

// Lookup returns the table entry with the given nominal rate.
func (t RateTable) Lookup(mbps float64) (Rate, error) {
	for _, r := range t {
		if r.Mbps == mbps {
			return r, nil
		}
	}
	return Rate{}, fmt.Errorf("capacity: no %v Mbps entry in rate table", mbps)
}

// Best returns the highest rate whose MinSNRdB requirement the given
// SINR (dB) satisfies, and false when even the lowest rate's
// requirement is unmet.
func (t RateTable) Best(snrDB float64) (Rate, bool) {
	var best Rate
	ok := false
	for _, r := range t {
		if snrDB >= r.MinSNRdB && r.Mbps > best.Mbps {
			best = r
			ok = true
		}
	}
	return best, ok
}

// perWidthDB is the logistic PER transition width: the curve moves
// from ~90% to ~10% loss over about 4.4 × this many dB, matching the
// 2-3 dB transition bands of measured OFDM PER curves.
const perWidthDB = 0.6

// refFrameBytes is the frame length at which MinSNRdB is calibrated.
const refFrameBytes = 1400

// PER returns the packet error rate for a frame of the given length at
// the given SINR (dB) and rate. The reference curve is logistic in dB,
// centered on the rate's MinSNRdB for 1400-byte frames, and scales
// with length as independent per-fragment survival:
//
//	PER(snr, L) = 1 - (1 - PER_ref(snr))^(L/1400)
func PER(r Rate, snrDB float64, frameBytes int) float64 {
	if frameBytes <= 0 {
		return 0
	}
	x := (snrDB - r.MinSNRdB) / perWidthDB
	// Clamp to keep Exp in range.
	if x > 40 {
		x = 40
	} else if x < -40 {
		x = -40
	}
	ref := 1 / (1 + math.Exp(x))
	scale := float64(frameBytes) / refFrameBytes
	per := 1 - math.Pow(1-ref, scale)
	if per < 0 {
		return 0
	}
	if per > 1 {
		return 1
	}
	return per
}

// DeliveryRate returns 1 - PER: the expected fraction of frames of the
// given length delivered at the given SINR and rate.
func DeliveryRate(r Rate, snrDB float64, frameBytes int) float64 {
	return 1 - PER(r, snrDB, frameBytes)
}

// FadeModel describes per-frame residual channel variation: a Gaussian
// dB wobble (the "few dB" residual of a wideband channel, appendix)
// plus an occasional deep fade (frequency-selective outage bursts, the
// mechanism that lets real links sit at comfortable median SNR yet
// still lose 5-20% of frames — the paper's 80-95%-delivery "long
// range" links averaged 16 dB SNR, far above the AWGN cliff).
type FadeModel struct {
	// SigmaDB is the everyday Gaussian spread.
	SigmaDB float64
	// OutageProb is the per-frame probability of a deep fade.
	OutageProb float64
	// OutageDepthDB is the additional loss during a deep fade.
	OutageDepthDB float64
}

// DefaultFade returns the residual fading model used by the packet
// simulator: ±2.5 dB everyday wobble with a 2% baseline chance of a
// deep 25 dB fade that kills a frame at any rate. Per-link outage
// probabilities (see the testbed's outage matrix) override the
// baseline: real intermediate-quality links lose frames mostly to
// rate-independent bursts, which is how the paper's 80-95%-delivery
// links can average 16 dB SNR — far above the 6 Mb/s AWGN cliff — and
// still drop frames.
func DefaultFade() FadeModel {
	return FadeModel{SigmaDB: 2.5, OutageProb: 0.02, OutageDepthDB: 25}
}

// WithOutageProb returns a copy of the model with the outage
// probability replaced (used to apply per-link outage rates).
func (f FadeModel) WithOutageProb(p float64) FadeModel {
	f.OutageProb = p
	return f
}

// Zero reports whether the model is a no-op.
func (f FadeModel) Zero() bool {
	return f.SigmaDB <= 0 && (f.OutageProb <= 0 || f.OutageDepthDB <= 0)
}

// ExpectedDeliveryRate returns the delivery rate at the given median
// SINR averaged over the fade distribution — the long-run delivery
// fraction a link census measures. Computed by 33-point midpoint
// quadrature over ±4σ for each mixture branch.
func (f FadeModel) ExpectedDeliveryRate(r Rate, medianSNRdB float64, frameBytes int) float64 {
	if f.Zero() {
		return DeliveryRate(r, medianSNRdB, frameBytes)
	}
	branch := func(offset float64) float64 {
		if f.SigmaDB <= 0 {
			return DeliveryRate(r, medianSNRdB+offset, frameBytes)
		}
		const n = 33
		total, wsum := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := -4 + 8*(float64(i)+0.5)/n // in σ units
			w := math.Exp(-x * x / 2)
			total += w * DeliveryRate(r, medianSNRdB+offset+x*f.SigmaDB, frameBytes)
			wsum += w
		}
		return total / wsum
	}
	p := f.OutageProb
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return (1-p)*branch(0) + p*branch(-f.OutageDepthDB)
}

// ExpectedGoodputMbps returns the best rate × expected delivery under
// the fade model and its goodput — the fade-aware oracle.
func (f FadeModel) ExpectedGoodputMbps(t RateTable, medianSNRdB float64, frameBytes int) (Rate, float64) {
	var best Rate
	bestGoodput := 0.0
	for _, r := range t {
		g := r.Mbps * f.ExpectedDeliveryRate(r, medianSNRdB, frameBytes)
		if g > bestGoodput {
			bestGoodput = g
			best = r
		}
	}
	return best, bestGoodput
}

// ExpectedThroughputMbps returns the rate that maximizes
// rate × (1 - PER) at the given SINR, i.e. the oracle rate decision
// the paper's experiments approximate by sweeping rates. The second
// return is the achieved goodput in Mb/s (zero when no rate delivers).
func (t RateTable) ExpectedThroughputMbps(snrDB float64, frameBytes int) (Rate, float64) {
	var best Rate
	bestGoodput := 0.0
	for _, r := range t {
		g := r.Mbps * DeliveryRate(r, snrDB, frameBytes)
		if g > bestGoodput {
			bestGoodput = g
			best = r
		}
	}
	return best, bestGoodput
}
