package capacity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShannonBasics(t *testing.T) {
	s := NewShannon()
	if got := s.Throughput(0); got != 0 {
		t.Errorf("capacity at 0 SNR = %v", got)
	}
	if got := s.Throughput(-1); got != 0 {
		t.Errorf("capacity at negative SNR = %v", got)
	}
	if got := s.Throughput(math.E - 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("ln(1+e-1) = %v, want 1", got)
	}
	half := Shannon{Efficiency: 0.5}
	if got := half.Throughput(math.E - 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("efficiency scaling = %v, want 0.5", got)
	}
	zeroEff := Shannon{} // zero value defaults to efficiency 1
	if got := zeroEff.Throughput(math.E - 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("zero-value efficiency = %v, want 1", got)
	}
}

func TestShannonMonotone(t *testing.T) {
	s := NewShannon()
	f := func(rawA, rawB float64) bool {
		a := math.Abs(math.Mod(rawA, 1e6))
		b := math.Abs(math.Mod(rawB, 1e6))
		if a > b {
			a, b = b, a
		}
		return s.Throughput(a) <= s.Throughput(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShannonBitsNats(t *testing.T) {
	if got := ShannonBits(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("log2(2) = %v", got)
	}
	if got := ShannonNats(math.E*math.E - 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("ln(e^2) = %v", got)
	}
}

func TestFixedRateStep(t *testing.T) {
	f := FixedRate{Rate: 5, MinSNR: 10}
	if got := f.Throughput(9.99); got != 0 {
		t.Errorf("below threshold = %v", got)
	}
	if got := f.Throughput(10); got != 5 {
		t.Errorf("at threshold = %v", got)
	}
	if got := f.Throughput(1e9); got != 5 {
		t.Errorf("fixed rate can't exploit high SNR: %v", got)
	}
}

func TestDiscreteMatchesBest(t *testing.T) {
	d := Discrete{Table: Table80211a}
	for _, snrDB := range []float64{-5, 3, 6, 9.5, 15, 25, 40} {
		snr := math.Pow(10, snrDB/10)
		got := d.Throughput(snr)
		best, ok := Table80211a.Best(snrDB)
		want := 0.0
		if ok {
			want = best.Mbps
		}
		if got != want {
			t.Errorf("snr=%vdB: Discrete=%v, Best=%v", snrDB, got, want)
		}
	}
}

func TestRateTableLookup(t *testing.T) {
	r, err := Table80211a.Lookup(24)
	if err != nil || r.BitsPerSymbol != 96 {
		t.Errorf("lookup 24 = %+v, %v", r, err)
	}
	if _, err := Table80211a.Lookup(11); err == nil {
		t.Error("lookup of 802.11b rate should fail on the 11a table")
	}
}

func TestRateTableBestOrdering(t *testing.T) {
	// Best rate is nondecreasing in SNR.
	prev := 0.0
	for snr := -10.0; snr < 40; snr += 0.5 {
		r, ok := Table80211a.Best(snr)
		mbps := 0.0
		if ok {
			mbps = r.Mbps
		}
		if mbps < prev {
			t.Errorf("best rate decreased at %v dB: %v -> %v", snr, prev, mbps)
		}
		prev = mbps
	}
	if _, ok := Table80211a.Best(0); ok {
		t.Error("0 dB should not support any 11a rate")
	}
}

func TestPERProperties(t *testing.T) {
	r := Table80211a[0] // 6 Mb/s, MinSNR 6 dB
	// Calibration: PER at MinSNRdB for 1400 bytes is 50%.
	if got := PER(r, r.MinSNRdB, 1400); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("PER at threshold = %v, want 0.5", got)
	}
	// Monotone decreasing in SNR.
	f := func(rawA, rawB float64) bool {
		a := math.Mod(rawA, 40)
		b := math.Mod(rawB, 40)
		if a > b {
			a, b = b, a
		}
		return PER(r, a, 1400) >= PER(r, b, 1400)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Longer frames fail more.
	if PER(r, 8, 2800) <= PER(r, 8, 1400) {
		t.Error("longer frame should have higher PER")
	}
	// Extremes clamp into [0, 1].
	if got := PER(r, 100, 1400); got < 0 || got > 1e-6 {
		t.Errorf("PER at huge SNR = %v", got)
	}
	if got := PER(r, -100, 1400); got < 1-1e-9 || got > 1 {
		t.Errorf("PER at tiny SNR = %v", got)
	}
	if got := PER(r, 10, 0); got != 0 {
		t.Errorf("PER of empty frame = %v", got)
	}
}

func TestDeliveryComplement(t *testing.T) {
	r := Table80211a[4]
	for _, snr := range []float64{5, 14, 20} {
		if got := DeliveryRate(r, snr, 1400) + PER(r, snr, 1400); math.Abs(got-1) > 1e-12 {
			t.Errorf("delivery + PER = %v, want 1", got)
		}
	}
}

func TestExpectedThroughputOracle(t *testing.T) {
	// At 30 dB the oracle must pick the top rate; at 7 dB, 6 Mb/s.
	r, g := Table80211a.ExpectedThroughputMbps(30, 1400)
	if r.Mbps != 54 || g < 50 {
		t.Errorf("oracle at 30dB = %v Mb/s rate, %v goodput", r.Mbps, g)
	}
	r, g = Table80211a.ExpectedThroughputMbps(7, 1400)
	if r.Mbps != 6 {
		t.Errorf("oracle at 7dB picked %v Mb/s", r.Mbps)
	}
	if g <= 0 || g > 6 {
		t.Errorf("goodput at 7dB = %v", g)
	}
	// Deep below threshold: nothing works.
	if _, g := Table80211a.ExpectedThroughputMbps(-20, 1400); g != 0 {
		t.Errorf("goodput at -20dB = %v, want 0", g)
	}
}

func TestFadeModelZero(t *testing.T) {
	if !(FadeModel{}).Zero() {
		t.Error("zero-value fade model should be a no-op")
	}
	if (FadeModel{SigmaDB: 1}).Zero() {
		t.Error("sigma>0 should not be zero")
	}
	if (FadeModel{OutageProb: 0.1, OutageDepthDB: 10}).Zero() {
		t.Error("outage-only model should not be zero")
	}
	if !(FadeModel{OutageProb: 0.1}).Zero() {
		t.Error("outage with zero depth is a no-op")
	}
}

func TestExpectedDeliveryRateReducesToDeliveryRate(t *testing.T) {
	r := Table80211a[0]
	var f FadeModel
	for _, snr := range []float64{4, 6, 8, 12} {
		if got, want := f.ExpectedDeliveryRate(r, snr, 1400), DeliveryRate(r, snr, 1400); math.Abs(got-want) > 1e-12 {
			t.Errorf("zero fade expected delivery = %v, want %v", got, want)
		}
	}
}

func TestExpectedDeliveryRateSmoothsCliff(t *testing.T) {
	r := Table80211a[0]
	f := FadeModel{SigmaDB: 2.5}
	// Above the cliff fading hurts; below it helps.
	if f.ExpectedDeliveryRate(r, 10, 1400) >= DeliveryRate(r, 10, 1400) {
		t.Error("fading should reduce delivery above the cliff")
	}
	if f.ExpectedDeliveryRate(r, 4, 1400) <= DeliveryRate(r, 4, 1400) {
		t.Error("fading should raise delivery below the cliff")
	}
}

func TestExpectedDeliveryRateOutageCeiling(t *testing.T) {
	// A 54 Mb/s link at 40 dB: a 25 dB deep fade leaves 15 dB, below
	// the 24 dB requirement, so each outage frame dies — delivery
	// cannot beat 1 - p.
	r := Table80211a[7]
	f := FadeModel{SigmaDB: 2.5, OutageProb: 0.2, OutageDepthDB: 25}
	got := f.ExpectedDeliveryRate(r, 40, 1400)
	if got > 0.81 {
		t.Errorf("delivery = %v, want <= ~0.80 under 20%% outage", got)
	}
	if got < 0.78 {
		t.Errorf("delivery = %v, strong link should approach 0.80", got)
	}
	// The same outage at 6 Mb/s barely matters (40 - 25 = 15 dB is
	// still comfortably above 6 dB) — outages are only
	// rate-independent for links without 25 dB of margin.
	if got6 := f.ExpectedDeliveryRate(Table80211a[0], 40, 1400); got6 < 0.99 {
		t.Errorf("6 Mb/s delivery at 40 dB = %v, want ~1", got6)
	}
}

func TestExpectedDeliveryMonotoneInSNR(t *testing.T) {
	r := Table80211a[2]
	f := DefaultFade()
	prev := 0.0
	for snr := -5.0; snr <= 40; snr += 1 {
		got := f.ExpectedDeliveryRate(r, snr, 1400)
		if got < prev-1e-9 {
			t.Errorf("expected delivery decreased at %v dB", snr)
		}
		prev = got
	}
}

func TestExpectedGoodputMbps(t *testing.T) {
	f := DefaultFade()
	// Rate-independent outages: the best rate at high SNR is still
	// the top of the table.
	r, g := f.ExpectedGoodputMbps(Table80211a, 35, 1400)
	if r.Mbps != 54 {
		t.Errorf("best rate at 35dB = %v", r.Mbps)
	}
	if g <= 0 || g > 54 {
		t.Errorf("goodput = %v", g)
	}
	// WithOutageProb override.
	heavy := f.WithOutageProb(0.5)
	_, gHeavy := heavy.ExpectedGoodputMbps(Table80211a, 35, 1400)
	if gHeavy >= g {
		t.Errorf("heavier outage should cut goodput: %v vs %v", gHeavy, g)
	}
}

func TestFrameKindStringAndRateTables(t *testing.T) {
	if len(TablePaperDriver) != 5 || TablePaperDriver[4].Mbps != 24 {
		t.Errorf("paper driver table wrong: %+v", TablePaperDriver)
	}
	if Table80211a[7].Mbps != 54 {
		t.Errorf("11a table top rate: %+v", Table80211a[7])
	}
}
