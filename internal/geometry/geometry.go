// Package geometry provides the small amount of planar geometry the
// carrier sense model needs: the model scenario of Figure 1 places a
// sender at the origin, its receiver uniformly at random inside the
// R_max disc, and the interfering sender on the negative x-axis at
// distance D.
package geometry

import (
	"math"

	"carriersense/internal/rng"
)

// Point is a position in the plane, in the paper's dimensionless
// "65 dB" distance units (§3.2.2) for the analytical model, or meters
// for the packet simulator.
type Point struct {
	X, Y float64
}

// Polar constructs a point from polar coordinates.
func Polar(r, theta float64) Point {
	sin, cos := math.Sincos(theta)
	return Point{X: r * cos, Y: r * sin}
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between two points —
// the form power-law path gains consume directly, skipping the Hypot
// round trip on hot paths.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Norm returns the distance from the origin.
func (p Point) Norm() float64 {
	return math.Hypot(p.X, p.Y)
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	return Point{X: p.X + q.X, Y: p.Y + q.Y}
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	return Point{X: p.X - q.X, Y: p.Y - q.Y}
}

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point {
	return Point{X: k * p.X, Y: k * p.Y}
}

// UniformInDisc draws a point uniformly distributed over the disc of
// the given radius centered at the origin. Uniformity over *area* is
// what the model's assumption of uniformly distributed receivers
// requires: the radius is drawn as radius*sqrt(u), not radius*u.
func UniformInDisc(src *rng.Source, radius float64) Point {
	r := radius * math.Sqrt(src.Float64())
	theta := src.Uniform(0, 2*math.Pi)
	return Polar(r, theta)
}

// UniformInAnnulus draws a point uniformly over the annulus with the
// given inner and outer radii, again uniform in area.
func UniformInAnnulus(src *rng.Source, inner, outer float64) Point {
	u := src.Float64()
	r := math.Sqrt(inner*inner + u*(outer*outer-inner*inner))
	theta := src.Uniform(0, 2*math.Pi)
	return Polar(r, theta)
}

// InterfererDistance returns Δr, the distance from a receiver at polar
// coordinates (r, θ) around the sender at the origin to the interferer
// at (D, π), i.e. Cartesian (-D, 0):
//
//	Δr = sqrt((r·cosθ + D)² + (r·sinθ)²)
//
// exactly as defined under C_concurrent in §3.2.2. This is the
// reference form of the paper's formula; the Monte Carlo hot path
// computes the same quantity in Cartesian squared-distance form
// ((x+D)² + y², see core's pathGainSq) and must not call this — the
// Sincos/Hypot round trip is exactly what the fused evaluator removed.
func InterfererDistance(r, theta, d float64) float64 {
	x := r*math.Cos(theta) + d
	y := r * math.Sin(theta)
	return math.Hypot(x, y)
}

// DiscArea returns the area of a disc of the given radius.
func DiscArea(radius float64) float64 {
	return math.Pi * radius * radius
}

// FractionCloserTo returns the fraction of the R_max disc around the
// origin that lies closer to the point q than to the origin. The §3.4
// worked example uses this geometric fraction ("approximately the
// fraction of the R_max disc's area closer to D = 20 than to the
// sender") to estimate how many receivers an undetected interferer
// smothers. Computed by deterministic midpoint quadrature over the
// disc; exact enough (<1e-4) for the analyses that consume it.
func FractionCloserTo(q Point, rmax float64) float64 {
	const nr, nt = 400, 400
	inside := 0.0
	total := 0.0
	for i := 0; i < nr; i++ {
		r := rmax * (float64(i) + 0.5) / nr
		w := r // area weight
		for j := 0; j < nt; j++ {
			theta := 2 * math.Pi * (float64(j) + 0.5) / nt
			p := Polar(r, theta)
			total += w
			if p.Dist(q) < p.Norm() {
				inside += w
			}
		}
	}
	return inside / total
}
