package geometry

import (
	"math"
	"testing"
	"testing/quick"

	"carriersense/internal/rng"
)

func TestPolarRoundTrip(t *testing.T) {
	f := func(rawR, rawTheta float64) bool {
		r := math.Abs(math.Mod(rawR, 100))
		theta := math.Mod(rawTheta, 2*math.Pi)
		p := Polar(r, theta)
		return math.Abs(p.Norm()-r) < 1e-9*math.Max(r, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{X: 1, Y: 2}
	b := Point{X: -3, Y: 4}
	if got := a.Add(b); got != (Point{X: -2, Y: 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Point{X: 4, Y: -2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(3); got != (Point{X: 3, Y: 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dist(b); math.Abs(got-math.Hypot(4, 2)) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
}

func TestUniformInDiscBoundsAndMeanRadius(t *testing.T) {
	src := rng.New(1)
	const radius = 10.0
	const n = 200_000
	var sumR float64
	for i := 0; i < n; i++ {
		p := UniformInDisc(src, radius)
		r := p.Norm()
		if r > radius {
			t.Fatalf("point outside disc: %v", r)
		}
		sumR += r
	}
	// Uniform over area ⇒ E[r] = 2R/3, the key property separating
	// area-uniform from radius-uniform sampling.
	want := 2 * radius / 3
	if got := sumR / n; math.Abs(got-want) > 0.02*radius {
		t.Errorf("mean radius = %v, want %v", got, want)
	}
}

func TestUniformInDiscQuadrantBalance(t *testing.T) {
	src := rng.New(2)
	counts := [4]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		p := UniformInDisc(src, 5)
		idx := 0
		if p.X < 0 {
			idx |= 1
		}
		if p.Y < 0 {
			idx |= 2
		}
		counts[idx]++
	}
	for q, c := range counts {
		if math.Abs(float64(c)/n-0.25) > 0.01 {
			t.Errorf("quadrant %d fraction %v, want 0.25", q, float64(c)/n)
		}
	}
}

func TestUniformInAnnulus(t *testing.T) {
	src := rng.New(3)
	for i := 0; i < 10_000; i++ {
		p := UniformInAnnulus(src, 3, 7)
		r := p.Norm()
		if r < 3-1e-9 || r > 7+1e-9 {
			t.Fatalf("annulus point at r=%v", r)
		}
	}
}

func TestInterfererDistanceMatchesDirectComputation(t *testing.T) {
	f := func(rawR, rawTheta, rawD float64) bool {
		r := math.Abs(math.Mod(rawR, 200))
		theta := math.Mod(rawTheta, 2*math.Pi)
		d := math.Abs(math.Mod(rawD, 200))
		direct := Polar(r, theta).Dist(Point{X: -d, Y: 0})
		return math.Abs(InterfererDistance(r, theta, d)-direct) < 1e-9*(1+direct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterfererDistanceKnownValues(t *testing.T) {
	// Receiver on the +x axis: Δr = r + D.
	if got := InterfererDistance(10, 0, 55); math.Abs(got-65) > 1e-9 {
		t.Errorf("Δr = %v, want 65", got)
	}
	// Receiver on the -x axis (toward the interferer): Δr = D - r.
	if got := InterfererDistance(10, math.Pi, 55); math.Abs(got-45) > 1e-9 {
		t.Errorf("Δr = %v, want 45", got)
	}
	// Receiver on the sender: Δr = D.
	if got := InterfererDistance(0, 1.23, 55); math.Abs(got-55) > 1e-9 {
		t.Errorf("Δr = %v, want 55", got)
	}
}

func TestDiscArea(t *testing.T) {
	if got := DiscArea(2); math.Abs(got-4*math.Pi) > 1e-12 {
		t.Errorf("DiscArea(2) = %v", got)
	}
}

func TestFractionCloserTo(t *testing.T) {
	// Interferer far outside the disc: nobody is closer to it.
	if got := FractionCloserTo(Point{X: -1000, Y: 0}, 10); got > 0.001 {
		t.Errorf("far interferer fraction = %v, want ~0", got)
	}
	// Interferer exactly at the disc edge on the -x axis: the
	// bisector x = -rmax/2 cuts off a lens of about 20% of the disc.
	got := FractionCloserTo(Point{X: -10, Y: 0}, 10)
	if got < 0.15 || got > 0.25 {
		t.Errorf("edge interferer fraction = %v, want ~0.2", got)
	}
	// The paper's §3.4 example: interferer at D = 20 with R_max = 20
	// — "approximately the fraction of the R_max disc's area closer
	// to D = 20 than to the sender", which it calls about 20%.
	got = FractionCloserTo(Point{X: -20, Y: 0}, 20)
	if got < 0.15 || got > 0.25 {
		t.Errorf("section 3.4 fraction = %v, want ~0.2", got)
	}
}

func TestFractionCloserToMonotoneInDistance(t *testing.T) {
	prev := 1.0
	for _, d := range []float64{5, 10, 20, 40} {
		got := FractionCloserTo(Point{X: -d, Y: 0}, 10)
		if got > prev+1e-9 {
			t.Errorf("fraction should shrink as interferer recedes: d=%v got %v > prev %v", d, got, prev)
		}
		prev = got
	}
}
