package rng

import (
	"math"
	"testing"
)

func TestSobolDim0IsVanDerCorput(t *testing.T) {
	// Unshifted dimension 0 is the base-2 van der Corput sequence; in
	// Gray-code order the first points enumerate the same set as the
	// natural order within each power-of-two block.
	var shift [SobolMaxDim]uint32
	s := NewSobol(&shift)
	want := []float64{0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125}
	got := []float64{s.Coord(0)}
	for i := 1; i < len(want); i++ {
		s.Next()
		got = append(got, s.Coord(0))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d dim 0 = %v, want %v (sequence %v)", i, got[i], want[i], got)
		}
	}
}

func TestSobolBlocksAreBalanced(t *testing.T) {
	// Any 2^k-point prefix of an (unshifted) Sobol net puts exactly one
	// point in each dyadic interval [j/2^k, (j+1)/2^k) of every
	// dimension — the defining (0, m, s)-net property the variance
	// reduction rests on.
	const k = 6 // 64 points, the sampling.SobolBlock size
	var shift [SobolMaxDim]uint32
	s := NewSobol(&shift)
	for d := 0; d < SobolMaxDim; d++ {
		seen := make([]int, 1<<k)
		s2 := NewSobol(&shift)
		for i := 0; i < 1<<k; i++ {
			if i > 0 {
				s2.Next()
			}
			seen[int(s2.Coord(d)*(1<<k))]++
		}
		for j, n := range seen {
			if n != 1 {
				t.Fatalf("dim %d: interval %d/%d holds %d points, want 1", d, j, 1<<k, n)
			}
		}
	}
	_ = s
}

func TestSobolDigitalShiftPreservesStructure(t *testing.T) {
	// A digital shift XORs every point with the same word, so the XOR
	// difference between any two points is shift-invariant, and point 0
	// is the shift itself.
	var zero [SobolMaxDim]uint32
	var shift [SobolMaxDim]uint32
	for d := range shift {
		shift[d] = 0xdeadbeef ^ uint32(d)*0x9e3779b9
	}
	a, b := NewSobol(&zero), NewSobol(&shift)
	if got := b.Coord(0); got != float64(shift[0])*0x1p-32 {
		t.Errorf("shifted point 0 = %v, want the shift %v", got, float64(shift[0])*0x1p-32)
	}
	for i := 0; i < 100; i++ {
		a.Next()
		b.Next()
		for d := 0; d < SobolMaxDim; d++ {
			ua := uint32(a.Coord(d) * (1 << 32))
			ub := uint32(b.Coord(d) * (1 << 32))
			if ua^ub != shift[d] {
				t.Fatalf("point %d dim %d: xor difference %#x, want shift %#x", i, d, ua^ub, shift[d])
			}
		}
	}
}

func TestRadicalInverseKnownValues(t *testing.T) {
	cases := []struct {
		base, i uint32
		want    float64
	}{
		{2, 0, 0}, {2, 1, 0.5}, {2, 2, 0.25}, {2, 3, 0.75}, {2, 4, 0.125},
		{3, 1, 1.0 / 3}, {3, 2, 2.0 / 3}, {3, 3, 1.0 / 9}, {3, 4, 4.0 / 9},
		{5, 7, 2.0/5 + 1.0/25},
	}
	for _, c := range cases {
		if got := RadicalInverse(c.base, c.i); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("RadicalInverse(%d, %d) = %v, want %v", c.base, c.i, got, c.want)
		}
	}
}

func TestHaltonCoordRotation(t *testing.T) {
	// The Cranley-Patterson rotation is a modulo-1 shift and always
	// lands in [0,1), including the wraparound rounding edge.
	if got := HaltonCoord(0, 1, 0.75); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("rotated coord = %v, want 0.25", got)
	}
	if got := HaltonCoord(0, 0, math.Nextafter(1, 0)); got < 0 || got >= 1 {
		t.Errorf("edge rotation produced %v outside [0,1)", got)
	}
	for d := 0; d < HaltonMaxDim; d++ {
		for i := uint32(0); i < 50; i++ {
			if u := HaltonCoord(d, i, 0.618); u < 0 || u >= 1 {
				t.Fatalf("dim %d point %d: coord %v outside [0,1)", d, i, u)
			}
		}
	}
}

func TestHaltonLowBasesStratify(t *testing.T) {
	// Base 2 and base 3: the first b^k points hit every 1/b^k interval
	// exactly once.
	for d, cells := range map[int]int{0: 16, 1: 27} {
		seen := make([]int, cells)
		for i := 0; i < cells; i++ {
			// Tiny epsilon: base-3 radical inverses accumulate in floats,
			// so a cell boundary can land one ulp low.
			seen[int(HaltonCoord(d, uint32(i), 0)*float64(cells)+1e-9)]++
		}
		for j, n := range seen {
			if n != 1 {
				t.Errorf("dim %d: interval %d/%d holds %d points, want 1", d, j, cells, n)
			}
		}
	}
}
