package rng

// Scrambled Sobol sequence generation: the quasi-Monte Carlo point
// source behind internal/sampling's `sobol` strategy. A Sobol point
// set covers the unit cube far more evenly than iid uniforms, so the
// mean over one block of points converges like ~1/N (times log
// factors) instead of 1/sqrt(N) for the smooth, low-effective-
// dimension integrands this repository estimates (capacity vs the
// receiver's radial draw is the dominant axis, and the draw order
// puts it in dimension 0).
//
// The generator is the classic Gray-code construction over binary
// direction numbers (Antonov-Saleev): point i+1 differs from point i
// in exactly one direction number, selected by the lowest zero bit of
// i, so advancing costs one XOR per dimension. Direction numbers are
// initialized Joe-Kuo style (primitive polynomial degree s, interior
// coefficients a, initial odd m values) for SobolMaxDim dimensions —
// enough for every kernel's per-sample draw count (the heaviest
// two-pair kernel consumes 9 uniforms per sample).
//
// Scrambling is a digital shift: every coordinate is XORed with a
// caller-supplied random 32-bit word. A uniformly drawn shift makes
// each individual point uniform on [0,1)^d — so any block mean stays
// unbiased — while preserving the net's relative structure, and
// independent shifts across blocks make block means iid, which is
// what turns the tracked standard error into a usable randomized-QMC
// error estimate.

import "math/bits"

// SobolMaxDim is the number of dimensions the direction-number table
// supports. Consumers needing more dimensions per point must fall
// back to pseudorandom draws for the excess.
const SobolMaxDim = 21

// sobolBits is the bit depth of each coordinate; values are the top
// 32 bits of the unit interval.
const sobolBits = 32

// sobolInit is one dimension's Joe-Kuo initialization: primitive
// polynomial degree s, interior coefficient bits a, and the first s
// odd direction values m (new-joe-kuo-6 ordering). Dimension 0 is the
// van der Corput sequence and needs no entry.
type sobolInit struct {
	s uint
	a uint32
	m []uint32
}

var sobolTable = [SobolMaxDim - 1]sobolInit{
	{1, 0, []uint32{1}},
	{2, 1, []uint32{1, 3}},
	{3, 1, []uint32{1, 3, 1}},
	{3, 2, []uint32{1, 1, 1}},
	{4, 1, []uint32{1, 1, 3, 3}},
	{4, 4, []uint32{1, 3, 5, 13}},
	{5, 2, []uint32{1, 1, 5, 5, 17}},
	{5, 4, []uint32{1, 1, 5, 5, 5}},
	{5, 7, []uint32{1, 1, 7, 11, 19}},
	{5, 11, []uint32{1, 1, 5, 1, 1}},
	{5, 13, []uint32{1, 1, 1, 3, 11}},
	{5, 14, []uint32{1, 3, 5, 5, 31}},
	{6, 1, []uint32{1, 3, 3, 9, 7, 49}},
	{6, 13, []uint32{1, 1, 1, 15, 21, 21}},
	{6, 16, []uint32{1, 3, 1, 13, 27, 49}},
	{6, 19, []uint32{1, 1, 1, 15, 7, 5}},
	{6, 22, []uint32{1, 3, 1, 17, 63, 13}},
	{6, 25, []uint32{1, 1, 5, 5, 19, 1}},
	{7, 1, []uint32{1, 1, 5, 5, 41, 11, 61}},
	{7, 4, []uint32{1, 3, 7, 11, 13, 29, 3}},
}

// sobolV[d][k] is direction number k of dimension d, aligned to the
// top of a 32-bit word. Built once at init from sobolTable.
var sobolV [SobolMaxDim][sobolBits]uint32

func init() {
	// Dimension 0: van der Corput in base 2 — V[k] = 2^(31-k).
	for k := 0; k < sobolBits; k++ {
		sobolV[0][k] = 1 << (31 - k)
	}
	for d := 1; d < SobolMaxDim; d++ {
		t := sobolTable[d-1]
		s := int(t.s)
		m := make([]uint32, sobolBits)
		copy(m, t.m)
		// Joe-Kuo recurrence: m_k = m_{k-s} ⊕ 2^s m_{k-s} ⊕ Σ 2^i a_i m_{k-i}.
		for k := s; k < sobolBits; k++ {
			v := m[k-s] ^ (m[k-s] << t.s)
			for i := 1; i < s; i++ {
				if (t.a>>(s-1-i))&1 == 1 {
					v ^= m[k-i] << i
				}
			}
			m[k] = v
		}
		for k := 0; k < sobolBits; k++ {
			sobolV[d][k] = m[k] << (31 - k)
		}
	}
}

// Sobol enumerates one digitally-shifted Sobol point block in Gray-code
// order. The zero value is NOT usable; construct with NewSobol.
type Sobol struct {
	x [SobolMaxDim]uint32 // current point, shift already applied
	i uint32              // index of the current point within the block
}

// NewSobol starts a Sobol block at point 0 with the given per-dimension
// digital shift (point 0 is the shift itself: the unscrambled sequence
// starts at the origin). A shift drawn uniformly at random makes every
// point of the block individually uniform on [0,1)^d.
func NewSobol(shift *[SobolMaxDim]uint32) *Sobol {
	s := &Sobol{}
	s.x = *shift
	return s
}

// Next advances to the next point of the block. Gray-code enumeration
// of indices 0..2^k-1 visits exactly the first 2^k points of the
// natural-order sequence, so any power-of-two block prefix is a
// complete Sobol point set.
func (s *Sobol) Next() {
	s.i++
	c := bits.TrailingZeros32(s.i)
	if c >= sobolBits {
		c = sobolBits - 1 // index wrapped; keep advancing deterministically
	}
	for d := 0; d < SobolMaxDim; d++ {
		s.x[d] ^= sobolV[d][c]
	}
}

// Coord returns coordinate d of the current point, in [0, 1).
func (s *Sobol) Coord(d int) float64 {
	return float64(s.x[d]) * 0x1p-32
}
