package rng

import "math"

// Halton sequence generation: the quasi-Monte Carlo fallback behind
// internal/sampling's `halton` strategy. Coordinate d of point i is
// the radical inverse of i in the d-th prime base — simpler state
// than Sobol (just the point index) and defined for any dimension
// count, at the cost of visibly poorer equidistribution in higher
// bases. Scrambling is a Cranley-Patterson rotation: each coordinate
// is shifted modulo 1 by a caller-supplied uniform offset, which
// makes every individual point uniform on [0,1)^d (so block means
// stay unbiased) and independent rotations across blocks make block
// means iid randomized-QMC replicates.

// HaltonMaxDim is the number of prime bases provided.
const HaltonMaxDim = 25

// haltonPrimes are the first HaltonMaxDim primes, one base per
// dimension.
var haltonPrimes = [HaltonMaxDim]uint32{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
	31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
	73, 79, 83, 89, 97,
}

// RadicalInverse returns the radical inverse of i in the given base:
// the digits of i reflected about the radix point. Base must be >= 2.
func RadicalInverse(base uint32, i uint32) float64 {
	inv := 1 / float64(base)
	f := inv
	x := 0.0
	for ; i > 0; i /= base {
		x += float64(i%base) * f
		f *= inv
	}
	return x
}

// HaltonCoord returns coordinate d of Halton point i, rotated by rot
// (Cranley-Patterson: the fractional part of inverse + rot). d must be
// in [0, HaltonMaxDim).
func HaltonCoord(d int, i uint32, rot float64) float64 {
	u := RadicalInverse(haltonPrimes[d], i) + rot
	u -= math.Floor(u)
	if u >= 1 { // rot == 1-ulp rounding guard
		u = 0
	}
	return u
}
