package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws across seeds", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a, b := New(7), New(7)
	sa, sb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if sa.Uint64() != sb.Uint64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	src := New(3)
	for i := 0; i < 1000; i++ {
		v := src.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) = %v out of range", v)
		}
	}
}

func TestIntNRange(t *testing.T) {
	src := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := src.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("IntN(7) hit %d distinct values, want 7", len(seen))
	}
}

// moments estimates mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sum2 += x * x
	}
	mean = sum / float64(n)
	variance = sum2/float64(n) - mean*mean
	return mean, variance
}

func TestNormalMoments(t *testing.T) {
	src := New(5)
	mean, variance := moments(200_000, func() float64 { return src.Normal(3, 2) })
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("normal mean = %v, want 3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.03 {
		t.Errorf("normal stddev = %v, want 2", math.Sqrt(variance))
	}
}

func TestLognormalDBMoments(t *testing.T) {
	src := New(6)
	const sigma = 8.0
	// Median must be 1 (half the draws below 1) and the mean must be
	// exp(k²/2) with k = ln10/10·σ — the linear-domain surplus §3.4
	// leans on.
	n := 200_000
	below := 0
	var sum float64
	for i := 0; i < n; i++ {
		v := src.LognormalDB(sigma)
		if v < 1 {
			below++
		}
		sum += v
	}
	if frac := float64(below) / float64(n); math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P[L<1] = %v, want 0.5", frac)
	}
	k := math.Ln10 / 10 * sigma
	want := math.Exp(k * k / 2)
	if got := sum / float64(n); math.Abs(got-want)/want > 0.05 {
		t.Errorf("E[L] = %v, want %v", got, want)
	}
}

func TestLognormalZeroSigma(t *testing.T) {
	src := New(7)
	for i := 0; i < 10; i++ {
		if v := src.LognormalDB(0); v != 1 {
			t.Fatalf("LognormalDB(0) = %v, want 1", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	src := New(8)
	mean, _ := moments(200_000, func() float64 { return src.Exp(3) })
	if math.Abs(mean-3)/3 > 0.02 {
		t.Errorf("exp mean = %v, want 3", mean)
	}
}

func TestRayleighMean(t *testing.T) {
	src := New(9)
	const sigma = 2.0
	mean, _ := moments(200_000, func() float64 { return src.Rayleigh(sigma) })
	want := sigma * math.Sqrt(math.Pi/2)
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("rayleigh mean = %v, want %v", mean, want)
	}
}

func TestRicianReducesToRayleigh(t *testing.T) {
	src := New(10)
	mean, _ := moments(100_000, func() float64 { return src.Rician(0, 1) })
	want := math.Sqrt(math.Pi / 2)
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("rician(0,1) mean = %v, want rayleigh %v", mean, want)
	}
}

func TestRicianPowerKUnitMean(t *testing.T) {
	src := New(11)
	for _, k := range []float64{0, 1, 5, 20} {
		mean, _ := moments(200_000, func() float64 { return src.RicianPowerK(k) })
		if math.Abs(mean-1) > 0.03 {
			t.Errorf("RicianPowerK(%v) mean = %v, want 1", k, mean)
		}
	}
}

func TestRicianPowerVarianceShrinksWithK(t *testing.T) {
	src := New(12)
	_, v0 := moments(100_000, func() float64 { return src.RicianPowerK(0) })
	_, v20 := moments(100_000, func() float64 { return src.RicianPowerK(20) })
	if v20 >= v0 {
		t.Errorf("variance should shrink with K: K=0 %v, K=20 %v", v0, v20)
	}
}

func TestWidebandFadeAveraging(t *testing.T) {
	src := New(13)
	mean, v48 := moments(100_000, func() float64 { return src.WidebandFadePower(48) })
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("wideband fade mean = %v, want 1", mean)
	}
	_, v1 := moments(100_000, func() float64 { return src.WidebandFadePower(1) })
	// Averaging 48 subchannels cuts variance by ~48x — the appendix's
	// "reduces to the equivalent of a few dB variation".
	if v48 > v1/20 {
		t.Errorf("wideband variance %v not well below narrowband %v", v48, v1)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447},
		{-1, 0.1586553},
		{2, 0.9772499},
		{-3, 0.0013499},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInverseProperty(t *testing.T) {
	f := func(raw float64) bool {
		p := 0.001 + 0.998*math.Abs(math.Mod(raw, 1))
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile edges should be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) || !math.IsNaN(NormalQuantile(1.5)) {
		t.Error("out-of-range p should be NaN")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	src := New(14)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	src.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}
