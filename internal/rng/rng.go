// Package rng provides deterministic random variate generation for the
// carrier sense model and the packet-level simulator.
//
// Every consumer of randomness in this repository takes an explicit
// *rng.Source seeded by the caller, so that experiments are exactly
// reproducible run to run and streams can be split per-node or
// per-worker without contention.
//
// The distributions here are the ones the paper's propagation model
// needs (§2 and the appendix): Gaussian (for dB-domain shadowing),
// lognormal (linear-domain shadowing), Rayleigh and Rician (multipath
// fading amplitude), and the exponential power fade that Rayleigh
// amplitude induces.
package rng

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random variate generator. It wraps a PCG
// generator from math/rand/v2 and adds the distributions used by the
// propagation and simulation packages.
//
// A Source normally draws straight from its PCG generator. A Source
// built with WithUniforms instead derives every variate from a caller
// supplied scalar uniform stream via inverse transforms (Normal through
// NormalQuantile, one uniform per variate). That is the seam the
// variance-reduction samplers in internal/sampling use: recording,
// mirroring (u → 1−u), or stratifying the uniforms transforms every
// downstream variate coherently, without the integrands knowing.
type Source struct {
	r *rand.Rand
	// uni, when non-nil, supplies every uniform; all variates then go
	// through inverse transforms so they are monotone in the uniforms.
	uni func() float64
}

// New returns a Source seeded with the given 64-bit seed. Two Sources
// with the same seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// WithUniforms returns a Source that derives every variate from the
// given uniform stream via inverse transforms. next must yield values
// in [0, 1). Two WithUniforms sources over streams u and 1−u produce
// antithetic (componentwise monotone-mirrored) variate streams, which
// is what makes the transformation useful for variance reduction.
func WithUniforms(next func() float64) *Source {
	return &Source{uni: next}
}

// Split derives a new independent Source from this one. The derived
// stream is a deterministic function of the parent's state, so a fixed
// sequence of Split calls is reproducible.
func (s *Source) Split() *Source {
	if s.uni != nil {
		return &Source{r: rand.New(rand.NewPCG(s.hookedUint64(), s.hookedUint64()))}
	}
	return &Source{r: rand.New(rand.NewPCG(s.r.Uint64(), s.r.Uint64()))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 {
	if s.uni != nil {
		return s.uni()
	}
	return s.r.Float64()
}

// hookedUint64 composes a 64-bit value from two hook uniforms (a
// float64 uniform carries 53 bits; two cover the word). Only used to
// seed derived generators — kernels draw distributions, not raw words.
func (s *Source) hookedUint64() uint64 {
	hi := uint64(s.uni() * (1 << 32))
	lo := uint64(s.uni() * (1 << 32))
	return hi<<32 | lo
}

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 {
	if s.uni != nil {
		return s.hookedUint64()
	}
	return s.r.Uint64()
}

// IntN returns a uniform integer in [0, n).
func (s *Source) IntN(n int) int {
	if s.uni != nil {
		if n <= 0 {
			panic("rng: IntN with n <= 0")
		}
		i := int(s.uni() * float64(n))
		if i >= n { // u == 1-ulp rounding guard
			i = n - 1
		}
		return i
	}
	return s.r.IntN(n)
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation. Plain sources use the ziggurat sampler; uniform-hooked
// sources use the inverse CDF (one uniform per variate, monotone in
// it), clamped away from 0 and 1 so a mirrored stream cannot produce
// an infinite variate.
func (s *Source) Normal(mean, stddev float64) float64 {
	if s.uni != nil {
		u := s.uni()
		if u < minQuantileU {
			u = minQuantileU
		} else if u > maxQuantileU {
			u = maxQuantileU
		}
		return mean + stddev*NormalQuantile(u)
	}
	return mean + stddev*s.r.NormFloat64()
}

// Quantile clamp bounds: the open unit interval minus one double ulp on
// each side, keeping inverse-transformed variates finite.
const (
	minQuantileU = 0x1p-53
	maxQuantileU = 1 - 0x1p-53
)

// ln10Over10 converts a dB exponent to a natural one: 10^(x/10) =
// e^(x·ln10/10). math.Exp is substantially cheaper than math.Pow on
// the Monte Carlo hot path, which draws five of these per sample.
const ln10Over10 = math.Ln10 / 10

// LognormalDB returns a linear power factor whose dB value is Gaussian
// with zero mean and standard deviation sigmaDB. This is the paper's
// lognormal shadowing variable L_sigma (§2): median 1, so distance
// alone sets the median received power.
func (s *Source) LognormalDB(sigmaDB float64) float64 {
	if sigmaDB == 0 {
		return 1
	}
	return math.Exp(ln10Over10 * s.Normal(0, sigmaDB))
}

// Exp returns an exponential variate with the given mean. The power of
// a Rayleigh-faded signal is exponentially distributed, so this is the
// narrowband "fast fading" power factor with mean 1 when mean == 1.
// Already an inverse transform, so it is monotone under a uniform hook.
func (s *Source) Exp(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}

// Rayleigh returns a Rayleigh-distributed amplitude with scale sigma.
// The appendix derives this as the amplitude of a zero-mean bivariate
// Gaussian signal vector (no line of sight).
func (s *Source) Rayleigh(sigma float64) float64 {
	return sigma * math.Sqrt(-2*math.Log(1-s.Float64()))
}

// Rician returns a Rician-distributed amplitude with line-of-sight
// (specular) amplitude v and diffuse scale sigma. The appendix derives
// this as the amplitude of a bivariate Gaussian offset from the origin
// (line of sight present). v = 0 reduces to Rayleigh.
func (s *Source) Rician(v, sigma float64) float64 {
	x := s.Normal(v, sigma)
	y := s.Normal(0, sigma)
	return math.Hypot(x, y)
}

// RicianPowerK returns a unit-mean linear power factor for Rician
// fading with K-factor k (ratio of specular to diffuse power). k = 0
// is Rayleigh (unit-mean exponential); large k approaches no fading.
func (s *Source) RicianPowerK(k float64) float64 {
	if k <= 0 {
		return s.Exp(1)
	}
	// Total mean power v^2 + 2sigma^2 = 1 with K = v^2 / (2 sigma^2).
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	v := math.Sqrt(k / (k + 1))
	a := s.Rician(v, sigma)
	return a * a
}

// WidebandFadePower returns a unit-mean power factor representing a
// wideband channel that averages nsub independent Rayleigh subchannels.
// The paper (§2, appendix) argues wideband modulations largely average
// fading away, leaving "the equivalent of a few dB variation"; this
// models that residual. nsub <= 1 degenerates to narrowband Rayleigh.
func (s *Source) WidebandFadePower(nsub int) float64 {
	if nsub <= 1 {
		return s.Exp(1)
	}
	sum := 0.0
	for i := 0; i < nsub; i++ {
		sum += s.Exp(1)
	}
	return sum / float64(nsub)
}

// Shuffle randomly permutes the first n elements using swap.
// Uniform-hooked sources run their own Fisher-Yates over hooked IntN
// draws (one uniform per swap), keeping the permutation a pure
// function of the uniform stream.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	if s.uni != nil {
		for i := n - 1; i > 0; i-- {
			j := s.IntN(i + 1)
			swap(i, j)
		}
		return
	}
	s.r.Shuffle(n, swap)
}

// NormalCDF returns the standard normal cumulative distribution
// function Φ(x). It backs the closed-form shadowing probabilities in
// §3.4 (e.g. the chance an interferer "appears beyond" the threshold).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), using the
// Beasley-Springer-Moro rational approximation refined by one
// Newton step against NormalCDF. Accuracy is better than 1e-9 across
// (1e-12, 1-1e-12), ample for threshold and starvation calculations.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	x := bsm(p)
	// One Newton refinement: x -= (Φ(x)-p)/φ(x).
	pdf := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
	if pdf > 0 {
		x -= (NormalCDF(x) - p) / pdf
	}
	return x
}

// bsm is the Beasley-Springer-Moro approximation to the standard
// normal quantile.
func bsm(p float64) float64 {
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		x = -x
	}
	return x
}
