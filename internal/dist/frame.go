package dist

// The binary shard stream's wire format: length-prefixed frames over
// one persistent connection obtained by upgrading a plain HTTP request
// on PathStream. Every frame is
//
//	uint32 LE payload length | uint8 frame type | payload
//
// and the conversation is strictly ordered per connection:
//
//	coordinator → hello            magic + ProtoVersion
//	worker      → hello            echo (mismatch ⇒ coordinator falls
//	                               back to the JSON path)
//	coordinator → request          id + montecarlo.Request JSON, once
//	                               per estimation — the identity is
//	                               never repeated per batch
//	coordinator → batch…           id + compact [start,count) index
//	                               ranges; pipelined, so the worker
//	                               always has the next batch buffered
//	                               while evaluating the current one
//	worker      → result…          id + per-shard raw accumulator
//	                               states (AccumulatorStateSize bytes a
//	                               piece, IEEE-754 bit patterns — the
//	                               same merge currency the JSON wire
//	                               ships, minus the envelope)
//	worker      → error            fatal flag + message (job-level
//	                               rejections; the coordinator abandons
//	                               the worker exactly as it does on a
//	                               4xx JSON response)
//	worker      → goodbye          drain notice: the worker finished
//	                               its current batch and is shutting
//	                               down; unanswered batches must be
//	                               re-dispatched elsewhere
//
// Results arrive in batch order per connection, so the coordinator
// matches them FIFO; no sequence numbers are needed beyond the request
// id. Corruption cannot pass silently: the magic guards the handshake,
// the length prefix bounds every read, and any malformed payload is a
// decode error that names the worker.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"carriersense/internal/montecarlo"
)

// PathStream is the endpoint a coordinator upgrades to the binary
// shard stream. Workers that predate the stream protocol 404 it, which
// the coordinator treats as "speak JSON to this worker".
const PathStream = "/v1/stream"

// streamUpgrade is the HTTP Upgrade token that switches a connection
// to the frame protocol.
const streamUpgrade = "carriersense-frames"

// frameMagic opens every hello payload ("CSBF": carrier sense binary
// frames). A connection whose first frame does not carry it is not a
// shard stream — some other client on the port — and is dropped.
const frameMagic uint32 = 0x43534246

// maxFramePayload bounds a single frame. The largest legitimate frame
// is a result batch (shards × dim × AccumulatorStateSize bytes —
// kilobytes); anything beyond this is a corrupt length prefix, and
// failing here keeps a flipped bit from turning into a gigabyte
// allocation.
const maxFramePayload = 16 << 20

type frameType uint8

const (
	frameHello frameType = iota + 1
	frameRequest
	frameBatch
	frameResult
	frameError
	frameGoodbye
)

func (t frameType) String() string {
	switch t {
	case frameHello:
		return "hello"
	case frameRequest:
		return "request"
	case frameBatch:
		return "batch"
	case frameResult:
		return "result"
	case frameError:
		return "error"
	case frameGoodbye:
		return "goodbye"
	}
	return fmt.Sprintf("frame#%d", uint8(t))
}

// writeFrame appends one frame to w. The caller flushes; batch writes
// coalesce a request frame and its first batches into one segment.
func writeFrame(w *bufio.Writer, t frameType, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	if err == nil {
		mBytesBinaryTx.Add(int64(5 + len(payload)))
	}
	return err
}

// readFrame reads one frame, reusing *scratch across calls for the
// payload.
func readFrame(r *bufio.Reader, scratch *[]byte) (frameType, []byte, error) {
	var hdr [5]byte
	if _, err := readFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	t := frameType(hdr[4])
	if t < frameHello || t > frameGoodbye {
		return 0, nil, fmt.Errorf("unknown frame type %d (corrupt stream?)", hdr[4])
	}
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%s frame claims %d-byte payload (corrupt length prefix?)", t, n)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if _, err := readFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%s frame truncated: %w", t, err)
	}
	mBytesBinaryRx.Add(int64(5 + n))
	return t, buf, nil
}

// readFull is io.ReadFull without the io import dance on every call
// site; a short read is an error.
func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// --- hello -----------------------------------------------------------

func encodeHello() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], frameMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(ProtoVersion))
	return b[:]
}

func decodeHello(payload []byte) (proto int, err error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("hello frame is %d bytes, want 8", len(payload))
	}
	if m := binary.LittleEndian.Uint32(payload[:4]); m != frameMagic {
		return 0, fmt.Errorf("hello magic %#x, want %#x (not a shard stream)", m, frameMagic)
	}
	return int(binary.LittleEndian.Uint32(payload[4:])), nil
}

// --- request ---------------------------------------------------------

// The request frame carries the estimation identity once per stream
// and estimation: the kernel name, params JSON, seed, budget, sampler.
// Batches then reference it by id, so identity bytes are paid once, not
// per batch. JSON is fine here — params are JSON already, and the
// frame is amortized over the whole estimation.

func encodeRequest(id uint32, req montecarlo.Request) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	b := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(b, id)
	return append(b, body...), nil
}

func decodeRequest(payload []byte) (id uint32, req montecarlo.Request, err error) {
	if len(payload) < 4 {
		return 0, req, fmt.Errorf("request frame is %d bytes, want >= 4", len(payload))
	}
	id = binary.LittleEndian.Uint32(payload)
	if err := json.Unmarshal(payload[4:], &req); err != nil {
		return 0, req, fmt.Errorf("request frame body: %w", err)
	}
	return id, req, nil
}

// --- batch -----------------------------------------------------------

// A batch frame is the request id plus compact [start, start+count)
// index ranges. The coordinator claims mostly-contiguous runs from the
// pending queue, so a typical batch is one range — 8 bytes for 8
// shards, versus ~8 JSON-encoded integers plus the full request
// identity on the old wire.

func encodeBatch(id uint32, indices []int) []byte {
	b := make([]byte, 8, 8+8*4)
	binary.LittleEndian.PutUint32(b, id)
	ranges := 0
	for i := 0; i < len(indices); {
		j := i + 1
		for j < len(indices) && indices[j] == indices[j-1]+1 {
			j++
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(indices[i]))
		b = binary.LittleEndian.AppendUint32(b, uint32(j-i))
		ranges++
		i = j
	}
	binary.LittleEndian.PutUint32(b[4:8], uint32(ranges))
	return b
}

func decodeBatch(payload []byte) (id uint32, indices []int, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("batch frame is %d bytes, want >= 8", len(payload))
	}
	id = binary.LittleEndian.Uint32(payload)
	ranges := binary.LittleEndian.Uint32(payload[4:])
	if int(ranges)*8 != len(payload)-8 {
		return 0, nil, fmt.Errorf("batch frame claims %d ranges in %d payload bytes", ranges, len(payload))
	}
	off := 8
	for k := uint32(0); k < ranges; k++ {
		start := binary.LittleEndian.Uint32(payload[off:])
		count := binary.LittleEndian.Uint32(payload[off+4:])
		off += 8
		if count == 0 || uint64(start)+uint64(count) > math.MaxInt32 {
			return 0, nil, fmt.Errorf("batch frame range [%d,+%d) invalid", start, count)
		}
		for idx := start; idx < start+count; idx++ {
			indices = append(indices, int(idx))
		}
	}
	return id, indices, nil
}

// --- result ----------------------------------------------------------

// A result frame answers one batch: per shard, the index and dim raw
// accumulator states. The states are the exact bit patterns the worker
// computed; the coordinator's merge is therefore bit-identical to a
// local run by construction, as on the JSON wire.

func encodeResult(id uint32, dim int, indices []int, accs [][]montecarlo.Accumulator) []byte {
	b := make([]byte, 0, 12+len(indices)*(4+dim*montecarlo.AccumulatorStateSize))
	b = binary.LittleEndian.AppendUint32(b, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(indices)))
	b = binary.LittleEndian.AppendUint32(b, uint32(dim))
	for i, idx := range indices {
		b = binary.LittleEndian.AppendUint32(b, uint32(idx))
		for _, acc := range accs[i] {
			b = acc.State().AppendBinary(b)
		}
	}
	return b
}

// decodeResult decodes a result frame into per-shard accumulators,
// verifying the shard indices match the batch that was sent (results
// are FIFO per connection).
func decodeResult(payload []byte, wantIndices []int, wantDim int) (id uint32, accs [][]montecarlo.Accumulator, err error) {
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("result frame is %d bytes, want >= 12", len(payload))
	}
	id = binary.LittleEndian.Uint32(payload)
	shards := binary.LittleEndian.Uint32(payload[4:])
	dim := binary.LittleEndian.Uint32(payload[8:])
	if int(shards) != len(wantIndices) {
		return 0, nil, fmt.Errorf("result frame carries %d shards, batch asked %d", shards, len(wantIndices))
	}
	if int(dim) != wantDim {
		return 0, nil, fmt.Errorf("result frame carries %d components, request wants %d", dim, wantDim)
	}
	per := 4 + wantDim*montecarlo.AccumulatorStateSize
	if len(payload)-12 != int(shards)*per {
		return 0, nil, fmt.Errorf("result frame is %d bytes, want %d for %d shards × %d components",
			len(payload), 12+int(shards)*per, shards, dim)
	}
	off := 12
	accs = make([][]montecarlo.Accumulator, shards)
	for i := range accs {
		idx := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		if int(idx) != wantIndices[i] {
			return 0, nil, fmt.Errorf("result frame shard %d at position %d, batch asked %d", idx, i, wantIndices[i])
		}
		row := make([]montecarlo.Accumulator, wantDim)
		for j := range row {
			st, err := montecarlo.DecodeAccumulatorState(payload[off:])
			if err != nil {
				return 0, nil, err
			}
			row[j] = montecarlo.FromState(st)
			off += montecarlo.AccumulatorStateSize
		}
		accs[i] = row
	}
	return id, accs, nil
}

// --- error / goodbye -------------------------------------------------

func encodeError(fatal bool, msg string) []byte {
	b := make([]byte, 1, 1+len(msg))
	if fatal {
		b[0] = 1
	}
	return append(b, msg...)
}

func decodeError(payload []byte) (fatal bool, msg string, err error) {
	if len(payload) < 1 {
		return false, "", fmt.Errorf("error frame is empty")
	}
	return payload[0] != 0, string(payload[1:]), nil
}
