package dist_test

// The distributed executor's contract tests: bit-identical results at
// any fleet size, failover when workers die mid-run, and fail-fast on
// protocol-level rejections. Workers are in-process httptest servers
// running the same dist.Server a `cs serve` process would.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
	"carriersense/internal/rng"
)

// distTestParams parameterize the test kernel.
type distTestParams struct {
	Scale float64 `json:"scale"`
}

func distTestEval(scale float64) montecarlo.EvalFunc {
	return func(src *rng.Source, out []float64) {
		out[0] = scale * src.Float64()
		out[1] = src.Exp(1)
		out[2] = src.Normal(0, 1) * src.Normal(0, 1)
	}
}

func init() {
	montecarlo.RegisterKernel("dist-test/vec", func(raw json.RawMessage) (montecarlo.EvalFunc, error) {
		var p distTestParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		return distTestEval(p.Scale), nil
	})
}

func testRequest(t *testing.T, samples int) montecarlo.Request {
	t.Helper()
	raw, err := json.Marshal(distTestParams{Scale: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	return montecarlo.Request{
		Kernel: "dist-test/vec", Params: raw, Seed: 12345, Samples: samples, Dim: 3,
	}
}

// startWorkers boots n in-process workers and returns their host:port
// addresses (what the -workers flag would carry).
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	hosts := make([]string, n)
	for i := range hosts {
		srv := httptest.NewServer(dist.NewServer())
		t.Cleanup(srv.Close)
		hosts[i] = strings.TrimPrefix(srv.URL, "http://")
	}
	return hosts
}

func estimates(accs []montecarlo.Accumulator) []montecarlo.Estimate {
	out := make([]montecarlo.Estimate, len(accs))
	for i := range accs {
		out[i] = accs[i].Estimate()
	}
	return out
}

func TestRemoteBitIdenticalToLocalAtAnyFleetSize(t *testing.T) {
	req := testRequest(t, 7*montecarlo.ShardSize+501)
	local, err := dist.Local{}.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := estimates(local)
	for _, fleet := range []int{1, 2, 5} {
		remote, err := dist.NewRemote(startWorkers(t, fleet), dist.RemoteOptions{BatchSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		accs, err := remote.EstimateVec(context.Background(), req)
		if err != nil {
			t.Fatalf("fleet=%d: %v", fleet, err)
		}
		got := estimates(accs)
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("fleet=%d component %d: remote %+v != local %+v", fleet, j, got[j], want[j])
			}
		}
	}
}

// flakyWorker serves shard jobs normally until its request budget
// runs out, after which every connection is severed mid-request — the
// closest an httptest server gets to kill -9 on a worker process.
type flakyWorker struct {
	inner    http.Handler
	survives int64 // shard requests served before dying
	served   atomic.Int64
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == dist.PathShards && f.served.Add(1) > f.survives {
		panic(http.ErrAbortHandler)
	}
	f.inner.ServeHTTP(w, r)
}

func TestFailoverWorkerKilledMidRun(t *testing.T) {
	req := testRequest(t, 9*montecarlo.ShardSize)
	local, err := montecarlo.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := estimates(local)

	// One healthy worker, one that dies after two shard batches.
	flaky := &flakyWorker{inner: dist.NewServer(), survives: 2}
	flakySrv := httptest.NewServer(flaky)
	defer flakySrv.Close()
	hosts := append(startWorkers(t, 1), strings.TrimPrefix(flakySrv.URL, "http://"))
	// flakyWorker counts and aborts JSON shard POSTs; pin the wire so
	// the death path is what this test exercises (stream_test.go covers
	// mid-run death on the binary wire).
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{
		BatchSize: 1, Concurrency: 1, HostFailLimit: 2, Wire: dist.WireJSON,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run with mid-flight worker death failed: %v", err)
	}
	if flaky.served.Load() <= 2 {
		t.Fatalf("flaky worker served %d requests; test never exercised the death path", flaky.served.Load())
	}
	got := estimates(accs)
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("component %d after failover: %+v != local %+v", j, got[j], want[j])
		}
	}
}

func TestWorkerDeadFromTheStart(t *testing.T) {
	req := testRequest(t, 3*montecarlo.ShardSize)
	local, _ := montecarlo.RunRequest(context.Background(), req)
	want := estimates(local)

	// A worker whose port is already closed plus a healthy one.
	deadSrv := httptest.NewServer(dist.NewServer())
	deadHost := strings.TrimPrefix(deadSrv.URL, "http://")
	deadSrv.Close()
	hosts := append([]string{deadHost}, startWorkers(t, 1)...)
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{BatchSize: 1, HostFailLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run with a dead worker in the fleet failed: %v", err)
	}
	got := estimates(accs)
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("component %d: %+v != local %+v", j, got[j], want[j])
		}
	}
}

func TestDeadWorkerStaysAbandonedAcrossEstimations(t *testing.T) {
	// With readmission off, worker health persists for the Remote's
	// lifetime: a scenario with many estimation points must pay the
	// death-detection cost once, not re-probe the corpse at every
	// point. (Default readmission probes /healthz in the background —
	// readmit_test.go covers that path.)
	flaky := &flakyWorker{inner: dist.NewServer(), survives: 0}
	flakySrv := httptest.NewServer(flaky)
	defer flakySrv.Close()
	hosts := append(startWorkers(t, 1), strings.TrimPrefix(flakySrv.URL, "http://"))
	// HostFailLimit 1 so the very first abort kills the host; with a
	// higher limit the healthy worker can drain the queue while the
	// flaky loop sits in its jittered retry backoff, ending the run
	// before the limit is ever reached.
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{
		BatchSize: 1, Concurrency: 1, HostFailLimit: 1, Wire: dist.WireJSON,
		ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 4*montecarlo.ShardSize)
	if _, err := remote.EstimateVec(context.Background(), req); err != nil {
		t.Fatalf("first estimation: %v", err)
	}
	probes := flaky.served.Load()
	if probes == 0 {
		t.Fatal("flaky worker was never probed; test setup broken")
	}
	if _, err := remote.EstimateVec(context.Background(), req); err != nil {
		t.Fatalf("second estimation: %v", err)
	}
	if again := flaky.served.Load(); again != probes {
		t.Errorf("dead worker re-probed: %d requests after first run, %d after second", probes, again)
	}
}

func TestAllWorkersDeadFailsTheRun(t *testing.T) {
	srv := httptest.NewServer(dist.NewServer())
	host := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()
	remote, err := dist.NewRemote([]string{host}, dist.RemoteOptions{HostFailLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.EstimateVec(context.Background(), testRequest(t, montecarlo.ShardSize)); err == nil {
		t.Fatal("run with an all-dead fleet succeeded")
	}
}

func TestConcurrentEstimationsOnDyingFleetAllFail(t *testing.T) {
	// Two estimations share one Remote whose only worker is dead. One
	// estimation's loops declare the host dead; the other's loops must
	// still reach a verdict (error), not hang waiting for workers that
	// already exited.
	srv := httptest.NewServer(dist.NewServer())
	host := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()
	remote, err := dist.NewRemote([]string{host}, dist.RemoteOptions{HostFailLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := remote.EstimateVec(context.Background(), testRequest(t, 4*montecarlo.ShardSize))
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("estimation on a dead fleet succeeded")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent estimation hung")
		}
	}
}

func TestUnknownKernelFailsTheRun(t *testing.T) {
	remote, err := dist.NewRemote(startWorkers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	req := montecarlo.Request{Kernel: "dist-test/no-such-kernel", Seed: 1, Samples: montecarlo.ShardSize, Dim: 1}
	if _, err := remote.EstimateVec(context.Background(), req); err == nil {
		t.Fatal("unknown kernel accepted")
	} else if !strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("error does not carry the rejection cause: %v", err)
	}
}

func TestRejectingWorkerIsSurvivable(t *testing.T) {
	// A fleet member that rejects jobs at the protocol level — version
	// skew, or some unrelated HTTP service at the address — must be
	// abandoned like a dead worker, not fail the run.
	notCS := httptest.NewServer(http.NotFoundHandler())
	defer notCS.Close()
	hosts := append(startWorkers(t, 1), strings.TrimPrefix(notCS.URL, "http://"))
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 4*montecarlo.ShardSize)
	local, _ := montecarlo.RunRequest(context.Background(), req)
	want := estimates(local)
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run with a rejecting worker failed: %v", err)
	}
	got := estimates(accs)
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("component %d: %+v != local %+v", j, got[j], want[j])
		}
	}
}

func TestContextCancellationStopsTheRun(t *testing.T) {
	remote, err := dist.NewRemote(startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := remote.EstimateVec(ctx, testRequest(t, 50*montecarlo.ShardSize)); err == nil {
		t.Fatal("canceled run succeeded")
	}
}

func TestParseWorkerList(t *testing.T) {
	good, err := ParseList("localhost:8031, 10.0.0.7:9000,worker3:1")
	if err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	if len(good) != 3 || good[0] != "localhost:8031" || good[1] != "10.0.0.7:9000" {
		t.Errorf("parsed = %v", good)
	}
	for _, bad := range []string{
		"", "  ", "localhost", "localhost:", ":8031", "localhost:0",
		"localhost:70000", "localhost:abc", "a:1,,b:2", "a:1,b",
	} {
		if _, err := ParseList(bad); err == nil {
			t.Errorf("ParseWorkerList(%q) accepted", bad)
		}
	}
}

// ParseList aliases dist.ParseWorkerList so the table above reads
// cleanly.
var ParseList = dist.ParseWorkerList

func TestHealthzAndStatsEndpoints(t *testing.T) {
	srv := httptest.NewServer(dist.NewServer())
	defer srv.Close()

	resp, err := http.Get(srv.URL + dist.PathHealthz)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	// Run one job so stats have something to report.
	host := strings.TrimPrefix(srv.URL, "http://")
	remote, err := dist.NewRemote([]string{host})
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, 2*montecarlo.ShardSize)
	if _, err := remote.EstimateVec(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(srv.URL + dist.PathStats)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	var stats dist.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Shards != 2 || stats.Samples != 2*montecarlo.ShardSize {
		t.Errorf("stats = %+v, want 2 shards / %d samples", stats, 2*montecarlo.ShardSize)
	}
	if len(stats.Kernels) == 0 {
		t.Error("stats reports no kernels")
	}

	// Malformed and invalid jobs are 400s, not 500s.
	for _, body := range []string{
		"{not json",
		`{"kernel":"dist-test/vec","seed":1,"samples":4096,"dim":3,"indices":[9]}`,
		`{"kernel":"dist-test/vec","seed":1,"samples":4096,"dim":3,"indices":[]}`,
		`{"kernel":"dist-test/vec","seed":1,"samples":16384,"dim":3,"indices":[2,2]}`,
	} {
		resp, err := http.Post(srv.URL+dist.PathShards, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestNewRemoteValidation(t *testing.T) {
	if _, err := dist.NewRemote(nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := dist.NewRemote([]string{""}); err == nil {
		t.Error("empty worker address accepted")
	}
}
