package dist

// The binary shard stream: client (coordinator) and server (worker)
// halves of the persistent framed connection described in frame.go.
//
// A stream starts life as an ordinary HTTP request — GET /v1/stream
// with Connection: Upgrade — so both wire formats share one listener
// and one port. A worker that predates the stream protocol answers
// with whatever it answers unknown paths (a 404), which the
// coordinator reads as "this worker speaks JSON only" and negotiates
// down for the connection instead of failing the fleet. A worker that
// accepts the upgrade exchanges hello frames carrying ProtoVersion;
// any mismatch also degrades to JSON, whose own version checks then
// decide loudly whether the fleet is serviceable.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"carriersense/internal/fault"
	"carriersense/internal/montecarlo"
)

// errNoBinary marks a worker that cannot (or will not) speak the
// binary stream: the upgrade was refused or the hello mismatched. The
// coordinator falls back to the JSON wire for that worker; under
// WireBinary the fallback is disabled and the worker is abandoned.
var errNoBinary = errors.New("dist: worker does not speak the binary shard stream")

// streamConn is the coordinator's end of one established stream.
type streamConn struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	scratch []byte // readFrame payload buffer, reused across frames
	nextReq uint32 // request-frame id counter for this connection
}

// dialStream opens, upgrades, and handshakes one binary stream to a
// worker's base URL. A refusal to upgrade (any non-101 answer) or a
// hello mismatch returns errNoBinary; transport failures return the
// underlying error.
func dialStream(ctx context.Context, baseURL string, dialTimeout time.Duration) (*streamConn, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("dist: bad worker url %q: %w", baseURL, err)
	}
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", u.Host)
	if err != nil {
		return nil, err
	}
	sc := &streamConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := sc.upgrade(u.Host); err != nil {
		conn.Close()
		return nil, err
	}
	if err := sc.hello(); err != nil {
		conn.Close()
		return nil, err
	}
	return sc, nil
}

// upgrade performs the HTTP half of the handshake.
func (sc *streamConn) upgrade(host string) error {
	sc.conn.SetDeadline(time.Now().Add(10 * time.Second))
	defer sc.conn.SetDeadline(time.Time{})
	fmt.Fprintf(sc.bw, "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		PathStream, host, streamUpgrade)
	if err := sc.bw.Flush(); err != nil {
		return err
	}
	resp, err := http.ReadResponse(sc.br, &http.Request{Method: http.MethodGet})
	if err != nil {
		return fmt.Errorf("dist: stream upgrade: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		// Drain and discard the refusal body so the diagnostic is not a
		// half-read connection; any refusal means "use JSON here".
		resp.Body.Close()
		return fmt.Errorf("%w (%s answered %s)", errNoBinary, PathStream, resp.Status)
	}
	return nil
}

// hello exchanges protocol versions. A worker speaking a different
// frame protocol degrades to JSON rather than failing the fleet.
func (sc *streamConn) hello() error {
	if err := writeFrame(sc.bw, frameHello, encodeHello()); err != nil {
		return err
	}
	if err := sc.bw.Flush(); err != nil {
		return err
	}
	sc.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer sc.conn.SetReadDeadline(time.Time{})
	t, payload, err := readFrame(sc.br, &sc.scratch)
	if err != nil {
		return err
	}
	if t != frameHello {
		return fmt.Errorf("%w (answered %s, not hello)", errNoBinary, t)
	}
	proto, err := decodeHello(payload)
	if err != nil {
		return fmt.Errorf("%w (%v)", errNoBinary, err)
	}
	if proto != ProtoVersion {
		return fmt.Errorf("%w (stream protocol %d, this coordinator %d)", errNoBinary, proto, ProtoVersion)
	}
	return nil
}

// sendRequest ships the estimation identity once and returns the id
// batches reference. Not flushed: the first batch frame rides the same
// segment.
func (sc *streamConn) sendRequest(req montecarlo.Request) (uint32, error) {
	sc.nextReq++
	id := sc.nextReq
	payload, err := encodeRequest(id, req)
	if err != nil {
		return 0, err
	}
	return id, writeFrame(sc.bw, frameRequest, payload)
}

// sendBatch ships one shard batch and flushes.
func (sc *streamConn) sendBatch(id uint32, indices []int) error {
	if err := writeFrame(sc.bw, frameBatch, encodeBatch(id, indices)); err != nil {
		return err
	}
	return sc.bw.Flush()
}

// close tears the stream down.
func (sc *streamConn) close() { sc.conn.Close() }

// --- worker side -----------------------------------------------------

// streamSession is one accepted stream on the worker.
type streamSession struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// handleStream upgrades an HTTP request into a binary shard stream and
// serves frames until the peer hangs up or the server drains.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") != streamUpgrade {
		http.Error(w, fmt.Sprintf("dist: unsupported upgrade %q (want %s)", r.Header.Get("Upgrade"), streamUpgrade),
			http.StatusUpgradeRequired)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "dist: transport cannot be upgraded to a shard stream", http.StatusInternalServerError)
		return
	}
	if s.draining.Load() {
		http.Error(w, "dist: worker is draining", http.StatusServiceUnavailable)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		http.Error(w, fmt.Sprintf("dist: hijack: %v", err), http.StatusInternalServerError)
		return
	}
	ss := &streamSession{conn: conn, br: buf.Reader, bw: bufio.NewWriter(conn)}
	fmt.Fprintf(ss.bw, "HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n", streamUpgrade)
	if err := ss.bw.Flush(); err != nil {
		conn.Close()
		return
	}
	s.serveStream(ss)
}

// maxStreamRequests bounds the per-stream request-id table. Ids are
// issued in increasing order and a coordinator only batches against
// its latest id, so pruning the oldest entries never evicts a live
// estimation.
const maxStreamRequests = 64

// serveStream is the worker's frame loop: hello, then request/batch
// frames answered with result frames, strictly in order. Evaluation
// itself runs on the montecarlo pool, so one stream keeps the machine
// busy; the coordinator's pipelining keeps the *next* batch sitting in
// the socket buffer so the worker never waits out an RTT between
// batches.
func (s *Server) serveStream(ss *streamSession) {
	s.streams.Add(1)
	wStreams.Inc()
	s.registerStream(ss.conn)
	defer func() {
		s.unregisterStream(ss.conn)
		ss.conn.Close()
	}()

	fail := func(msg string) {
		s.countFailure()
		_ = writeFrame(ss.bw, frameError, encodeError(true, msg))
		_ = ss.bw.Flush()
	}

	var scratch []byte
	ss.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	t, payload, err := readFrame(ss.br, &scratch)
	if err != nil || t != frameHello {
		fail("dist: stream opened without hello")
		return
	}
	proto, err := decodeHello(payload)
	if err != nil {
		fail(err.Error())
		return
	}
	if err := writeFrame(ss.bw, frameHello, encodeHello()); err != nil {
		return
	}
	if err := ss.bw.Flush(); err != nil {
		return
	}
	if proto != ProtoVersion {
		// The echo above already told the coordinator our version; it
		// will fall back to JSON. Close rather than mis-serve.
		return
	}
	ss.conn.SetReadDeadline(time.Time{})

	type streamReq struct {
		req montecarlo.Request
		id  uint32
	}
	var reqs []streamReq // small, ordered by id; pruned at maxStreamRequests
	lookup := func(id uint32) (montecarlo.Request, bool) {
		for i := len(reqs) - 1; i >= 0; i-- {
			if reqs[i].id == id {
				return reqs[i].req, true
			}
		}
		return montecarlo.Request{}, false
	}

	for {
		t, payload, err := readFrame(ss.br, &scratch)
		if err != nil {
			// Peer hung up, or the drain wake fired while idle: say
			// goodbye if draining so the coordinator knows this was a
			// shutdown, not a crash.
			if s.draining.Load() {
				_ = writeFrame(ss.bw, frameGoodbye, []byte("worker draining"))
				_ = ss.bw.Flush()
			}
			return
		}
		switch t {
		case frameRequest:
			id, req, err := decodeRequest(payload)
			if err != nil {
				fail(err.Error())
				return
			}
			if err := req.Validate(); err != nil {
				fail(err.Error())
				return
			}
			reqs = append(reqs, streamReq{req: req, id: id})
			if len(reqs) > maxStreamRequests {
				reqs = reqs[len(reqs)-maxStreamRequests:]
			}
		case frameBatch:
			id, indices, err := decodeBatch(payload)
			if err != nil {
				fail(err.Error())
				return
			}
			req, ok := lookup(id)
			if !ok {
				fail(fmt.Sprintf("dist: batch references unknown request id %d", id))
				return
			}
			ordinal := s.beginBatch()
			s.streamBatches.Add(1)
			if err := validateIndices(indices, req.FirstShard, montecarlo.ShardCount(req.Samples)); err != nil {
				s.endBatch()
				fail(err.Error())
				return
			}
			evalStart := time.Now()
			tr, traceStart := beginBatchSpan()
			accs, err := montecarlo.EvaluateShards(req, indices)
			if err != nil {
				// The caller's mistake (unknown kernel, bad params):
				// fatal, exactly like the JSON path's 400.
				s.endBatch()
				fail(err.Error())
				return
			}
			endBatchSpan(tr, traceStart, req.Kernel, "binary", len(indices))
			wBatchEvalSeconds.Observe(time.Since(evalStart).Seconds())
			sampleCount := 0
			for i := range accs {
				if len(accs[i]) > 0 {
					sampleCount += accs[i][0].N()
				}
			}
			s.shards.Add(int64(len(indices)))
			s.samples.Add(int64(sampleCount))
			wShards.Add(int64(len(indices)))
			wSamples.Add(int64(sampleCount))
			s.endBatch()
			result := encodeResult(id, req.Dim, indices, accs)
			if f := fault.Current(); f != nil {
				mangled, truncate := f.MangleResultFrame(ordinal, result)
				if truncate {
					// Declare the full frame, deliver half, and sever: the
					// coordinator's readFrame sees an unexpected EOF — a
					// transport failure, requeued like a real torn wire.
					var hdr [5]byte
					hdr[0] = byte(len(result))
					hdr[1] = byte(len(result) >> 8)
					hdr[2] = byte(len(result) >> 16)
					hdr[3] = byte(len(result) >> 24)
					hdr[4] = byte(frameResult)
					_, _ = ss.bw.Write(hdr[:])
					_, _ = ss.bw.Write(result[:len(result)/2])
					_ = ss.bw.Flush()
					return
				}
				result = mangled
			}
			if err := writeFrame(ss.bw, frameResult, result); err != nil {
				return
			}
			if err := ss.bw.Flush(); err != nil {
				return
			}
			if s.draining.Load() {
				// Finish the batch in hand, then bow out: the
				// coordinator re-dispatches anything still unanswered,
				// and nothing evaluated here is wasted.
				_ = writeFrame(ss.bw, frameGoodbye, []byte("worker draining"))
				_ = ss.bw.Flush()
				return
			}
		case frameGoodbye:
			return
		default:
			fail(fmt.Sprintf("dist: unexpected %s frame", t))
			return
		}
	}
}

// streamRegistry tracks live stream connections so a drain can wake
// streams blocked in a read.
type streamRegistry struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

func (s *Server) registerStream(c net.Conn) {
	s.streamReg.mu.Lock()
	if s.streamReg.conns == nil {
		s.streamReg.conns = map[net.Conn]struct{}{}
	}
	s.streamReg.conns[c] = struct{}{}
	s.streamReg.mu.Unlock()
	s.streamReg.wg.Add(1)
}

func (s *Server) unregisterStream(c net.Conn) {
	s.streamReg.mu.Lock()
	delete(s.streamReg.conns, c)
	s.streamReg.mu.Unlock()
	s.streamReg.wg.Done()
}

// BeginDrain puts the worker into drain mode: new streams are refused,
// streams idle in a read are woken so they can say goodbye, and
// streams mid-batch finish and deliver the batch in hand before
// closing. In-flight JSON shard requests are drained by
// http.Server.Shutdown in Serve.
func (s *Server) BeginDrain() {
	if s.draining.Swap(true) {
		return
	}
	wDraining.Set(1)
	s.streamReg.mu.Lock()
	for c := range s.streamReg.conns {
		// Wake blocked readers; serveStream's error path turns this
		// into a goodbye frame.
		_ = c.SetReadDeadline(time.Now())
	}
	s.streamReg.mu.Unlock()
}

// waitStreams blocks until every stream has closed or the timeout
// passes; stragglers are severed.
func (s *Server) waitStreams(timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		s.streamReg.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.streamReg.mu.Lock()
		for c := range s.streamReg.conns {
			c.Close()
		}
		s.streamReg.mu.Unlock()
		<-done
	}
}
