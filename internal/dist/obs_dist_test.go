package dist_test

// Observability acceptance: instrumentation must be observationally
// inert (deterministic artifacts byte-identical with metrics+trace on
// or off, cached and distributed), and both scrape surfaces — worker
// /metrics and the coordinator-side registry — must render parseable
// Prometheus text.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"carriersense/internal/cache"
	"carriersense/internal/dist"
	"carriersense/internal/engine"
	"carriersense/internal/fault"
	"carriersense/internal/montecarlo"
	"carriersense/internal/obs"
)

// volatileArtifacts are per-run observability outputs, excluded from
// byte-identity by design: they carry wall-clock timings (and, for
// the provenance manifest, creation time plus the execution shape).
var volatileArtifacts = map[string]bool{
	"metrics.json":  true,
	"timings.csv":   true,
	"manifest.json": true,
}

func runToDir(t *testing.T, exec montecarlo.Executor) string {
	t.Helper()
	dir := t.TempDir()
	_, err := engine.Run(context.Background(), "dist-test-scenario", engine.Options{
		Scale:    "smoke",
		Executor: exec,
		OutDir:   dir,
		Now:      time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	return filepath.Join(dir, "20260801-100000-dist-test-scenario")
}

func artifactNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !volatileArtifacts[e.Name()] {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestObservabilityInert(t *testing.T) {
	// Baseline: local run, no tracer installed.
	plain := runToDir(t, nil)

	// Instrumented: distributed through a 2-worker fleet, behind the
	// result cache, with the trace recorder live.
	obs.SetTracer(obs.NewTracer())
	defer obs.SetTracer(nil)
	remote, err := dist.NewRemote(startWorkers(t, 2), dist.RemoteOptions{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	cached := cache.New(remote, cache.Options{Dir: t.TempDir()})
	traced := runToDir(t, cached)

	if tr := obs.CurrentTracer(); tr.Len() == 0 {
		t.Error("tracer recorded no events during an instrumented distributed run")
	}

	plainNames, tracedNames := artifactNames(t, plain), artifactNames(t, traced)
	if !strings.HasPrefix(strings.Join(tracedNames, ","), strings.Join(plainNames, ",")) ||
		len(plainNames) != len(tracedNames) {
		t.Fatalf("artifact sets differ: %v vs %v", plainNames, tracedNames)
	}
	for _, name := range plainNames {
		a, err := os.ReadFile(filepath.Join(plain, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(traced, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between plain and instrumented runs", name)
		}
	}

	// The volatile artifacts must exist in both runs, and the
	// distributed one must attribute dispatch time to the workers.
	for _, dir := range []string{plain, traced} {
		for name := range volatileArtifacts {
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				t.Errorf("%s missing: %v", name, err)
			}
		}
	}
	timings, err := os.ReadFile(filepath.Join(traced, "timings.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{",wall,", ",estimate,", ",dispatch,"} {
		if !strings.Contains(string(timings), stage) {
			t.Errorf("distributed timings.csv lacks %q stage:\n%s", stage, timings)
		}
	}
}

func TestWorkerMetricsEndpointParses(t *testing.T) {
	srv := httptest.NewServer(dist.NewServer())
	defer srv.Close()
	resp, err := http.Get(srv.URL + dist.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.CheckText(buf.String())
	if err != nil {
		t.Fatalf("worker /metrics is not valid Prometheus text: %v", err)
	}
	for family, kind := range map[string]string{
		"cs_worker_requests_total":     "counter",
		"cs_worker_inflight_batches":   "gauge",
		"cs_worker_uptime_seconds":     "gauge",
		"cs_worker_batch_eval_seconds": "histogram",
	} {
		if parsed.Types[family] != kind {
			t.Errorf("%s type = %q, want %q", family, parsed.Types[family], kind)
		}
	}
}

func TestCoordinatorRegistryParsesAfterDistributedRun(t *testing.T) {
	remote, err := dist.NewRemote(startWorkers(t, 2), dist.RemoteOptions{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, remote)
	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.CheckText(buf.String())
	if err != nil {
		t.Fatalf("coordinator registry is not valid Prometheus text: %v", err)
	}
	// Per-worker dispatch histograms must exist with worker labels.
	perWorker := 0
	for series := range parsed.Samples {
		if strings.HasPrefix(series, `cs_dist_batch_seconds_count{`) &&
			strings.Contains(series, `worker="http://`) {
			perWorker++
		}
	}
	if perWorker < 2 {
		t.Errorf("found %d per-worker dispatch series, want >= 2 (fleet of 2)", perWorker)
	}
	if v, ok := parsed.Value(`cs_dist_wire_bytes_total{dir="tx",wire="binary"}`); !ok || v <= 0 {
		t.Errorf("binary tx wire bytes = %v (ok=%v), want > 0", v, ok)
	}
}

func TestStatsReportsDrainAndInflight(t *testing.T) {
	s := dist.NewServer()
	srv := httptest.NewServer(s)
	defer srv.Close()
	getStats := func() map[string]json.RawMessage {
		resp, err := http.Get(srv.URL + dist.PathStats)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	before := getStats()
	for _, key := range []string{"uptime_seconds", "inflight_batches", "draining"} {
		if _, ok := before[key]; !ok {
			t.Errorf("/stats lacks %q: %v", key, before)
		}
	}
	if string(before["draining"]) != "false" {
		t.Errorf("draining = %s before drain", before["draining"])
	}
	if string(before["inflight_batches"]) != "0" {
		t.Errorf("inflight_batches = %s while idle", before["inflight_batches"])
	}
	s.BeginDrain()
	if after := getStats(); string(after["draining"]) != "true" {
		t.Errorf("draining = %s after BeginDrain", after["draining"])
	}
}

// The PR 8 chaos families — fault injections, readmission probes,
// hedged dispatch — must all be visible on a live worker /metrics
// scrape: declared with TYPE lines (package-init registration keeps
// them present even at zero), and the fired fault counted.
func TestWorkerMetricsScrapeCoversFaultAndFleetFamilies(t *testing.T) {
	srv := httptest.NewServer(dist.NewServer())
	defer srv.Close()

	// Baseline refuse count: the default registry is process-wide and
	// other tests in the package may have fired refusals already.
	refusedBefore := obs.Default().SnapshotFlows()[`cs_fault_injected_total{kind="refuse"}`]

	// Arm a refuse-once plan and trip it: the worker severs the
	// connection without a response, exactly like a dead TCP peer.
	sched, err := fault.Parse("w1:refuse=1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(sched.Plan("w1"))
	if _, err := http.Get(srv.URL + dist.PathHealthz); err == nil {
		t.Fatal("refused request completed; want severed connection")
	}
	// Disarm before scraping so the scrape itself is not refused.
	fault.Install(nil)

	resp, err := http.Get(srv.URL + dist.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.CheckText(buf.String())
	if err != nil {
		t.Fatalf("worker /metrics is not valid Prometheus text: %v", err)
	}
	for family, kind := range map[string]string{
		"cs_fault_injected_total":          "counter",
		"cs_dist_readmit_probes_total":     "counter",
		"cs_dist_workers_readmitted_total": "counter",
		"cs_dist_hedges_total":             "counter",
		"cs_dist_workers_abandoned_total":  "counter",
	} {
		if parsed.Types[family] != kind {
			t.Errorf("%s type = %q, want %q", family, parsed.Types[family], kind)
		}
	}
	refuse, ok := parsed.Value(`cs_fault_injected_total{kind="refuse"}`)
	if !ok || refuse < refusedBefore+1 {
		t.Errorf("refuse injections on scrape = %v (ok=%v), want >= %v", refuse, ok, refusedBefore+1)
	}
}
