package dist

// Fleet self-healing: dead-worker readmission and hedged dispatch.
//
// Readmission is a half-open circuit breaker per worker. markDead
// starts one probe goroutine per dead host that GETs /healthz on an
// exponentially backed-off, jittered schedule (a draining worker
// answers 503, so probes do not readmit a worker on its way out). A
// 200 moves the host to hostHalfOpen and lets it claim batches again
// — including joining estimations already in flight — but its very
// first failure re-kills it with a longer backoff, while its first
// completed batch restores it fully (noteSuccess). None of this can
// change results: a readmitted worker only drains the same shard
// queue everyone else does, and shard accumulators merge by index in
// shard order regardless of who evaluated them.
//
// Hedging is the dispatch-side half of straggler defense: once the
// pending queue is empty, an idle worker may claim a *copy* of the
// oldest still-unanswered batch of a slower peer, provided that batch
// has been in flight longer than a threshold derived from the fleet's
// own observed latency (the cs_dist_batch_seconds histograms). The
// idempotent complete path takes the first answer and drops the
// other, which is bit-identical anyway.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"carriersense/internal/obs"
)

// jitteredBackoff is base<<round, capped, with ±50% uniform jitter —
// the pacing for both readmission probes and dial retries. Jitter
// deliberately uses the global math/rand source: recovery pacing must
// never touch result determinism (shard RNG derives from the plan),
// and desynchronizing coordinators is the whole point.
func jitteredBackoff(base time.Duration, round int, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < round && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// probeLoop works on readmitting one dead host. It exits when the
// host answers /healthz (moving it to half-open) or the Remote is
// closed. markDead guarantees at most one live probeLoop per host
// (h.probing); a half-open host that fails its trial re-enters
// markDead, which starts a fresh loop with the grown probeRound.
func (r *Remote) probeLoop(h *hostState) {
	for {
		h.mu.Lock()
		round := h.probeRound
		h.mu.Unlock()
		t := time.NewTimer(jitteredBackoff(r.opt.ReadmitBase, round, readmitMaxBackoff))
		select {
		case <-r.closed:
			t.Stop()
			h.mu.Lock()
			h.probing = false
			h.mu.Unlock()
			return
		case <-t.C:
		}
		mProbes.Inc()
		if err := r.probeHealthz(h); err != nil {
			h.mu.Lock()
			h.probeRound++
			h.mu.Unlock()
			continue
		}
		h.mu.Lock()
		h.health = hostHalfOpen
		h.failures = 0
		h.probing = false
		h.mu.Unlock()
		if tr := obs.CurrentTracer(); tr != nil {
			tr.Instant("worker_half_open", "dist", h.tid, map[string]any{"worker": h.url})
		}
		r.joinActive(h)
		return
	}
}

// probeHealthz is one readmission probe: anything but a 200 /healthz
// keeps the worker dead (a draining worker's 503 lands here).
func (r *Remote) probeHealthz(h *hostState) error {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.url+PathHealthz, nil)
	if err != nil {
		return err
	}
	resp, err := r.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// joinActive spawns a host loop for a just-readmitted worker into
// every estimation still in flight, so healing helps the run that is
// hurting now, not just the next one. addLoop refuses joins on runs
// that already completed or failed.
func (r *Remote) joinActive(h *hostState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for d, rs := range r.active {
		if d.addLoop() {
			go r.hostLoop(rs.ctx, h, rs.req, d)
		}
	}
}

// hedgeDelayFn resolves the hedging threshold from the per-worker
// batch-latency histograms: hedgeFactor x the *fastest* worker's
// HedgeQuantile latency (the straggler's own observations must not
// inflate the threshold that is supposed to catch it), floored at
// hedgeDelayMin, and 0 — no hedging — until any worker has enough
// observations to make the quantile meaningful. Returns nil when
// hedging is disabled.
func (r *Remote) hedgeDelayFn() func() time.Duration {
	if r.opt.HedgeQuantile <= 0 {
		return nil
	}
	return func() time.Duration {
		best := 0.0
		for _, h := range r.hosts {
			if h.batchSeconds.Count() < hedgeMinObservations {
				continue
			}
			if q := h.batchSeconds.Quantile(r.opt.HedgeQuantile); q > 0 && (best == 0 || q < best) {
				best = q
			}
		}
		if best == 0 {
			return 0
		}
		d := time.Duration(hedgeFactor * best * float64(time.Second))
		if d < hedgeDelayMin {
			d = hedgeDelayMin
		}
		return d
	}
}
