package dist

// The JSON wire protocol between coordinator and workers: plain
// HTTP/JSON, one POST per shard batch. It is the fallback wire — the
// coordinator prefers the binary frame stream (frame.go, stream.go)
// and negotiates down to this per worker when the upgrade is refused.
// On both wires, accumulator states travel as IEEE-754 bit patterns
// (montecarlo.AccumulatorState), so a state that crosses the wire is
// the state that was computed — no printf rounding anywhere in the
// distributed merge.

import (
	"fmt"

	"carriersense/internal/montecarlo"
)

// Endpoint paths served by every worker.
const (
	// PathShards accepts a ShardJob POST and returns a ShardResponse.
	PathShards = "/v1/shards"
	// PathHealthz reports liveness.
	PathHealthz = "/healthz"
	// PathStats reports cumulative worker statistics.
	PathStats = "/stats"
	// PathMetrics serves the process's obs registry as Prometheus text.
	PathMetrics = "/metrics"
)

// ProtoVersion is the shard wire protocol version. Bump it whenever a
// ShardJob gains meaning an older binary would *silently mis-serve*
// rather than reject — version 2 added Sampler and FirstShard, which a
// version-1 worker's JSON decoder ignores, returning plain-sampler
// full-plan accumulators that merge cleanly into wrong results.
// Version 3 added the control-variate spec (Request.Control): a
// version-2 worker would drop the coefficients and return unadjusted
// accumulators under the adjusted request's identity. Both sides
// enforce it: workers reject jobs carrying a different version, and
// the coordinator rejects responses that do not echo it, so a
// mixed-version fleet fails loudly instead of corrupting the
// determinism contract.
const ProtoVersion = 3

// ShardJob is one batch of shard work: the full estimation identity
// (the embedded montecarlo.Request, whose fields flatten into the
// JSON) plus the shard indices this worker should evaluate. Any
// duplicate-free subset of the plan's indices is valid, which is what
// lets the coordinator re-dispatch a dead worker's shards elsewhere.
type ShardJob struct {
	montecarlo.Request
	Proto   int   `json:"proto"`
	Indices []int `json:"indices"`
}

// Validate checks the batch against the shard plan it references.
func (j ShardJob) Validate() error {
	if j.Proto != ProtoVersion {
		return fmt.Errorf("dist: shard job protocol version %d, this worker speaks %d (mixed-version fleet?)", j.Proto, ProtoVersion)
	}
	if err := j.Request.Validate(); err != nil {
		return err
	}
	return validateIndices(j.Indices, j.FirstShard, montecarlo.ShardCount(j.Samples))
}

// validateIndices checks a shard batch for range and duplicates on the
// worker hot path. Dup detection is a bitset sized by the shard count
// — one word per 64 shards instead of a map allocation per batch.
func validateIndices(indices []int, first, count int) error {
	if len(indices) == 0 {
		return fmt.Errorf("dist: shard job has no indices")
	}
	seen := make([]uint64, (count+63)/64)
	for _, idx := range indices {
		if idx < first || idx >= count {
			return fmt.Errorf("dist: shard index %d out of range [%d,%d)", idx, first, count)
		}
		if seen[idx/64]&(1<<(idx%64)) != 0 {
			return fmt.Errorf("dist: duplicate shard index %d", idx)
		}
		seen[idx/64] |= 1 << (idx % 64)
	}
	return nil
}

// ShardResult is one evaluated shard: its index and one accumulator
// state per component.
type ShardResult struct {
	Index int                           `json:"index"`
	Accs  []montecarlo.AccumulatorState `json:"accs"`
}

// ShardResponse is the worker's answer to a ShardJob, one result per
// requested index. Proto echoes the worker's protocol version; a
// missing echo unmasks a pre-versioning worker that would otherwise
// silently mis-serve current jobs.
type ShardResponse struct {
	Proto   int           `json:"proto"`
	Results []ShardResult `json:"results"`
}

// Stats is the /stats payload. Requests counts JSON shard POSTs plus
// binary stream batches; Streams and StreamBatches break out the
// binary wire's share. InflightBatches and Draining expose the
// worker's live state so a smoke test can assert graceful-drain
// behavior instead of inferring it from log lines.
type Stats struct {
	UptimeSeconds   float64  `json:"uptime_seconds"`
	Requests        int64    `json:"requests"`
	Shards          int64    `json:"shards"`
	Samples         int64    `json:"samples"`
	Failures        int64    `json:"failures"`
	Streams         int64    `json:"streams"`
	StreamBatches   int64    `json:"stream_batches"`
	InflightBatches int64    `json:"inflight_batches"`
	Draining        bool     `json:"draining"`
	Kernels         []string `json:"kernels"`
}
