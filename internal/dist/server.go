package dist

// The worker side: a small HTTP server around the shared kernel
// registry. `cs serve -listen :port` runs one of these; any number of
// coordinators may POST shard batches concurrently (the montecarlo
// pool bounds per-request parallelism, the HTTP server provides
// cross-request concurrency).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"carriersense/internal/montecarlo"
)

// Server is a shard worker: it evaluates ShardJob batches against the
// kernel registry linked into the binary and serves health and stats
// probes. The zero value is not usable; call NewServer.
type Server struct {
	mux   *http.ServeMux
	start time.Time

	requests atomic.Int64
	shards   atomic.Int64
	samples  atomic.Int64
	failures atomic.Int64
}

// NewServer returns a ready-to-serve worker.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc(PathShards, s.handleShards)
	s.mux.HandleFunc(PathHealthz, s.handleHealthz)
	s.mux.HandleFunc(PathStats, s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	var job ShardJob
	if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
		s.failures.Add(1)
		http.Error(w, fmt.Sprintf("decode shard job: %v", err), http.StatusBadRequest)
		return
	}
	if err := job.Validate(); err != nil {
		s.failures.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	accs, err := montecarlo.EvaluateShards(job.Request, job.Indices)
	if err != nil {
		s.failures.Add(1)
		// Unknown kernels and bad params are the caller's mistake, not
		// a worker fault; report 400 so the coordinator fails fast
		// instead of retrying elsewhere.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := ShardResponse{Proto: ProtoVersion, Results: make([]ShardResult, len(job.Indices))}
	sampleCount := 0
	for i, idx := range job.Indices {
		states := make([]montecarlo.AccumulatorState, len(accs[i]))
		for j, acc := range accs[i] {
			states[j] = acc.State()
		}
		// Every component of a shard sees the same sample count; tally
		// the first so /stats reports configurations, not components.
		if len(accs[i]) > 0 {
			sampleCount += accs[i][0].N()
		}
		resp.Results[i] = ShardResult{Index: idx, Accs: states}
	}
	s.shards.Add(int64(len(job.Indices)))
	s.samples.Add(int64(sampleCount))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.failures.Add(1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Shards:        s.shards.Load(),
		Samples:       s.samples.Load(),
		Failures:      s.failures.Load(),
		Kernels:       montecarlo.KernelNames(),
	})
}

// ListenAndServe runs a worker on addr until the listener fails or the
// process exits. ready, when non-nil, receives the bound address once
// the listener is up (useful with ":0").
func ListenAndServe(addr string, ready chan<- net.Addr) error {
	if addr == "" {
		return errors.New("dist: empty listen address")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	srv := &http.Server{Handler: NewServer(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(ln)
}
