package dist

// The worker side: a small HTTP server around the shared kernel
// registry. `cs serve -listen :port` runs one of these; any number of
// coordinators may POST shard batches concurrently (the montecarlo
// pool bounds per-request parallelism, the HTTP server provides
// cross-request concurrency). Coordinators that speak the binary
// stream protocol upgrade PathStream into a persistent framed
// connection (stream.go); the JSON endpoint stays for older
// coordinators and as the negotiated-down fallback.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"carriersense/internal/fault"
	"carriersense/internal/montecarlo"
	"carriersense/internal/obs"
)

// beginBatchSpan / endBatchSpan bracket one shard-batch evaluation
// with a worker-side trace span (`cs serve -trace`). The worker's
// timeline is the other end of the coordinator's per-worker dispatch
// spans: dispatch minus batch duration is pure wire-and-queue time.
// No tracer armed (the common case) costs one atomic load.
func beginBatchSpan() (*obs.Tracer, time.Duration) {
	tr := obs.CurrentTracer()
	if tr == nil {
		return nil, 0
	}
	return tr, tr.Now()
}

func endBatchSpan(tr *obs.Tracer, start time.Duration, kernel, wire string, shards int) {
	if tr == nil {
		return
	}
	tr.NameThread(obs.TidServer, "server")
	tr.Span("batch "+kernel, "worker", obs.TidServer, start,
		map[string]any{"wire": wire, "shards": shards})
}

// Server is a shard worker: it evaluates ShardJob batches against the
// kernel registry linked into the binary and serves health and stats
// probes. The zero value is not usable; call NewServer.
type Server struct {
	mux   *http.ServeMux
	start time.Time

	requests      atomic.Int64
	shards        atomic.Int64
	samples       atomic.Int64
	failures      atomic.Int64
	streams       atomic.Int64
	streamBatches atomic.Int64
	inflight      atomic.Int64

	draining  atomic.Bool
	streamReg streamRegistry
}

// NewServer returns a ready-to-serve worker.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc(PathShards, s.handleShards)
	s.mux.HandleFunc(PathStream, s.handleStream)
	s.mux.HandleFunc(PathHealthz, s.handleHealthz)
	s.mux.HandleFunc(PathStats, s.handleStats)
	s.mux.Handle(PathMetrics, obs.Default().Handler())
	return s
}

// beginBatch/endBatch bracket one shard batch's evaluation for the
// in-flight accounting (per-Server for /stats, process-wide for the
// cs_worker_inflight_batches gauge). The returned ordinal is this
// worker's 1-based batch count when a fault plan is installed — the
// coordinate @batchN schedule clauses fire on — and 0 otherwise.
func (s *Server) beginBatch() int {
	s.inflight.Add(1)
	wInflight.Inc()
	wRequests.Inc()
	s.requests.Add(1)
	if f := fault.Current(); f != nil {
		return f.WorkerBatch()
	}
	return 0
}

func (s *Server) endBatch() {
	s.inflight.Add(-1)
	wInflight.Dec()
}

// countFailure tallies one failed batch on both stat surfaces.
func (s *Server) countFailure() {
	s.failures.Add(1)
	wFailures.Inc()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f := fault.Current(); f != nil && f.RefuseRequest() {
		// A refused dial must look like a dead TCP peer, not an HTTP
		// status: a 503 on the stream-upgrade path would read as "this
		// worker speaks JSON only" and negotiate down instead of
		// exercising the failure path. ErrAbortHandler severs the
		// connection without a response and without a stack trace.
		panic(http.ErrAbortHandler)
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.beginBatch()
	defer s.endBatch()
	cr := &countingReader{r: r.Body}
	var job ShardJob
	err := json.NewDecoder(cr).Decode(&job)
	mBytesJSONRx.Add(cr.n)
	if err != nil {
		s.countFailure()
		http.Error(w, fmt.Sprintf("decode shard job: %v", err), http.StatusBadRequest)
		return
	}
	if err := job.Validate(); err != nil {
		s.countFailure()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	evalStart := time.Now()
	tr, traceStart := beginBatchSpan()
	accs, err := montecarlo.EvaluateShards(job.Request, job.Indices)
	if err != nil {
		s.countFailure()
		// Unknown kernels and bad params are the caller's mistake, not
		// a worker fault; report 400 so the coordinator fails fast
		// instead of retrying elsewhere.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	endBatchSpan(tr, traceStart, job.Request.Kernel, "json", len(job.Indices))
	wBatchEvalSeconds.Observe(time.Since(evalStart).Seconds())
	resp := ShardResponse{Proto: ProtoVersion, Results: make([]ShardResult, len(job.Indices))}
	sampleCount := 0
	for i, idx := range job.Indices {
		states := make([]montecarlo.AccumulatorState, len(accs[i]))
		for j, acc := range accs[i] {
			states[j] = acc.State()
		}
		// Every component of a shard sees the same sample count; tally
		// the first so /stats reports configurations, not components.
		if len(accs[i]) > 0 {
			sampleCount += accs[i][0].N()
		}
		resp.Results[i] = ShardResult{Index: idx, Accs: states}
	}
	s.shards.Add(int64(len(job.Indices)))
	s.samples.Add(int64(sampleCount))
	wShards.Add(int64(len(job.Indices)))
	wSamples.Add(int64(sampleCount))
	w.Header().Set("Content-Type", "application/json")
	body, err := json.Marshal(resp)
	if err != nil {
		s.countFailure()
		return
	}
	body = append(body, '\n')
	if _, err := w.Write(body); err != nil {
		s.countFailure()
		return
	}
	mBytesJSONTx.Add(int64(len(body)))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		// Not healthy for new work: fleet probes (and the readmission
		// loop in particular) must not route batches at a worker on its
		// way out.
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.requests.Load(),
		Shards:          s.shards.Load(),
		Samples:         s.samples.Load(),
		Failures:        s.failures.Load(),
		Streams:         s.streams.Load(),
		StreamBatches:   s.streamBatches.Load(),
		InflightBatches: s.inflight.Load(),
		Draining:        s.draining.Load(),
		Kernels:         montecarlo.KernelNames(),
	})
}

// DrainGrace bounds how long Serve waits for in-flight shard batches
// (JSON requests and stream batches alike) after a shutdown signal
// before severing connections. A shard batch is at most BatchSize
// kernel shards; at `-scale full` that is tens of seconds, so the
// grace is generous rather than snappy — a fleet restart should never
// turn delivered work into spurious re-dispatches.
const DrainGrace = 60 * time.Second

// Serve runs a worker on addr until ctx is canceled or the listener
// fails. ready, when non-nil, receives the bound address once the
// listener is up (useful with ":0"). On cancellation the worker
// drains: it stops accepting work, finishes and delivers in-flight
// shard batches (up to DrainGrace), closes stream connections with a
// goodbye frame, and returns nil.
func Serve(ctx context.Context, addr string, ready chan<- net.Addr) error {
	if addr == "" {
		return errors.New("dist: empty listen address")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	s := NewServer()
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-ctx.Done():
		case <-stopped:
			return
		}
		s.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), DrainGrace)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx) // drains in-flight JSON handlers
		s.waitStreams(DrainGrace)     // drains hijacked stream conns
	}()
	if ready != nil {
		ready <- ln.Addr()
	}
	err = srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) && ctx.Err() != nil {
		// Graceful drain: make sure the streams are done before
		// reporting a clean exit (Shutdown does not track hijacked
		// connections).
		s.waitStreams(DrainGrace)
		return nil
	}
	return err
}

// ListenAndServe runs a worker on addr until the listener fails or the
// process exits, with no drain hook — Serve with a background context.
func ListenAndServe(addr string, ready chan<- net.Addr) error {
	return Serve(context.Background(), addr, ready)
}
