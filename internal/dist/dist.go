// Package dist is the distributed shard executor: it farms the
// engine's machine-independent Monte Carlo shards out to a fleet of
// worker processes and merges the returned accumulator states back in
// shard order, so `cs run <scenario> -workers host1:port,host2:port`
// is bit-identical to the same run without -workers at any fleet size.
//
// The unit of work is one shard of montecarlo.PlanShards — a (kernel
// name, params JSON, seed, sample budget, shard index) tuple — shipped
// over HTTP/JSON to a worker started with `cs serve -listen :port`.
// Coordinator and workers are the same binary, so the kernel registry
// resolves identically on both sides; determinism comes from the shard
// plan being a pure function of (seed, samples) and from merging in
// shard order, never arrival order.
//
// Failure handling: each shard batch is retried (per-shard attempt
// budget), a worker that keeps failing is marked dead and its
// outstanding shards are re-dispatched to the survivors, and the run
// errors out only when every worker is gone or a shard exhausts its
// attempts. Workers expose /healthz and /stats for fleet supervision.
package dist

import (
	"context"

	"carriersense/internal/montecarlo"
)

// Executor evaluates a montecarlo.Request's full shard plan. It is the
// seam engine.Options exposes: Local evaluates in-process, Remote
// farms shards out to a worker fleet.
type Executor = montecarlo.Executor

// Local is the in-process executor: the whole shard plan evaluated by
// montecarlo's worker pool (the same path `cs run` takes without
// -workers). It exists so callers can name the default explicitly.
type Local struct{}

// EstimateVec implements Executor.
func (Local) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	return montecarlo.RunRequest(ctx, req)
}
