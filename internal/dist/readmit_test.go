package dist_test

// Fleet self-healing contract tests: a dead worker is probed back into
// the fleet (between runs and mid-run), hedged dispatch completes a
// run around a wedged straggler, and a run that dies names every
// worker that contributed to its death. Every healed/hedged run must
// stay bit-identical to the local evaluation.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"carriersense/internal/dist"
	"carriersense/internal/montecarlo"
)

// healingWorker severs every connection while sick — a crashed worker
// process, as seen from the coordinator — and serves normally once
// healed.
type healingWorker struct {
	inner   http.Handler
	healthy atomic.Bool
	shards  atomic.Int64 // shard requests served while healthy
}

func (hw *healingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !hw.healthy.Load() {
		panic(http.ErrAbortHandler)
	}
	if r.URL.Path == dist.PathShards {
		hw.shards.Add(1)
	}
	hw.inner.ServeHTTP(w, r)
}

func mustIdentical(t *testing.T, accs []montecarlo.Accumulator, want []montecarlo.Estimate, what string) {
	t.Helper()
	got := estimates(accs)
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("%s: component %d: %+v != local %+v", what, j, got[j], want[j])
		}
	}
}

func TestDeadWorkerReadmittedAfterHeal(t *testing.T) {
	req := testRequest(t, 6*montecarlo.ShardSize)
	local, err := dist.Local{}.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := estimates(local)

	hw := &healingWorker{inner: dist.NewServer()}
	srv := httptest.NewServer(hw)
	defer srv.Close()
	hosts := append(startWorkers(t, 1), strings.TrimPrefix(srv.URL, "http://"))
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{
		BatchSize: 1, Concurrency: 1, HostFailLimit: 1, Wire: dist.WireJSON,
		ReadmitBase: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// First estimation: the sick worker aborts its first batch, is
	// abandoned, and the healthy worker carries the run.
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("estimation with a sick worker failed: %v", err)
	}
	mustIdentical(t, accs, want, "sick-worker run")
	if hw.shards.Load() != 0 {
		t.Fatalf("sick worker served %d shard requests; test setup broken", hw.shards.Load())
	}

	// Heal. The background probe should move the worker to half-open,
	// and a subsequent estimation should route real work through it.
	hw.healthy.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for hw.shards.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("healed worker was never readmitted to the fleet")
		}
		accs, err := remote.EstimateVec(context.Background(), req)
		if err != nil {
			t.Fatalf("estimation while awaiting readmission failed: %v", err)
		}
		mustIdentical(t, accs, want, "post-heal run")
		time.Sleep(5 * time.Millisecond)
	}
}

// slowWorker delays every shard request so a run lasts long enough for
// mid-run events to land inside it.
type slowWorker struct {
	inner http.Handler
	delay time.Duration
}

func (sw *slowWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == dist.PathShards {
		time.Sleep(sw.delay)
	}
	sw.inner.ServeHTTP(w, r)
}

func TestReadmittedWorkerJoinsRunInFlight(t *testing.T) {
	req := testRequest(t, 36*montecarlo.ShardSize)
	local, err := dist.Local{}.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := estimates(local)

	slow := httptest.NewServer(&slowWorker{inner: dist.NewServer(), delay: 20 * time.Millisecond})
	defer slow.Close()
	hw := &healingWorker{inner: dist.NewServer()}
	hwSrv := httptest.NewServer(hw)
	defer hwSrv.Close()

	remote, err := dist.NewRemote(
		[]string{strings.TrimPrefix(slow.URL, "http://"), strings.TrimPrefix(hwSrv.URL, "http://")},
		dist.RemoteOptions{
			BatchSize: 1, Concurrency: 1, HostFailLimit: 1, Wire: dist.WireJSON,
			ReadmitBase: 10 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Heal the dead worker while the slow worker is still grinding
	// through the plan; the readmission probe should bring it back into
	// *this* run, not just the next one.
	healTimer := time.AfterFunc(50*time.Millisecond, func() { hw.healthy.Store(true) })
	defer healTimer.Stop()

	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("estimation with mid-run readmission failed: %v", err)
	}
	mustIdentical(t, accs, want, "mid-run readmission")
	if hw.shards.Load() == 0 {
		t.Error("readmitted worker served no shards in the run it rejoined")
	}
}

// stallingWorker serves normally until stalled, after which shard
// requests block on the gate — a wedged-but-connected worker.
type stallingWorker struct {
	inner   http.Handler
	stall   atomic.Bool
	gate    chan struct{}
	stalled atomic.Int64
}

func (gw *stallingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == dist.PathShards && gw.stall.Load() {
		gw.stalled.Add(1)
		<-gw.gate
	}
	gw.inner.ServeHTTP(w, r)
}

func TestHedgingCompletesAroundWedgedStraggler(t *testing.T) {
	req := testRequest(t, 24*montecarlo.ShardSize)
	local, err := dist.Local{}.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := estimates(local)

	gw := &stallingWorker{inner: dist.NewServer(), gate: make(chan struct{})}
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { close(gw.gate) }) // unblock before srv.Close waits on handlers

	hosts := append(startWorkers(t, 1), strings.TrimPrefix(srv.URL, "http://"))
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{
		BatchSize: 1, Concurrency: 1, Wire: dist.WireJSON,
		HedgeQuantile: 0.9, ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Warm-up: a healthy run seeds the per-worker latency histograms
	// past the observation floor hedging needs for its threshold.
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("warm-up estimation failed: %v", err)
	}
	mustIdentical(t, accs, want, "warm-up")

	// Wedge one worker and re-run: it claims a batch and never answers.
	// Without hedging this run blocks until the gate opens; with it, the
	// healthy worker duplicates the overdue batch and finishes the run.
	gw.stall.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		accs, err := remote.EstimateVec(context.Background(), req)
		if err != nil {
			t.Errorf("hedged estimation failed: %v", err)
			return
		}
		mustIdentical(t, accs, want, "hedged run")
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hedged run did not complete while the straggler stayed wedged")
	}
	if gw.stalled.Load() == 0 {
		t.Fatal("straggler never wedged; test exercised nothing")
	}
}

func TestRunFailureNamesEveryWorkersCause(t *testing.T) {
	var hosts []string
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(dist.NewServer())
		hosts = append(hosts, strings.TrimPrefix(srv.URL, "http://"))
		srv.Close() // connection refused from the start
	}
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{
		HostFailLimit: 1, ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = remote.EstimateVec(context.Background(), testRequest(t, 4*montecarlo.ShardSize))
	if err == nil {
		t.Fatal("run over an all-dead fleet succeeded")
	}
	for _, h := range hosts {
		if !strings.Contains(err.Error(), h) {
			t.Errorf("terminal error does not name worker %s:\n%v", h, err)
		}
	}
}
