package dist_test

// End-to-end acceptance: a scenario run through engine.Run with a
// Remote executor — the `cs run <scenario> -workers ...` path — must
// produce text and metrics bit-identical to the plain local run, at
// any fleet size and with a worker killed mid-flight.

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"carriersense/internal/capacity"
	"carriersense/internal/core"
	"carriersense/internal/dist"
	"carriersense/internal/engine"
	"carriersense/internal/montecarlo"
)

// distScenarioParams drive the registered test scenario through the
// model's kernel-routed estimators.
type distScenarioParams struct {
	Seed    uint64
	Samples int
}

func init() {
	engine.Register(engine.Scenario{
		Name:        "dist-test-scenario",
		Description: "distributed-executor acceptance scenario (tests only)",
		Figures:     "none",
		NewParams:   func() any { return &distScenarioParams{Seed: 4242, Samples: 3*montecarlo.ShardSize + 77} },
		Run: func(rc *engine.RunContext) error {
			p := rc.Params.(*distScenarioParams)
			// Shadowed two-pair averages: the core/averages kernel.
			m := core.New(core.DefaultParams())
			a := m.EstimateAverages(p.Seed, p.Samples, 55, 55, 55)
			rc.Printf("cs=%v max=%v eff=%v\n", a.CS.Mean, a.Max.Mean, a.Efficiency())
			rc.Metric("cs", a.CS.Mean)
			rc.Metric("max", a.Max.Mean)
			rc.Metric("eff", a.Efficiency())
			// A non-default capacity model: the capacity.Spec round trip.
			fm := core.New(core.Params{Alpha: 3, SigmaDB: 8, NoiseDB: core.DefaultNoiseDB,
				Capacity: capacity.FixedRate{Rate: 1.25, MinSNR: 2.5}})
			fa := fm.EstimateAverages(p.Seed+1, p.Samples, 55, 55, 55)
			rc.Metric("fixed_eff", fa.Efficiency())
			// The n-pair extension: the core/multi kernel.
			mm := core.NewMulti(core.DefaultMultiParams(3))
			ma := mm.EstimateMulti(p.Seed+2, p.Samples/2)
			rc.Metric("multi_eff", ma.Efficiency())
			rc.Printf("multi cs=%v bestk=%v\n", ma.CS.Mean, ma.BestK.Mean)
			return nil
		},
	})
}

func runScenario(t *testing.T, exec montecarlo.Executor) *engine.Result {
	t.Helper()
	results, err := engine.Run(context.Background(), "dist-test-scenario", engine.Options{
		Scale:    "smoke",
		Executor: exec,
	})
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	return results[0]
}

func TestEngineRunDistributedBitIdentical(t *testing.T) {
	local := runScenario(t, nil)
	for _, fleet := range []int{1, 2, 5} {
		remote, err := dist.NewRemote(startWorkers(t, fleet), dist.RemoteOptions{BatchSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := runScenario(t, remote)
		if got.Text != local.Text {
			t.Errorf("fleet=%d: text differs:\n%q\nvs local\n%q", fleet, got.Text, local.Text)
		}
		if !reflect.DeepEqual(got.Metrics, local.Metrics) {
			t.Errorf("fleet=%d: metrics differ:\n%v\nvs local\n%v", fleet, got.Metrics, local.Metrics)
		}
	}
}

func TestEngineRunSurvivesWorkerDeathMidRun(t *testing.T) {
	local := runScenario(t, nil)
	flaky := &flakyWorker{inner: dist.NewServer(), survives: 3}
	flakySrv := httptest.NewServer(flaky)
	defer flakySrv.Close()
	hosts := append(startWorkers(t, 1), strings.TrimPrefix(flakySrv.URL, "http://"))
	// flakyWorker aborts JSON shard POSTs; pin the wire so the death
	// path fires (binary-wire death is covered in stream_test.go).
	remote, err := dist.NewRemote(hosts, dist.RemoteOptions{
		BatchSize: 1, Concurrency: 1, HostFailLimit: 2, Wire: dist.WireJSON,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := runScenario(t, remote)
	if flaky.served.Load() <= 3 {
		t.Fatalf("flaky worker served %d requests; death path not exercised", flaky.served.Load())
	}
	if got.Text != local.Text || !reflect.DeepEqual(got.Metrics, local.Metrics) {
		t.Errorf("results after mid-run worker death differ from local:\n%v\nvs\n%v",
			got.Metrics, local.Metrics)
	}
}

func TestEngineRejectsNegativeParallel(t *testing.T) {
	_, err := engine.Run(context.Background(), "dist-test-scenario", engine.Options{
		Scale: "smoke", Parallel: -2,
	})
	if err == nil || !strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("negative -parallel accepted (err=%v)", err)
	}
}

func TestEngineSurfacesExecutorFailureAsError(t *testing.T) {
	// An unreachable fleet must become an ordinary error from
	// engine.Run, not a crash.
	srv := httptest.NewServer(dist.NewServer())
	host := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()
	remote, err := dist.NewRemote([]string{host}, dist.RemoteOptions{HostFailLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(context.Background(), "dist-test-scenario", engine.Options{
		Scale: "smoke", Executor: remote,
	})
	if err == nil {
		t.Fatal("run against a dead fleet succeeded")
	}
	var execErr *montecarlo.ExecError
	if !errors.As(err, &execErr) {
		t.Errorf("error %v does not unwrap to ExecError", err)
	}
}
