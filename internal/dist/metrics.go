package dist

// Registry handles for the distributed layer. Wire byte counters are
// counted at the frame/body level on whichever side of the wire this
// process is (the coordinator's tx is a worker's rx), so one metric
// family serves both roles; which role a scrape is looking at is
// determined by which process it scraped. Per-worker latency lives in
// a labeled histogram resolved once per host at Remote construction.

import (
	"time"

	"carriersense/internal/obs"
)

var (
	mBatchesBinary = obs.Default().Counter("cs_dist_batches_total",
		"Shard batches completed by wire format.", obs.Label{Key: "wire", Value: "binary"})
	mBatchesJSON = obs.Default().Counter("cs_dist_batches_total",
		"Shard batches completed by wire format.", obs.Label{Key: "wire", Value: "json"})
	mRequeues = obs.Default().Counter("cs_dist_requeues_total",
		"Shards returned to the dispatch queue after a worker failure.")
	mShardTimeouts = obs.Default().Counter("cs_dist_shard_timeouts_total",
		"Batches abandoned because no answer arrived within -shard-timeout.")
	mWorkersAbandoned = obs.Default().Counter("cs_dist_workers_abandoned_total",
		"Workers declared dead and removed from the fleet for a run.")
	mProbes = obs.Default().Counter("cs_dist_readmit_probes_total",
		"Readmission health probes sent to dead workers.")
	mWorkersReadmitted = obs.Default().Counter("cs_dist_workers_readmitted_total",
		"Dead workers restored to the fleet after a successful trial batch.")
	mHedges = obs.Default().Counter("cs_dist_hedges_total",
		"Overdue batches speculatively re-dispatched to a second worker.")
	mBytesBinaryTx = obs.Default().Counter("cs_dist_wire_bytes_total",
		"Shard-protocol bytes moved, by wire format and direction.",
		obs.Label{Key: "wire", Value: "binary"}, obs.Label{Key: "dir", Value: "tx"})
	mBytesBinaryRx = obs.Default().Counter("cs_dist_wire_bytes_total",
		"Shard-protocol bytes moved, by wire format and direction.",
		obs.Label{Key: "wire", Value: "binary"}, obs.Label{Key: "dir", Value: "rx"})
	mBytesJSONTx = obs.Default().Counter("cs_dist_wire_bytes_total",
		"Shard-protocol bytes moved, by wire format and direction.",
		obs.Label{Key: "wire", Value: "json"}, obs.Label{Key: "dir", Value: "tx"})
	mBytesJSONRx = obs.Default().Counter("cs_dist_wire_bytes_total",
		"Shard-protocol bytes moved, by wire format and direction.",
		obs.Label{Key: "wire", Value: "json"}, obs.Label{Key: "dir", Value: "rx"})
)

// Worker-side metrics. A Server keeps its own /stats atomics (tests
// run several Servers per process and must not cross-contaminate);
// these registry series aggregate across every Server in the process
// for the /metrics scrape.
var (
	wRequests = obs.Default().Counter("cs_worker_requests_total",
		"Shard batches received (JSON POSTs plus stream batch frames).")
	wShards = obs.Default().Counter("cs_worker_shards_total",
		"Shards evaluated for coordinators.")
	wSamples = obs.Default().Counter("cs_worker_samples_total",
		"Monte Carlo samples evaluated for coordinators.")
	wFailures = obs.Default().Counter("cs_worker_failures_total",
		"Shard batches rejected or failed.")
	wStreams = obs.Default().Counter("cs_worker_streams_total",
		"Binary shard streams accepted.")
	wInflight = obs.Default().Gauge("cs_worker_inflight_batches",
		"Shard batches currently being evaluated.")
	wDraining = obs.Default().Gauge("cs_worker_draining",
		"1 while the worker is draining for shutdown, else 0.")
	wBatchEvalSeconds = obs.Default().Histogram("cs_worker_batch_eval_seconds",
		"Wall time to evaluate one received shard batch.", nil)
)

func init() {
	start := time.Now()
	obs.Default().GaugeFunc("cs_worker_uptime_seconds",
		"Seconds since this process registered the dist layer.",
		func() float64 { return time.Since(start).Seconds() })
}

// batchSecondsFor resolves the per-worker dispatch→result latency
// histogram. Idempotent per URL, so Remotes rebuilt over the same
// fleet share series.
func batchSecondsFor(workerURL string) *obs.Histogram {
	return obs.Default().Histogram("cs_dist_batch_seconds",
		"Dispatch-to-result wall time for one shard batch, per worker.",
		nil, obs.Label{Key: "worker", Value: workerURL})
}
