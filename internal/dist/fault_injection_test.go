package dist_test

// The fault layer driven end to end through real coordinator/worker
// pairs: every injected fault must be survived by the retry machinery
// with bit-identical results, because an injected fault is by
// construction indistinguishable from the real failure it models.

import (
	"context"
	"net/http"
	"testing"
	"time"

	"carriersense/internal/dist"
	"carriersense/internal/fault"
	"carriersense/internal/montecarlo"
)

// installFault parses spec, installs the plan for worker id, and
// uninstalls at cleanup so no schedule leaks across tests.
func installFault(t *testing.T, spec, id string) *fault.Plan {
	t.Helper()
	sched, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := sched.Plan(id)
	if p == nil {
		t.Fatalf("schedule %q selected no rules for %q", spec, id)
	}
	fault.Install(p)
	t.Cleanup(func() { fault.Install(nil) })
	return p
}

// wantLocal evaluates the request locally for the bit-identity check.
func wantLocal(t *testing.T, req montecarlo.Request) []montecarlo.Estimate {
	t.Helper()
	local, err := dist.Local{}.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return estimates(local)
}

func TestInjectedCorruptFrameIsDetectedAndRetried(t *testing.T) {
	// The corrupt fault flips a structural byte of the first result
	// frame; the coordinator must reject the frame, requeue the batch,
	// and recompute — never merge damaged accumulator state.
	installFault(t, "w1:corrupt@batch1,seed=3", "w1")
	req := testRequest(t, 4*montecarlo.ShardSize)
	want := wantLocal(t, req)
	remote, err := dist.NewRemote(startWorkers(t, 1), dist.RemoteOptions{
		BatchSize: 2, ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run under an injected corrupt frame failed: %v", err)
	}
	mustIdentical(t, accs, want, "corrupt-frame run")
}

func TestInjectedTruncatedFrameIsRetried(t *testing.T) {
	// The truncate fault tears the connection mid-result-frame; the
	// coordinator reads an unexpected EOF and re-dispatches.
	installFault(t, "w1:truncate@batch1", "w1")
	req := testRequest(t, 4*montecarlo.ShardSize)
	want := wantLocal(t, req)
	remote, err := dist.NewRemote(startWorkers(t, 1), dist.RemoteOptions{
		BatchSize: 2, ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run under an injected truncated frame failed: %v", err)
	}
	mustIdentical(t, accs, want, "truncated-frame run")
}

func TestInjectedRefusalsExhaustTheirBudget(t *testing.T) {
	// refuse=2 severs the first two requests at the socket; the third
	// attempt lands inside the default HostFailLimit and completes.
	p := installFault(t, "w1:refuse=2", "w1")
	req := testRequest(t, 2*montecarlo.ShardSize)
	want := wantLocal(t, req)
	remote, err := dist.NewRemote(startWorkers(t, 1), dist.RemoteOptions{
		BatchSize: 1, Concurrency: 1, Wire: dist.WireJSON, ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run under injected refusals failed: %v", err)
	}
	mustIdentical(t, accs, want, "refusal run")
	if p.RefuseRequest() {
		t.Error("refuse budget not exhausted by the run")
	}
}

func TestInjectedCrashSeversMidBatch(t *testing.T) {
	// In-process stand-in for kill -9 at a batch boundary: OnCrash
	// cannot os.Exit inside a test binary, so it aborts the handler's
	// connection instead — the same torn wire the coordinator would see.
	p := installFault(t, "w1:crash@batch2", "w1")
	p.OnCrash = func() { panic(http.ErrAbortHandler) }
	req := testRequest(t, 6*montecarlo.ShardSize)
	want := wantLocal(t, req)
	remote, err := dist.NewRemote(startWorkers(t, 1), dist.RemoteOptions{
		BatchSize: 2, ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run under an injected mid-batch crash failed: %v", err)
	}
	mustIdentical(t, accs, want, "mid-batch crash run")
}

func TestInjectedSlownessDelaysButCompletes(t *testing.T) {
	installFault(t, "w1:slow=30ms", "w1")
	req := testRequest(t, 2*montecarlo.ShardSize)
	want := wantLocal(t, req)
	remote, err := dist.NewRemote(startWorkers(t, 1), dist.RemoteOptions{
		BatchSize: 2, ReadmitBase: dist.ReadmitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run under injected slowness failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("run took %v; injected 30ms straggle never applied", elapsed)
	}
	mustIdentical(t, accs, want, "slow run")
}

func TestFaultScheduleForOtherTargetsIsInert(t *testing.T) {
	// A schedule whose rules all target other processes installs
	// nothing here: Current() stays nil and the hot path stays on its
	// one-nil-check fast path.
	sched, err := fault.Parse("worker9:refuse=100")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(sched.Plan("w1"))
	t.Cleanup(func() { fault.Install(nil) })
	if fault.Current() != nil {
		t.Fatal("plan with no matching rules was installed")
	}
	req := testRequest(t, 2*montecarlo.ShardSize)
	want := wantLocal(t, req)
	remote, err := dist.NewRemote(startWorkers(t, 1), dist.RemoteOptions{ReadmitBase: dist.ReadmitOff})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, accs, want, "inert-schedule run")
}
