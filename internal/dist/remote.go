package dist

// The coordinator side: Remote schedules a request's shard plan across
// the worker fleet. Scheduling is pull-based — each worker drains a
// shared pending queue in batches — so fast workers naturally take
// more shards, and a dead worker's unfinished shards flow back into
// the queue for the survivors. None of this affects results: shard
// accumulators are stored by index and merged in shard order once
// every shard has been evaluated somewhere.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"carriersense/internal/montecarlo"
)

// Remote tuning defaults.
const (
	// DefaultBatchSize is the number of shards per worker request —
	// large enough to amortize the HTTP round trip (a shard is 4096
	// samples), small enough that failover loses little work.
	DefaultBatchSize = 8
	// DefaultConcurrency is the number of in-flight requests per
	// worker, covering request latency while the worker computes.
	DefaultConcurrency = 2
	// DefaultHostFailLimit is the number of consecutive transport
	// failures after which a worker is declared dead and abandoned.
	DefaultHostFailLimit = 3
)

// RemoteOptions tune a Remote executor. The zero value of every field
// selects a default.
type RemoteOptions struct {
	Client    *http.Client // transport; nil builds one with sane timeouts
	BatchSize int          // shards per request (default DefaultBatchSize)
	// MaxAttempts is the per-shard attempt budget across the whole
	// fleet before the run fails. 0 scales with the fleet:
	// (HostFailLimit+Concurrency)·workers + 1, so a shard can survive
	// every worker dying around it and still get a clean attempt.
	MaxAttempts   int
	Concurrency   int // in-flight requests per worker (default DefaultConcurrency)
	HostFailLimit int // consecutive failures before a worker is dead (default DefaultHostFailLimit)
}

// Remote is an Executor that distributes shard evaluation over a fleet
// of `cs serve` workers. Safe for concurrent use. Worker health
// persists across estimations: a worker declared dead stays abandoned
// for the Remote's lifetime (one `cs run`), so a scenario with many
// estimation points pays the detection cost once, not per point.
type Remote struct {
	hosts []*hostState
	opt   RemoteOptions
}

// NewRemote builds a Remote executor over the given host:port workers
// (as accepted by ParseWorkerList).
func NewRemote(hosts []string, opts ...RemoteOptions) (*Remote, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("dist: no workers given")
	}
	var opt RemoteOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = DefaultBatchSize
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = DefaultConcurrency
	}
	if opt.HostFailLimit <= 0 {
		opt.HostFailLimit = DefaultHostFailLimit
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = (opt.HostFailLimit+opt.Concurrency)*len(hosts) + 1
	}
	if opt.Client == nil {
		// No overall request timeout: a shard batch legitimately takes
		// as long as its kernel does (minutes at -scale full), and a
		// deadline here would misread slow computation as worker death.
		// Dead hosts are still detected quickly via the dial timeout,
		// and canceling the run's context aborts in-flight requests.
		opt.Client = &http.Client{
			Transport: &http.Transport{
				DialContext: (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
			},
		}
	}
	r := &Remote{opt: opt}
	for _, h := range hosts {
		if h == "" {
			return nil, fmt.Errorf("dist: empty worker address")
		}
		if !strings.Contains(h, "://") {
			h = "http://" + h
		}
		r.hosts = append(r.hosts, &hostState{url: strings.TrimRight(h, "/")})
	}
	return r, nil
}

// Workers returns the configured worker base URLs.
func (r *Remote) Workers() []string {
	out := make([]string, len(r.hosts))
	for i, h := range r.hosts {
		out[i] = h.url
	}
	return out
}

// ParseWorkerList validates a comma-separated host:port list (the
// `-workers` flag) and returns the cleaned entries. Every entry must
// be host:port with a numeric port in [1, 65535].
func ParseWorkerList(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("dist: empty worker list")
	}
	var hosts []string
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("dist: empty entry in worker list %q", spec)
		}
		host, port, err := net.SplitHostPort(entry)
		if err != nil {
			return nil, fmt.Errorf("dist: bad worker %q (want host:port): %v", entry, err)
		}
		if host == "" {
			return nil, fmt.Errorf("dist: bad worker %q: missing host", entry)
		}
		p, err := strconv.Atoi(port)
		if err != nil || p < 1 || p > 65535 {
			return nil, fmt.Errorf("dist: bad worker %q: port must be 1-65535", entry)
		}
		hosts = append(hosts, entry)
	}
	return hosts, nil
}

// dispatch is the shared scheduling state of one EstimateVec call.
type dispatch struct {
	mu        sync.Mutex
	cond      *sync.Cond
	pending   []int                      // shard indices awaiting (re-)dispatch
	attempts  []int                      // per-shard attempt counts
	results   [][]montecarlo.Accumulator // per-shard per-component states
	remaining int                        // shards not yet completed
	loops     int                        // worker goroutines still running
	err       error                      // first fatal error; ends the run
}

// newDispatch prepares the queue for shards [first, count) — the
// request's planned range (first > 0 for the convergence driver's
// delta requests). The bookkeeping arrays stay plan-indexed so shard
// indices never need translating.
func newDispatch(first, count, loops int) *dispatch {
	d := &dispatch{
		pending:   make([]int, count-first),
		attempts:  make([]int, count),
		results:   make([][]montecarlo.Accumulator, count),
		remaining: count - first,
		loops:     loops,
	}
	for i := range d.pending {
		d.pending[i] = first + i
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// next blocks until a batch of work is available and claims it, or
// returns nil when the run is over (all shards done or fatal error).
func (d *dispatch) next(batch int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.pending) == 0 && d.remaining > 0 && d.err == nil {
		d.cond.Wait()
	}
	if d.remaining == 0 || d.err != nil {
		return nil
	}
	n := batch
	if n > len(d.pending) {
		n = len(d.pending)
	}
	claimed := append([]int(nil), d.pending[:n]...)
	d.pending = d.pending[n:]
	return claimed
}

// complete records evaluated shards.
func (d *dispatch) complete(indices []int, accs [][]montecarlo.Accumulator) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, idx := range indices {
		if d.results[idx] == nil {
			d.results[idx] = accs[i]
			d.remaining--
		}
	}
	d.cond.Broadcast()
}

// requeue returns a failed batch to the queue, charging one attempt
// per shard. A shard that exhausts its budget fails the whole run.
func (d *dispatch) requeue(indices []int, maxAttempts int, cause error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return
	}
	for _, idx := range indices {
		if d.results[idx] != nil {
			continue
		}
		d.attempts[idx]++
		if d.attempts[idx] >= maxAttempts {
			d.err = fmt.Errorf("dist: shard %d failed after %d attempts: %w", idx, d.attempts[idx], cause)
			break
		}
		d.pending = append(d.pending, idx)
	}
	d.cond.Broadcast()
}

// loopExited records a worker goroutine leaving the run, for whatever
// reason — its host died (possibly declared dead by a concurrent
// estimation sharing the same Remote), the queue drained, or a fatal
// error. The run fails when the last goroutine leaves with shards
// still outstanding; counting goroutines rather than hosts means no
// exit path can strand wait() without a verdict.
func (d *dispatch) loopExited(host string, cause error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.loops--
	if d.loops <= 0 && d.remaining > 0 && d.err == nil {
		d.err = fmt.Errorf("dist: all workers failed (last: %s: %v)", host, cause)
	}
	d.cond.Broadcast()
}

// fail records a fatal error (context cancellation) that retrying
// elsewhere cannot cure.
func (d *dispatch) fail(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err == nil {
		d.err = err
	}
	d.cond.Broadcast()
}

// wait blocks until the run completes or fails.
func (d *dispatch) wait() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.remaining > 0 && d.err == nil {
		d.cond.Wait()
	}
	return d.err
}

// EstimateVec implements Executor: it schedules the request's shard
// plan across the fleet, survives worker deaths as long as one worker
// remains, and merges the returned accumulator states in shard order.
func (r *Remote) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Only workers still alive from earlier estimations join this one.
	var live []*hostState
	for _, h := range r.hosts {
		h.mu.Lock()
		if !h.dead {
			live = append(live, h)
		}
		h.mu.Unlock()
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("dist: all %d workers are dead", len(r.hosts))
	}
	count := montecarlo.ShardCount(req.Samples)
	d := newDispatch(req.FirstShard, count, len(live)*r.opt.Concurrency)

	// Cancel in-flight requests the moment the run completes or fails.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(ctx, func() { d.fail(ctx.Err()) })
	defer stop()

	var wg sync.WaitGroup
	for _, h := range live {
		h := h
		for c := 0; c < r.opt.Concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.workerLoop(ctx, h, req, d, r.opt.MaxAttempts)
			}()
		}
	}

	err := d.wait()
	cancel() // release any worker goroutine blocked on a slow request
	wg.Wait()
	if err != nil {
		return nil, err
	}
	merged := make([]montecarlo.Accumulator, req.Dim)
	for idx := req.FirstShard; idx < count; idx++ {
		for j := 0; j < req.Dim; j++ {
			merged[j].Merge(d.results[idx][j])
		}
	}
	// Credit the fleet's work to this process's throughput counter so
	// the CLI's samples/sec report covers distributed runs.
	montecarlo.AddEvaluatedSamples(req.SampleSpan())
	return merged, nil
}

// hostState is the shared health of one worker across its concurrent
// request loops and across estimations: death is permanent for the
// Remote's lifetime.
type hostState struct {
	url      string
	mu       sync.Mutex
	failures int  // consecutive transport failures
	dead     bool // declared dead; all loops for this host exit
}

// fatalStatusError marks a worker response that retrying on the same
// worker cannot cure (it understood the request and rejected it); the
// worker is abandoned and the rest of the fleet takes over.
type fatalStatusError struct{ msg string }

func (e *fatalStatusError) Error() string { return e.msg }

func (r *Remote) workerLoop(ctx context.Context, h *hostState, req montecarlo.Request, d *dispatch, maxAttempts int) {
	var lastErr error
	defer func() { d.loopExited(h.url, lastErr) }()
	for {
		h.mu.Lock()
		dead := h.dead
		h.mu.Unlock()
		if dead {
			if lastErr == nil {
				lastErr = fmt.Errorf("worker declared dead")
			}
			return
		}
		batch := d.next(r.opt.BatchSize)
		if batch == nil {
			return
		}
		accs, err := r.post(ctx, h.url, req, batch)
		if err == nil {
			h.mu.Lock()
			h.failures = 0
			h.mu.Unlock()
			d.complete(batch, accs)
			continue
		}
		lastErr = err
		var fatal *fatalStatusError
		if errors.As(err, &fatal) {
			// A protocol-level rejection is this worker's problem — a
			// version-skewed binary missing the kernel, or some other
			// service squatting on the address. Abandon the worker and
			// let the rest of the fleet take the batch; the run only
			// fails if every worker rejects it.
			d.requeue(batch, maxAttempts, err)
			h.mu.Lock()
			h.dead = true
			h.mu.Unlock()
			return
		}
		// Transport failure: hand the batch back for the fleet and
		// decide whether this worker is still worth talking to.
		d.requeue(batch, maxAttempts, err)
		h.mu.Lock()
		h.failures++
		if !h.dead && h.failures >= r.opt.HostFailLimit {
			h.dead = true
		}
		dead = h.dead
		h.mu.Unlock()
		if dead {
			return
		}
	}
}

// post ships one shard batch to a worker and decodes the per-shard
// accumulator states, positionally matching indices.
func (r *Remote) post(ctx context.Context, host string, req montecarlo.Request, indices []int) ([][]montecarlo.Accumulator, error) {
	job := ShardJob{Request: req, Proto: ProtoVersion, Indices: indices}
	body, err := json.Marshal(job)
	if err != nil {
		return nil, &fatalStatusError{msg: fmt.Sprintf("marshal job: %v", err)}
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, host+PathShards, bytes.NewReader(body))
	if err != nil {
		return nil, &fatalStatusError{msg: fmt.Sprintf("build request: %v", err)}
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := r.opt.Client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("post %s: %w", host, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &fatalStatusError{msg: fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))}
		}
		return nil, fmt.Errorf("post %s: %s: %s", host, resp.Status, strings.TrimSpace(string(msg)))
	}
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decode response from %s: %w", host, err)
	}
	if sr.Proto != ProtoVersion {
		// A pre-versioning worker decodes current jobs but ignores the
		// fields it does not know (sampler, shard range) — its answers
		// would be silently wrong, so its missing/old echo is fatal.
		return nil, &fatalStatusError{msg: fmt.Sprintf(
			"worker %s speaks shard protocol %d, this coordinator %d (mixed-version fleet?)", host, sr.Proto, ProtoVersion)}
	}
	if len(sr.Results) != len(indices) {
		return nil, fmt.Errorf("worker %s returned %d results for %d shards", host, len(sr.Results), len(indices))
	}
	accs := make([][]montecarlo.Accumulator, len(indices))
	for i, res := range sr.Results {
		if res.Index != indices[i] {
			return nil, fmt.Errorf("worker %s returned shard %d at position %d (want %d)", host, res.Index, i, indices[i])
		}
		if len(res.Accs) != req.Dim {
			return nil, fmt.Errorf("worker %s returned %d components for shard %d (want %d)", host, len(res.Accs), res.Index, req.Dim)
		}
		accs[i] = make([]montecarlo.Accumulator, req.Dim)
		for j, st := range res.Accs {
			accs[i][j] = montecarlo.FromState(st)
		}
	}
	return accs, nil
}
