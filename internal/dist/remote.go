package dist

// The coordinator side: Remote schedules a request's shard plan across
// the worker fleet. Scheduling is pull-based — each worker drains a
// shared pending queue in batches — so fast workers naturally take
// more shards, and a dead worker's unfinished shards flow back into
// the queue for the survivors. None of this affects results: shard
// accumulators are stored by index and merged in shard order once
// every shard has been evaluated somewhere.
//
// Transport is negotiated per worker. The preferred wire is the
// binary shard stream (frame.go/stream.go): one persistent upgraded
// connection per worker carrying the estimation identity once and
// then pipelined batch/result frames, so the worker always has the
// next batch in its socket buffer while evaluating the current one
// and never starves on a round trip. A worker that refuses the
// upgrade — an older binary — is served over the original HTTP/JSON
// wire instead, per connection, so a mixed fleet degrades instead of
// failing.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"carriersense/internal/montecarlo"
	"carriersense/internal/obs"
)

// Remote tuning defaults.
const (
	// DefaultBatchSize is the number of shards per worker request —
	// large enough to amortize the per-batch round trip (a shard is
	// 4096 samples), small enough that failover loses little work.
	DefaultBatchSize = 8
	// DefaultConcurrency is the pipeline depth per worker: in-flight
	// requests on the JSON wire, unanswered batch frames on the binary
	// stream. Either way it covers transport latency while the worker
	// computes.
	DefaultConcurrency = 2
	// DefaultHostFailLimit is the number of consecutive transport
	// failures after which a worker is declared dead and abandoned.
	DefaultHostFailLimit = 3
	// maxIdleStreams bounds the per-worker pool of idle binary
	// streams kept across estimations.
	maxIdleStreams = 4
	// dialTimeout bounds connection establishment to a worker; dead
	// hosts are detected here, never by capping how long a legitimate
	// shard batch may compute.
	dialTimeout = 10 * time.Second
	// DefaultReadmitBase is the readmission probe loop's base delay
	// when ReadmitBase is zero: the first /healthz probe of a dead
	// worker fires about this long after abandonment, doubling (with
	// jitter) per failed probe up to readmitMaxBackoff.
	DefaultReadmitBase = 500 * time.Millisecond
	// ReadmitOff disables dead-worker readmission (RemoteOptions
	// .ReadmitBase): abandoned workers stay abandoned for the
	// Remote's lifetime, the pre-readmission behavior.
	ReadmitOff = time.Duration(-1)
	// readmitMaxBackoff caps the probe interval so a worker that
	// comes back after a long outage is still noticed within ~30s.
	readmitMaxBackoff = 30 * time.Second
	// probeTimeout bounds one /healthz probe round trip.
	probeTimeout = 5 * time.Second
	// dialRetryBase paces a live worker's consecutive transport
	// failures: ~dialRetryBase after the first failure, doubling with
	// jitter up to dialRetryMax, so a restarting fleet sees staggered
	// reconnects instead of a synchronized stampede from every
	// coordinator loop.
	dialRetryBase = 50 * time.Millisecond
	dialRetryMax  = 2 * time.Second
	// Hedging thresholds: a batch is re-dispatched speculatively once
	// it has been in flight hedgeFactor times longer than the fastest
	// worker's HedgeQuantile batch latency (floored at hedgeDelayMin;
	// no hedging until some worker has hedgeMinObservations batches).
	hedgeFactor          = 2.0
	hedgeDelayMin        = 25 * time.Millisecond
	hedgeMinObservations = 8
	// maxHedgesPerShard bounds speculative duplicates of one shard so
	// a pathologically slow fleet cannot ping-pong a batch forever.
	maxHedgesPerShard = 2
	// loopDrainGrace is how long a successful run waits for its host
	// goroutines to exit on their own before severing them. Healthy
	// loops park their streams in microseconds; the grace is only ever
	// paid when a hedge completed the run around a worker still wedged
	// in a request that nothing but a cancel will unblock.
	loopDrainGrace = 50 * time.Millisecond
)

// Wire selects the shard transport.
type Wire int

const (
	// WireAuto (the default) uses the binary stream with workers that
	// speak it and falls back to HTTP/JSON per worker otherwise.
	WireAuto Wire = iota
	// WireJSON forces the HTTP/JSON wire for every worker.
	WireJSON
	// WireBinary requires the binary stream: a worker that cannot
	// speak it is abandoned instead of negotiated down.
	WireBinary
)

// String implements fmt.Stringer (the -wire flag values).
func (w Wire) String() string {
	switch w {
	case WireJSON:
		return "json"
	case WireBinary:
		return "binary"
	}
	return "auto"
}

// ParseWire parses a -wire flag value.
func ParseWire(s string) (Wire, error) {
	switch s {
	case "", "auto":
		return WireAuto, nil
	case "json":
		return WireJSON, nil
	case "binary":
		return WireBinary, nil
	}
	return 0, fmt.Errorf("dist: unknown wire %q (want auto, json, or binary)", s)
}

// RemoteOptions tune a Remote executor. The zero value of every field
// selects a default.
type RemoteOptions struct {
	Client    *http.Client // JSON transport; nil builds one with sane timeouts
	BatchSize int          // shards per request (default DefaultBatchSize)
	// MaxAttempts is the per-shard attempt budget across the whole
	// fleet before the run fails. 0 scales with the fleet:
	// (HostFailLimit+Concurrency)·workers + 1, so a shard can survive
	// every worker dying around it and still get a clean attempt.
	MaxAttempts   int
	Concurrency   int  // pipeline depth per worker (default DefaultConcurrency)
	HostFailLimit int  // consecutive failures before a worker is dead (default DefaultHostFailLimit)
	Wire          Wire // transport selection (default WireAuto)
	// ShardTimeout, when > 0, bounds how long a dispatched shard batch
	// may stay unanswered before it is re-dispatched to another worker
	// (the original worker is charged a transport failure). 0 leaves
	// batches un-deadlined: a batch legitimately takes as long as its
	// kernel does, and `-scale full` sim replications run for tens of
	// seconds. Set it generously on fleets where a wedged worker must
	// not stall a run — re-dispatch cannot corrupt results, because
	// duplicate shard completions merge idempotently (first one wins).
	ShardTimeout time.Duration
	// ReadmitBase paces dead-worker readmission: an abandoned worker
	// gets a background /healthz probe loop with exponential backoff
	// and jitter starting from this base. A probe that answers 200
	// moves the worker to a half-open state that admits one trial
	// batch; the trial's success restores the worker, its failure
	// re-kills it with a longer backoff. 0 selects
	// DefaultReadmitBase; ReadmitOff (negative) disables readmission.
	ReadmitBase time.Duration
	// HedgeQuantile, when in (0, 1), arms hedged dispatch: a batch in
	// flight longer than hedgeFactor x the fastest worker's
	// HedgeQuantile batch latency (from the cs_dist_batch_seconds
	// histograms) is speculatively re-dispatched to an idle worker,
	// and the first result wins (completions are idempotent, so the
	// duplicate is bit-identical and harmless). 0 disables hedging.
	HedgeQuantile float64
}

// Remote is an Executor that distributes shard evaluation over a fleet
// of `cs serve` workers. Safe for concurrent use. Worker health and
// negotiated wire persist across estimations: a worker declared dead
// is probed for readmission in the background (unless ReadmitOff) and
// rejoins even mid-estimation, and a worker that negotiated down to
// JSON is not re-probed per estimation. Binary streams are pooled per
// worker, so consecutive estimations reuse connections instead of
// re-handshaking.
type Remote struct {
	hosts []*hostState
	opt   RemoteOptions

	mu     sync.Mutex
	active map[*dispatch]*runState // in-flight estimations readmitted workers can join

	closed    chan struct{} // stops probe loops (Close)
	closeOnce sync.Once
}

// runState is what a readmitted worker needs to join an in-flight
// estimation: its context and request identity.
type runState struct {
	ctx context.Context
	req montecarlo.Request
}

// Close stops the background readmission probes. Estimations in
// flight are unaffected; the Remote remains usable, but dead workers
// are no longer probed. Safe to call more than once.
func (r *Remote) Close() {
	r.closeOnce.Do(func() { close(r.closed) })
}

// NewRemote builds a Remote executor over the given host:port workers
// (as accepted by ParseWorkerList).
func NewRemote(hosts []string, opts ...RemoteOptions) (*Remote, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("dist: no workers given")
	}
	var opt RemoteOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = DefaultBatchSize
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = DefaultConcurrency
	}
	if opt.HostFailLimit <= 0 {
		opt.HostFailLimit = DefaultHostFailLimit
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = (opt.HostFailLimit+opt.Concurrency)*len(hosts) + 1
	}
	if opt.ReadmitBase == 0 {
		opt.ReadmitBase = DefaultReadmitBase
	}
	if opt.HedgeQuantile < 0 || opt.HedgeQuantile >= 1 {
		return nil, fmt.Errorf("dist: hedge quantile must be in [0, 1), got %g", opt.HedgeQuantile)
	}
	if opt.Client == nil {
		// No overall request timeout: a shard batch legitimately takes
		// as long as its kernel does (minutes at -scale full), and a
		// deadline here would misread slow computation as worker death.
		// Dead hosts are still detected quickly via the dial timeout,
		// canceling the run's context aborts in-flight requests, and
		// ShardTimeout (when set) re-dispatches wedged batches.
		opt.Client = &http.Client{
			Transport: &http.Transport{
				DialContext: (&net.Dialer{Timeout: dialTimeout}).DialContext,
			},
		}
	}
	r := &Remote{opt: opt, active: map[*dispatch]*runState{}, closed: make(chan struct{})}
	for i, h := range hosts {
		if h == "" {
			return nil, fmt.Errorf("dist: empty worker address")
		}
		if !strings.Contains(h, "://") {
			h = "http://" + h
		}
		url := strings.TrimRight(h, "/")
		r.hosts = append(r.hosts, &hostState{
			url:          url,
			tid:          obs.TidRemoteBase + i,
			batchSeconds: batchSecondsFor(url),
		})
	}
	return r, nil
}

// Workers returns the configured worker base URLs.
func (r *Remote) Workers() []string {
	out := make([]string, len(r.hosts))
	for i, h := range r.hosts {
		out[i] = h.url
	}
	return out
}

// ParseWorkerList validates a comma-separated host:port list (the
// `-workers` flag) and returns the cleaned entries. Every entry must
// be host:port with a numeric port in [1, 65535].
func ParseWorkerList(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("dist: empty worker list")
	}
	var hosts []string
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("dist: empty entry in worker list %q", spec)
		}
		host, port, err := net.SplitHostPort(entry)
		if err != nil {
			return nil, fmt.Errorf("dist: bad worker %q (want host:port): %v", entry, err)
		}
		if host == "" {
			return nil, fmt.Errorf("dist: bad worker %q: missing host", entry)
		}
		p, err := strconv.Atoi(port)
		if err != nil || p < 1 || p > 65535 {
			return nil, fmt.Errorf("dist: bad worker %q: port must be 1-65535", entry)
		}
		hosts = append(hosts, entry)
	}
	return hosts, nil
}

// dispatch is the shared scheduling state of one EstimateVec call.
type dispatch struct {
	mu        sync.Mutex
	cond      *sync.Cond
	pending   []int                      // shard indices awaiting (re-)dispatch
	attempts  []int                      // per-shard attempt counts
	results   [][]montecarlo.Accumulator // per-shard per-component states
	remaining int                        // shards not yet completed
	loops     int                        // host goroutines still running
	err       error                      // first fatal error; ends the run

	// Failure forensics: the latest cause per worker, bounded, so the
	// terminal error names every distinct worker that contributed to
	// the run's death instead of only the last one.
	causes     map[string]string
	causeOrder []string

	// Hedging (nil hedgeDelay = off): outstanding batches by shard
	// index, so an idle worker can speculatively duplicate the oldest
	// overdue batch of a slower peer.
	hedgeDelay func() time.Duration // current threshold; <= 0 = not enough data yet
	inflight   map[int]*flight
	hedges     map[int]int // per-shard speculative duplicates issued
	hedgeTimer *time.Timer // wakes waiters when the oldest flight ripens
}

// flight is one outstanding batch dispatch.
type flight struct {
	indices []int
	worker  string
	sent    time.Time
	hedged  bool // already duplicated once; per-shard hedges cap the rest
}

// newDispatch prepares the queue for shards [first, count) — the
// request's planned range (first > 0 for the convergence driver's
// delta requests). The bookkeeping arrays stay plan-indexed so shard
// indices never need translating.
func newDispatch(first, count, loops int, hedgeDelay func() time.Duration) *dispatch {
	d := &dispatch{
		pending:   make([]int, count-first),
		attempts:  make([]int, count),
		results:   make([][]montecarlo.Accumulator, count),
		remaining: count - first,
		loops:     loops,
		causes:    map[string]string{},
	}
	if hedgeDelay != nil {
		d.hedgeDelay = hedgeDelay
		d.inflight = map[int]*flight{}
		d.hedges = map[int]int{}
	}
	for i := range d.pending {
		d.pending[i] = first + i
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// next blocks until a batch of work is available and claims it, or
// returns nil when the run is over (all shards done or fatal error).
// With hedging armed, an empty queue can still yield work: a copy of
// another worker's overdue in-flight batch.
func (d *dispatch) next(batch int, worker string) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.remaining == 0 || d.err != nil {
			return nil
		}
		if len(d.pending) > 0 {
			n := batch
			if n > len(d.pending) {
				n = len(d.pending)
			}
			claimed := append([]int(nil), d.pending[:n]...)
			d.pending = d.pending[n:]
			return claimed
		}
		if hedged, ripeIn := d.hedgeClaimLocked(worker); hedged != nil {
			return hedged
		} else if ripeIn > 0 {
			d.armHedgeTimerLocked(ripeIn)
		}
		d.cond.Wait()
	}
}

// hedgeClaimLocked looks for the oldest overdue un-hedged batch from
// another worker and claims a copy of its incomplete shards. When the
// oldest candidate has not ripened yet it returns how long until it
// does, so the caller can arm a wake-up instead of sleeping forever.
func (d *dispatch) hedgeClaimLocked(worker string) (indices []int, ripeIn time.Duration) {
	if d.hedgeDelay == nil || len(d.inflight) == 0 {
		return nil, 0
	}
	threshold := d.hedgeDelay()
	if threshold <= 0 {
		return nil, 0
	}
	var oldest *flight
	for _, f := range d.inflight {
		if f.hedged || f.worker == worker {
			continue
		}
		if oldest == nil || f.sent.Before(oldest.sent) {
			oldest = f
		}
	}
	if oldest == nil {
		return nil, 0
	}
	if age := time.Since(oldest.sent); age < threshold {
		return nil, threshold - age
	}
	oldest.hedged = true
	for _, idx := range oldest.indices {
		if d.results[idx] == nil && d.hedges[idx] < maxHedgesPerShard {
			d.hedges[idx]++
			indices = append(indices, idx)
		}
	}
	if len(indices) == 0 {
		return nil, 0
	}
	mHedges.Inc()
	return indices, 0
}

// armHedgeTimerLocked schedules a broadcast for when the oldest
// in-flight batch becomes hedgeable. Later re-arms just reset it; a
// stale firing is a harmless spurious wake.
func (d *dispatch) armHedgeTimerLocked(in time.Duration) {
	if d.hedgeTimer == nil {
		d.hedgeTimer = time.AfterFunc(in, func() {
			d.mu.Lock()
			d.cond.Broadcast()
			d.mu.Unlock()
		})
		return
	}
	d.hedgeTimer.Reset(in)
}

// markInflight registers a dispatched batch for hedging. No-op unless
// hedging is armed. Called after the batch is claimed and definitely
// going out on the wire (post-push on streams, pre-POST on JSON).
func (d *dispatch) markInflight(indices []int, worker string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hedgeDelay == nil {
		return
	}
	f := &flight{indices: indices, worker: worker, sent: time.Now()}
	for _, idx := range indices {
		if d.results[idx] == nil {
			d.inflight[idx] = f
		}
	}
	// A parked idle worker may now have a future hedge candidate.
	d.cond.Broadcast()
}

// clearInflightLocked drops flight tracking for shards that are no
// longer outstanding (completed, requeued, or unclaimed).
func (d *dispatch) clearInflightLocked(indices []int) {
	if d.inflight == nil {
		return
	}
	for _, idx := range indices {
		delete(d.inflight, idx)
	}
}

// recordCauseLocked notes one worker's latest failure for the
// terminal diagnostic, bounded so a huge flapping fleet cannot bloat
// the error message.
const maxCauseWorkers = 8

func (d *dispatch) recordCauseLocked(worker string, cause error) {
	if worker == "" || cause == nil {
		return
	}
	if _, seen := d.causes[worker]; !seen {
		if len(d.causeOrder) >= maxCauseWorkers {
			return
		}
		d.causeOrder = append(d.causeOrder, worker)
	}
	d.causes[worker] = cause.Error()
}

// causeSummaryLocked renders every distinct worker's latest failure,
// prefixing the worker URL when the cause does not already name it.
func (d *dispatch) causeSummaryLocked() string {
	if len(d.causeOrder) == 0 {
		return "no worker failures recorded"
	}
	parts := make([]string, len(d.causeOrder))
	for i, w := range d.causeOrder {
		cause := d.causes[w]
		if !strings.Contains(cause, w) {
			cause = w + ": " + cause
		}
		parts[i] = cause
	}
	return strings.Join(parts, "; ")
}

// complete records evaluated shards. Duplicate completions — a shard
// re-dispatched after a timeout whose original worker answers late —
// are ignored: the first evaluation wins, and both evaluations are
// bit-identical anyway (the shard stream is a pure function of the
// plan).
func (d *dispatch) complete(indices []int, accs [][]montecarlo.Accumulator) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clearInflightLocked(indices)
	for i, idx := range indices {
		if d.results[idx] == nil {
			d.results[idx] = accs[i]
			d.remaining--
		}
	}
	d.cond.Broadcast()
}

// requeue returns a failed batch to the queue, charging one attempt
// per shard. A shard that exhausts its budget fails the whole run,
// with a diagnostic naming every distinct worker failure seen — an
// all-fleet death is diagnosable from the one message.
func (d *dispatch) requeue(indices []int, maxAttempts int, worker string, cause error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recordCauseLocked(worker, cause)
	if d.err != nil {
		return
	}
	d.clearInflightLocked(indices)
	for _, idx := range indices {
		if d.results[idx] != nil {
			continue
		}
		d.attempts[idx]++
		if d.attempts[idx] >= maxAttempts {
			d.err = fmt.Errorf("dist: shard %d failed after %d attempts; worker failures: %s",
				idx, d.attempts[idx], d.causeSummaryLocked())
			break
		}
		d.pending = append(d.pending, idx)
		mRequeues.Inc()
	}
	d.cond.Broadcast()
}

// unclaim returns a claimed-but-never-dispatched batch to the queue
// without charging attempts (wire renegotiation, a reader that stopped
// before the batch went out).
func (d *dispatch) unclaim(indices []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clearInflightLocked(indices)
	for _, idx := range indices {
		if d.results[idx] == nil {
			d.pending = append(d.pending, idx)
		}
	}
	d.cond.Broadcast()
}

// addLoop admits a late host goroutine — a readmitted worker joining
// an estimation already in flight. It fails (and the caller must not
// start the loop) once the run has completed or errored, so joins can
// race run teardown safely.
func (d *dispatch) addLoop() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.remaining == 0 || d.err != nil {
		return false
	}
	d.loops++
	return true
}

// loopExited records a host goroutine leaving the run, for whatever
// reason — its host died (possibly declared dead by a concurrent
// estimation sharing the same Remote), the queue drained, or a fatal
// error. The run fails when the last goroutine leaves with shards
// still outstanding; counting goroutines rather than hosts means no
// exit path can strand wait() without a verdict.
func (d *dispatch) loopExited(host string, cause error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recordCauseLocked(host, cause)
	d.loops--
	if d.loops <= 0 && d.remaining > 0 && d.err == nil {
		d.err = fmt.Errorf("dist: all workers failed; %s", d.causeSummaryLocked())
	}
	d.cond.Broadcast()
}

// waitLoops blocks until every host goroutine (including late
// readmission joins) has exited, then retires the hedge timer.
func (d *dispatch) waitLoops() {
	d.mu.Lock()
	for d.loops > 0 {
		d.cond.Wait()
	}
	if d.hedgeTimer != nil {
		d.hedgeTimer.Stop()
	}
	d.mu.Unlock()
}

// fail records a fatal error (context cancellation) that retrying
// elsewhere cannot cure.
func (d *dispatch) fail(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err == nil {
		d.err = err
	}
	d.cond.Broadcast()
}

// wait blocks until the run completes or fails.
func (d *dispatch) wait() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.remaining > 0 && d.err == nil {
		d.cond.Wait()
	}
	return d.err
}

// EstimateVec implements Executor: it schedules the request's shard
// plan across the fleet, survives worker deaths as long as one worker
// remains, and merges the returned accumulator states in shard order.
func (r *Remote) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Workers alive (or half-open, probing their way back) from
	// earlier estimations join this one; fully dead workers join later
	// if their readmission probe succeeds mid-run.
	var live []*hostState
	for _, h := range r.hosts {
		h.mu.Lock()
		if h.health != hostDead {
			live = append(live, h)
		}
		h.mu.Unlock()
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("dist: all %d workers are dead", len(r.hosts))
	}
	count := montecarlo.ShardCount(req.Samples)
	d := newDispatch(req.FirstShard, count, len(live), r.hedgeDelayFn())

	// Cancel in-flight requests the moment the run completes or fails.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(ctx, func() { d.fail(ctx.Err()) })
	defer stop()

	// Register before starting loops so a worker readmitted during the
	// run can join it (joinActive); unregister before returning.
	r.mu.Lock()
	r.active[d] = &runState{ctx: ctx, req: req}
	r.mu.Unlock()

	for _, h := range live {
		h := h
		go r.hostLoop(ctx, h, req, d)
	}

	err := d.wait()
	if err != nil {
		cancel() // release any host goroutine blocked on a slow request
	}
	r.mu.Lock()
	delete(r.active, d)
	r.mu.Unlock()
	// On success the loops drain on their own (the queue is empty), and
	// not canceling yet lets readers park their streams in the pool —
	// canceling immediately would race the pool release and close
	// reusable connections. But a run completed by a hedge may leave
	// the hedged-around worker wedged in a request only a cancel can
	// unblock, so the patience is bounded: past loopDrainGrace, sever.
	// Late readmission joins either made it into d.loops (waitLoops
	// covers them) or failed addLoop and never started.
	loopsDone := make(chan struct{})
	go func() { d.waitLoops(); close(loopsDone) }()
	select {
	case <-loopsDone:
	case <-time.After(loopDrainGrace):
		cancel()
		<-loopsDone
	}
	if err != nil {
		return nil, err
	}
	merged := make([]montecarlo.Accumulator, req.Dim)
	for idx := req.FirstShard; idx < count; idx++ {
		for j := 0; j < req.Dim; j++ {
			merged[j].Merge(d.results[idx][j])
		}
	}
	// Credit the fleet's work to this process's throughput counter so
	// the CLI's samples/sec report covers distributed runs.
	montecarlo.AddEvaluatedSamples(req.SampleSpan())
	return merged, nil
}

// hostHealth is a worker's circuit-breaker state.
type hostHealth int

const (
	// hostAlive: serving normally.
	hostAlive hostHealth = iota
	// hostDead: abandoned after HostFailLimit consecutive failures;
	// loops for this host exit, and (unless ReadmitOff) a background
	// probe loop works on bringing it back.
	hostDead
	// hostHalfOpen: a readmission probe saw a healthy /healthz; the
	// worker is admitted back for a trial. Its first success restores
	// it to hostAlive, its first failure re-kills it with a longer
	// probe backoff — the classic half-open circuit breaker.
	hostHalfOpen
)

// hostState is the shared health of one worker across estimations.
// A negotiated-down wire is permanent for the Remote's lifetime;
// death is not — the readmission loop may heal it.
type hostState struct {
	url          string
	tid          int            // tracer lane (obs.TidRemoteBase + fleet position)
	batchSeconds *obs.Histogram // dispatch→result latency for this worker
	mu           sync.Mutex
	failures     int // consecutive transport failures
	health       hostHealth
	probing      bool          // a probe loop goroutine is live for this host
	probeRound   int           // failed probe cycles since last healthy (backoff exponent)
	jsonOnly     bool          // negotiated down: worker refused the binary stream
	idle         []*streamConn // pooled binary streams, reused across estimations
}

// markDead declares the host unusable, closes its pooled streams, and
// (unless readmission is off) starts its background probe loop.
func (r *Remote) markDead(h *hostState) {
	h.mu.Lock()
	was := h.health == hostDead
	h.health = hostDead
	idle := h.idle
	h.idle = nil
	startProbe := !was && !h.probing && r.opt.ReadmitBase > 0
	if startProbe {
		h.probing = true
	}
	h.mu.Unlock()
	for _, sc := range idle {
		sc.close()
	}
	if !was {
		mWorkersAbandoned.Inc()
		if tr := obs.CurrentTracer(); tr != nil {
			tr.Instant("worker_abandoned", "dist", h.tid, map[string]any{"worker": h.url})
		}
	}
	if startProbe {
		go r.probeLoop(h)
	}
}

// observeBatch records one completed batch's dispatch→result latency
// on the worker's histogram and, when tracing, a span on its lane.
func (h *hostState) observeBatch(wire string, sent time.Time, shards int) {
	elapsed := time.Since(sent)
	h.batchSeconds.Observe(elapsed.Seconds())
	if wire == "binary" {
		mBatchesBinary.Inc()
	} else {
		mBatchesJSON.Inc()
	}
	if tr := obs.CurrentTracer(); tr != nil {
		tr.NameThread(h.tid, "worker "+h.url)
		start := tr.Now() - elapsed
		if start < 0 {
			start = 0
		}
		tr.Span("batch", "dist", h.tid, start,
			map[string]any{"shards": shards, "wire": wire, "worker": h.url})
	}
}

// countFailure charges one consecutive transport failure and reports
// whether the host is now (or already was) dead. A half-open host
// dies of its first failure: the trial batch was the test, and it
// failed — back to probing, with a longer backoff.
func (r *Remote) countFailure(h *hostState) (dead bool) {
	h.mu.Lock()
	h.failures++
	switch {
	case h.health == hostDead:
		h.mu.Unlock()
		return true
	case h.health == hostHalfOpen:
		h.probeRound++
		h.mu.Unlock()
		r.markDead(h)
		return true
	case h.failures >= r.opt.HostFailLimit:
		h.mu.Unlock()
		r.markDead(h)
		return true
	}
	h.mu.Unlock()
	return false
}

// retryDelay returns the jittered backoff before this host's next
// attempt after `failures` consecutive transport failures — the
// dial-retry pacing that keeps a restarted fleet from eating a
// synchronized reconnect stampede.
func (h *hostState) retryDelay() time.Duration {
	h.mu.Lock()
	n := h.failures
	h.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return jitteredBackoff(dialRetryBase, n-1, dialRetryMax)
}

// noteSuccess resets the consecutive-failure counter and, when the
// success was a half-open worker's trial batch, restores the worker
// to full fleet membership.
func (h *hostState) noteSuccess() {
	h.mu.Lock()
	h.failures = 0
	readmitted := h.health == hostHalfOpen
	if readmitted {
		h.health = hostAlive
		h.probeRound = 0
	}
	h.mu.Unlock()
	if readmitted {
		mWorkersReadmitted.Inc()
		if tr := obs.CurrentTracer(); tr != nil {
			tr.Instant("worker_readmitted", "dist", h.tid, map[string]any{"worker": h.url})
		}
	}
}

// acquireStream pops a pooled binary stream or dials a fresh one.
func (r *Remote) acquireStream(ctx context.Context, h *hostState) (*streamConn, error) {
	h.mu.Lock()
	if n := len(h.idle); n > 0 {
		sc := h.idle[n-1]
		h.idle = h.idle[:n-1]
		h.mu.Unlock()
		return sc, nil
	}
	h.mu.Unlock()
	return dialStream(ctx, h.url, dialTimeout)
}

// releaseStream returns a healthy stream to the host's pool.
func (r *Remote) releaseStream(h *hostState, sc *streamConn) {
	sc.conn.SetReadDeadline(time.Time{})
	h.mu.Lock()
	if h.health != hostDead && len(h.idle) < maxIdleStreams {
		h.idle = append(h.idle, sc)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	sc.close()
}

// fatalStatusError marks a worker response that retrying on the same
// worker cannot cure (it understood the request and rejected it); the
// worker is abandoned and the rest of the fleet takes over.
type fatalStatusError struct{ msg string }

func (e *fatalStatusError) Error() string { return e.msg }

// hostLoop drives one worker for the duration of one estimation:
// negotiate the wire, then pump batches until the plan drains or the
// host dies. Stream establishment happens after claiming a batch, so
// a dead host burns shard attempts (bounded by MaxAttempts) rather
// than spinning on dials.
func (r *Remote) hostLoop(ctx context.Context, h *hostState, req montecarlo.Request, d *dispatch) {
	var lastErr error
	defer func() { d.loopExited(h.url, lastErr) }()
	for {
		h.mu.Lock()
		dead, jsonOnly := h.health == hostDead, h.jsonOnly
		h.mu.Unlock()
		if dead {
			if lastErr == nil {
				lastErr = fmt.Errorf("worker declared dead")
			}
			return
		}
		if r.opt.Wire == WireJSON || jsonOnly {
			if err := r.jsonHostLoop(ctx, h, req, d); err != nil {
				lastErr = err
			}
			return
		}
		batch := d.next(r.opt.BatchSize, h.url)
		if batch == nil {
			return
		}
		sc, err := r.acquireStream(ctx, h)
		if err != nil {
			if errors.As(err, new(*fatalStatusError)) || errors.Is(err, errNoBinary) && r.opt.Wire == WireBinary {
				lastErr = err
				d.requeue(batch, r.opt.MaxAttempts, h.url, fmt.Errorf("worker %s: %w", h.url, err))
				r.markDead(h)
				return
			}
			if errors.Is(err, errNoBinary) {
				// Negotiate down: this worker speaks JSON only. The
				// claimed batch goes back uncharged — nothing was
				// dispatched.
				h.mu.Lock()
				h.jsonOnly = true
				h.mu.Unlock()
				d.unclaim(batch)
				continue
			}
			lastErr = err
			d.requeue(batch, r.opt.MaxAttempts, h.url, fmt.Errorf("worker %s: %w", h.url, err))
			if r.countFailure(h) {
				return
			}
			sleepCtx(ctx, h.retryDelay())
			continue
		}
		err = r.runStream(ctx, h, sc, req, d, batch)
		if err == nil {
			return // plan drained through this stream
		}
		lastErr = err
		var fatal *fatalStatusError
		if errors.As(err, &fatal) {
			// The worker understood the batch and rejected it (unknown
			// kernel, version skew): abandon it, let the fleet retry.
			r.markDead(h)
			return
		}
		if r.countFailure(h) {
			return
		}
		sleepCtx(ctx, h.retryDelay())
	}
}

// sleepCtx sleeps for d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// streamRun is the shared state between a stream's writer goroutine
// (claims batches, sends frames) and its reader (matches result
// frames FIFO, completes shards). Pipelining lives here: up to
// `window` batches may be pushed-and-sent before the first result is
// read, so the worker's socket always holds the next batch.
type streamRun struct {
	mu         sync.Mutex
	cond       *sync.Cond
	conn       net.Conn      // reader wake-up line (deadline pokes)
	timeout    time.Duration // ShardTimeout; 0 disables deadlines
	fifo       []streamBatch
	writerDone bool
	writerErr  error
	stopped    bool // reader gave up; writer must unclaim, not send
}

type streamBatch struct {
	indices []int
	sent    time.Time
}

func newStreamRun(conn net.Conn, timeout time.Duration) *streamRun {
	st := &streamRun{conn: conn, timeout: timeout}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// push waits for pipeline room and registers a batch as in-flight.
// The registration happens before the frame is written, so a result
// can never arrive for a batch the reader does not know about. Returns
// false when the reader has stopped.
func (st *streamRun) push(b []int, window int) bool {
	st.mu.Lock()
	for len(st.fifo) >= window && !st.stopped {
		st.cond.Wait()
	}
	if st.stopped {
		st.mu.Unlock()
		return false
	}
	wasIdle := len(st.fifo) == 0
	st.fifo = append(st.fifo, streamBatch{indices: b, sent: time.Now()})
	st.mu.Unlock()
	if wasIdle && st.timeout > 0 {
		// The reader may have armed a no-deadline read while the FIFO
		// was empty; poke it so it re-arms against this batch's
		// ShardTimeout. A spurious wake is classified as not-expired
		// and re-armed — cheap, and only paid on idle→busy edges.
		_ = st.conn.SetReadDeadline(time.Now())
	}
	return true
}

// peek returns the oldest in-flight batch without removing it — a
// result frame is matched against it, but the batch only leaves the
// FIFO once the frame decodes (a corrupt frame must leave the batch
// in flight so the abort path requeues it).
func (st *streamRun) peek() (streamBatch, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.fifo) == 0 {
		return streamBatch{}, false
	}
	return st.fifo[0], true
}

// popFront removes the oldest in-flight batch after its result frame
// decoded cleanly.
func (st *streamRun) popFront() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.fifo) > 0 {
		st.fifo = st.fifo[1:]
	}
	st.cond.Broadcast()
}

// drainInflight empties the FIFO and stops the writer; the caller
// requeues the returned indices.
func (st *streamRun) drainInflight() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var all []int
	for _, b := range st.fifo {
		all = append(all, b.indices...)
	}
	st.fifo = nil
	st.stopped = true
	st.cond.Broadcast()
	return all
}

// finishWriter records the writer's exit and wakes the reader if it
// is blocked waiting for frames that will never come.
func (st *streamRun) finishWriter(err error, wake net.Conn) {
	st.mu.Lock()
	st.writerDone = true
	st.writerErr = err
	st.mu.Unlock()
	// A reader blocked in a deadline-free read learns nothing from the
	// flag alone; fire its deadline so it re-checks. The reader sets
	// its own deadline under st.mu, so this cannot be overwritten by a
	// stale value (see runStream's reader loop).
	_ = wake.SetReadDeadline(time.Now())
}

// runStream pumps one estimation through one binary stream: the
// request identity once, then pipelined batches. Returns nil when the
// dispatch queue drained (the stream goes back to the pool), or an
// error after requeueing everything still in flight.
func (r *Remote) runStream(ctx context.Context, h *hostState, sc *streamConn, req montecarlo.Request, d *dispatch, first []int) error {
	// A canceled run must not leave the reader blocked on a worker
	// that is still computing: closing the conn is the wake-up. The
	// AfterFunc is stopped before the stream can re-enter the pool.
	stopWake := context.AfterFunc(ctx, func() { sc.conn.Close() })

	st := newStreamRun(sc.conn, r.opt.ShardTimeout)
	reqID, err := sc.sendRequest(req)
	if err != nil {
		stopWake()
		sc.close()
		d.unclaim(first)
		return fmt.Errorf("worker %s: send request: %w", h.url, err)
	}

	go func() { // writer: claim → register in-flight → send
		batch := first
		for {
			if !st.push(batch, r.opt.Concurrency) {
				d.unclaim(batch) // reader stopped before this went out
				st.finishWriter(nil, sc.conn)
				return
			}
			d.markInflight(batch, h.url) // hedging sees it once it is going out
			if err := sc.sendBatch(reqID, batch); err != nil {
				st.finishWriter(fmt.Errorf("worker %s: send batch: %w", h.url, err), sc.conn)
				return
			}
			batch = d.next(r.opt.BatchSize, h.url)
			if batch == nil {
				st.finishWriter(nil, sc.conn)
				return
			}
		}
	}()

	// abort requeues everything in flight and reports err. The writer
	// is unblocked by drainInflight (push observes stopped) and, if
	// mid-write, by the conn close.
	abort := func(cause error) error {
		inflight := st.drainInflight()
		stopWake()
		sc.close()
		if len(inflight) > 0 {
			d.requeue(inflight, r.opt.MaxAttempts, h.url, cause)
		}
		return cause
	}

	for { // reader: match result frames FIFO, complete shards
		st.mu.Lock()
		if st.writerDone && st.writerErr != nil {
			err := st.writerErr
			st.mu.Unlock()
			return abort(err)
		}
		if st.writerDone && len(st.fifo) == 0 {
			st.mu.Unlock()
			// Plan drained cleanly: keep the connection for the next
			// estimation unless the cancel wake already fired.
			if stopWake() {
				r.releaseStream(h, sc)
			} else {
				sc.close()
			}
			return nil
		}
		// Arm the read deadline under st.mu so finishWriter's wake can
		// never be clobbered by a stale deadline computed before the
		// writer finished.
		var deadline time.Time
		if r.opt.ShardTimeout > 0 && len(st.fifo) > 0 {
			deadline = st.fifo[0].sent.Add(r.opt.ShardTimeout)
		}
		_ = sc.conn.SetReadDeadline(deadline)
		st.mu.Unlock()

		t, payload, err := readFrame(sc.br, &sc.scratch)
		if err != nil {
			if ctx.Err() != nil {
				return abort(ctx.Err())
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				st.mu.Lock()
				expired := r.opt.ShardTimeout > 0 && len(st.fifo) > 0 &&
					time.Since(st.fifo[0].sent) >= r.opt.ShardTimeout
				st.mu.Unlock()
				if !expired {
					continue // the writer's wake, or a re-arm race: re-check
				}
				// Re-dispatch on expiry: the batches go back to the
				// queue for other workers; this connection is dropped
				// (its late answers would be unmatchable).
				mShardTimeouts.Inc()
				if tr := obs.CurrentTracer(); tr != nil {
					tr.Instant("shard_timeout", "dist", h.tid, map[string]any{"worker": h.url})
				}
				return abort(fmt.Errorf("worker %s: no answer for %s (shard timeout): re-dispatching", h.url, r.opt.ShardTimeout))
			}
			return abort(fmt.Errorf("worker %s: read frame: %w", h.url, err))
		}
		switch t {
		case frameResult:
			front, ok := st.peek()
			if !ok {
				return abort(fmt.Errorf("worker %s: result frame with no batch in flight (corrupt stream?)", h.url))
			}
			id, accs, err := decodeResult(payload, front.indices, req.Dim)
			if err != nil {
				return abort(fmt.Errorf("worker %s: %w", h.url, err))
			}
			if id != reqID {
				return abort(fmt.Errorf("worker %s: result for request %d, want %d (corrupt stream?)", h.url, id, reqID))
			}
			st.popFront()
			h.noteSuccess()
			h.observeBatch("binary", front.sent, len(front.indices))
			d.complete(front.indices, accs)
		case frameError:
			fatal, msg, derr := decodeError(payload)
			if derr != nil {
				return abort(fmt.Errorf("worker %s: %w", h.url, derr))
			}
			cause := fmt.Errorf("worker %s: %s", h.url, msg)
			if fatal {
				return abort(&fatalStatusError{msg: cause.Error()})
			}
			return abort(cause)
		case frameGoodbye:
			// The worker drained: everything it answered is already
			// complete; the rest re-dispatches to the survivors.
			return abort(fmt.Errorf("worker %s: draining (%s)", h.url, bytesToMsg(payload)))
		default:
			return abort(fmt.Errorf("worker %s: unexpected %s frame", h.url, t))
		}
	}
}

// countingReader counts bytes read through it (JSON wire rx
// accounting — the decoder sees exactly the response body).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// bytesToMsg renders a frame's message payload, bounded.
func bytesToMsg(b []byte) string {
	const max = 256
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// jsonHostLoop serves one worker over the HTTP/JSON wire with
// Concurrency parallel request loops — the pre-stream transport, kept
// for negotiated-down workers and -wire json.
func (r *Remote) jsonHostLoop(ctx context.Context, h *hostState, req montecarlo.Request, d *dispatch) error {
	errs := make([]error, r.opt.Concurrency)
	var wg sync.WaitGroup
	for c := 0; c < r.opt.Concurrency; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[c] = r.jsonLoop(ctx, h, req, d)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *Remote) jsonLoop(ctx context.Context, h *hostState, req montecarlo.Request, d *dispatch) error {
	var lastErr error
	for {
		h.mu.Lock()
		dead := h.health == hostDead
		h.mu.Unlock()
		if dead {
			if lastErr == nil {
				lastErr = fmt.Errorf("worker declared dead")
			}
			return lastErr
		}
		batch := d.next(r.opt.BatchSize, h.url)
		if batch == nil {
			return lastErr
		}
		sent := time.Now()
		d.markInflight(batch, h.url)
		accs, err := r.post(ctx, h.url, req, batch)
		if err == nil {
			h.noteSuccess()
			h.observeBatch("json", sent, len(batch))
			d.complete(batch, accs)
			continue
		}
		lastErr = err
		var fatal *fatalStatusError
		if errors.As(err, &fatal) {
			// A protocol-level rejection is this worker's problem — a
			// version-skewed binary missing the kernel, or some other
			// service squatting on the address. Abandon the worker and
			// let the rest of the fleet take the batch; the run only
			// fails if every worker rejects it.
			d.requeue(batch, r.opt.MaxAttempts, h.url, err)
			r.markDead(h)
			return lastErr
		}
		// Transport failure: hand the batch back for the fleet and
		// decide whether this worker is still worth talking to.
		d.requeue(batch, r.opt.MaxAttempts, h.url, err)
		if r.countFailure(h) {
			return lastErr
		}
		sleepCtx(ctx, h.retryDelay())
	}
}

// post ships one shard batch to a worker and decodes the per-shard
// accumulator states, positionally matching indices.
func (r *Remote) post(ctx context.Context, host string, req montecarlo.Request, indices []int) ([][]montecarlo.Accumulator, error) {
	if r.opt.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opt.ShardTimeout)
		defer cancel()
	}
	job := ShardJob{Request: req, Proto: ProtoVersion, Indices: indices}
	body, err := json.Marshal(job)
	if err != nil {
		return nil, &fatalStatusError{msg: fmt.Sprintf("marshal job: %v", err)}
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, host+PathShards, bytes.NewReader(body))
	if err != nil {
		return nil, &fatalStatusError{msg: fmt.Sprintf("build request: %v", err)}
	}
	httpReq.Header.Set("Content-Type", "application/json")
	mBytesJSONTx.Add(int64(len(body)))
	resp, err := r.opt.Client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("post %s: %w", host, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &fatalStatusError{msg: fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))}
		}
		return nil, fmt.Errorf("post %s: %s: %s", host, resp.Status, strings.TrimSpace(string(msg)))
	}
	cr := &countingReader{r: resp.Body}
	var sr ShardResponse
	err = json.NewDecoder(cr).Decode(&sr)
	mBytesJSONRx.Add(cr.n)
	if err != nil {
		return nil, fmt.Errorf("decode response from %s: %w", host, err)
	}
	if sr.Proto != ProtoVersion {
		// A pre-versioning worker decodes current jobs but ignores the
		// fields it does not know (sampler, shard range) — its answers
		// would be silently wrong, so its missing/old echo is fatal.
		return nil, &fatalStatusError{msg: fmt.Sprintf(
			"worker %s speaks shard protocol %d, this coordinator %d (mixed-version fleet?)", host, sr.Proto, ProtoVersion)}
	}
	if len(sr.Results) != len(indices) {
		return nil, fmt.Errorf("worker %s returned %d results for %d shards", host, len(sr.Results), len(indices))
	}
	accs := make([][]montecarlo.Accumulator, len(indices))
	for i, res := range sr.Results {
		if res.Index != indices[i] {
			return nil, fmt.Errorf("worker %s returned shard %d at position %d (want %d)", host, res.Index, i, indices[i])
		}
		if len(res.Accs) != req.Dim {
			return nil, fmt.Errorf("worker %s returned %d components for shard %d (want %d)", host, len(res.Accs), res.Index, req.Dim)
		}
		accs[i] = make([]montecarlo.Accumulator, req.Dim)
		for j, st := range res.Accs {
			accs[i][j] = montecarlo.FromState(st)
		}
	}
	return accs, nil
}
