package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carriersense/internal/montecarlo"
)

// The wire protocol version guard: a mixed-version fleet must fail
// loudly in both directions, never silently mis-serve (an old worker
// ignores the sampler/shard-range fields and would return cleanly
// merging but wrong accumulators).

func TestWorkerRejectsWrongProtocolVersion(t *testing.T) {
	job := ShardJob{
		Request: montecarlo.Request{Kernel: "core/single", Seed: 1, Samples: montecarlo.ShardSize, Dim: 1},
		Proto:   ProtoVersion - 1, // an old coordinator (or none at all: 0)
		Indices: []int{0},
	}
	if err := job.Validate(); err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Errorf("Validate accepted protocol version %d: %v", job.Proto, err)
	}
	job.Proto = ProtoVersion
	if err := job.Validate(); err != nil {
		t.Errorf("Validate rejected the current protocol version: %v", err)
	}
}

func TestCoordinatorRejectsPreVersioningWorker(t *testing.T) {
	// A pre-versioning worker evaluates the job but echoes no proto
	// field. Simulate it: strip the proto from a real server's answer.
	inner := NewServer()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		var raw map[string]json.RawMessage
		if rec.Code == http.StatusOK && json.Unmarshal(rec.Body.Bytes(), &raw) == nil {
			delete(raw, "proto")
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(raw)
			return
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
	}))
	defer srv.Close()

	remote, err := NewRemote([]string{strings.TrimPrefix(srv.URL, "http://")})
	if err != nil {
		t.Fatal(err)
	}
	_, err = remote.EstimateVec(context.Background(), montecarlo.Request{
		Kernel: "core/single", Seed: 1, Samples: montecarlo.ShardSize, Dim: 1,
		Params: json.RawMessage(`{"env":{"alpha":3,"noise_db":-96,"capacity":{"kind":"shannon"}},"rmax":20,"d":1}`),
	})
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Errorf("coordinator accepted a worker with no protocol echo: %v", err)
	}
}
