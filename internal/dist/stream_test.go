package dist

// Binary shard stream tests: wire negotiation on mixed fleets, the
// determinism contract on the framed wire, loud failure on corrupt
// frames, mid-run worker death on persistent connections, shard
// timeouts, and graceful drain. These live in the internal package so
// misbehaving workers can be built straight from the frame codec.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"carriersense/internal/montecarlo"
)

// streamTestRequest builds a request against the dist-test/vec kernel
// (registered by the external test package's init; both test packages
// link into one binary).
func streamTestRequest(samples int) montecarlo.Request {
	return montecarlo.Request{
		Kernel: "dist-test/vec", Params: json.RawMessage(`{"scale":2.5}`),
		Seed: 424242, Samples: samples, Dim: 3,
	}
}

func localWant(t *testing.T, req montecarlo.Request) []montecarlo.Estimate {
	t.Helper()
	accs, err := Local{}.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return toEstimates(accs)
}

func toEstimates(accs []montecarlo.Accumulator) []montecarlo.Estimate {
	out := make([]montecarlo.Estimate, len(accs))
	for i := range accs {
		out[i] = accs[i].Estimate()
	}
	return out
}

func requireIdentical(t *testing.T, got []montecarlo.Accumulator, want []montecarlo.Estimate, label string) {
	t.Helper()
	for j, e := range toEstimates(got) {
		if e != want[j] {
			t.Errorf("%s: component %d: %+v != local %+v", label, j, e, want[j])
		}
	}
}

// workerStats GETs a worker's /stats.
func workerStats(t *testing.T, host string) Stats {
	t.Helper()
	resp, err := http.Get("http://" + host + PathStats)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// startWorker boots one full worker and returns its host:port.
func startWorker(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(NewServer())
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// startJSONOnlyWorker boots a worker that predates the stream
// protocol: PathStream 404s, everything else is a current worker.
func startJSONOnlyWorker(t *testing.T) string {
	t.Helper()
	inner := NewServer()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathStream {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// startFrameWorker boots a worker whose stream endpoint hands the
// upgraded connection to serve; all other paths behave like a current
// worker. Used to build misbehaving peers.
func startFrameWorker(t *testing.T, serve func(ss *streamSession)) string {
	t.Helper()
	inner := NewServer()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathStream {
			inner.ServeHTTP(w, r)
			return
		}
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer conn.Close()
		ss := &streamSession{conn: conn, br: buf.Reader, bw: bufio.NewWriter(conn)}
		fmt.Fprintf(ss.bw, "HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n", streamUpgrade)
		if ss.bw.Flush() != nil {
			return
		}
		serve(ss)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// helloExchange performs the worker half of the handshake.
func helloExchange(ss *streamSession, scratch *[]byte) error {
	t, payload, err := readFrame(ss.br, scratch)
	if err != nil || t != frameHello {
		return fmt.Errorf("no hello: %v", err)
	}
	if _, err := decodeHello(payload); err != nil {
		return err
	}
	if err := writeFrame(ss.bw, frameHello, encodeHello()); err != nil {
		return err
	}
	return ss.bw.Flush()
}

func TestBinaryWireCarriesTheRunAndStaysBitIdentical(t *testing.T) {
	req := streamTestRequest(6*montecarlo.ShardSize + 77)
	want := localWant(t, req)
	hosts := []string{startWorker(t), startWorker(t)}
	remote, err := NewRemote(hosts, RemoteOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, accs, want, "binary wire")

	var streams, streamBatches, shards int64
	for _, h := range hosts {
		st := workerStats(t, h)
		streams += st.Streams
		streamBatches += st.StreamBatches
		shards += st.Shards
		if st.Requests != st.StreamBatches {
			t.Errorf("worker %s: %d requests but %d stream batches — some work fell back to JSON", h, st.Requests, st.StreamBatches)
		}
	}
	if streams == 0 || streamBatches == 0 {
		t.Fatalf("no stream traffic recorded (streams=%d batches=%d); the binary wire was never used", streams, streamBatches)
	}
	if wantShards := int64(montecarlo.ShardCount(req.Samples)); shards != wantShards {
		t.Errorf("fleet evaluated %d shards, plan has %d", shards, wantShards)
	}
}

func TestStreamsPersistAcrossEstimations(t *testing.T) {
	host := startWorker(t)
	remote, err := NewRemote([]string{host}, RemoteOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := streamTestRequest(3 * montecarlo.ShardSize)
	for i := 0; i < 3; i++ {
		if _, err := remote.EstimateVec(context.Background(), req); err != nil {
			t.Fatalf("estimation %d: %v", i, err)
		}
	}
	if st := workerStats(t, host); st.Streams != 1 {
		t.Errorf("3 estimations opened %d streams; want 1 pooled connection", st.Streams)
	}
}

func TestJSONOnlyWorkerNegotiatesDown(t *testing.T) {
	req := streamTestRequest(4*montecarlo.ShardSize + 9)
	want := localWant(t, req)
	host := startJSONOnlyWorker(t)
	remote, err := NewRemote([]string{host})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run against a JSON-only worker failed instead of negotiating down: %v", err)
	}
	requireIdentical(t, accs, want, "negotiated-down wire")
	st := workerStats(t, host)
	if st.Streams != 0 {
		t.Errorf("JSON-only worker reports %d streams", st.Streams)
	}
	if wantShards := int64(montecarlo.ShardCount(req.Samples)); st.Shards != wantShards {
		t.Errorf("worker evaluated %d shards over JSON, plan has %d", st.Shards, wantShards)
	}
}

func TestMixedWireFleetStaysBitIdentical(t *testing.T) {
	req := streamTestRequest(8 * montecarlo.ShardSize)
	want := localWant(t, req)
	binHost, jsonHost := startWorker(t), startJSONOnlyWorker(t)
	remote, err := NewRemote([]string{binHost, jsonHost}, RemoteOptions{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("mixed-wire fleet failed: %v", err)
	}
	requireIdentical(t, accs, want, "mixed-wire fleet")
	binStats, jsonStats := workerStats(t, binHost), workerStats(t, jsonHost)
	if jsonStats.Streams != 0 {
		t.Errorf("JSON-only worker reports %d streams", jsonStats.Streams)
	}
	if total, plan := binStats.Shards+jsonStats.Shards, int64(montecarlo.ShardCount(req.Samples)); total != plan {
		t.Errorf("fleet evaluated %d shards, plan has %d (negotiation lost or duplicated work)", total, plan)
	}
}

func TestWireBinaryAbandonsJSONOnlyWorker(t *testing.T) {
	req := streamTestRequest(4 * montecarlo.ShardSize)
	want := localWant(t, req)
	binHost, jsonHost := startWorker(t), startJSONOnlyWorker(t)
	remote, err := NewRemote([]string{binHost, jsonHost}, RemoteOptions{Wire: WireBinary})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("-wire binary with one capable worker failed: %v", err)
	}
	requireIdentical(t, accs, want, "wire=binary")
	if st := workerStats(t, jsonHost); st.Shards != 0 {
		t.Errorf("JSON-only worker evaluated %d shards under -wire binary", st.Shards)
	}

	// An all-JSON fleet under -wire binary must fail, not degrade.
	lonely, err := NewRemote([]string{startJSONOnlyWorker(t)}, RemoteOptions{Wire: WireBinary})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lonely.EstimateVec(context.Background(), req); err == nil {
		t.Fatal("-wire binary against a JSON-only fleet succeeded; want loud failure")
	}
}

func TestCorruptResultFrameFailsLoudlyNamingTheWorker(t *testing.T) {
	host := startFrameWorker(t, func(ss *streamSession) {
		var scratch []byte
		if helloExchange(ss, &scratch) != nil {
			return
		}
		for {
			t, _, err := readFrame(ss.br, &scratch)
			if err != nil {
				return
			}
			if t != frameBatch {
				continue // request frames carry no reply
			}
			// Answer the batch with garbage: a result frame whose payload
			// cannot possibly parse.
			_ = writeFrame(ss.bw, frameResult, []byte{0xde, 0xad, 0xbe, 0xef})
			_ = ss.bw.Flush()
		}
	})
	remote, err := NewRemote([]string{host}, RemoteOptions{HostFailLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = remote.EstimateVec(context.Background(), streamTestRequest(2*montecarlo.ShardSize))
	if err == nil {
		t.Fatal("run over a corrupt stream succeeded")
	}
	if !strings.Contains(err.Error(), host) {
		t.Errorf("corrupt-frame error does not name the offending worker %s: %v", host, err)
	}
}

func TestTruncatedFrameFailsLoudly(t *testing.T) {
	host := startFrameWorker(t, func(ss *streamSession) {
		var scratch []byte
		if helloExchange(ss, &scratch) != nil {
			return
		}
		for {
			t, _, err := readFrame(ss.br, &scratch)
			if err != nil {
				return
			}
			if t != frameBatch {
				continue
			}
			// Claim a large payload, deliver a few bytes, hang up: the
			// coordinator must read this as a truncated frame.
			var hdr [5]byte
			hdr[0] = 0xff
			hdr[1] = 0x01
			hdr[4] = byte(frameResult)
			ss.bw.Write(hdr[:])
			ss.bw.Write([]byte{1, 2, 3})
			ss.bw.Flush()
			ss.conn.Close()
			return
		}
	})
	remote, err := NewRemote([]string{host}, RemoteOptions{HostFailLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = remote.EstimateVec(context.Background(), streamTestRequest(montecarlo.ShardSize))
	if err == nil {
		t.Fatal("run over a truncating stream succeeded")
	}
	if !strings.Contains(err.Error(), host) {
		t.Errorf("truncated-frame error does not name the worker %s: %v", host, err)
	}
}

func TestBinaryWorkerDiesMidRunFleetSurvives(t *testing.T) {
	req := streamTestRequest(9 * montecarlo.ShardSize)
	want := localWant(t, req)

	// A worker that answers `survives` batch frames correctly — real
	// evaluations, so its delivered work must merge bit-identically —
	// then drops every connection, dead for good.
	var served atomic.Int64
	const survives = 2
	flakyHost := startFrameWorker(t, func(ss *streamSession) {
		var scratch []byte
		if helloExchange(ss, &scratch) != nil {
			return
		}
		reqs := map[uint32]montecarlo.Request{}
		for {
			t, payload, err := readFrame(ss.br, &scratch)
			if err != nil {
				return
			}
			switch t {
			case frameRequest:
				id, r, err := decodeRequest(payload)
				if err != nil {
					return
				}
				reqs[id] = r
			case frameBatch:
				if served.Add(1) > survives {
					return // the deferred close severs the conn mid-batch
				}
				id, indices, err := decodeBatch(payload)
				if err != nil {
					return
				}
				r := reqs[id]
				accs, err := montecarlo.EvaluateShards(r, indices)
				if err != nil {
					return
				}
				if writeFrame(ss.bw, frameResult, encodeResult(id, r.Dim, indices, accs)) != nil {
					return
				}
				if ss.bw.Flush() != nil {
					return
				}
			default:
				return
			}
		}
	})
	hosts := []string{startWorker(t), flakyHost}
	remote, err := NewRemote(hosts, RemoteOptions{BatchSize: 1, Concurrency: 1, HostFailLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run with mid-stream worker death failed: %v", err)
	}
	if served.Load() <= survives {
		t.Fatalf("flaky worker saw %d batches; the death path was never exercised", served.Load())
	}
	requireIdentical(t, accs, want, "binary wire after mid-run death")
}

func TestShardTimeoutRedispatchesToSurvivors(t *testing.T) {
	req := streamTestRequest(5 * montecarlo.ShardSize)
	want := localWant(t, req)

	// A black hole: accepts batches, never answers them.
	var swallowed atomic.Int64
	holeHost := startFrameWorker(t, func(ss *streamSession) {
		var scratch []byte
		if helloExchange(ss, &scratch) != nil {
			return
		}
		for {
			t, _, err := readFrame(ss.br, &scratch)
			if err != nil {
				return
			}
			if t == frameBatch {
				swallowed.Add(1)
			}
		}
	})
	hosts := []string{startWorker(t), holeHost}
	remote, err := NewRemote(hosts, RemoteOptions{
		BatchSize: 1, Concurrency: 1, HostFailLimit: 2,
		ShardTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	accs, err := remote.EstimateVec(context.Background(), req)
	if err != nil {
		t.Fatalf("run with a black-hole worker failed: %v", err)
	}
	if swallowed.Load() == 0 {
		t.Fatal("black hole never swallowed a batch; timeout path not exercised")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("run took %v; shard timeout did not re-dispatch promptly", elapsed)
	}
	requireIdentical(t, accs, want, "after shard-timeout re-dispatch")
}

func TestServeDrainsStreamsWithGoodbye(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, "127.0.0.1:0", ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-serveErr:
		t.Fatalf("Serve exited before ready: %v", err)
	}

	sc, err := dialStream(context.Background(), "http://"+addr.String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial stream: %v", err)
	}
	defer sc.close()
	req := streamTestRequest(2 * montecarlo.ShardSize)
	id, err := sc.sendRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.sendBatch(id, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	sc.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	ft, payload, err := readFrame(sc.br, &sc.scratch)
	if err != nil || ft != frameResult {
		t.Fatalf("want result frame before drain, got %v frame, err %v", ft, err)
	}
	if _, _, err := decodeResult(payload, []int{0, 1}, req.Dim); err != nil {
		t.Fatalf("pre-drain result corrupt: %v", err)
	}

	cancel() // SIGINT equivalent: the worker must drain, not vanish
	ft, _, err = readFrame(sc.br, &sc.scratch)
	if err != nil || ft != frameGoodbye {
		t.Fatalf("want goodbye frame on drain, got %v frame, err %v", ft, err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful drain; want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

func TestParseWire(t *testing.T) {
	cases := map[string]Wire{"": WireAuto, "auto": WireAuto, "json": WireJSON, "binary": WireBinary}
	for in, want := range cases {
		got, err := ParseWire(in)
		if err != nil || got != want {
			t.Errorf("ParseWire(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseWire("carrier-pigeon"); err == nil {
		t.Error("ParseWire accepted nonsense")
	}
}

func TestBatchFrameRoundTripCompressesRanges(t *testing.T) {
	indices := []int{3, 4, 5, 6, 9, 11, 12}
	payload := encodeBatch(7, indices)
	// 3 runs: [3,+4) [9,+1) [11,+2) → 8-byte header + 3×8 bytes.
	if len(payload) != 8+3*8 {
		t.Errorf("batch payload is %d bytes; want %d (3 ranges)", len(payload), 8+3*8)
	}
	id, got, err := decodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Errorf("round-tripped id %d, want 7", id)
	}
	if fmt.Sprint(got) != fmt.Sprint(indices) {
		t.Errorf("round-tripped indices %v, want %v", got, indices)
	}
}
