package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-3)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", Label{"worker", "w1"})
	b := r.Counter("dup_total", "h", Label{"worker", "w1"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("dup_total", "h", Label{"worker", "w2"})
	if a == other {
		t.Fatal("different label value returned the same counter")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lbl_total", "h", Label{"b", "2"}, Label{"a", "1"})
	b := r.Counter("lbl_total", "h", Label{"a", "1"}, Label{"b", "2"})
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kind_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("kind_total", "h")
}

func TestKindMismatchAcrossLabelSetsPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kind2_total", "h", Label{"x", "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: same name, different kind, different labels")
		}
	}()
	r.Gauge("kind2_total", "h", Label{"x", "2"})
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	r.Counter("9bad-name", "h")
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "h", []float64{0.1, 1, 10})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	// 10 observations in (0.1, 1]: the median interpolates to the
	// middle of that bucket, and every quantile stays inside it.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got != 0.1+(1-0.1)*0.5 {
		t.Fatalf("p50 = %g, want mid-bucket 0.55", got)
	}
	if lo, hi := h.Quantile(0.01), h.Quantile(0.99); lo <= 0.1 || hi > 1 {
		t.Fatalf("quantiles escaped the occupied bucket: p1=%g p99=%g", lo, hi)
	}
	// Mass beyond the last finite bound reports that bound.
	h2 := r.Histogram("q2_seconds", "h", []float64{0.1, 1})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %g, want last finite bound 1", got)
	}
	// Clamping.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("def_seconds", "h", nil)
	h.Observe(0.003)
	if h.Count() != 1 {
		t.Fatal("default-bucket histogram dropped an observation")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing bounds")
		}
	}()
	r.Histogram("bad_seconds", "h", []float64{1, 1})
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("uptime_seconds", "h", func() float64 { return 42.5 })
	snap := r.Snapshot()
	if snap["uptime_seconds"] != 42.5 {
		t.Fatalf("gauge func snapshot = %g, want 42.5", snap["uptime_seconds"])
	}
}

func TestWritePrometheusParsesWithCheckText(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrape_total", "requests served", Label{"worker", "http://a:1"}).Add(3)
	r.Counter("scrape_total", "requests served", Label{"worker", "http://b:2"}).Add(7)
	r.Gauge("scrape_inflight", "in flight").Set(2)
	r.GaugeFunc("scrape_uptime_seconds", "uptime", func() float64 { return 1.25 })
	h := r.Histogram("scrape_seconds", "latency", nil, Label{"worker", "http://a:1"})
	h.Observe(0.2)
	h.Observe(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := CheckText(b.String())
	if err != nil {
		t.Fatalf("CheckText rejected our own exposition: %v\n%s", err, b.String())
	}
	if v, ok := parsed.Value(`scrape_total{worker="http://a:1"}`); !ok || v != 3 {
		t.Fatalf("parsed scrape_total{a} = %g ok=%v, want 3", v, ok)
	}
	if v, ok := parsed.Value(`scrape_seconds_count{worker="http://a:1"}`); !ok || v != 2 {
		t.Fatalf("parsed histogram count = %g ok=%v, want 2", v, ok)
	}
	if parsed.Types["scrape_total"] != "counter" || parsed.Types["scrape_seconds"] != "histogram" {
		t.Fatalf("TYPE lines wrong: %v", parsed.Types)
	}
}

func TestCheckTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"metric_without_value\n",
		"9bad_name 1\n",
		"# TYPE x bogus\nx 1\n",
		"dup 1\ndup 2\n",
		"# TYPE h histogram\nh_sum 1\nh_count 2\n", // no +Inf bucket
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n", // Inf != count
	}
	for _, text := range cases {
		if _, err := CheckText(text); err == nil {
			t.Errorf("CheckText accepted malformed input %q", text)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("delta_total", "h")
	c.Add(2)
	pre := r.Snapshot()
	c.Add(5)
	r.Counter("born_total", "h").Add(1)
	d := SnapshotDelta(pre, r.Snapshot())
	if d["delta_total"] != 5 {
		t.Fatalf("delta = %g, want 5", d["delta_total"])
	}
	if d["born_total"] != 1 {
		t.Fatalf("born metric delta = %g, want 1", d["born_total"])
	}
}

func TestSumByPrefix(t *testing.T) {
	snap := map[string]float64{
		`batch_seconds_sum{worker="a"}`: 1.5,
		`batch_seconds_sum{worker="b"}`: 2.5,
		`batch_seconds_summary`:         100, // different family, must not match
		`batch_seconds_sum`:             4,
	}
	if got := SumByPrefix(snap, "batch_seconds_sum"); got != 8 {
		t.Fatalf("SumByPrefix = %g, want 8", got)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if _, err := CheckText(rec.Body.String()); err != nil {
		t.Fatalf("handler output unparseable: %v", err)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "h")
	h := r.Histogram("race_seconds", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001 * float64(j%10))
				// Registration races with observation — must be safe.
				r.Counter("race_total", "h")
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_gauge", "h")
	h := r.Histogram("alloc_seconds", "h", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.004)
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f per op, want 0", n)
	}
}

func TestTracerSpansAndInstants(t *testing.T) {
	tr := NewTracer()
	start := tr.Now()
	time.Sleep(time.Millisecond)
	tr.Span("eval", "mc", TidLocalBase, start, map[string]any{"shard": 3})
	tr.Instant("retry", "dist", TidRemoteBase, nil)
	tr.NameThread(TidEngine, "engine")
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"traceEvents"`, `"name":"eval"`, `"ph":"X"`, `"ph":"i"`,
		`"thread_name"`, `"shard":3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace JSON missing %q:\n%s", want, out)
		}
	}
}

func TestTracerCapDropsCounted(t *testing.T) {
	tr := NewTracerCap(2)
	for i := 0; i < 5; i++ {
		tr.Instant("x", "t", 1, nil)
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"dropped_events":3`) {
		t.Fatalf("metadata missing dropped_events:\n%s", b.String())
	}
}

func TestGlobalTracerInstall(t *testing.T) {
	if TraceEnabled() {
		t.Fatal("tracer enabled at test start")
	}
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)
	if !TraceEnabled() || CurrentTracer() != tr {
		t.Fatal("SetTracer did not install")
	}
	SetTracer(nil)
	if TraceEnabled() {
		t.Fatal("SetTracer(nil) did not uninstall")
	}
}

func TestDefaultRegistrySingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() not a singleton")
	}
}

// SnapshotDelta feeds per-variant manifest/metrics.json data while
// other goroutines keep the registry hot. Deltas taken mid-churn must
// be internally consistent: non-negative for monotone series, and the
// sum of deltas across disjoint snapshot windows must equal the total
// movement once the writers stop.
func TestSnapshotDeltaConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("churn_total", "h")
	h := r.Histogram("churn_seconds", "h", nil)
	const writers, increments = 8, 5000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < increments; i++ {
				c.Inc()
				h.Observe(0.001)
				if i%1000 == 0 {
					// New series born mid-window: SnapshotDelta must treat
					// an absent pre-key as zero, never as negative.
					r.Counter("born_total", "h", Label{"writer", string(rune('a' + w))}).Inc()
				}
			}
		}(w)
	}
	pre := r.SnapshotFlows()
	close(start)
	var windows []map[string]float64
	for i := 0; i < 50; i++ {
		post := r.SnapshotFlows()
		windows = append(windows, SnapshotDelta(pre, post))
		pre = post
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	windows = append(windows, SnapshotDelta(pre, r.SnapshotFlows()))

	var counterSum, histCountSum float64
	for _, d := range windows {
		for k, v := range d {
			if v < 0 {
				t.Fatalf("negative delta %s = %g in a mid-churn window", k, v)
			}
			if v == 0 {
				t.Errorf("zero delta %s survived (SnapshotDelta must drop zeros)", k)
			}
		}
		counterSum += d["churn_total"]
		histCountSum += d["churn_seconds_count"]
	}
	if want := float64(writers * increments); counterSum != want {
		t.Fatalf("windowed counter deltas sum to %g, want %g", counterSum, want)
	}
	if want := float64(writers * increments); histCountSum != want {
		t.Fatalf("windowed histogram count deltas sum to %g, want %g", histCountSum, want)
	}
}
