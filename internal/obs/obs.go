// Package obs is the unified observability layer: a process-wide
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms) with Prometheus text exposition, plus a shard-lifecycle
// tracer (trace.go) emitting Chrome trace_event JSON.
//
// Design constraints, in order:
//
//  1. Observational inertness. Nothing here may influence what the
//     engine computes: metrics are write-only from the hot path's
//     point of view, and no instrumented package ever branches on a
//     metric value. Artifacts are byte-identical with observability
//     on or off.
//  2. Zero allocations on the hot path. Metric handles are resolved
//     once (package init or setup) and held; Add/Inc/Set/Observe are
//     plain atomic operations. The registry lock is only taken at
//     handle creation and scrape time.
//  3. No dependencies. The package imports only the standard library,
//     so every layer — montecarlo, dist, cache, sampling, engine —
//     can register metrics without import cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is not
// registered; obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Negative deltas are ignored —
// counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer-valued metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc and Dec move the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64frombits(old) + v
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// DefBuckets are the default latency buckets, in seconds: 100µs up to
// two minutes, roughly logarithmic. They cover everything from one
// in-process shard evaluation (~100µs at ShardSize=4096) to a
// `-scale full` sim replication batch over a slow wire.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket distribution. Observations are atomic;
// bucket bounds are immutable after creation. It is exported in the
// standard Prometheus cumulative form (_bucket{le=...}, _sum, _count).
type Histogram struct {
	bounds []float64      // upper bounds, strictly increasing
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are ~20 and the common observations
	// land in the first half; this beats sort.SearchFloat64s's call
	// overhead and allocates nothing.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-th quantile of the observed distribution
// by walking the cumulative bucket counts and interpolating linearly
// inside the bucket where the target rank lands — the same estimate a
// Prometheus histogram_quantile() would give over one scrape. Mass in
// the +Inf bucket reports the largest finite bound (the histogram
// cannot see past it). Returns 0 with no observations; q is clamped
// to [0, 1]. Concurrent Observe calls make the walk a snapshot, which
// is all its consumers (hedging thresholds) need.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= target {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return bound
			}
			return lower + (bound-lower)*((target-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one metric dimension. Labels are rendered sorted by key, so
// the same set in any order names the same series.
type Label struct {
	Key, Value string
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered series.
type metric struct {
	name   string
	labels string // pre-rendered {k="v",...}, "" when unlabeled
	help   string
	kind   metricKind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() float64
}

// Registry holds named metrics and renders them as Prometheus text.
// Handle creation is idempotent: asking twice for the same name and
// label set returns the same handle, so package-level registration and
// repeated setup paths (tests, multiple Remote executors over one
// fleet) compose without double-registration errors.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	kinds   map[string]metricKind // name → kind, enforced across label sets
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}, kinds: map[string]metricKind{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// registers into — the one `cs serve` and `-metrics-listen` expose.
func Default() *Registry { return defaultRegistry }

// validName matches the Prometheus metric and label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels renders a sorted, escaped {k="v",...} suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register resolves or creates the series for (name, labels). make is
// called with the lock held when the series does not exist yet.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, make func(*metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	suffix := renderLabels(labels)
	key := name + suffix
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byKey[key]; ok {
		if existing.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", key, kind, existing.kind))
		}
		return existing
	}
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric name %q used as both %s and %s", name, prev, kind))
	}
	m := &metric{name: name, labels: suffix, help: help, kind: kind}
	make(m)
	r.byKey[key] = m
	r.kinds[name] = kind
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns the counter registered under name and labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels, func(m *metric) { m.c = &Counter{} })
	return m.c
}

// Gauge returns the gauge registered under name and labels, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels, func(m *metric) { m.g = &Gauge{} })
	return m.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// (process uptime, pool sizes). The first registration's fn wins; fn
// must not touch the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic("obs: nil GaugeFunc")
	}
	r.register(name, help, kindGaugeFunc, labels, func(m *metric) { m.fn = fn })
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use. bounds must be strictly increasing; nil
// selects DefBuckets. Bounds are fixed by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, labels, func(m *metric) {
		if bounds == nil {
			bounds = DefBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing: %v", name, bounds))
			}
		}
		m.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	})
	return m.h
}

// snapshotMetrics copies the metric list under the lock; values are
// read lock-free afterwards (GaugeFuncs may be arbitrarily slow and
// must never be called with the registry lock held).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every series in the Prometheus text format
// (version 0.0.4), grouped by family with one HELP/TYPE header each,
// sorted by name then label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.snapshotMetrics()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	var b strings.Builder
	lastFamily := ""
	for _, m := range ms {
		if m.name != lastFamily {
			lastFamily = m.name
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, m.g.Value())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s%s %s\n", m.name, m.labels, formatFloat(m.fn()))
		case kindHistogram:
			writeHistogram(&b, m)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series in cumulative form.
func writeHistogram(b *strings.Builder, m *metric) {
	// The le label joins any existing labels inside one brace pair.
	open, close := "{", "}"
	if m.labels != "" {
		open = m.labels[:len(m.labels)-1] + ","
	}
	var cum int64
	for i, bound := range m.h.bounds {
		cum += m.h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=\"%s\"%s %d\n", m.name, open, formatFloat(bound), close, cum)
	}
	cum += m.h.counts[len(m.h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"%s %d\n", m.name, open, close, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", m.name, m.labels, formatFloat(m.h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", m.name, m.labels, m.h.Count())
}

// Snapshot captures every series value keyed by name+labels.
// Histograms contribute <name>_sum and <name>_count entries. Deltas
// between two snapshots are how the engine attributes per-variant
// stage timings without per-variant metric plumbing.
func (r *Registry) Snapshot() map[string]float64 {
	ms := r.snapshotMetrics()
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		switch m.kind {
		case kindCounter:
			out[m.name+m.labels] = float64(m.c.Value())
		case kindGauge:
			out[m.name+m.labels] = float64(m.g.Value())
		case kindGaugeFunc:
			out[m.name+m.labels] = m.fn()
		case kindHistogram:
			out[m.name+"_sum"+m.labels] = m.h.Sum()
			out[m.name+"_count"+m.labels] = float64(m.h.Count())
		}
	}
	return out
}

// SnapshotFlows is Snapshot restricted to monotone series — counters
// and histogram sums/counts. Gauges and gauge funcs are levels
// (in-flight batches, uptime); a delta between two of their readings
// is noise, so flow snapshots are what the engine diffs to attribute
// per-variant stage timings.
func (r *Registry) SnapshotFlows() map[string]float64 {
	ms := r.snapshotMetrics()
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		switch m.kind {
		case kindCounter:
			out[m.name+m.labels] = float64(m.c.Value())
		case kindHistogram:
			out[m.name+"_sum"+m.labels] = m.h.Sum()
			out[m.name+"_count"+m.labels] = float64(m.h.Count())
		}
	}
	return out
}

// SnapshotDelta returns post minus pre, per key, dropping zero deltas.
// Keys only present in post (metrics born between the snapshots) count
// from zero.
func SnapshotDelta(pre, post map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range post {
		if d := v - pre[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// SumByPrefix sums every value in a snapshot (or delta) whose key
// starts with prefix — e.g. all workers' cs_dist_batch_seconds_sum
// series regardless of label.
func SumByPrefix(snap map[string]float64, prefix string) float64 {
	var total float64
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) && (len(k) == len(prefix) || k[len(prefix)] == '{') {
			total += v
		}
	}
	return total
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it on /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
