package obs

// CheckText is a minimal Prometheus text-format (0.0.4) validator
// used by the scrape tests and the smoke script: it verifies the
// comment grammar, sample-line shape, TYPE consistency, and that
// histogram families carry coherent _bucket/_sum/_count series. It is
// deliberately a parser of the format, not of this package's output,
// so it would catch exposition bugs rather than mirror them.

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsedMetrics maps each sample's full series name (name plus
// rendered label set, exactly as exposed) to its value.
type ParsedMetrics struct {
	Samples map[string]float64
	Types   map[string]string // family name → TYPE
}

// Value returns the sample for an exact series key.
func (p *ParsedMetrics) Value(series string) (float64, bool) {
	v, ok := p.Samples[series]
	return v, ok
}

// CheckText parses a Prometheus text exposition and returns the
// samples, or an error describing the first malformed line.
func CheckText(text string) (*ParsedMetrics, error) {
	p := &ParsedMetrics{Samples: map[string]float64{}, Types: map[string]string{}}
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := p.comment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := p.sample(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := p.checkHistograms(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *ParsedMetrics) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %q", typ, name)
		}
		if prev, ok := p.Types[name]; ok && prev != typ {
			return fmt.Errorf("metric %q declared both %s and %s", name, prev, typ)
		}
		p.Types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	}
	return nil
}

// sample parses `name{labels} value` or `name value`.
func (p *ParsedMetrics) sample(line string) error {
	series, valueStr, err := splitSample(line)
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil && valueStr != "+Inf" && valueStr != "-Inf" && valueStr != "NaN" {
		return fmt.Errorf("bad sample value %q in %q", valueStr, line)
	}
	if _, dup := p.Samples[series]; dup {
		return fmt.Errorf("duplicate series %q", series)
	}
	p.Samples[series] = v
	return nil
}

// splitSample separates the series (respecting quoted label values
// that may contain spaces) from the value.
func splitSample(line string) (series, value string, err error) {
	inQuotes := false
	esc := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && inQuotes:
			esc = true
		case c == '"':
			inQuotes = !inQuotes
		case c == ' ' && !inQuotes:
			series, rest := line[:i], strings.TrimSpace(line[i+1:])
			if series == "" || rest == "" {
				return "", "", fmt.Errorf("malformed sample line %q", line)
			}
			// Value may be followed by an optional timestamp.
			if j := strings.IndexByte(rest, ' '); j >= 0 {
				rest = rest[:j]
			}
			if err := checkSeriesName(series); err != nil {
				return "", "", err
			}
			return series, rest, nil
		}
	}
	return "", "", fmt.Errorf("sample line %q has no value", line)
}

func checkSeriesName(series string) error {
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return fmt.Errorf("unterminated label set in %q", series)
		}
		name = series[:i]
	}
	if !validName(name) {
		return fmt.Errorf("invalid metric name in series %q", series)
	}
	return nil
}

// checkHistograms verifies that every family declared histogram has
// _sum, _count, and at least one _bucket with a le="+Inf" bound whose
// cumulative count equals _count, per label set.
func (p *ParsedMetrics) checkHistograms() error {
	for name, typ := range p.Types {
		if typ != "histogram" {
			continue
		}
		counts := map[string]float64{} // non-le label suffix → _count
		infs := map[string]float64{}   // non-le label suffix → +Inf bucket
		for series, v := range p.Samples {
			switch {
			case matchesFamily(series, name+"_count"):
				counts[labelsOf(series)] = v
			case matchesFamily(series, name+"_bucket"):
				labels := labelsOf(series)
				if le, rest, ok := extractLe(labels); ok && le == "+Inf" {
					infs[rest] = v
				}
			}
		}
		if len(counts) == 0 {
			return fmt.Errorf("histogram %q has no _count series", name)
		}
		for labels, c := range counts {
			inf, ok := infs[labels]
			if !ok {
				return fmt.Errorf("histogram %q%s has no le=\"+Inf\" bucket", name, labels)
			}
			if inf != c {
				return fmt.Errorf("histogram %q%s: +Inf bucket %g != count %g", name, labels, inf, c)
			}
			if _, ok := p.Samples[name+"_sum"+labels]; !ok {
				return fmt.Errorf("histogram %q%s has no _sum series", name, labels)
			}
		}
	}
	return nil
}

func matchesFamily(series, family string) bool {
	if !strings.HasPrefix(series, family) {
		return false
	}
	rest := series[len(family):]
	return rest == "" || rest[0] == '{'
}

func labelsOf(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[i:]
	}
	return ""
}

// extractLe removes the le label from a rendered label set, returning
// its value and the remaining labels rendered canonically.
func extractLe(labels string) (le, rest string, ok bool) {
	if labels == "" {
		return "", "", false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := splitLabels(body)
	kept := make([]string, 0, len(parts))
	for _, part := range parts {
		if strings.HasPrefix(part, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
			ok = true
			continue
		}
		kept = append(kept, part)
	}
	if len(kept) == 0 {
		return le, "", ok
	}
	return le, "{" + strings.Join(kept, ",") + "}", ok
}

// splitLabels splits k="v" pairs on commas outside quotes.
func splitLabels(body string) []string {
	var parts []string
	start, inQuotes, esc := 0, false, false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && inQuotes:
			esc = true
		case c == '"':
			inQuotes = !inQuotes
		case c == ',' && !inQuotes:
			parts = append(parts, body[start:i])
			start = i + 1
		}
	}
	if start < len(body) {
		parts = append(parts, body[start:])
	}
	return parts
}
