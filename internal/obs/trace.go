package obs

// Shard-lifecycle tracing in the Chrome trace_event JSON format —
// the file written by `cs run -trace F` opens directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Events are complete spans
// (ph "X") and instants (ph "i") on named threads: tid 1 is the
// engine, tids 10+ are local pool workers, tids 100+ are remote
// workers. The tracer is globally installed (SetTracer) so every
// layer can emit without plumbing; when no tracer is installed the
// per-event cost is one atomic pointer load, and instrumentation
// sites guard their argument-map construction behind that check so
// the disabled path allocates nothing.

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one entry in the traceEvents array. Timestamps and
// durations are microseconds, per the trace_event spec.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Well-known tracer thread IDs. Local pool workers use TidLocalBase+w,
// remote workers TidRemoteBase+i in fleet order. TidServer is the
// worker-process lane: `cs serve -trace` records every shard batch it
// evaluates there, the other end of the coordinator's dispatch spans.
const (
	TidEngine     = 1
	TidServer     = 2
	TidLocalBase  = 10
	TidRemoteBase = 100
)

// DefaultTraceCap bounds the event buffer: a runaway -relerr run can
// evaluate hundreds of thousands of shards, and an unbounded trace of
// that would exhaust memory before it exhausted patience. Dropped
// events are counted and reported in the trace metadata.
const DefaultTraceCap = 1 << 20

// Tracer collects trace events into a bounded in-memory buffer.
type Tracer struct {
	start   time.Time
	cap     int
	mu      sync.Mutex
	events  []TraceEvent
	threads map[int]string
	dropped int64
}

// NewTracer returns a tracer with the default event cap.
func NewTracer() *Tracer { return NewTracerCap(DefaultTraceCap) }

// NewTracerCap returns a tracer holding at most cap events.
func NewTracerCap(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{start: time.Now(), cap: cap, threads: map[int]string{}}
}

// Now returns the tracer-relative timestamp for the current instant.
// Span callers capture it before the work so the span's Ts precedes
// its Dur.
func (t *Tracer) Now() time.Duration { return time.Since(t.start) }

// Span records a completed slice of work that started at the
// tracer-relative instant `start` (from Now) and just finished.
func (t *Tracer) Span(name, cat string, tid int, start time.Duration, args map[string]any) {
	end := time.Since(t.start)
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: start.Microseconds(), Dur: dur.Microseconds(),
		Pid: 1, Tid: tid, Args: args,
	})
}

// Instant records a point event (a retry, a timeout, a worker death).
func (t *Tracer) Instant(name, cat string, tid int, args map[string]any) {
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "i",
		Ts:  time.Since(t.start).Microseconds(),
		Pid: 1, Tid: tid, Args: args,
	})
}

// NameThread labels a tid lane in the viewer ("engine", "worker
// http://host:port", ...). Idempotent; first name wins.
func (t *Tracer) NameThread(tid int, name string) {
	t.mu.Lock()
	if _, ok := t.threads[tid]; !ok {
		t.threads[tid] = name
	}
	t.mu.Unlock()
}

func (t *Tracer) add(ev TraceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceFile is the on-disk object format: Perfetto accepts either a
// bare array or this object form; the object form lets us attach
// metadata alongside the events.
type traceFile struct {
	TraceEvents []TraceEvent   `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// WriteJSON renders the buffered events as a trace_event JSON object.
// Thread-name metadata events are synthesized from NameThread calls.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	dropped := t.dropped
	tids := make([]int, 0, len(t.threads))
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	names := make(map[int]string, len(t.threads))
	for tid, name := range t.threads {
		names[tid] = name
	}
	t.mu.Unlock()

	// Metadata events (ph "M") give lanes human names in the viewer.
	meta := make([]TraceEvent, 0, len(tids))
	for tid, name := range names {
		meta = append(meta, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	// Deterministic order for the metadata block (map iteration isn't).
	for i := 0; i < len(meta); i++ {
		for j := i + 1; j < len(meta); j++ {
			if meta[j].Tid < meta[i].Tid {
				meta[i], meta[j] = meta[j], meta[i]
			}
		}
	}
	out := traceFile{TraceEvents: append(meta, events...)}
	if dropped > 0 {
		out.Metadata = map[string]any{"dropped_events": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// The globally installed tracer. A nil pointer means tracing is off;
// hot paths check TraceEnabled (one atomic load) before building any
// event arguments.
var globalTracer atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the global tracer.
func SetTracer(t *Tracer) { globalTracer.Store(t) }

// CurrentTracer returns the installed tracer, or nil when tracing is
// off. Callers must nil-check — and should build Span/Instant args
// only inside that check.
func CurrentTracer() *Tracer { return globalTracer.Load() }

// TraceEnabled reports whether a tracer is installed.
func TraceEnabled() bool { return globalTracer.Load() != nil }
