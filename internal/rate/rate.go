// Package rate provides bitrate adaptation algorithms for the packet
// simulator's MAC. The paper treats bitrate adaptation as "the single
// most important factor in performance under the MAC's control" and
// cites SampleRate [Bicket05] as a reasonable algorithm; §7 notes such
// algorithms reach the optimal rate but may take a while getting
// there. Implemented here:
//
//   - SampleRate: per-rate EWMA of average transmission time with
//     periodic probing of non-current rates, after Bicket's design.
//   - ARF: the classic success/failure counting scheme, as a simpler
//     baseline.
//
// The oracle rate selection the paper's experiments used — repeat the
// whole run at each rate, keep the best (§4) — is a harness-level
// sweep in internal/testbed, not a RateSelector.
package rate

import (
	"math"

	"carriersense/internal/capacity"
	"carriersense/internal/phy"
	"carriersense/internal/sim"
)

// SampleRate implements Bicket's SampleRate: it tracks an exponentially
// weighted estimate of per-frame transmission time (including losses)
// for every rate, sends most frames at the rate with the lowest
// estimated time, and spends a fraction of frames probing other rates
// that could plausibly do better.
type SampleRate struct {
	table capacity.RateTable
	// ProbeFraction is the share of frames used to sample non-best
	// rates (Bicket uses 10%).
	ProbeFraction float64
	// EWMA smoothing factor for observed airtime (weight on the new
	// sample).
	Alpha float64

	perDst map[phy.NodeID]*sampleState
	seq    uint64
}

type sampleState struct {
	// avgTxTime[i] is the EWMA estimate of the average time to deliver
	// one frame at table[i], in nanoseconds, accounting for losses
	// (a lost frame contributes its airtime with no delivery).
	avgTxTime []float64
	// successive failures at each rate; rates with ≥4 consecutive
	// failures are skipped until probed again (Bicket's rule).
	fails     []int
	tries     []uint64
	oks       []uint64
	nextProbe int
}

// NewSampleRate creates a SampleRate selector over the given table.
func NewSampleRate(table capacity.RateTable) *SampleRate {
	return &SampleRate{
		table:         table,
		ProbeFraction: 0.1,
		Alpha:         0.3,
		perDst:        make(map[phy.NodeID]*sampleState),
	}
}

func (sr *SampleRate) state(dst phy.NodeID) *sampleState {
	st, ok := sr.perDst[dst]
	if !ok {
		n := len(sr.table)
		st = &sampleState{
			avgTxTime: make([]float64, n),
			fails:     make([]int, n),
			tries:     make([]uint64, n),
			oks:       make([]uint64, n),
		}
		// Optimistic initialization: assume lossless delivery, so the
		// estimated time is the raw airtime and higher rates start
		// attractive (Bicket starts at the highest rate).
		for i, r := range sr.table {
			st.avgTxTime[i] = airtimeNanos(r, refBytes)
		}
		sr.perDst[dst] = st
	}
	return st
}

const refBytes = 1400

// airtimeNanos approximates the airtime of a frame at rate r,
// including the PHY family's preamble overhead.
func airtimeNanos(r capacity.Rate, bytes int) float64 {
	if r.Modulation == capacity.DSSS {
		return 192e3 + float64(8*bytes)/r.Mbps*1e3
	}
	bits := 16 + 8*bytes + 6
	symbols := math.Ceil(float64(bits) / float64(r.BitsPerSymbol))
	return 20e3 + symbols*4e3
}

// Select implements mac.RateSelector.
func (sr *SampleRate) Select(dst phy.NodeID) capacity.Rate {
	st := sr.state(dst)
	sr.seq++
	best := sr.bestIndex(st)
	// Probe a different rate every 1/ProbeFraction frames.
	period := uint64(1 / sr.ProbeFraction)
	if period > 0 && sr.seq%period == 0 {
		if probe, ok := sr.probeIndex(st, best); ok {
			return sr.table[probe]
		}
	}
	return sr.table[best]
}

// bestIndex returns the rate minimizing estimated per-frame time.
func (sr *SampleRate) bestIndex(st *sampleState) int {
	best, bestTime := 0, math.Inf(1)
	for i := range sr.table {
		if st.fails[i] >= 4 {
			continue
		}
		if st.avgTxTime[i] < bestTime {
			best, bestTime = i, st.avgTxTime[i]
		}
	}
	return best
}

// probeIndex picks the next rate worth sampling: one whose lossless
// airtime could beat the current best estimate (Bicket's criterion —
// never sample a rate that couldn't win even with zero loss).
func (sr *SampleRate) probeIndex(st *sampleState, best int) (int, bool) {
	bestTime := st.avgTxTime[best]
	n := len(sr.table)
	for k := 0; k < n; k++ {
		i := (st.nextProbe + k) % n
		if i == best || st.fails[i] >= 8 {
			continue
		}
		if airtimeNanos(sr.table[i], refBytes) < bestTime {
			st.nextProbe = (i + 1) % n
			return i, true
		}
	}
	return 0, false
}

// Update implements mac.RateSelector.
func (sr *SampleRate) Update(dst phy.NodeID, rate capacity.Rate, success bool, airtime sim.Time) {
	st := sr.state(dst)
	idx := -1
	for i, r := range sr.table {
		if r.Mbps == rate.Mbps {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	st.tries[idx]++
	sample := float64(airtime)
	if success {
		st.oks[idx]++
		st.fails[idx] = 0
	} else {
		st.fails[idx]++
		// A failed frame consumed its airtime and delivered nothing;
		// penalize by scaling with the observed loss ratio so the
		// estimate converges to airtime/deliveryRate.
		loss := 1 - float64(st.oks[idx])/float64(st.tries[idx])
		sample = sample * (1 + 4*loss)
	}
	st.avgTxTime[idx] = (1-sr.Alpha)*st.avgTxTime[idx] + sr.Alpha*sample
}

// DeliveryEstimate returns the observed delivery ratio at the given
// rate for dst (diagnostics).
func (sr *SampleRate) DeliveryEstimate(dst phy.NodeID, mbps float64) float64 {
	st := sr.state(dst)
	for i, r := range sr.table {
		if r.Mbps == mbps && st.tries[i] > 0 {
			return float64(st.oks[i]) / float64(st.tries[i])
		}
	}
	return 0
}

// ARF is the classic Automatic Rate Fallback baseline: step the rate
// up after a run of successes, down after consecutive failures.
type ARF struct {
	table capacity.RateTable
	// UpAfter successes raises the rate; DownAfter consecutive
	// failures lowers it.
	UpAfter, DownAfter int

	perDst map[phy.NodeID]*arfState
}

type arfState struct {
	idx       int
	successes int
	failures  int
}

// NewARF creates an ARF selector starting at the lowest rate.
func NewARF(table capacity.RateTable) *ARF {
	return &ARF{table: table, UpAfter: 10, DownAfter: 2, perDst: make(map[phy.NodeID]*arfState)}
}

func (a *ARF) state(dst phy.NodeID) *arfState {
	st, ok := a.perDst[dst]
	if !ok {
		st = &arfState{}
		a.perDst[dst] = st
	}
	return st
}

// Select implements mac.RateSelector.
func (a *ARF) Select(dst phy.NodeID) capacity.Rate {
	return a.table[a.state(dst).idx]
}

// Update implements mac.RateSelector.
func (a *ARF) Update(dst phy.NodeID, _ capacity.Rate, success bool, _ sim.Time) {
	st := a.state(dst)
	if success {
		st.successes++
		st.failures = 0
		if st.successes >= a.UpAfter && st.idx < len(a.table)-1 {
			st.idx++
			st.successes = 0
		}
	} else {
		st.failures++
		st.successes = 0
		if st.failures >= a.DownAfter && st.idx > 0 {
			st.idx--
			st.failures = 0
		}
	}
}
