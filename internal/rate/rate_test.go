package rate

import (
	"testing"

	"carriersense/internal/capacity"
	"carriersense/internal/phy"
	"carriersense/internal/sim"
)

// feed drives a selector with synthetic outcomes: success iff the
// chosen rate's index is <= maxGood.
func feed(sel interface {
	Select(phy.NodeID) capacity.Rate
	Update(phy.NodeID, capacity.Rate, bool, sim.Time)
}, table capacity.RateTable, maxGood, frames int) map[float64]int {
	counts := make(map[float64]int)
	for i := 0; i < frames; i++ {
		r := sel.Select(1)
		counts[r.Mbps]++
		idx := -1
		for j, e := range table {
			if e.Mbps == r.Mbps {
				idx = j
			}
		}
		ok := idx <= maxGood
		airtime := sim.FromMicros(airtimeNanos(r, 1400) / 1000)
		sel.Update(1, r, ok, airtime)
	}
	return counts
}

func TestSampleRateConvergesToBestRate(t *testing.T) {
	table := capacity.Table80211a
	// Only rates up to 24 Mb/s (index 4) succeed; SampleRate must
	// settle on 24, the highest working rate (lowest per-frame time).
	sr := NewSampleRate(table)
	counts := feed(sr, table, 4, 3000)
	if counts[24] < 2000 {
		t.Errorf("24 Mb/s used %d/3000 times; distribution %v", counts[24], counts)
	}
	// Rates above 24 must be mostly abandoned after their failures.
	if counts[54] > 300 {
		t.Errorf("54 Mb/s sampled too often: %v", counts)
	}
}

func TestSampleRateAllRatesWork(t *testing.T) {
	table := capacity.Table80211a
	sr := NewSampleRate(table)
	counts := feed(sr, table, len(table)-1, 2000)
	if counts[54] < 1500 {
		t.Errorf("lossless link should settle at 54 Mb/s: %v", counts)
	}
}

func TestSampleRateProbesOccasionally(t *testing.T) {
	// With the working ceiling at 12 Mb/s, faster (lower-airtime)
	// rates remain plausible and must keep being sampled; note the
	// inverse case — settled at the top rate with zero loss — is
	// exactly when Bicket's criterion stops all probing (nothing can
	// beat the incumbent even losslessly).
	table := capacity.Table80211a
	sr := NewSampleRate(table)
	counts := feed(sr, table, 2, 2000)
	probes := 0
	for mbps, c := range counts {
		if mbps > 12 {
			probes += c
		}
	}
	if probes == 0 {
		t.Errorf("no upward probing: %v", counts)
	}
	if probes > 600 {
		t.Errorf("probing should be a small fraction: %v", counts)
	}

	// And the settled-at-top case: no probing at all is correct.
	sr2 := NewSampleRate(table)
	counts2 := feed(sr2, table, len(table)-1, 2000)
	if counts2[54] < 1900 {
		t.Errorf("lossless top rate should dominate: %v", counts2)
	}
}

func TestSampleRateDeliveryEstimate(t *testing.T) {
	table := capacity.Table80211a
	sr := NewSampleRate(table)
	feed(sr, table, 0, 1000) // only 6 Mb/s works
	if got := sr.DeliveryEstimate(1, 6); got < 0.9 {
		t.Errorf("6 Mb/s delivery estimate = %v", got)
	}
	if got := sr.DeliveryEstimate(1, 54); got != 0 {
		t.Errorf("54 Mb/s delivery estimate = %v, want 0", got)
	}
	if got := sr.DeliveryEstimate(1, 11); got != 0 {
		t.Errorf("unknown rate estimate = %v", got)
	}
}

func TestSampleRateUnknownRateUpdateIgnored(t *testing.T) {
	sr := NewSampleRate(capacity.Table80211a)
	// Must not panic or corrupt state.
	sr.Update(1, capacity.Rate{Mbps: 11}, true, sim.Millisecond)
	_ = sr.Select(1)
}

func TestSampleRatePerDestinationState(t *testing.T) {
	table := capacity.Table80211a
	sr := NewSampleRate(table)
	// Destination 1: everything works. Destination 2: only 6 Mb/s.
	for i := 0; i < 1500; i++ {
		r := sr.Select(1)
		sr.Update(1, r, true, sim.FromMicros(airtimeNanos(r, 1400)/1000))
		r2 := sr.Select(2)
		sr.Update(2, r2, r2.Mbps == 6, sim.FromMicros(airtimeNanos(r2, 1400)/1000))
	}
	if r := sr.Select(1); r.Mbps < 36 {
		t.Errorf("dst 1 settled at %v Mb/s, want high", r.Mbps)
	}
	// dst 2 should be at 6 most of the time; sample a few selections.
	low := 0
	for i := 0; i < 20; i++ {
		if sr.Select(2).Mbps == 6 {
			low++
		}
	}
	if low < 15 {
		t.Errorf("dst 2 at 6 Mb/s only %d/20 selections", low)
	}
}

func TestARFClimbsAndFalls(t *testing.T) {
	table := capacity.Table80211a
	arf := NewARF(table)
	// All successes: climbs to the top.
	counts := feed(arf, table, len(table)-1, 200)
	if counts[54] == 0 {
		t.Errorf("ARF never reached 54: %v", counts)
	}
	// Now everything fails: falls back to the bottom.
	for i := 0; i < 100; i++ {
		r := arf.Select(1)
		arf.Update(1, r, false, sim.Millisecond)
	}
	if r := arf.Select(1); r.Mbps != 6 {
		t.Errorf("ARF after failures at %v Mb/s, want 6", r.Mbps)
	}
}

func TestARFStartsAtLowestRate(t *testing.T) {
	arf := NewARF(capacity.Table80211a)
	if r := arf.Select(1); r.Mbps != 6 {
		t.Errorf("ARF starts at %v", r.Mbps)
	}
}

func TestARFOscillatesAtBoundary(t *testing.T) {
	// Classic ARF pathology: when the top working rate is in the
	// middle, ARF keeps probing upward and failing. Verify it still
	// spends most time at the right rate.
	table := capacity.Table80211a
	arf := NewARF(table)
	counts := feed(arf, table, 2, 2000) // 12 Mb/s is the ceiling
	if counts[12] < 800 {
		t.Errorf("ARF at ceiling rate only %d/2000: %v", counts[12], counts)
	}
}

func TestAirtimeNanos(t *testing.T) {
	// 1400 B at 6 Mb/s: 468 symbols + PLCP = 1892 µs.
	if got := airtimeNanos(capacity.Table80211a[0], 1400); got != 1892e3 {
		t.Errorf("airtime = %v ns, want 1892000", got)
	}
	// Airtime decreases with rate.
	prev := airtimeNanos(capacity.Table80211a[0], 1400)
	for _, r := range capacity.Table80211a[1:] {
		got := airtimeNanos(r, 1400)
		if got >= prev {
			t.Errorf("airtime did not decrease at %v Mb/s", r.Mbps)
		}
		prev = got
	}
}
