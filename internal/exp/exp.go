// Package exp is the paper-artifact pipeline: a declarative
// experiments.json grid (repeats, scales, knobs) executed through the
// ordinary engine/dist/cache seams, with every repeat's run directory
// stamped by internal/prov. `cs exp run` drives RunGrid; `cs exp
// analyze` walks the manifested runs and regenerates grouped CSVs,
// LaTeX tables, and plots from provenance alone — a run that fails
// verification is refused, not averaged in.
package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"carriersense/internal/engine"
)

// GridFileName is the copy of the grid stored beside its runs.
const GridFileName = "experiments.json"

// Settings are the per-experiment knobs. Zero values inherit: an
// experiment inherits from the file's defaults, which inherit from the
// CLI flags `cs exp run` was invoked with (so fleet/cache shape stays
// a deployment concern, not a grid concern).
type Settings struct {
	Scenario   string   `json:"scenario,omitempty"`
	Repeats    int      `json:"repeats,omitempty"`
	Seed       *int64   `json:"seed,omitempty"`
	Scale      string   `json:"scale,omitempty"`
	Sampler    string   `json:"sampler,omitempty"`
	RelErr     float64  `json:"rel_err,omitempty"`
	MaxSamples int      `json:"max_samples,omitempty"`
	Set        []string `json:"set,omitempty"`
	Grid       []string `json:"grid,omitempty"`
}

// Experiment is one named grid entry.
type Experiment struct {
	Name string `json:"name"`
	Settings
}

// Grid is the experiments.json document.
type Grid struct {
	Defaults    Settings     `json:"defaults"`
	Experiments []Experiment `json:"experiments"`

	raw []byte // the file bytes, copied into the output root for provenance
}

// LoadGrid reads and validates an experiments.json file.
func LoadGrid(path string) (*Grid, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Grid
	if err := json.Unmarshal(raw, &g); err != nil {
		return nil, fmt.Errorf("exp: parse %s: %w", path, err)
	}
	g.raw = raw
	if len(g.Experiments) == 0 {
		return nil, fmt.Errorf("exp: %s defines no experiments", path)
	}
	seen := map[string]bool{}
	for i, e := range g.Experiments {
		if e.Name == "" {
			return nil, fmt.Errorf("exp: experiment %d has no name", i)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("exp: duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Scenario == "" && g.Defaults.Scenario == "" {
			return nil, fmt.Errorf("exp: experiment %q names no scenario (and defaults don't either)", e.Name)
		}
		if e.Repeats < 0 {
			return nil, fmt.Errorf("exp: experiment %q: repeats must be >= 1", e.Name)
		}
	}
	return &g, nil
}

// resolve merges experiment-level settings over the file defaults.
func (g *Grid) resolve(e Experiment) Settings {
	s := e.Settings
	d := g.Defaults
	if s.Scenario == "" {
		s.Scenario = d.Scenario
	}
	if s.Repeats == 0 {
		s.Repeats = d.Repeats
	}
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if s.Seed == nil {
		s.Seed = d.Seed
	}
	if s.Scale == "" {
		s.Scale = d.Scale
	}
	if s.Sampler == "" {
		s.Sampler = d.Sampler
	}
	if s.RelErr == 0 {
		s.RelErr = d.RelErr
	}
	if s.MaxSamples == 0 {
		s.MaxSamples = d.MaxSamples
	}
	// Sets concatenate (defaults first, so experiment overrides win —
	// engine applies -set values in order); grid axes do not inherit
	// per-axis, an experiment's grid replaces the default one.
	if len(d.Set) > 0 {
		s.Set = append(append([]string{}, d.Set...), e.Set...)
	}
	if len(s.Grid) == 0 {
		s.Grid = d.Grid
	}
	return s
}

// RunOptions configures one RunGrid invocation.
type RunOptions struct {
	// Out is the output root; each experiment's repeats land under
	// Out/<name>/ as ordinary timestamped run directories.
	Out string
	// Base carries the CLI-resolved engine options: executor chain,
	// parallelism, Exec provenance (fleet/wire/cache/fault shape). Grid
	// settings override the identity fields (seed, scale, sampler,
	// relerr, sets, grid) per experiment.
	Base engine.Options
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// RunGrid executes every experiment's repeats and returns the run
// directories in execution order. The grid file itself is copied to
// Out/experiments.json so the output tree records what was asked for.
func RunGrid(ctx context.Context, g *Grid, opts RunOptions) ([]string, error) {
	if opts.Out == "" {
		return nil, fmt.Errorf("exp: output root required")
	}
	if err := os.MkdirAll(opts.Out, 0o755); err != nil {
		return nil, err
	}
	if len(g.raw) > 0 {
		if err := os.WriteFile(filepath.Join(opts.Out, GridFileName), g.raw, 0o644); err != nil {
			return nil, err
		}
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format, args...)
		}
	}
	var runDirs []string
	for _, e := range g.Experiments {
		s := g.resolve(e)
		for r := 0; r < s.Repeats; r++ {
			ro := opts.Base
			ro.Scale = s.Scale
			ro.Sampler = s.Sampler
			ro.RelErr = s.RelErr
			ro.MaxSamples = s.MaxSamples
			ro.Sets = s.Set
			ro.Grid = s.Grid
			ro.OutDir = filepath.Join(opts.Out, e.Name)
			ro.Stdout = nil // repeats log progress, not 15 full reports
			ro.Exec.Experiment = e.Name
			ro.Exec.Repeat = r
			if s.Seed != nil {
				// Repeats are independent trials: each gets its own seed,
				// derived deterministically so repeat r is reproducible in
				// isolation with -seed <seed+r>.
				ro.Seed = strconv.FormatInt(*s.Seed+int64(r), 10)
			}
			logf("exp %s repeat %d/%d: scenario=%s scale=%s seed=%s\n",
				e.Name, r+1, s.Repeats, s.Scenario, ro.Scale, ro.Seed)
			before, err := listRunDirs(ro.OutDir)
			if err != nil {
				return runDirs, err
			}
			if _, err := engine.Run(ctx, s.Scenario, ro); err != nil {
				return runDirs, fmt.Errorf("exp %s repeat %d: %w", e.Name, r, err)
			}
			after, err := listRunDirs(ro.OutDir)
			if err != nil {
				return runDirs, err
			}
			for dir := range after {
				if !before[dir] {
					runDirs = append(runDirs, filepath.Join(ro.OutDir, dir))
				}
			}
		}
	}
	logf("exp: %d runs under %s\n", len(runDirs), opts.Out)
	return runDirs, nil
}

func listRunDirs(parent string) (map[string]bool, error) {
	out := map[string]bool{}
	entries, err := os.ReadDir(parent)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			out[e.Name()] = true
		}
	}
	return out, nil
}
