package exp

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carriersense/internal/engine"
	"carriersense/internal/prov"
)

type gridStubParams struct {
	Seed uint64
	Gain float64
}

func registerGridStub(t *testing.T, name string) {
	t.Helper()
	engine.Register(engine.Scenario{
		Name:        name,
		Description: "exp test stub",
		Figures:     "none",
		NewParams:   func() any { return &gridStubParams{Seed: 1, Gain: 2} },
		Run: func(rc *engine.RunContext) error {
			p := rc.Params.(*gridStubParams)
			rc.Printf("seed=%d gain=%g\n", p.Seed, p.Gain)
			// Seed-dependent metric so repeats (distinct seeds) produce
			// distinct observations for the grouped statistics.
			rc.Metric("gain", p.Gain+float64(p.Seed%10)/100)
			rc.CSV("data", []string{"a"}, [][]string{{"1"}})
			return nil
		},
	})
}

func writeGrid(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "experiments.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGridValidates(t *testing.T) {
	for _, bad := range []string{
		`{"experiments": []}`,
		`{"experiments": [{"scenario": "x"}]}`,
		`{"experiments": [{"name": "a", "scenario": "x"}, {"name": "a", "scenario": "x"}]}`,
		`{"experiments": [{"name": "a"}]}`,
	} {
		if _, err := LoadGrid(writeGrid(t, bad)); err == nil {
			t.Errorf("grid %s loaded without error", bad)
		}
	}
}

func TestResolveInheritsDefaults(t *testing.T) {
	g, err := LoadGrid(writeGrid(t, `{
		"defaults": {"scenario": "base", "repeats": 3, "seed": 7, "scale": "smoke", "set": ["gain=5"]},
		"experiments": [
			{"name": "plain"},
			{"name": "custom", "scenario": "other", "repeats": 1, "seed": 9, "set": ["gain=6"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	plain := g.resolve(g.Experiments[0])
	if plain.Scenario != "base" || plain.Repeats != 3 || *plain.Seed != 7 || plain.Scale != "smoke" {
		t.Fatalf("plain did not inherit defaults: %+v", plain)
	}
	custom := g.resolve(g.Experiments[1])
	if custom.Scenario != "other" || custom.Repeats != 1 || *custom.Seed != 9 {
		t.Fatalf("custom overrides lost: %+v", custom)
	}
	// Default sets come first so experiment-level ones win (engine
	// applies them in order).
	if len(custom.Set) != 2 || custom.Set[0] != "gain=5" || custom.Set[1] != "gain=6" {
		t.Fatalf("set concatenation wrong: %v", custom.Set)
	}
}

// Acceptance criterion: `cs exp run` on a small grid followed by
// `cs verify` passes on every run dir, and analyze regenerates the
// aggregate artifacts.
func TestRunGridStampsVerifiableRunsAndAnalyzes(t *testing.T) {
	registerGridStub(t, "exp-stub")
	g, err := LoadGrid(writeGrid(t, `{
		"defaults": {"scenario": "exp-stub", "scale": "smoke", "seed": 40},
		"experiments": [
			{"name": "lowgain", "repeats": 2, "set": ["gain=1"]},
			{"name": "highgain", "repeats": 2, "set": ["gain=9"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	dirs, err := RunGrid(context.Background(), g, RunOptions{Out: out})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 4 {
		t.Fatalf("ran %d dirs, want 4: %v", len(dirs), dirs)
	}
	// The grid file is copied beside the runs.
	if _, err := os.Stat(filepath.Join(out, GridFileName)); err != nil {
		t.Fatalf("grid copy missing: %v", err)
	}
	seeds := map[string]bool{}
	for _, dir := range dirs {
		m, err := prov.VerifyDir(dir)
		if err != nil {
			t.Fatalf("run dir fails verification: %v", err)
		}
		if m.Exec.Experiment == "" {
			t.Fatalf("manifest missing experiment coordinate: %+v", m.Exec)
		}
		seeds[m.Exec.Experiment+"/"+m.Seed] = true
	}
	// Each repeat must have its own derived seed (40, 41 per experiment).
	for _, want := range []string{"lowgain/40", "lowgain/41", "highgain/40", "highgain/41"} {
		if !seeds[want] {
			t.Errorf("missing repeat seed %s (have %v)", want, seeds)
		}
	}

	if err := Analyze(out, nil); err != nil {
		t.Fatal(err)
	}
	grouped, err := os.ReadFile(filepath.Join(out, AnalysisDir, "summary_grouped.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lowgain", "highgain", ",gain,2,"} {
		if !strings.Contains(string(grouped), want) {
			t.Errorf("summary_grouped.csv missing %q:\n%s", want, grouped)
		}
	}
	tex, err := os.ReadFile(filepath.Join(out, AnalysisDir, "tables.tex"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tex), `\begin{tabular}`) || !strings.Contains(string(tex), "lowgain") {
		t.Errorf("tables.tex malformed:\n%s", tex)
	}
	plots, err := os.ReadFile(filepath.Join(out, AnalysisDir, "plots.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(plots), "gain across repeats") {
		t.Errorf("plots.txt missing chart:\n%s", plots)
	}
	runs, err := os.ReadFile(filepath.Join(out, AnalysisDir, "summary_runs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(runs), "\n"); n != 5 { // header + 4 observations
		t.Errorf("summary_runs.csv has %d lines, want 5:\n%s", n, runs)
	}
}

// Analysis must refuse a tampered run rather than average it in.
func TestAnalyzeRefusesTamperedRun(t *testing.T) {
	registerGridStub(t, "exp-tamper-stub")
	g, err := LoadGrid(writeGrid(t, `{
		"experiments": [{"name": "one", "scenario": "exp-tamper-stub", "scale": "smoke", "seed": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	dirs, err := RunGrid(context.Background(), g, RunOptions{Out: out})
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dirs[0], "result.json")
	raw, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(target, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = Analyze(out, nil)
	if err == nil || !strings.Contains(err.Error(), "refusing to analyze") {
		t.Fatalf("Analyze on tampered run: %v, want refusal", err)
	}
}
