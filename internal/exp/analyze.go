package exp

// Analysis: regenerate aggregate CSVs, LaTeX tables, and plots from
// manifested run directories. Every run is verified against its
// manifest first — a tampered or drifted run dir fails the whole
// analysis rather than silently skewing a mean.

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"carriersense/internal/plot"
	"carriersense/internal/prov"
)

// AnalysisDir is created under the analyzed root.
const AnalysisDir = "analysis"

// runRow is one (run, variant) observation extracted from a manifest.
type runRow struct {
	Experiment string
	Repeat     int
	Scenario   string
	Variant    string
	Seed       string
	Sampler    string
	Scale      string
	Revision   string
	Wall       float64
	Metrics    map[string]float64
}

// Analyze verifies and aggregates every manifested run under root,
// writing analysis/{summary_runs.csv, summary_grouped.csv, tables.tex,
// plots.txt}. Log (nil ok) receives one line per verified run.
func Analyze(root string, log io.Writer) error {
	dirs, err := prov.FindManifests(root)
	if err != nil {
		return err
	}
	if len(dirs) == 0 {
		return fmt.Errorf("exp: no manifested runs under %s (run `cs exp run` first)", root)
	}
	var rows []runRow
	for _, dir := range dirs {
		m, err := prov.VerifyDir(dir)
		if err != nil {
			return fmt.Errorf("exp: refusing to analyze: %w", err)
		}
		if log != nil {
			fmt.Fprintf(log, "verified %s (%d artifacts)\n", dir, len(m.Artifacts))
		}
		expName := m.Exec.Experiment
		if expName == "" {
			// Ad-hoc `cs run -out` dirs have no grid coordinates; group
			// them by their parent directory name.
			expName = filepath.Base(filepath.Dir(dir))
		}
		for _, v := range m.Variants {
			rows = append(rows, runRow{
				Experiment: expName,
				Repeat:     m.Exec.Repeat,
				Scenario:   m.Scenario,
				Variant:    v.Variant,
				Seed:       m.Seed,
				Sampler:    m.Sampler,
				Scale:      m.Scale,
				Revision:   m.VCS.Revision,
				Wall:       v.WallSeconds,
				Metrics:    v.Metrics,
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Experiment != rows[j].Experiment {
			return rows[i].Experiment < rows[j].Experiment
		}
		if rows[i].Variant != rows[j].Variant {
			return rows[i].Variant < rows[j].Variant
		}
		return rows[i].Repeat < rows[j].Repeat
	})

	outDir := filepath.Join(root, AnalysisDir)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if err := writeRunsCSV(filepath.Join(outDir, "summary_runs.csv"), rows); err != nil {
		return err
	}
	groups := groupRows(rows)
	if err := writeGroupedCSV(filepath.Join(outDir, "summary_grouped.csv"), groups); err != nil {
		return err
	}
	if err := writeLatex(filepath.Join(outDir, "tables.tex"), groups); err != nil {
		return err
	}
	if err := writePlots(filepath.Join(outDir, "plots.txt"), rows); err != nil {
		return err
	}
	if log != nil {
		fmt.Fprintf(log, "analysis: %d runs, %d groups -> %s\n", len(rows), len(groups), outDir)
	}
	return nil
}

func writeRunsCSV(path string, rows []runRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	out := [][]string{{"experiment", "repeat", "scenario", "variant", "seed", "sampler", "scale", "metric", "value", "wall_seconds", "revision"}}
	for _, r := range rows {
		for _, name := range sortedKeys(r.Metrics) {
			out = append(out, []string{
				r.Experiment, strconv.Itoa(r.Repeat), r.Scenario, r.Variant,
				r.Seed, r.Sampler, r.Scale, name, formatG(r.Metrics[name]),
				formatG(r.Wall), r.Revision,
			})
		}
	}
	if err := w.WriteAll(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// group is one (experiment, variant, metric) cell's statistics.
type group struct {
	Experiment, Variant, Metric string
	Values                      []float64
}

func (g *group) n() int        { return len(g.Values) }
func (g *group) mean() float64 { return sum(g.Values) / float64(len(g.Values)) }
func (g *group) std() float64 {
	if len(g.Values) < 2 {
		return 0
	}
	m := g.mean()
	var ss float64
	for _, v := range g.Values {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(g.Values)-1))
}
func (g *group) min() float64 { return extremum(g.Values, math.Min) }
func (g *group) max() float64 { return extremum(g.Values, math.Max) }

func groupRows(rows []runRow) []*group {
	byKey := map[string]*group{}
	var order []string
	for _, r := range rows {
		for _, name := range sortedKeys(r.Metrics) {
			key := r.Experiment + "\x00" + r.Variant + "\x00" + name
			g := byKey[key]
			if g == nil {
				g = &group{Experiment: r.Experiment, Variant: r.Variant, Metric: name}
				byKey[key] = g
				order = append(order, key)
			}
			g.Values = append(g.Values, r.Metrics[name])
		}
	}
	sort.Strings(order)
	groups := make([]*group, 0, len(order))
	for _, key := range order {
		groups = append(groups, byKey[key])
	}
	return groups
}

func writeGroupedCSV(path string, groups []*group) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	out := [][]string{{"experiment", "variant", "metric", "n", "mean", "std", "min", "max"}}
	for _, g := range groups {
		out = append(out, []string{
			g.Experiment, g.Variant, g.Metric, strconv.Itoa(g.n()),
			formatG(g.mean()), formatG(g.std()), formatG(g.min()), formatG(g.max()),
		})
	}
	if err := w.WriteAll(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeLatex emits one tabular per experiment: metric rows with
// mean ± sample std over the repeats.
func writeLatex(path string, groups []*group) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byExp := map[string][]*group{}
	var names []string
	for _, g := range groups {
		if _, ok := byExp[g.Experiment]; !ok {
			names = append(names, g.Experiment)
		}
		byExp[g.Experiment] = append(byExp[g.Experiment], g)
	}
	sort.Strings(names)
	fmt.Fprintf(f, "%% generated by `cs exp analyze` from run manifests; do not edit\n")
	for _, name := range names {
		fmt.Fprintf(f, "\n%% experiment: %s\n", name)
		fmt.Fprintf(f, "\\begin{tabular}{llrrr}\n\\hline\n")
		fmt.Fprintf(f, "variant & metric & $n$ & mean & std \\\\\n\\hline\n")
		for _, g := range byExp[name] {
			fmt.Fprintf(f, "%s & %s & %d & %s & %s \\\\\n",
				latexEscape(g.Variant), latexEscape(g.Metric), g.n(),
				formatG(g.mean()), formatG(g.std()))
		}
		fmt.Fprintf(f, "\\hline\n\\end{tabular}\n")
	}
	return nil
}

// writePlots renders one chart per (experiment, metric): repeats on X,
// one series per variant — the quickest visual check that repeats
// agree and variants separate.
func writePlots(path string, rows []runRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	type axisKey struct{ exp, metric string }
	series := map[axisKey]map[string][][2]float64{}
	var order []axisKey
	for _, r := range rows {
		for _, name := range sortedKeys(r.Metrics) {
			key := axisKey{r.Experiment, name}
			if series[key] == nil {
				series[key] = map[string][][2]float64{}
				order = append(order, key)
			}
			variant := r.Variant
			if variant == "" {
				variant = r.Scenario
			}
			series[key][variant] = append(series[key][variant], [2]float64{float64(r.Repeat), r.Metrics[name]})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].exp != order[j].exp {
			return order[i].exp < order[j].exp
		}
		return order[i].metric < order[j].metric
	})
	for _, key := range order {
		c := plot.Chart{
			Title:  fmt.Sprintf("%s: %s across repeats", key.exp, key.metric),
			XLabel: "repeat",
			YLabel: key.metric,
		}
		for _, variant := range sortedKeys(series[key]) {
			pts := series[key][variant]
			s := plot.Series{Name: variant}
			for _, p := range pts {
				s.X = append(s.X, p[0])
				s.Y = append(s.Y, p[1])
			}
			c.Series = append(c.Series, s)
		}
		c.Render(f, 60, 12)
		fmt.Fprintln(f)
	}
	return nil
}

func latexEscape(s string) string {
	r := strings.NewReplacer("_", "\\_", "%", "\\%", "&", "\\&", "#", "\\#", "$", "\\$")
	return r.Replace(s)
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

func sum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

func extremum(vs []float64, pick func(a, b float64) float64) float64 {
	out := vs[0]
	for _, v := range vs[1:] {
		out = pick(out, v)
	}
	return out
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
