package montecarlo

// The kernel registry and executor seam: the machinery that makes a
// Monte Carlo estimation shippable to another process. A Kernel is a
// named, registered integrand factory — given serialized parameters it
// rebuilds the evaluation closure — so a shard of work is fully
// described by (kernel name, params JSON, seed, sample budget, shard
// index). Both the coordinator and the worker link the same registry
// (they are the same binary), which is what lets the distributed path
// reproduce shard accumulators bit-identically.
//
// The Executor interface is the scale-out seam: the default local
// executor evaluates the whole shard plan in-process with the
// RunShards pool; internal/dist provides a Remote executor that farms
// shards out over HTTP and merges the returned accumulator states in
// shard order. engine.Run installs the configured executor for the
// duration of a run, so every scenario distributes without
// per-scenario changes.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"carriersense/internal/rng"
)

// EvalFunc evaluates one sample of a vector-valued integrand: it fills
// out (one slot per component) using draws from src. The slice is
// zeroed before every call, so indicator components may be left unset.
type EvalFunc func(src *rng.Source, out []float64)

// BatchEvalFunc evaluates count consecutive samples of a
// dim-component integrand into out, a count×dim row-major flat buffer
// (sample i fills out[i*dim : (i+1)*dim]). The buffer is zeroed by
// the caller, so indicator components may be left unset, exactly as
// with EvalFunc. The batch form must consume random variates from src
// in precisely the order count successive EvalFunc calls would — the
// shard evaluator accumulates batch rows in sample order, so a
// conforming batch kernel is bit-identical to its per-sample form.
type BatchEvalFunc func(src *rng.Source, count int, out []float64)

// KernelFactory rebuilds an EvalFunc from serialized parameters.
type KernelFactory func(params json.RawMessage) (EvalFunc, error)

// BatchKernelFactory rebuilds a BatchEvalFunc from serialized
// parameters.
type BatchKernelFactory func(params json.RawMessage) (BatchEvalFunc, error)

// batchRegistration pairs a batch factory with the component count its
// evaluators stride the flat buffer by; requests with a different Dim
// are rejected rather than silently mis-striding the buffer.
type batchRegistration struct {
	factory BatchKernelFactory
	dim     int
}

var (
	kernelMu     sync.RWMutex
	kernels      = map[string]KernelFactory{}
	batchKernels = map[string]batchRegistration{}
)

// RegisterKernel adds a named integrand factory to the global registry.
// Registration happens in init() (internal/core registers the model's
// estimators); duplicates and empty names panic so a broken catalog
// fails loudly at startup.
func RegisterKernel(name string, factory KernelFactory) {
	if name == "" || factory == nil {
		panic("montecarlo: invalid kernel registration")
	}
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[name]; dup {
		panic(fmt.Sprintf("montecarlo: duplicate kernel %q", name))
	}
	kernels[name] = factory
}

// RegisterBatchKernel adds an optional batch evaluator for an
// already-registered (or about-to-be-registered) kernel name. dim is
// the kernel's component count — the stride its batch evaluators
// write the flat buffer with; estimation requests for the name must
// carry the same Dim or they are rejected. When a batch form is
// present, every shard evaluator — local pool, worker server, cache
// fill — prefers it: one call per buffer chunk instead of per sample.
// The batch form must draw and compute exactly as the per-sample form
// does; the two are interchangeable bit-for-bit.
func RegisterBatchKernel(name string, dim int, factory BatchKernelFactory) {
	if name == "" || factory == nil || dim < 1 {
		panic("montecarlo: invalid batch kernel registration")
	}
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := batchKernels[name]; dup {
		panic(fmt.Sprintf("montecarlo: duplicate batch kernel %q", name))
	}
	batchKernels[name] = batchRegistration{factory: factory, dim: dim}
}

// KernelNames returns every registered kernel name, sorted.
func KernelNames() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	out := make([]string, 0, len(kernels))
	for name := range kernels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuildKernel resolves a registered kernel and rebuilds its evaluation
// function from the serialized parameters.
func BuildKernel(name string, params json.RawMessage) (EvalFunc, error) {
	kernelMu.RLock()
	factory, ok := kernels[name]
	kernelMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("montecarlo: unknown kernel %q", name)
	}
	fn, err := factory(params)
	if err != nil {
		return nil, fmt.Errorf("montecarlo: kernel %q: %w", name, err)
	}
	return fn, nil
}

// kernelEval is a built kernel in both forms; batch is nil when the
// kernel registered only the per-sample form.
type kernelEval struct {
	fn    EvalFunc
	batch BatchEvalFunc
}

// buildEval resolves a kernel's per-sample evaluator and, when
// registered, its batch evaluator. A batch registration pins the
// kernel's component count: a request with a different dim (a
// version-skewed coordinator, a hand-built job) is an error here, not
// a mis-strided buffer downstream.
func buildEval(name string, params json.RawMessage, dim int) (kernelEval, error) {
	fn, err := BuildKernel(name, params)
	if err != nil {
		return kernelEval{}, err
	}
	kernelMu.RLock()
	br, hasBatch := batchKernels[name]
	kernelMu.RUnlock()
	ev := kernelEval{fn: fn}
	if hasBatch {
		if dim != br.dim {
			return kernelEval{}, fmt.Errorf("montecarlo: kernel %q has %d components, request wants %d", name, br.dim, dim)
		}
		batch, err := br.factory(params)
		if err != nil {
			return kernelEval{}, fmt.Errorf("montecarlo: batch kernel %q: %w", name, err)
		}
		ev.batch = batch
	}
	return ev, nil
}

// Request is one complete, serializable estimation: a registered
// kernel, its parameters, the sample plan, and the sampling strategy.
// The shard plan it implies — PlanShards(Seed, Samples) — is
// machine-independent, so any executor that evaluates every planned
// shard and merges in shard order reproduces the in-process result
// exactly.
//
// FirstShard, when > 0, restricts the request to shards [FirstShard,
// ShardCount(Samples)) of that plan. Shard streams depend only on
// (Seed, index), so a ranged request's accumulators are exactly the
// tail of the full request's — the seam the convergence driver
// (internal/sampling) uses to grow a budget geometrically without
// re-evaluating a single sample, on any executor.
type Request struct {
	Kernel  string          `json:"kernel"`
	Params  json.RawMessage `json:"params,omitempty"`
	Seed    uint64          `json:"seed"`
	Samples int             `json:"samples"`
	Dim     int             `json:"dim"`
	// Sampler names the registered sampling strategy ("" = plain). It
	// is part of the estimation's identity: it travels over the dist
	// wire and is folded into the cache key.
	Sampler string `json:"sampler,omitempty"`
	// FirstShard is the first shard index of the plan to evaluate
	// (0 = the whole plan).
	FirstShard int `json:"first_shard,omitempty"`
	// Control, when non-nil, applies the control-variate adjustment to
	// every evaluated sample (see control.go). Like Sampler it is part
	// of the estimation's identity: the coefficients travel over the
	// dist wire and are folded into the cache key, so an adjusted
	// estimation reproduces bit-identically on any executor.
	Control *ControlSpec `json:"control,omitempty"`
}

// Validate reports whether the request is well-formed (it does not
// check that the kernel or sampler is registered; buildEval does).
func (r Request) Validate() error {
	if r.Kernel == "" {
		return fmt.Errorf("montecarlo: request missing kernel name")
	}
	if r.Samples < 1 {
		return fmt.Errorf("montecarlo: request wants %d samples (must be >= 1)", r.Samples)
	}
	if r.Dim < 1 {
		return fmt.Errorf("montecarlo: request dim %d (must be >= 1)", r.Dim)
	}
	if r.FirstShard < 0 || r.FirstShard >= ShardCount(r.Samples) {
		return fmt.Errorf("montecarlo: request first shard %d out of plan range [0,%d)", r.FirstShard, ShardCount(r.Samples))
	}
	if r.Control != nil {
		if err := r.Control.validate(r.Dim); err != nil {
			return err
		}
	}
	return nil
}

// SampleSpan returns the number of samples the request actually
// evaluates: Samples minus the FirstShard-skipped prefix. Executors
// use it to credit throughput accounting.
func (r Request) SampleSpan() int {
	return r.Samples - r.FirstShard*ShardSize
}

// Executor evaluates a Request's full shard plan and returns one
// merged Accumulator per component. Implementations must merge shard
// accumulators in shard order so results are bit-identical to the
// in-process path.
type Executor interface {
	EstimateVec(ctx context.Context, req Request) ([]Accumulator, error)
}

var (
	execMu      sync.RWMutex
	currentExec Executor = localExecutor{}
)

// SetExecutor installs the executor used by every kernel-routed
// estimation. nil restores the in-process default. engine.Run installs
// the CLI-configured executor for the duration of a run.
func SetExecutor(e Executor) {
	execMu.Lock()
	defer execMu.Unlock()
	if e == nil {
		currentExec = localExecutor{}
		return
	}
	currentExec = e
}

// CurrentExecutor returns the installed executor.
func CurrentExecutor() Executor {
	execMu.RLock()
	defer execMu.RUnlock()
	return currentExec
}

// localExecutor is the default in-process executor: the whole shard
// plan evaluated by the RunShards pool.
type localExecutor struct{}

func (localExecutor) EstimateVec(ctx context.Context, req Request) ([]Accumulator, error) {
	return RunRequest(ctx, req)
}

// RunRequest evaluates a request in-process: every planned shard (from
// FirstShard on) through the worker pool, merged in shard order. It
// backs both the default local executor and dist.Local.
func RunRequest(ctx context.Context, req Request) ([]Accumulator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ev, err := buildEval(req.Kernel, req.Params, req.Dim)
	if err != nil {
		return nil, err
	}
	sp, err := lookupSampler(req.Sampler)
	if err != nil {
		return nil, err
	}
	cv, err := buildControl(req)
	if err != nil {
		return nil, err
	}
	shards := PlanShards(req.Seed, req.Samples)[req.FirstShard:]
	accs := make([][]Accumulator, len(shards))
	RunShards(shards, func(s Shard) {
		accs[s.Index-req.FirstShard] = evalShard(ev, s, req.Dim, sp, cv)
	})
	merged := make([]Accumulator, req.Dim)
	for i := range accs {
		for j := 0; j < req.Dim; j++ {
			merged[j].Merge(accs[i][j])
		}
	}
	return merged, nil
}

// EvaluateShards evaluates the kernel over the given shard indices
// only, returning per-shard accumulators positionally (result[i]
// corresponds to indices[i]). Indices must be duplicate-free: a
// shard's random source is single-stream state, so evaluating the same
// index twice in one pool sweep would race on it. This is the worker
// server's entry point: the coordinator sends index batches and merges
// the states itself.
func EvaluateShards(req Request, indices []int) ([][]Accumulator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	ev, err := buildEval(req.Kernel, req.Params, req.Dim)
	if err != nil {
		return nil, err
	}
	sp, err := lookupSampler(req.Sampler)
	if err != nil {
		return nil, err
	}
	cv, err := buildControl(req)
	if err != nil {
		return nil, err
	}
	shards := PlanShards(req.Seed, req.Samples)
	selected := make([]Shard, len(indices))
	position := make(map[int]int, len(indices))
	for i, idx := range indices {
		if idx < req.FirstShard || idx >= len(shards) {
			return nil, fmt.Errorf("montecarlo: shard index %d out of range [%d,%d)", idx, req.FirstShard, len(shards))
		}
		if _, dup := position[idx]; dup {
			return nil, fmt.Errorf("montecarlo: duplicate shard index %d", idx)
		}
		selected[i] = shards[idx]
		position[idx] = i
	}
	results := make([][]Accumulator, len(indices))
	RunShards(selected, func(s Shard) {
		results[position[s.Index]] = evalShard(ev, s, req.Dim, sp, cv)
	})
	return results, nil
}

// batchChunk is the number of samples evaluated per batch-kernel call:
// large enough to amortize the indirect call, small enough that the
// sample buffer (batchChunk × dim float64s) stays L1/L2-resident.
const batchChunk = 512

// evalShard evaluates one shard of a dim-component integrand exactly
// the way MeanVec does, so kernel-routed and closure-based estimations
// produce bit-identical accumulators. Under the plain sampler, kernels
// with a registered batch form are evaluated a chunk at a time into a
// preallocated flat buffer; rows are accumulated in sample order, so
// the two paths produce identical accumulators. Under any other
// sampler — or whenever a control-variate adjustment is attached —
// the per-sample form runs over the sampler's stream, with each group
// of Group() consecutive samples folded into one accumulator
// observation (their mean) — for antithetic pairs that is what lets
// the accumulator's standard error see the negative within-pair
// covariance instead of only the marginal variance.
func evalShard(ev kernelEval, s Shard, dim int, sp Sampler, cv *controlEval) []Accumulator {
	if _, plain := sp.(plainSampler); cv != nil || (!plain && sp != nil) {
		return evalShardSampled(ev, s, dim, sp, cv)
	}
	accs := make([]Accumulator, dim)
	defer addEvaluatedSamples(s.N)
	if ev.batch != nil {
		chunk := batchChunk
		if s.N < chunk {
			chunk = s.N
		}
		buf := make([]float64, chunk*dim)
		for done := 0; done < s.N; {
			n := chunk
			if rest := s.N - done; n > rest {
				n = rest
			}
			b := buf[:n*dim]
			for i := range b {
				b[i] = 0
			}
			ev.batch(s.Src, n, b)
			for i := 0; i < n; i++ {
				row := b[i*dim : (i+1)*dim]
				for j, v := range row {
					accs[j].Add(v)
				}
			}
			done += n
		}
		return accs
	}
	out := make([]float64, dim)
	for i := 0; i < s.N; i++ {
		for j := range out {
			out[j] = 0
		}
		ev.fn(s.Src, out)
		for j, v := range out {
			accs[j].Add(v)
		}
	}
	return accs
}

// evalShardSampled is the sampler-transformed shard evaluation: one
// stream per shard, one Next() per sample, groups averaged into the
// accumulators. The sample order, the group boundaries, and the
// accumulation order are all pure functions of (shard, sampler,
// control spec), so the result is bit-identical on any executor at
// any parallelism. A trailing partial group (only possible in a
// plan's partial last shard, since Group divides ShardSize) averages
// over the samples it has.
//
// With a control adjustment attached (cv non-nil), each sample's
// uniforms are recorded while the real kernel runs, replayed into the
// twin, and the sample adjusted to out_j − β_j·(twin_j − μ_j) before
// accumulation — so the accumulator states (and everything downstream:
// merge, wire, cache) are states of the adjusted variable.
func evalShardSampled(ev kernelEval, s Shard, dim int, sp Sampler, cv *controlEval) []Accumulator {
	accs := make([]Accumulator, dim)
	defer addEvaluatedSamples(s.N)
	stream := sp.Stream(s.N, s.Src)
	group := sp.Group()
	out := make([]float64, dim)
	sum := make([]float64, dim)
	var (
		rp   *replayPair
		cur  *rng.Source
		tout []float64
	)
	if cv != nil {
		rp = newReplayPair(func() *rng.Source { return cur })
		tout = make([]float64, dim)
	}
	for i := 0; i < s.N; {
		for j := range sum {
			sum[j] = 0
		}
		k := 0
		for ; k < group && i < s.N; k++ {
			src := stream.Next()
			for j := range out {
				out[j] = 0
			}
			if cv == nil {
				ev.fn(src, out)
			} else {
				cur = src
				rp.beginSample()
				ev.fn(rp.record, out)
				for j := range tout {
					tout[j] = 0
				}
				rp.beginReplay()
				cv.fn(rp.replay, tout)
				for j, b := range cv.beta {
					if b != 0 {
						out[j] -= b * (tout[j] - cv.mean[j])
					}
				}
			}
			for j, v := range out {
				sum[j] += v
			}
			i++
		}
		inv := 1 / float64(k)
		for j := range sum {
			accs[j].Add(sum[j] * inv)
		}
	}
	return accs
}

// ExecError is the panic value raised when a kernel-routed estimation
// fails (an unreachable worker fleet, an unregistered kernel, bad
// parameters). The core estimators keep plain value-returning
// signatures — error plumbing through every closed-form helper would
// obscure the math — so executor failures unwind as a typed panic that
// engine.Run recovers into an ordinary error.
type ExecError struct {
	Kernel string
	Err    error
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("montecarlo: kernel %q: %v", e.Kernel, e.Err)
}

func (e *ExecError) Unwrap() error { return e.Err }

// KernelMeanVec estimates the means of a registered vector-valued
// kernel through the installed executor, under the installed default
// sampler. Params must marshal to the JSON the kernel's factory
// expects. Results are bit-identical to MeanVec over the factory-built
// EvalFunc (for the plain sampler), at any executor.
func KernelMeanVec(kernel string, params any, seed uint64, n, dim int) []Estimate {
	raw, err := json.Marshal(params)
	if err != nil {
		panic(&ExecError{Kernel: kernel, Err: fmt.Errorf("marshal params: %w", err)})
	}
	req := Request{Kernel: kernel, Params: raw, Seed: seed, Samples: n, Dim: dim, Sampler: DefaultSampler()}
	accs, err := CurrentExecutor().EstimateVec(context.Background(), req)
	if err != nil {
		panic(&ExecError{Kernel: kernel, Err: err})
	}
	if len(accs) != dim {
		panic(&ExecError{Kernel: kernel, Err: fmt.Errorf("executor returned %d components, want %d", len(accs), dim)})
	}
	out := make([]Estimate, dim)
	for j := range accs {
		out[j] = accs[j].Estimate()
	}
	return out
}

// KernelMean is the scalar convenience over KernelMeanVec.
func KernelMean(kernel string, params any, seed uint64, n int) Estimate {
	return KernelMeanVec(kernel, params, seed, n, 1)[0]
}
