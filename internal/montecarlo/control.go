package montecarlo

// Control variates: the per-sample variance-reduction seam behind
// internal/sampling's `cv` strategy. A kernel's *control twin* is a
// reduced form of the same integrand whose exact per-component means
// are computable (for the shadowed two-pair kernels: the σ = 0 model,
// whose disc averages internal/core evaluates by deterministic
// quadrature). Each evaluated sample is adjusted to
//
//	y_j = f_j − β_j · (g_j − μ_j)
//
// where f is the real kernel, g the twin *evaluated on the same
// uniform draws* (record/replay through the rng.WithUniforms hook, so
// the twin sees the identical receiver placements), μ the twin's
// exact mean, and β the control coefficient. E[y] = E[f] for any β,
// so the estimate stays unbiased; β ≈ Cov(f,g)/Var(g) minimizes the
// variance, removing the ρ² fraction of it that g explains. For the
// σ = 0 lanes g ≡ f componentwise and the adjusted variable is a
// constant — convergence in one round.
//
// Determinism contract: (β, μ) travel in Request.Control — over the
// dist wire and into the cache key — so the adjustment is part of the
// estimation's identity, the per-sample math is a pure function of
// the shard stream, and a cv request reproduces bit-identically on
// any executor at any parallelism. β itself is estimated once per
// estimation by PilotControl, a serial in-process pass over a seed
// derived from the request's, so every coordinator derives the exact
// same coefficients.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"carriersense/internal/rng"
)

// ControlSpec is the serialized control-variate adjustment of one
// estimation: one (β, μ) pair per component. β_j = 0 disables the
// adjustment for component j (Mean_j is then ignored and stored as 0,
// keeping the spec JSON-marshalable). Part of the request identity.
type ControlSpec struct {
	Beta []float64 `json:"beta"`
	Mean []float64 `json:"mean"`
}

// validate checks the spec against the request's component count.
func (c *ControlSpec) validate(dim int) error {
	if len(c.Beta) != dim || len(c.Mean) != dim {
		return fmt.Errorf("montecarlo: control spec has %d beta / %d mean components, request wants %d",
			len(c.Beta), len(c.Mean), dim)
	}
	for j := range c.Beta {
		if math.IsNaN(c.Beta[j]) || math.IsInf(c.Beta[j], 0) ||
			math.IsNaN(c.Mean[j]) || math.IsInf(c.Mean[j], 0) {
			return fmt.Errorf("montecarlo: control spec component %d is not finite", j)
		}
	}
	return nil
}

// equal reports componentwise bitwise equality — the cache's disk
// layer verifies stored specs against the request's.
func (c *ControlSpec) Equal(o *ControlSpec) bool {
	if (c == nil) != (o == nil) {
		return false
	}
	if c == nil {
		return true
	}
	if len(c.Beta) != len(o.Beta) || len(c.Mean) != len(o.Mean) {
		return false
	}
	for j := range c.Beta {
		if c.Beta[j] != o.Beta[j] || c.Mean[j] != o.Mean[j] {
			return false
		}
	}
	return true
}

// ControlTwin is one kernel's registered control-variate twin.
type ControlTwin struct {
	// Eval rebuilds the twin integrand from the kernel's own params.
	// The twin must consume a prefix of the real kernel's per-sample
	// uniforms (same draw order, fewer or equal draws) so replaying the
	// recorded stream aligns the two on the same configuration.
	Eval KernelFactory
	// Means returns the twin's exact per-component means. A NaN marks
	// a component without a computable exact mean; the pilot forces
	// β = 0 there.
	Means func(params json.RawMessage) ([]float64, error)
}

var (
	controlMu    sync.RWMutex
	controlTwins = map[string]ControlTwin{}
)

// RegisterControlTwin adds a kernel's control twin to the global
// registry (internal/core registers the σ = 0 quadrature twins in its
// init). Both coordinator and workers link the registry, so a request
// carrying a ControlSpec rebuilds the identical twin on either side.
func RegisterControlTwin(kernel string, t ControlTwin) {
	if kernel == "" || t.Eval == nil || t.Means == nil {
		panic("montecarlo: invalid control twin registration")
	}
	controlMu.Lock()
	defer controlMu.Unlock()
	if _, dup := controlTwins[kernel]; dup {
		panic(fmt.Sprintf("montecarlo: duplicate control twin %q", kernel))
	}
	controlTwins[kernel] = t
}

// HasControlTwin reports whether a kernel has a registered twin.
func HasControlTwin(kernel string) bool {
	controlMu.RLock()
	defer controlMu.RUnlock()
	_, ok := controlTwins[kernel]
	return ok
}

// ControlTwinNames returns every kernel with a registered twin, sorted.
func ControlTwinNames() []string {
	controlMu.RLock()
	defer controlMu.RUnlock()
	out := make([]string, 0, len(controlTwins))
	for name := range controlTwins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func lookupControlTwin(kernel string) (ControlTwin, error) {
	controlMu.RLock()
	t, ok := controlTwins[kernel]
	controlMu.RUnlock()
	if !ok {
		return ControlTwin{}, fmt.Errorf("montecarlo: kernel %q has no control twin (registered: %v)", kernel, ControlTwinNames())
	}
	return t, nil
}

// controlEval is a built twin plus the request's adjustment, shared
// read-only by every shard of one estimation.
type controlEval struct {
	fn   EvalFunc
	beta []float64
	mean []float64
}

// buildControl resolves a request's control adjustment: nil when the
// request carries none, an error when it carries one that cannot be
// honored (no twin, bad spec).
func buildControl(req Request) (*controlEval, error) {
	if req.Control == nil {
		return nil, nil
	}
	if err := req.Control.validate(req.Dim); err != nil {
		return nil, err
	}
	t, err := lookupControlTwin(req.Kernel)
	if err != nil {
		return nil, err
	}
	fn, err := t.Eval(req.Params)
	if err != nil {
		return nil, fmt.Errorf("montecarlo: control twin %q: %w", req.Kernel, err)
	}
	return &controlEval{fn: fn, beta: req.Control.Beta, mean: req.Control.Mean}, nil
}

// pilotSeedSalt derives the pilot stream from the request seed: the
// pilot must be deterministic (every coordinator computes the same β)
// but must not reuse the main run's shard streams, or β would be
// fitted to the very samples it then adjusts.
const pilotSeedSalt = 0x9e3779b97f4a7c15

// maxControlBeta clamps the pilot's coefficient: a wild β from a
// noisy pilot variance ratio would amplify rather than cancel noise.
const maxControlBeta = 8

// PilotControl estimates a request's control coefficients from n
// serial in-process samples over a seed derived from the request's.
// The result is a pure function of (kernel, params, seed, n): every
// executor that computes it independently agrees bit-for-bit. Returns
// an error when the kernel has no registered twin.
func PilotControl(req Request, n int) (*ControlSpec, error) {
	if n < 2 {
		return nil, fmt.Errorf("montecarlo: control pilot needs >= 2 samples, got %d", n)
	}
	t, err := lookupControlTwin(req.Kernel)
	if err != nil {
		return nil, err
	}
	fn, err := BuildKernel(req.Kernel, req.Params)
	if err != nil {
		return nil, err
	}
	twin, err := t.Eval(req.Params)
	if err != nil {
		return nil, fmt.Errorf("montecarlo: control twin %q: %w", req.Kernel, err)
	}
	means, err := t.Means(req.Params)
	if err != nil {
		return nil, fmt.Errorf("montecarlo: control twin means %q: %w", req.Kernel, err)
	}
	if len(means) != req.Dim {
		return nil, fmt.Errorf("montecarlo: control twin %q has %d means, request wants %d", req.Kernel, len(means), req.Dim)
	}

	dim := req.Dim
	raw := rng.New(req.Seed ^ pilotSeedSalt)
	rp := newReplayPair(func() *rng.Source { return raw })
	f := make([]float64, dim)
	g := make([]float64, dim)
	// Online means and cross-moments (Welford form) per component.
	mf := make([]float64, dim)
	mg := make([]float64, dim)
	sgg := make([]float64, dim)
	sfg := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			f[j], g[j] = 0, 0
		}
		rp.beginSample()
		fn(rp.record, f)
		rp.beginReplay()
		twin(rp.replay, g)
		inv := 1 / float64(i+1)
		for j := 0; j < dim; j++ {
			df := f[j] - mf[j]
			dg := g[j] - mg[j]
			mf[j] += df * inv
			mg[j] += dg * inv
			sgg[j] += dg * (g[j] - mg[j])
			sfg[j] += dg * (f[j] - mf[j])
		}
	}
	addEvaluatedSamples(n)

	spec := &ControlSpec{Beta: make([]float64, dim), Mean: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		if math.IsNaN(means[j]) || sgg[j] <= 0 {
			continue // no exact mean, or a degenerate twin: leave β = 0
		}
		b := sfg[j] / sgg[j]
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if b > maxControlBeta {
			b = maxControlBeta
		} else if b < -maxControlBeta {
			b = -maxControlBeta
		}
		spec.Beta[j] = b
		spec.Mean[j] = means[j]
	}
	return spec, nil
}

// replayPair is the record/replay uniform plumbing shared by the
// pilot and the shard evaluator: the record source forwards uniforms
// from the current underlying sample source while logging them, the
// replay source feeds the log back to the twin so it evaluates the
// same configuration. A twin that consumes more uniforms than were
// recorded (impossible for a prefix-consuming twin, but kept
// deterministic regardless) continues on the underlying source.
type replayPair struct {
	cur    func() *rng.Source
	rec    []float64
	idx    int
	record *rng.Source
	replay *rng.Source
}

func newReplayPair(cur func() *rng.Source) *replayPair {
	rp := &replayPair{cur: cur}
	rp.record = rng.WithUniforms(func() float64 {
		u := rp.cur().Float64()
		rp.rec = append(rp.rec, u)
		return u
	})
	rp.replay = rng.WithUniforms(func() float64 {
		if rp.idx < len(rp.rec) {
			u := rp.rec[rp.idx]
			rp.idx++
			return u
		}
		return rp.cur().Float64()
	})
	return rp
}

func (rp *replayPair) beginSample() { rp.rec = rp.rec[:0] }
func (rp *replayPair) beginReplay() { rp.idx = 0 }
