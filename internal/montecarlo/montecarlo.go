// Package montecarlo provides the parallel Monte Carlo estimation
// machinery behind the model's expected-throughput integrals. The
// paper computed ⟨C_i⟩(R_max, D) "in Maple with Monte Carlo
// integration" (§3.2.5); this package is our equivalent, with
// deterministic per-worker random streams, standard-error tracking,
// and optional convergence to a target relative error.
package montecarlo

import (
	"math"
	"runtime"
	"sync"

	"carriersense/internal/rng"
)

// Estimate is the result of a Monte Carlo mean estimation.
type Estimate struct {
	Mean   float64 // sample mean
	StdErr float64 // standard error of the mean
	N      int     // number of samples
}

// RelErr returns the relative standard error |StdErr/Mean|, or +Inf
// when the mean is zero.
func (e Estimate) RelErr() float64 {
	if e.Mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(e.StdErr / e.Mean)
}

// accumulator tracks running mean and M2 (Welford).
type accumulator struct {
	n    int
	mean float64
	m2   float64
}

func (a *accumulator) add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

func (a *accumulator) merge(b accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

func (a *accumulator) estimate() Estimate {
	e := Estimate{Mean: a.mean, N: a.n}
	if a.n > 1 {
		variance := a.m2 / float64(a.n-1)
		e.StdErr = math.Sqrt(variance / float64(a.n))
	}
	return e
}

// Mean estimates E[f] over n samples using parallel workers. Each
// worker receives an independent deterministic substream split from a
// Source seeded with seed, so results are reproducible for a fixed
// (seed, n, GOMAXPROCS-independent) — the worker count affects only
// scheduling, not the sample set, because streams are split up front
// and sample counts are fixed per worker.
func Mean(seed uint64, n int, f func(*rng.Source) float64) Estimate {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	root := rng.New(seed)
	srcs := make([]*rng.Source, workers)
	for i := range srcs {
		srcs[i] = root.Split()
	}
	accs := make([]accumulator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			src := srcs[w]
			acc := &accs[w]
			for i := 0; i < count; i++ {
				acc.add(f(src))
			}
		}(w, hi-lo)
	}
	wg.Wait()
	var total accumulator
	for _, a := range accs {
		total.merge(a)
	}
	return total.estimate()
}

// MeanVec estimates the means of a vector-valued integrand: f fills
// out with one sample per component. All components share the same
// random configuration draw, which is exactly what comparing MAC
// policies on identical configurations requires (common random
// numbers — variance of *differences* shrinks dramatically).
func MeanVec(seed uint64, n, dim int, f func(*rng.Source, []float64)) []Estimate {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	root := rng.New(seed)
	srcs := make([]*rng.Source, workers)
	for i := range srcs {
		srcs[i] = root.Split()
	}
	accs := make([][]accumulator, workers)
	for i := range accs {
		accs[i] = make([]accumulator, dim)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			src := srcs[w]
			out := make([]float64, dim)
			for i := 0; i < count; i++ {
				// Zero the vector so integrands may leave components
				// unset (e.g. indicator variables set only when true).
				for j := range out {
					out[j] = 0
				}
				f(src, out)
				for j, v := range out {
					accs[w][j].add(v)
				}
			}
		}(w, hi-lo)
	}
	wg.Wait()
	result := make([]Estimate, dim)
	for j := 0; j < dim; j++ {
		var total accumulator
		for w := 0; w < workers; w++ {
			total.merge(accs[w][j])
		}
		result[j] = total.estimate()
	}
	return result
}

// MeanToRelErr estimates E[f], growing the sample count geometrically
// (starting at n0, capped at nMax) until the relative standard error
// of the mean drops below relErr.
func MeanToRelErr(seed uint64, n0, nMax int, relErr float64, f func(*rng.Source) float64) Estimate {
	n := n0
	var est Estimate
	for {
		est = Mean(seed, n, f)
		if est.RelErr() <= relErr || n >= nMax {
			return est
		}
		n *= 4
		if n > nMax {
			n = nMax
		}
	}
}

// Fraction estimates P[pred] over n samples.
func Fraction(seed uint64, n int, pred func(*rng.Source) bool) Estimate {
	return Mean(seed, n, func(src *rng.Source) float64 {
		if pred(src) {
			return 1
		}
		return 0
	})
}
