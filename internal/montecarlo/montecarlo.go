// Package montecarlo provides the parallel Monte Carlo estimation
// machinery behind the model's expected-throughput integrals. The
// paper computed ⟨C_i⟩(R_max, D) "in Maple with Monte Carlo
// integration" (§3.2.5); this package is our equivalent, with
// deterministic sharded random streams, standard-error tracking, and
// optional convergence to a target relative error.
//
// Determinism contract: a sample budget is split into fixed-size
// shards, each shard receives its own rng.Source split from the root
// seed in shard order, and shard accumulators are merged in shard
// order. The worker pool only decides which goroutine evaluates which
// shard, so every estimate is bit-identical for a given seed
// regardless of worker count or GOMAXPROCS. The engine's `-parallel`
// flag sets the pool width via SetMaxWorkers.
package montecarlo

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"carriersense/internal/rng"
)

// ShardSize is the number of samples per deterministic shard. It is a
// fixed constant — never derived from the worker count — because the
// shard plan defines the random stream assignment and therefore the
// result.
const ShardSize = 4096

// maxWorkers is the configured pool width; 0 means GOMAXPROCS.
var maxWorkers atomic.Int64

// addEvaluatedSamples counts integrand evaluations performed by this
// process (every estimator path routes through it), plus any samples
// executors report via AddEvaluatedSamples. The count lives in the obs
// registry (cs_mc_samples_evaluated_total, see metrics.go) and backs
// the CLI's samples/sec throughput report.
func addEvaluatedSamples(n int) {
	samplesEvaluated.Add(int64(n))
}

// AddEvaluatedSamples credits samples evaluated on behalf of this
// process by an out-of-process executor (a `cs serve` worker fleet),
// so the CLI's throughput report covers distributed runs too.
func AddEvaluatedSamples(n int) {
	if n > 0 {
		addEvaluatedSamples(n)
	}
}

// EvaluatedSamples returns the total number of Monte Carlo samples
// evaluated (or credited) since process start. Snapshot it around a
// run to compute samples/sec.
func EvaluatedSamples() int64 {
	return samplesEvaluated.Value()
}

// SetMaxWorkers sets the worker pool width used by all estimators.
// n must be >= 1; anything else is rejected with an error rather than
// silently clamped (use ResetMaxWorkers to restore the GOMAXPROCS
// default). The width affects only scheduling, never results.
func SetMaxWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("montecarlo: worker pool width must be >= 1, got %d", n)
	}
	maxWorkers.Store(int64(n))
	return nil
}

// ResetMaxWorkers restores the default pool width (GOMAXPROCS).
func ResetMaxWorkers() {
	maxWorkers.Store(0)
}

// Workers returns the effective worker pool width.
func Workers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Estimate is the result of a Monte Carlo mean estimation.
type Estimate struct {
	Mean   float64 // sample mean
	StdErr float64 // standard error of the mean
	N      int     // number of samples
}

// RelErr returns the relative standard error |StdErr/Mean|, or +Inf
// when the mean is zero.
func (e Estimate) RelErr() float64 {
	if e.Mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(e.StdErr / e.Mean)
}

// Accumulator tracks a running mean and sum of squared deviations
// (Welford's algorithm). It is the merge currency of the sharded
// runner: workers fill one Accumulator per shard and the engine folds
// them together, in shard order, with Merge.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator into this one (Chan et al. parallel
// variance combination). Merging in a fixed order is deterministic.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

// N returns the number of samples accumulated.
func (a *Accumulator) N() int { return a.n }

// Estimate returns the mean and its standard error.
func (a *Accumulator) Estimate() Estimate {
	e := Estimate{Mean: a.mean, N: a.n}
	if a.n > 1 {
		variance := a.m2 / float64(a.n-1)
		e.StdErr = math.Sqrt(variance / float64(a.n))
	}
	return e
}

// Shard is one fixed slice of a sample budget with its own
// deterministic random stream.
type Shard struct {
	Index int         // position in the shard plan
	N     int         // samples this shard evaluates
	Src   *rng.Source // stream split from the root seed, in shard order
}

// PlanShards splits a total sample budget into ShardSize-sample shards
// and deterministically derives one rng.Source per shard from the
// seed. The plan depends only on (seed, total).
func PlanShards(seed uint64, total int) []Shard {
	if total <= 0 {
		return nil
	}
	count := (total + ShardSize - 1) / ShardSize
	root := rng.New(seed)
	shards := make([]Shard, count)
	for i := range shards {
		n := ShardSize
		if i == count-1 {
			n = total - i*ShardSize
		}
		shards[i] = Shard{Index: i, N: n, Src: root.Split()}
	}
	return shards
}

// RunShards evaluates fn over every shard using a pool of Workers()
// goroutines. fn must confine its writes to state owned by the shard
// index (e.g. accs[shard.Index]); RunShards returns once every shard
// has been evaluated. Each evaluation is timed into the registry and,
// when tracing is on, emitted as a span on its pool worker's lane —
// the pool only ever decides scheduling, so instrumentation cannot
// affect results.
func RunShards(shards []Shard, fn func(Shard)) {
	workers := Workers()
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, s := range shards {
			instrumentShard(0, s, fn)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				instrumentShard(w, shards[i], fn)
			}
		}(w)
	}
	wg.Wait()
}

// Mean estimates E[f] over n samples using the sharded pool. Results
// are bit-identical for a fixed (seed, n) at any worker width.
func Mean(seed uint64, n int, f func(*rng.Source) float64) Estimate {
	shards := PlanShards(seed, n)
	accs := make([]Accumulator, len(shards))
	RunShards(shards, func(s Shard) {
		acc := &accs[s.Index]
		for i := 0; i < s.N; i++ {
			acc.Add(f(s.Src))
		}
		addEvaluatedSamples(s.N)
	})
	var total Accumulator
	for i := range accs {
		total.Merge(accs[i])
	}
	return total.Estimate()
}

// MeanVec estimates the means of a vector-valued integrand: f fills
// out with one sample per component. All components share the same
// random configuration draw, which is exactly what comparing MAC
// policies on identical configurations requires (common random
// numbers — variance of *differences* shrinks dramatically).
func MeanVec(seed uint64, n, dim int, f func(*rng.Source, []float64)) []Estimate {
	shards := PlanShards(seed, n)
	accs := make([][]Accumulator, len(shards))
	for i := range accs {
		accs[i] = make([]Accumulator, dim)
	}
	RunShards(shards, func(s Shard) {
		out := make([]float64, dim)
		for i := 0; i < s.N; i++ {
			// Zero the vector so integrands may leave components
			// unset (e.g. indicator variables set only when true).
			for j := range out {
				out[j] = 0
			}
			f(s.Src, out)
			for j, v := range out {
				accs[s.Index][j].Add(v)
			}
		}
		addEvaluatedSamples(s.N)
	})
	result := make([]Estimate, dim)
	for j := 0; j < dim; j++ {
		var total Accumulator
		for i := range accs {
			total.Merge(accs[i][j])
		}
		result[j] = total.Estimate()
	}
	return result
}

// MeanToRelErr estimates E[f], growing the sample count geometrically
// (starting at n0, capped at nMax) until the relative standard error
// of the mean drops below relErr. The second return reports whether
// the target was actually reached: false means the estimate ran into
// nMax still above the target, which callers (the threshold searches,
// the convergence driver's artifact output) must be able to tell apart
// from a genuine convergence.
//
// Growth is incremental: each round extends the live shard plan —
// partial shards continue their random streams, new shards are split
// from the root in shard order — so only the delta samples are
// evaluated (a fresh re-estimation per round would throw away ~33% of
// the total work). The result after any round is bit-identical to
// Mean(seed, n) at that round's n, because shard streams, Welford add
// order, and the shard-order merge are all unchanged.
func MeanToRelErr(seed uint64, n0, nMax int, relErr float64, f func(*rng.Source) float64) (Estimate, bool) {
	if n0 < 1 {
		n0 = 1
	}
	if nMax < n0 {
		nMax = n0
	}
	n := n0
	root := rng.New(seed)
	var shards []Shard     // live shard streams, split from root in shard order
	var accs []Accumulator // running per-shard accumulators
	for {
		count := ShardCount(n)
		for len(shards) < count {
			shards = append(shards, Shard{Index: len(shards), Src: root.Split()})
			accs = append(accs, Accumulator{})
		}
		// Delta work per shard: its target size under the grown plan
		// minus the samples already folded in earlier rounds.
		var work []Shard
		for i := 0; i < count; i++ {
			target := ShardSize
			if i == count-1 {
				target = n - i*ShardSize
			}
			if add := target - accs[i].n; add > 0 {
				work = append(work, Shard{Index: i, N: add, Src: shards[i].Src})
			}
		}
		RunShards(work, func(s Shard) {
			acc := &accs[s.Index]
			for i := 0; i < s.N; i++ {
				acc.Add(f(s.Src))
			}
			addEvaluatedSamples(s.N)
		})
		var total Accumulator
		for i := 0; i < count; i++ {
			total.Merge(accs[i])
		}
		est := total.Estimate()
		if est.RelErr() <= relErr {
			return est, true
		}
		if n >= nMax {
			return est, false
		}
		n *= 4
		if n > nMax {
			n = nMax
		}
	}
}

// Fraction estimates P[pred] over n samples.
func Fraction(seed uint64, n int, pred func(*rng.Source) bool) Estimate {
	return Mean(seed, n, func(src *rng.Source) float64 {
		if pred(src) {
			return 1
		}
		return 0
	})
}
