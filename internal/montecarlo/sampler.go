package montecarlo

// The sampler seam: a Sampler rewrites how one shard's samples are
// drawn (and, for paired strategies, how they are folded into the
// accumulator) without the integrand knowing. Strategies are
// registered by name — the name travels in Request.Sampler, through
// the dist wire protocol and the cache key — so a sampler-transformed
// estimation reproduces bit-identically on any executor, exactly like
// the kernels themselves.
//
// The registry mirrors the kernel registry: montecarlo registers the
// degenerate "plain" strategy (raw shard streams, one observation per
// sample); internal/sampling registers the variance-reduction
// strategies (antithetic, stratified) in its init. Both the
// coordinator and `cs serve` workers link internal/sampling via the
// engine, so a named sampler rebuilds identically on either side.

import (
	"fmt"
	"sort"
	"sync"

	"carriersense/internal/rng"
)

// SamplerPlain is the built-in identity strategy: every sample draws
// directly from the shard's raw stream and contributes one accumulator
// observation. An empty Request.Sampler means SamplerPlain.
const SamplerPlain = "plain"

// SampleStream yields the draw source for each sample of one shard,
// in sample order. Next is called exactly once per sample; the
// returned source must be used for all of that sample's variates.
// Streams are shard-local and need not be safe for concurrent use.
type SampleStream interface {
	Next() *rng.Source
}

// Sampler is one named sampling strategy. Implementations must be
// stateless (safe for concurrent Stream calls from the shard pool);
// all per-shard state lives in the SampleStream.
type Sampler interface {
	// Group returns how many consecutive samples fold into one
	// accumulator observation (their mean): 1 for independent
	// samples, 2 for antithetic pairs. Group must divide ShardSize so
	// groups never straddle shard boundaries.
	Group() int
	// Stream starts one shard evaluation of n samples drawing from
	// src, the shard's deterministic raw stream.
	Stream(n int, src *rng.Source) SampleStream
}

var (
	samplerMu sync.RWMutex
	samplers  = map[string]Sampler{}
)

// RegisterSampler adds a named strategy to the global registry.
// Registration happens in init() (this package registers plain,
// internal/sampling the rest); duplicates, empty names, and group
// sizes that do not divide ShardSize panic so a broken catalog fails
// loudly at startup.
func RegisterSampler(name string, s Sampler) {
	if name == "" || s == nil {
		panic("montecarlo: invalid sampler registration")
	}
	if g := s.Group(); g < 1 || ShardSize%g != 0 {
		panic(fmt.Sprintf("montecarlo: sampler %q group %d must divide ShardSize %d", name, s.Group(), ShardSize))
	}
	samplerMu.Lock()
	defer samplerMu.Unlock()
	if _, dup := samplers[name]; dup {
		panic(fmt.Sprintf("montecarlo: duplicate sampler %q", name))
	}
	samplers[name] = s
}

// SamplerNames returns every registered sampler name, sorted.
func SamplerNames() []string {
	samplerMu.RLock()
	defer samplerMu.RUnlock()
	out := make([]string, 0, len(samplers))
	for name := range samplers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasSampler reports whether name is registered ("" counts as plain).
func HasSampler(name string) bool {
	if name == "" {
		return true
	}
	samplerMu.RLock()
	defer samplerMu.RUnlock()
	_, ok := samplers[name]
	return ok
}

// SamplerGroup returns the observation group size of a registered
// sampler ("" = plain). The convergence driver sizes its sub-shard
// probe round from it: a probe must hold enough whole groups for an
// honest standard-error estimate.
func SamplerGroup(name string) (int, error) {
	s, err := lookupSampler(name)
	if err != nil {
		return 0, err
	}
	return s.Group(), nil
}

// lookupSampler resolves a sampler name; "" resolves to plain.
func lookupSampler(name string) (Sampler, error) {
	if name == "" {
		name = SamplerPlain
	}
	samplerMu.RLock()
	s, ok := samplers[name]
	samplerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("montecarlo: unknown sampler %q (registered: %v)", name, SamplerNames())
	}
	return s, nil
}

// plainSampler is the identity strategy.
type plainSampler struct{}

func (plainSampler) Group() int { return 1 }

func (plainSampler) Stream(n int, src *rng.Source) SampleStream { return rawStream{src: src} }

type rawStream struct{ src *rng.Source }

func (r rawStream) Next() *rng.Source { return r.src }

func init() {
	RegisterSampler(SamplerPlain, plainSampler{})
}

// defaultSampler is the process-wide sampler applied to kernel-routed
// estimations whose call sites predate the sampler seam (the model's
// estimators). engine.Run installs the CLI's -sampler choice here for
// the duration of a run, exactly as it installs the executor.
var (
	defaultSamplerMu sync.RWMutex
	defaultSampler   = ""
)

// SetDefaultSampler installs the sampler name KernelMeanVec stamps
// into requests. The name must be registered; "" restores plain.
// "plain" is canonicalized to "" so the default strategy has exactly
// one request identity — an explicit `-sampler plain` run shares wire
// jobs and cache entries with a default run instead of re-evaluating
// bit-identical results under a second key.
func SetDefaultSampler(name string) error {
	if !HasSampler(name) {
		return fmt.Errorf("montecarlo: unknown sampler %q (registered: %v)", name, SamplerNames())
	}
	if name == SamplerPlain {
		name = ""
	}
	defaultSamplerMu.Lock()
	defaultSampler = name
	defaultSamplerMu.Unlock()
	return nil
}

// ForceDefaultSampler installs a default sampler name without
// registry validation — for virtual strategies that an installed
// executor decorator resolves to a registered name before any shard
// evaluation (internal/sampling's auto-scheduler). If no decorator
// intercepts the name, the first estimation fails loudly at sampler
// lookup rather than silently running plain.
func ForceDefaultSampler(name string) {
	defaultSamplerMu.Lock()
	defaultSampler = name
	defaultSamplerMu.Unlock()
}

// DefaultSampler returns the installed default sampler name ("" =
// plain).
func DefaultSampler() string {
	defaultSamplerMu.RLock()
	defer defaultSamplerMu.RUnlock()
	return defaultSampler
}

// SampledMeanVec estimates the means of a vector-valued integrand with
// the named sampler applied, on the in-process pool. It is the
// sampler-aware form of MeanVec, used by estimators whose environment
// has no serializable kernel identity and therefore cannot route
// through an executor; results for sampler "" / "plain" are
// bit-identical to MeanVec.
func SampledMeanVec(sampler string, seed uint64, n, dim int, f EvalFunc) ([]Estimate, error) {
	sp, err := lookupSampler(sampler)
	if err != nil {
		return nil, err
	}
	shards := PlanShards(seed, n)
	accs := make([][]Accumulator, len(shards))
	RunShards(shards, func(s Shard) {
		accs[s.Index] = evalShard(kernelEval{fn: f}, s, dim, sp, nil)
	})
	result := make([]Estimate, dim)
	for j := 0; j < dim; j++ {
		var total Accumulator
		for i := range accs {
			total.Merge(accs[i][j])
		}
		result[j] = total.Estimate()
	}
	return result, nil
}
