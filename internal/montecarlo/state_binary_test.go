package montecarlo

import (
	"math"
	"testing"
)

func TestAccumulatorStateBinaryRoundTrip(t *testing.T) {
	var acc Accumulator
	for _, v := range []float64{0.125, -3.75, 1e-17, 6.02e23, math.Pi} {
		acc.Add(v)
	}
	want := acc.State()
	buf := want.AppendBinary(nil)
	if len(buf) != AccumulatorStateSize {
		t.Fatalf("encoded state is %d bytes, want %d", len(buf), AccumulatorStateSize)
	}
	got, err := DecodeAccumulatorState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip changed the state: %+v != %+v", got, want)
	}
	// The restored accumulator must be the same bit patterns, not just
	// approximately equal — this is the distributed determinism
	// contract's currency.
	back := FromState(got)
	if back.State() != want {
		t.Fatalf("FromState lost bits: %+v != %+v", back.State(), want)
	}
}

func TestAccumulatorStateBinaryAppendsInPlace(t *testing.T) {
	a := Accumulator{}
	a.Add(1)
	b := Accumulator{}
	b.Add(2)
	buf := a.State().AppendBinary(nil)
	buf = b.State().AppendBinary(buf)
	if len(buf) != 2*AccumulatorStateSize {
		t.Fatalf("two states encode to %d bytes, want %d", len(buf), 2*AccumulatorStateSize)
	}
	first, err := DecodeAccumulatorState(buf)
	if err != nil {
		t.Fatal(err)
	}
	second, err := DecodeAccumulatorState(buf[AccumulatorStateSize:])
	if err != nil {
		t.Fatal(err)
	}
	if first != a.State() || second != b.State() {
		t.Fatal("concatenated states decoded out of order")
	}
}

func TestDecodeAccumulatorStateRejectsTruncation(t *testing.T) {
	var acc Accumulator
	acc.Add(42)
	buf := acc.State().AppendBinary(nil)
	if _, err := DecodeAccumulatorState(buf[:AccumulatorStateSize-1]); err == nil {
		t.Fatal("truncated state decoded silently")
	}
	if _, err := DecodeAccumulatorState(nil); err == nil {
		t.Fatal("empty state decoded silently")
	}
}
