package montecarlo

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"carriersense/internal/rng"
)

// Test kernels for the control-variate machinery. "ctl/linear" draws
// one uniform u and returns [a + b·u, u²]; its twin returns [u, NaN]
// (exact mean 1/2 for component 0, no exact mean for component 1).
// Because component 0 is an affine function of the twin, the optimal
// β reduces its variance to exactly zero.
func init() {
	RegisterKernel("ctl/linear", func(params json.RawMessage) (EvalFunc, error) {
		var p [2]float64
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return func(src *rng.Source, out []float64) {
			u := src.Float64()
			out[0] = p[0] + p[1]*u
			out[1] = u * u
		}, nil
	})
	RegisterControlTwin("ctl/linear", ControlTwin{
		Eval: func(params json.RawMessage) (EvalFunc, error) {
			return func(src *rng.Source, out []float64) {
				u := src.Float64()
				out[0] = u
				out[1] = u
			}, nil
		},
		Means: func(params json.RawMessage) ([]float64, error) {
			return []float64{0.5, math.NaN()}, nil
		},
	})
}

func linearReq(samples int) Request {
	raw, _ := json.Marshal([2]float64{3, 4})
	// Sampler stays plain: the adjustment rides on Request.Control
	// alone (the "cv" name lives in internal/sampling, which this
	// package cannot import).
	return Request{Kernel: "ctl/linear", Params: raw, Seed: 11, Samples: samples, Dim: 2}
}

func TestPilotControlIsDeterministic(t *testing.T) {
	req := linearReq(ShardSize)
	a, err := PilotControl(req, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PilotControl(req, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("repeated pilots differ: %+v vs %+v", a, b)
	}
}

func TestPilotControlFindsExactBeta(t *testing.T) {
	// Component 0 = 3 + 4·g: the regression slope is exactly 4 and the
	// exact twin mean is 1/2. Component 1 has a NaN twin mean, so its
	// β must be forced to 0.
	spec, err := PilotControl(linearReq(ShardSize), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.Beta[0]-4) > 1e-9 {
		t.Errorf("beta[0] = %v, want 4 (affine dependence is exact)", spec.Beta[0])
	}
	if spec.Mean[0] != 0.5 {
		t.Errorf("mean[0] = %v, want the exact twin mean 0.5", spec.Mean[0])
	}
	if spec.Beta[1] != 0 || spec.Mean[1] != 0 {
		t.Errorf("NaN-mean component kept beta %v mean %v, want 0/0", spec.Beta[1], spec.Mean[1])
	}
}

func TestControlAdjustedVarianceIsZeroWhenExact(t *testing.T) {
	// With β = 4 and μ = 1/2, every adjusted sample of component 0 is
	// the constant 3 + 4·μ = 5 and the tracked variance collapses to 0
	// — the σ = 0 lane behavior that lets a cv point converge in one
	// probe round.
	req := linearReq(2 * ShardSize)
	spec, err := PilotControl(req, 1000)
	if err != nil {
		t.Fatal(err)
	}
	req.Control = spec
	accs, err := RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	est := accs[0].Estimate()
	if math.Abs(est.Mean-5) > 1e-9 {
		t.Errorf("adjusted mean %v, want 5", est.Mean)
	}
	if est.StdErr > 1e-12 {
		t.Errorf("adjusted stderr %v, want 0 (exact control)", est.StdErr)
	}
	// The unadjusted component keeps its ordinary noise.
	if accs[1].Estimate().StdErr == 0 {
		t.Error("β=0 component reports zero stderr; adjustment leaked")
	}
}

func TestControlSpecTravelsInRequestIdentity(t *testing.T) {
	// Same samples, different β: the results must differ (the spec is
	// part of what is being computed), and a round-tripped request
	// (JSON, as the wire carries it) must reproduce bit-identically.
	req := linearReq(ShardSize)
	req.Control = &ControlSpec{Beta: []float64{4, 0}, Mean: []float64{0.5, 0}}
	a, err := RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var rt Request
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	b, err := RunRequest(context.Background(), rt)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("JSON round-tripped control request is not bit-identical")
	}

	req.Control = &ControlSpec{Beta: []float64{2, 0}, Mean: []float64{0.5, 0}}
	c, err := RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == c[0] {
		t.Error("different β produced identical accumulators; control is not applied")
	}
}

func TestControlSpecValidation(t *testing.T) {
	req := linearReq(ShardSize)
	req.Control = &ControlSpec{Beta: []float64{1}, Mean: []float64{0.5}}
	if err := req.Validate(); err == nil {
		t.Error("dim-mismatched control spec accepted")
	}
	req.Control = &ControlSpec{Beta: []float64{math.NaN(), 0}, Mean: []float64{0, 0}}
	if err := req.Validate(); err == nil {
		t.Error("NaN β accepted")
	}
	req.Control = &ControlSpec{Beta: []float64{1, 0}, Mean: []float64{0.5, 0}}
	if err := req.Validate(); err != nil {
		t.Errorf("valid control spec rejected: %v", err)
	}
}

func TestPilotControlRequiresTwin(t *testing.T) {
	req := Request{Kernel: "mc/mean", Params: json.RawMessage(`1`), Seed: 1, Samples: ShardSize, Dim: 1}
	if _, err := PilotControl(req, 100); err == nil {
		t.Error("pilot on a twinless kernel succeeded")
	}
}

func TestControlSpecEqual(t *testing.T) {
	a := &ControlSpec{Beta: []float64{1, 2}, Mean: []float64{3, 4}}
	b := &ControlSpec{Beta: []float64{1, 2}, Mean: []float64{3, 4}}
	c := &ControlSpec{Beta: []float64{1, 2.5}, Mean: []float64{3, 4}}
	var nilSpec *ControlSpec
	if !a.Equal(b) || a.Equal(c) || a.Equal(nilSpec) || !nilSpec.Equal(nil) {
		t.Error("ControlSpec.Equal misbehaves")
	}
}
