package montecarlo

// Registry handles for the Monte Carlo layer, resolved once at init so
// the shard hot path pays only atomic adds. samplesEvaluated also
// *backs* the EvaluatedSamples throughput counter the CLI reports —
// the metric is the source of truth, not a mirror of one.

import (
	"time"

	"carriersense/internal/obs"
)

var (
	samplesEvaluated = obs.Default().Counter("cs_mc_samples_evaluated_total",
		"Monte Carlo samples evaluated in-process or credited by an executor.")
	shardsEvaluated = obs.Default().Counter("cs_mc_shards_evaluated_total",
		"Deterministic shards evaluated by the local RunShards pool.")
	shardEvalSeconds = obs.Default().Histogram("cs_mc_shard_eval_seconds",
		"Wall time to evaluate one shard in the local pool.", nil)
)

// instrumentShard runs fn for one shard under the pool's metrics and,
// when a tracer is installed, a per-shard span on the pool worker's
// lane. The disabled-tracer path allocates nothing beyond fn itself.
func instrumentShard(w int, s Shard, fn func(Shard)) {
	tr := obs.CurrentTracer()
	var ts time.Duration
	if tr != nil {
		ts = tr.Now()
	}
	t0 := time.Now()
	fn(s)
	shardEvalSeconds.Observe(time.Since(t0).Seconds())
	shardsEvaluated.Inc()
	if tr != nil {
		tr.Span("shard", "mc", obs.TidLocalBase+w, ts,
			map[string]any{"shard": s.Index, "n": s.N})
	}
}
