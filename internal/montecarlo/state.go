package montecarlo

// Accumulator wire serialization. The merge currency of the
// distributed executor is the Welford accumulator state; floats travel
// as IEEE-754 bit patterns so a state survives JSON transport with
// zero rounding — the distributed merge is then bit-identical to the
// local one by construction, not by printf precision.

import (
	"encoding/json"
	"math"
)

// AccumulatorState is the serializable form of an Accumulator. Mean
// and M2 are math.Float64bits images of the running mean and sum of
// squared deviations.
type AccumulatorState struct {
	N    int    `json:"n"`
	Mean uint64 `json:"mean"`
	M2   uint64 `json:"m2"`
}

// State captures the accumulator's exact state.
func (a Accumulator) State() AccumulatorState {
	return AccumulatorState{
		N:    a.n,
		Mean: math.Float64bits(a.mean),
		M2:   math.Float64bits(a.m2),
	}
}

// FromState reconstructs the accumulator a State was captured from.
func FromState(st AccumulatorState) Accumulator {
	return Accumulator{
		n:    st.N,
		mean: math.Float64frombits(st.Mean),
		m2:   math.Float64frombits(st.M2),
	}
}

// MarshalJSON implements json.Marshaler via AccumulatorState.
func (a Accumulator) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.State())
}

// UnmarshalJSON implements json.Unmarshaler via AccumulatorState.
func (a *Accumulator) UnmarshalJSON(data []byte) error {
	var st AccumulatorState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*a = FromState(st)
	return nil
}

// ShardCount returns the number of shards PlanShards derives for a
// sample budget — what a coordinator needs to schedule work without
// materializing the plan's random sources.
func ShardCount(total int) int {
	if total <= 0 {
		return 0
	}
	return (total + ShardSize - 1) / ShardSize
}
