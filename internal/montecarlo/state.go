package montecarlo

// Accumulator wire serialization. The merge currency of the
// distributed executor is the Welford accumulator state; floats travel
// as IEEE-754 bit patterns so a state survives JSON transport with
// zero rounding — the distributed merge is then bit-identical to the
// local one by construction, not by printf precision.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// AccumulatorState is the serializable form of an Accumulator. Mean
// and M2 are math.Float64bits images of the running mean and sum of
// squared deviations.
type AccumulatorState struct {
	N    int    `json:"n"`
	Mean uint64 `json:"mean"`
	M2   uint64 `json:"m2"`
}

// State captures the accumulator's exact state.
func (a Accumulator) State() AccumulatorState {
	return AccumulatorState{
		N:    a.n,
		Mean: math.Float64bits(a.mean),
		M2:   math.Float64bits(a.m2),
	}
}

// FromState reconstructs the accumulator a State was captured from.
func FromState(st AccumulatorState) Accumulator {
	return Accumulator{
		n:    st.N,
		mean: math.Float64frombits(st.Mean),
		m2:   math.Float64frombits(st.M2),
	}
}

// AccumulatorStateSize is the fixed binary wire size of one state:
// three little-endian uint64 words (sample count, mean bits, M2 bits).
// This is the payload unit of the binary shard protocol's result
// frames — the float bit patterns cross the wire untouched, so a
// binary-transported state merges bit-identically, exactly as the JSON
// form does.
const AccumulatorStateSize = 24

// AppendBinary appends the state's AccumulatorStateSize-byte wire
// image to b and returns the extended slice.
func (st AccumulatorState) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(st.N))
	b = binary.LittleEndian.AppendUint64(b, st.Mean)
	return binary.LittleEndian.AppendUint64(b, st.M2)
}

// DecodeAccumulatorState decodes one state from the front of b (the
// inverse of AppendBinary).
func DecodeAccumulatorState(b []byte) (AccumulatorState, error) {
	if len(b) < AccumulatorStateSize {
		return AccumulatorState{}, fmt.Errorf("montecarlo: accumulator state truncated: %d of %d bytes", len(b), AccumulatorStateSize)
	}
	n := binary.LittleEndian.Uint64(b)
	if n > math.MaxInt {
		return AccumulatorState{}, fmt.Errorf("montecarlo: accumulator state sample count %d overflows int", n)
	}
	return AccumulatorState{
		N:    int(n),
		Mean: binary.LittleEndian.Uint64(b[8:]),
		M2:   binary.LittleEndian.Uint64(b[16:]),
	}, nil
}

// MarshalJSON implements json.Marshaler via AccumulatorState.
func (a Accumulator) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.State())
}

// UnmarshalJSON implements json.Unmarshaler via AccumulatorState.
func (a *Accumulator) UnmarshalJSON(data []byte) error {
	var st AccumulatorState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*a = FromState(st)
	return nil
}

// ShardCount returns the number of shards PlanShards derives for a
// sample budget — what a coordinator needs to schedule work without
// materializing the plan's random sources.
func ShardCount(total int) int {
	if total <= 0 {
		return 0
	}
	return (total + ShardSize - 1) / ShardSize
}
