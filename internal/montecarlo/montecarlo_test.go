package montecarlo

import (
	"math"
	"testing"

	"carriersense/internal/rng"
)

func TestMeanOfUniform(t *testing.T) {
	est := Mean(1, 200_000, func(src *rng.Source) float64 { return src.Float64() })
	if math.Abs(est.Mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want 0.5", est.Mean)
	}
	if est.N != 200_000 {
		t.Errorf("N = %d", est.N)
	}
	// stderr of U(0,1) mean over n samples is 1/sqrt(12n).
	want := 1 / math.Sqrt(12*200_000)
	if math.Abs(est.StdErr-want)/want > 0.1 {
		t.Errorf("stderr = %v, want ~%v", est.StdErr, want)
	}
}

func TestMeanDeterministicAcrossRuns(t *testing.T) {
	f := func(src *rng.Source) float64 { return src.Normal(0, 1) }
	a := Mean(99, 10_000, f)
	b := Mean(99, 10_000, f)
	if a.Mean != b.Mean {
		t.Errorf("same seed gave different means: %v vs %v", a.Mean, b.Mean)
	}
	c := Mean(100, 10_000, f)
	if a.Mean == c.Mean {
		t.Error("different seeds gave identical means")
	}
}

func TestStdErrShrinksWithN(t *testing.T) {
	f := func(src *rng.Source) float64 { return src.Exp(1) }
	small := Mean(5, 1_000, f)
	big := Mean(5, 100_000, f)
	if big.StdErr >= small.StdErr {
		t.Errorf("stderr should shrink: %v -> %v", small.StdErr, big.StdErr)
	}
	// Roughly 1/sqrt(n) scaling: factor ~10 for 100x samples.
	ratio := small.StdErr / big.StdErr
	if ratio < 5 || ratio > 20 {
		t.Errorf("stderr scaling ratio = %v, want ~10", ratio)
	}
}

func TestMeanVecCommonRandomNumbers(t *testing.T) {
	// Two components computed from the same draw must be perfectly
	// correlated: their difference has zero variance.
	est := MeanVec(7, 50_000, 2, func(src *rng.Source, out []float64) {
		x := src.Float64()
		out[0] = x
		out[1] = x + 1
	})
	if math.Abs((est[1].Mean-est[0].Mean)-1) > 1e-12 {
		t.Errorf("difference of means = %v, want exactly 1", est[1].Mean-est[0].Mean)
	}
	if math.Abs(est[0].StdErr-est[1].StdErr) > 1e-12 {
		t.Errorf("stderrs differ: %v vs %v", est[0].StdErr, est[1].StdErr)
	}
}

func TestMeanVecMatchesMean(t *testing.T) {
	f := func(src *rng.Source) float64 { return src.Normal(2, 1) }
	scalar := Mean(11, 20_000, f)
	vec := MeanVec(11, 20_000, 1, func(src *rng.Source, out []float64) {
		out[0] = f(src)
	})
	if scalar.Mean != vec[0].Mean {
		t.Errorf("Mean and MeanVec disagree: %v vs %v", scalar.Mean, vec[0].Mean)
	}
}

func TestMeanToRelErr(t *testing.T) {
	est, converged := MeanToRelErr(3, 1_000, 1_000_000, 0.005, func(src *rng.Source) float64 {
		return 5 + src.Normal(0, 1)
	})
	if !converged {
		t.Errorf("converged = false, want true")
	}
	if est.RelErr() > 0.005 {
		t.Errorf("rel err = %v, want <= 0.005", est.RelErr())
	}
	if math.Abs(est.Mean-5) > 0.1 {
		t.Errorf("mean = %v, want ~5", est.Mean)
	}
}

func TestMeanToRelErrMatchesMeanBitwise(t *testing.T) {
	// Incremental shard-plan growth must change nothing about the
	// result: after any number of growth rounds, the estimate is
	// bit-identical to a fresh Mean over the same total — shard
	// streams continue rather than restart, new shards split from the
	// root in shard order, and the merge stays in shard order.
	f := func(src *rng.Source) float64 { return 5 + src.Normal(0, 1) }
	est, _ := MeanToRelErr(9, 500, 3_000_000, 0.002, f)
	if est.N <= 500 {
		t.Fatalf("test needs growth rounds; converged at n0 (N=%d)", est.N)
	}
	direct := Mean(9, est.N, f)
	if est != direct {
		t.Errorf("incremental %+v != fresh Mean %+v", est, direct)
	}
}

func TestMeanToRelErrEvaluatesEachSampleOnce(t *testing.T) {
	// The point of the incremental plan: total work equals the final
	// sample count, not the ~1.33x of re-evaluating every prior round.
	f := func(src *rng.Source) float64 { return 5 + src.Normal(0, 1) }
	before := EvaluatedSamples()
	est, _ := MeanToRelErr(10, 500, 3_000_000, 0.002, f)
	evaluated := EvaluatedSamples() - before
	if est.N <= 500 {
		t.Fatalf("test needs growth rounds; converged at n0 (N=%d)", est.N)
	}
	if evaluated != int64(est.N) {
		t.Errorf("evaluated %d samples for a final N of %d; incremental growth should evaluate each exactly once", evaluated, est.N)
	}
}

func TestMeanToRelErrHitsCap(t *testing.T) {
	// Zero-mean integrand: relative error never converges; must stop
	// at nMax rather than loop forever.
	est, converged := MeanToRelErr(4, 100, 5_000, 1e-6, func(src *rng.Source) float64 {
		return src.Normal(0, 1)
	})
	if est.N > 5_000 {
		t.Errorf("N = %d exceeded cap", est.N)
	}
	if converged {
		t.Errorf("converged = true for a capped run; callers must be able to tell capped from converged")
	}
}

func TestFraction(t *testing.T) {
	est := Fraction(8, 100_000, func(src *rng.Source) bool {
		return src.Float64() < 0.25
	})
	if math.Abs(est.Mean-0.25) > 0.01 {
		t.Errorf("fraction = %v, want 0.25", est.Mean)
	}
}

func TestRelErrZeroMean(t *testing.T) {
	e := Estimate{Mean: 0, StdErr: 1}
	if !math.IsInf(e.RelErr(), 1) {
		t.Errorf("RelErr with zero mean = %v, want +Inf", e.RelErr())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	// Merging two halves must equal accumulating the whole.
	var whole, a, b Accumulator
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100, -3}
	for i, x := range xs {
		whole.Add(x)
		if i < 5 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	ew, ea := whole.Estimate(), a.Estimate()
	if ew.N != ea.N || math.Abs(ew.Mean-ea.Mean) > 1e-12 || math.Abs(ew.StdErr-ea.StdErr) > 1e-12 {
		t.Errorf("merge mismatch: %+v vs %+v", ew, ea)
	}
}

func TestMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(3)
	a.Merge(b) // empty b: no-op
	if got := a.Estimate(); got.N != 1 || got.Mean != 3 {
		t.Errorf("merge empty changed accumulator: %+v", got)
	}
	var c Accumulator
	c.Merge(a) // empty receiver adopts a
	if got := c.Estimate(); got.N != 1 || got.Mean != 3 {
		t.Errorf("empty merge failed: %+v", got)
	}
}

func TestPlanShardsFixedByBudget(t *testing.T) {
	shards := PlanShards(5, 3*ShardSize+17)
	if len(shards) != 4 {
		t.Fatalf("shard count = %d, want 4", len(shards))
	}
	total := 0
	for i, s := range shards {
		if s.Index != i {
			t.Errorf("shard %d has index %d", i, s.Index)
		}
		total += s.N
	}
	if total != 3*ShardSize+17 {
		t.Errorf("shard samples sum to %d", total)
	}
	if PlanShards(5, 0) != nil {
		t.Error("zero budget should plan no shards")
	}
}

func TestMeanInvariantUnderWorkerWidth(t *testing.T) {
	// The determinism contract behind the engine's -parallel flag:
	// worker width affects scheduling only, never the estimate.
	defer ResetMaxWorkers()
	f := func(src *rng.Source) float64 { return src.Normal(0, 1) }
	if err := SetMaxWorkers(1); err != nil {
		t.Fatal(err)
	}
	serial := Mean(42, 3*ShardSize+100, f)
	vecSerial := MeanVec(42, 2*ShardSize+9, 2, func(src *rng.Source, out []float64) {
		out[0] = src.Float64()
		out[1] = src.Exp(1)
	})
	for _, workers := range []int{2, 8, 64} {
		if err := SetMaxWorkers(workers); err != nil {
			t.Fatal(err)
		}
		got := Mean(42, 3*ShardSize+100, f)
		if got != serial {
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, serial)
		}
		vec := MeanVec(42, 2*ShardSize+9, 2, func(src *rng.Source, out []float64) {
			out[0] = src.Float64()
			out[1] = src.Exp(1)
		})
		for j := range vec {
			if vec[j] != vecSerial[j] {
				t.Errorf("workers=%d: MeanVec[%d] %+v != serial %+v", workers, j, vec[j], vecSerial[j])
			}
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	defer ResetMaxWorkers()
	if err := SetMaxWorkers(3); err != nil {
		t.Fatal(err)
	}
	if Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", Workers())
	}
	for _, bad := range []int{0, -1, -100} {
		if err := SetMaxWorkers(bad); err == nil {
			t.Errorf("SetMaxWorkers(%d) accepted", bad)
		}
	}
	ResetMaxWorkers()
	if Workers() < 1 {
		t.Errorf("default Workers() = %d", Workers())
	}
}
