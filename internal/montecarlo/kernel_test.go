package montecarlo

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"carriersense/internal/rng"
)

// The test kernel: a 2-component integrand with one serialized knob.
type testKernelParams struct {
	Offset float64 `json:"offset"`
}

func testKernelEval(offset float64) EvalFunc {
	return func(src *rng.Source, out []float64) {
		out[0] = src.Float64() + offset
		out[1] = src.Normal(0, 1)
	}
}

// Call counters for the dual-form kernel below: the shard evaluator
// must prefer the batch form whenever one is registered.
var (
	batchKernelCalls     atomic.Int64
	perSampleKernelCalls atomic.Int64
)

func init() {
	RegisterKernel("test/vec", func(raw json.RawMessage) (EvalFunc, error) {
		var p testKernelParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		return testKernelEval(p.Offset), nil
	})
	// The same integrand registered in both forms, instrumented.
	RegisterKernel("test/batched", func(raw json.RawMessage) (EvalFunc, error) {
		var p testKernelParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		eval := testKernelEval(p.Offset)
		return func(src *rng.Source, out []float64) {
			perSampleKernelCalls.Add(1)
			eval(src, out)
		}, nil
	})
	RegisterBatchKernel("test/batched", 2, func(raw json.RawMessage) (BatchEvalFunc, error) {
		var p testKernelParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		eval := testKernelEval(p.Offset)
		return func(src *rng.Source, count int, out []float64) {
			batchKernelCalls.Add(1)
			const dim = 2
			for i := 0; i < count; i++ {
				eval(src, out[i*dim:(i+1)*dim])
			}
		}, nil
	})
}

func TestAccumulatorStateRoundTrip(t *testing.T) {
	// States must survive JSON transport bit-exactly: the distributed
	// merge is only bit-identical to the local one if nothing rounds.
	src := rng.New(99)
	var acc Accumulator
	for i := 0; i < 1000; i++ {
		acc.Add(src.Normal(3, 7) * math.Pi)
	}
	data, err := json.Marshal(acc)
	if err != nil {
		t.Fatal(err)
	}
	var back Accumulator
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != acc {
		t.Errorf("round trip changed accumulator: %+v vs %+v", back, acc)
	}
	if back.Estimate() != acc.Estimate() {
		t.Errorf("round trip changed estimate")
	}
	// FromState/State round-trip on tricky values.
	for _, v := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.SmallestNonzeroFloat64, 1e300} {
		a := Accumulator{n: 3, mean: v, m2: v}
		if got := FromState(a.State()); got != a && !(math.IsNaN(got.mean) && math.IsNaN(a.mean)) {
			t.Errorf("FromState(State(%v)) = %+v", v, got)
		}
	}
}

func TestRunRequestMatchesMeanVec(t *testing.T) {
	// The kernel-routed path and the closure path must produce
	// bit-identical estimates: same shard plan, same eval, same merge
	// order.
	const n = 3*ShardSize + 217
	want := MeanVec(42, n, 2, testKernelEval(1.5))
	raw, _ := json.Marshal(testKernelParams{Offset: 1.5})
	accs, err := RunRequest(context.Background(), Request{
		Kernel: "test/vec", Params: raw, Seed: 42, Samples: n, Dim: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := range accs {
		if got := accs[j].Estimate(); got != want[j] {
			t.Errorf("component %d: kernel path %+v != closure path %+v", j, got, want[j])
		}
	}
	// And through the public KernelMeanVec entry point.
	got := KernelMeanVec("test/vec", testKernelParams{Offset: 1.5}, 42, n, 2)
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("KernelMeanVec[%d] = %+v, want %+v", j, got[j], want[j])
		}
	}
}

func TestBatchKernelBitIdenticalToPerSample(t *testing.T) {
	// A kernel evaluated through its batch form must produce the same
	// accumulators, bit for bit, as the per-sample closure path — the
	// batch API is a scheduling optimization, never a numeric change.
	const n = 2*ShardSize + 403
	want := MeanVec(13, n, 2, testKernelEval(0.75))
	raw, _ := json.Marshal(testKernelParams{Offset: 0.75})
	req := Request{Kernel: "test/batched", Params: raw, Seed: 13, Samples: n, Dim: 2}

	batchKernelCalls.Store(0)
	perSampleKernelCalls.Store(0)
	accs, err := RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for j := range accs {
		if got := accs[j].Estimate(); got != want[j] {
			t.Errorf("component %d: batch path %+v != closure path %+v", j, got, want[j])
		}
	}
	if batchKernelCalls.Load() == 0 {
		t.Error("batch form registered but never used")
	}
	if got := perSampleKernelCalls.Load(); got != 0 {
		t.Errorf("per-sample form called %d times despite batch form", got)
	}
	// The worker-server path (EvaluateShards) takes the batch form too.
	count := ShardCount(n)
	indices := make([]int, count)
	for i := range indices {
		indices[i] = i
	}
	perShard, err := EvaluateShards(req, indices)
	if err != nil {
		t.Fatal(err)
	}
	merged := make([]Accumulator, req.Dim)
	for _, accs := range perShard {
		for j := range merged {
			merged[j].Merge(accs[j])
		}
	}
	for j := range merged {
		if got := merged[j].Estimate(); got != want[j] {
			t.Errorf("component %d: shard-wise batch merge %+v != closure path %+v", j, got, want[j])
		}
	}
	if got := perSampleKernelCalls.Load(); got != 0 {
		t.Errorf("per-sample form called %d times on the worker path", got)
	}
}

func TestBatchKernelRejectsDimMismatch(t *testing.T) {
	// A batch registration pins the kernel's component count: a request
	// with a different Dim must fail cleanly (a mis-strided flat buffer
	// would otherwise corrupt results silently).
	raw, _ := json.Marshal(testKernelParams{})
	for _, dim := range []int{1, 3} {
		req := Request{Kernel: "test/batched", Params: raw, Seed: 1, Samples: 10, Dim: dim}
		if _, err := RunRequest(context.Background(), req); err == nil {
			t.Errorf("dim %d accepted for a 2-component batch kernel", dim)
		}
	}
}

func TestEvaluateShardsMatchesFullPlan(t *testing.T) {
	// Evaluating the plan shard-by-shard (the worker server's path) and
	// merging in shard order must equal the in-process run.
	const n = 4*ShardSize + 9
	raw, _ := json.Marshal(testKernelParams{Offset: 0.25})
	req := Request{Kernel: "test/vec", Params: raw, Seed: 7, Samples: n, Dim: 2}
	want, err := RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	count := ShardCount(n)
	merged := make([]Accumulator, req.Dim)
	// Evaluate in two scrambled batches to mimic out-of-order workers.
	batches := [][]int{{3, 1}, {4, 0, 2}}
	byIndex := make([][]Accumulator, count)
	for _, batch := range batches {
		accs, err := EvaluateShards(req, batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range batch {
			byIndex[idx] = accs[i]
		}
	}
	for idx := 0; idx < count; idx++ {
		for j := range merged {
			merged[j].Merge(byIndex[idx][j])
		}
	}
	for j := range merged {
		if merged[j] != want[j] {
			t.Errorf("component %d: shard-wise merge %+v != full plan %+v", j, merged[j], want[j])
		}
	}
}

func TestEvaluateShardsRejectsBadIndices(t *testing.T) {
	raw, _ := json.Marshal(testKernelParams{})
	req := Request{Kernel: "test/vec", Params: raw, Seed: 1, Samples: ShardSize, Dim: 2}
	for _, bad := range [][]int{{-1}, {1}, {99}} {
		if _, err := EvaluateShards(req, bad); err == nil {
			t.Errorf("indices %v accepted for a 1-shard plan", bad)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	good := Request{Kernel: "test/vec", Seed: 1, Samples: 10, Dim: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	for _, bad := range []Request{
		{Kernel: "", Samples: 10, Dim: 1},
		{Kernel: "test/vec", Samples: 0, Dim: 1},
		{Kernel: "test/vec", Samples: 10, Dim: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid request %+v accepted", bad)
		}
	}
}

func TestKernelMeanVecPanicsWithExecError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic for unknown kernel")
		}
		var execErr *ExecError
		if err, ok := r.(error); !ok || !errors.As(err, &execErr) {
			t.Fatalf("panic value %v is not an ExecError", r)
		}
	}()
	KernelMeanVec("test/definitely-not-registered", nil, 1, 10, 1)
}

func TestSetExecutorRoutesRequests(t *testing.T) {
	defer SetExecutor(nil)
	called := 0
	SetExecutor(executorFunc(func(ctx context.Context, req Request) ([]Accumulator, error) {
		called++
		return RunRequest(ctx, req)
	}))
	want := MeanVec(5, ShardSize, 2, testKernelEval(0))
	got := KernelMeanVec("test/vec", testKernelParams{}, 5, ShardSize, 2)
	if called != 1 {
		t.Errorf("executor called %d times", called)
	}
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("routed estimate differs at %d", j)
		}
	}
}

type executorFunc func(ctx context.Context, req Request) ([]Accumulator, error)

func (f executorFunc) EstimateVec(ctx context.Context, req Request) ([]Accumulator, error) {
	return f(ctx, req)
}
