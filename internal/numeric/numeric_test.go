package numeric

import (
	"errors"
	"math"
	"testing"
)

func TestBrentFindsRoots(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 3 }, 0, 10, 1.5},
		{"cosx-x", func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851},
		{"cubic", func(x float64) float64 { return x*x*x - 2 }, 0, 2, math.Cbrt(2)},
		{"endpoint", func(x float64) float64 { return x }, 0, 5, 0},
	}
	for _, c := range cases {
		got, err := Brent(c.f, c.a, c.b, 1e-10)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-7 {
			t.Errorf("%s: root = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisect(t *testing.T) {
	got, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("bisect sqrt2 = %v", got)
	}
	if _, err := Bisect(func(x float64) float64 { return 1.0 }, 0, 1, 1e-9); !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestGoldenMinMax(t *testing.T) {
	min := GoldenMin(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-9)
	if math.Abs(min-3) > 1e-6 {
		t.Errorf("GoldenMin = %v, want 3", min)
	}
	max := GoldenMax(func(x float64) float64 { return -(x + 1) * (x + 1) }, -10, 10, 1e-9)
	if math.Abs(max+1) > 1e-6 {
		t.Errorf("GoldenMax = %v, want -1", max)
	}
}

func TestSimpson(t *testing.T) {
	// ∫₀^π sin = 2
	got := Simpson(math.Sin, 0, math.Pi, 1e-10)
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("Simpson sin = %v, want 2", got)
	}
	// ∫₀¹ x² = 1/3 (exact for Simpson)
	got = Simpson(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Simpson x^2 = %v", got)
	}
	// A peaked integrand.
	got = Simpson(func(x float64) float64 { return math.Exp(-x * x * 100) }, -2, 2, 1e-12)
	want := math.Sqrt(math.Pi) / 10
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("Simpson gaussian = %v, want %v", got, want)
	}
}

func TestGaussLegendre20PolynomialExactness(t *testing.T) {
	// 20-point GL is exact for polynomials up to degree 39.
	f := func(x float64) float64 { return math.Pow(x, 15) - 3*math.Pow(x, 8) + x }
	got := GaussLegendre20(f, -1, 3)
	// Antiderivative: x^16/16 - x^9/3 + x²/2.
	F := func(x float64) float64 { return math.Pow(x, 16)/16 - math.Pow(x, 9)/3 + x*x/2 }
	want := F(3) - F(-1)
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Errorf("GL20 = %v, want %v", got, want)
	}
}

func TestGaussLegendrePanels(t *testing.T) {
	got := GaussLegendre20Panels(math.Sin, 0, math.Pi, 8)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GL panels sin = %v, want 2", got)
	}
	if got := GaussLegendre20Panels(math.Sin, 0, math.Pi, 0); math.Abs(got-2) > 1e-10 {
		t.Errorf("GL panels with n<1 = %v, want 2", got)
	}
}

func TestDiscAverage(t *testing.T) {
	// Average of a constant is the constant.
	got := DiscAverage(func(r, theta float64) float64 { return 7 }, 3, 8, 8)
	if math.Abs(got-7) > 1e-9 {
		t.Errorf("constant disc average = %v", got)
	}
	// Average of r² over a disc of radius R is R²/2.
	got = DiscAverage(func(r, theta float64) float64 { return r * r }, 5, 16, 8)
	if math.Abs(got-12.5) > 1e-6 {
		t.Errorf("r^2 disc average = %v, want 12.5", got)
	}
	// An angular-dependent integrand: average of cos²θ is 1/2.
	got = DiscAverage(func(r, theta float64) float64 { return math.Cos(theta) * math.Cos(theta) }, 5, 8, 16)
	if math.Abs(got-0.5) > 1e-6 {
		t.Errorf("cos^2 disc average = %v, want 0.5", got)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 10*(x[1]+2)*(x[1]+2)
	}
	got := NelderMead(f, []float64{5, 5}, []float64{1, 1}, 1e-12, 2000)
	if math.Abs(got[0]-1) > 1e-4 || math.Abs(got[1]+2) > 1e-4 {
		t.Errorf("NelderMead = %v, want (1,-2)", got)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	got := NelderMead(f, []float64{-1.2, 1}, []float64{0.5, 0.5}, 1e-14, 8000)
	if math.Abs(got[0]-1) > 1e-3 || math.Abs(got[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock min = %v, want (1,1)", got)
	}
}

func TestDerivative(t *testing.T) {
	got := Derivative(math.Sin, 1, 1e-5)
	if math.Abs(got-math.Cos(1)) > 1e-8 {
		t.Errorf("d/dx sin(1) = %v, want %v", got, math.Cos(1))
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-9*want[i] {
			t.Errorf("LogSpace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if got := LogSpace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("LogSpace single = %v", got)
	}
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("LinSpace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}
