// Package numeric provides the deterministic numerical routines behind
// the analytical model: root finding (the optimal carrier sense
// threshold is the root of ⟨C_conc⟩(D) − ⟨C_mux⟩, §3.3.3), scalar
// minimization, quadrature for the σ=0 integrals, and a Nelder-Mead
// simplex optimizer used by the censored maximum-likelihood
// propagation fit (Figure 14).
package numeric

import (
	"errors"
	"math"
	"sort"
)

// ErrNoBracket is returned by root finders when the supplied interval
// does not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exceeds its
// iteration budget without meeting tolerance.
var ErrNoConverge = errors.New("numeric: failed to converge")

// Brent finds a root of f in [a, b] using Brent's method. f(a) and
// f(b) must have opposite signs. tol is the absolute x tolerance.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	var d, e float64 = b - a, b - a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.Nextafter(math.Abs(b), math.Inf(1))*0x1p-52 + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation / secant.
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			e = b - a
			d = e
		}
	}
	return b, ErrNoConverge
}

// Bisect finds a root of f in [a, b] by bisection. It is slower than
// Brent but immune to the noise of Monte Carlo objective functions, so
// the threshold solver uses it when the curves are MC estimates.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	for math.Abs(b-a) > tol {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, nil
}

// GoldenMin minimizes a unimodal f over [a, b] by golden-section
// search and returns the minimizing x.
func GoldenMin(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for math.Abs(b-a) > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// GoldenMax maximizes a unimodal f over [a, b].
func GoldenMax(f func(float64) float64, a, b, tol float64) float64 {
	return GoldenMin(func(x float64) float64 { return -f(x) }, a, b, tol)
}

// Simpson integrates f over [a, b] with adaptive Simpson quadrature to
// the given absolute tolerance.
func Simpson(f func(float64) float64, a, b, tol float64) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return adaptiveSimpson(f, a, b, fa, fb, fc, whole, tol, 24)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := (c - a) / 6 * (fa + 4*fl + fc)
	right := (b - c) / 6 * (fc + 4*fr + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, c, fa, fc, fl, left, tol/2, depth-1) +
		adaptiveSimpson(f, c, b, fc, fb, fr, right, tol/2, depth-1)
}

// gl20x and gl20w are the nodes and weights of 20-point Gauss-Legendre
// quadrature on [-1, 1].
var gl20x = []float64{
	-0.9931285991850949, -0.9639719272779138, -0.9122344282513259,
	-0.8391169718222188, -0.7463319064601508, -0.6360536807265150,
	-0.5108670019508271, -0.3737060887154195, -0.2277858511416451,
	-0.0765265211334973, 0.0765265211334973, 0.2277858511416451,
	0.3737060887154195, 0.5108670019508271, 0.6360536807265150,
	0.7463319064601508, 0.8391169718222188, 0.9122344282513259,
	0.9639719272779138, 0.9931285991850949,
}

var gl20w = []float64{
	0.0176140071391521, 0.0406014298003869, 0.0626720483341091,
	0.0832767415767048, 0.1019301198172404, 0.1181945319615184,
	0.1316886384491766, 0.1420961093183820, 0.1491729864726037,
	0.1527533871307258, 0.1527533871307258, 0.1491729864726037,
	0.1420961093183820, 0.1316886384491766, 0.1181945319615184,
	0.1019301198172404, 0.0832767415767048, 0.0626720483341091,
	0.0406014298003869, 0.0176140071391521,
}

// GaussLegendre20 integrates f over [a, b] with a single 20-point
// Gauss-Legendre rule.
func GaussLegendre20(f func(float64) float64, a, b float64) float64 {
	mid, half := (a+b)/2, (b-a)/2
	sum := 0.0
	for i, x := range gl20x {
		sum += gl20w[i] * f(mid+half*x)
	}
	return sum * half
}

// GaussLegendre20Panels integrates f over [a, b] split into n equal
// panels with a 20-point rule per panel. Used for the smooth but
// peaked σ=0 capacity integrands (capacity diverges logarithmically at
// the sender).
func GaussLegendre20Panels(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += GaussLegendre20(f, a+float64(i)*h, a+float64(i+1)*h)
	}
	return sum
}

// DiscAverage computes the area-average of f(r, θ) over the disc of
// the given radius by nested Gauss-Legendre quadrature (panels in r ×
// panels in θ). This is the deterministic counterpart of the Monte
// Carlo receiver average, used to cross-check the σ=0 results.
func DiscAverage(f func(r, theta float64) float64, radius float64, rPanels, thetaPanels int) float64 {
	inner := func(r float64) float64 {
		g := func(theta float64) float64 { return f(r, theta) }
		return r * GaussLegendre20Panels(g, 0, 2*math.Pi, thetaPanels)
	}
	integral := GaussLegendre20Panels(inner, 0, radius, rPanels)
	return integral / (math.Pi * radius * radius)
}

// NelderMead minimizes f over R^n starting from x0 with initial simplex
// step sizes step. It returns the best point found after maxIter
// iterations or when the simplex collapses below tol.
func NelderMead(f func([]float64) float64, x0, step []float64, tol float64, maxIter int) []float64 {
	n := len(x0)
	type vertex struct {
		x []float64
		f float64
	}
	mk := func(x []float64) vertex {
		cp := append([]float64(nil), x...)
		return vertex{x: cp, f: f(cp)}
	}
	simplex := make([]vertex, n+1)
	simplex[0] = mk(x0)
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		x[i] += step[i]
		simplex[i+1] = mk(x)
	}
	const alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
	for iter := 0; iter < maxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if math.Abs(simplex[n].f-simplex[0].f) < tol {
			spread := 0.0
			for i := 0; i < n; i++ {
				spread += math.Abs(simplex[n].x[i] - simplex[0].x[i])
			}
			if spread < tol {
				break
			}
		}
		// Centroid of all but worst.
		centroid := make([]float64, n)
		for _, v := range simplex[:n] {
			for i := range centroid {
				centroid[i] += v.x[i] / float64(n)
			}
		}
		reflect := make([]float64, n)
		for i := range reflect {
			reflect[i] = centroid[i] + alpha*(centroid[i]-simplex[n].x[i])
		}
		vr := mk(reflect)
		switch {
		case vr.f < simplex[0].f:
			expand := make([]float64, n)
			for i := range expand {
				expand[i] = centroid[i] + gamma*(reflect[i]-centroid[i])
			}
			ve := mk(expand)
			if ve.f < vr.f {
				simplex[n] = ve
			} else {
				simplex[n] = vr
			}
		case vr.f < simplex[n-1].f:
			simplex[n] = vr
		default:
			contract := make([]float64, n)
			for i := range contract {
				contract[i] = centroid[i] + rho*(simplex[n].x[i]-centroid[i])
			}
			vc := mk(contract)
			if vc.f < simplex[n].f {
				simplex[n] = vc
			} else {
				// Shrink toward best.
				for j := 1; j <= n; j++ {
					x := make([]float64, n)
					for i := range x {
						x[i] = simplex[0].x[i] + sigma*(simplex[j].x[i]-simplex[0].x[i])
					}
					simplex[j] = mk(x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x
}

// Derivative estimates f'(x) with a central difference of step h.
func Derivative(f func(float64) float64, x, h float64) float64 {
	return (f(x+h) - f(x-h)) / (2 * h)
}

// LogSpace returns n points logarithmically spaced over [lo, hi].
func LogSpace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// LinSpace returns n points linearly spaced over [lo, hi].
func LinSpace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
