package sampling

// The variance-aware sampler auto-scheduler: `-sampler auto` stops
// asking the user to guess which variance-reduction strategy fits
// which kernel. "auto" is a virtual strategy — never registered,
// never on the wire — resolved by the AutoScheduler executor
// decorator: on first sight of each kernel it runs a cheap fixed-size
// pilot round under every candidate strategy, scores each by the
// samples it would need to reach a relative-error target, and
// rewrites every subsequent request for that kernel to the winner.
//
// The score is each candidate's expected per-point cost. Its raw form
// is target-independent — a strategy's cost to reach relative error t
// is (per-observation relative variance) × group ÷ t², so var_obs ×
// group ranks candidates for every target at once — but raw variance
// alone would crown a zero-variance candidate (cv on a σ = 0 lane)
// even when its fixed overheads cost more than a rival's entire run.
// So when the scheduler knows the convergence target it scores the
// full bill: the variance-implied sample count, floored at the
// smallest round the driver can issue, plus cv's per-point β pilot.
// Scores come from the same bit-identical accumulator machinery as
// real estimations (the pilots run through the base executor), so the
// choice — like everything else in the pipeline — is a pure function
// of (kernel, params, seed) and reproduces identically on any
// executor; ties break by fixed candidate order.
//
// Choices persist: with a table path configured, the per-kernel
// winners are written as JSON keyed by the cache's KeyEpoch, so a
// repeat run (same epoch) skips every pilot and goes straight to the
// winning strategy. An epoch bump — any change to evaluation
// semantics — invalidates the table exactly as it invalidates the
// cache.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"carriersense/internal/cache"
	"carriersense/internal/montecarlo"
)

// Auto is the virtual auto-scheduling strategy name. It is valid only
// as a CLI/engine-level choice; requests reaching shard evaluation
// always carry the resolved winner.
const Auto = "auto"

// AutoPilotShards is the per-candidate pilot budget in shards. Two
// shards give each candidate enough observations (≥ 32 even at the
// sobol block size) for a stable variance ranking while costing less
// than a single typical convergence round.
const AutoPilotShards = 2

// autoCandidates returns the candidate strategies for a kernel, in
// the fixed tie-break order: cheapest-machinery first, cv last and
// only when the kernel has a registered control twin (and the
// scheduler has a ControlVariates decorator to equip it).
func autoCandidates(kernel string, haveCV bool) []string {
	c := []string{Plain, Antithetic, Stratified, Sobol}
	if haveCV && montecarlo.HasControlTwin(kernel) {
		c = append(c, CV)
	}
	return c
}

// candidateGroup maps candidate names to their observation group
// sizes — the samples-per-observation factor of the score.
var candidateGroup = map[string]int{
	Plain:      1,
	Antithetic: 2,
	Stratified: StratifiedBlock,
	Sobol:      SobolBlock,
	CV:         1,
}

// AutoOptions configure an AutoScheduler.
type AutoOptions struct {
	// TablePath, when non-empty, persists the per-kernel choices as a
	// KeyEpoch-stamped JSON table so repeat runs skip the pilots.
	TablePath string
	// Target is the convergence driver's relative-error target, when
	// the scheduler runs inside a driven chain. With a target the
	// score is each candidate's expected per-point sample bill
	// (variance-implied count, round floor, cv pilot surcharge); with
	// 0 it falls back to the target-independent relative variance.
	Target float64
}

// PilotScore is one candidate's pilot result, kept for reporting.
type PilotScore struct {
	Sampler string  `json:"sampler"`
	Score   float64 `json:"score"` // expected per-point samples (or relative variance; lower is better)
}

// AutoScheduler is the auto-resolving executor decorator. It wraps
// the rest of the chain (the cv decorator and the convergence driver)
// so a driven point's rounds all run under one resolved strategy, and
// pilots go to the base executor directly — a pilot is a fixed-budget
// probe, not something to drive to convergence.
type AutoScheduler struct {
	inner montecarlo.Executor // full chain: handles the resolved request
	base  montecarlo.Executor // pilot path: no driving, no auto/cv rewriting
	cv    *ControlVariates    // equips the cv candidate; nil disables cv

	mu      sync.Mutex
	choices map[string]string       // kernel → winning sampler name ("plain" literal)
	scores  map[string][]PilotScore // kernel → pilot scoreboard
	spent   int
	table   string
	target  float64
}

// NewAuto builds an auto-scheduler over inner (the resolved-request
// chain) and base (the undecorated executor pilots probe through; nil
// = in-process). cv, when non-nil, is the chain's ControlVariates
// decorator — the scheduler borrows its memoized pilot so the cv
// candidate is scored with exactly the coefficients a cv win would
// run with. A configured choice table is loaded eagerly; a stale
// epoch discards it.
func NewAuto(inner, base montecarlo.Executor, cv *ControlVariates, opt AutoOptions) *AutoScheduler {
	if base == nil {
		base = localExecutor{}
	}
	a := &AutoScheduler{
		inner:   inner,
		base:    base,
		cv:      cv,
		choices: map[string]string{},
		scores:  map[string][]PilotScore{},
		table:   opt.TablePath,
		target:  opt.Target,
	}
	a.loadTable()
	return a
}

// choiceTable is the persisted form: choices are only valid for the
// evaluation semantics they were measured under, so the table carries
// the cache KeyEpoch and is discarded wholesale on mismatch.
type choiceTable struct {
	KeyEpoch int               `json:"key_epoch"`
	Choices  map[string]string `json:"choices"`
}

func (a *AutoScheduler) loadTable() {
	if a.table == "" {
		return
	}
	raw, err := os.ReadFile(a.table)
	if err != nil {
		return // absent or unreadable: start fresh
	}
	var t choiceTable
	if json.Unmarshal(raw, &t) != nil || t.KeyEpoch != cache.KeyEpoch {
		return
	}
	for kernel, name := range t.Choices {
		if _, ok := candidateGroup[name]; ok {
			a.choices[kernel] = name
		}
	}
}

// saveTable write-through-persists the current choices. Called with
// a.mu held.
func (a *AutoScheduler) saveTable() {
	if a.table == "" {
		return
	}
	t := choiceTable{KeyEpoch: cache.KeyEpoch, Choices: a.choices}
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(a.table), 0o755); err != nil {
		return
	}
	tmp := a.table + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, a.table)
}

// expectedCost converts a candidate's raw relative variance into the
// per-point samples a driven estimation would spend reaching the
// target: the variance-implied count, plus the β pilot for cv —
// ControlFor keys on (kernel, params, seed), so every point pays its
// own pilot. The count is deliberately NOT floored at the driver's
// round sizes: the pilot sees one point's params, and flooring would
// let a lane's easiest point erase the variance ranking that governs
// its hardest ones. The variance term keeps the ranking honest
// everywhere; the surcharge keeps a zero-variance cv candidate from
// reading as free when a rival converges inside a cheaper probe.
func expectedCost(cand string, raw, target float64) float64 {
	n := raw / (target * target)
	if cand == CV {
		n += PilotSamples
	}
	return n
}

// score runs one candidate's pilot and returns its expected per-point
// cost (with a known target), or its raw relative samples-to-target —
// per-observation relative variance × group — without one. Lower is
// better.
func (a *AutoScheduler) score(ctx context.Context, req montecarlo.Request, cand string) (float64, error) {
	pr := req
	pr.Sampler = cand
	if cand == Plain {
		pr.Sampler = "" // canonical plain identity
	}
	pr.Samples = AutoPilotShards * montecarlo.ShardSize
	pr.FirstShard = 0
	pr.Control = nil
	if cand == CV && montecarlo.HasControlTwin(req.Kernel) {
		spec, err := a.cv.ControlFor(pr)
		if err != nil {
			return 0, err
		}
		pr.Control = spec
	}
	accs, err := a.base.EstimateVec(ctx, pr)
	if err != nil {
		return 0, fmt.Errorf("sampling: auto pilot %q/%s: %w", req.Kernel, cand, err)
	}
	a.spent += pr.Samples
	est := accs[0].Estimate()
	group := float64(candidateGroup[cand])
	if est.Mean == 0 {
		return math.Inf(1), nil
	}
	varObs := est.StdErr * est.StdErr * float64(est.N)
	raw := varObs * group / (est.Mean * est.Mean)
	if a.target > 0 {
		return expectedCost(cand, raw, a.target), nil
	}
	return raw, nil
}

// resolve returns the winning sampler name for a kernel, piloting the
// candidates on first sight. The pilot is serialized under the
// scheduler's lock — it runs once per kernel per process (or never,
// with a warm choice table).
func (a *AutoScheduler) resolve(ctx context.Context, req montecarlo.Request) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if name, ok := a.choices[req.Kernel]; ok {
		return name, nil
	}
	best, bestScore := "", math.Inf(1)
	var board []PilotScore
	for _, cand := range autoCandidates(req.Kernel, a.cv != nil) {
		s, err := a.score(ctx, req, cand)
		if err != nil {
			return "", err
		}
		board = append(board, PilotScore{Sampler: cand, Score: s})
		if s < bestScore { // strict: ties keep the earlier candidate
			best, bestScore = cand, s
		}
	}
	if best == "" {
		best = Plain // every candidate scored +Inf (zero primary mean)
	}
	a.choices[req.Kernel] = best
	a.scores[req.Kernel] = board
	a.saveTable()
	return best, nil
}

// Choices returns the per-kernel winners resolved so far (including
// table-loaded ones), keyed by kernel name. Deterministic content —
// safe to embed in byte-compared artifacts.
func (a *AutoScheduler) Choices() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]string, len(a.choices))
	for k, v := range a.choices {
		out[k] = v
	}
	return out
}

// Scores returns each piloted kernel's scoreboard, candidates in
// tie-break order.
func (a *AutoScheduler) Scores() map[string][]PilotScore {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string][]PilotScore, len(a.scores))
	for k, v := range a.scores {
		out[k] = append([]PilotScore(nil), v...)
	}
	return out
}

// ChoiceLines renders the resolved choices as sorted "kernel=sampler"
// strings for logs and reports.
func (a *AutoScheduler) ChoiceLines() []string {
	choices := a.Choices()
	kernels := make([]string, 0, len(choices))
	for k := range choices {
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	lines := make([]string, len(kernels))
	for i, k := range kernels {
		lines[i] = k + "=" + choices[k]
	}
	return lines
}

// PilotSpent returns the total samples the scheduler's pilots have
// evaluated (excluding the cv coefficient pilot, which
// ControlVariates accounts for).
func (a *AutoScheduler) PilotSpent() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// EstimateVec implements montecarlo.Executor: auto requests are
// rewritten to their kernel's resolved strategy; everything else
// passes through.
func (a *AutoScheduler) EstimateVec(ctx context.Context, req montecarlo.Request) ([]montecarlo.Accumulator, error) {
	if req.Sampler != Auto {
		return a.inner.EstimateVec(ctx, req)
	}
	name, err := a.resolve(ctx, req)
	if err != nil {
		return nil, err
	}
	if name == Plain {
		name = "" // canonical plain identity
	}
	req.Sampler = name
	return a.inner.EstimateVec(ctx, req)
}
